# Developer entry points. `make check` is the tier-1 gate every change
# must keep green (see DESIGN.md §7); the other targets are conveniences
# over the same underlying go commands.

GO ?= go

.PHONY: check build vet test race bench bench-baseline bench-gate fmt fmt-check clean

# The benchmark runs the CI bench gate pins: the fused-vs-scalar sampling
# kernel comparison, delta-vs-cold-rebuild maintenance and the budgeted
# query loop (internal/imm), and end-to-end seed selection (root).
# -benchtime 1x yields one ns/op
# sample per run; -count=5 gives cmd/benchdiff five samples per benchmark
# to take a median over.
BENCH_GATE_RUNS = { $(GO) test -run '^$$' -bench '^BenchmarkSelectSeeds$$' -benchtime 1x -count=5 . \
	&& $(GO) test -run '^$$' -bench '^BenchmarkSampleBatch$$' -benchtime 1x -count=5 ./internal/imm \
	&& $(GO) test -run '^$$' -bench '^BenchmarkApplyDelta$$' -benchtime 1x -count=5 ./internal/imm \
	&& $(GO) test -run '^$$' -bench '^BenchmarkSelectBudgeted$$' -benchtime 1x -count=5 ./internal/imm ; }

## check: the CI-grade gate — compile everything, check formatting, vet,
## and run the full test suite under the race detector.
check: build fmt-check vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fmt: rewrite the tree into canonical gofmt form.
fmt:
	gofmt -w .

## fmt-check: fail (listing offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

## bench: run every paper-figure benchmark once (long), plus the
## sampler's static-vs-dynamic schedule benchmark.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' . ./internal/imm

## bench-baseline: regenerate the committed bench-gate baseline
## (results/bench_baseline.json). Run this deliberately, on the reference
## machine, when a change is *supposed* to shift the benchmarks — the
## baseline encodes absolute speeds, so a laptop-written baseline makes
## the CI gate meaningless.
bench-baseline:
	$(BENCH_GATE_RUNS) | $(GO) run ./cmd/benchdiff -write -baseline results/bench_baseline.json

## bench-gate: compare current benchmark medians against the committed
## baseline; fails on a >15% median regression or a missing benchmark
## (see cmd/benchdiff). CI runs this on every PR.
bench-gate:
	$(BENCH_GATE_RUNS) | $(GO) run ./cmd/benchdiff -baseline results/bench_baseline.json

clean:
	$(GO) clean ./...
