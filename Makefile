# Developer entry points. `make check` is the tier-1 gate every change
# must keep green (see DESIGN.md §7); the other targets are conveniences
# over the same underlying go commands.

GO ?= go

.PHONY: check build vet test race bench clean

## check: the CI-grade gate — compile everything, vet, and run the full
## test suite under the race detector.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: run every paper-figure benchmark once (long).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
