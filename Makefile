# Developer entry points. `make check` is the tier-1 gate every change
# must keep green (see DESIGN.md §7); the other targets are conveniences
# over the same underlying go commands.

GO ?= go

.PHONY: check build vet test race bench fmt fmt-check clean

## check: the CI-grade gate — compile everything, check formatting, vet,
## and run the full test suite under the race detector.
check: build fmt-check vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fmt: rewrite the tree into canonical gofmt form.
fmt:
	gofmt -w .

## fmt-check: fail (listing offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

## bench: run every paper-figure benchmark once (long), plus the
## sampler's static-vs-dynamic schedule benchmark.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' . ./internal/imm

clean:
	$(GO) clean ./...
