package influmax_test

import (
	"bytes"
	"slices"
	"sync"
	"testing"

	"influmax"
)

// TestEndToEndWorkflow exercises the public facade the way the README's
// quickstart does: generate, weight, maximize, evaluate.
func TestEndToEndWorkflow(t *testing.T) {
	g := influmax.Generate("cit-HepTh", 0.01, 1)
	g.AssignUniform(7)
	if g.NumVertices() < 64 || g.NumEdges() == 0 {
		t.Fatalf("analog degenerate: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	res, err := influmax.Maximize(g, influmax.Options{K: 10, Epsilon: 0.5, Model: influmax.IC, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 10 {
		t.Fatalf("got %d seeds", len(res.Seeds))
	}
	mean, se := influmax.Spread(g, influmax.IC, res.Seeds, 5000, 0, 99)
	if mean < float64(len(res.Seeds)) {
		t.Fatalf("spread %v below seed count", mean)
	}
	// RIS estimate and simulation agree within noise.
	if diff := res.EstimatedSpread - mean; diff > 6*se+0.05*mean+1 || -diff > 6*se+0.05*mean+1 {
		t.Fatalf("estimates disagree: RIS %.1f vs MC %.1f", res.EstimatedSpread, mean)
	}
}

func TestPublicBuildersAndIO(t *testing.T) {
	b := influmax.NewBuilder(3)
	b.Add(0, 1, 0.9)
	b.Add(1, 2, 0.9)
	g := b.Build()
	var buf bytes.Buffer
	if err := influmax.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := influmax.ParseEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 2 {
		t.Fatalf("round trip lost edges: %d", g2.NumEdges())
	}
	var bin bytes.Buffer
	if err := influmax.WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	if _, err := influmax.ReadBinary(&bin); err != nil {
		t.Fatal(err)
	}
}

func TestPublicDistributedMatchesShared(t *testing.T) {
	g := influmax.Generate("soc-Epinions1", 0.002, 2)
	g.AssignUniform(5)
	ref, err := influmax.Maximize(g, influmax.Options{K: 5, Epsilon: 0.5, Model: influmax.IC, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	comms := influmax.LocalCluster(3)
	results := make([]*influmax.DistResult, 3)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			results[rank], errs[rank] = influmax.MaximizeDistributed(comms[rank], g, influmax.DistOptions{
				K: 5, Epsilon: 0.5, Model: influmax.IC, Seed: 3, ThreadsPerRank: 1,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if !slices.Equal(results[0].Seeds, ref.Seeds) {
		t.Fatalf("distributed %v != shared %v", results[0].Seeds, ref.Seeds)
	}
}

func TestPublicFaultInjection(t *testing.T) {
	// The facade's fault-tolerance surface: parse a plan, run distributed
	// IMM through the injector, read the counters back.
	plan, err := influmax.ParseFaultPlan("seed=7,delay=0.1/1ms,dup=0.2,reorder=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if s := plan.String(); s == "" {
		t.Fatal("plan renders empty")
	}
	g := influmax.Generate("cit-HepTh", 0.002, 3)
	g.AssignUniform(9)
	ref, err := influmax.Maximize(g, influmax.Options{K: 4, Epsilon: 0.5, Model: influmax.IC, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	const p = 2
	comms := influmax.LocalCluster(p)
	results := make([]*influmax.DistResult, p)
	stats := make([]influmax.CommStats, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := influmax.WithFaults(comms[rank], plan)
			defer c.Close()
			results[rank], errs[rank] = influmax.MaximizeDistributed(c, g, influmax.DistOptions{
				K: 4, Epsilon: 0.5, Model: influmax.IC, Seed: 11, ThreadsPerRank: 1,
			})
			stats[rank] = influmax.CommStatsOf(c)
		}(r)
	}
	wg.Wait()
	var injected bool
	for r := 0; r < p; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		if !slices.Equal(results[r].Seeds, ref.Seeds) {
			t.Fatalf("rank %d under faults: %v != %v", r, results[r].Seeds, ref.Seeds)
		}
		injected = injected || stats[r].Injected()
	}
	if !injected {
		t.Fatal("no faults injected through the facade")
	}
}

func TestPublicBaselinesRun(t *testing.T) {
	g := influmax.ErdosRenyi(40, 200, 1)
	g.AssignUniform(2)
	seeds, gains, err := influmax.CELF(g, influmax.IC, 3, 100, 2, 1)
	if err != nil || len(seeds) != 3 || len(gains) != 3 {
		t.Fatalf("CELF: %v %v %v", seeds, gains, err)
	}
	if got := influmax.TopDegree(g, 3); len(got) != 3 {
		t.Fatal("TopDegree")
	}
	if got := influmax.SingleDiscount(g, 3); len(got) != 3 {
		t.Fatal("SingleDiscount")
	}
	if got := influmax.DegreeDiscount(g, 3, 0.1); len(got) != 3 {
		t.Fatal("DegreeDiscount")
	}
	bc := influmax.Betweenness(g, 2)
	if len(bc) != 40 {
		t.Fatal("Betweenness length")
	}
	if got := influmax.TopCentral(bc, 5); len(got) != 5 {
		t.Fatal("TopCentral")
	}
}

func TestPublicGenerators(t *testing.T) {
	if len(influmax.DatasetNames()) != 8 {
		t.Fatal("dataset names")
	}
	for _, g := range []*influmax.Graph{
		influmax.ErdosRenyi(64, 128, 1),
		influmax.BarabasiAlbert(64, 3, 1),
		influmax.WattsStrogatz(64, 3, 0.2, 1),
		influmax.RMAT(64, 256, 0.5, 0.2, 0.2, 1),
	} {
		if g.NumVertices() != 64 {
			t.Fatalf("generator size %d", g.NumVertices())
		}
	}
}

func TestPublicModelParsing(t *testing.T) {
	m, err := influmax.ParseModel("lt")
	if err != nil || m != influmax.LT {
		t.Fatal("ParseModel lt")
	}
	if _, err := influmax.ParseModel("zz"); err == nil {
		t.Fatal("bad model accepted")
	}
}

func TestPublicPhaseAccess(t *testing.T) {
	g := influmax.ErdosRenyi(100, 600, 3)
	g.AssignUniform(4)
	res, err := influmax.Maximize(g, influmax.Options{K: 3, Epsilon: 0.5, Model: influmax.IC, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := res.Phases.Get(influmax.PhaseEstimation) + res.Phases.Get(influmax.PhaseSampling) +
		res.Phases.Get(influmax.PhaseIndexBuild) + res.Phases.Get(influmax.PhaseSelect) +
		res.Phases.Get(influmax.PhaseOther)
	if total != res.Phases.Total() {
		t.Fatal("phase sum != total")
	}
}
