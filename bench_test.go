// Benchmarks regenerating the paper's evaluation artifacts: one benchmark
// per table and figure, plus ablations of the design choices called out in
// DESIGN.md. Scale via INFLUMAX_BENCH_SCALE (default 0.002; the paper's
// figures correspond to 1.0, which needs a cluster-class machine and
// hours).
//
//	go test -bench=. -benchmem
package influmax

import (
	"fmt"
	"os"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"influmax/internal/diffuse"
	"influmax/internal/dist"
	"influmax/internal/gen"
	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/mpi"
	"influmax/internal/par"
	"influmax/internal/rng"
	"influmax/internal/rrr"
)

// benchScale reads the dataset scale factor from the environment.
func benchScale() float64 {
	if s := os.Getenv("INFLUMAX_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 && v <= 1 {
			return v
		}
	}
	return 0.002
}

var (
	benchGraphsMu sync.Mutex
	benchGraphs   = map[string]*graph.Graph{}
)

// benchGraph returns a cached IC-weighted analog of the named dataset.
func benchGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	key := fmt.Sprintf("%s@%g", name, benchScale())
	benchGraphsMu.Lock()
	defer benchGraphsMu.Unlock()
	if g, ok := benchGraphs[key]; ok {
		return g
	}
	d, err := gen.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	g := d.Generate(benchScale(), 1)
	g.AssignUniform(0x5eed)
	benchGraphs[key] = g
	return g
}

// benchGraphLT returns a cached LT-normalized analog.
func benchGraphLT(b *testing.B, name string) *graph.Graph {
	b.Helper()
	key := fmt.Sprintf("%s@%g/LT", name, benchScale())
	benchGraphsMu.Lock()
	if g, ok := benchGraphs[key]; ok {
		benchGraphsMu.Unlock()
		return g
	}
	benchGraphsMu.Unlock()
	d, err := gen.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	g := d.Generate(benchScale(), 1)
	g.AssignUniform(0x5eed)
	g.NormalizeLT()
	benchGraphsMu.Lock()
	benchGraphs[key] = g
	benchGraphsMu.Unlock()
	return g
}

func clampK(g *graph.Graph, k int) int {
	if k >= g.NumVertices() {
		return g.NumVertices() / 4
	}
	return k
}

// --- Table 2: serial IMM (hypergraph baseline) vs IMMopt (compact) ---

func BenchmarkTable2SerialIMMBaseline(b *testing.B) {
	for _, name := range []string{"cit-HepTh", "soc-Epinions1", "com-Amazon", "com-DBLP"} {
		b.Run(name, func(b *testing.B) {
			g := benchGraph(b, name)
			opt := imm.Options{K: clampK(g, 50), Epsilon: 0.5, Model: diffuse.IC, Workers: 1, Seed: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := imm.RunBaseline(g, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.StoreBytes)/(1<<20), "store-MB")
			}
		})
	}
}

func BenchmarkTable2SerialIMMOpt(b *testing.B) {
	for _, name := range []string{"cit-HepTh", "soc-Epinions1", "com-Amazon", "com-DBLP"} {
		b.Run(name, func(b *testing.B) {
			g := benchGraph(b, name)
			opt := imm.Options{K: clampK(g, 50), Epsilon: 0.5, Model: diffuse.IC, Workers: 1, Seed: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := imm.Run(g, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.StoreBytes)/(1<<20), "store-MB")
			}
		})
	}
}

// --- Figure 1: quality vs k at the two accuracies ---

func BenchmarkFig1Quality(b *testing.B) {
	g := benchGraph(b, "cit-HepTh")
	for _, eps := range []float64{0.5, 0.13} {
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			k := clampK(g, 100)
			for i := 0; i < b.N; i++ {
				res, err := imm.Run(g, imm.Options{K: k, Epsilon: eps, Model: diffuse.IC, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				spread, _ := diffuse.EstimateSpread(g, diffuse.IC, res.Seeds, 2000, 0, 7)
				b.ReportMetric(spread, "activated")
			}
		})
	}
}

// --- Figure 2: theta estimation across eps ---

func BenchmarkFig2Theta(b *testing.B) {
	g := benchGraph(b, "cit-HepTh")
	for _, eps := range []float64{0.6, 0.5, 0.4, 0.3, 0.2} {
		b.Run(fmt.Sprintf("eps=%.1f", eps), func(b *testing.B) {
			k := clampK(g, 50)
			for i := 0; i < b.N; i++ {
				res, err := imm.Run(g, imm.Options{K: k, Epsilon: eps, Model: diffuse.IC, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Theta), "theta")
			}
		})
	}
}

// --- Figure 3: eps sweep (k=50, IC) ---

func BenchmarkFig3EpsilonSweep(b *testing.B) {
	g := benchGraph(b, "soc-Epinions1")
	for _, eps := range []float64{0.50, 0.40, 0.30, 0.20} {
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			k := clampK(g, 50)
			for i := 0; i < b.N; i++ {
				if _, err := imm.Run(g, imm.Options{K: k, Epsilon: eps, Model: diffuse.IC, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 4: k sweep (eps=0.5, IC) ---

func BenchmarkFig4KSweep(b *testing.B) {
	g := benchGraph(b, "soc-Epinions1")
	for _, k := range []int{10, 25, 50, 100} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			kk := clampK(g, k)
			for i := 0; i < b.N; i++ {
				if _, err := imm.Run(g, imm.Options{K: kk, Epsilon: 0.5, Model: diffuse.IC, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figures 5 and 6: multithreaded strong scaling ---

func benchScaling(b *testing.B, model diffuse.Model) {
	var g *graph.Graph
	if model == diffuse.LT {
		g = benchGraphLT(b, "soc-Epinions1")
	} else {
		g = benchGraph(b, "soc-Epinions1")
	}
	for p := 1; p <= 16; p *= 2 {
		b.Run(fmt.Sprintf("threads=%d", p), func(b *testing.B) {
			k := clampK(g, 100)
			for i := 0; i < b.N; i++ {
				if _, err := imm.Run(g, imm.Options{K: k, Epsilon: 0.5, Model: model, Workers: p, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig5ScalingLT(b *testing.B) { benchScaling(b, diffuse.LT) }
func BenchmarkFig6ScalingIC(b *testing.B) { benchScaling(b, diffuse.IC) }

// --- Figures 7 and 8: distributed strong scaling ---

func benchDist(b *testing.B, name string, ranks []int, eps float64, k int) {
	g := benchGraph(b, name)
	for _, p := range ranks {
		b.Run(fmt.Sprintf("ranks=%d", p), func(b *testing.B) {
			kk := clampK(g, k)
			for i := 0; i < b.N; i++ {
				comms := mpi.NewLocalCluster(p)
				results := make([]*dist.Result, p)
				errs := make([]error, p)
				var wg sync.WaitGroup
				for r := 0; r < p; r++ {
					wg.Add(1)
					go func(rank int) {
						defer wg.Done()
						results[rank], errs[rank] = dist.Run(comms[rank], g, dist.Options{
							K: kk, Epsilon: eps, Model: diffuse.IC, Seed: 1, ThreadsPerRank: 1,
						})
					}(r)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkFig7DistPuma(b *testing.B) {
	benchDist(b, "com-YouTube", []int{2, 4, 8, 16}, 0.3, 50)
}

func BenchmarkFig8DistEdison(b *testing.B) {
	benchDist(b, "com-YouTube", []int{4, 8, 16, 32}, 0.3, 50)
}

// --- Table 3: the four implementations end to end ---

func BenchmarkTable3Pipeline(b *testing.B) {
	g := benchGraph(b, "soc-LiveJournal1")
	k := clampK(g, 100)
	b.Run("IMM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := imm.RunBaseline(g, imm.Options{K: k, Epsilon: 0.5, Model: diffuse.IC, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("IMMopt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := imm.Run(g, imm.Options{K: k, Epsilon: 0.5, Model: diffuse.IC, Workers: 1, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("IMMmt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := imm.Run(g, imm.Options{K: k, Epsilon: 0.5, Model: diffuse.IC, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("IMMdist", func(b *testing.B) {
		const p = 4
		k2 := clampK(g, 2*k)
		for i := 0; i < b.N; i++ {
			comms := mpi.NewLocalCluster(p)
			var wg sync.WaitGroup
			errs := make([]error, p)
			for r := 0; r < p; r++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					_, errs[rank] = dist.Run(comms[rank], g, dist.Options{
						K: k2, Epsilon: 0.3, Model: diffuse.IC, Seed: 1, ThreadsPerRank: 2,
					})
				}(r)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// --- Extension: graph-partitioned distributed IMM (future work i) ---

func BenchmarkExtensionPartitionedDist(b *testing.B) {
	g := benchGraph(b, "com-YouTube")
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ranks=%d", p), func(b *testing.B) {
			kk := clampK(g, 50)
			for i := 0; i < b.N; i++ {
				comms := mpi.NewLocalCluster(p)
				errs := make([]error, p)
				var wg sync.WaitGroup
				for r := 0; r < p; r++ {
					wg.Add(1)
					go func(rank int) {
						defer wg.Done()
						_, errs[rank] = dist.RunPartitioned(comms[rank], g, dist.PartOptions{
							K: kk, Epsilon: 0.3, Model: diffuse.IC, Seed: 1,
						})
					}(r)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- SelectSeeds: per-seed scan purge (the paper's Algorithm 4 verbatim)
// vs inverted-index purge, on the largest synthetic graph in the suite.
// The indexed side includes the index build, so the comparison is the full
// end-to-end selection cost either way. ---

func BenchmarkSelectSeeds(b *testing.B) {
	// Weighted-cascade weights (the paper's WC model): RRR sets stay small,
	// coverage saturates slowly, and selection cost is dominated by the
	// per-seed purge — the regime Algorithm 4 actually runs in. Weights are
	// assigned on a private analog so the shared benchGraph cache keeps its
	// uniform-IC weights for the other benchmarks.
	d, err := gen.ByName("soc-LiveJournal1")
	if err != nil {
		b.Fatal(err)
	}
	g := d.Generate(benchScale(), 1)
	g.AssignWeightedCascade()
	n := g.NumVertices()
	col := rrr.NewCollection(n)
	sampler := diffuse.NewSampler(g, diffuse.IC)
	r := rng.New(rng.NewLCG(3))
	var buf []graph.Vertex
	for i := 0; i < 200000; i++ {
		buf = sampler.GenerateRR(r, graph.Vertex(r.Intn(n)), buf[:0])
		col.Append(buf)
	}
	k := clampK(g, 100)
	const workers = 8
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			imm.SelectSeedsScan(col, k, workers)
		}
	})
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			imm.SelectSeeds(col, k, workers)
		}
	})
	b.Run("indexed-prebuilt", func(b *testing.B) {
		idx := rrr.BuildIndex(col, workers)
		b.ReportMetric(float64(idx.Bytes())/(1<<20), "index-MB")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			imm.SelectSeedsIndexed(col, idx, k, workers)
		}
	})
}

// --- Ablations (DESIGN.md section 4) ---

// Sorted samples + binary search vs linear membership scan.
func BenchmarkAblationSortedVsLinear(b *testing.B) {
	g := benchGraph(b, "cit-HepTh")
	col := rrr.NewCollection(g.NumVertices())
	sampler := diffuse.NewSampler(g, diffuse.IC)
	r := rng.New(rng.NewLCG(3))
	var arena []graph.Vertex
	offsets := []int64{0}
	for i := 0; i < 2000; i++ {
		arena = sampler.GenerateRR(r, graph.Vertex(r.Intn(g.NumVertices())), arena)
		offsets = append(offsets, int64(len(arena)))
	}
	col.AppendArena(arena, offsets)
	probe := make([]graph.Vertex, 256)
	for i := range probe {
		probe[i] = graph.Vertex(r.Intn(g.NumVertices()))
	}
	b.Run("binary-search", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			v := probe[i%len(probe)]
			for j := 0; j < col.Count(); j++ {
				if col.Contains(j, v) {
					hits++
				}
			}
		}
		_ = hits
	})
	b.Run("linear-scan", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			v := probe[i%len(probe)]
			for j := 0; j < col.Count(); j++ {
				for _, u := range col.Sample(j) {
					if u == v {
						hits++
						break
					}
				}
			}
		}
		_ = hits
	})
}

// Compact one-directional store vs bidirectional hypergraph: seed
// selection cost (the hypergraph buys cheaper selection with double the
// memory; Table 2 shows the end-to-end trade).
func BenchmarkAblationCompactVsHyper(b *testing.B) {
	g := benchGraph(b, "cit-HepTh")
	n := g.NumVertices()
	col := rrr.NewCollection(n)
	naive := rrr.NewNaiveStore(n)
	sampler := diffuse.NewSampler(g, diffuse.IC)
	r := rng.New(rng.NewLCG(3))
	var buf []graph.Vertex
	for i := 0; i < 2000; i++ {
		buf = sampler.GenerateRR(r, graph.Vertex(r.Intn(n)), buf[:0])
		col.Append(buf)
		naive.Append(buf)
	}
	b.Run("compact-select", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			imm.SelectSeeds(col, 20, 1)
		}
	})
	b.Run("hyper-select", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			imm.SelectSeedsNaive(naive, 20)
		}
	})
}

// RNG disciplines: raw generator throughput and the sampling hot loop.
func BenchmarkAblationRNG(b *testing.B) {
	g := benchGraph(b, "cit-HepTh")
	n := g.NumVertices()
	run := func(b *testing.B, mode imm.RNGMode) {
		for i := 0; i < b.N; i++ {
			if _, err := imm.Run(g, imm.Options{K: clampK(g, 25), Epsilon: 0.5, Model: diffuse.IC, Seed: 1, RNG: mode, Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("leap-frog-LCG", func(b *testing.B) { run(b, imm.LeapFrog) })
	b.Run("per-sample-splitmix", func(b *testing.B) { run(b, imm.PerSample) })
	b.Run("raw-reverse-bfs", func(b *testing.B) {
		sampler := diffuse.NewSampler(g, diffuse.IC)
		r := rng.New(rng.NewLCG(1))
		var buf []graph.Vertex
		for i := 0; i < b.N; i++ {
			buf = sampler.GenerateRR(r, graph.Vertex(r.Intn(n)), buf[:0])
		}
	})
}

// Range-partitioned counters (Algorithm 4's no-atomics design) vs a
// single shared atomic counter array.
func BenchmarkAblationCountersAtomicVsRange(b *testing.B) {
	g := benchGraph(b, "soc-Epinions1")
	n := g.NumVertices()
	col := rrr.NewCollection(n)
	sampler := diffuse.NewSampler(g, diffuse.IC)
	r := rng.New(rng.NewLCG(3))
	var arena []graph.Vertex
	offsets := []int64{0}
	for i := 0; i < 4000; i++ {
		arena = sampler.GenerateRR(r, graph.Vertex(r.Intn(n)), arena)
		offsets = append(offsets, int64(len(arena)))
	}
	col.AppendArena(arena, offsets)
	const workers = 8
	b.Run("range-owned", func(b *testing.B) {
		counter := make([]int32, n)
		for i := 0; i < b.N; i++ {
			clear(counter)
			countRangeOwned(col, counter, workers)
		}
	})
	b.Run("atomic", func(b *testing.B) {
		counter := make([]int32, n)
		for i := 0; i < b.N; i++ {
			clear(counter)
			countAtomic(col, counter, workers)
		}
	})
}

// countRangeOwned mirrors Algorithm 4's counting: each worker owns a
// contiguous vertex interval, so writes never conflict.
func countRangeOwned(col *rrr.Collection, counter []int32, workers int) {
	n := len(counter)
	par.Run(workers, func(rank int) {
		lo, hi := par.Interval(n, workers, rank)
		col.CountRange(counter, nil, graph.Vertex(lo), graph.Vertex(hi))
	})
}

// countAtomic splits samples across workers instead, paying an atomic
// add per membership.
func countAtomic(col *rrr.Collection, counter []int32, workers int) {
	par.ForEach(col.Count(), workers, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			for _, u := range col.Sample(j) {
				atomic.AddInt32(&counter[u], 1)
			}
		}
	})
}

// Plain arena vs byte-coded RRR store: memory versus decode cost during
// counting (the extension of the paper's Section 3.1 memory optimization;
// wire format in DESIGN.md section 13).
func BenchmarkAblationCodedStore(b *testing.B) {
	g := benchGraph(b, "soc-Epinions1")
	n := g.NumVertices()
	plain := rrr.NewCollection(n)
	sampler := diffuse.NewSampler(g, diffuse.IC)
	r := rng.New(rng.NewLCG(3))
	var buf []graph.Vertex
	for i := 0; i < 3000; i++ {
		buf = sampler.GenerateRR(r, graph.Vertex(r.Intn(n)), buf[:0])
		plain.Append(buf)
	}
	coded := rrr.FromCollection(plain, rrr.NewRelabeling(rrr.IncidenceOf(plain, 1)))
	b.Logf("store bytes: plain %d, coded %d (%.2fx)",
		plain.Bytes(), coded.Bytes(), float64(plain.Bytes())/float64(coded.Bytes()))
	counter := make([]int32, n)
	b.Run("plain-count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clear(counter)
			plain.CountRange(counter, nil, 0, graph.Vertex(n))
		}
	})
	b.Run("coded-count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clear(counter)
			coded.CountAll(counter, nil)
		}
	})
}

// Tree vs ring AllReduce at IMMdist-typical buffer sizes.
func BenchmarkAblationAllReduce(b *testing.B) {
	for _, size := range []int{1 << 10, 1 << 16} {
		for _, p := range []int{4, 16} {
			b.Run(fmt.Sprintf("tree/n=%d/p=%d", size, p), func(b *testing.B) {
				benchAllReduce(b, size, p, func(c mpi.Comm, buf []int64) error {
					return mpi.AllReduce(c, buf, mpi.Sum)
				})
			})
			b.Run(fmt.Sprintf("ring/n=%d/p=%d", size, p), func(b *testing.B) {
				benchAllReduce(b, size, p, func(c mpi.Comm, buf []int64) error {
					return mpi.AllReduceRing(c, buf, mpi.Sum)
				})
			})
		}
	}
}

func benchAllReduce(b *testing.B, size, p int, f func(mpi.Comm, []int64) error) {
	comms := mpi.NewLocalCluster(p)
	bufs := make([][]int64, p)
	for r := range bufs {
		bufs[r] = make([]int64, size)
		for i := range bufs[r] {
			bufs[r][i] = int64(r + i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				if err := f(comms[rank], bufs[rank]); err != nil {
					b.Error(err)
				}
			}(r)
		}
		wg.Wait()
	}
}

// BenchmarkStoreFootprintGate is the CI-enforced acceptance gate of the
// byte-coded store (DESIGN.md section 13): on the soc-LiveJournal1 analog
// the frequency-relabeled coding must hold the same samples in at most 1/3
// of the flat arena's footprint, selection over the coded store must
// return byte-identical seeds, and its best-of-7 selection time must stay
// within 30% of SelectSeedsIndexed over the flat arena. Violations
// b.Fatalf, so a plain `go test -bench StoreFootprintGate` run fails
// loudly in CI instead of silently regressing the memory story.
func BenchmarkStoreFootprintGate(b *testing.B) {
	g := benchGraph(b, "soc-LiveJournal1")
	n := g.NumVertices()
	col := rrr.NewCollection(n)
	sampler := diffuse.NewSampler(g, diffuse.IC)
	r := rng.New(rng.NewLCG(3))
	var buf []graph.Vertex
	const samples = 6000
	for i := 0; i < samples; i++ {
		buf = sampler.GenerateRR(r, graph.Vertex(r.Intn(n)), buf[:0])
		col.Append(buf)
	}
	coded := rrr.FromCollection(col, rrr.NewRelabeling(rrr.IncidenceOf(col, 4)))

	ratio := float64(coded.FlatBytes()) / float64(coded.Bytes())
	b.Logf("store bytes: flat %d, coded %d (%.2fx; relabel table %d)",
		coded.FlatBytes(), coded.Bytes(), ratio, coded.Relabeling().Bytes())
	b.ReportMetric(ratio, "flat/coded-bytes")
	if ratio < 3.0 {
		b.Fatalf("footprint gate: coded store compresses %.2fx, need >= 3.0x", ratio)
	}

	const k, workers = 50, 4
	idx := rrr.BuildIndex(col, workers)
	cidx := rrr.BuildIndexCoded(coded, workers)
	wantSeeds, wantCov := imm.SelectSeedsIndexed(col, idx, k, workers)
	gotSeeds, gotCov := imm.SelectSeedsSketch(coded, cidx, k, workers)
	if !slices.Equal(gotSeeds, wantSeeds) || gotCov != wantCov {
		b.Fatalf("footprint gate: coded selection diverged from flat")
	}

	best := func(f func()) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < 7; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	flatBest := best(func() { imm.SelectSeedsIndexed(col, idx, k, workers) })
	codedBest := best(func() { imm.SelectSeedsSketch(coded, cidx, k, workers) })
	slowdown := float64(codedBest) / float64(flatBest)
	b.Logf("selection best-of-7: flat %v, coded %v (%.2fx)", flatBest, codedBest, slowdown)
	b.ReportMetric(slowdown, "coded/flat-select")
	if slowdown > 1.30 {
		b.Fatalf("footprint gate: coded selection %.2fx slower than flat, budget is 1.30x", slowdown)
	}

	// The timed loop re-runs the coded selection, so `-benchmem` style runs
	// still produce a conventional ns/op column for tracking.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imm.SelectSeedsSketch(coded, cidx, k, workers)
	}
}
