// Command benchdiff is the CI bench-regression gate: it parses `go test
// -bench` output, reduces repeated runs (-count=N) to per-benchmark
// medians, and either writes those medians as a committed baseline or
// compares them against one, failing when any benchmark's median ns/op
// regresses past a threshold.
//
// Compare mode (the default) prints a markdown table — suitable for a CI
// job summary — and exits non-zero on regression:
//
//	go test -bench . -count=5 . | benchdiff -baseline results/bench_baseline.json
//
// Write mode regenerates the baseline deliberately (`make bench-baseline`):
//
//	go test -bench . -count=5 . | benchdiff -write -baseline results/bench_baseline.json
//
// Benchmark names are normalized by stripping the trailing -GOMAXPROCS
// suffix, so a baseline written at -cpu 8 still matches a run at -cpu 4.
// Medians (not means) absorb the odd slow iteration a shared CI runner
// throws in; the threshold (default 15%) absorbs the rest. A benchmark
// present in the baseline but absent from the input fails the gate too —
// a gate that silently stops running its benchmarks is not a gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Baseline is the committed benchmark reference (schema 1).
type Baseline struct {
	// Schema is the file-format version.
	Schema int `json:"schema"`
	// Note documents how to regenerate the file.
	Note string `json:"note"`
	// Benchmarks maps normalized benchmark name to its reference numbers.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Entry is one benchmark's reference measurement.
type Entry struct {
	// MedianNs is the median ns/op across the repeated runs.
	MedianNs float64 `json:"median_ns"`
	// Samples is the number of runs the median was taken over.
	Samples int `json:"samples"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
// "BenchmarkSampleBatch/fused/WC-8  2  126252592 ns/op  683.0 balance‰".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.eE+]+) ns/op`)

// parseBench reads go-test bench output and returns ns/op samples per
// normalized benchmark name, in input order.
func parseBench(r io.Reader) (map[string][]float64, []string, error) {
	samples := make(map[string][]float64)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		if _, seen := samples[m[1]]; !seen {
			order = append(order, m[1])
		}
		samples[m[1]] = append(samples[m[1]], ns)
	}
	return samples, order, sc.Err()
}

// median returns the median of xs (mean of the middle pair for even
// lengths). xs must be non-empty; it is not modified.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

func run() error {
	var (
		baselinePath = flag.String("baseline", "results/bench_baseline.json", "baseline JSON path")
		write        = flag.Bool("write", false, "write the baseline from the input instead of comparing")
		threshold    = flag.Float64("threshold", 0.15, "median regression fraction that fails the gate")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		return fmt.Errorf("at most one input file (default stdin)")
	}

	samples, order, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("no benchmark result lines in input")
	}

	if *write {
		b := Baseline{
			Schema:     1,
			Note:       "regenerate with `make bench-baseline` on the reference machine",
			Benchmarks: make(map[string]Entry, len(samples)),
		}
		for name, xs := range samples {
			b.Benchmarks[name] = Entry{MedianNs: median(xs), Samples: len(xs)}
		}
		buf, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*baselinePath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d benchmark medians to %s\n", len(b.Benchmarks), *baselinePath)
		return nil
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %v", *baselinePath, err)
	}
	if base.Schema != 1 {
		return fmt.Errorf("%s: unsupported schema %d", *baselinePath, base.Schema)
	}

	if compare(os.Stdout, samples, order, base, *threshold) {
		return fmt.Errorf("bench gate failed (threshold %.0f%%)", *threshold*100)
	}
	return nil
}

// compare writes the markdown comparison table to w and reports whether
// the gate failed: any benchmark whose current median exceeds its
// baseline by more than threshold, or any baselined benchmark missing
// from the input.
func compare(w io.Writer, samples map[string][]float64, order []string, base Baseline, threshold float64) bool {
	fmt.Fprintln(w, "| benchmark | baseline | current | delta | status |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---|")
	failed := false
	for _, name := range order {
		cur := median(samples[name])
		ref, ok := base.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "| %s | — | %s | — | new |\n", name, fmtNs(cur))
			continue
		}
		delta := cur/ref.MedianNs - 1
		status := "ok"
		if delta > threshold {
			status = fmt.Sprintf("**REGRESSION** (>%.0f%%)", threshold*100)
			failed = true
		}
		fmt.Fprintf(w, "| %s | %s | %s | %+.1f%% | %s |\n", name, fmtNs(ref.MedianNs), fmtNs(cur), delta*100, status)
	}
	var missing []string
	for name := range base.Benchmarks {
		if _, ok := samples[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(w, "| %s | %s | — | — | **MISSING** |\n", name, fmtNs(base.Benchmarks[name].MedianNs))
		failed = true
	}
	return failed
}

// fmtNs renders a ns/op value at a human scale.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	}
	return fmt.Sprintf("%.0fns", ns)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}
