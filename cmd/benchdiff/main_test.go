package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
BenchmarkSampleBatch/scalar/IC-8         	       2	 500000000 ns/op	       900.0 balance‰
BenchmarkSampleBatch/scalar/IC-8         	       2	 520000000 ns/op	       900.0 balance‰
BenchmarkSampleBatch/scalar/IC-8         	       2	 480000000 ns/op	       900.0 balance‰
BenchmarkSampleBatch/fused/IC-8          	       4	 200000000 ns/op	  33043724 coins/op
BenchmarkSampleBatch/fused/IC-8          	       4	 210000000 ns/op	  33043724 coins/op
BenchmarkSelectSeeds                     	       1	1200000.5 ns/op
PASS
ok  	influmax	12.3s
`

// TestParseBench pins the parser: the -GOMAXPROCS suffix is stripped, all
// repeats of a name are collected in input order, and suffix-free names
// (benchtime 1x runs print none) parse too.
func TestParseBench(t *testing.T) {
	samples, order, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{
		"BenchmarkSampleBatch/scalar/IC",
		"BenchmarkSampleBatch/fused/IC",
		"BenchmarkSelectSeeds",
	}
	if len(order) != len(wantOrder) {
		t.Fatalf("order = %v, want %v", order, wantOrder)
	}
	for i := range order {
		if order[i] != wantOrder[i] {
			t.Fatalf("order = %v, want %v", order, wantOrder)
		}
	}
	if n := len(samples["BenchmarkSampleBatch/scalar/IC"]); n != 3 {
		t.Fatalf("scalar/IC samples = %d, want 3", n)
	}
	if got := samples["BenchmarkSelectSeeds"][0]; got != 1200000.5 {
		t.Fatalf("SelectSeeds ns/op = %v, want 1200000.5", got)
	}
}

// TestMedian pins odd, even, and single-sample reductions.
func TestMedian(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{7}, 7},
	}
	for _, tc := range cases {
		if got := median(tc.xs); got != tc.want {
			t.Fatalf("median(%v) = %v, want %v", tc.xs, got, tc.want)
		}
	}
}

// TestMedianDoesNotMutate: the gate compares each name once; reusing the
// sample slice afterwards (e.g. for a verbose dump) must see input order.
func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("median mutated its input: %v", xs)
	}
}

// TestCompareGate pins the gate semantics: within-threshold drift passes,
// a median regression past the threshold fails, a benchmark new to the
// input is reported without failing, and a baselined benchmark missing
// from the input fails (a gate that stops running its benchmarks must not
// pass silently).
func TestCompareGate(t *testing.T) {
	base := Baseline{Schema: 1, Benchmarks: map[string]Entry{
		"BenchmarkA": {MedianNs: 100, Samples: 5},
		"BenchmarkB": {MedianNs: 100, Samples: 5},
	}}
	var out strings.Builder

	ok := map[string][]float64{"BenchmarkA": {110}, "BenchmarkB": {90}}
	if compare(&out, ok, []string{"BenchmarkA", "BenchmarkB"}, base, 0.15) {
		t.Fatalf("10%% drift failed the 15%% gate:\n%s", out.String())
	}

	out.Reset()
	regressed := map[string][]float64{"BenchmarkA": {120}, "BenchmarkB": {90}}
	if !compare(&out, regressed, []string{"BenchmarkA", "BenchmarkB"}, base, 0.15) {
		t.Fatal("20% regression passed the 15% gate")
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("table does not flag the regression:\n%s", out.String())
	}

	out.Reset()
	withNew := map[string][]float64{"BenchmarkA": {100}, "BenchmarkB": {100}, "BenchmarkC": {1}}
	if compare(&out, withNew, []string{"BenchmarkA", "BenchmarkB", "BenchmarkC"}, base, 0.15) {
		t.Fatalf("a new benchmark failed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "new") {
		t.Fatalf("table does not mark the new benchmark:\n%s", out.String())
	}

	out.Reset()
	missing := map[string][]float64{"BenchmarkA": {100}}
	if !compare(&out, missing, []string{"BenchmarkA"}, base, 0.15) {
		t.Fatal("missing baselined benchmark passed the gate")
	}
	if !strings.Contains(out.String(), "MISSING") {
		t.Fatalf("table does not mark the missing benchmark:\n%s", out.String())
	}
}
