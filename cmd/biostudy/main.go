// Command biostudy runs the Section 5 biology case study end to end:
// synthesize module-structured omics measurements, infer a co-expression
// network (the GENIE3 stand-in), select influential features with IMM and
// with the centrality comparators, and score all of them by
// pathway-enrichment analysis against the planted ground truth.
//
//	biostudy -features 2000 -samples 80 -modules 8 -k 60
package main

import (
	"flag"
	"fmt"
	"os"

	"influmax"
	"influmax/internal/bio"
	"influmax/internal/centrality"
)

func main() {
	var (
		features = flag.Int("features", 1500, "measured entities (transcripts/proteins/metabolites)")
		samples  = flag.Int("samples", 70, "experiments")
		modules  = flag.Int("modules", 8, "planted co-regulated modules")
		modSize  = flag.Int("modsize", 40, "features per module")
		signal   = flag.Float64("signal", 0.8, "module loading in (0,1)")
		k        = flag.Int("k", 0, "selection budget (0 = 3% of features)")
		eps      = flag.Float64("eps", 0.13, "IMM accuracy")
		decoys   = flag.Int("decoys", 8, "decoy pathways")
		noise    = flag.Float64("noise", 0.15, "pathway membership noise")
		damp     = flag.Float64("damp", 0.035, "weight damping into the diffusive regime")
		alpha    = flag.Float64("alpha", 0.05, "enrichment significance level (BH-adjusted)")
		seed     = flag.Uint64("seed", 2026, "random seed")
		workers  = flag.Int("workers", 0, "threads (0 = all cores)")
		top      = flag.Int("top", 5, "top enrichments to print per method")
	)
	flag.Parse()

	cfg := bio.ExprConfig{
		Features: *features, Samples: *samples,
		Modules: *modules, ModuleSize: *modSize,
		Signal: *signal, Seed: *seed,
	}
	fmt.Printf("synthesizing %d features x %d samples (%d modules of %d, signal %.2f)\n",
		cfg.Features, cfg.Samples, cfg.Modules, cfg.ModuleSize, cfg.Signal)
	expr := bio.SyntheticExpression(cfg)

	fmt.Println("inferring co-expression network (correlation stand-in for GENIE3)...")
	g := bio.InferNetworkTop(expr, 5*cfg.Features)
	g.ScaleWeights(float32(*damp))
	st := g.ComputeStats()
	fmt.Printf("network: %d vertices, %d edges, max degree %d\n", st.Vertices, st.Edges, st.MaxDegree)

	kk := *k
	if kk <= 0 {
		kk = 3 * cfg.Features / 100
	}
	pathways := bio.SyntheticPathways(expr, *decoys, *noise, *seed^0xDB)

	res, err := influmax.Maximize(g, influmax.Options{
		K: kk, Epsilon: *eps, Model: influmax.IC, Workers: *workers, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "biostudy: %v\n", err)
		os.Exit(1)
	}

	methods := []struct {
		name  string
		picks []influmax.Vertex
	}{
		{fmt.Sprintf("IMM (k=%d, eps=%.2f)", kk, *eps), res.Seeds},
		{"degree centrality", centrality.TopK(centrality.TotalDegree(g), kk)},
		{"betweenness centrality", centrality.TopK(centrality.Betweenness(g, *workers), kk)},
	}
	for _, m := range methods {
		enr := bio.Enrich(m.picks, pathways, cfg.Features)
		fmt.Printf("\n%s: %d pathways enriched at adj p < %g; %d/%d ground-truth modules\n",
			m.name, bio.CountSignificant(enr, *alpha), *alpha,
			bio.TruePositives(enr, *alpha), cfg.Modules)
		for i := 0; i < *top && i < len(enr); i++ {
			e := enr[i]
			marker := " "
			if e.AdjP < *alpha {
				marker = "*"
			}
			fmt.Printf("  %s %-12s overlap %3d   p=%.3g adj=%.3g\n", marker, e.Pathway, e.Overlap, e.P, e.AdjP)
		}
	}
}
