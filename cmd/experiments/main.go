// Command experiments regenerates the paper's tables and figures on the
// synthetic SNAP analogs.
//
//	experiments -scale 0.01 table2          # one experiment to stdout
//	experiments -scale 0.01 -csv fig2       # CSV instead of markdown
//	experiments -scale 0.005 -o results all # everything, one file per experiment
//
// Experiments: fig1 table2 fig2 fig3 fig4 fig5 fig6 fig7 fig8 table3 bio all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"influmax"
	"influmax/internal/harness"
)

func main() {
	var (
		scale    = flag.Float64("scale", 0.01, "dataset analog scale in (0,1]")
		seed     = flag.Uint64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "max threads (0 = all cores)")
		datasets = flag.String("datasets", "", "comma-separated dataset filter")
		threads  = flag.String("threads", "", "comma-separated thread counts for fig5/fig6")
		ranks    = flag.String("ranks", "", "comma-separated rank counts for fig7/fig8")
		trials   = flag.Int("trials", 2000, "Monte Carlo trials for quality evaluation")
		baseK    = flag.Int("basek", 0, "override k of fig5/fig6/table3 shared-memory rows (0 = paper's 100)")
		distEps  = flag.Float64("disteps", 0, "override eps of fig7/fig8/table3 IMMdist (0 = paper's 0.13)")
		distK    = flag.Int("distk", 0, "override k of fig7/fig8/table3 IMMdist (0 = paper's 200)")
		csv      = flag.Bool("csv", false, "emit CSV instead of markdown")
		outDir   = flag.String("o", "", "write one file per experiment into this directory")

		metricsJSON = flag.String("metrics-json", "", "write every run's RunReport as one JSON array to this file")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the whole regeneration to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file after the run")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fatal("pass experiment names (fig1..fig8, table2, table3, bio) or 'all'")
	}

	if *pprofAddr != "" {
		srv, err := influmax.StartPprofServer(*pprofAddr)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "experiments: pprof on http://%s/debug/pprof/\n", srv.Addr)
	}

	cfg := harness.Config{
		Scale:   *scale,
		Seed:    *seed,
		Workers: *workers,
		Trials:  *trials,
		BaseK:   *baseK,
		DistEps: *distEps,
		DistK:   *distK,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	var err error
	if cfg.Threads, err = parseInts(*threads); err != nil {
		fatal("-threads: %v", err)
	}
	if cfg.Ranks, err = parseInts(*ranks); err != nil {
		fatal("-ranks: %v", err)
	}
	if *metricsJSON != "" {
		cfg.Reports = influmax.NewReportLog()
	}
	stopCPU := func() error { return nil }
	if *cpuProfile != "" {
		if stopCPU, err = influmax.StartCPUProfile(*cpuProfile); err != nil {
			fatal("%v", err)
		}
	}

	wanted := map[string]bool{}
	for _, a := range flag.Args() {
		wanted[a] = true
	}
	ran := 0
	for _, d := range harness.Drivers() {
		if !wanted["all"] && !wanted[d.Name] {
			continue
		}
		fmt.Fprintf(os.Stderr, "experiments: running %s (scale %g)...\n", d.Name, cfg.Scale)
		t, err := d.Run(cfg)
		if err != nil {
			fatal("%s: %v", d.Name, err)
		}
		body := t.Markdown()
		ext := "md"
		if *csv {
			body, ext = t.CSV(), "csv"
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal("%v", err)
			}
			path := filepath.Join(*outDir, d.Name+"."+ext)
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				fatal("%v", err)
			}
			fmt.Fprintf(os.Stderr, "experiments: wrote %s\n", path)
		} else {
			fmt.Println(body)
		}
		ran++
	}
	if ran == 0 {
		fatal("no experiment matched %v", flag.Args())
	}
	if err := stopCPU(); err != nil {
		fatal("%v", err)
	}
	if *memProfile != "" {
		if err := influmax.WriteHeapProfile(*memProfile); err != nil {
			fatal("%v", err)
		}
	}
	if *metricsJSON != "" {
		if err := cfg.Reports.WriteFile(*metricsJSON); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote %d run reports to %s\n", cfg.Reports.Len(), *metricsJSON)
	}
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
