// Command graphgen synthesizes graphs: either a scaled analog of one of
// the paper's eight SNAP datasets or a parametric random graph, with a
// chosen edge-weighting scheme, written as an edge list or binary file.
//
// Examples:
//
//	graphgen -dataset cit-HepTh -scale 0.05 -weights uniform -o hep.txt
//	graphgen -family rmat -n 10000 -m 80000 -weights wc -format bin -o g.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"influmax"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "SNAP analog name (see -list)")
		family  = flag.String("family", "", "generator family: er, ba, ws, rmat")
		n       = flag.Int("n", 1000, "vertex count (parametric families)")
		m       = flag.Int("m", 8000, "edge count (er, rmat)")
		mPer    = flag.Int("mper", 8, "edges per new vertex (ba) / lattice degree (ws)")
		beta    = flag.Float64("beta", 0.1, "rewiring probability (ws)")
		scale   = flag.Float64("scale", 0.01, "dataset analog scale in (0,1]")
		seed    = flag.Uint64("seed", 1, "random seed")
		weights = flag.String("weights", "uniform", "weight scheme: uniform, const:<p>, wc, none")
		lt      = flag.Bool("lt", false, "normalize in-weights for the LT model")
		format  = flag.String("format", "txt", "output format: txt, bin")
		out     = flag.String("o", "", "output file (default stdout)")
		list    = flag.Bool("list", false, "list dataset analog names and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range influmax.DatasetNames() {
			fmt.Println(name)
		}
		return
	}

	var g *influmax.Graph
	switch {
	case *dataset != "":
		g = influmax.Generate(*dataset, *scale, *seed)
	case *family != "":
		switch *family {
		case "er":
			g = influmax.ErdosRenyi(*n, *m, *seed)
		case "ba":
			g = influmax.BarabasiAlbert(*n, *mPer, *seed)
		case "ws":
			g = influmax.WattsStrogatz(*n, *mPer, *beta, *seed)
		case "rmat":
			g = influmax.RMAT(*n, *m, 0.57, 0.19, 0.19, *seed)
		default:
			fatal("unknown family %q (want er, ba, ws, rmat)", *family)
		}
	default:
		fatal("pass -dataset or -family (try -list)")
	}

	switch {
	case *weights == "uniform":
		g.AssignUniform(*seed ^ 0x5eed)
	case *weights == "wc":
		g.AssignWeightedCascade()
	case *weights == "none":
	case len(*weights) > 6 && (*weights)[:6] == "const:":
		var p float64
		if _, err := fmt.Sscanf(*weights, "const:%g", &p); err != nil {
			fatal("bad -weights %q: %v", *weights, err)
		}
		g.AssignConstant(float32(p))
	default:
		fatal("unknown -weights %q", *weights)
	}
	if *lt {
		g.NormalizeLT()
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("create %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "txt":
		err = influmax.WriteEdgeList(w, g)
	case "bin":
		err = influmax.WriteBinary(w, g)
	default:
		fatal("unknown -format %q", *format)
	}
	if err != nil {
		fatal("write: %v", err)
	}
	st := g.ComputeStats()
	fmt.Fprintf(os.Stderr, "graphgen: %d vertices, %d edges, avg degree %.2f, max degree %d\n",
		st.Vertices, st.Edges, st.AvgDegree, st.MaxDegree)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphgen: "+format+"\n", args...)
	os.Exit(1)
}
