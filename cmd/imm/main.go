// Command imm finds a maximum-influence seed set with the parallel IMM
// algorithm.
//
// Input is an edge list ("u v [w]" lines, '#' comments), a binary graph
// written by graphgen, or a generated SNAP analog:
//
//	imm -graph network.txt -k 50 -eps 0.5 -model IC -workers 8
//	imm -dataset com-Orkut -scale 0.005 -k 100 -eps 0.13 -verify 10000
//
// It prints the seed set, the estimated spread and the phase breakdown of
// Algorithm 1 (EstimateTheta / Sample / SelectSeeds / Other).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"influmax"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "edge-list or binary graph file")
		binary      = flag.Bool("bin", false, "input file is binary (graphgen -format bin)")
		dataset     = flag.String("dataset", "", "generate a SNAP analog instead of reading a file")
		scale       = flag.Float64("scale", 0.01, "analog scale")
		k           = flag.Int("k", 50, "seed set size")
		eps         = flag.Float64("eps", 0.5, "accuracy parameter (smaller = better approximation)")
		modelStr    = flag.String("model", "IC", "diffusion model: IC or LT")
		workers     = flag.Int("workers", 0, "threads (0 = all cores; 1 = sequential IMMopt)")
		seed        = flag.Uint64("seed", 1, "random seed")
		weights     = flag.String("weights", "uniform", "weight scheme when generating: uniform, wc, const:<p>, none")
		baseline    = flag.Bool("baseline", false, "run the Tang-style sequential baseline instead")
		leapfrog    = flag.Bool("leapfrog", false, "use leap-frog RNG splitting (paper mode) instead of per-sample")
		schedule    = flag.String("schedule", "dynamic", "sampling-loop schedule: dynamic (work-stealing) or static (paper's contiguous split)")
		kernelStr   = flag.String("kernel", "fused", "sampling kernel: fused (batched CSR frontier) or scalar (per-sample reverse BFS; byte-identical results, -leapfrog always uses scalar)")
		storeStr    = flag.String("store", "flat", "RRR store for the final selection: flat (uint32 arena) or coded (byte-coded, ~3x smaller; same seeds)")
		verify      = flag.Int("verify", 0, "if > 0, evaluate the seed set with this many Monte Carlo cascades")
		audience    = flag.String("audience", "", "comma-separated vertex ids: maximize influence over this audience only (targeted query mode)")
		budget      = flag.Float64("budget", 0, "total budget for cost-aware selection with unit costs (budgeted query mode; selection may stop before -k seeds)")
		blocked     = flag.String("blocked", "", "comma-separated vertex ids a rival already holds: excluded and their coverage pre-purged (competitive query mode)")
		jsonOut     = flag.Bool("json", false, "emit the result as JSON on stdout (machine-readable)")
		metricsJSON = flag.String("metrics-json", "", "write a structured RunReport (JSON, schema 1) to this file")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the maximization to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file after the run")
	)
	flag.Parse()

	if *pprofAddr != "" {
		srv, err := influmax.StartPprofServer(*pprofAddr)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "imm: pprof on http://%s/debug/pprof/\n", srv.Addr)
	}

	model, err := influmax.ParseModel(*modelStr)
	if err != nil {
		fatal("%v", err)
	}
	sched, err := influmax.ParseSchedule(*schedule)
	if err != nil {
		fatal("%v", err)
	}
	store, err := influmax.ParseStoreKind(*storeStr)
	if err != nil {
		fatal("%v", err)
	}
	kernel, err := influmax.ParseKernel(*kernelStr)
	if err != nil {
		fatal("%v", err)
	}

	// With -metrics-json, a SIGINT/SIGTERM mid-run still leaves a report:
	// the handler flushes a partial one (configuration + whatever engine
	// counters have accumulated, Interrupted=true) before exiting. Armed
	// before the slow phases (graph load, maximization) so a kill at any
	// point is caught.
	var reg *influmax.MetricsRegistry
	var disarm func()
	if *metricsJSON != "" {
		reg = influmax.NewMetricsRegistry()
		alg := "IMMmt"
		if *baseline {
			alg = "IMM"
		}
		disarm = flushOnSignal("imm", *metricsJSON, func() *influmax.RunReport {
			rep := influmax.NewPartialReport(alg)
			rep.Model = model.String()
			rep.K, rep.Epsilon, rep.Seed, rep.Workers = *k, *eps, *seed, *workers
			rep.Metrics = reg.Snapshot()
			return rep
		})
	}

	g, err := loadGraph(*graphPath, *binary, *dataset, *scale, *seed, *weights)
	if err != nil {
		fatal("%v", err)
	}
	if model == influmax.LT {
		g.NormalizeLT()
	}
	st := g.ComputeStats()
	if !*jsonOut {
		fmt.Printf("graph: %d vertices, %d edges, avg degree %.2f, max degree %d\n",
			st.Vertices, st.Edges, st.AvgDegree, st.MaxDegree)
	}

	if *audience != "" || *budget > 0 || *blocked != "" {
		// Query-diversity mode: build a resident sketch and run the general
		// selection shapes of DESIGN.md §17 over it.
		if err := runQueryMode(g, st, model, sched, kernel, store, reg,
			*k, *eps, *seed, *workers, *audience, *budget, *blocked, *verify, *jsonOut); err != nil {
			fatal("%v", err)
		}
		return
	}

	opt := influmax.Options{K: *k, Epsilon: *eps, Model: model, Workers: *workers, Seed: *seed, Schedule: sched, Store: store, Kernel: kernel}
	if *leapfrog {
		opt.RNG = influmax.LeapFrog
	}
	if *metricsJSON != "" {
		opt.Metrics = reg
	}
	stopCPU := func() error { return nil }
	if *cpuProfile != "" {
		stopCPU, err = influmax.StartCPUProfile(*cpuProfile)
		if err != nil {
			fatal("%v", err)
		}
	}
	var res *influmax.Result
	if *baseline {
		res, err = influmax.MaximizeBaseline(g, opt)
	} else {
		res, err = influmax.Maximize(g, opt)
	}
	if stopErr := stopCPU(); stopErr != nil {
		fatal("%v", stopErr)
	}
	if err != nil {
		fatal("%v", err)
	}
	if *memProfile != "" {
		if err := influmax.WriteHeapProfile(*memProfile); err != nil {
			fatal("%v", err)
		}
	}

	var verified *verifiedSpread
	if *verify > 0 {
		mean, se := influmax.Spread(g, model, res.Seeds, *verify, *workers, *seed^0xe7a1)
		verified = &verifiedSpread{Mean: mean, StdErr: se, Trials: *verify}
	}

	if *metricsJSON != "" {
		disarm() // the run finished; the complete report supersedes the partial one
		rep := influmax.Report(res, opt)
		rep.Graph = &influmax.GraphInfo{
			Vertices: st.Vertices, Edges: st.Edges,
			AvgDegree: st.AvgDegree, MaxDegree: st.MaxDegree,
		}
		if verified != nil {
			rep.Verified = &influmax.VerifiedSpread{
				Mean: verified.Mean, StdErr: verified.StdErr, Trials: verified.Trials,
			}
		}
		if err := rep.WriteFile(*metricsJSON); err != nil {
			fatal("%v", err)
		}
	}

	if *jsonOut {
		out := jsonResult{
			Graph: jsonGraph{
				Vertices: st.Vertices, Edges: st.Edges,
				AvgDegree: st.AvgDegree, MaxDegree: st.MaxDegree,
			},
			Model: model.String(), K: *k, Epsilon: *eps, Workers: res.Workers,
			Seeds: res.Seeds, Theta: res.Theta, SamplesGenerated: res.SamplesGenerated,
			EstimatedSpread: res.EstimatedSpread, CoverageFraction: res.CoverageFraction,
			Store: res.Store.String(), StoreBytes: res.StoreBytes,
			FlatStoreBytes: res.FlatStoreBytes, TotalSeconds: res.Phases.Total().Seconds(),
			Verified: verified,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal("%v", err)
		}
		return
	}

	fmt.Printf("theta: %d (lower bound on OPT: %.1f); samples generated: %d; store: %.2f MB (%s)\n",
		res.Theta, res.LowerBound, res.SamplesGenerated, float64(res.StoreBytes)/(1<<20), res.Store)
	if res.Store == influmax.StoreCoded && res.StoreBytes > 0 {
		fmt.Printf("store compression: %.2fx vs flat (%.2f MB)\n",
			float64(res.FlatStoreBytes)/float64(res.StoreBytes), float64(res.FlatStoreBytes)/(1<<20))
	}
	fmt.Printf("phases: %s (total %v, %d workers)\n", res.Phases.String(), res.Phases.Total(), res.Workers)
	fmt.Printf("estimated spread: %.1f vertices (coverage %.4f)\n", res.EstimatedSpread, res.CoverageFraction)
	fmt.Printf("seeds (selection order): %v\n", res.Seeds)
	if verified != nil {
		fmt.Printf("verified spread: %.1f ± %.1f (over %d cascades)\n",
			verified.Mean, 2*verified.StdErr, verified.Trials)
	}
}

// jsonGraph, verifiedSpread and jsonResult define the -json wire shape.
type jsonGraph struct {
	Vertices  int     `json:"vertices"`
	Edges     int64   `json:"edges"`
	AvgDegree float64 `json:"avgDegree"`
	MaxDegree int     `json:"maxDegree"`
}

type verifiedSpread struct {
	Mean   float64 `json:"mean"`
	StdErr float64 `json:"stdErr"`
	Trials int     `json:"trials"`
}

type jsonResult struct {
	Graph            jsonGraph         `json:"graph"`
	Model            string            `json:"model"`
	K                int               `json:"k"`
	Epsilon          float64           `json:"epsilon"`
	Workers          int               `json:"workers"`
	Seeds            []influmax.Vertex `json:"seeds"`
	Theta            int64             `json:"theta"`
	SamplesGenerated int               `json:"samplesGenerated"`
	EstimatedSpread  float64           `json:"estimatedSpread"`
	CoverageFraction float64           `json:"coverageFraction"`
	Store            string            `json:"store"`
	StoreBytes       int64             `json:"storeBytes"`
	FlatStoreBytes   int64             `json:"flatStoreBytes,omitempty"`
	TotalSeconds     float64           `json:"totalSeconds"`
	Verified         *verifiedSpread   `json:"verified,omitempty"`
	// Query-diversity extras (present only in -audience/-budget/-blocked
	// mode).
	Gains       []int64 `json:"gains,omitempty"`
	Covered     int64   `json:"covered,omitempty"`
	Eligible    int64   `json:"eligible,omitempty"`
	SpentBudget float64 `json:"spentBudget,omitempty"`
}

// parseVertexList parses a comma-separated vertex-id list ("" = empty).
func parseVertexList(s string, n int) ([]influmax.Vertex, error) {
	if s == "" {
		return nil, nil
	}
	var out []influmax.Vertex
	for _, part := range splitComma(s) {
		var v uint64
		if _, err := fmt.Sscanf(part, "%d", &v); err != nil || int64(v) >= int64(n) {
			return nil, fmt.Errorf("bad vertex id %q (want 0 <= id < %d)", part, n)
		}
		out = append(out, influmax.Vertex(v))
	}
	return out, nil
}

func splitComma(s string) []string {
	var parts []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				parts = append(parts, s[start:i])
			}
			start = i + 1
		}
	}
	return parts
}

// runQueryMode builds a resident sketch and runs the budgeted / targeted /
// blocked selection shapes over it, then reports like a normal run (the
// estimated spread is the RIS estimate over the sketch's samples).
func runQueryMode(g *influmax.Graph, st influmax.GraphStats, model influmax.Model,
	sched influmax.Schedule, kernel influmax.Kernel, store influmax.StoreKind,
	reg *influmax.MetricsRegistry,
	k int, eps float64, seed uint64, workers int,
	audience string, budget float64, blocked string, verify int, jsonOut bool) error {
	aud, err := parseVertexList(audience, g.NumVertices())
	if err != nil {
		return fmt.Errorf("-audience: %w", err)
	}
	blk, err := parseVertexList(blocked, g.NumVertices())
	if err != nil {
		return fmt.Errorf("-blocked: %w", err)
	}
	key := influmax.SketchKey{GraphDigest: g.Digest(), Model: model, Epsilon: eps, KMax: k, Seed: seed}
	sk, err := influmax.BuildSketch(g, key, workers, sched, kernel, store, reg)
	if err != nil {
		return err
	}
	q := influmax.SketchQuery{K: k, Budget: budget, Audience: aud, Blocked: blk}
	qr, err := influmax.QuerySketch(sk, q, workers)
	if err != nil {
		return err
	}
	theta := sk.Theta
	coverage := 0.0
	if theta > 0 {
		coverage = float64(qr.Covered) / float64(theta)
	}
	estimated := coverage * float64(g.NumVertices())

	var verified *verifiedSpread
	if verify > 0 && len(qr.Seeds) > 0 {
		mean, se := influmax.Spread(g, model, qr.Seeds, verify, workers, seed^0xe7a1)
		verified = &verifiedSpread{Mean: mean, StdErr: se, Trials: verify}
	}

	if jsonOut {
		out := jsonResult{
			Graph: jsonGraph{
				Vertices: st.Vertices, Edges: st.Edges,
				AvgDegree: st.AvgDegree, MaxDegree: st.MaxDegree,
			},
			Model: model.String(), K: k, Epsilon: eps, Workers: workers,
			Seeds: qr.Seeds, Theta: theta, SamplesGenerated: sk.Col.Count(),
			EstimatedSpread: estimated, CoverageFraction: coverage,
			Store: sk.Store().String(), StoreBytes: sk.Col.Bytes(),
			Gains: qr.Gains, Covered: qr.Covered, Eligible: qr.Eligible,
			SpentBudget: qr.SpentBudget, Verified: verified,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Printf("theta: %d; eligible samples: %d\n", theta, qr.Eligible)
	if len(aud) > 0 {
		fmt.Printf("audience: %d vertices (targeted mode)\n", len(aud))
	}
	if len(blk) > 0 {
		fmt.Printf("blocked: %v (competitive mode)\n", blk)
	}
	if budget > 0 {
		fmt.Printf("budget: %g, spent: %g (unit costs)\n", budget, qr.SpentBudget)
	}
	fmt.Printf("estimated spread: %.1f vertices (coverage %.4f)\n", estimated, coverage)
	fmt.Printf("seeds (selection order): %v\n", qr.Seeds)
	fmt.Printf("gains (covered samples): %v\n", qr.Gains)
	if verified != nil {
		fmt.Printf("verified spread: %.1f ± %.1f (over %d cascades)\n",
			verified.Mean, 2*verified.StdErr, verified.Trials)
	}
	return nil
}

// loadGraph resolves the input source and assigns weights for generated
// graphs (file inputs keep their stored weights unless they are all zero).
func loadGraph(path string, binary bool, dataset string, scale float64, seed uint64, weights string) (*influmax.Graph, error) {
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if binary {
			return influmax.ReadBinary(f)
		}
		g, _, err := influmax.ParseEdgeList(f)
		return g, err
	case dataset != "":
		g := influmax.Generate(dataset, scale, seed)
		switch {
		case weights == "uniform":
			g.AssignUniform(seed ^ 0x5eed)
		case weights == "wc":
			g.AssignWeightedCascade()
		case weights == "none":
		default:
			var p float64
			if _, err := fmt.Sscanf(weights, "const:%g", &p); err != nil {
				return nil, fmt.Errorf("bad -weights %q", weights)
			}
			g.AssignConstant(float32(p))
		}
		return g, nil
	}
	return nil, fmt.Errorf("pass -graph <file> or -dataset <name>")
}

// flushOnSignal arranges for SIGINT/SIGTERM to write partial() to path
// and exit 130; the returned disarm stops listening once the real report
// has been written.
func flushOnSignal(prog, path string, partial func() *influmax.RunReport) func() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		if err := partial().WriteFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "%s: flushing partial report: %v\n", prog, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%s: interrupted; partial report written to %s\n", prog, path)
		os.Exit(130)
	}()
	return func() { signal.Stop(sig) }
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "imm: "+format+"\n", args...)
	os.Exit(1)
}
