// Command immdist runs distributed IMM (IMMdist, Section 3.2 of the
// paper) in one of two modes:
//
// Local mode — all ranks inside one process over the in-process transport
// (the scaled-down stand-in for a multi-node MPI job):
//
//	immdist -dataset com-Orkut -scale 0.005 -ranks 8 -k 200 -eps 0.13
//
// TCP mode — one process per rank, full-mesh sockets (run the same command
// on every host with its own -rank):
//
//	immdist -dataset com-Orkut -scale 0.005 -k 200 -eps 0.13 \
//	        -rank 0 -addrs host0:9000,host1:9000
//	immdist ... -rank 1 -addrs host0:9000,host1:9000
//
// All ranks print the identical seed set; rank 0 prints the summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"influmax"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "edge-list graph file (all ranks need the same file)")
		dataset     = flag.String("dataset", "com-Orkut", "SNAP analog to generate")
		scale       = flag.Float64("scale", 0.005, "analog scale")
		k           = flag.Int("k", 200, "seed set size")
		eps         = flag.Float64("eps", 0.13, "accuracy parameter")
		modelStr    = flag.String("model", "IC", "diffusion model: IC or LT")
		threads     = flag.Int("threads", 1, "threads per rank (hybrid model)")
		schedule    = flag.String("schedule", "dynamic", "intra-rank sampling-loop schedule: dynamic (work-stealing) or static (paper's contiguous split)")
		storeStr    = flag.String("store", "flat", "rank-local RRR store for selection: flat (uint32 arena) or coded (byte-coded, ~3x smaller; same seeds; must agree across ranks)")
		kernelStr   = flag.String("kernel", "fused", "intra-rank sampling kernel: fused (batched CSR frontier) or scalar (per-sample reverse BFS; same seeds, must agree across ranks)")
		seed        = flag.Uint64("seed", 1, "random seed (must agree across ranks)")
		ranks       = flag.Int("ranks", 4, "local mode: number of in-process ranks")
		rank        = flag.Int("rank", -1, "TCP mode: this process's rank")
		addrsStr    = flag.String("addrs", "", "TCP mode: comma-separated listen addresses, one per rank")
		part        = flag.Bool("partitioned", false, "partition the graph across ranks too (future-work extension)")
		netTimeout  = flag.Duration("net-timeout", 0, "per-message send/receive deadline; a peer silent past this bound surfaces as a rank failure instead of a hang (0 = wait forever)")
		faultPlan   = flag.String("fault-plan", "", "inject deterministic transport faults for soak testing, e.g. 'seed=7,delay=0.2/5ms,drop=0.1/3,dup=0.05,reorder=0.1,kill=1@500' (see mpi.ParseFaultPlan)")
		metricsJSON = flag.String("metrics-json", "", "write rank 0's merged RunReport (JSON, schema 1) to this file")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file after the run")
	)
	flag.Parse()

	if *pprofAddr != "" {
		srv, err := influmax.StartPprofServer(*pprofAddr)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "immdist: pprof on http://%s/debug/pprof/\n", srv.Addr)
	}

	model, err := influmax.ParseModel(*modelStr)
	if err != nil {
		fatal("%v", err)
	}
	sched, err := influmax.ParseSchedule(*schedule)
	if err != nil {
		fatal("%v", err)
	}
	store, err := influmax.ParseStoreKind(*storeStr)
	if err != nil {
		fatal("%v", err)
	}
	kernel, err := influmax.ParseKernel(*kernelStr)
	if err != nil {
		fatal("%v", err)
	}
	plan, err := influmax.ParseFaultPlan(*faultPlan)
	if err != nil {
		fatal("%v", err)
	}
	if *netTimeout > 0 && plan.RecvTimeout == 0 {
		// The injector's receive timeout doubles as the failure detector
		// for the in-process transport.
		plan.RecvTimeout = *netTimeout
	}
	// With -metrics-json, a SIGINT/SIGTERM mid-run flushes a partial
	// RunReport (configuration only, Interrupted=true) before exiting,
	// so a killed run still leaves an artifact. Armed before the slow
	// phases; disarmed once the merged report is written.
	var disarm func() = func() {}
	if *metricsJSON != "" {
		nranks := *ranks
		if *addrsStr != "" {
			nranks = len(strings.Split(*addrsStr, ","))
		}
		alg := "IMMdist"
		if *part {
			alg = "IMMpart"
		}
		disarm = flushOnSignal(*metricsJSON, func() *influmax.RunReport {
			rep := influmax.NewPartialReport(alg)
			rep.Model = model.String()
			rep.K, rep.Epsilon, rep.Seed = *k, *eps, *seed
			rep.Ranks, rep.ThreadsPerRank = nranks, *threads
			return rep
		})
	}

	g, err := loadGraph(*graphPath, *dataset, *scale, *seed)
	if err != nil {
		fatal("%v", err)
	}
	if model == influmax.LT {
		g.NormalizeLT()
	}
	opt := influmax.DistOptions{K: *k, Epsilon: *eps, Model: model, ThreadsPerRank: *threads, Seed: *seed, Schedule: sched, Store: store, Kernel: kernel}
	popt := influmax.PartOptions{K: *k, Epsilon: *eps, Model: model, Seed: *seed, Threads: *threads, Schedule: sched, Store: store, Kernel: kernel}

	// writeReport stamps the graph summary on rank 0's merged report and
	// persists it.
	writeReport := func(rep *influmax.RunReport) error {
		disarm() // the run finished; the merged report supersedes the partial one
		st := g.ComputeStats()
		rep.Graph = &influmax.GraphInfo{
			Vertices: st.Vertices, Edges: st.Edges,
			AvgDegree: st.AvgDegree, MaxDegree: st.MaxDegree,
		}
		return rep.WriteFile(*metricsJSON)
	}

	// run executes the chosen algorithm on one communicator endpoint.
	// Every rank goes through it (report gathering is a collective);
	// quiet suppresses the per-rank progress line in local mode. Callers
	// wrap the transport with the fault plan and close the wrapped comm
	// when run returns (Close releases the injector's in-flight state).
	run := func(c influmax.Comm, quiet bool) error {
		if *part {
			res, err := influmax.MaximizePartitioned(c, g, popt)
			if err != nil {
				if res != nil {
					fmt.Fprintf(os.Stderr, "immdist: rank %d degraded (blames rank %d): %d samples survive locally\n",
						c.Rank(), res.FailedRank, res.SamplesGenerated)
				}
				return err
			}
			if !quiet {
				reportPart(c.Rank(), res)
				reportComm(res.CommStats)
			}
			if *metricsJSON != "" && c.Rank() == 0 {
				return writeReport(influmax.ReportPartitioned(popt, res))
			}
			return nil
		}
		res, err := influmax.MaximizeDistributed(c, g, opt)
		if err != nil {
			if res != nil {
				fmt.Fprintf(os.Stderr, "immdist: rank %d degraded (blames rank %d): %d local samples survive, %d/%d seeds selected\n",
					c.Rank(), res.FailedRank, res.LocalSamples, len(res.Seeds), opt.K)
			}
			return err
		}
		if !quiet {
			report(c.Rank(), res)
			reportComm(res.CommStats)
		}
		if *metricsJSON != "" {
			rep, err := influmax.ReportDistributed(c, opt, res)
			if err != nil {
				return err
			}
			if rep != nil {
				return writeReport(rep)
			}
		}
		return nil
	}

	stopCPU := func() error { return nil }
	if *cpuProfile != "" {
		stopCPU, err = influmax.StartCPUProfile(*cpuProfile)
		if err != nil {
			fatal("%v", err)
		}
	}

	if *addrsStr != "" {
		// TCP mode.
		addrs := strings.Split(*addrsStr, ",")
		if *rank < 0 || *rank >= len(addrs) {
			fatal("TCP mode needs -rank in [0, %d)", len(addrs))
		}
		inner, err := influmax.DialTCPConfig(influmax.TCPConfig{
			Rank:        *rank,
			Addrs:       addrs,
			SendTimeout: *netTimeout,
			RecvTimeout: *netTimeout,
		})
		if err != nil {
			fatal("%v", err)
		}
		c := influmax.WithFaults(inner, plan)
		defer c.Close()
		if err := run(c, false); err != nil {
			fatal("rank %d: %v", *rank, err)
		}
	} else {
		// Local mode: spin all ranks in-process.
		comms := influmax.LocalCluster(*ranks)
		errs := make([]error, *ranks)
		var wg sync.WaitGroup
		for r := 0; r < *ranks; r++ {
			wg.Add(1)
			go func(rk int) {
				defer wg.Done()
				c := influmax.WithFaults(comms[rk], plan)
				defer c.Close()
				errs[rk] = run(c, rk != 0)
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				fatal("rank %d: %v", r, err)
			}
		}
	}

	if err := stopCPU(); err != nil {
		fatal("%v", err)
	}
	if *memProfile != "" {
		if err := influmax.WriteHeapProfile(*memProfile); err != nil {
			fatal("%v", err)
		}
	}
}

func reportPart(rank int, res *influmax.PartResult) {
	if rank != 0 {
		fmt.Printf("rank %d done: own [%d, %d)\n", rank, res.OwnedLo, res.OwnedHi)
		return
	}
	fmt.Printf("graph-partitioned: %d ranks; theta: %d; samples: %d; store (this rank): %.2f MB (%s)\n",
		res.Ranks, res.Theta, res.SamplesGenerated, float64(res.StoreBytes)/(1<<20), res.Store)
	fmt.Printf("phases: %s (total %v)\n", res.Phases.String(), res.Phases.Total())
	fmt.Printf("estimated spread: %.1f (coverage %.4f)\n", res.EstimatedSpread, res.CoverageFraction)
	fmt.Printf("seeds: %v\n", res.Seeds)
}

func report(rank int, res *influmax.DistResult) {
	if rank != 0 {
		fmt.Printf("rank %d done: %d local samples\n", rank, res.LocalSamples)
		return
	}
	fmt.Printf("ranks: %d; theta: %d; samples: %d (this rank: %d); store: %.2f MB (%s)\n",
		res.Ranks, res.Theta, res.SamplesGenerated, res.LocalSamples, float64(res.StoreBytes)/(1<<20), res.Store)
	fmt.Printf("phases: %s (total %v)\n", res.Phases.String(), res.Phases.Total())
	fmt.Printf("estimated spread: %.1f (coverage %.4f)\n", res.EstimatedSpread, res.CoverageFraction)
	fmt.Printf("seeds: %v\n", res.Seeds)
}

// reportComm prints rank 0's nonzero transport/fault counters; silent on
// a clean in-process run (the local transport tracks nothing).
func reportComm(st influmax.CommStats) {
	if m := st.Map(); m != nil {
		fmt.Printf("comm: %v\n", m)
	}
}

func loadGraph(path, dataset string, scale float64, seed uint64) (*influmax.Graph, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, _, err := influmax.ParseEdgeList(f)
		return g, err
	}
	g := influmax.Generate(dataset, scale, seed)
	g.AssignUniform(seed ^ 0x5eed)
	return g, nil
}

// flushOnSignal arranges for SIGINT/SIGTERM to write partial() to path
// and exit 130; the returned disarm stops listening once the real report
// has been written.
func flushOnSignal(path string, partial func() *influmax.RunReport) func() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		if err := partial().WriteFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "immdist: flushing partial report: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "immdist: interrupted; partial report written to %s\n", path)
		os.Exit(130)
	}()
	return func() { signal.Stop(sig) }
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "immdist: "+format+"\n", args...)
	os.Exit(1)
}
