// Command immrouter fronts a fleet of shard-mode immserve replicas: it
// probes each shard listed in -shards, validates that they form one
// coherent fleet (same graph digest, sampling configuration, and epoch),
// and answers POST /v1/seeds by running the sample-partitioned greedy
// selection across all of them — the distributed protocol of internal/dist
// re-hosted over HTTP. Seeds are byte-identical to a single-process
// immserve at the same configuration.
//
//	immrouter -shards http://10.0.0.1:8080,http://10.0.0.2:8080,http://10.0.0.3:8080 \
//	    -addr 127.0.0.1:8090
//
// A replica that stops answering within -net-timeout is dropped mid-query:
// the router fails over to the surviving shards, finishes the selection,
// and marks the response degraded with the failed shard listed in
// failedShards. Failed shards are re-probed on later queries and rejoin
// once they answer with the same identity (e.g. after a warm restart from
// their shard snapshot). {"k":N,"stream":true} streams one NDJSON line per
// seed as the rounds complete, then a summary line. The request may also
// carry the query-diversity fields of DESIGN.md §17 — costs/budget
// (cost-aware greedy), audience (targeted influence; needs header-v2
// shard snapshots or fresh builds) and blocked (competitive selection) —
// and POST /v1/spread estimates a caller-supplied seed set's influence
// across the fleet; both routed byte-identically to a single process
// holding all theta samples. GET /healthz reports
// ok or degraded with the live shard count; GET /v1/metrics exposes the
// router counters. SIGINT/SIGTERM drains in-flight queries (bounded by
// -drain-timeout) and, with -metrics-json, writes a RunReport before exit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"influmax"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8090", "listen address")
		shardsFlag   = flag.String("shards", "", "comma-separated shard base URLs, in shard-index order")
		netTimeout   = flag.Duration("net-timeout", 2*time.Second, "per-operation shard deadline; bounds failure detection")
		concurrency  = flag.Int("concurrency", 4, "routed queries executing at once")
		queue        = flag.Int("queue", 16, "queries waiting for a slot before 429s start")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace for in-flight queries on shutdown")
		metricsJSON  = flag.String("metrics-json", "", "write the router RunReport here on exit")
	)
	flag.Parse()

	if *shardsFlag == "" {
		fatal("pass -shards url,url,... (one base URL per shard replica)")
	}
	var conns []influmax.ShardConn
	for i, base := range strings.Split(*shardsFlag, ",") {
		base = strings.TrimSpace(base)
		if base == "" {
			fatal("-shards entry %d is empty", i)
		}
		conns = append(conns, influmax.NewShardHTTPConn(base, i, *netTimeout))
	}

	reg := influmax.NewMetricsRegistry()
	rt, err := influmax.NewSeedRouter(conns, reg)
	if err != nil {
		fatal("probing fleet: %v", err)
	}
	fleet := rt.Fleet()
	fmt.Fprintf(os.Stderr, "immrouter: fleet of %d shards: graph %016x, model %d, eps %g, k-max %d, theta %d\n",
		rt.Shards(), fleet.GraphDigest, fleet.Model, fleet.Epsilon, fleet.KMax, fleet.Theta)
	if failed := rt.FailedShards(); len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "immrouter: shards %v did not answer the startup probe; serving degraded until they rejoin\n", failed)
	}

	srv := influmax.ServeRouter(rt, influmax.RouterServerConfig{
		MaxConcurrent: *concurrency, MaxQueue: *queue, RetryAfter: *retryAfter,
	})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	bound, err := srv.Start(*addr)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "immrouter: listening on http://%s\n", bound)

	<-sig
	fmt.Fprintln(os.Stderr, "immrouter: draining")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fatal("drain: %v", err)
	}
	if *metricsJSON != "" {
		raw, err := json.MarshalIndent(srv.Report(), "", "  ")
		if err != nil {
			fatal("encoding report: %v", err)
		}
		if err := os.WriteFile(*metricsJSON, append(raw, '\n'), 0o644); err != nil {
			fatal("writing report: %v", err)
		}
		fmt.Fprintf(os.Stderr, "immrouter: report written to %s\n", *metricsJSON)
	}
	fmt.Fprintln(os.Stderr, "immrouter: drained, bye")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "immrouter: "+format+"\n", args...)
	os.Exit(1)
}
