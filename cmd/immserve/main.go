// Command immserve serves influence-maximization queries from a resident
// RRR sketch: it loads (or generates) a graph, prepares a sketch sized for
// -k-max and -eps — sampling it, or warm-starting from a -snapshot written
// by a previous run — and then answers POST /v1/seeds for any k <= k-max
// in selection time only, no resampling.
//
//	immserve -dataset soc-LiveJournal -scale 0.01 -k-max 100 -eps 0.5 \
//	    -snapshot lj.snap -addr 127.0.0.1:8080
//
// Endpoints: POST /v1/seeds ({"k": 10}, optionally with costs/budget/
// audience/blocked for the query-diversity modes of DESIGN.md §17), POST
// /v1/spread ({"seeds": [...]}; seed-set spread estimation), GET /healthz,
// GET /v1/metrics, and /debug/pprof/ with -pprof. The -audience/-budget/
// -blocked flags set fleet-wide defaults for requests that leave those
// fields absent. With -dynamic, POST /v1/graph/delta
// accepts edge mutation batches ({"ops":[{"op":"insert","src":0,"dst":1,
// "w":0.2}]}) and the sketch is maintained incrementally; on shutdown the
// mutated state (samples + replayable delta log) is persisted back to
// -snapshot for a warm restart. With -shard-index/-shard-count the replica
// joins a cluster fleet instead: it serves one slice of the samples
// through the shard API (POST /v1/shard/op, GET /v1/shard/info, GET
// /v1/snapshot) for an immrouter to query, and rejects direct seed
// queries; -shard-from bootstraps the slice from a running peer. See
// DESIGN.md §16. Saturation (past -concurrency running
// plus -queue waiting) is answered 429 + Retry-After; SIGINT/SIGTERM
// drains in-flight queries (bounded by -drain-timeout) before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"influmax"
)

func main() {
	var (
		graphPath    = flag.String("graph", "", "edge-list or binary graph file")
		binary       = flag.Bool("bin", false, "input file is binary (graphgen -format bin)")
		dataset      = flag.String("dataset", "", "generate a SNAP analog instead of reading a file")
		scale        = flag.Float64("scale", 0.01, "analog scale")
		weights      = flag.String("weights", "uniform", "weight scheme when generating: uniform, wc, const:<p>, none")
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		kMax         = flag.Int("k-max", 100, "largest seed-set size the sketch serves")
		eps          = flag.Float64("eps", 0.5, "accuracy parameter the sketch is sized for")
		modelStr     = flag.String("model", "IC", "diffusion model: IC or LT")
		seed         = flag.Uint64("seed", 1, "random seed")
		workers      = flag.Int("workers", 0, "threads for sampling and selection (0 = all cores)")
		schedule     = flag.String("schedule", "dynamic", "sketch-build sampling schedule: dynamic (work-stealing) or static (paper's contiguous split)")
		kernelStr    = flag.String("kernel", "fused", "sketch-build sampling kernel: fused (batched CSR frontier) or scalar (per-sample reverse BFS; same sketches and seeds)")
		storeStr     = flag.String("store", "flat", "resident RRR store: flat (uint32 arena) or coded (byte-coded, ~3x smaller; same seeds)")
		concurrency  = flag.Int("concurrency", 2, "queries executing at once")
		queue        = flag.Int("queue", 16, "queries waiting for a slot before 429s start")
		timeout      = flag.Duration("timeout", 60*time.Second, "per-query budget (queue wait + sketch build)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace for in-flight queries on shutdown")
		snapshot     = flag.String("snapshot", "", "sketch snapshot path: loaded if present, written after sampling otherwise")
		dynamic      = flag.Bool("dynamic", false, "dynamic-graph mode: accept edge mutations at POST /v1/graph/delta, maintain the sketch incrementally")
		shardIndex   = flag.Int("shard-index", -1, "cluster shard mode: this replica's shard index in [0, shard-count)")
		shardCount   = flag.Int("shard-count", 0, "cluster shard mode: fleet width; 0 disables shard mode")
		shardFrom    = flag.String("shard-from", "", "cluster shard mode: peer base URL to bootstrap the shard snapshot from")
		policyStr    = flag.String("weight-policy", "explicit", "dynamic mode: weight re-derivation after a mutation batch: explicit or wc")
		audience     = flag.String("audience", "", "comma-separated vertex ids: default audience for /v1/seeds requests that do not name one (targeted query mode)")
		budget       = flag.Float64("budget", 0, "default total budget with unit costs for /v1/seeds requests that do not name one (budgeted query mode)")
		blocked      = flag.String("blocked", "", "comma-separated vertex ids: default rival seed set for /v1/seeds requests that do not name one (competitive query mode)")
		pprofOn      = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	model, err := influmax.ParseModel(*modelStr)
	if err != nil {
		fatal("%v", err)
	}
	sched, err := influmax.ParseSchedule(*schedule)
	if err != nil {
		fatal("%v", err)
	}
	store, err := influmax.ParseStoreKind(*storeStr)
	if err != nil {
		fatal("%v", err)
	}
	kernel, err := influmax.ParseKernel(*kernelStr)
	if err != nil {
		fatal("%v", err)
	}
	policy, err := influmax.ParseWeightPolicy(*policyStr)
	if err != nil {
		fatal("%v", err)
	}
	g, err := loadGraph(*graphPath, *binary, *dataset, *scale, *seed, *weights)
	if err != nil {
		fatal("%v", err)
	}
	if model == influmax.LT {
		g.NormalizeLT()
	}
	defAudience, err := parseVertexList(*audience, g.NumVertices())
	if err != nil {
		fatal("-audience: %v", err)
	}
	defBlocked, err := parseVertexList(*blocked, g.NumVertices())
	if err != nil {
		fatal("-blocked: %v", err)
	}
	st := g.ComputeStats()
	fmt.Fprintf(os.Stderr, "immserve: graph: %d vertices, %d edges, avg degree %.2f\n",
		st.Vertices, st.Edges, st.AvgDegree)

	key := influmax.SketchKey{
		GraphDigest: g.Digest(), Model: model, Epsilon: *eps, KMax: *kMax, Seed: *seed,
	}
	reg := influmax.NewMetricsRegistry()
	var sketch *influmax.Sketch
	var shard *influmax.ClusterShard
	if *shardCount > 0 {
		// Cluster shard mode: this replica serves one slice of the fleet's
		// samples through the shard API and refuses seed queries (POST
		// /v1/seeds goes to the immrouter fronting the fleet).
		if *dynamic {
			fatal("-shard-count and -dynamic are mutually exclusive: shards serve static sketches")
		}
		if *shardIndex < 0 || *shardIndex >= *shardCount {
			fatal("-shard-index %d out of range for -shard-count %d", *shardIndex, *shardCount)
		}
		shard, err = prepareShard(g, key, *shardIndex, *shardCount, *snapshot, *shardFrom, *workers)
		if err != nil {
			fatal("%v", err)
		}
	} else if *dynamic {
		// Dynamic mode: a snapshot, when present, warm-restarts the
		// mutated state (its delta log is replayed over the base graph);
		// otherwise Serve samples the initial sketch itself. The static
		// sample-then-persist path does not apply — the sketch keeps
		// changing, so it is persisted after the drain instead.
		sketch, err = loadWarmSketch(g, key, *snapshot, *workers, store)
	} else {
		sketch, err = prepareSketch(g, key, *snapshot, *workers, sched, kernel, store, reg)
	}
	if err != nil {
		fatal("%v", err)
	}

	srv, err := influmax.Serve(influmax.ServeConfig{
		Graph: g, Model: model, Epsilon: *eps, KMax: *kMax, Seed: *seed,
		Workers: *workers, Schedule: sched, Kernel: kernel, Store: store, MaxConcurrent: *concurrency, MaxQueue: *queue,
		QueryTimeout: *timeout, Metrics: reg, EnablePprof: *pprofOn,
		Sketch: sketch, Dynamic: *dynamic, WeightPolicy: policy,
		DefaultBudget: *budget, DefaultAudience: defAudience, DefaultBlocked: defBlocked,
		ClusterShard: shard,
	})
	if err != nil {
		fatal("%v", err)
	}
	// Install the drain handler before announcing the address: a client
	// that sees "listening" may immediately SIGTERM us (the e2e tests
	// do), and an uninstalled handler means death instead of a drain.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	bound, err := srv.Start(*addr)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "immserve: listening on http://%s\n", bound)

	<-sig
	fmt.Fprintln(os.Stderr, "immserve: draining")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fatal("drain: %v", err)
	}
	if *dynamic && *snapshot != "" {
		sk := srv.ServingSketch()
		if err := influmax.SaveSnapshot(*snapshot, sk); err != nil {
			fatal("persisting dynamic sketch: %v", err)
		}
		fmt.Fprintf(os.Stderr, "immserve: dynamic sketch persisted to %s (epoch %d)\n", *snapshot, sk.DeltaEpoch)
	}
	fmt.Fprintln(os.Stderr, "immserve: drained, bye")
}

// prepareShard resolves this replica's sample shard: a shard snapshot at
// path warm-starts it; otherwise a running peer (-shard-from) streams its
// snapshot over; otherwise the fleet is sampled locally and this replica
// keeps its own slice. Whatever the source, the shard's identity must
// match the flags — a slice from the wrong fleet would silently poison
// routed selections.
func prepareShard(g *influmax.Graph, key influmax.SketchKey, idx, count int, path, from string, workers int) (*influmax.ClusterShard, error) {
	load := func(sh *influmax.ClusterShard, src string) (*influmax.ClusterShard, error) {
		info := sh.Info()
		if info.ShardIdx != idx || info.ShardCount != count {
			return nil, fmt.Errorf("%s holds shard %d of %d, flags say %d of %d",
				src, info.ShardIdx, info.ShardCount, idx, count)
		}
		if info.GraphDigest != key.GraphDigest || influmax.Model(info.Model) != key.Model ||
			info.Epsilon != key.Epsilon || info.KMax != key.KMax || info.Seed != key.Seed {
			return nil, fmt.Errorf("%s was sampled with a different configuration than the flags; delete it or match the flags", src)
		}
		fmt.Fprintf(os.Stderr, "immserve: shard %d/%d warm-started from %s (%d samples, epoch %d)\n",
			idx, count, src, info.Samples, info.Epoch)
		return sh, nil
	}
	if path != "" {
		if _, err := os.Stat(path); err == nil {
			sh, err := influmax.LoadShardSnapshot(path, 0, workers)
			if err != nil {
				return nil, err
			}
			return load(sh, path)
		}
	}
	if from != "" {
		sh, err := influmax.FetchShardSnapshot(from, nil, 0, workers)
		if err != nil {
			return nil, fmt.Errorf("bootstrapping from peer %s: %w", from, err)
		}
		if sh, err = load(sh, from); err != nil {
			return nil, err
		}
		if path != "" {
			if err := influmax.SaveShardSnapshot(path, sh); err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "immserve: shard snapshot written to %s\n", path)
		}
		return sh, nil
	}
	start := time.Now()
	shards, err := influmax.BuildShards(g, influmax.BuildShardsOptions{
		K: key.KMax, Epsilon: key.Epsilon, Model: key.Model, Seed: key.Seed,
		Shards: count, Workers: workers,
	})
	if err != nil {
		return nil, err
	}
	sh := shards[idx]
	fmt.Fprintf(os.Stderr, "immserve: shard %d/%d sampled in %v (%d of %d fleet samples)\n",
		idx, count, time.Since(start).Round(time.Millisecond), sh.Info().Samples, sh.Info().Theta)
	if path != "" {
		if err := influmax.SaveShardSnapshot(path, sh); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "immserve: shard snapshot written to %s\n", path)
	}
	return sh, nil
}

// loadWarmSketch resolves the dynamic-mode warm start: a snapshot at path
// (written by a previous dynamic run's drain) restores the mutated state;
// no snapshot means Serve builds the initial sketch from the graph.
func loadWarmSketch(g *influmax.Graph, key influmax.SketchKey, path string, workers int, store influmax.StoreKind) (*influmax.Sketch, error) {
	if path == "" {
		return nil, nil
	}
	if _, err := os.Stat(path); err != nil {
		return nil, nil
	}
	s, err := influmax.LoadSnapshot(path, g, workers, store)
	if err != nil {
		return nil, err
	}
	if s.Key != key {
		return nil, fmt.Errorf("snapshot %s was sampled with (%s), flags say (%s); delete it or match the flags",
			path, s.Key, key)
	}
	fmt.Fprintf(os.Stderr, "immserve: dynamic sketch warm-started from %s (theta %d, epoch %d)\n",
		path, s.Theta, s.DeltaEpoch)
	return s, nil
}

// prepareSketch resolves the resident sketch: a valid snapshot at path
// warm-starts the server (transcoded into the -store kind if it was
// written with the other one); otherwise the sketch is sampled and — when
// a path was given — persisted for the next start.
func prepareSketch(g *influmax.Graph, key influmax.SketchKey, path string, workers int, sched influmax.Schedule, kernel influmax.Kernel, store influmax.StoreKind, reg *influmax.MetricsRegistry) (*influmax.Sketch, error) {
	if path != "" {
		if _, err := os.Stat(path); err == nil {
			s, err := influmax.LoadSnapshot(path, g, workers, store)
			if err != nil {
				return nil, err
			}
			if s.Key != key {
				return nil, fmt.Errorf("snapshot %s was sampled with (%s), flags say (%s); delete it or match the flags",
					path, s.Key, key)
			}
			fmt.Fprintf(os.Stderr, "immserve: sketch warm-started from %s (theta %d, store %s)\n", path, s.Theta, s.Store())
			return s, nil
		}
	}
	start := time.Now()
	s, err := influmax.BuildSketch(g, key, workers, sched, kernel, store, reg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "immserve: sketch sampled in %v (theta %d)\n",
		time.Since(start).Round(time.Millisecond), s.Theta)
	if path != "" {
		if err := influmax.SaveSnapshot(path, s); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "immserve: snapshot written to %s\n", path)
	}
	return s, nil
}

// parseVertexList parses a comma-separated vertex-id list ("" = empty),
// mirroring cmd/imm.
func parseVertexList(s string, n int) ([]influmax.Vertex, error) {
	if s == "" {
		return nil, nil
	}
	var out []influmax.Vertex
	start := 0
	for i := 0; i <= len(s); i++ {
		if i != len(s) && s[i] != ',' {
			continue
		}
		if i > start {
			part := s[start:i]
			var v uint64
			if _, err := fmt.Sscanf(part, "%d", &v); err != nil || int64(v) >= int64(n) {
				return nil, fmt.Errorf("bad vertex id %q (want 0 <= id < %d)", part, n)
			}
			out = append(out, influmax.Vertex(v))
		}
		start = i + 1
	}
	return out, nil
}

// loadGraph resolves the input source, mirroring cmd/imm.
func loadGraph(path string, binary bool, dataset string, scale float64, seed uint64, weights string) (*influmax.Graph, error) {
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if binary {
			return influmax.ReadBinary(f)
		}
		g, _, err := influmax.ParseEdgeList(f)
		return g, err
	case dataset != "":
		g := influmax.Generate(dataset, scale, seed)
		switch {
		case weights == "uniform":
			g.AssignUniform(seed ^ 0x5eed)
		case weights == "wc":
			g.AssignWeightedCascade()
		case weights == "none":
		default:
			var p float64
			if _, err := fmt.Sscanf(weights, "const:%g", &p); err != nil {
				return nil, fmt.Errorf("bad -weights %q", weights)
			}
			g.AssignConstant(float32(p))
		}
		return g, nil
	}
	return nil, fmt.Errorf("pass -graph <file> or -dataset <name>")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "immserve: "+format+"\n", args...)
	os.Exit(1)
}
