// Command spread evaluates the expected influence of a given seed set by
// parallel Monte Carlo simulation — the oracle behind Figure 1's
// "activated nodes" axis.
//
//	spread -graph net.txt -model IC -seeds 4,17,42 -trials 10000
//	spread -dataset cit-HepTh -scale 0.05 -seeds 0,1,2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"influmax"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list graph file")
		binary    = flag.Bool("bin", false, "input file is binary")
		dataset   = flag.String("dataset", "", "generate a SNAP analog instead")
		scale     = flag.Float64("scale", 0.01, "analog scale")
		modelStr  = flag.String("model", "IC", "diffusion model: IC or LT")
		seedsStr  = flag.String("seeds", "", "comma-separated seed vertices")
		trials    = flag.Int("trials", 10000, "Monte Carlo cascades")
		workers   = flag.Int("workers", 0, "threads (0 = all cores)")
		seed      = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	model, err := influmax.ParseModel(*modelStr)
	if err != nil {
		fatal("%v", err)
	}
	var g *influmax.Graph
	switch {
	case *graphPath != "":
		f, err := os.Open(*graphPath)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		if *binary {
			g, err = influmax.ReadBinary(f)
		} else {
			g, _, err = influmax.ParseEdgeList(f)
		}
		if err != nil {
			fatal("%v", err)
		}
	case *dataset != "":
		g = influmax.Generate(*dataset, *scale, *seed)
		g.AssignUniform(*seed ^ 0x5eed)
	default:
		fatal("pass -graph or -dataset")
	}
	if model == influmax.LT {
		g.NormalizeLT()
	}

	var seeds []influmax.Vertex
	for _, part := range strings.Split(*seedsStr, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseUint(part, 10, 32)
		if err != nil || int(v) >= g.NumVertices() {
			fatal("bad seed vertex %q (graph has %d vertices)", part, g.NumVertices())
		}
		seeds = append(seeds, influmax.Vertex(v))
	}
	if len(seeds) == 0 {
		fatal("pass -seeds v1,v2,...")
	}

	mean, se := influmax.Spread(g, model, seeds, *trials, *workers, *seed)
	fmt.Printf("seeds: %v\n", seeds)
	fmt.Printf("expected spread (%s, %d trials): %.2f ± %.2f (95%% CI)\n", model, *trials, mean, 2*se)
	fmt.Printf("fraction of graph: %.2f%%\n", 100*mean/float64(g.NumVertices()))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "spread: "+format+"\n", args...)
	os.Exit(1)
}
