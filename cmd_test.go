package influmax_test

// End-to-end tests of the command-line tools: each binary is compiled once
// into a scratch directory and driven the way a user would drive it.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"influmax"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// binPath compiles (once) and returns the path of the named cmd binary.
func binPath(t *testing.T, name string) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "influmax-bin")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", buildDir+string(filepath.Separator), "./cmd/...")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = err
			buildDir = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building cmds: %v (%s)", buildErr, buildDir)
	}
	return filepath.Join(buildDir, name)
}

func runCmd(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(binPath(t, name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func runCmdExpectError(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(binPath(t, name), args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v unexpectedly succeeded:\n%s", name, args, out)
	}
	return string(out)
}

func TestCmdGraphgenAndIMM(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.txt")
	out := runCmd(t, "graphgen", "-dataset", "cit-HepTh", "-scale", "0.01", "-o", gpath)
	if !strings.Contains(out, "vertices") {
		t.Fatalf("graphgen output: %s", out)
	}
	out = runCmd(t, "imm", "-graph", gpath, "-k", "5", "-eps", "0.5", "-verify", "500")
	for _, want := range []string{"theta:", "seeds (selection order):", "verified spread:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("imm output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdGraphgenBinaryFormat(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.bin")
	runCmd(t, "graphgen", "-family", "er", "-n", "200", "-m", "1000", "-format", "bin", "-o", gpath)
	out := runCmd(t, "imm", "-graph", gpath, "-bin", "-k", "3", "-eps", "0.5")
	if !strings.Contains(out, "estimated spread:") {
		t.Fatalf("binary graph not consumed:\n%s", out)
	}
}

func TestCmdGraphgenList(t *testing.T) {
	out := runCmd(t, "graphgen", "-list")
	for _, name := range []string{"cit-HepTh", "com-Orkut"} {
		if !strings.Contains(out, name) {
			t.Fatalf("-list missing %s:\n%s", name, out)
		}
	}
}

func TestCmdGraphgenErrors(t *testing.T) {
	runCmdExpectError(t, "graphgen")                                     // no source
	runCmdExpectError(t, "graphgen", "-family", "bogus")                 // bad family
	runCmdExpectError(t, "graphgen", "-dataset", "x", "-scale", "0.01")  // unknown dataset (panic -> non-zero)
	runCmdExpectError(t, "graphgen", "-family", "er", "-weights", "wat") // bad weights
}

func TestCmdSpread(t *testing.T) {
	out := runCmd(t, "spread", "-dataset", "cit-HepTh", "-scale", "0.01", "-seeds", "0,1,2", "-trials", "500")
	if !strings.Contains(out, "expected spread") {
		t.Fatalf("spread output:\n%s", out)
	}
	runCmdExpectError(t, "spread", "-dataset", "cit-HepTh", "-scale", "0.01") // missing seeds
	runCmdExpectError(t, "spread", "-dataset", "cit-HepTh", "-scale", "0.01", "-seeds", "999999999")
}

func TestCmdIMMModels(t *testing.T) {
	for _, model := range []string{"IC", "LT"} {
		out := runCmd(t, "imm", "-dataset", "soc-Epinions1", "-scale", "0.005", "-k", "4", "-eps", "0.5", "-model", model)
		if !strings.Contains(out, "seeds (selection order):") {
			t.Fatalf("model %s failed:\n%s", model, out)
		}
	}
	runCmdExpectError(t, "imm", "-dataset", "cit-HepTh", "-model", "XX")
	runCmdExpectError(t, "imm") // no input
}

func TestCmdIMMJSONOutput(t *testing.T) {
	out := runCmd(t, "imm", "-dataset", "cit-HepTh", "-scale", "0.005", "-k", "3", "-eps", "0.5", "-json", "-verify", "200")
	for _, want := range []string{`"seeds"`, `"theta"`, `"estimatedSpread"`, `"verified"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("json output missing %s:\n%s", want, out)
		}
	}
	if strings.Contains(out, "seeds (selection order)") {
		t.Fatal("human output leaked into -json mode")
	}
}

func TestCmdIMMBaselineFlag(t *testing.T) {
	out := runCmd(t, "imm", "-dataset", "cit-HepTh", "-scale", "0.005", "-k", "3", "-eps", "0.5", "-baseline")
	if !strings.Contains(out, "estimated spread:") {
		t.Fatalf("baseline run failed:\n%s", out)
	}
}

func TestCmdImmdistLocalAndPartitioned(t *testing.T) {
	out := runCmd(t, "immdist", "-dataset", "com-YouTube", "-scale", "0.001", "-ranks", "2", "-k", "4", "-eps", "0.5")
	if !strings.Contains(out, "ranks: 2") || !strings.Contains(out, "seeds:") {
		t.Fatalf("immdist local output:\n%s", out)
	}
	out = runCmd(t, "immdist", "-dataset", "com-YouTube", "-scale", "0.001", "-ranks", "2", "-k", "4", "-eps", "0.5", "-partitioned")
	if !strings.Contains(out, "graph-partitioned: 2 ranks") {
		t.Fatalf("immdist partitioned output:\n%s", out)
	}
}

// readReport decodes a -metrics-json artifact and checks its header.
func readReport(t *testing.T, path, algorithm string) *influmax.RunReport {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep influmax.RunReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decoding %s: %v", path, err)
	}
	if rep.Schema != influmax.ReportSchemaVersion {
		t.Fatalf("schema = %d, want %d", rep.Schema, influmax.ReportSchemaVersion)
	}
	if rep.Algorithm != algorithm {
		t.Fatalf("algorithm = %q, want %q", rep.Algorithm, algorithm)
	}
	return &rep
}

func TestCmdIMMMetricsJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	runCmd(t, "imm", "-dataset", "cit-HepTh", "-scale", "0.01", "-k", "4", "-eps", "0.5",
		"-workers", "2", "-verify", "200", "-metrics-json", path)
	rep := readReport(t, path, "IMMmt")
	if rep.Theta <= 0 || rep.SamplesGenerated <= 0 || rep.StoreBytes <= 0 {
		t.Fatalf("bookkeeping: %+v", rep)
	}
	if rep.TotalSeconds <= 0 || rep.PhaseSeconds["EstimateTheta"] <= 0 {
		t.Fatalf("phase durations: total=%v phases=%v", rep.TotalSeconds, rep.PhaseSeconds)
	}
	if len(rep.WorkerWork) != 2 || rep.WorkHistogram == nil || rep.WorkHistogram.Count != 2 {
		t.Fatalf("per-worker work: %v / %+v", rep.WorkerWork, rep.WorkHistogram)
	}
	if rep.Graph == nil || rep.Graph.Vertices <= 0 {
		t.Fatalf("graph info: %+v", rep.Graph)
	}
	if rep.Verified == nil || rep.Verified.Trials != 200 {
		t.Fatalf("verified: %+v", rep.Verified)
	}
	if rep.Metrics == nil || rep.Metrics.Counters["rrr/samples"] != rep.SamplesGenerated {
		t.Fatalf("engine metrics: %+v", rep.Metrics)
	}
}

func TestCmdImmdistMetricsJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	runCmd(t, "immdist", "-dataset", "com-YouTube", "-scale", "0.001", "-ranks", "2",
		"-k", "4", "-eps", "0.5", "-metrics-json", path)
	rep := readReport(t, path, "IMMdist")
	if rep.Ranks != 2 || len(rep.PerRank) != 2 {
		t.Fatalf("perRank: ranks=%d subs=%d", rep.Ranks, len(rep.PerRank))
	}
	var samples int64
	for r, sub := range rep.PerRank {
		if sub.Rank != r || sub.TotalSeconds <= 0 {
			t.Fatalf("perRank[%d] = %+v", r, sub)
		}
		samples += sub.LocalSamples
	}
	if samples != rep.SamplesGenerated {
		t.Fatalf("rank samples sum to %d, report says %d", samples, rep.SamplesGenerated)
	}
	if rep.WorkBalance <= 0 || rep.WorkBalance > 1 {
		t.Fatalf("work balance = %v", rep.WorkBalance)
	}

	// The partitioned variant writes an IMMpart report without a gather.
	ppath := filepath.Join(t.TempDir(), "part.json")
	runCmd(t, "immdist", "-dataset", "com-YouTube", "-scale", "0.001", "-ranks", "2",
		"-k", "4", "-eps", "0.5", "-partitioned", "-metrics-json", ppath)
	prep := readReport(t, ppath, "IMMpart")
	if prep.Ranks != 2 || prep.Theta <= 0 {
		t.Fatalf("partitioned report: %+v", prep)
	}
}

// interruptCmd starts the binary, SIGINTs it shortly after launch, and
// asserts it exits 130 (the partial-report flush path).
func interruptCmd(t *testing.T, name string, args ...string) {
	t.Helper()
	cmd := exec.Command(binPath(t, name), args...)
	var out strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	cmd.Process.Signal(syscall.SIGINT)
	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 130 {
		t.Fatalf("%s exit after SIGINT = %v (want code 130)\n%s", name, err, out.String())
	}
	if !strings.Contains(out.String(), "partial report written") {
		t.Fatalf("%s stderr missing flush notice:\n%s", name, out.String())
	}
}

// TestCmdIMMSignalFlush: killing imm mid-run with -metrics-json set must
// leave a partial RunReport with Interrupted=true. The parameters make
// the run take far longer than the signal delay (tiny eps => huge theta).
func TestCmdIMMSignalFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "partial.json")
	interruptCmd(t, "imm", "-dataset", "com-Orkut", "-scale", "0.02", "-k", "100",
		"-eps", "0.08", "-metrics-json", path)
	rep := readReport(t, path, "IMMmt")
	if !rep.Interrupted {
		t.Fatal("partial report not marked interrupted")
	}
	if rep.K != 100 || rep.Epsilon != 0.08 {
		t.Fatalf("partial report config: %+v", rep)
	}
	if len(rep.Seeds) != 0 {
		t.Fatalf("interrupted run reported seeds: %v", rep.Seeds)
	}
}

func TestCmdImmdistSignalFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "partial.json")
	interruptCmd(t, "immdist", "-dataset", "com-Orkut", "-scale", "0.02", "-ranks", "2",
		"-k", "100", "-eps", "0.08", "-metrics-json", path)
	rep := readReport(t, path, "IMMdist")
	if !rep.Interrupted || rep.Ranks != 2 {
		t.Fatalf("partial report: interrupted=%v ranks=%d", rep.Interrupted, rep.Ranks)
	}
}

func TestCmdIMMProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.prof"), filepath.Join(dir, "mem.prof")
	runCmd(t, "imm", "-dataset", "cit-HepTh", "-scale", "0.005", "-k", "3", "-eps", "0.5",
		"-cpuprofile", cpu, "-memprofile", mem)
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

// startImmserve launches the immserve binary, waits for its "listening
// on" line, and returns the base URL, a live view of stderr, and a
// stopper that SIGTERMs the process and asserts a clean drain.
func startImmserve(t *testing.T, args ...string) (string, func() string) {
	t.Helper()
	cmd := exec.Command(binPath(t, "immserve"), args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var logged strings.Builder
	listening := make(chan string, 1)
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			mu.Lock()
			logged.WriteString(line + "\n")
			mu.Unlock()
			if _, addr, ok := strings.Cut(line, "listening on http://"); ok {
				listening <- addr
			}
		}
	}()
	stop := func() string {
		t.Helper()
		cmd.Process.Signal(syscall.SIGTERM)
		// Drain stderr to EOF before Wait closes the pipe under the
		// scanner.
		select {
		case <-scanDone:
		case <-time.After(60 * time.Second):
			t.Fatal("immserve stderr never reached EOF after SIGTERM")
		}
		if err := cmd.Wait(); err != nil {
			mu.Lock()
			defer mu.Unlock()
			t.Fatalf("immserve exit: %v\n%s", err, logged.String())
		}
		mu.Lock()
		defer mu.Unlock()
		return logged.String()
	}
	select {
	case addr := <-listening:
		return "http://" + addr, stop
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("immserve never started listening:\n%s", logged.String())
		return "", nil
	}
}

// serveSeedsResp is the slice of the /v1/seeds wire shape the e2e test
// asserts on.
type serveSeedsResp struct {
	K      int                 `json:"k"`
	Seeds  []influmax.Vertex   `json:"seeds"`
	Source string              `json:"source"`
	Cached bool                `json:"cached"`
	Report *influmax.RunReport `json:"report"`
}

func queryImmserve(t *testing.T, base string, k int) serveSeedsResp {
	t.Helper()
	resp, err := http.Post(base+"/v1/seeds", "application/json",
		strings.NewReader(fmt.Sprintf(`{"k":%d}`, k)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/seeds k=%d: %d\n%s", k, resp.StatusCode, raw)
	}
	var sr serveSeedsResp
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatalf("decoding %q: %v", raw, err)
	}
	return sr
}

// TestCmdImmserve drives the serving binary end to end twice over one
// snapshot path: the first run samples the sketch and persists it, the
// second warm-starts from the file and must report zero sampling time
// while returning the same seeds.
func TestCmdImmserve(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "sketch.snap")
	args := []string{"-dataset", "cit-HepTh", "-scale", "0.005", "-k-max", "20",
		"-eps", "0.5", "-addr", "127.0.0.1:0", "-snapshot", snap}

	base, stop := startImmserve(t, args...)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	cold := queryImmserve(t, base, 5)
	if len(cold.Seeds) != 5 || cold.Source != "sampled" {
		t.Fatalf("cold query: %+v", cold)
	}
	if cold.Report == nil || cold.Report.PhaseSeconds["Sample"] <= 0 {
		t.Fatalf("cold query should account sampling time: %+v", cold.Report)
	}

	mresp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snapBody struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&snapBody); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if snapBody.Counters["server/queries"] != 1 {
		t.Fatalf("metrics counters: %+v", snapBody.Counters)
	}

	logs := stop()
	for _, want := range []string{"sketch sampled", "snapshot written", "draining", "drained, bye"} {
		if !strings.Contains(logs, want) {
			t.Fatalf("first run stderr missing %q:\n%s", want, logs)
		}
	}
	if fi, err := os.Stat(snap); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot not persisted: %v", err)
	}

	// Second run: warm start from the snapshot.
	base, stop = startImmserve(t, args...)
	warm := queryImmserve(t, base, 5)
	if warm.Source != "snapshot" {
		t.Fatalf("warm query source = %q", warm.Source)
	}
	for _, phase := range []string{"Sample", "EstimateTheta"} {
		if sec := warm.Report.PhaseSeconds[phase]; sec != 0 {
			t.Fatalf("warm start spent %v s in %s, want 0", sec, phase)
		}
	}
	if fmt.Sprint(warm.Seeds) != fmt.Sprint(cold.Seeds) {
		t.Fatalf("warm seeds %v != cold seeds %v", warm.Seeds, cold.Seeds)
	}
	logs = stop()
	if !strings.Contains(logs, "warm-started") {
		t.Fatalf("second run stderr missing warm start:\n%s", logs)
	}
}

func TestCmdImmserveErrors(t *testing.T) {
	runCmdExpectError(t, "immserve") // no input graph
	runCmdExpectError(t, "immserve", "-dataset", "cit-HepTh", "-scale", "0.005", "-model", "XX")
	runCmdExpectError(t, "immserve", "-dataset", "cit-HepTh", "-scale", "0.005", "-k-max", "0")
}

func TestCmdBiostudy(t *testing.T) {
	out := runCmd(t, "biostudy",
		"-features", "200", "-samples", "30", "-modules", "3", "-modsize", "15",
		"-k", "10", "-eps", "0.5", "-decoys", "3", "-top", "2")
	for _, want := range []string{"inferring co-expression network", "IMM (k=10", "degree centrality", "ground-truth modules"} {
		if !strings.Contains(out, want) {
			t.Fatalf("biostudy output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdExperiments(t *testing.T) {
	dir := t.TempDir()
	runCmd(t, "experiments", "-scale", "0.002", "-o", dir, "fig2")
	data, err := os.ReadFile(filepath.Join(dir, "fig2.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Figure 2") {
		t.Fatalf("fig2.md content:\n%s", data)
	}
	// CSV mode.
	runCmd(t, "experiments", "-scale", "0.002", "-csv", "-o", dir, "fig2")
	if _, err := os.Stat(filepath.Join(dir, "fig2.csv")); err != nil {
		t.Fatal("csv output missing")
	}
	// -metrics-json collects one RunReport per IMM run as a JSON array.
	mpath := filepath.Join(dir, "runs.json")
	runCmd(t, "experiments", "-scale", "0.002", "-o", dir, "-metrics-json", mpath, "fig2")
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var reps []*influmax.RunReport
	if err := json.Unmarshal(raw, &reps); err != nil {
		t.Fatalf("decoding %s: %v", mpath, err)
	}
	if len(reps) == 0 {
		t.Fatal("no run reports collected")
	}
	for _, rep := range reps {
		if rep.Schema != influmax.ReportSchemaVersion || rep.Theta <= 0 {
			t.Fatalf("bad collected report: %+v", rep)
		}
	}
	runCmdExpectError(t, "experiments")                    // no experiment
	runCmdExpectError(t, "experiments", "nonexistent-exp") // unknown name
}
