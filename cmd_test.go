package influmax_test

// End-to-end tests of the command-line tools: each binary is compiled once
// into a scratch directory and driven the way a user would drive it.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// binPath compiles (once) and returns the path of the named cmd binary.
func binPath(t *testing.T, name string) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "influmax-bin")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", buildDir+string(filepath.Separator), "./cmd/...")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = err
			buildDir = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building cmds: %v (%s)", buildErr, buildDir)
	}
	return filepath.Join(buildDir, name)
}

func runCmd(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(binPath(t, name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func runCmdExpectError(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(binPath(t, name), args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v unexpectedly succeeded:\n%s", name, args, out)
	}
	return string(out)
}

func TestCmdGraphgenAndIMM(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.txt")
	out := runCmd(t, "graphgen", "-dataset", "cit-HepTh", "-scale", "0.01", "-o", gpath)
	if !strings.Contains(out, "vertices") {
		t.Fatalf("graphgen output: %s", out)
	}
	out = runCmd(t, "imm", "-graph", gpath, "-k", "5", "-eps", "0.5", "-verify", "500")
	for _, want := range []string{"theta:", "seeds (selection order):", "verified spread:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("imm output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdGraphgenBinaryFormat(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.bin")
	runCmd(t, "graphgen", "-family", "er", "-n", "200", "-m", "1000", "-format", "bin", "-o", gpath)
	out := runCmd(t, "imm", "-graph", gpath, "-bin", "-k", "3", "-eps", "0.5")
	if !strings.Contains(out, "estimated spread:") {
		t.Fatalf("binary graph not consumed:\n%s", out)
	}
}

func TestCmdGraphgenList(t *testing.T) {
	out := runCmd(t, "graphgen", "-list")
	for _, name := range []string{"cit-HepTh", "com-Orkut"} {
		if !strings.Contains(out, name) {
			t.Fatalf("-list missing %s:\n%s", name, out)
		}
	}
}

func TestCmdGraphgenErrors(t *testing.T) {
	runCmdExpectError(t, "graphgen")                                     // no source
	runCmdExpectError(t, "graphgen", "-family", "bogus")                 // bad family
	runCmdExpectError(t, "graphgen", "-dataset", "x", "-scale", "0.01")  // unknown dataset (panic -> non-zero)
	runCmdExpectError(t, "graphgen", "-family", "er", "-weights", "wat") // bad weights
}

func TestCmdSpread(t *testing.T) {
	out := runCmd(t, "spread", "-dataset", "cit-HepTh", "-scale", "0.01", "-seeds", "0,1,2", "-trials", "500")
	if !strings.Contains(out, "expected spread") {
		t.Fatalf("spread output:\n%s", out)
	}
	runCmdExpectError(t, "spread", "-dataset", "cit-HepTh", "-scale", "0.01") // missing seeds
	runCmdExpectError(t, "spread", "-dataset", "cit-HepTh", "-scale", "0.01", "-seeds", "999999999")
}

func TestCmdIMMModels(t *testing.T) {
	for _, model := range []string{"IC", "LT"} {
		out := runCmd(t, "imm", "-dataset", "soc-Epinions1", "-scale", "0.005", "-k", "4", "-eps", "0.5", "-model", model)
		if !strings.Contains(out, "seeds (selection order):") {
			t.Fatalf("model %s failed:\n%s", model, out)
		}
	}
	runCmdExpectError(t, "imm", "-dataset", "cit-HepTh", "-model", "XX")
	runCmdExpectError(t, "imm") // no input
}

func TestCmdIMMJSONOutput(t *testing.T) {
	out := runCmd(t, "imm", "-dataset", "cit-HepTh", "-scale", "0.005", "-k", "3", "-eps", "0.5", "-json", "-verify", "200")
	for _, want := range []string{`"seeds"`, `"theta"`, `"estimatedSpread"`, `"verified"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("json output missing %s:\n%s", want, out)
		}
	}
	if strings.Contains(out, "seeds (selection order)") {
		t.Fatal("human output leaked into -json mode")
	}
}

func TestCmdIMMBaselineFlag(t *testing.T) {
	out := runCmd(t, "imm", "-dataset", "cit-HepTh", "-scale", "0.005", "-k", "3", "-eps", "0.5", "-baseline")
	if !strings.Contains(out, "estimated spread:") {
		t.Fatalf("baseline run failed:\n%s", out)
	}
}

func TestCmdImmdistLocalAndPartitioned(t *testing.T) {
	out := runCmd(t, "immdist", "-dataset", "com-YouTube", "-scale", "0.001", "-ranks", "2", "-k", "4", "-eps", "0.5")
	if !strings.Contains(out, "ranks: 2") || !strings.Contains(out, "seeds:") {
		t.Fatalf("immdist local output:\n%s", out)
	}
	out = runCmd(t, "immdist", "-dataset", "com-YouTube", "-scale", "0.001", "-ranks", "2", "-k", "4", "-eps", "0.5", "-partitioned")
	if !strings.Contains(out, "graph-partitioned: 2 ranks") {
		t.Fatalf("immdist partitioned output:\n%s", out)
	}
}

func TestCmdBiostudy(t *testing.T) {
	out := runCmd(t, "biostudy",
		"-features", "200", "-samples", "30", "-modules", "3", "-modsize", "15",
		"-k", "10", "-eps", "0.5", "-decoys", "3", "-top", "2")
	for _, want := range []string{"inferring co-expression network", "IMM (k=10", "degree centrality", "ground-truth modules"} {
		if !strings.Contains(out, want) {
			t.Fatalf("biostudy output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdExperiments(t *testing.T) {
	dir := t.TempDir()
	runCmd(t, "experiments", "-scale", "0.002", "-o", dir, "fig2")
	data, err := os.ReadFile(filepath.Join(dir, "fig2.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Figure 2") {
		t.Fatalf("fig2.md content:\n%s", data)
	}
	// CSV mode.
	runCmd(t, "experiments", "-scale", "0.002", "-csv", "-o", dir, "fig2")
	if _, err := os.Stat(filepath.Join(dir, "fig2.csv")); err != nil {
		t.Fatal("csv output missing")
	}
	runCmdExpectError(t, "experiments")                    // no experiment
	runCmdExpectError(t, "experiments", "nonexistent-exp") // unknown name
}
