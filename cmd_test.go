package influmax_test

// End-to-end tests of the command-line tools: each binary is compiled once
// into a scratch directory and driven the way a user would drive it.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"influmax"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// binPath compiles (once) and returns the path of the named cmd binary.
func binPath(t *testing.T, name string) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "influmax-bin")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", buildDir+string(filepath.Separator), "./cmd/...")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = err
			buildDir = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building cmds: %v (%s)", buildErr, buildDir)
	}
	return filepath.Join(buildDir, name)
}

func runCmd(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(binPath(t, name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func runCmdExpectError(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(binPath(t, name), args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v unexpectedly succeeded:\n%s", name, args, out)
	}
	return string(out)
}

func TestCmdGraphgenAndIMM(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.txt")
	out := runCmd(t, "graphgen", "-dataset", "cit-HepTh", "-scale", "0.01", "-o", gpath)
	if !strings.Contains(out, "vertices") {
		t.Fatalf("graphgen output: %s", out)
	}
	out = runCmd(t, "imm", "-graph", gpath, "-k", "5", "-eps", "0.5", "-verify", "500")
	for _, want := range []string{"theta:", "seeds (selection order):", "verified spread:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("imm output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdGraphgenBinaryFormat(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.bin")
	runCmd(t, "graphgen", "-family", "er", "-n", "200", "-m", "1000", "-format", "bin", "-o", gpath)
	out := runCmd(t, "imm", "-graph", gpath, "-bin", "-k", "3", "-eps", "0.5")
	if !strings.Contains(out, "estimated spread:") {
		t.Fatalf("binary graph not consumed:\n%s", out)
	}
}

func TestCmdGraphgenList(t *testing.T) {
	out := runCmd(t, "graphgen", "-list")
	for _, name := range []string{"cit-HepTh", "com-Orkut"} {
		if !strings.Contains(out, name) {
			t.Fatalf("-list missing %s:\n%s", name, out)
		}
	}
}

func TestCmdGraphgenErrors(t *testing.T) {
	runCmdExpectError(t, "graphgen")                                     // no source
	runCmdExpectError(t, "graphgen", "-family", "bogus")                 // bad family
	runCmdExpectError(t, "graphgen", "-dataset", "x", "-scale", "0.01")  // unknown dataset (panic -> non-zero)
	runCmdExpectError(t, "graphgen", "-family", "er", "-weights", "wat") // bad weights
}

func TestCmdSpread(t *testing.T) {
	out := runCmd(t, "spread", "-dataset", "cit-HepTh", "-scale", "0.01", "-seeds", "0,1,2", "-trials", "500")
	if !strings.Contains(out, "expected spread") {
		t.Fatalf("spread output:\n%s", out)
	}
	runCmdExpectError(t, "spread", "-dataset", "cit-HepTh", "-scale", "0.01") // missing seeds
	runCmdExpectError(t, "spread", "-dataset", "cit-HepTh", "-scale", "0.01", "-seeds", "999999999")
}

func TestCmdIMMModels(t *testing.T) {
	for _, model := range []string{"IC", "LT"} {
		out := runCmd(t, "imm", "-dataset", "soc-Epinions1", "-scale", "0.005", "-k", "4", "-eps", "0.5", "-model", model)
		if !strings.Contains(out, "seeds (selection order):") {
			t.Fatalf("model %s failed:\n%s", model, out)
		}
	}
	runCmdExpectError(t, "imm", "-dataset", "cit-HepTh", "-model", "XX")
	runCmdExpectError(t, "imm") // no input
}

func TestCmdIMMJSONOutput(t *testing.T) {
	out := runCmd(t, "imm", "-dataset", "cit-HepTh", "-scale", "0.005", "-k", "3", "-eps", "0.5", "-json", "-verify", "200")
	for _, want := range []string{`"seeds"`, `"theta"`, `"estimatedSpread"`, `"verified"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("json output missing %s:\n%s", want, out)
		}
	}
	if strings.Contains(out, "seeds (selection order)") {
		t.Fatal("human output leaked into -json mode")
	}
}

func TestCmdIMMBaselineFlag(t *testing.T) {
	out := runCmd(t, "imm", "-dataset", "cit-HepTh", "-scale", "0.005", "-k", "3", "-eps", "0.5", "-baseline")
	if !strings.Contains(out, "estimated spread:") {
		t.Fatalf("baseline run failed:\n%s", out)
	}
}

func TestCmdImmdistLocalAndPartitioned(t *testing.T) {
	out := runCmd(t, "immdist", "-dataset", "com-YouTube", "-scale", "0.001", "-ranks", "2", "-k", "4", "-eps", "0.5")
	if !strings.Contains(out, "ranks: 2") || !strings.Contains(out, "seeds:") {
		t.Fatalf("immdist local output:\n%s", out)
	}
	out = runCmd(t, "immdist", "-dataset", "com-YouTube", "-scale", "0.001", "-ranks", "2", "-k", "4", "-eps", "0.5", "-partitioned")
	if !strings.Contains(out, "graph-partitioned: 2 ranks") {
		t.Fatalf("immdist partitioned output:\n%s", out)
	}
}

// readReport decodes a -metrics-json artifact and checks its header.
func readReport(t *testing.T, path, algorithm string) *influmax.RunReport {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep influmax.RunReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decoding %s: %v", path, err)
	}
	if rep.Schema != influmax.ReportSchemaVersion {
		t.Fatalf("schema = %d, want %d", rep.Schema, influmax.ReportSchemaVersion)
	}
	if rep.Algorithm != algorithm {
		t.Fatalf("algorithm = %q, want %q", rep.Algorithm, algorithm)
	}
	return &rep
}

func TestCmdIMMMetricsJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	runCmd(t, "imm", "-dataset", "cit-HepTh", "-scale", "0.01", "-k", "4", "-eps", "0.5",
		"-workers", "2", "-verify", "200", "-metrics-json", path)
	rep := readReport(t, path, "IMMmt")
	if rep.Theta <= 0 || rep.SamplesGenerated <= 0 || rep.StoreBytes <= 0 {
		t.Fatalf("bookkeeping: %+v", rep)
	}
	if rep.TotalSeconds <= 0 || rep.PhaseSeconds["EstimateTheta"] <= 0 {
		t.Fatalf("phase durations: total=%v phases=%v", rep.TotalSeconds, rep.PhaseSeconds)
	}
	if len(rep.WorkerWork) != 2 || rep.WorkHistogram == nil || rep.WorkHistogram.Count != 2 {
		t.Fatalf("per-worker work: %v / %+v", rep.WorkerWork, rep.WorkHistogram)
	}
	if rep.Graph == nil || rep.Graph.Vertices <= 0 {
		t.Fatalf("graph info: %+v", rep.Graph)
	}
	if rep.Verified == nil || rep.Verified.Trials != 200 {
		t.Fatalf("verified: %+v", rep.Verified)
	}
	if rep.Metrics == nil || rep.Metrics.Counters["rrr/samples"] != rep.SamplesGenerated {
		t.Fatalf("engine metrics: %+v", rep.Metrics)
	}
}

func TestCmdImmdistMetricsJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	runCmd(t, "immdist", "-dataset", "com-YouTube", "-scale", "0.001", "-ranks", "2",
		"-k", "4", "-eps", "0.5", "-metrics-json", path)
	rep := readReport(t, path, "IMMdist")
	if rep.Ranks != 2 || len(rep.PerRank) != 2 {
		t.Fatalf("perRank: ranks=%d subs=%d", rep.Ranks, len(rep.PerRank))
	}
	var samples int64
	for r, sub := range rep.PerRank {
		if sub.Rank != r || sub.TotalSeconds <= 0 {
			t.Fatalf("perRank[%d] = %+v", r, sub)
		}
		samples += sub.LocalSamples
	}
	if samples != rep.SamplesGenerated {
		t.Fatalf("rank samples sum to %d, report says %d", samples, rep.SamplesGenerated)
	}
	if rep.WorkBalance <= 0 || rep.WorkBalance > 1 {
		t.Fatalf("work balance = %v", rep.WorkBalance)
	}

	// The partitioned variant writes an IMMpart report without a gather.
	ppath := filepath.Join(t.TempDir(), "part.json")
	runCmd(t, "immdist", "-dataset", "com-YouTube", "-scale", "0.001", "-ranks", "2",
		"-k", "4", "-eps", "0.5", "-partitioned", "-metrics-json", ppath)
	prep := readReport(t, ppath, "IMMpart")
	if prep.Ranks != 2 || prep.Theta <= 0 {
		t.Fatalf("partitioned report: %+v", prep)
	}
}

func TestCmdIMMProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.prof"), filepath.Join(dir, "mem.prof")
	runCmd(t, "imm", "-dataset", "cit-HepTh", "-scale", "0.005", "-k", "3", "-eps", "0.5",
		"-cpuprofile", cpu, "-memprofile", mem)
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestCmdBiostudy(t *testing.T) {
	out := runCmd(t, "biostudy",
		"-features", "200", "-samples", "30", "-modules", "3", "-modsize", "15",
		"-k", "10", "-eps", "0.5", "-decoys", "3", "-top", "2")
	for _, want := range []string{"inferring co-expression network", "IMM (k=10", "degree centrality", "ground-truth modules"} {
		if !strings.Contains(out, want) {
			t.Fatalf("biostudy output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdExperiments(t *testing.T) {
	dir := t.TempDir()
	runCmd(t, "experiments", "-scale", "0.002", "-o", dir, "fig2")
	data, err := os.ReadFile(filepath.Join(dir, "fig2.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Figure 2") {
		t.Fatalf("fig2.md content:\n%s", data)
	}
	// CSV mode.
	runCmd(t, "experiments", "-scale", "0.002", "-csv", "-o", dir, "fig2")
	if _, err := os.Stat(filepath.Join(dir, "fig2.csv")); err != nil {
		t.Fatal("csv output missing")
	}
	// -metrics-json collects one RunReport per IMM run as a JSON array.
	mpath := filepath.Join(dir, "runs.json")
	runCmd(t, "experiments", "-scale", "0.002", "-o", dir, "-metrics-json", mpath, "fig2")
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var reps []*influmax.RunReport
	if err := json.Unmarshal(raw, &reps); err != nil {
		t.Fatalf("decoding %s: %v", mpath, err)
	}
	if len(reps) == 0 {
		t.Fatal("no run reports collected")
	}
	for _, rep := range reps {
		if rep.Schema != influmax.ReportSchemaVersion || rep.Theta <= 0 {
			t.Fatalf("bad collected report: %+v", rep)
		}
	}
	runCmdExpectError(t, "experiments")                    // no experiment
	runCmdExpectError(t, "experiments", "nonexistent-exp") // unknown name
}
