// Package influmax is a fast, scalable influence-maximization library: a
// from-scratch Go reproduction of "Fast and Scalable Implementations of
// Influence Maximization Algorithms" (Minutoli et al., IEEE CLUSTER 2019),
// the paper behind the Ripples framework.
//
// Given a directed graph with edge activation probabilities, a diffusion
// model (Independent Cascade or Linear Threshold) and a budget k, the
// library finds a k-vertex seed set whose expected influence spread is a
// (1 - 1/e - eps)-approximation of the optimum with high probability,
// using the IMM algorithm of Tang et al. (SIGMOD 2015) parallelized for
// shared memory (goroutine worker pools standing in for OpenMP) and
// distributed memory (an MPI-like message-passing substrate with
// in-process and TCP transports).
//
// # Quick start
//
//	g := influmax.Generate("cit-HepTh", 0.05, 1) // synthetic SNAP analog
//	g.AssignUniform(7)                           // p(e) ~ U[0,1)
//	res, err := influmax.Maximize(g, influmax.Options{
//	    K: 50, Epsilon: 0.5, Model: influmax.IC,
//	})
//	// res.Seeds holds the seed set; res.EstimatedSpread its quality.
//
// # Implementations
//
//   - Maximize with Options.Workers == 1: IMMopt, the optimized sequential
//     implementation (compact one-directional RRR store);
//   - Maximize with Options.Workers > 1: IMMmt, the multithreaded
//     implementation (parallel sampling, synchronization-free seed
//     selection via vertex-interval ownership);
//   - MaximizeBaseline: the Tang-style reference baseline (bidirectional
//     hypergraph store), kept for comparison;
//   - MaximizeDistributed: IMMdist over an mpi.Comm (see LocalCluster for
//     in-process ranks and the cmd/immdist tool for TCP clusters).
//
// Classic baselines (Kempe greedy, CELF, degree discount), centrality
// measures, Monte Carlo spread evaluation, synthetic graph generators, and
// the paper's full experiment harness are included; see the cmd and
// examples directories.
package influmax
