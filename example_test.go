package influmax_test

import (
	"fmt"

	"influmax"
)

// The canonical workflow: build a graph, assign activation probabilities,
// maximize, inspect.
func ExampleMaximize() {
	// A 5-vertex "broadcast" graph: vertex 0 reaches everyone with
	// certainty, so it must be the first seed.
	b := influmax.NewBuilder(5)
	for v := influmax.Vertex(1); v < 5; v++ {
		b.Add(0, v, 1.0)
	}
	g := b.Build()

	res, err := influmax.Maximize(g, influmax.Options{
		K: 1, Epsilon: 0.5, Model: influmax.IC, Workers: 1, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("best seed:", res.Seeds[0])
	fmt.Println("spread:", res.EstimatedSpread)
	// Output:
	// best seed: 0
	// spread: 5
}

// Evaluating a seed set by Monte Carlo simulation.
func ExampleSpread() {
	g := influmax.FromEdges(3, []influmax.Edge{
		{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 2, W: 1},
	})
	mean, _ := influmax.Spread(g, influmax.IC, []influmax.Vertex{0}, 100, 1, 1)
	fmt.Println(mean) // the chain activates deterministically
	// Output: 3
}

// The ROI curve: expected spread of every seed prefix at once.
func ExampleSpreadCurve() {
	b := influmax.NewBuilder(6)
	for v := influmax.Vertex(1); v < 3; v++ {
		b.Add(0, v, 1.0) // seed 0 covers {0,1,2}
	}
	for v := influmax.Vertex(4); v < 6; v++ {
		b.Add(3, v, 1.0) // seed 3 covers {3,4,5}
	}
	g := b.Build()
	curve := influmax.SpreadCurve(g, influmax.IC, []influmax.Vertex{0, 3}, 50, 1, 1)
	fmt.Println(curve)
	// Output: [3 6]
}
