// Biology case study (Section 5 of the paper): influence maximization on
// a co-expression network, compared against degree and betweenness
// centrality through pathway-enrichment analysis.
//
// The pipeline mirrors the paper's: omics measurements -> co-expression
// network inference -> top-k feature selection -> Fisher's exact
// enrichment against a pathway database. Measurements and pathways are
// synthetic with planted ground truth (see DESIGN.md for the
// substitution), so recovery can be verified.
//
//	go run ./examples/biology
package main

import (
	"fmt"
	"log"

	"influmax"
	"influmax/internal/bio"
	"influmax/internal/centrality"
)

func main() {
	// "Tumor samples": 1500 transcripts/proteins measured over 70
	// patients, 8 co-regulated modules of 40 features each.
	cfg := bio.ExprConfig{
		Features: 1500, Samples: 70,
		Modules: 8, ModuleSize: 40,
		Signal: 0.8, Seed: 2026,
	}
	expr := bio.SyntheticExpression(cfg)
	fmt.Printf("expression matrix: %d features x %d samples, %d planted modules\n",
		cfg.Features, cfg.Samples, cfg.Modules)

	// Infer the co-expression network (correlation stand-in for GENIE3)
	// and damp the scores into a diffusive regime.
	g := bio.InferNetworkTop(expr, 5*cfg.Features)
	g.ScaleWeights(0.035)
	st := g.ComputeStats()
	fmt.Printf("inferred network: %d edges, max degree %d\n\n", st.Edges, st.MaxDegree)

	// Pathway database: the 8 ground-truth modules (15%% noisy membership)
	// plus 8 decoys.
	pathways := bio.SyntheticPathways(expr, 8, 0.15, 77)

	const k = 45
	res, err := influmax.Maximize(g, influmax.Options{
		K: k, Epsilon: 0.13, Model: influmax.IC, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	methods := []struct {
		name  string
		picks []influmax.Vertex
	}{
		{"IMM (k=45, eps=0.13)", res.Seeds},
		{"degree centrality", centrality.TopK(centrality.TotalDegree(g), k)},
		{"betweenness centrality", centrality.TopK(centrality.Betweenness(g, 0), k)},
	}

	fmt.Printf("%-26s %10s %10s %s\n", "method", "enriched", "recovered", "top pathways")
	for _, m := range methods {
		enr := bio.Enrich(m.picks, pathways, cfg.Features)
		top := ""
		for i := 0; i < 3 && i < len(enr); i++ {
			if enr[i].AdjP < 0.05 {
				top += enr[i].Pathway + " "
			}
		}
		fmt.Printf("%-26s %10d %7d/%d  %s\n", m.name,
			bio.CountSignificant(enr, 0.05),
			bio.TruePositives(enr, 0.05), cfg.Modules, top)
	}
	fmt.Println("\nAs in the paper, influence maximization surfaces the functionally")
	fmt.Println("coherent (planted) pathways, while betweenness highlights bridges that")
	fmt.Println("are topologically central but not pathway-specific.")
}
