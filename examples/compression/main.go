// Compression: the byte-coded RRR store against the flat arena — same
// seeds, a fraction of the memory.
//
//	go run ./examples/compression
//
// Options.Store picks the representation the final seed selection runs
// over. StoreFlat keeps the samples in a uint32 arena (4 bytes per entry
// plus 8 per sample); StoreCoded relabels vertices by incidence frequency
// and delta+varint codes each sample (DESIGN.md §13), shrinking the
// resident footprint several-fold on clustered graphs. The coding is a
// pure re-representation: counters, index and greedy argmax consume the
// identical sample sets, so theta, coverage and every selected seed match
// the flat run exactly.
package main

import (
	"fmt"
	"io"
	"os"
	"slices"

	"influmax"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run executes the same configuration under both stores and writes the
// demonstration output to w (the Example test pins this output).
func run(w io.Writer) error {
	// A deterministic scaled analog of the soc-Epinions1 social network.
	g := influmax.Generate("soc-Epinions1", 0.02, 3)
	g.AssignUniform(11)

	opt := influmax.Options{
		K: 5, Epsilon: 0.5, Model: influmax.IC, Workers: 4, Seed: 42,
	}

	opt.Store = influmax.StoreFlat
	flat, err := influmax.Maximize(g, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "flat : theta %d, seeds %v\n", flat.Theta, flat.Seeds)

	opt.Store = influmax.StoreCoded
	coded, err := influmax.Maximize(g, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "coded: theta %d, seeds %v\n", coded.Theta, coded.Seeds)

	// The store cannot change the answer — only what it costs to hold.
	fmt.Fprintf(w, "seed sets identical: %v\n", slices.Equal(flat.Seeds, coded.Seeds))
	fmt.Fprintf(w, "same samples generated: %v\n",
		flat.SamplesGenerated == coded.SamplesGenerated)

	// The memory story: StoreBytes is each run's resident store;
	// FlatStoreBytes is the flat-layout cost of the same samples, so
	// their quotient is the compression ratio (byte counts shift with
	// sampling details across versions, so print the ratio's floor,
	// which is the stable claim).
	ratio := float64(coded.FlatStoreBytes) / float64(coded.StoreBytes)
	fmt.Fprintf(w, "flat bytes match across runs: %v\n", coded.FlatStoreBytes == flat.StoreBytes)
	fmt.Fprintf(w, "coded store at least 3x smaller: %v\n", ratio >= 3.0)
	return nil
}
