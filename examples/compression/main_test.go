package main

import "os"

// Example pins the demonstration's output: the byte-coded store is a pure
// re-representation of the same samples, so the seeds and theta printed
// are exact, and the footprint ratio clears the 3x floor the benchmark
// gate enforces (exact byte counts shift with sampling details, so only
// the predicates are pinned).
func Example() {
	if err := run(os.Stdout); err != nil {
		panic(err)
	}
	// Output:
	// flat : theta 1057, seeds [27 507 920 1071 1402]
	// coded: theta 1057, seeds [27 507 920 1071 1402]
	// seed sets identical: true
	// same samples generated: true
	// flat bytes match across runs: true
	// coded store at least 3x smaller: true
}
