// Distributed influence maximization (IMMdist): the paper's Section 3.2
// algorithm run on an in-process cluster, demonstrating that (i) each rank
// holds only theta/p of the reverse-reachability samples, (ii) the ranks
// agree on the seed set through AllReduce-based selection, and (iii) the
// answer is identical to the shared-memory implementation.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"sync"

	"influmax"
)

func main() {
	g := influmax.Generate("com-YouTube", 0.002, 5)
	g.AssignUniform(11)
	st := g.ComputeStats()
	fmt.Printf("graph: %d vertices, %d edges\n", st.Vertices, st.Edges)

	const k = 20
	const eps = 0.3

	// Shared-memory reference run.
	ref, err := influmax.Maximize(g, influmax.Options{K: k, Epsilon: eps, Model: influmax.IC, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshared-memory IMM:  seeds %v\n", ref.Seeds)

	// Distributed run: 4 ranks, each a goroutine over the in-process
	// transport (swap LocalCluster for DialTCP to span machines — the
	// algorithm code is transport-agnostic, like MPI code).
	const ranks = 4
	comms := influmax.LocalCluster(ranks)
	results := make([]*influmax.DistResult, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			res, err := influmax.MaximizeDistributed(comms[rank], g, influmax.DistOptions{
				K: k, Epsilon: eps, Model: influmax.IC, Seed: 9, ThreadsPerRank: 1,
			})
			if err != nil {
				log.Fatalf("rank %d: %v", rank, err)
			}
			results[rank] = res
		}(r)
	}
	wg.Wait()

	fmt.Printf("distributed IMMdist: seeds %v\n\n", results[0].Seeds)
	var total int
	for r, res := range results {
		fmt.Printf("rank %d: %6d local samples (%5.1f%% of theta), store %.2f MB\n",
			r, res.LocalSamples,
			100*float64(res.LocalSamples)/float64(res.SamplesGenerated),
			float64(res.StoreBytes)/(1<<20))
		total += res.LocalSamples
	}
	fmt.Printf("union:  %6d samples across ranks (theta = %d)\n", total, results[0].Theta)

	match := len(ref.Seeds) == len(results[0].Seeds)
	for i := range ref.Seeds {
		if !match || ref.Seeds[i] != results[0].Seeds[i] {
			match = false
			break
		}
	}
	fmt.Printf("\nseed sets identical to shared-memory run: %v\n", match)
	fmt.Println("(per-sample RNG derivation makes the result independent of the rank count)")
}
