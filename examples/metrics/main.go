// Metrics: instrument an IMM run with the engine metrics registry and
// emit the structured RunReport that cmd/imm -metrics-json writes.
//
//	go run ./examples/metrics
//
// The registry collects allocation-free counters and log-bucket
// histograms inside the sampling engine (RRR set counts, store entries,
// per-set size distribution); the RunReport unifies them with the
// phase breakdown and bookkeeping of the run into one JSON document
// (schema version 1). With the default per-sample RNG discipline the
// numbers below are identical for any worker count.
package main

import (
	"fmt"
	"io"
	"os"

	"influmax"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run executes the instrumented maximization and writes the demonstration
// output to w (the Example test pins this output).
func run(w io.Writer) error {
	// A deterministic scaled analog of the cit-HepTh citation network.
	g := influmax.Generate("cit-HepTh", 0.02, 3)
	g.AssignUniform(11)

	// Hand the engine a metrics registry; it fills the rrr/* instruments
	// while sampling.
	reg := influmax.NewMetricsRegistry()
	opt := influmax.Options{
		K: 5, Epsilon: 0.5, Model: influmax.IC, Workers: 2, Seed: 42,
		Metrics: reg,
	}
	res, err := influmax.Maximize(g, opt)
	if err != nil {
		return err
	}

	// The registry is readable directly...
	sizes := reg.Histogram("rrr/size").Snapshot()
	fmt.Fprintf(w, "rrr sets sampled: %d\n", reg.Counter("rrr/samples").Value())
	fmt.Fprintf(w, "rrr store entries: %d\n", reg.Counter("rrr/entries").Value())
	fmt.Fprintf(w, "rrr set size: min %d, max %d over %d sets\n",
		sizes.Min, sizes.Max, sizes.Count)

	// ...and travels inside the structured report of the run, next to the
	// phase timings and bookkeeping (this is what -metrics-json writes).
	rep := influmax.Report(res, opt)
	fmt.Fprintf(w, "report: schema %d, algorithm %s, theta %d, %d workers\n",
		rep.Schema, rep.Algorithm, rep.Theta, rep.Workers)
	fmt.Fprintf(w, "report samples match registry: %v\n",
		rep.SamplesGenerated == rep.Metrics.Counters["rrr/samples"])
	fmt.Fprintf(w, "seeds: %v\n", rep.Seeds)
	return nil
}
