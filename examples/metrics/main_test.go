package main

import "os"

// Example pins the demonstration's output: the per-sample RNG discipline
// makes the run bit-deterministic for any worker count, so everything the
// example prints — including the engine-metric values — is exact.
func Example() {
	if err := run(os.Stdout); err != nil {
		panic(err)
	}
	// Output:
	// rrr sets sampled: 999
	// rrr store entries: 87752
	// rrr set size: min 1, max 543 over 999 sets
	// report: schema 1, algorithm IMMmt, theta 999, 2 workers
	// report samples match registry: true
	// seeds: [492 545 483 531 487]
}
