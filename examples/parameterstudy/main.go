// Parameter study: the practitioner's workflow the paper's introduction
// motivates — "users typically have to test multiple k values before
// identifying an optimal configuration that can maximize their return on
// investment", and the accuracy eps trades solution quality for compute.
//
// This example sweeps k and eps on one input, printing theta, runtime
// (with the Algorithm 1 phase breakdown) and achieved spread: a compact
// reproduction of the dynamics behind Figures 2, 3 and 4.
//
//	go run ./examples/parameterstudy
package main

import (
	"fmt"
	"log"
	"time"

	"influmax"
)

func main() {
	g := influmax.Generate("soc-Epinions1", 0.02, 8)
	g.AssignUniform(21)
	st := g.ComputeStats()
	fmt.Printf("graph: %d vertices, %d edges\n", st.Vertices, st.Edges)

	fmt.Println("\n-- theta and runtime vs eps (k = 25): Figures 2 and 3 --")
	fmt.Printf("%6s %10s %12s %28s %10s\n", "eps", "theta", "time", "phases (est/sample/select)", "spread")
	for _, eps := range []float64{0.5, 0.4, 0.3, 0.2} {
		run(g, 25, eps)
	}

	fmt.Println("\n-- theta and runtime vs k (eps = 0.5): Figures 2 and 4 --")
	fmt.Printf("%6s %10s %12s %28s %10s\n", "k", "theta", "time", "phases (est/sample/select)", "spread")
	for _, k := range []int{10, 25, 50, 100} {
		runK(g, k, 0.5)
	}

	fmt.Println("\ntheta grows ~1/eps^2 and with k; the Sample and EstimateTheta phases")
	fmt.Println("dominate, which is exactly why the paper parallelizes sampling first.")
}

func run(g *influmax.Graph, k int, eps float64) {
	res, err := influmax.Maximize(g, influmax.Options{K: k, Epsilon: eps, Model: influmax.IC, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	spread, _ := influmax.Spread(g, influmax.IC, res.Seeds, 5000, 0, 5)
	fmt.Printf("%6.2f %10d %12v %8v/%8v/%8v %10.1f\n",
		eps, res.Theta, res.Phases.Total().Round(time.Millisecond),
		res.Phases.Get(influmax.PhaseEstimation).Round(time.Millisecond),
		res.Phases.Get(influmax.PhaseSampling).Round(time.Millisecond),
		res.Phases.Get(influmax.PhaseSelect).Round(time.Millisecond),
		spread)
}

func runK(g *influmax.Graph, k int, eps float64) {
	res, err := influmax.Maximize(g, influmax.Options{K: k, Epsilon: eps, Model: influmax.IC, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	spread, _ := influmax.Spread(g, influmax.IC, res.Seeds, 5000, 0, 5)
	fmt.Printf("%6d %10d %12v %8v/%8v/%8v %10.1f\n",
		k, res.Theta, res.Phases.Total().Round(time.Millisecond),
		res.Phases.Get(influmax.PhaseEstimation).Round(time.Millisecond),
		res.Phases.Get(influmax.PhaseSampling).Round(time.Millisecond),
		res.Phases.Get(influmax.PhaseSelect).Round(time.Millisecond),
		spread)
}
