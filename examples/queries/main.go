// Queries: one resident sketch, four selection shapes (DESIGN.md §17).
//
// A sketch built once answers more than plain top-k: this example runs a
// budgeted (cost-aware) selection, a targeted (audience-restricted)
// selection, a competitive selection against a rival's seeds, and a
// direct spread estimate of a hand-picked set — all over the same theta
// RRR samples, with no resampling between queries.
//
//	go run ./examples/queries
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"influmax"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// A synthetic scale-free network with uniform activation
	// probabilities; everything below is a pure function of these seeds.
	g := influmax.Generate("cit-HepTh", 0.03, 3)
	g.AssignUniform(9)

	key := influmax.SketchKey{
		GraphDigest: g.Digest(), Model: influmax.IC, Epsilon: 0.5, KMax: 20, Seed: 11,
	}
	sk, err := influmax.BuildSketch(g, key, 0, influmax.ScheduleDynamic, influmax.KernelFused, influmax.StoreCoded, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "sketch: %d samples over %d vertices\n", sk.Col.Count(), sk.Col.NumVertices())

	// Plain top-k: byte-identical to influmax.Maximize at the same
	// configuration.
	plain, err := influmax.QuerySketch(sk, influmax.SketchQuery{K: 5}, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "plain top-5:      %v (covers %d samples)\n", plain.Seeds, plain.Covered)

	// Budgeted: vertex v costs 1 + v%3 units; four units to spend. The
	// greedy ranks by exact marginal-gain-per-cost (the CELF rule), so
	// cheap well-placed vertices can beat the plain winner.
	costs := make([]float64, g.NumVertices())
	for v := range costs {
		costs[v] = float64(1 + v%3)
	}
	budgeted, err := influmax.QuerySketch(sk, influmax.SketchQuery{K: 5, Costs: costs, Budget: 4}, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "budget 4:         %v (spent %.0f)\n", budgeted.Seeds, budgeted.SpentBudget)

	// Targeted: only influence ON the audience counts — samples rooted
	// outside it are ignored by the objective.
	var audience []influmax.Vertex
	for v := 0; v < g.NumVertices(); v += 2 {
		audience = append(audience, influmax.Vertex(v))
	}
	targeted, err := influmax.QuerySketch(sk, influmax.SketchQuery{K: 5, Audience: audience}, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "targeted top-5:   %v (%d of %d samples eligible)\n",
		targeted.Seeds, targeted.Eligible, sk.Col.Count())

	// Competitive: the rival already holds the two best plain seeds;
	// select around them, counting only incremental coverage.
	rival := plain.Seeds[:2]
	blocked, err := influmax.QuerySketch(sk, influmax.SketchQuery{K: 5, Blocked: rival}, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "vs rival %v: %v\n", rival, blocked.Seeds)

	// Direct spread estimation: the same estimator the selections
	// optimize, exposed for caller-supplied seed sets.
	est, covered, _, err := influmax.EstimateSpread(sk, plain.Seeds, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "spread(plain):    %.1f vertices (%d samples covered)\n", est, covered)
	estAud, _, eligible, err := influmax.EstimateSpread(sk, plain.Seeds, audience)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "spread(audience): %.1f audience members (%d samples eligible)\n", estAud, eligible)
	return nil
}
