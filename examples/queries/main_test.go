package main

import "os"

// Example pins the full deterministic output of the queries walkthrough:
// the budgeted selection trades the expensive plain winner for cheaper
// vertices, the targeted selection reranks by audience-rooted samples
// only, and the competitive selection reproduces the plain tail once the
// rival holds the top two seeds.
func Example() {
	if err := run(os.Stdout); err != nil {
		panic(err)
	}
	// Output:
	// sketch: 1996 samples over 833 vertices
	// plain top-5:      [808 801 766 771 710] (covers 1034 samples)
	// budget 4:         [771 801 777 789] (spent 4)
	// targeted top-5:   [808 710 770 801 760] (960 of 1996 samples eligible)
	// vs rival [808 801]: [766 771 710 777 789]
	// spread(plain):    431.5 vertices (1034 samples covered)
	// spread(audience): 220.8 audience members (960 samples eligible)
}
