// Quickstart: build a small social graph, run IMM, and evaluate the
// selected seed set with Monte Carlo simulation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"influmax"
)

func main() {
	// A synthetic analog of the cit-HepTh citation network at 5% scale
	// (about 1,400 vertices), with uniform random activation
	// probabilities — the paper's experimental setup.
	g := influmax.Generate("cit-HepTh", 0.05, 1)
	g.AssignUniform(7)
	st := g.ComputeStats()
	fmt.Printf("graph: %d vertices, %d edges (avg degree %.1f)\n",
		st.Vertices, st.Edges, st.AvgDegree)

	// Find the 20 most influential vertices under Independent Cascade
	// with a (1 - 1/e - 0.5) approximation guarantee, using all cores.
	res, err := influmax.Maximize(g, influmax.Options{
		K:       20,
		Epsilon: 0.5,
		Model:   influmax.IC,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IMM generated %d reverse-reachability samples (theta = %d)\n",
		res.SamplesGenerated, res.Theta)
	fmt.Printf("selected seeds: %v\n", res.Seeds)
	fmt.Printf("estimated spread: %.1f vertices\n", res.EstimatedSpread)

	// Cross-check the RIS estimate with 20,000 forward Monte Carlo
	// cascades: the two estimators agree because reverse-reachability
	// coverage is an unbiased spread estimator.
	mean, se := influmax.Spread(g, influmax.IC, res.Seeds, 20000, 0, 99)
	fmt.Printf("simulated spread:  %.1f ± %.1f\n", mean, 2*se)

	// Compare against the cheapest heuristic: top-k by degree.
	degSeeds := influmax.TopDegree(g, 20)
	degSpread, _ := influmax.Spread(g, influmax.IC, degSeeds, 20000, 0, 99)
	fmt.Printf("top-degree heuristic spread: %.1f\n", degSpread)
}
