// Scheduling: the work-stealing sampling schedule against the paper's
// static contiguous split — same answer, better balance.
//
//	go run ./examples/scheduling
//
// The default -schedule dynamic runs the RRR sampling loop on a chunked
// work-stealing scheduler (DESIGN.md §12). Because the per-sample RNG
// discipline derives sample i's randomness from (seed, i) alone, which
// worker executes an index is invisible to the result: the dynamic
// schedule at any worker count produces the exact collection, theta, and
// seed set of the static schedule at one worker. What changes is load:
// the scheduler reports per-worker work whose mean/max ratio (the
// rrr/balance gauge, in permille) bounds sampling-phase speedup.
package main

import (
	"fmt"
	"io"
	"os"
	"slices"

	"influmax"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run executes the two schedules and writes the demonstration output to
// w (the Example test pins this output).
func run(w io.Writer) error {
	// A deterministic scaled analog of the cit-HepTh citation network.
	g := influmax.Generate("cit-HepTh", 0.02, 3)
	g.AssignUniform(11)

	// Reference: the paper's schedule — one worker, contiguous split.
	static, err := influmax.Maximize(g, influmax.Options{
		K: 5, Epsilon: 0.5, Model: influmax.IC, Workers: 1, Seed: 42,
		Schedule: influmax.ScheduleStatic,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "static  workers=1: theta %d, seeds %v\n", static.Theta, static.Seeds)

	// The work-stealing schedule, four workers, instrumented.
	reg := influmax.NewMetricsRegistry()
	dynamic, err := influmax.Maximize(g, influmax.Options{
		K: 5, Epsilon: 0.5, Model: influmax.IC, Workers: 4, Seed: 42,
		Schedule: influmax.ScheduleDynamic, Metrics: reg,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dynamic workers=4: theta %d, seeds %v\n", dynamic.Theta, dynamic.Seeds)

	// The schedule cannot change the answer — only who did the work.
	fmt.Fprintf(w, "seed sets identical: %v\n", slices.Equal(static.Seeds, dynamic.Seeds))
	fmt.Fprintf(w, "same samples generated: %v\n",
		static.SamplesGenerated == dynamic.SamplesGenerated)

	// The scheduler's telemetry: chunks claimed across the run, and the
	// load balance (mean/max per-worker work, in permille; 1000 = even).
	// Chunk and steal counts depend on thread timing, so only their
	// presence is stable enough to print.
	chunks := reg.Counter("par/chunks").Value()
	balance := reg.Gauge("rrr/balance").Value()
	fmt.Fprintf(w, "scheduler chunks claimed: %v\n", chunks >= 4)
	fmt.Fprintf(w, "balance gauge in (0, 1000]: %v\n", balance > 0 && balance <= 1000)
	return nil
}
