package main

import "os"

// Example pins the demonstration's output: per-sample RNG makes the two
// schedules bit-equivalent, so the seeds and theta printed are exact;
// the scheduler's own counters (chunks, steals) are timing-dependent and
// only asserted as predicates.
func Example() {
	if err := run(os.Stdout); err != nil {
		panic(err)
	}
	// Output:
	// static  workers=1: theta 999, seeds [492 545 483 531 487]
	// dynamic workers=4: theta 999, seeds [492 545 483 531 487]
	// seed sets identical: true
	// same samples generated: true
	// scheduler chunks claimed: true
	// balance gauge in (0, 1000]: true
}
