// Serving: the resident sketch-serving subsystem (immserve) driven as a
// library — build a query-ready sketch once, persist it as a snapshot,
// warm-start a server from the file, and answer a seed query over HTTP
// without any resampling.
//
//	go run ./examples/serving
//
// The sketch is sized for kMax: any query with k <= kMax is an indexed
// greedy selection over the same theta samples (greedy is
// prefix-consistent, so the answer equals a fresh selection at that k).
// With the per-sample RNG discipline everything below is deterministic,
// including the served seed set.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"slices"
	"strings"

	"influmax"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run executes the build -> snapshot -> serve -> query pipeline and
// writes the demonstration output to w (the Example test pins this
// output).
func run(w io.Writer) error {
	// A deterministic scaled analog of the cit-HepTh citation network.
	g := influmax.Generate("cit-HepTh", 0.02, 3)
	g.AssignUniform(11)

	// Build the sketch: the full IMM estimation + sampling pipeline at
	// K = kMax, byte-coded and indexed. This is the expensive step the
	// serving layer exists to amortize.
	key := influmax.SketchKey{
		GraphDigest: g.Digest(), Model: influmax.IC,
		Epsilon: 0.5, KMax: 25, Seed: 42,
	}
	sketch, err := influmax.BuildSketch(g, key, 2, influmax.ScheduleDynamic, influmax.KernelFused, influmax.StoreFlat, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "sketch built: %d samples for kMax %d (source %q)\n",
		sketch.Theta, key.KMax, sketch.Source)

	// Persist and reload: the snapshot carries the byte-coded samples,
	// the incidence index, and the graph digest that guards against
	// serving it on the wrong graph.
	dir, err := os.MkdirTemp("", "immserve-example")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "sketch.snap")
	if err := influmax.SaveSnapshot(path, sketch); err != nil {
		return err
	}
	loaded, err := influmax.LoadSnapshot(path, g, 2, influmax.StoreFlat)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "snapshot reloaded: source %q, theta %d\n", loaded.Source, loaded.Theta)

	// Serve from the loaded snapshot — the warm start a restarted
	// immserve process takes.
	srv, err := influmax.Serve(influmax.ServeConfig{
		Graph: g, Model: influmax.IC, Epsilon: 0.5, KMax: 25, Seed: 42,
		Workers: 2, Sketch: loaded,
	})
	if err != nil {
		return err
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Shutdown(context.Background())

	resp, err := http.Post("http://"+addr.String()+"/v1/seeds", "application/json",
		strings.NewReader(`{"k":10}`))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var out struct {
		K      int               `json:"k"`
		Seeds  []influmax.Vertex `json:"seeds"`
		Source string            `json:"source"`
		Report struct {
			PhaseSeconds map[string]float64 `json:"phaseSeconds"`
		} `json:"report"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return err
	}

	fmt.Fprintf(w, "query k=%d served from %q sketch (status %d)\n",
		out.K, out.Source, resp.StatusCode)
	fmt.Fprintf(w, "sampling time on the query path: %v s\n",
		out.Report.PhaseSeconds["Sample"])
	fmt.Fprintf(w, "seeds: %v\n", out.Seeds)

	// The served answer is exactly what a fresh selection over the
	// sampled (never persisted) sketch returns.
	fresh, _ := sketch.Query(10, 2)
	fmt.Fprintf(w, "matches fresh in-process selection: %v\n", slices.Equal(out.Seeds, fresh))
	return nil
}
