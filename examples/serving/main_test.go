package main

import "os"

// Example pins the demonstration's output: the per-sample RNG discipline
// makes the sketch bit-deterministic, the snapshot encoding is canonical,
// and greedy selection is deterministic at any worker count — so the
// served seed set is exact.
func Example() {
	if err := run(os.Stdout); err != nil {
		panic(err)
	}
	// Output:
	// sketch built: 1801 samples for kMax 25 (source "sampled")
	// snapshot reloaded: source "snapshot", theta 1801
	// query k=10 served from "snapshot" sketch (status 200)
	// sampling time on the query path: 0 s
	// seeds: [492 545 483 487 531 520 506 507 495 523]
	// matches fresh in-process selection: true
}
