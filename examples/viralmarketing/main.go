// Viral marketing: the motivating workload of the influence-maximization
// literature. A brand can give free products to k customers of a social
// network and wants to maximize word-of-mouth adoption.
//
// This example compares IMM against the classic alternatives (CELF
// lazy-greedy, degree discount, plain degree) on an Orkut-like social
// graph, reporting both solution quality and the cost of each method —
// the trade-off Table 3 of the paper quantifies at scale.
//
//	go run ./examples/viralmarketing
package main

import (
	"fmt"
	"log"
	"time"

	"influmax"
)

func main() {
	// Orkut-like analog at a small scale: heavy-tailed degrees, dense.
	g := influmax.Generate("com-Orkut", 0.0005, 3)
	g.AssignWeightedCascade() // adoption probability 1/indeg: the WC model
	st := g.ComputeStats()
	fmt.Printf("social graph: %d users, %d ties, max degree %d\n\n",
		st.Vertices, st.Edges, st.MaxDegree)

	const k = 25
	const evalTrials = 20000

	type method struct {
		name string
		run  func() ([]influmax.Vertex, error)
	}
	methods := []method{
		{"IMM (eps=0.13)", func() ([]influmax.Vertex, error) {
			res, err := influmax.Maximize(g, influmax.Options{K: k, Epsilon: 0.13, Model: influmax.IC, Seed: 1})
			if err != nil {
				return nil, err
			}
			return res.Seeds, nil
		}},
		{"IMM (eps=0.5)", func() ([]influmax.Vertex, error) {
			res, err := influmax.Maximize(g, influmax.Options{K: k, Epsilon: 0.5, Model: influmax.IC, Seed: 1})
			if err != nil {
				return nil, err
			}
			return res.Seeds, nil
		}},
		{"CELF greedy (500 MC/eval)", func() ([]influmax.Vertex, error) {
			seeds, _, err := influmax.CELF(g, influmax.IC, k, 500, 0, 1)
			return seeds, err
		}},
		{"degree discount", func() ([]influmax.Vertex, error) {
			return influmax.DegreeDiscount(g, k, 0.05), nil
		}},
		{"top degree", func() ([]influmax.Vertex, error) {
			return influmax.TopDegree(g, k), nil
		}},
	}

	fmt.Printf("%-28s %12s %12s\n", "method", "spread", "time")
	for _, m := range methods {
		start := time.Now()
		seeds, err := m.run()
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		elapsed := time.Since(start)
		spread, se := influmax.Spread(g, influmax.IC, seeds, evalTrials, 0, 777)
		fmt.Printf("%-28s %7.1f±%-4.1f %12v\n", m.name, spread, 2*se, elapsed.Round(time.Millisecond))
	}
	fmt.Println("\nIMM matches the greedy oracle's quality at a fraction of its cost,")
	fmt.Println("and tightening eps buys quality the heuristics cannot reach.")

	// Return-on-investment curve: how much each additional free product
	// buys. SpreadCurve shares one trial set across all prefixes, so the
	// whole curve costs about one evaluation.
	res, err := influmax.Maximize(g, influmax.Options{K: k, Epsilon: 0.13, Model: influmax.IC, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	curve := influmax.SpreadCurve(g, influmax.IC, res.Seeds, evalTrials, 0, 777)
	fmt.Println("\nROI curve (IMM seeds, eps=0.13):")
	for i := 0; i < len(curve); i += 5 {
		fmt.Printf("  first %2d seeds -> %6.1f expected adopters\n", i+1, curve[i])
	}
}
