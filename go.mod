module influmax

go 1.22
