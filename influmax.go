package influmax

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"influmax/internal/baseline"
	"influmax/internal/centrality"
	"influmax/internal/cluster"
	"influmax/internal/diffuse"
	"influmax/internal/dist"
	"influmax/internal/gen"
	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/metrics"
	"influmax/internal/mpi"
	"influmax/internal/rrr"
	"influmax/internal/server"
	"influmax/internal/trace"
)

// Core graph types, re-exported from the substrate.
type (
	// Graph is a directed graph in CSR form with per-edge activation
	// probabilities.
	Graph = graph.Graph
	// Vertex identifies a vertex in [0, NumVertices).
	Vertex = graph.Vertex
	// Edge is a weighted directed edge used during construction.
	Edge = graph.Edge
	// Builder accumulates edges and produces a Graph.
	Builder = graph.Builder
	// GraphStats summarizes a graph's degree structure.
	GraphStats = graph.Stats
)

// Model selects the diffusion process.
type Model = diffuse.Model

// Diffusion models.
const (
	// IC is the Independent Cascade model.
	IC = diffuse.IC
	// LT is the Linear Threshold model.
	LT = diffuse.LT
)

// ParseModel parses "IC" or "LT" (case-insensitive).
func ParseModel(s string) (Model, error) { return diffuse.ParseModel(s) }

// Options configures an IMM run; see the imm package for field docs.
type Options = imm.Options

// Result reports an IMM run.
type Result = imm.Result

// RNG stream-splitting disciplines.
const (
	// PerSample gives every Monte Carlo sample its own derived stream:
	// results are reproducible for any worker/rank count.
	PerSample = imm.PerSample
	// LeapFrog splits one global LCG sequence across workers, as the
	// paper does with TRNG.
	LeapFrog = imm.LeapFrog
)

// Schedule selects how the sampling loop is partitioned onto workers.
type Schedule = imm.Schedule

// Sampling-loop schedules.
const (
	// ScheduleDynamic is chunked work-stealing with guided chunk sizing —
	// the default. In PerSample RNG mode the output is byte-identical to
	// the static schedule for any worker count.
	ScheduleDynamic = imm.ScheduleDynamic
	// ScheduleStatic is the paper's static contiguous split.
	ScheduleStatic = imm.ScheduleStatic
)

// ParseSchedule parses "dynamic" or "static" (case-insensitive).
func ParseSchedule(s string) (Schedule, error) {
	switch strings.ToLower(s) {
	case "dynamic":
		return ScheduleDynamic, nil
	case "static":
		return ScheduleStatic, nil
	}
	return 0, fmt.Errorf("unknown schedule %q (want dynamic or static)", s)
}

// Kernel selects the reverse-reachability sampling kernel. Both kernels
// produce byte-identical collections and seeds in PerSample RNG mode; the
// fused kernel is faster, the scalar kernel is the reference oracle (and
// the only one that can consume worker-pinned LeapFrog streams).
type Kernel = imm.Kernel

// Sampling kernels.
const (
	// KernelFused is the fused CSR frontier kernel (batches of up to 64
	// samples per pass, block-generated coins) — the default.
	KernelFused = imm.KernelFused
	// KernelScalar is the per-sample reverse-BFS/walk kernel.
	KernelScalar = imm.KernelScalar
)

// ParseKernel parses "fused" or "scalar" (case-insensitive).
func ParseKernel(s string) (Kernel, error) {
	switch strings.ToLower(s) {
	case "fused":
		return KernelFused, nil
	case "scalar":
		return KernelScalar, nil
	}
	return 0, fmt.Errorf("unknown kernel %q (want fused or scalar)", s)
}

// StoreKind selects the in-memory representation of the finished RRR
// sample store — the memory/decode-time trade-off of DESIGN.md §13. The
// selected seeds are identical for every kind.
type StoreKind = imm.StoreKind

// RRR store kinds.
const (
	// StoreFlat is the compact uint32 arena (4 B/entry + 8 B/sample) —
	// the default.
	StoreFlat = imm.StoreFlat
	// StoreCoded is the byte-coded store: frequency-ordered relabeling +
	// delta+varint payloads, >= 3x smaller on clustered graphs.
	StoreCoded = imm.StoreCoded
)

// ParseStoreKind parses "flat" or "coded" (case-insensitive).
func ParseStoreKind(s string) (StoreKind, error) {
	switch strings.ToLower(s) {
	case "flat":
		return StoreFlat, nil
	case "coded":
		return StoreCoded, nil
	}
	return 0, fmt.Errorf("unknown store kind %q (want flat or coded)", s)
}

// Phase identifies a section of Algorithm 1 in a Result's timing
// breakdown (the stacked bars of the paper's figures).
type Phase = trace.Phase

// Algorithm 1 phases.
const (
	// PhaseEstimation is Algorithm 2 (EstimateTheta) including its
	// internal sampling.
	PhaseEstimation = trace.Estimation
	// PhaseSampling is the direct Sample invocation (Algorithm 3).
	PhaseSampling = trace.Sampling
	// PhaseIndexBuild is the construction of the inverted vertex->samples
	// incidence index the final seed selection purges through.
	PhaseIndexBuild = trace.IndexBuild
	// PhaseSelect is the final SelectSeeds invocation (Algorithm 4).
	PhaseSelect = trace.SelectSeeds
	// PhaseOther is setup and accounting.
	PhaseOther = trace.Other
)

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph from an edge list.
func FromEdges(n int, es []Edge) *Graph { return graph.FromEdges(n, es) }

// ParseEdgeList reads a SNAP-style edge list; see graph.ParseEdgeList.
func ParseEdgeList(r io.Reader) (*Graph, []int64, error) { return graph.ParseEdgeList(r) }

// WriteEdgeList writes g as "u v w" lines.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// ReadBinary / WriteBinary use the package's compact binary graph format.
func ReadBinary(r io.Reader) (*Graph, error)  { return graph.ReadBinary(r) }
func WriteBinary(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// Maximize runs parallel IMM over g: the optimized sequential
// implementation when opt.Workers == 1, the multithreaded one otherwise.
func Maximize(g *Graph, opt Options) (*Result, error) { return imm.Run(g, opt) }

// MaximizeBaseline runs the sequential Tang-style baseline (bidirectional
// hypergraph store), the "IMM" rows of Tables 2 and 3.
func MaximizeBaseline(g *Graph, opt Options) (*Result, error) { return imm.RunBaseline(g, opt) }

// Comm is one rank's endpoint of the message-passing substrate.
type Comm = mpi.Comm

// DistOptions configures a distributed IMM run.
type DistOptions = dist.Options

// DistResult reports a distributed IMM run.
type DistResult = dist.Result

// LocalCluster creates p in-process ranks; hand each Comm to a goroutine
// and call MaximizeDistributed on all of them.
func LocalCluster(p int) []Comm { return mpi.NewLocalCluster(p) }

// DialTCP joins a TCP communicator; see mpi.TCPConfig.
func DialTCP(rank int, addrs []string) (Comm, error) {
	return mpi.DialTCP(mpi.TCPConfig{Rank: rank, Addrs: addrs})
}

// Fault-tolerance surface: hardened transport knobs, deterministic fault
// injection, and the failure type collectives surface when a peer dies.
type (
	// TCPConfig configures the full-mesh TCP transport (deadlines,
	// frame-size bound, dial/send retry budget).
	TCPConfig = mpi.TCPConfig
	// FaultPlan is a deterministic, seed-driven fault schedule for the
	// WithFaults transport decorator.
	FaultPlan = mpi.FaultPlan
	// RankCrash schedules one rank's injected crash inside a FaultPlan.
	RankCrash = mpi.RankCrash
	// RankFailedError identifies the rank a collective blames for a
	// failure (dead connection, injected crash, or receive timeout).
	RankFailedError = mpi.RankFailedError
	// CommStats counts transport retries and injected faults; it lands in
	// RunReports under "mpi/..." counter names.
	CommStats = mpi.CommStats
)

// DialTCPConfig joins a TCP communicator with explicit transport
// hardening knobs (per-message deadlines, max frame size, retry budget).
func DialTCPConfig(cfg TCPConfig) (Comm, error) { return mpi.DialTCP(cfg) }

// ParseFaultPlan parses the -fault-plan flag syntax, e.g.
// "seed=7,delay=0.2/5ms,drop=0.1/3,dup=0.05,reorder=0.1,kill=1@500".
// An empty string yields an inactive plan.
func ParseFaultPlan(s string) (FaultPlan, error) { return mpi.ParseFaultPlan(s) }

// WithFaults decorates a communicator with deterministic fault injection
// per plan; an inactive plan returns c unchanged.
func WithFaults(c Comm, plan FaultPlan) Comm { return mpi.WithFaults(c, plan) }

// CommStatsOf extracts transport/fault counters from a communicator, or
// zero stats if its transport does not track any.
func CommStatsOf(c Comm) CommStats { return mpi.StatsOf(c) }

// MaximizeDistributed runs IMMdist over the communicator; all ranks must
// call it with the same graph and options, and all receive the same seeds.
func MaximizeDistributed(c Comm, g *Graph, opt DistOptions) (*DistResult, error) {
	return dist.Run(c, g, opt)
}

// PartOptions configures a graph-partitioned distributed run (the paper's
// future-work extension: the input graph, not just the sample set, is
// partitioned across ranks).
type PartOptions = dist.PartOptions

// PartResult reports a graph-partitioned run.
type PartResult = dist.PartResult

// MaximizePartitioned runs graph-partitioned distributed IMM: every rank
// owns a contiguous vertex interval and only that interval's incoming
// edges; sampling is a bulk-synchronous frontier computation with
// common-random-numbers edge coins, so the result is identical for every
// rank count.
func MaximizePartitioned(c Comm, g *Graph, opt PartOptions) (*PartResult, error) {
	return dist.RunPartitioned(c, g, opt)
}

// Spread estimates the expected influence E[|I(S)|] of a seed set by
// parallel Monte Carlo simulation, returning the mean and standard error.
func Spread(g *Graph, model Model, seeds []Vertex, trials, workers int, seed uint64) (float64, float64) {
	return diffuse.EstimateSpread(g, model, seeds, trials, workers, seed)
}

// SpreadCurve estimates the expected influence of every prefix of the
// seed list — the "return on investment" curve of Figure 1 — sharing one
// live-edge Monte Carlo trial set across all prefixes, so the whole curve
// costs about as much as a single evaluation.
func SpreadCurve(g *Graph, model Model, seeds []Vertex, trials, workers int, seed uint64) []float64 {
	return diffuse.SpreadCurve(g, model, seeds, trials, workers, seed)
}

// Generate synthesizes a scaled analog of one of the paper's eight SNAP
// datasets (see Datasets for names). Weights are zero; assign a scheme
// such as (*Graph).AssignUniform afterwards. It panics on an unknown name
// or invalid scale — use gen.ByName via DatasetNames for validation.
func Generate(dataset string, scale float64, seed uint64) *Graph {
	d, err := gen.ByName(dataset)
	if err != nil {
		panic(err)
	}
	return d.Generate(scale, seed)
}

// DatasetNames lists the SNAP analogs available to Generate.
func DatasetNames() []string {
	var names []string
	for _, d := range gen.Datasets() {
		names = append(names, d.Name)
	}
	return names
}

// ErdosRenyi, BarabasiAlbert, WattsStrogatz and RMAT are the synthetic
// generator families; see the gen package for parameter docs.
func ErdosRenyi(n, m int, seed uint64) *Graph { return gen.ErdosRenyi(n, m, seed) }
func BarabasiAlbert(n, mPer int, seed uint64) *Graph {
	return gen.BarabasiAlbert(n, mPer, seed)
}
func WattsStrogatz(n, k int, beta float64, seed uint64) *Graph {
	return gen.WattsStrogatz(n, k, beta, seed)
}
func RMAT(n, m int, a, b, c float64, seed uint64) *Graph { return gen.RMAT(n, m, a, b, c, seed) }

// Greedy is the Monte Carlo hill-climbing baseline of Kempe et al.
func Greedy(g *Graph, model Model, k, trials, workers int, seed uint64) ([]Vertex, []float64, error) {
	return baseline.Greedy(g, model, k, trials, workers, seed)
}

// CELF is the lazy-greedy baseline of Leskovec et al.
func CELF(g *Graph, model Model, k, trials, workers int, seed uint64) ([]Vertex, []float64, error) {
	return baseline.CELF(g, model, k, trials, workers, seed)
}

// CELFPlusPlus is the CELF++ lazy-greedy of Goyal et al., returning the
// seeds, their marginal gains, and the number of spread-oracle
// evaluations.
func CELFPlusPlus(g *Graph, model Model, k, trials, workers int, seed uint64) ([]Vertex, []float64, int, error) {
	return baseline.CELFPlusPlus(g, model, k, trials, workers, seed)
}

// TIMResult reports a TIM+ run.
type TIMResult = imm.TIMResult

// MaximizeTIMPlus runs TIM+ (Tang et al. 2014), IMM's predecessor with the
// same guarantee but a coarser sample-count bound — kept for comparison
// benchmarks.
func MaximizeTIMPlus(g *Graph, opt Options) (*TIMResult, error) {
	return imm.RunTIMPlus(g, opt)
}

// KShell returns each vertex's k-shell (k-core) index on the undirected
// view of g; KShellSeeds draws k seeds from the innermost shells (Wu et
// al.'s heuristic).
func KShell(g *Graph) []int                { return centrality.KShell(g) }
func KShellSeeds(g *Graph, k int) []Vertex { return centrality.KShellSeeds(g, k) }

// TopDegree, SingleDiscount and DegreeDiscount are the degree heuristics
// of Chen et al.
func TopDegree(g *Graph, k int) []Vertex      { return baseline.TopDegree(g, k) }
func SingleDiscount(g *Graph, k int) []Vertex { return baseline.SingleDiscount(g, k) }
func DegreeDiscount(g *Graph, k int, p float64) []Vertex {
	return baseline.DegreeDiscount(g, k, p)
}

// Betweenness computes exact Brandes betweenness centrality.
func Betweenness(g *Graph, workers int) []float64 { return centrality.Betweenness(g, workers) }

// TopCentral returns the k highest-scoring vertices of a score vector.
func TopCentral(scores []float64, k int) []Vertex { return centrality.TopK(scores, k) }

// Observability surface: engine-level metrics and structured run reports.
// See internal/metrics for the schema; cmd/imm and cmd/immdist expose it
// via -metrics-json.
type (
	// MetricsRegistry names lock-free counters, gauges and histograms;
	// pass one in Options.Metrics to instrument the sampling engine.
	MetricsRegistry = metrics.Registry
	// RunReport is the machine-readable record of one maximization run
	// (schema version metrics.SchemaVersion, the "schema" JSON field).
	RunReport = metrics.RunReport
	// RankReport is one rank's sub-report inside a distributed RunReport.
	RankReport = metrics.RankReport
	// ReportLog accumulates RunReports across a multi-run trajectory and
	// serializes them as one JSON array.
	ReportLog = metrics.ReportLog
	// GraphInfo summarizes the input graph inside a RunReport.
	GraphInfo = metrics.GraphInfo
	// VerifiedSpread records a Monte Carlo check of the reported seeds.
	VerifiedSpread = metrics.VerifiedSpread
)

// ReportSchemaVersion is the RunReport JSON schema version ("schema").
const ReportSchemaVersion = metrics.SchemaVersion

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewReportLog returns an empty report log.
func NewReportLog() *ReportLog { return metrics.NewReportLog() }

// NewPartialReport returns a report shell with the schema stamped and
// Interrupted set — what a shell's signal handler flushes when a run is
// killed mid-flight, so -metrics-json still leaves an artifact. Callers
// fill in whatever configuration and accumulated counters they have.
func NewPartialReport(algorithm string) *RunReport {
	rep := metrics.NewRunReport(algorithm, trace.Times{})
	rep.Interrupted = true
	return rep
}

// AllPhases lists the Algorithm 1 phases in presentation order.
func AllPhases() []Phase { return trace.AllPhases() }

// GraphInfoFor summarizes a graph's stats for embedding in a RunReport.
func GraphInfoFor(g *Graph) *GraphInfo { return metrics.GraphInfoFor(g.ComputeStats()) }

// Report converts a shared-memory Result into its RunReport; pass the
// same Options the run used.
func Report(res *Result, opt Options) *RunReport { return res.Report(opt) }

// ReportDistributed assembles the RunReport of a distributed run. It is a
// collective over c: every rank calls it with its own result; rank 0
// receives the merged report with one RankReport per rank, other ranks
// receive (nil, nil).
func ReportDistributed(c Comm, opt DistOptions, res *DistResult) (*RunReport, error) {
	return dist.Report(c, opt, res)
}

// ReportPartitioned converts a graph-partitioned run's result into its
// RunReport (no gather; rank 0's report is the one to persist).
func ReportPartitioned(opt PartOptions, res *PartResult) *RunReport {
	return dist.ReportPartitioned(opt, res)
}

// Serving surface: the resident sketch-serving subsystem behind
// cmd/immserve. See internal/server for the architecture.
type (
	// ServeConfig configures a seed-serving server (graph, sketch sizing,
	// admission-control limits, optional preloaded snapshot).
	ServeConfig = server.Config
	// SeedServer is the long-running service: mount Handler, or Start a
	// listener, and Shutdown to drain.
	SeedServer = server.Server
	// Sketch is an immutable query-ready RRR sample store (byte-coded
	// samples + inverted incidence index) serving any k <= its KMax.
	Sketch = server.Sketch
	// SketchKey identifies a sketch configuration: graph digest plus the
	// sampling parameters theta was sized for.
	SketchKey = server.SketchKey
	// SnapshotMeta is the identifying header of a persisted sketch.
	SnapshotMeta = rrr.SnapshotMeta
)

// Serve validates cfg and returns a ready SeedServer (no listener yet);
// call Start or mount Handler.
func Serve(cfg ServeConfig) (*SeedServer, error) { return server.New(cfg) }

// BuildSketch samples a query-ready sketch for key over g — the full IMM
// estimation + sampling pipeline at K = key.KMax, transcoded into the
// byte-coded store selected by store and indexed. schedule picks the
// sampling-loop schedule and kernel the sampling kernel (neither the
// sketch content nor the query seeds depend on them or on store); reg may
// be nil.
func BuildSketch(g *Graph, key SketchKey, workers int, schedule Schedule, kernel Kernel, store StoreKind, reg *MetricsRegistry) (*Sketch, error) {
	return server.BuildSketch(g, key, workers, schedule, kernel, store, reg)
}

// SaveSnapshot persists a sketch at path in the versioned, checksummed
// snapshot format (atomic rename).
func SaveSnapshot(path string, s *Sketch) error { return s.Save(path) }

// LoadSnapshot reads a sketch snapshot and validates it against g (the
// stored graph digest must match), transcoding it into the store kind the
// caller wants to serve if the snapshot was written with the other one.
// The warm-start path of cmd/immserve.
func LoadSnapshot(path string, g *Graph, workers int, store StoreKind) (*Sketch, error) {
	return server.LoadSketch(path, g, workers, store, 0)
}

// Query-diversity surface (DESIGN.md §17): four selection shapes over one
// resident sketch — plain top-k, budgeted (cost-aware lazy greedy under a
// total budget), targeted (coverage restricted to an audience's samples),
// and competitive (a rival's seeds excluded and pre-purged) — plus the
// exposed CountAll spread estimator.
type (
	// SketchQuery is one query shape: K plus optional Costs/Budget,
	// Audience and Blocked (all empty = plain top-k). See imm.Query.
	SketchQuery = imm.Query
	// SketchQueryResult carries the seeds, per-seed gains, covered and
	// eligible sample counts, and spent budget.
	SketchQueryResult = imm.QueryResult
)

// QuerySketch runs q over a resident sketch with workers threads. A plain
// q reproduces the classic top-k selection byte-identically; see
// SketchQuery for the budgeted/targeted/blocked shapes.
func QuerySketch(s *Sketch, q SketchQuery, workers int) (*SketchQueryResult, error) {
	return s.QueryEx(q, workers)
}

// EstimateSpread exposes the RIS coverage estimator over a resident
// sketch: covered counts the samples the seed set covers, eligible the
// samples passing the audience filter (all of them when audience is
// empty), and estimate is n * covered / theta — the standard RIS
// influence estimate, restricted to expected audience members influenced
// when an audience is given.
func EstimateSpread(s *Sketch, seeds, audience []Vertex) (estimate float64, covered, eligible int64, err error) {
	covered, eligible, err = s.Spread(seeds, audience)
	if err != nil {
		return 0, 0, 0, err
	}
	if c := s.Col.Count(); c > 0 {
		estimate = float64(covered) / float64(c) * float64(s.Col.NumVertices())
	}
	return estimate, covered, eligible, nil
}

// Dynamic-graph surface: edge mutations over an immutable CSR and
// incremental RRR sketch maintenance (DESIGN.md §15). A dynamic server
// (ServeConfig.Dynamic) exposes these over POST /v1/graph/delta.
type (
	// DeltaOp is one edge mutation: insert Src->Dst with weight W, or
	// delete Src->Dst.
	DeltaOp = graph.DeltaOp
	// DeltaOpKind discriminates insert from delete.
	DeltaOpKind = graph.DeltaOpKind
	// Delta is one ordered, atomically applied batch of edge mutations.
	Delta = graph.Delta
	// DeltaError is the typed rejection of an invalid batch (surfaced as
	// HTTP 400 by the delta endpoint; the sketch is left untouched).
	DeltaError = graph.DeltaError
	// GraphOverlay stages one Delta over an immutable base graph;
	// Compact materializes the mutated CSR.
	GraphOverlay = graph.Overlay
	// DynamicSketch is a resident RRR sketch that tracks a mutating
	// graph, repairing exactly the affected samples per batch.
	DynamicSketch = imm.DynamicSketch
	// DeltaStats accumulates maintenance telemetry across batches.
	DeltaStats = imm.DeltaStats
	// DeltaBatchResult reports one applied batch (epoch, repairs).
	DeltaBatchResult = imm.BatchResult
	// WeightPolicy tells maintenance how edge weights are re-derived
	// after a mutation batch.
	WeightPolicy = imm.WeightPolicy
)

// Delta op kinds and weight policies.
const (
	DeltaInsert     = graph.DeltaInsert
	DeltaDelete     = graph.DeltaDelete
	WeightsExplicit = imm.WeightsExplicit
	WeightsWC       = imm.WeightsWC
)

// NewGraphOverlay returns an empty overlay over base; Apply one Delta,
// then Compact into the mutated graph (base is never modified).
func NewGraphOverlay(base *Graph) *GraphOverlay { return graph.NewOverlay(base) }

// NewDynamicSketch builds the initial dynamic sketch over g with a full
// IMM run (opt.RNG must be the default PerSample mode) and returns it with
// the build's Result.
func NewDynamicSketch(g *Graph, opt Options, policy WeightPolicy) (*DynamicSketch, *Result, error) {
	return imm.NewDynamicSketch(g, opt, policy)
}

// ParseWeightPolicy parses "explicit" or "wc" (case-insensitive).
func ParseWeightPolicy(s string) (WeightPolicy, error) { return imm.ParseWeightPolicy(s) }

// StartPprofServer serves net/http/pprof endpoints on addr (e.g.
// "localhost:6060") until process exit; it returns the bound server whose
// Addr field carries the resolved address.
func StartPprofServer(addr string) (*http.Server, error) { return metrics.StartPprofServer(addr) }

// StartCPUProfile begins a CPU profile written to path; call the returned
// stop function before exit.
func StartCPUProfile(path string) (func() error, error) { return metrics.StartCPUProfile(path) }

// WriteHeapProfile writes a heap profile to path after a GC.
func WriteHeapProfile(path string) error { return metrics.WriteHeapProfile(path) }

// Cluster surface: a shard fleet behind a router (DESIGN.md §16). Each
// immserve replica owns one per-rank slice of the theta samples
// (ServeConfig.ClusterShard) and exposes the four-op shard API; a router
// (cmd/immrouter) fans seed selection out across the fleet, running the
// sample-partitioned distributed greedy protocol over HTTP, and degrades
// to the surviving shards when a replica dies.
type (
	// ClusterShard is one replica's slice of the fleet's samples plus the
	// session state the shard API serves.
	ClusterShard = cluster.Shard
	// ClusterShardInfo is a shard's identity: its coordinates in the fleet
	// and the sampling configuration it was built at.
	ClusterShardInfo = cluster.ShardInfo
	// BuildShardsOptions configures a deterministic fleet build.
	BuildShardsOptions = cluster.BuildOptions
	// ShardConn is the router's transport to one shard (HTTP or Comm).
	ShardConn = cluster.Conn
	// SeedRouter runs the distributed greedy loop over a shard fleet.
	SeedRouter = cluster.Router
	// RouterSelectResult is one routed selection: seeds plus degradation
	// and per-shard provenance.
	RouterSelectResult = cluster.SelectResult
	// RouterQuery is the routed query shape (the cluster face of
	// SketchQuery); run it with SeedRouter.SelectQuery.
	RouterQuery = cluster.RouterQuery
	// RouterSpreadResult is one routed spread estimate
	// (SeedRouter.Spread).
	RouterSpreadResult = cluster.SpreadResult
	// RouterServer is the HTTP front for a SeedRouter (POST /v1/seeds with
	// optional NDJSON streaming, /healthz, /v1/metrics).
	RouterServer = cluster.RouterServer
	// RouterServerConfig sets the router's admission-control limits.
	RouterServerConfig = cluster.RouterServerConfig
)

// ErrNoShards reports a routed query with every shard failed.
var ErrNoShards = cluster.ErrNoShards

// BuildShards samples one fleet deterministically: the union of the
// returned shards' samples is byte-identical to the single-process sample
// set at the same configuration, for any opt.Shards.
func BuildShards(g *Graph, opt BuildShardsOptions) ([]*ClusterShard, error) {
	return cluster.BuildShards(g, opt)
}

// SaveShardSnapshot persists one shard (identity header + standard sketch
// snapshot) at path with an atomic rename.
func SaveShardSnapshot(path string, sh *ClusterShard) error {
	return cluster.SaveShardSnapshotFile(path, sh)
}

// LoadShardSnapshot restores a shard from a snapshot written by
// SaveShardSnapshot. maxBytes bounds decode allocation (0 = default cap);
// p is the index-rebuild parallelism.
func LoadShardSnapshot(path string, maxBytes int64, p int) (*ClusterShard, error) {
	return cluster.LoadShardSnapshotFile(path, maxBytes, p)
}

// FetchShardSnapshot bootstraps a shard from a running peer replica's
// GET /v1/snapshot. base is the peer's base URL; client may be nil.
func FetchShardSnapshot(base string, client *http.Client, maxBytes int64, p int) (*ClusterShard, error) {
	return cluster.FetchShardSnapshot(base, client, maxBytes, p)
}

// NewShardHTTPConn dials one shard replica over HTTP. timeout is the
// per-operation net timeout that bounds failure detection.
func NewShardHTTPConn(base string, slot int, timeout time.Duration) ShardConn {
	return cluster.NewHTTPConn(base, slot, timeout)
}

// NewSeedRouter probes every shard, validates the fleet's identity
// (digest, sampling configuration, epoch), and returns a router ready to
// Select. At least one shard must answer; unreachable shards start failed
// and are re-probed on later queries. reg may be nil.
func NewSeedRouter(conns []ShardConn, reg *MetricsRegistry) (*SeedRouter, error) {
	return cluster.NewRouter(conns, reg)
}

// ServeRouter wraps a router in its HTTP front (no listener yet; call
// Start or mount Handler).
func ServeRouter(rt *SeedRouter, cfg RouterServerConfig) *RouterServer {
	return cluster.NewRouterServer(rt, cfg)
}
