// Package baseline implements the classic influence-maximization
// algorithms the literature (and the paper's related-work section) compares
// against: the greedy hill-climbing of Kempe et al. with a Monte Carlo
// spread oracle, the CELF lazy-greedy of Leskovec et al., and the degree /
// single-discount / degree-discount heuristics of Chen et al.
package baseline

import (
	"container/heap"
	"fmt"
	"sort"

	"influmax/internal/diffuse"
	"influmax/internal/graph"
)

// Greedy is the hill-climbing algorithm of Kempe et al.: k rounds, each
// evaluating the marginal Monte Carlo gain of every remaining vertex. The
// approximation guarantee is 1-1/e (up to Monte Carlo error), but the cost
// is O(k * n * trials) cascades — the scalability wall the RIS line of
// work removes. trials Monte Carlo cascades are used per evaluation.
func Greedy(g *graph.Graph, model diffuse.Model, k, trials, workers int, seed uint64) ([]graph.Vertex, []float64, error) {
	n := g.NumVertices()
	if err := checkArgs(n, k, trials); err != nil {
		return nil, nil, err
	}
	seeds := make([]graph.Vertex, 0, k)
	gains := make([]float64, 0, k)
	chosen := make([]bool, n)
	prevSpread := 0.0
	for len(seeds) < k {
		bestGain, bestV := -1.0, -1
		for v := 0; v < n; v++ {
			if chosen[v] {
				continue
			}
			cand := append(seeds, graph.Vertex(v))
			spread, _ := diffuse.EstimateSpreadCRN(g, model, cand, trials, workers, seed)
			if gain := spread - prevSpread; gain > bestGain {
				bestGain, bestV = gain, v
			}
		}
		seeds = append(seeds, graph.Vertex(bestV))
		gains = append(gains, bestGain)
		chosen[bestV] = true
		prevSpread += bestGain
	}
	return seeds, gains, nil
}

// celfEntry is a lazily evaluated marginal gain.
type celfEntry struct {
	v     graph.Vertex
	gain  float64
	round int // seed-set size the gain was computed against
}

type celfHeap []celfEntry

func (h celfHeap) Len() int      { return len(h) }
func (h celfHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h celfHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].v < h[j].v
}
func (h *celfHeap) Push(x any) { *h = append(*h, x.(celfEntry)) }
func (h *celfHeap) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// CELF is the Cost-Effective Lazy Forward optimization of the greedy
// algorithm: marginal gains are kept in a max-heap and only re-evaluated
// when stale, exploiting submodularity (a vertex's marginal gain can only
// shrink as the seed set grows). Exact same output as Greedy up to Monte
// Carlo noise, typically with far fewer oracle calls.
func CELF(g *graph.Graph, model diffuse.Model, k, trials, workers int, seed uint64) ([]graph.Vertex, []float64, error) {
	n := g.NumVertices()
	if err := checkArgs(n, k, trials); err != nil {
		return nil, nil, err
	}
	h := make(celfHeap, 0, n)
	for v := 0; v < n; v++ {
		spread, _ := diffuse.EstimateSpreadCRN(g, model, []graph.Vertex{graph.Vertex(v)}, trials, workers, seed)
		h = append(h, celfEntry{v: graph.Vertex(v), gain: spread, round: 0})
	}
	heap.Init(&h)
	seeds := make([]graph.Vertex, 0, k)
	gains := make([]float64, 0, k)
	prevSpread := 0.0
	for len(seeds) < k && h.Len() > 0 {
		top := heap.Pop(&h).(celfEntry)
		if top.round == len(seeds) {
			seeds = append(seeds, top.v)
			gains = append(gains, top.gain)
			prevSpread += top.gain
			continue
		}
		cand := append(seeds, top.v)
		spread, _ := diffuse.EstimateSpreadCRN(g, model, cand, trials, workers, seed)
		top.gain = spread - prevSpread
		top.round = len(seeds)
		heap.Push(&h, top)
	}
	return seeds, gains, nil
}

// TopDegree returns the k vertices of largest out-degree (ties toward
// smaller id) — the simplest centrality heuristic of Section 5.
func TopDegree(g *graph.Graph, k int) []graph.Vertex {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		da, db := g.OutDegree(graph.Vertex(idx[a])), g.OutDegree(graph.Vertex(idx[b]))
		if da != db {
			return da > db
		}
		return idx[a] < idx[b]
	})
	out := make([]graph.Vertex, k)
	for i := 0; i < k; i++ {
		out[i] = graph.Vertex(idx[i])
	}
	return out
}

// SingleDiscount is the degree heuristic with a one-unit discount: each
// time a seed is chosen, the effective degree of its neighbors drops by
// one (Chen et al. 2009).
func SingleDiscount(g *graph.Graph, k int) []graph.Vertex {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(graph.Vertex(v))
	}
	chosen := make([]bool, n)
	seeds := make([]graph.Vertex, 0, k)
	for len(seeds) < k {
		best, arg := -1, -1
		for v := 0; v < n; v++ {
			if !chosen[v] && deg[v] > best {
				best, arg = deg[v], v
			}
		}
		seeds = append(seeds, graph.Vertex(arg))
		chosen[arg] = true
		dsts, _ := g.OutNeighbors(graph.Vertex(arg))
		for _, u := range dsts {
			if !chosen[u] {
				deg[u]--
			}
		}
	}
	return seeds
}

// DegreeDiscount is the degree-discount heuristic of Chen et al. (2009),
// derived for the IC model with a uniform activation probability p:
// dd(v) = d(v) - 2 t(v) - (d(v) - t(v)) t(v) p, where t(v) is the number
// of v's neighbors already chosen as seeds.
func DegreeDiscount(g *graph.Graph, k int, p float64) []graph.Vertex {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	deg := make([]float64, n)
	t := make([]float64, n)
	dd := make([]float64, n)
	for v := 0; v < n; v++ {
		deg[v] = float64(g.OutDegree(graph.Vertex(v)))
		dd[v] = deg[v]
	}
	chosen := make([]bool, n)
	seeds := make([]graph.Vertex, 0, k)
	for len(seeds) < k {
		best, arg := -1.0, -1
		for v := 0; v < n; v++ {
			if !chosen[v] && dd[v] > best {
				best, arg = dd[v], v
			}
		}
		seeds = append(seeds, graph.Vertex(arg))
		chosen[arg] = true
		dsts, _ := g.OutNeighbors(graph.Vertex(arg))
		for _, u := range dsts {
			if chosen[u] {
				continue
			}
			t[u]++
			dd[u] = deg[u] - 2*t[u] - (deg[u]-t[u])*t[u]*p
		}
	}
	return seeds
}

func checkArgs(n, k, trials int) error {
	if k < 1 || k > n {
		return fmt.Errorf("baseline: k = %d out of [1, %d]", k, n)
	}
	if trials < 1 {
		return fmt.Errorf("baseline: trials = %d, want >= 1", trials)
	}
	return nil
}
