package baseline

import (
	"slices"
	"testing"

	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/rng"
)

// star builds a hub-and-spoke graph: vertex 0 points to 1..n-1.
func star(n int, w float32) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.Add(0, graph.Vertex(v), w)
	}
	return b.Build()
}

func randomGraph(seed uint64, n, m int) *graph.Graph {
	r := rng.New(rng.NewLCG(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			b.Add(graph.Vertex(u), graph.Vertex(v), r.Float32())
		}
	}
	return b.Build()
}

func TestGreedyPicksHubFirst(t *testing.T) {
	g := star(20, 1.0)
	seeds, gains, err := Greedy(g, diffuse.IC, 2, 50, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if seeds[0] != 0 {
		t.Fatalf("greedy first pick = %d, want hub 0", seeds[0])
	}
	if gains[0] != 20 {
		t.Fatalf("hub gain = %v, want 20", gains[0])
	}
	if gains[1] > gains[0] {
		t.Fatal("gains not non-increasing")
	}
}

func TestGreedySeedsDistinct(t *testing.T) {
	g := randomGraph(3, 25, 120)
	seeds, _, err := Greedy(g, diffuse.IC, 5, 30, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]graph.Vertex(nil), seeds...)
	slices.Sort(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			t.Fatal("duplicate seed from greedy")
		}
	}
}

func TestCELFMatchesGreedy(t *testing.T) {
	// With a deterministic oracle (identical trials/seed), CELF must
	// reproduce greedy's selections exactly: lazy evaluation is a pure
	// optimization under submodularity.
	g := randomGraph(4, 20, 80)
	gs, _, err := Greedy(g, diffuse.IC, 4, 200, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	cs, _, err := CELF(g, diffuse.IC, 4, 200, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(gs, cs) {
		t.Fatalf("CELF %v != greedy %v", cs, gs)
	}
}

func TestCELFLTModel(t *testing.T) {
	g := randomGraph(5, 20, 100)
	g.NormalizeLT()
	seeds, gains, err := CELF(g, diffuse.LT, 3, 100, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 || len(gains) != 3 {
		t.Fatalf("CELF returned %d seeds", len(seeds))
	}
	for i := 1; i < len(gains); i++ {
		if gains[i] > gains[i-1]+1e-9 {
			t.Fatalf("CELF gains not non-increasing: %v", gains)
		}
	}
}

func TestTopDegree(t *testing.T) {
	g := star(10, 0.5)
	seeds := TopDegree(g, 3)
	if seeds[0] != 0 {
		t.Fatalf("top degree = %d, want 0", seeds[0])
	}
	// Remaining vertices all have degree 0; ties break toward smaller id.
	if seeds[1] != 1 || seeds[2] != 2 {
		t.Fatalf("tie-breaking wrong: %v", seeds)
	}
}

func TestTopDegreeKExceedsN(t *testing.T) {
	g := star(4, 1)
	if got := TopDegree(g, 100); len(got) != 4 {
		t.Fatalf("k>n returned %d seeds", len(got))
	}
}

func TestSingleDiscount(t *testing.T) {
	// Two hubs share all their neighbors; after picking one hub, the other
	// hub's discounted degree drops, so a fresh independent hub wins.
	b := graph.NewBuilder(12)
	for v := 2; v < 8; v++ {
		b.Add(0, graph.Vertex(v), 1) // hub 0 -> {2..7}
		b.Add(1, graph.Vertex(v), 1) // hub 1 -> {2..7}: same 6 neighbors
	}
	// hub 8 -> {9, 10, 11}, disjoint.
	for v := 9; v < 12; v++ {
		b.Add(8, graph.Vertex(v), 1)
	}
	g := b.Build()
	seeds := SingleDiscount(g, 2)
	if seeds[0] != 0 {
		t.Fatalf("first pick = %d, want 0", seeds[0])
	}
	// Plain degree would pick hub 1 (degree 6 > 3); single discount does
	// NOT discount hub 1 here (it discounts neighbors of 0, and 1 is not a
	// neighbor of 0), so this checks the discount is applied to the right
	// vertices: hub 1 keeps degree 6 and wins.
	if seeds[1] != 1 {
		t.Fatalf("second pick = %d, want 1", seeds[1])
	}
	// Now make the hubs point at each other's heads too.
	b2 := graph.NewBuilder(12)
	for v := 2; v < 8; v++ {
		b2.Add(0, graph.Vertex(v), 1)
		b2.Add(1, graph.Vertex(v), 1)
	}
	b2.Add(0, 1, 1) // 1 is now a neighbor of 0
	for v := 9; v < 12; v++ {
		b2.Add(8, graph.Vertex(v), 1)
	}
	g2 := b2.Build()
	seeds2 := SingleDiscount(g2, 2)
	if seeds2[0] != 0 {
		t.Fatalf("first pick = %d, want 0", seeds2[0])
	}
	// Hub 1 is discounted by one (6 -> 5) which still beats hub 8 (3);
	// this documents that a single unit of discount is mild.
	if seeds2[1] != 1 {
		t.Fatalf("second pick = %d, want 1", seeds2[1])
	}
}

func TestDegreeDiscountPrefersSpacedSeeds(t *testing.T) {
	// Clique-ish cluster vs an independent hub: with high p, degree
	// discount should avoid stacking seeds inside the cluster.
	b := graph.NewBuilder(20)
	// Cluster: 0..5 fully interconnected (out-degree 5 each).
	for u := 0; u < 6; u++ {
		for v := 0; v < 6; v++ {
			if u != v {
				b.Add(graph.Vertex(u), graph.Vertex(v), 1)
			}
		}
	}
	// Independent hub 10 -> 11..14 (out-degree 4).
	for v := 11; v < 15; v++ {
		b.Add(10, graph.Vertex(v), 1)
	}
	g := b.Build()
	seeds := DegreeDiscount(g, 2, 0.9)
	if seeds[0] >= 6 {
		t.Fatalf("first pick %d not in the cluster", seeds[0])
	}
	if seeds[1] != 10 {
		t.Fatalf("second pick = %d, want the independent hub 10", seeds[1])
	}
}

func TestArgumentValidation(t *testing.T) {
	g := star(5, 1)
	if _, _, err := Greedy(g, diffuse.IC, 0, 10, 1, 1); err == nil {
		t.Error("Greedy accepted k=0")
	}
	if _, _, err := Greedy(g, diffuse.IC, 9, 10, 1, 1); err == nil {
		t.Error("Greedy accepted k>n")
	}
	if _, _, err := CELF(g, diffuse.IC, 2, 0, 1, 1); err == nil {
		t.Error("CELF accepted trials=0")
	}
}

func TestCELFPlusPlusMatchesGreedy(t *testing.T) {
	g := randomGraph(14, 20, 80)
	gs, _, err := Greedy(g, diffuse.IC, 4, 200, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	cs, gains, evals, err := CELFPlusPlus(g, diffuse.IC, 4, 200, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(gs, cs) {
		t.Fatalf("CELF++ %v != greedy %v", cs, gs)
	}
	if len(gains) != 4 || evals <= 0 {
		t.Fatalf("CELF++ bookkeeping: gains=%v evals=%d", gains, evals)
	}
	for i := 1; i < len(gains); i++ {
		if gains[i] > gains[i-1]+1e-9 {
			t.Fatalf("CELF++ gains not non-increasing: %v", gains)
		}
	}
}

func TestCELFPlusPlusLT(t *testing.T) {
	g := randomGraph(15, 20, 100)
	g.NormalizeLT()
	seeds, _, _, err := CELFPlusPlus(g, diffuse.LT, 3, 100, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	cs, _, err := CELF(g, diffuse.LT, 3, 100, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(seeds, cs) {
		t.Fatalf("CELF++ %v != CELF %v under LT", seeds, cs)
	}
}

func TestCELFPlusPlusValidation(t *testing.T) {
	g := star(5, 1)
	if _, _, _, err := CELFPlusPlus(g, diffuse.IC, 0, 10, 1, 1); err == nil {
		t.Fatal("CELF++ accepted k=0")
	}
}
