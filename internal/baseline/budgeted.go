package baseline

import (
	"container/heap"
	"fmt"

	"influmax/internal/graph"
)

// Oracle-generic references for the sketch-space query modes (DESIGN.md
// §17): an exhaustive greedy and a CELF-style lazy greedy over an
// arbitrary spread oracle, with and without per-vertex costs. The
// differential suite instantiates the oracle with exact RRR coverage
// (pinning the sketch loops byte-for-byte) or Monte Carlo estimates; both
// references share one tie-break discipline with the sketch loops:
// gain-per-cost descending, exact gain descending, vertex id ascending.

// SpreadOracle evaluates the (estimated) spread of a seed set. Callers may
// mutate the slice between calls; the oracle must not retain it.
type SpreadOracle func(seeds []graph.Vertex) float64

// GreedyOracle is exhaustive greedy hill-climbing over an arbitrary
// oracle: k rounds, each evaluating the marginal gain of every remaining
// vertex (ties: lower vertex id). banned vertices are never candidates —
// the competitive/blocked reference passes the rival's seeds here and
// folds their coverage into the oracle.
func GreedyOracle(n, k int, banned []graph.Vertex, oracle SpreadOracle) ([]graph.Vertex, []float64) {
	chosen := make([]bool, n)
	for _, b := range banned {
		chosen[b] = true
	}
	seeds := make([]graph.Vertex, 0, k)
	gains := make([]float64, 0, k)
	prev := 0.0
	cand := make([]graph.Vertex, 0, k+1)
	for len(seeds) < k {
		bestGain, bestV := 0.0, -1
		for v := 0; v < n; v++ {
			if chosen[v] {
				continue
			}
			cand = append(cand[:0], seeds...)
			cand = append(cand, graph.Vertex(v))
			if gain := oracle(cand) - prev; bestV < 0 || gain > bestGain {
				bestGain, bestV = gain, v
			}
		}
		if bestV < 0 {
			break
		}
		seeds = append(seeds, graph.Vertex(bestV))
		gains = append(gains, bestGain)
		chosen[bestV] = true
		prev += bestGain
	}
	return seeds, gains
}

// budgetedBetter is the shared cost-benefit order: ratio desc, gain desc,
// vertex asc — identical to the sketch loop's argmax, so an exact oracle
// makes the references byte-comparable to it.
func budgetedBetter(r1, g1 float64, v1 int, r2, g2 float64, v2 int) bool {
	if r1 != r2 {
		return r1 > r2
	}
	if g1 != g2 {
		return g1 > g2
	}
	return v1 < v2
}

func checkBudget(n int, costs []float64, budget float64, k int) error {
	if k < 1 || k > n {
		return fmt.Errorf("baseline: k = %d out of [1, %d]", k, n)
	}
	if budget <= 0 {
		return fmt.Errorf("baseline: budget = %v, want > 0", budget)
	}
	if len(costs) != n {
		return fmt.Errorf("baseline: %d costs for %d vertices", len(costs), n)
	}
	for v, c := range costs {
		if !(c > 0) {
			return fmt.Errorf("baseline: cost of vertex %d is %v, want > 0", v, c)
		}
	}
	return nil
}

// BudgetedGreedy is the exhaustive cost-benefit greedy: every round
// re-evaluates each remaining affordable vertex and picks the best
// marginal-gain-per-cost (budgetedBetter order), charging its cost against
// the budget. Stops when k seeds are chosen or nothing affordable remains.
func BudgetedGreedy(n int, costs []float64, budget float64, k int, oracle SpreadOracle) ([]graph.Vertex, []float64, error) {
	if err := checkBudget(n, costs, budget, k); err != nil {
		return nil, nil, err
	}
	chosen := make([]bool, n)
	seeds := make([]graph.Vertex, 0, k)
	gains := make([]float64, 0, k)
	prev, spent := 0.0, 0.0
	cand := make([]graph.Vertex, 0, k+1)
	for len(seeds) < k {
		bestR, bestG, bestV := 0.0, 0.0, -1
		for v := 0; v < n; v++ {
			if chosen[v] || spent+costs[v] > budget {
				continue
			}
			cand = append(cand[:0], seeds...)
			cand = append(cand, graph.Vertex(v))
			g := oracle(cand) - prev
			r := g / costs[v]
			if bestV < 0 || budgetedBetter(r, g, v, bestR, bestG, bestV) {
				bestR, bestG, bestV = r, g, v
			}
		}
		if bestV < 0 {
			break
		}
		seeds = append(seeds, graph.Vertex(bestV))
		gains = append(gains, bestG)
		chosen[bestV] = true
		prev += bestG
		spent += costs[bestV]
	}
	return seeds, gains, nil
}

// budgetedEntry is a lazily evaluated cost-benefit candidate.
type budgetedEntry struct {
	v     graph.Vertex
	gain  float64
	ratio float64
	round int
}

type budgetedHeap []budgetedEntry

func (h budgetedHeap) Len() int      { return len(h) }
func (h budgetedHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h budgetedHeap) Less(i, j int) bool {
	return budgetedBetter(h[i].ratio, h[i].gain, int(h[i].v), h[j].ratio, h[j].gain, int(h[j].v))
}
func (h *budgetedHeap) Push(x any) { *h = append(*h, x.(budgetedEntry)) }
func (h *budgetedHeap) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// CELFBudgeted is the lazy cost-benefit greedy (Leskovec et al.'s CELF
// with per-vertex costs): stale marginal gains only overestimate under
// submodularity, so a candidate whose refreshed key stays on top is the
// exact round argmax. Unaffordable candidates are dropped permanently —
// the remaining budget never grows. Identical output to BudgetedGreedy
// for any submodular oracle (the baseline suite pins this).
func CELFBudgeted(n int, costs []float64, budget float64, k int, oracle SpreadOracle) ([]graph.Vertex, []float64, error) {
	if err := checkBudget(n, costs, budget, k); err != nil {
		return nil, nil, err
	}
	h := make(budgetedHeap, 0, n)
	for v := 0; v < n; v++ {
		if costs[v] > budget {
			continue
		}
		g := oracle([]graph.Vertex{graph.Vertex(v)})
		h = append(h, budgetedEntry{v: graph.Vertex(v), gain: g, ratio: g / costs[v], round: 0})
	}
	heap.Init(&h)
	seeds := make([]graph.Vertex, 0, k)
	gains := make([]float64, 0, k)
	prev, spent := 0.0, 0.0
	cand := make([]graph.Vertex, 0, k+1)
	for len(seeds) < k && h.Len() > 0 {
		top := heap.Pop(&h).(budgetedEntry)
		if spent+costs[top.v] > budget {
			continue // can never become affordable again
		}
		if top.round == len(seeds) {
			seeds = append(seeds, top.v)
			gains = append(gains, top.gain)
			prev += top.gain
			spent += costs[top.v]
			continue
		}
		cand = append(cand[:0], seeds...)
		cand = append(cand, top.v)
		top.gain = oracle(cand) - prev
		top.ratio = top.gain / costs[top.v]
		top.round = len(seeds)
		heap.Push(&h, top)
	}
	return seeds, gains, nil
}
