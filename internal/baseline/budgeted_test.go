package baseline

import (
	"math"
	"slices"
	"testing"

	"influmax/internal/graph"
	"influmax/internal/rng"
)

// coverageOracle builds a deterministic monotone-submodular oracle: `sets`
// random vertex subsets, oracle(S) = number of subsets S hits. This is the
// exact shape of RRR coverage, so CELF's lazy-evaluation invariant applies.
func coverageOracle(seed uint64, n, sets, maxLen int) SpreadOracle {
	r := rng.New(rng.NewLCG(seed))
	members := make([][]graph.Vertex, sets)
	for i := range members {
		l := 1 + r.Intn(maxLen)
		set := make([]graph.Vertex, l)
		for j := range set {
			set[j] = graph.Vertex(r.Intn(n))
		}
		members[i] = set
	}
	return func(seeds []graph.Vertex) float64 {
		in := make([]bool, n)
		for _, s := range seeds {
			in[s] = true
		}
		covered := 0
		for _, set := range members {
			for _, v := range set {
				if in[v] {
					covered++
					break
				}
			}
		}
		return float64(covered)
	}
}

// testCosts derives a positive integral cost vector in {1..4} from the
// vertex id — deterministic, and skewed enough that cost-benefit order
// differs from plain gain order.
func testCosts(n int) []float64 {
	costs := make([]float64, n)
	for v := range costs {
		costs[v] = float64(1 + (v*2654435761)%4)
	}
	return costs
}

// TestCELFBudgetedMatchesExhaustive pins the lazy cost-benefit greedy
// against the exhaustive one on coverage oracles: identical seeds and gains
// for a spread of budgets, including budgets tight enough to skip the
// plain-greedy winner and loose enough to reduce to top-k.
func TestCELFBudgetedMatchesExhaustive(t *testing.T) {
	for _, tc := range []struct {
		seed   uint64
		n      int
		budget float64
		k      int
	}{
		{1, 40, 3, 5},
		{2, 60, 8, 6},
		{3, 90, 20, 8},
		{4, 120, 1e9, 10}, // effectively unbudgeted
	} {
		oracle := coverageOracle(tc.seed, tc.n, 300, 6)
		costs := testCosts(tc.n)
		wantSeeds, wantGains, err := BudgetedGreedy(tc.n, costs, tc.budget, tc.k, oracle)
		if err != nil {
			t.Fatalf("seed %d: exhaustive: %v", tc.seed, err)
		}
		gotSeeds, gotGains, err := CELFBudgeted(tc.n, costs, tc.budget, tc.k, oracle)
		if err != nil {
			t.Fatalf("seed %d: celf: %v", tc.seed, err)
		}
		if !slices.Equal(gotSeeds, wantSeeds) {
			t.Fatalf("seed %d budget %v: celf seeds %v != exhaustive %v",
				tc.seed, tc.budget, gotSeeds, wantSeeds)
		}
		if !slices.Equal(gotGains, wantGains) {
			t.Fatalf("seed %d budget %v: celf gains %v != exhaustive %v",
				tc.seed, tc.budget, gotGains, wantGains)
		}
		// The budget must actually hold.
		spent := 0.0
		for _, s := range gotSeeds {
			spent += costs[s]
		}
		if spent > tc.budget {
			t.Fatalf("seed %d: spent %v exceeds budget %v", tc.seed, spent, tc.budget)
		}
	}
}

// TestBudgetedUniformCostsReduceToGreedy: with unit costs and budget >= k
// the cost-benefit order degenerates to the plain (gain, vertex) order, so
// both budgeted references must equal the unbudgeted greedy.
func TestBudgetedUniformCostsReduceToGreedy(t *testing.T) {
	const n, k = 70, 7
	oracle := coverageOracle(9, n, 250, 5)
	unit := make([]float64, n)
	for v := range unit {
		unit[v] = 1
	}
	wantSeeds, wantGains := GreedyOracle(n, k, nil, oracle)
	for _, name := range []string{"exhaustive", "celf"} {
		fn := BudgetedGreedy
		if name == "celf" {
			fn = CELFBudgeted
		}
		seeds, gains, err := fn(n, unit, float64(k), k, oracle)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !slices.Equal(seeds, wantSeeds) || !slices.Equal(gains, wantGains) {
			t.Fatalf("%s: (%v, %v) != greedy (%v, %v)", name, seeds, gains, wantSeeds, wantGains)
		}
	}
}

// TestBudgetedValidation exercises the shared argument checks.
func TestBudgetedValidation(t *testing.T) {
	oracle := func([]graph.Vertex) float64 { return 0 }
	good := []float64{1, 1, 1}
	cases := []struct {
		name   string
		n      int
		costs  []float64
		budget float64
		k      int
	}{
		{"k too small", 3, good, 1, 0},
		{"k too large", 3, good, 1, 4},
		{"zero budget", 3, good, 0, 1},
		{"negative budget", 3, good, -1, 1},
		{"costs length", 3, []float64{1, 1}, 1, 1},
		{"zero cost", 3, []float64{1, 0, 1}, 1, 1},
		{"nan cost", 3, []float64{1, math.NaN(), 1}, 1, 1},
	}
	for _, tc := range cases {
		if _, _, err := BudgetedGreedy(tc.n, tc.costs, tc.budget, tc.k, oracle); err == nil {
			t.Errorf("BudgetedGreedy %s: no error", tc.name)
		}
		if _, _, err := CELFBudgeted(tc.n, tc.costs, tc.budget, tc.k, oracle); err == nil {
			t.Errorf("CELFBudgeted %s: no error", tc.name)
		}
	}
}

// TestGreedyOracleBanned: banned vertices never appear in the output and
// the gains are marginal over the running set only (the banned set's own
// coverage is the oracle's business).
func TestGreedyOracleBanned(t *testing.T) {
	const n, k = 50, 6
	oracle := coverageOracle(11, n, 200, 5)
	banned := []graph.Vertex{3, 17, 42}
	seeds, gains := GreedyOracle(n, k, banned, oracle)
	if len(seeds) != k || len(gains) != k {
		t.Fatalf("got %d seeds / %d gains, want %d", len(seeds), len(gains), k)
	}
	for _, s := range seeds {
		if slices.Contains(banned, s) {
			t.Fatalf("banned vertex %d selected: %v", s, seeds)
		}
	}
	// Gains must telescope to the oracle value of the final set.
	sum := 0.0
	for _, g := range gains {
		sum += g
	}
	if got := oracle(seeds); got != sum {
		t.Fatalf("gains sum %v != oracle(seeds) %v", sum, got)
	}
}
