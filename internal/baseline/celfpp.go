package baseline

import (
	"container/heap"

	"influmax/internal/diffuse"
	"influmax/internal/graph"
)

// CELF++ (Goyal, Lu, Lakshmanan, WWW 2011 — reference [7] of the paper)
// improves CELF by evaluating, alongside each vertex's marginal gain
// mg1 = gain(v | S), the look-ahead gain mg2 = gain(v | S + cur_best)
// where cur_best is the best candidate seen for the current iteration.
// If cur_best is indeed chosen as the next seed, v's fresh marginal gain
// is mg2 and needs no new oracle call.

// celfPPEntry is one lazily maintained candidate.
type celfPPEntry struct {
	v        graph.Vertex
	mg1      float64      // marginal gain wrt S as of `round`
	mg2      float64      // marginal gain wrt S + prevBest
	prevBest graph.Vertex // cur_best when mg2 was computed
	hasPrev  bool
	round    int // |S| the gains were computed against
}

type celfPPHeap []celfPPEntry

func (h celfPPHeap) Len() int      { return len(h) }
func (h celfPPHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h celfPPHeap) Less(i, j int) bool {
	if h[i].mg1 != h[j].mg1 {
		return h[i].mg1 > h[j].mg1
	}
	return h[i].v < h[j].v
}
func (h *celfPPHeap) Push(x any) { *h = append(*h, x.(celfPPEntry)) }
func (h *celfPPHeap) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// CELFPlusPlus selects k seeds with the CELF++ lazy-greedy. It returns the
// seeds in selection order, their marginal gains, and the number of spread
// oracle evaluations performed (the quantity CELF++ reduces versus CELF).
// The oracle is the deterministic common-random-numbers estimator, so the
// output matches Greedy and CELF exactly.
func CELFPlusPlus(g *graph.Graph, model diffuse.Model, k, trials, workers int, seed uint64) ([]graph.Vertex, []float64, int, error) {
	n := g.NumVertices()
	if err := checkArgs(n, k, trials); err != nil {
		return nil, nil, 0, err
	}
	evals := 0
	spread := func(s []graph.Vertex) float64 {
		evals++
		m, _ := diffuse.EstimateSpreadCRN(g, model, s, trials, workers, seed)
		return m
	}

	seeds := make([]graph.Vertex, 0, k)
	gains := make([]float64, 0, k)
	prevSpread := 0.0
	var lastSeed graph.Vertex
	haveLast := false

	// Initialization: mg1 = spread({v}); mg2 wrt the running cur_best.
	h := make(celfPPHeap, 0, n)
	var curBest graph.Vertex
	curBestGain := -1.0
	curBestSpread := 0.0
	for v := 0; v < n; v++ {
		e := celfPPEntry{v: graph.Vertex(v), round: 0}
		e.mg1 = spread([]graph.Vertex{e.v})
		if curBestGain >= 0 {
			e.prevBest = curBest
			e.hasPrev = true
			// spread({curBest, v}) - spread({curBest})
			e.mg2 = spread([]graph.Vertex{curBest, e.v}) - curBestSpread
		} else {
			e.mg2 = e.mg1
		}
		if e.mg1 > curBestGain {
			curBestGain = e.mg1
			curBest = e.v
			curBestSpread = e.mg1
		}
		h = append(h, e)
	}
	heap.Init(&h)

	for len(seeds) < k && h.Len() > 0 {
		top := heap.Pop(&h).(celfPPEntry)
		if top.round == len(seeds) {
			// Fresh: select it.
			seeds = append(seeds, top.v)
			gains = append(gains, top.mg1)
			prevSpread += top.mg1
			lastSeed = top.v
			haveLast = true
			continue
		}
		if top.hasPrev && haveLast && top.prevBest == lastSeed && top.round == len(seeds)-1 {
			// The look-ahead hit: mg2 is exactly gain(v | S), no oracle
			// call needed.
			top.mg1 = top.mg2
		} else {
			cand := append(seeds, top.v)
			top.mg1 = spread(cand) - prevSpread
		}
		top.round = len(seeds)
		// Refresh the look-ahead against the best fresh candidate so far
		// (the heap top is the current cur_best estimate).
		if h.Len() > 0 && h[0].round == len(seeds) {
			cb := h[0].v
			withCB := append(seeds, cb)
			sCB := prevSpread + h[0].mg1
			top.mg2 = spread(append(withCB, top.v)) - sCB
			top.prevBest = cb
			top.hasPrev = true
		} else {
			top.hasPrev = false
		}
		heap.Push(&h, top)
	}
	return seeds, gains, evals, nil
}
