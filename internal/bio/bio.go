// Package bio reproduces the Section 5 case study: influence maximization
// on biological co-expression networks, compared against degree and
// betweenness centrality through pathway-enrichment analysis.
//
// The paper's pipeline was: multi-omic measurements -> GENIE3
// (random-forest co-expression inference) -> directed weighted network ->
// IMM / centrality top-200 -> Fisher's exact enrichment against MSIG
// pathways. Neither the patient/soil measurements nor MSIG can ship in
// this repository, so the pipeline is reproduced end to end on synthetic
// data with planted structure:
//
//   - expression matrices are generated from latent module factors (each
//     module is a co-regulated pathway; members load on the factor);
//   - network inference is Pearson-correlation-based (a stand-in for
//     GENIE3's importance scores: both recover the module topology, which
//     is all the downstream comparison consumes);
//   - the pathway database contains the planted modules (plus noise
//     members and decoy pathways), so enrichment has a ground truth.
package bio

import (
	"fmt"
	"math"
	"sort"

	"influmax/internal/graph"
	"influmax/internal/rng"
	"influmax/internal/stats"
)

// Expression is a feature-by-sample measurement matrix with planted
// module structure.
type Expression struct {
	// Values is indexed [feature][sample].
	Values [][]float64
	// ModuleOf maps each feature to its planted module, or -1 for
	// background features.
	ModuleOf []int
	// Modules is the number of planted modules.
	Modules int
}

// ExprConfig configures synthetic expression generation.
type ExprConfig struct {
	// Features is the number of measured entities (transcripts, proteins,
	// metabolites).
	Features int
	// Samples is the number of experiments.
	Samples int
	// Modules is the number of planted co-regulated modules.
	Modules int
	// ModuleSize is the number of features per module.
	ModuleSize int
	// Signal in (0, 1) is the loading of module members on their latent
	// factor; within-module correlation is Signal^2.
	Signal float64
	// Seed drives generation.
	Seed uint64
}

// SyntheticExpression generates a module-structured expression matrix:
// each module has a latent factor per sample, members observe
// Signal*factor + sqrt(1-Signal^2)*noise, background features observe
// pure noise.
func SyntheticExpression(cfg ExprConfig) *Expression {
	if cfg.Features < 1 || cfg.Samples < 2 {
		panic("bio: need Features >= 1 and Samples >= 2")
	}
	if cfg.Modules*cfg.ModuleSize > cfg.Features {
		panic("bio: modules do not fit into feature count")
	}
	if cfg.Signal <= 0 || cfg.Signal >= 1 {
		panic("bio: Signal out of (0, 1)")
	}
	r := rng.New(rng.NewLCG(cfg.Seed))
	factors := make([][]float64, cfg.Modules)
	for m := range factors {
		factors[m] = make([]float64, cfg.Samples)
		for s := range factors[m] {
			factors[m][s] = r.NormFloat64()
		}
	}
	e := &Expression{
		Values:   make([][]float64, cfg.Features),
		ModuleOf: make([]int, cfg.Features),
		Modules:  cfg.Modules,
	}
	noiseScale := math.Sqrt(1 - cfg.Signal*cfg.Signal)
	for f := 0; f < cfg.Features; f++ {
		e.ModuleOf[f] = -1
		if f < cfg.Modules*cfg.ModuleSize {
			e.ModuleOf[f] = f / cfg.ModuleSize
		}
		row := make([]float64, cfg.Samples)
		for s := range row {
			x := r.NormFloat64()
			if m := e.ModuleOf[f]; m >= 0 {
				x = cfg.Signal*factors[m][s] + noiseScale*x
			}
			row[s] = x
		}
		e.Values[f] = row
	}
	return e
}

// pearson returns the correlation of two equal-length vectors.
func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb, saa, sbb, sab float64
	for i := range a {
		sa += a[i]
		sb += b[i]
		saa += a[i] * a[i]
		sbb += b[i] * b[i]
		sab += a[i] * b[i]
	}
	cov := sab - sa*sb/n
	va := saa - sa*sa/n
	vb := sbb - sb*sb/n
	if va <= 0 || vb <= 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// InferNetwork builds a directed co-expression network: for every feature,
// the outDegree most correlated partners become outgoing edges weighted by
// |correlation| (the GENIE3 stand-in; GENIE3 likewise emits, per target,
// ranked regulator importances that are thresholded into a directed
// graph). O(Features^2 * Samples).
func InferNetwork(e *Expression, outDegree int) *graph.Graph {
	nf := len(e.Values)
	if outDegree < 1 || outDegree >= nf {
		panic("bio: outDegree out of [1, features)")
	}
	type scored struct {
		v graph.Vertex
		c float64
	}
	b := graph.NewBuilder(nf)
	cand := make([]scored, 0, nf)
	for f := 0; f < nf; f++ {
		cand = cand[:0]
		for g2 := 0; g2 < nf; g2++ {
			if g2 == f {
				continue
			}
			c := math.Abs(pearson(e.Values[f], e.Values[g2]))
			cand = append(cand, scored{graph.Vertex(g2), c})
		}
		sort.Slice(cand, func(i, j int) bool {
			if cand[i].c != cand[j].c {
				return cand[i].c > cand[j].c
			}
			return cand[i].v < cand[j].v
		})
		for i := 0; i < outDegree; i++ {
			b.Add(graph.Vertex(f), cand[i].v, float32(cand[i].c))
		}
	}
	return b.Build()
}

// InferNetworkTop builds a co-expression network by global thresholding:
// all feature pairs are ranked by |correlation| and the strongest `edges`
// pairs become edges (in both directions, as co-expression is symmetric
// evidence). Unlike InferNetwork's fixed per-feature out-degree, degree
// here varies with how strongly co-regulated a feature is — the structure
// GENIE3-plus-threshold produces, and the one the Section 5 centrality
// comparison presumes. O(Features^2 * Samples).
func InferNetworkTop(e *Expression, edges int) *graph.Graph {
	nf := len(e.Values)
	if edges < 1 {
		panic("bio: edges must be >= 1")
	}
	type pair struct {
		a, b graph.Vertex
		c    float64
	}
	all := make([]pair, 0, nf*(nf-1)/2)
	for a := 0; a < nf; a++ {
		for b := a + 1; b < nf; b++ {
			c := math.Abs(pearson(e.Values[a], e.Values[b]))
			all = append(all, pair{graph.Vertex(a), graph.Vertex(b), c})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		if all[i].a != all[j].a {
			return all[i].a < all[j].a
		}
		return all[i].b < all[j].b
	})
	if edges > len(all) {
		edges = len(all)
	}
	b := graph.NewBuilder(nf)
	for _, p := range all[:edges] {
		b.Add(p.a, p.b, float32(p.c))
		b.Add(p.b, p.a, float32(p.c))
	}
	return b.Build()
}

// Pathway is a named feature set (the MSIG stand-in).
type Pathway struct {
	Name    string
	Members []graph.Vertex
}

// SyntheticPathways builds a pathway database with ground truth: one
// pathway per planted module (its members, with a `noise` fraction
// replaced by random features) plus `decoys` pathways of the same size
// drawn uniformly at random.
func SyntheticPathways(e *Expression, decoys int, noise float64, seed uint64) []Pathway {
	r := rng.New(rng.NewLCG(seed))
	nf := len(e.Values)
	var byModule [][]graph.Vertex
	byModule = make([][]graph.Vertex, e.Modules)
	for f, m := range e.ModuleOf {
		if m >= 0 {
			byModule[m] = append(byModule[m], graph.Vertex(f))
		}
	}
	var out []Pathway
	for m, members := range byModule {
		p := Pathway{Name: fmt.Sprintf("module-%02d", m)}
		for _, f := range members {
			if r.Float64() < noise {
				p.Members = append(p.Members, graph.Vertex(r.Intn(nf)))
			} else {
				p.Members = append(p.Members, f)
			}
		}
		out = append(out, dedup(p))
	}
	size := 0
	if e.Modules > 0 {
		size = len(byModule[0])
	}
	for d := 0; d < decoys; d++ {
		p := Pathway{Name: fmt.Sprintf("decoy-%02d", d)}
		for i := 0; i < size; i++ {
			p.Members = append(p.Members, graph.Vertex(r.Intn(nf)))
		}
		out = append(out, dedup(p))
	}
	return out
}

func dedup(p Pathway) Pathway {
	seen := make(map[graph.Vertex]bool, len(p.Members))
	var out []graph.Vertex
	for _, v := range p.Members {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	p.Members = out
	return p
}

// Enrichment is one pathway's over-representation result for a selected
// feature set.
type Enrichment struct {
	Pathway string
	// Overlap is |selected ∩ pathway|.
	Overlap int
	// P is the one-sided Fisher exact p-value; AdjP its BH adjustment.
	P    float64
	AdjP float64
}

// Enrich applies Fisher's exact test to every pathway against the selected
// set over a universe of `universe` features and returns the results with
// Benjamini-Hochberg adjusted p-values, sorted by ascending AdjP.
func Enrich(selected []graph.Vertex, pathways []Pathway, universe int) []Enrichment {
	sel := make(map[graph.Vertex]bool, len(selected))
	for _, v := range selected {
		sel[v] = true
	}
	out := make([]Enrichment, len(pathways))
	ps := make([]float64, len(pathways))
	for i, p := range pathways {
		overlap := 0
		for _, v := range p.Members {
			if sel[v] {
				overlap++
			}
		}
		pv := stats.FisherExactGreater(int64(universe), int64(len(p.Members)), int64(len(sel)), int64(overlap))
		out[i] = Enrichment{Pathway: p.Name, Overlap: overlap, P: pv}
		ps[i] = pv
	}
	adj := stats.BenjaminiHochberg(ps)
	for i := range out {
		out[i].AdjP = adj[i]
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AdjP != out[j].AdjP {
			return out[i].AdjP < out[j].AdjP
		}
		return out[i].Pathway < out[j].Pathway
	})
	return out
}

// CountSignificant returns how many enrichments have AdjP < alpha — the
// quantity Section 5 reports (372 pathways for IMM vs 614 for degree vs
// 159 for betweenness on the cancer network).
func CountSignificant(res []Enrichment, alpha float64) int {
	count := 0
	for _, e := range res {
		if e.AdjP < alpha {
			count++
		}
	}
	return count
}

// TruePositives counts significant enrichments among ground-truth module
// pathways (names beginning "module-"), the specificity measure behind the
// paper's qualitative claim that IMM's top pathways are the disease-
// relevant ones.
func TruePositives(res []Enrichment, alpha float64) int {
	count := 0
	for _, e := range res {
		if e.AdjP < alpha && len(e.Pathway) >= 7 && e.Pathway[:7] == "module-" {
			count++
		}
	}
	return count
}
