package bio

import (
	"math"
	"testing"

	"influmax/internal/graph"
)

func smallConfig(seed uint64) ExprConfig {
	return ExprConfig{Features: 120, Samples: 60, Modules: 4, ModuleSize: 20, Signal: 0.8, Seed: seed}
}

func TestSyntheticExpressionShape(t *testing.T) {
	e := SyntheticExpression(smallConfig(1))
	if len(e.Values) != 120 || len(e.Values[0]) != 60 {
		t.Fatalf("matrix shape wrong")
	}
	counts := make(map[int]int)
	for _, m := range e.ModuleOf {
		counts[m]++
	}
	for m := 0; m < 4; m++ {
		if counts[m] != 20 {
			t.Fatalf("module %d has %d members, want 20", m, counts[m])
		}
	}
	if counts[-1] != 40 {
		t.Fatalf("background = %d, want 40", counts[-1])
	}
}

func TestWithinModuleCorrelationHigher(t *testing.T) {
	e := SyntheticExpression(smallConfig(2))
	// Average |corr| within module 0 must far exceed cross-module.
	within, cross := 0.0, 0.0
	nw, nc := 0, 0
	for a := 0; a < 20; a++ {
		for b := a + 1; b < 20; b++ {
			within += math.Abs(pearson(e.Values[a], e.Values[b]))
			nw++
		}
		for b := 20; b < 40; b++ {
			cross += math.Abs(pearson(e.Values[a], e.Values[b]))
			nc++
		}
	}
	within /= float64(nw)
	cross /= float64(nc)
	if within < 2*cross {
		t.Fatalf("planted structure weak: within %.3f vs cross %.3f", within, cross)
	}
	// Expected within-module correlation is Signal^2 = 0.64.
	if within < 0.4 || within > 0.9 {
		t.Fatalf("within-module corr %.3f implausible for signal 0.8", within)
	}
}

func TestSyntheticExpressionPanics(t *testing.T) {
	for name, cfg := range map[string]ExprConfig{
		"no samples":  {Features: 10, Samples: 1, Signal: 0.5},
		"overfull":    {Features: 10, Samples: 5, Modules: 3, ModuleSize: 4, Signal: 0.5},
		"bad signal":  {Features: 10, Samples: 5, Signal: 1.0},
		"no features": {Features: 0, Samples: 5, Signal: 0.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			SyntheticExpression(cfg)
		}()
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if c := pearson(a, []float64{2, 4, 6, 8}); math.Abs(c-1) > 1e-12 {
		t.Fatalf("perfect corr = %v", c)
	}
	if c := pearson(a, []float64{4, 3, 2, 1}); math.Abs(c+1) > 1e-12 {
		t.Fatalf("perfect anticorr = %v", c)
	}
	if c := pearson(a, []float64{5, 5, 5, 5}); c != 0 {
		t.Fatalf("constant vector corr = %v", c)
	}
}

func TestInferNetworkRecoversModules(t *testing.T) {
	e := SyntheticExpression(smallConfig(3))
	g := InferNetwork(e, 5)
	if g.NumVertices() != 120 || g.NumEdges() != 120*5 {
		t.Fatalf("network size = (%d, %d)", g.NumVertices(), g.NumEdges())
	}
	// Most edges out of module members should stay within their module.
	inModule, total := 0, 0
	for f := 0; f < 80; f++ {
		dsts, ws := g.OutNeighbors(graph.Vertex(f))
		for i, v := range dsts {
			total++
			if e.ModuleOf[f] == e.ModuleOf[v] {
				inModule++
			}
			if ws[i] < 0 || ws[i] > 1 {
				t.Fatalf("edge weight %v out of [0,1]", ws[i])
			}
		}
	}
	if frac := float64(inModule) / float64(total); frac < 0.7 {
		t.Fatalf("only %.0f%% of module-member edges stay in module", 100*frac)
	}
}

func TestInferNetworkPanics(t *testing.T) {
	e := SyntheticExpression(smallConfig(4))
	defer func() {
		if recover() == nil {
			t.Fatal("bad outDegree accepted")
		}
	}()
	InferNetwork(e, 0)
}

func TestSyntheticPathways(t *testing.T) {
	e := SyntheticExpression(smallConfig(5))
	ps := SyntheticPathways(e, 6, 0.1, 7)
	if len(ps) != 4+6 {
		t.Fatalf("pathway count = %d, want 10", len(ps))
	}
	if ps[0].Name != "module-00" || ps[4].Name != "decoy-00" {
		t.Fatalf("pathway names wrong: %s %s", ps[0].Name, ps[4].Name)
	}
	for _, p := range ps {
		seen := make(map[graph.Vertex]bool)
		for _, v := range p.Members {
			if seen[v] {
				t.Fatalf("%s has duplicate member %d", p.Name, v)
			}
			seen[v] = true
			if int(v) >= 120 {
				t.Fatalf("%s member %d out of universe", p.Name, v)
			}
		}
	}
}

func TestEnrichFindsPlantedModule(t *testing.T) {
	e := SyntheticExpression(smallConfig(8))
	ps := SyntheticPathways(e, 8, 0.0, 9)
	// Select exactly module 2's features: its pathway must dominate.
	var selected []graph.Vertex
	for f, m := range e.ModuleOf {
		if m == 2 {
			selected = append(selected, graph.Vertex(f))
		}
	}
	res := Enrich(selected, ps, 120)
	if res[0].Pathway != "module-02" {
		t.Fatalf("top enrichment = %s, want module-02", res[0].Pathway)
	}
	if res[0].AdjP > 1e-6 {
		t.Fatalf("perfect overlap p-value too large: %v", res[0].AdjP)
	}
	if got := CountSignificant(res, 0.05); got < 1 {
		t.Fatalf("significant count = %d", got)
	}
	if tp := TruePositives(res, 0.05); tp < 1 {
		t.Fatalf("true positives = %d", tp)
	}
}

func TestEnrichRandomSelectionNotSignificant(t *testing.T) {
	e := SyntheticExpression(smallConfig(10))
	ps := SyntheticPathways(e, 8, 0.0, 11)
	// A selection of background-only features should enrich nothing
	// strongly (decoys may fluctuate, but BH at 1e-3 should hold).
	var selected []graph.Vertex
	for f, m := range e.ModuleOf {
		if m == -1 {
			selected = append(selected, graph.Vertex(f))
			if len(selected) == 20 {
				break
			}
		}
	}
	res := Enrich(selected, ps, 120)
	if got := CountSignificant(res, 1e-6); got != 0 {
		t.Fatalf("background selection produced %d ultra-significant pathways", got)
	}
}

func TestEnrichEmptySelection(t *testing.T) {
	e := SyntheticExpression(smallConfig(12))
	ps := SyntheticPathways(e, 2, 0, 13)
	res := Enrich(nil, ps, 120)
	for _, r := range res {
		if r.Overlap != 0 || r.P < 0.999 {
			t.Fatalf("empty selection enriched %s: %+v", r.Pathway, r)
		}
	}
}
