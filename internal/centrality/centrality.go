// Package centrality implements the topological node-importance measures
// that Section 5 compares influence maximization against on biological
// networks: degree centrality and betweenness centrality (Brandes'
// algorithm, exact and pivot-sampled), with top-k ranking helpers.
package centrality

import (
	"sort"

	"influmax/internal/graph"
	"influmax/internal/par"
	"influmax/internal/rng"
)

// Degree returns each vertex's out-degree as a score vector.
func Degree(g *graph.Graph) []float64 {
	n := g.NumVertices()
	scores := make([]float64, n)
	for v := 0; v < n; v++ {
		scores[v] = float64(g.OutDegree(graph.Vertex(v)))
	}
	return scores
}

// TotalDegree returns each vertex's in+out degree.
func TotalDegree(g *graph.Graph) []float64 {
	n := g.NumVertices()
	scores := make([]float64, n)
	for v := 0; v < n; v++ {
		scores[v] = float64(g.OutDegree(graph.Vertex(v)) + g.InDegree(graph.Vertex(v)))
	}
	return scores
}

// Betweenness returns the exact betweenness centrality of every vertex on
// the directed, unweighted skeleton of g (edge probabilities ignored),
// using Brandes' algorithm: one BFS plus dependency accumulation per
// source, parallelized over sources. O(n m) time.
func Betweenness(g *graph.Graph, workers int) []float64 {
	n := g.NumVertices()
	sources := make([]graph.Vertex, n)
	for i := range sources {
		sources[i] = graph.Vertex(i)
	}
	return brandes(g, sources, workers, 1)
}

// BetweennessSampled estimates betweenness from `pivots` random sources
// (Brandes-Pich pivot sampling), scaling dependencies by n/pivots. Far
// cheaper than the exact computation on large graphs; used for the
// large biology networks.
func BetweennessSampled(g *graph.Graph, pivots int, workers int, seed uint64) []float64 {
	n := g.NumVertices()
	if pivots >= n {
		return Betweenness(g, workers)
	}
	r := rng.New(rng.NewLCG(seed))
	perm := r.Perm(n)
	sources := make([]graph.Vertex, pivots)
	for i := 0; i < pivots; i++ {
		sources[i] = graph.Vertex(perm[i])
	}
	return brandes(g, sources, workers, float64(n)/float64(pivots))
}

// brandes accumulates source dependencies over the given sources, each
// scaled by `scale`, across workers goroutines.
func brandes(g *graph.Graph, sources []graph.Vertex, workers int, scale float64) []float64 {
	n := g.NumVertices()
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	partial := make([][]float64, workers)
	par.ForEach(len(sources), workers, func(rank, lo, hi int) {
		bc := make([]float64, n)
		st := newBrandesState(n)
		for i := lo; i < hi; i++ {
			st.accumulate(g, sources[i], bc)
		}
		partial[rank] = bc
	})
	out := make([]float64, n)
	for _, bc := range partial {
		if bc == nil {
			continue
		}
		for v, x := range bc {
			out[v] += x * scale
		}
	}
	return out
}

// brandesState is per-worker scratch for one-source dependency
// accumulation.
type brandesState struct {
	sigma []float64 // shortest-path counts
	dist  []int32
	delta []float64
	preds [][]graph.Vertex
	stack []graph.Vertex
	queue []graph.Vertex
}

func newBrandesState(n int) *brandesState {
	return &brandesState{
		sigma: make([]float64, n),
		dist:  make([]int32, n),
		delta: make([]float64, n),
		preds: make([][]graph.Vertex, n),
		stack: make([]graph.Vertex, 0, n),
		queue: make([]graph.Vertex, 0, n),
	}
}

// accumulate adds source s's pair dependencies into bc.
func (st *brandesState) accumulate(g *graph.Graph, s graph.Vertex, bc []float64) {
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		st.sigma[v] = 0
		st.dist[v] = -1
		st.delta[v] = 0
		st.preds[v] = st.preds[v][:0]
	}
	st.stack = st.stack[:0]
	st.queue = st.queue[:0]
	st.sigma[s] = 1
	st.dist[s] = 0
	st.queue = append(st.queue, s)
	for head := 0; head < len(st.queue); head++ {
		v := st.queue[head]
		st.stack = append(st.stack, v)
		dsts, _ := g.OutNeighbors(v)
		for _, w := range dsts {
			if st.dist[w] < 0 {
				st.dist[w] = st.dist[v] + 1
				st.queue = append(st.queue, w)
			}
			if st.dist[w] == st.dist[v]+1 {
				st.sigma[w] += st.sigma[v]
				st.preds[w] = append(st.preds[w], v)
			}
		}
	}
	for i := len(st.stack) - 1; i >= 0; i-- {
		w := st.stack[i]
		for _, v := range st.preds[w] {
			st.delta[v] += st.sigma[v] / st.sigma[w] * (1 + st.delta[w])
		}
		if w != s {
			bc[w] += st.delta[w]
		}
	}
}

// TopK returns the k highest-scoring vertices (ties toward smaller id), in
// descending score order.
func TopK(scores []float64, k int) []graph.Vertex {
	n := len(scores)
	if k > n {
		k = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	out := make([]graph.Vertex, k)
	for i := 0; i < k; i++ {
		out[i] = graph.Vertex(idx[i])
	}
	return out
}
