package centrality

import (
	"math"
	"slices"
	"testing"

	"influmax/internal/graph"
	"influmax/internal/rng"
)

func path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.Add(graph.Vertex(i), graph.Vertex(i+1), 1)
	}
	return b.Build()
}

func TestDegreeScores(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1, W: 1}, {Src: 0, Dst: 2, W: 1}, {Src: 3, Dst: 0, W: 1}})
	d := Degree(g)
	want := []float64{2, 0, 0, 1}
	if !slices.Equal(d, want) {
		t.Fatalf("Degree = %v, want %v", d, want)
	}
	td := TotalDegree(g)
	wantT := []float64{3, 1, 1, 1}
	if !slices.Equal(td, wantT) {
		t.Fatalf("TotalDegree = %v, want %v", td, wantT)
	}
}

func TestBetweennessDirectedPath(t *testing.T) {
	// Path 0->1->2->3->4: betweenness of interior vertex i counts the
	// source-target pairs whose unique shortest path passes through it:
	// vertex 1: pairs (0,2),(0,3),(0,4) = 3; vertex 2: (0,3),(0,4),(1,3),
	// (1,4) = 4; vertex 3: (0,4),(1,4),(2,4) = 3.
	g := path(5)
	bc := Betweenness(g, 2)
	want := []float64{0, 3, 4, 3, 0}
	for v := range want {
		if math.Abs(bc[v]-want[v]) > 1e-9 {
			t.Fatalf("betweenness = %v, want %v", bc, want)
		}
	}
}

func TestBetweennessSplitPaths(t *testing.T) {
	// Diamond 0->1->3, 0->2->3: vertices 1 and 2 each carry half of the
	// single (0,3) pair.
	g := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1, W: 1}, {Src: 0, Dst: 2, W: 1},
		{Src: 1, Dst: 3, W: 1}, {Src: 2, Dst: 3, W: 1},
	})
	bc := Betweenness(g, 1)
	if math.Abs(bc[1]-0.5) > 1e-9 || math.Abs(bc[2]-0.5) > 1e-9 {
		t.Fatalf("diamond betweenness = %v, want 0.5 at 1 and 2", bc)
	}
	if bc[0] != 0 || bc[3] != 0 {
		t.Fatalf("endpoints should have zero betweenness: %v", bc)
	}
}

func TestBetweennessWorkerInvariance(t *testing.T) {
	r := rng.New(rng.NewLCG(5))
	b := graph.NewBuilder(40)
	for i := 0; i < 200; i++ {
		u, v := r.Intn(40), r.Intn(40)
		if u != v {
			b.Add(graph.Vertex(u), graph.Vertex(v), 1)
		}
	}
	g := b.Build()
	b1 := Betweenness(g, 1)
	b4 := Betweenness(g, 4)
	for v := range b1 {
		if math.Abs(b1[v]-b4[v]) > 1e-9 {
			t.Fatalf("worker count changed betweenness at %d: %v vs %v", v, b1[v], b4[v])
		}
	}
}

func TestBetweennessSampledApproximates(t *testing.T) {
	r := rng.New(rng.NewLCG(9))
	b := graph.NewBuilder(60)
	for i := 0; i < 500; i++ {
		u, v := r.Intn(60), r.Intn(60)
		if u != v {
			b.Add(graph.Vertex(u), graph.Vertex(v), 1)
		}
	}
	g := b.Build()
	exact := Betweenness(g, 2)
	approx := BetweennessSampled(g, 30, 2, 3)
	// The two rankings should agree on a majority of the top 10.
	exTop := TopK(exact, 10)
	apTop := TopK(approx, 10)
	common := 0
	for _, v := range exTop {
		if slices.Contains(apTop, v) {
			common++
		}
	}
	if common < 5 {
		t.Fatalf("sampled betweenness top-10 shares only %d with exact", common)
	}
}

func TestBetweennessSampledFullPivotsIsExact(t *testing.T) {
	g := path(6)
	exact := Betweenness(g, 1)
	full := BetweennessSampled(g, 100, 1, 1) // pivots >= n -> exact
	for v := range exact {
		if math.Abs(exact[v]-full[v]) > 1e-9 {
			t.Fatal("full-pivot sampling differs from exact")
		}
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{1, 9, 3, 9, 0}
	top := TopK(scores, 3)
	want := []graph.Vertex{1, 3, 2} // tie between 1 and 3 -> smaller first
	if !slices.Equal(top, want) {
		t.Fatalf("TopK = %v, want %v", top, want)
	}
	if got := TopK(scores, 100); len(got) != 5 {
		t.Fatalf("TopK with k>n returned %d", len(got))
	}
}

func TestBetweennessEmptyAndSingleton(t *testing.T) {
	g := graph.NewBuilder(1).Build()
	bc := Betweenness(g, 2)
	if len(bc) != 1 || bc[0] != 0 {
		t.Fatalf("singleton betweenness = %v", bc)
	}
}
