package centrality

import "influmax/internal/graph"

// KShell computes the k-shell (k-core) decomposition of the undirected
// view of g: iteratively peel vertices of total degree <= k for k = 0, 1,
// 2, ...; a vertex's shell index is the k at which it is peeled. Wu et
// al. (CollaborateCom 2016) — reference [18] of the paper — select
// influence-maximization seeds from the innermost shells in parallel; the
// shell index is also a classic spreading-power indicator (Kitsak et al.,
// Nature Physics 2010).
//
// Runs in O(n + m) with the bucket-peeling algorithm of Batagelj-Zaversnik.
func KShell(g *graph.Graph) []int {
	n := g.NumVertices()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(graph.Vertex(v)) + g.InDegree(graph.Vertex(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort vertices by degree.
	bin := make([]int, maxDeg+2) // bin[d] = start index of degree-d block
	for _, d := range deg {
		bin[d+1]++
	}
	for d := 1; d <= maxDeg+1; d++ {
		bin[d] += bin[d-1]
	}
	pos := make([]int, n)  // position of vertex in vert
	vert := make([]int, n) // vertices sorted by current degree
	next := append([]int(nil), bin[:maxDeg+1]...)
	for v := 0; v < n; v++ {
		pos[v] = next[deg[v]]
		vert[pos[v]] = v
		next[deg[v]]++
	}
	shell := make([]int, n)
	cur := append([]int(nil), deg...)
	for i := 0; i < n; i++ {
		v := vert[i]
		shell[v] = cur[v]
		// Peel v: decrement each neighbor of higher current degree,
		// moving it one bucket down (swap with the first element of its
		// block).
		relax := func(u int) {
			if cur[u] <= cur[v] {
				return
			}
			du := cur[u]
			pu := pos[u]
			pw := bin[du]
			w := vert[pw]
			if u != w {
				pos[u], pos[w] = pw, pu
				vert[pu], vert[pw] = w, u
			}
			bin[du]++
			cur[u]--
		}
		dsts, _ := g.OutNeighbors(graph.Vertex(v))
		for _, u := range dsts {
			relax(int(u))
		}
		srcs, _ := g.InNeighbors(graph.Vertex(v))
		for _, u := range srcs {
			relax(int(u))
		}
	}
	return shell
}

// KShellSeeds returns k seeds drawn from the innermost shells outward,
// breaking ties within a shell toward higher total degree then smaller id
// — the seed heuristic of reference [18].
func KShellSeeds(g *graph.Graph, k int) []graph.Vertex {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	shell := KShell(g)
	scores := make([]float64, n)
	for v := 0; v < n; v++ {
		td := g.OutDegree(graph.Vertex(v)) + g.InDegree(graph.Vertex(v))
		// Shell dominates; total degree breaks ties within a shell.
		scores[v] = float64(shell[v])*float64(2*int(g.NumEdges())+1) + float64(td)
	}
	return TopK(scores, k)
}
