package centrality

import (
	"slices"
	"testing"

	"influmax/internal/graph"
	"influmax/internal/rng"
)

// refKShell is a trivially correct O(n^2 m) peeling used as the oracle.
func refKShell(g *graph.Graph) []int {
	n := g.NumVertices()
	deg := make([]int, n)
	removed := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(graph.Vertex(v)) + g.InDegree(graph.Vertex(v))
	}
	shell := make([]int, n)
	for k := 0; ; k++ {
		done := true
		for {
			peeled := false
			for v := 0; v < n; v++ {
				if !removed[v] && deg[v] <= k {
					removed[v] = true
					shell[v] = k
					peeled = true
					dec := func(u int) {
						if !removed[u] {
							deg[u]--
						}
					}
					dsts, _ := g.OutNeighbors(graph.Vertex(v))
					for _, u := range dsts {
						dec(int(u))
					}
					srcs, _ := g.InNeighbors(graph.Vertex(v))
					for _, u := range srcs {
						dec(int(u))
					}
				}
			}
			if !peeled {
				break
			}
		}
		for v := 0; v < n; v++ {
			if !removed[v] {
				done = false
			}
		}
		if done {
			return shell
		}
	}
}

func TestKShellClique(t *testing.T) {
	// A directed 5-clique: every vertex has total degree 8 -> shell 4
	// under undirected-view peeling (each undirected pair contributes 2).
	b := graph.NewBuilder(5)
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			if u != v {
				b.Add(graph.Vertex(u), graph.Vertex(v), 1)
			}
		}
	}
	g := b.Build()
	shell := KShell(g)
	for v, s := range shell {
		if s != shell[0] {
			t.Fatalf("clique shells differ at %d: %v", v, shell)
		}
	}
	if shell[0] < 4 {
		t.Fatalf("clique shell = %d, want >= 4", shell[0])
	}
}

func TestKShellCoreWithPendants(t *testing.T) {
	// Triangle core (0,1,2) with pendant vertices hanging off it: the
	// pendants must land in a strictly lower shell than the core.
	b := graph.NewBuilder(6)
	b.Add(0, 1, 1)
	b.Add(1, 2, 1)
	b.Add(2, 0, 1)
	b.Add(3, 0, 1) // pendants
	b.Add(4, 1, 1)
	b.Add(5, 2, 1)
	g := b.Build()
	shell := KShell(g)
	for _, pendant := range []int{3, 4, 5} {
		if shell[pendant] >= shell[0] {
			t.Fatalf("pendant %d shell %d not below core shell %d", pendant, shell[pendant], shell[0])
		}
	}
}

func TestKShellMatchesReference(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		r := rng.New(rng.NewLCG(seed))
		n := 30 + r.Intn(30)
		b := graph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				b.Add(graph.Vertex(u), graph.Vertex(v), 1)
			}
		}
		g := b.Build()
		got := KShell(g)
		want := refKShell(g)
		if !slices.Equal(got, want) {
			t.Fatalf("seed %d: KShell = %v, want %v", seed, got, want)
		}
	}
}

func TestKShellIsolatedVertices(t *testing.T) {
	g := graph.NewBuilder(4).Build()
	shell := KShell(g)
	for v, s := range shell {
		if s != 0 {
			t.Fatalf("isolated vertex %d shell = %d", v, s)
		}
	}
}

func TestKShellSeedsPreferCore(t *testing.T) {
	// Dense core + sparse periphery: the first seeds must come from the
	// core.
	b := graph.NewBuilder(20)
	for u := 0; u < 6; u++ {
		for v := 0; v < 6; v++ {
			if u != v {
				b.Add(graph.Vertex(u), graph.Vertex(v), 1)
			}
		}
	}
	for v := 6; v < 20; v++ {
		b.Add(graph.Vertex(v), graph.Vertex(v%6), 1)
	}
	g := b.Build()
	seeds := KShellSeeds(g, 4)
	for _, s := range seeds {
		if s >= 6 {
			t.Fatalf("k-shell seed %d outside the core (seeds %v)", s, seeds)
		}
	}
	if got := KShellSeeds(g, 100); len(got) != 20 {
		t.Fatalf("k > n returned %d seeds", len(got))
	}
}
