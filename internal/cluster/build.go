package cluster

import (
	"fmt"
	"sync"

	"influmax/internal/diffuse"
	"influmax/internal/dist"
	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/mpi"
	"influmax/internal/rrr"
)

// BuildOptions configures a shard-partition build.
type BuildOptions struct {
	// K is the largest seed-set size the fleet will serve (kMax).
	K int
	// Epsilon is the accuracy parameter theta is sized for.
	Epsilon float64
	// Model is the diffusion model.
	Model diffuse.Model
	// Seed feeds the per-sample pseudorandom streams.
	Seed uint64
	// Shards is the partition width — how many shards to cut theta into.
	Shards int
	// Workers is the total thread budget across the build (<= 0: all
	// cores), split evenly over the shard ranks.
	Workers int
	// Schedule and Kernel tune the intra-rank sampling loop; the shard
	// content does not depend on either (builds run in PerSample mode).
	Schedule imm.Schedule
	Kernel   imm.Kernel
}

// BuildShards cuts the theta samples for (g, opt) into opt.Shards
// query-ready shards by running the internal/dist pipeline over an
// in-process communicator with KeepStore set: shard i is exactly rank i's
// slice, so a fleet serving these shards answers queries byte-identically
// to a single process holding all theta samples. Deterministic: the same
// (graph, options) always yields the same shards, so a replica that
// rebuilds its shard locally agrees with peers that snapshot-transferred
// theirs.
func BuildShards(g *graph.Graph, opt BuildOptions) ([]*Shard, error) {
	if opt.Shards < 1 {
		return nil, fmt.Errorf("cluster: shard count %d < 1", opt.Shards)
	}
	threads := opt.Workers / opt.Shards
	if threads < 1 {
		threads = 1
	}
	dopt := dist.Options{
		K: opt.K, Epsilon: opt.Epsilon, Model: opt.Model, Seed: opt.Seed,
		ThreadsPerRank: threads, RNG: imm.PerSample,
		Schedule: opt.Schedule, Kernel: opt.Kernel,
		Store: imm.StoreCoded, KeepStore: true,
	}
	comms := mpi.NewLocalCluster(opt.Shards)
	results := make([]*dist.Result, opt.Shards)
	errs := make([]error, opt.Shards)
	var wg sync.WaitGroup
	for r := 0; r < opt.Shards; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer comms[rank].Close()
			results[rank], errs[rank] = dist.Run(comms[rank], g, dopt)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: building shard %d: %w", r, err)
		}
	}
	digest := g.Digest()
	shards := make([]*Shard, opt.Shards)
	for r, res := range results {
		meta := rrr.SnapshotMeta{
			GraphDigest: digest,
			Model:       uint8(opt.Model),
			Epsilon:     opt.Epsilon,
			KMax:        opt.K,
			Seed:        opt.Seed,
			Theta:       res.Theta,
		}
		sh, err := NewShard(meta, res.Coded, res.Index, r, opt.Shards, 0, threads)
		if err != nil {
			return nil, err
		}
		// Re-derive the per-sample roots from the global sample ids: in
		// PerSample mode a sample's root is its stream's first draw, so
		// the column is a pure function of (seed, id, n) — it powers the
		// audience-filtered ops and rides in shard snapshots (header v2).
		sh.Roots = imm.RootsAt(opt.Seed, res.SampleIDs, g.NumVertices(), threads)
		shards[r] = sh
	}
	return shards, nil
}
