package cluster_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"influmax/internal/cluster"
	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/mpi"
	"influmax/internal/rng"
)

func testGraph(seed uint64, n, m int) *graph.Graph {
	r := rng.New(rng.NewLCG(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			b.Add(graph.Vertex(u), graph.Vertex(v), 0)
		}
	}
	g := b.Build()
	g.AssignUniform(seed ^ 0xbeef)
	return g
}

// refSeeds runs the single-process pipeline at the fleet configuration
// and selects k seeds — the byte-identity oracle for every fleet test.
func refSeeds(t *testing.T, g *graph.Graph, opt cluster.BuildOptions, k int) ([]graph.Vertex, int64, int64) {
	t.Helper()
	res, coded, idx, err := imm.RunSketch(g, imm.Options{
		K: opt.K, Epsilon: opt.Epsilon, Model: opt.Model, Seed: opt.Seed, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	seeds, covered := imm.SelectSeedsSketch(coded, idx, k, 2)
	return seeds, covered, res.Theta
}

// commFleet wires shards to a router over an in-process communicator:
// rank 0 is the router, rank i+1 serves shard i. plans[i], when active,
// decorates shard i's comm with fault injection.
type commFleet struct {
	comms []mpi.Comm
	conns []cluster.Conn
	done  sync.WaitGroup
}

func startCommFleet(t *testing.T, shards []*cluster.Shard, plans []mpi.FaultPlan, timeout time.Duration) *commFleet {
	t.Helper()
	f := &commFleet{comms: mpi.NewLocalCluster(len(shards) + 1)}
	for i, sh := range shards {
		c := f.comms[i+1]
		if plans != nil && plans[i].Active() {
			c = mpi.WithFaults(c, plans[i])
		}
		f.done.Add(1)
		go func(c mpi.Comm, sh *cluster.Shard) {
			defer f.done.Done()
			cluster.ServeComm(c, 0, sh)
		}(c, sh)
		f.conns = append(f.conns, cluster.NewCommConn(f.comms[0], i+1, i, timeout))
	}
	t.Cleanup(func() {
		for _, c := range f.comms {
			c.Close()
		}
		f.done.Wait()
	})
	return f
}

func TestRouterMatchesSingleProcess(t *testing.T) {
	g := testGraph(1, 100, 700)
	opt := cluster.BuildOptions{K: 8, Epsilon: 0.5, Model: diffuse.IC, Seed: 17, Workers: 2}
	const k = 6
	wantSeeds, wantCovered, wantTheta := refSeeds(t, g, opt, k)

	for _, s := range []int{1, 2, 3, 5} {
		opt.Shards = s
		shards, err := cluster.BuildShards(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		var total int
		for _, sh := range shards {
			total += sh.Col.Count()
		}
		if int64(total) != wantTheta {
			t.Fatalf("s=%d: shards hold %d samples, single process holds theta = %d", s, total, wantTheta)
		}
		fleet := startCommFleet(t, shards, nil, 2*time.Second)
		rt, err := cluster.NewRouter(fleet.conns, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Select(k, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(res.Seeds, wantSeeds) {
			t.Fatalf("s=%d: router seeds %v != single-process %v", s, res.Seeds, wantSeeds)
		}
		if res.Degraded || len(res.FailedShards) != 0 {
			t.Fatalf("s=%d: clean fleet reported degraded (%v)", s, res.FailedShards)
		}
		if res.Theta != wantTheta {
			t.Fatalf("s=%d: theta %d != %d", s, res.Theta, wantTheta)
		}
		if res.TotalSamples != wantTheta {
			t.Fatalf("s=%d: totalSamples %d != theta %d", s, res.TotalSamples, wantTheta)
		}
		wantCov := float64(wantCovered) / float64(wantTheta)
		if res.CoverageFraction != wantCov {
			t.Fatalf("s=%d: coverage %v != %v", s, res.CoverageFraction, wantCov)
		}
		// Shards keep no per-query state once the router ends the session.
		for i, sh := range shards {
			if n := sh.Sessions(); n != 0 {
				t.Fatalf("s=%d: shard %d holds %d sessions after the query", s, i, n)
			}
		}
	}
}

// TestRouterFailover pins the degraded path deterministically: a fleet of
// 4 shards under a WithFaults kill plan, shard 2 dying after a fixed
// number of responses. The seeds selected before the kill must be
// byte-identical to the single-process run; the query must complete
// degraded (listing the failed shard) within the net timeout rather than
// hang; and the whole scenario must reproduce exactly.
func TestRouterFailover(t *testing.T) {
	g := testGraph(3, 90, 650)
	opt := cluster.BuildOptions{K: 8, Epsilon: 0.5, Model: diffuse.IC, Seed: 11, Workers: 2, Shards: 4}
	const k = 6
	const netTimeout = 500 * time.Millisecond
	wantSeeds, _, _ := refSeeds(t, g, opt, k)

	run := func(t *testing.T) *cluster.SelectResult {
		t.Helper()
		shards, err := cluster.BuildShards(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		// Shard 2 (rank 3) dies after 3 responses: info, session counts,
		// purge of seed 1. The purge for seed 2 is the send that crashes,
		// so seeds[0:2] are committed pre-kill.
		plans := make([]mpi.FaultPlan, 4)
		plans[2] = mpi.FaultPlan{Seed: 1, Crashes: []mpi.RankCrash{{Rank: 3, AfterSends: 3}}}
		fleet := startCommFleet(t, shards, plans, netTimeout)
		rt, err := cluster.NewRouter(fleet.conns, nil)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		res, err := rt.Select(k, nil)
		if err != nil {
			t.Fatalf("degraded query must still answer: %v", err)
		}
		// The router pays at most a couple of timeouts (the failed purge
		// plus session-end cleanup); anything near the test's 10s budget
		// would mean a hang.
		if elapsed := time.Since(start); elapsed > 10*netTimeout {
			t.Fatalf("query took %v with a %v net timeout", elapsed, netTimeout)
		}
		return res
	}

	res := run(t)
	if !res.Degraded || !slices.Equal(res.FailedShards, []int{2}) {
		t.Fatalf("want degraded with failedShards [2], got degraded=%v failed=%v", res.Degraded, res.FailedShards)
	}
	if len(res.Seeds) != k {
		t.Fatalf("degraded query returned %d seeds, want %d", len(res.Seeds), k)
	}
	if !slices.Equal(res.Seeds[:2], wantSeeds[:2]) {
		t.Fatalf("pre-kill seeds %v != single-process prefix %v", res.Seeds[:2], wantSeeds[:2])
	}
	// Deterministic: the same kill plan reproduces the same degraded
	// result, seeds and all.
	res2 := run(t)
	if !slices.Equal(res2.Seeds, res.Seeds) || res2.CoverageFraction != res.CoverageFraction {
		t.Fatalf("failover not deterministic: %v (%v) vs %v (%v)",
			res.Seeds, res.CoverageFraction, res2.Seeds, res2.CoverageFraction)
	}
}

// TestRouterFailoverAtSessionStart kills a shard before it can answer the
// first session: the query proceeds on the survivors from round one.
func TestRouterFailoverAtSessionStart(t *testing.T) {
	g := testGraph(5, 80, 500)
	opt := cluster.BuildOptions{K: 5, Epsilon: 0.5, Model: diffuse.IC, Seed: 23, Workers: 2, Shards: 3}
	shards, err := cluster.BuildShards(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	plans := make([]mpi.FaultPlan, 3)
	plans[1] = mpi.FaultPlan{Seed: 2, Crashes: []mpi.RankCrash{{Rank: 2, AfterSends: 1}}} // dies after info
	fleet := startCommFleet(t, shards, plans, 300*time.Millisecond)
	rt, err := cluster.NewRouter(fleet.conns, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Select(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || !slices.Equal(res.FailedShards, []int{1}) {
		t.Fatalf("want failedShards [1], got %v", res.FailedShards)
	}
	if len(res.Seeds) != 4 {
		t.Fatalf("got %d seeds, want 4", len(res.Seeds))
	}
	var wantTotal int64
	wantTotal += int64(shards[0].Col.Count() + shards[2].Col.Count())
	if res.TotalSamples != wantTotal {
		t.Fatalf("totalSamples %d, want survivors' %d", res.TotalSamples, wantTotal)
	}
}

func TestShardSnapshotRoundTrip(t *testing.T) {
	g := testGraph(7, 60, 400)
	opt := cluster.BuildOptions{K: 5, Epsilon: 0.5, Model: diffuse.IC, Seed: 3, Workers: 2, Shards: 2}
	shards, err := cluster.BuildShards(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shard1.snap")
	if err := cluster.SaveShardSnapshotFile(path, shards[1]); err != nil {
		t.Fatal(err)
	}
	got, err := cluster.LoadShardSnapshotFile(path, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Info() != shards[1].Info() {
		t.Fatalf("loaded shard info %+v != %+v", got.Info(), shards[1].Info())
	}
	// The reloaded shard must serve the same counts and purges.
	a, b := shards[1].Start(1), got.Start(1)
	if !slices.Equal(a, b) {
		t.Fatal("reloaded shard serves different counts")
	}
	seed := graph.Vertex(0)
	for v := range a {
		if a[v] > a[seed] {
			seed = graph.Vertex(v)
		}
	}
	pa, errA := shards[1].Purge(1, seed)
	pb, errB := got.Purge(1, seed)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if !slices.Equal(pa, pb) {
		t.Fatal("reloaded shard serves different purge decrements")
	}

	// Corruption anywhere in the payload must be rejected, not served.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if _, err := cluster.ReadShardSnapshot(bytes.NewReader(raw), 0, 2); err == nil {
		t.Fatal("corrupted shard snapshot loaded without error")
	}
	if _, err := cluster.ReadShardSnapshot(strings.NewReader("not a snapshot"), 0, 2); err == nil {
		t.Fatal("garbage accepted as shard snapshot")
	}
}

func TestFetchShardSnapshot(t *testing.T) {
	g := testGraph(9, 50, 300)
	opt := cluster.BuildOptions{K: 4, Epsilon: 0.5, Model: diffuse.IC, Seed: 5, Workers: 2, Shards: 2}
	shards, err := cluster.BuildShards(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/snapshot", shards[0].ServeSnapshot)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	got, err := cluster.FetchShardSnapshot(srv.URL, srv.Client(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Info() != shards[0].Info() {
		t.Fatalf("fetched shard info %+v != %+v", got.Info(), shards[0].Info())
	}
}

// TestRouterServerStreamAndSummary exercises the HTTP front over a comm
// fleet: the non-streaming response carries the full result, and the
// NDJSON streaming mode delivers one line per seed before the summary.
func TestRouterServerStreamAndSummary(t *testing.T) {
	g := testGraph(11, 70, 450)
	opt := cluster.BuildOptions{K: 5, Epsilon: 0.5, Model: diffuse.IC, Seed: 29, Workers: 2, Shards: 2}
	wantSeeds, _, _ := refSeeds(t, g, opt, 5)
	shards, err := cluster.BuildShards(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	fleet := startCommFleet(t, shards, nil, 2*time.Second)
	rt, err := cluster.NewRouter(fleet.conns, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs := cluster.NewRouterServer(rt, cluster.RouterServerConfig{})
	srv := httptest.NewServer(rs.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/seeds", "application/json", strings.NewReader(`{"k":5}`))
	if err != nil {
		t.Fatal(err)
	}
	var plain struct {
		Seeds        []graph.Vertex `json:"seeds"`
		Degraded     bool           `json:"degraded"`
		FailedShards []int          `json:"failedShards"`
		Shards       int            `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&plain); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !slices.Equal(plain.Seeds, wantSeeds) || plain.Shards != 2 || plain.Degraded {
		t.Fatalf("plain response: status %d, %+v (want seeds %v)", resp.StatusCode, plain, wantSeeds)
	}

	resp, err = http.Post(srv.URL+"/v1/seeds", "application/json", strings.NewReader(`{"k":5,"stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var streamed []graph.Vertex
	var sawSummary bool
	for sc.Scan() {
		line := sc.Bytes()
		var seedLine struct {
			Seed  *graph.Vertex  `json:"seed"`
			Seeds []graph.Vertex `json:"seeds"`
		}
		if err := json.Unmarshal(line, &seedLine); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch {
		case seedLine.Seed != nil:
			streamed = append(streamed, *seedLine.Seed)
		case seedLine.Seeds != nil:
			sawSummary = true
			if !slices.Equal(seedLine.Seeds, wantSeeds) {
				t.Fatalf("summary seeds %v != %v", seedLine.Seeds, wantSeeds)
			}
		}
	}
	if !slices.Equal(streamed, wantSeeds) {
		t.Fatalf("streamed seeds %v != %v", streamed, wantSeeds)
	}
	if !sawSummary {
		t.Fatal("stream ended without a summary line")
	}

	// healthz and metrics answer.
	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, hr)
	}
	hr.Body.Close()
	mr, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil || mr.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %v %v", err, mr)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(mr.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	if snap.Counters["router/queries"] != 2 {
		t.Fatalf("router/queries = %d, want 2", snap.Counters["router/queries"])
	}
}
