package cluster

import (
	"errors"
	"time"

	"influmax/internal/graph"
	"influmax/internal/mpi"
)

// Message tags for the mpi.Comm transport (non-negative: the collectives
// reserve negative tags).
const (
	tagRequest  = 64
	tagResponse = 65
)

// Conn is the router's handle on one shard: the four wire operations over
// whichever transport. Implementations convert every transport-level
// failure (timeout, connection error, injected crash) into an
// *mpi.RankFailedError whose Rank is the shard's fleet slot, so the
// router's failure handling is transport-agnostic. A Conn is used by one
// request at a time; the Router serializes per-shard traffic within a
// query and gives concurrent queries distinct sessions.
type Conn interface {
	Info() (ShardInfo, error)
	Start(session uint64) ([]int64, error)
	// StartFiltered opens an audience-filtered session (targeted
	// influence): counts run over audience-rooted samples only, and the
	// eligible sample count comes back alongside.
	StartFiltered(session uint64, audience []graph.Vertex) ([]int64, int64, error)
	Purge(session uint64, v graph.Vertex) ([]DecPair, error)
	// Spread is the stateless seed-set spread estimate over the shard's
	// samples (audience optional; empty means unrestricted).
	Spread(seeds, audience []graph.Vertex) (covered, eligible int64, err error)
	End(session uint64) error
	Close() error
}

// failedErr coerces a transport error into *mpi.RankFailedError blaming
// slot (already-typed failures pass through untouched).
func failedErr(slot int, err error) error {
	if err == nil {
		return nil
	}
	var rf *mpi.RankFailedError
	if errors.As(err, &rf) {
		return err
	}
	return &mpi.RankFailedError{Rank: slot, Err: err}
}

// CommConn speaks the shard protocol over an mpi.Comm point-to-point
// channel to peer — the transport the deterministic failover tests run
// on, since the comm can be wrapped in mpi.WithFaults kill plans. timeout
// bounds each response wait; expiry surfaces the shard as failed.
type CommConn struct {
	c       mpi.Comm
	peer    int
	slot    int
	timeout time.Duration
}

// NewCommConn wraps one peer rank of c as a shard connection for fleet
// slot `slot`.
func NewCommConn(c mpi.Comm, peer, slot int, timeout time.Duration) *CommConn {
	return &CommConn{c: c, peer: peer, slot: slot, timeout: timeout}
}

func (cc *CommConn) roundTrip(req request) ([]byte, error) {
	if err := cc.c.Send(cc.peer, tagRequest, encodeRequest(req)); err != nil {
		return nil, failedErr(cc.slot, err)
	}
	var payload []byte
	var err error
	if dr, ok := cc.c.(mpi.DeadlineRecver); ok {
		payload, err = dr.RecvDeadline(cc.peer, tagResponse, cc.timeout)
	} else {
		payload, err = cc.c.Recv(cc.peer, tagResponse)
	}
	if err != nil {
		return nil, failedErr(cc.slot, err)
	}
	return payload, nil
}

func (cc *CommConn) Info() (ShardInfo, error) {
	resp, err := cc.roundTrip(request{op: opInfo})
	if err != nil {
		return ShardInfo{}, err
	}
	return decodeInfoResp(resp)
}

func (cc *CommConn) Start(session uint64) ([]int64, error) {
	resp, err := cc.roundTrip(request{op: opStart, session: session})
	if err != nil {
		return nil, err
	}
	return decodeCountsResp(resp)
}

func (cc *CommConn) StartFiltered(session uint64, audience []graph.Vertex) ([]int64, int64, error) {
	resp, err := cc.roundTrip(request{op: opStartFiltered, session: session, audience: audience})
	if err != nil {
		return nil, 0, err
	}
	return decodeFilteredCountsResp(resp)
}

func (cc *CommConn) Spread(seeds, audience []graph.Vertex) (int64, int64, error) {
	resp, err := cc.roundTrip(request{op: opSpread, seeds: seeds, audience: audience})
	if err != nil {
		return 0, 0, err
	}
	return decodeSpreadResp(resp)
}

func (cc *CommConn) Purge(session uint64, v graph.Vertex) ([]DecPair, error) {
	resp, err := cc.roundTrip(request{op: opPurge, session: session, vertex: v})
	if err != nil {
		return nil, err
	}
	return decodeDecsResp(resp)
}

func (cc *CommConn) End(session uint64) error {
	resp, err := cc.roundTrip(request{op: opEnd, session: session})
	if err != nil {
		return err
	}
	return decodeAckResp(resp)
}

func (cc *CommConn) Close() error { return nil }

// ServeComm runs sh's request loop over c: receive a request from the
// router rank, execute, reply, until the communicator dies (the returned
// error; a closed comm is the normal shutdown path). Protocol-level
// failures (bad request, unknown session) are answered in-band and do not
// stop the loop.
func ServeComm(c mpi.Comm, router int, sh *Shard) error {
	for {
		payload, err := c.Recv(router, tagRequest)
		if err != nil {
			return err
		}
		var resp []byte
		if req, derr := decodeRequest(payload); derr != nil {
			resp = encodeErrorResp(derr.Error())
		} else {
			resp = sh.handle(req)
		}
		if err := c.Send(router, tagResponse, resp); err != nil {
			return err
		}
	}
}
