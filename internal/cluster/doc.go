// Package cluster turns a fleet of immserve replicas into one logical
// seed-serving system: each replica owns a shard of the theta RRR samples
// (a per-rank slice, exactly what one rank of internal/dist would hold)
// and a thin router runs the sample-partitioned greedy protocol across
// them — rounds of merged coverage counts and purge decrements, the
// internal/dist Algorithm 4 re-hosted behind a shard API.
//
// The shard API has four operations (info, start-session, purge, end) with
// one binary wire codec spoken over two interchangeable transports: HTTP
// (HTTPConn against a shard-mode immserve, the production path) and an
// mpi.Comm (CommConn/ServeComm, which plugs straight into mpi.WithFaults
// so replica death and failover are testable deterministically). Shards
// bootstrap from a v3 snapshot wrapped in a small shard header — written
// locally, or streamed from a peer via GET /v1/snapshot.
//
// Because sampling runs in imm.PerSample mode, the union of the shards'
// samples is the single-process sample set, and the router's greedy loop
// is the same integer recurrence as imm.SelectSeedsSketch — so a fleet
// answers POST /v1/seeds byte-identically to one immserve holding the
// whole sketch. A replica that dies mid-query surfaces as a typed
// mpi.RankFailedError within the configured net timeout; the router
// restarts the round on the survivors, replays the seeds already chosen,
// and serves a degraded result naming the failed shards. DESIGN.md §16 is
// the normative spec.
package cluster
