package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"

	"influmax/internal/graph"
)

// The HTTP transport: a shard-mode immserve mounts the three shard
// routes (ServeOp, ServeInfo, ServeSnapshot) on its mux, and the router
// dials them through HTTPConn. Data-plane bodies are the binary protocol
// codec — the same bytes the mpi transport carries — while /v1/shard/info
// doubles as a human-readable JSON endpoint.

// ShardOpPath is the data-plane route: POST with a binary protocol
// request body, 200 with a binary protocol response body.
const ShardOpPath = "/v1/shard/op"

// maxOpBody bounds one shard-op request body. The session ops are a few
// bytes, but the query-diversity ops (opStartFiltered, opSpread) carry
// vertex lists — up to two audiences/seed sets of 4 bytes per vertex —
// so the bound scales to graphs of a few million vertices while still
// capping a hostile body.
const maxOpBody = 1 << 25

// ServeOp handles POST /v1/shard/op.
func (sh *Shard) ServeOp(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxOpBody))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var resp []byte
	if req, derr := decodeRequest(body); derr != nil {
		resp = encodeErrorResp(derr.Error())
	} else {
		resp = sh.handle(req)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(resp)
}

// ServeInfo handles GET /v1/shard/info with a JSON ShardInfo.
func (sh *Shard) ServeInfo(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"shardIdx":%d,"shardCount":%d,"epoch":%d,"samples":%d,"numVertices":%d,"graphDigest":"%016x","model":%d,"epsilon":%g,"kMax":%d,"seed":%d,"theta":%d}`+"\n",
		sh.ShardIdx, sh.ShardCount, sh.Epoch, sh.Col.Count(), sh.Col.NumVertices(),
		sh.Meta.GraphDigest, sh.Meta.Model, sh.Meta.Epsilon, sh.Meta.KMax, sh.Meta.Seed, sh.Meta.Theta)
}

// ServeSnapshot handles GET /v1/snapshot: it streams the shard snapshot
// (header + v3 sketch snapshot) so a peer replica can warm-start without
// resampling; net/http chunks the transfer.
func (sh *Shard) ServeSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := WriteShardSnapshot(w, sh); err != nil {
		// Headers are gone; all we can do is cut the stream so the peer's
		// CRC check fails instead of accepting a truncated shard.
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
}

// HTTPConn speaks the shard protocol to a shard-mode immserve replica at
// base ("http://host:port"). The client timeout is the net timeout: a
// replica that dies mid-query surfaces as *mpi.RankFailedError within it.
type HTTPConn struct {
	base   string
	slot   int
	client *http.Client
}

// NewHTTPConn dials the replica at base as fleet slot `slot`; timeout <= 0
// defaults to 30s.
func NewHTTPConn(base string, slot int, timeout time.Duration) *HTTPConn {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &HTTPConn{base: base, slot: slot, client: &http.Client{Timeout: timeout}}
}

func (hc *HTTPConn) roundTrip(req request) ([]byte, error) {
	resp, err := hc.client.Post(hc.base+ShardOpPath, "application/octet-stream",
		bytes.NewReader(encodeRequest(req)))
	if err != nil {
		return nil, failedErr(hc.slot, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, failedErr(hc.slot, fmt.Errorf("shard answered %s: %s", resp.Status, bytes.TrimSpace(body)))
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, failedErr(hc.slot, err)
	}
	return body, nil
}

func (hc *HTTPConn) Info() (ShardInfo, error) {
	resp, err := hc.roundTrip(request{op: opInfo})
	if err != nil {
		return ShardInfo{}, err
	}
	return decodeInfoResp(resp)
}

func (hc *HTTPConn) Start(session uint64) ([]int64, error) {
	resp, err := hc.roundTrip(request{op: opStart, session: session})
	if err != nil {
		return nil, err
	}
	return decodeCountsResp(resp)
}

func (hc *HTTPConn) StartFiltered(session uint64, audience []graph.Vertex) ([]int64, int64, error) {
	resp, err := hc.roundTrip(request{op: opStartFiltered, session: session, audience: audience})
	if err != nil {
		return nil, 0, err
	}
	return decodeFilteredCountsResp(resp)
}

func (hc *HTTPConn) Spread(seeds, audience []graph.Vertex) (int64, int64, error) {
	resp, err := hc.roundTrip(request{op: opSpread, seeds: seeds, audience: audience})
	if err != nil {
		return 0, 0, err
	}
	return decodeSpreadResp(resp)
}

func (hc *HTTPConn) Purge(session uint64, v graph.Vertex) ([]DecPair, error) {
	resp, err := hc.roundTrip(request{op: opPurge, session: session, vertex: v})
	if err != nil {
		return nil, err
	}
	return decodeDecsResp(resp)
}

func (hc *HTTPConn) End(session uint64) error {
	resp, err := hc.roundTrip(request{op: opEnd, session: session})
	if err != nil {
		return err
	}
	return decodeAckResp(resp)
}

func (hc *HTTPConn) Close() error {
	hc.client.CloseIdleConnections()
	return nil
}
