package cluster

import (
	"encoding/binary"
	"fmt"
	"math"

	"influmax/internal/graph"
)

// The shard wire protocol: one request/response codec shared by the HTTP
// transport (POST /v1/shard/op bodies) and the mpi.Comm transport
// (ServeComm message payloads), so the two paths cannot drift. All
// integers are little-endian; vertices and sample decrements are uint32,
// coverage counts int64 (they are summed across shards).

// Shard operations.
const (
	opInfo  byte = 1 // -> ShardInfo
	opStart byte = 2 // session id -> dense per-vertex coverage counts
	opPurge byte = 3 // session id + seed vertex -> sparse decrements
	opEnd   byte = 4 // session id -> ack
	// opStartFiltered opens an audience-filtered session (targeted
	// influence, DESIGN.md §17): session id + audience vertex list ->
	// dense counts over audience-rooted samples + the eligible sample
	// count. Later opPurge calls on the session skip the filtered-out
	// samples automatically.
	opStartFiltered byte = 5
	// opSpread is the stateless spread estimate: seed vertex list +
	// optional audience list -> (covered, eligible) sample counts.
	opSpread byte = 6
)

// Response status bytes.
const (
	statusOK   byte = 0
	statusFail byte = 1
)

// ShardInfo identifies one shard and the sketch configuration it was
// sampled under. The router validates that every shard of a fleet agrees
// on everything except ShardIdx before serving.
type ShardInfo struct {
	ShardIdx    int     `json:"shardIdx"`
	ShardCount  int     `json:"shardCount"`
	Epoch       uint64  `json:"epoch"`
	Samples     int     `json:"samples"`
	NumVertices int     `json:"numVertices"`
	GraphDigest uint64  `json:"graphDigest"`
	Model       uint8   `json:"model"`
	Epsilon     float64 `json:"epsilon"`
	KMax        int     `json:"kMax"`
	Seed        uint64  `json:"seed"`
	Theta       int64   `json:"theta"`
}

// DecPair is one sparse purge decrement: seed selection subtracts Dec
// from vertex V's merged coverage count.
type DecPair struct {
	V   graph.Vertex
	Dec uint32
}

// request is one decoded shard operation. seeds and audience are the
// vertex-list payloads of the query-diversity ops (audience doubles as
// the filter of opStartFiltered; an empty audience on opSpread means no
// filter).
type request struct {
	op       byte
	session  uint64
	vertex   graph.Vertex
	seeds    []graph.Vertex
	audience []graph.Vertex
}

func appendVerts(buf []byte, vs []graph.Vertex) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(vs)))
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	return buf
}

// takeVerts decodes one length-prefixed vertex list, returning the rest of
// the buffer. The claimed count is validated against the bytes actually
// present before any allocation, so a hostile length cannot force one.
func takeVerts(b []byte) ([]graph.Vertex, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("cluster: truncated vertex list")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) < 4*n {
		return nil, nil, fmt.Errorf("cluster: vertex list claims %d entries, carries %d bytes", n, len(b))
	}
	vs := make([]graph.Vertex, n)
	for i := range vs {
		vs[i] = graph.Vertex(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return vs, b[4*n:], nil
}

func encodeRequest(r request) []byte {
	buf := make([]byte, 0, 13+4*(len(r.seeds)+len(r.audience))+8)
	buf = append(buf, r.op)
	switch r.op {
	case opStart, opEnd:
		buf = binary.LittleEndian.AppendUint64(buf, r.session)
	case opPurge:
		buf = binary.LittleEndian.AppendUint64(buf, r.session)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.vertex))
	case opStartFiltered:
		buf = binary.LittleEndian.AppendUint64(buf, r.session)
		buf = appendVerts(buf, r.audience)
	case opSpread:
		buf = appendVerts(buf, r.seeds)
		buf = appendVerts(buf, r.audience)
	}
	return buf
}

func decodeRequest(b []byte) (request, error) {
	if len(b) < 1 {
		return request{}, fmt.Errorf("cluster: empty request")
	}
	r := request{op: b[0]}
	rest := b[1:]
	switch r.op {
	case opInfo:
		if len(rest) != 0 {
			return request{}, fmt.Errorf("cluster: info request carries %d trailing bytes", len(rest))
		}
	case opStart, opEnd:
		if len(rest) != 8 {
			return request{}, fmt.Errorf("cluster: op %d wants an 8-byte session id, got %d bytes", r.op, len(rest))
		}
		r.session = binary.LittleEndian.Uint64(rest)
	case opPurge:
		if len(rest) != 12 {
			return request{}, fmt.Errorf("cluster: purge wants session id + vertex (12 bytes), got %d", len(rest))
		}
		r.session = binary.LittleEndian.Uint64(rest)
		r.vertex = graph.Vertex(binary.LittleEndian.Uint32(rest[8:]))
	case opStartFiltered:
		if len(rest) < 8 {
			return request{}, fmt.Errorf("cluster: filtered start wants a session id, got %d bytes", len(rest))
		}
		r.session = binary.LittleEndian.Uint64(rest)
		var err error
		if r.audience, rest, err = takeVerts(rest[8:]); err != nil {
			return request{}, err
		}
		if len(rest) != 0 {
			return request{}, fmt.Errorf("cluster: filtered start carries %d trailing bytes", len(rest))
		}
	case opSpread:
		var err error
		if r.seeds, rest, err = takeVerts(rest); err != nil {
			return request{}, err
		}
		if r.audience, rest, err = takeVerts(rest); err != nil {
			return request{}, err
		}
		if len(rest) != 0 {
			return request{}, fmt.Errorf("cluster: spread request carries %d trailing bytes", len(rest))
		}
	default:
		return request{}, fmt.Errorf("cluster: unknown op %d", r.op)
	}
	return r, nil
}

// encodeErrorResp wraps a shard-side failure (unknown session, malformed
// request) for the wire. Transport-level failures never reach this path —
// they surface as mpi.RankFailedError on the router.
func encodeErrorResp(msg string) []byte {
	buf := make([]byte, 0, 3+len(msg))
	buf = append(buf, statusFail)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(min(len(msg), 1<<16-1)))
	return append(buf, msg[:min(len(msg), 1<<16-1)]...)
}

func encodeInfoResp(info ShardInfo) []byte {
	buf := make([]byte, 0, 70)
	buf = append(buf, statusOK)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(info.ShardIdx))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(info.ShardCount))
	buf = binary.LittleEndian.AppendUint64(buf, info.Epoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(info.Samples))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(info.NumVertices))
	buf = binary.LittleEndian.AppendUint64(buf, info.GraphDigest)
	buf = append(buf, info.Model)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(info.Epsilon))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(info.KMax))
	buf = binary.LittleEndian.AppendUint64(buf, info.Seed)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(info.Theta))
	return buf
}

func encodeCountsResp(counts []int64) []byte {
	buf := make([]byte, 0, 5+8*len(counts))
	buf = append(buf, statusOK)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(counts)))
	for _, c := range counts {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c))
	}
	return buf
}

func encodeDecsResp(pairs []DecPair) []byte {
	buf := make([]byte, 0, 5+8*len(pairs))
	buf = append(buf, statusOK)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pairs)))
	for _, p := range pairs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.V))
		buf = binary.LittleEndian.AppendUint32(buf, p.Dec)
	}
	return buf
}

// encodeFilteredCountsResp answers opStartFiltered: the eligible
// (audience-rooted) sample count, then the dense per-vertex counts over
// exactly those samples.
func encodeFilteredCountsResp(counts []int64, eligible int64) []byte {
	buf := make([]byte, 0, 13+8*len(counts))
	buf = append(buf, statusOK)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(eligible))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(counts)))
	for _, c := range counts {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c))
	}
	return buf
}

// encodeSpreadResp answers opSpread: covered and eligible sample counts.
func encodeSpreadResp(covered, eligible int64) []byte {
	buf := make([]byte, 0, 17)
	buf = append(buf, statusOK)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(covered))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(eligible))
	return buf
}

func encodeAckResp() []byte { return []byte{statusOK} }

// checkResp strips the status byte, converting a statusFail envelope into
// an error.
func checkResp(b []byte) ([]byte, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("cluster: empty response")
	}
	switch b[0] {
	case statusOK:
		return b[1:], nil
	case statusFail:
		if len(b) < 3 {
			return nil, fmt.Errorf("cluster: truncated error response")
		}
		l := int(binary.LittleEndian.Uint16(b[1:]))
		if len(b) < 3+l {
			return nil, fmt.Errorf("cluster: truncated error response")
		}
		return nil, fmt.Errorf("cluster: shard error: %s", b[3:3+l])
	default:
		return nil, fmt.Errorf("cluster: unknown response status %d", b[0])
	}
}

func decodeInfoResp(b []byte) (ShardInfo, error) {
	body, err := checkResp(b)
	if err != nil {
		return ShardInfo{}, err
	}
	if len(body) != 61 {
		return ShardInfo{}, fmt.Errorf("cluster: info response is %d bytes, want 61", len(body))
	}
	var info ShardInfo
	info.ShardIdx = int(binary.LittleEndian.Uint32(body))
	info.ShardCount = int(binary.LittleEndian.Uint32(body[4:]))
	info.Epoch = binary.LittleEndian.Uint64(body[8:])
	info.Samples = int(binary.LittleEndian.Uint32(body[16:]))
	info.NumVertices = int(binary.LittleEndian.Uint32(body[20:]))
	info.GraphDigest = binary.LittleEndian.Uint64(body[24:])
	info.Model = body[32]
	info.Epsilon = math.Float64frombits(binary.LittleEndian.Uint64(body[33:]))
	info.KMax = int(binary.LittleEndian.Uint32(body[41:]))
	info.Seed = binary.LittleEndian.Uint64(body[45:])
	info.Theta = int64(binary.LittleEndian.Uint64(body[53:]))
	return info, nil
}

func decodeCountsResp(b []byte) ([]int64, error) {
	body, err := checkResp(b)
	if err != nil {
		return nil, err
	}
	if len(body) < 4 {
		return nil, fmt.Errorf("cluster: truncated counts response")
	}
	n := int(binary.LittleEndian.Uint32(body))
	body = body[4:]
	if len(body) != 8*n {
		return nil, fmt.Errorf("cluster: counts response claims %d entries, carries %d bytes", n, len(body))
	}
	counts := make([]int64, n)
	for i := range counts {
		counts[i] = int64(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return counts, nil
}

func decodeDecsResp(b []byte) ([]DecPair, error) {
	body, err := checkResp(b)
	if err != nil {
		return nil, err
	}
	if len(body) < 4 {
		return nil, fmt.Errorf("cluster: truncated decrement response")
	}
	n := int(binary.LittleEndian.Uint32(body))
	body = body[4:]
	if len(body) != 8*n {
		return nil, fmt.Errorf("cluster: decrement response claims %d pairs, carries %d bytes", n, len(body))
	}
	pairs := make([]DecPair, n)
	for i := range pairs {
		pairs[i].V = graph.Vertex(binary.LittleEndian.Uint32(body[8*i:]))
		pairs[i].Dec = binary.LittleEndian.Uint32(body[8*i+4:])
	}
	return pairs, nil
}

func decodeFilteredCountsResp(b []byte) ([]int64, int64, error) {
	body, err := checkResp(b)
	if err != nil {
		return nil, 0, err
	}
	if len(body) < 12 {
		return nil, 0, fmt.Errorf("cluster: truncated filtered-counts response")
	}
	eligible := int64(binary.LittleEndian.Uint64(body))
	n := int(binary.LittleEndian.Uint32(body[8:]))
	body = body[12:]
	if len(body) != 8*n {
		return nil, 0, fmt.Errorf("cluster: filtered-counts response claims %d entries, carries %d bytes", n, len(body))
	}
	counts := make([]int64, n)
	for i := range counts {
		counts[i] = int64(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return counts, eligible, nil
}

func decodeSpreadResp(b []byte) (covered, eligible int64, err error) {
	body, err := checkResp(b)
	if err != nil {
		return 0, 0, err
	}
	if len(body) != 16 {
		return 0, 0, fmt.Errorf("cluster: spread response is %d bytes, want 16", len(body))
	}
	return int64(binary.LittleEndian.Uint64(body)), int64(binary.LittleEndian.Uint64(body[8:])), nil
}

func decodeAckResp(b []byte) error {
	_, err := checkResp(b)
	return err
}
