package cluster

import (
	"slices"
	"testing"

	"influmax/internal/graph"
)

func TestProtocolRequestRoundTrip(t *testing.T) {
	cases := []request{
		{op: opInfo},
		{op: opStart, session: 0},
		{op: opStart, session: 1<<64 - 1},
		{op: opEnd, session: 42},
		{op: opPurge, session: 7, vertex: 0},
		{op: opPurge, session: 9, vertex: 1<<32 - 1},
	}
	for _, want := range cases {
		got, err := decodeRequest(encodeRequest(want))
		if err != nil {
			t.Fatalf("op %d: %v", want.op, err)
		}
		if got.op != want.op || got.session != want.session || got.vertex != want.vertex {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

// TestProtocolQueryRequestRoundTrip covers the query-diversity ops, whose
// vertex-list payloads make the request struct incomparable with ==.
func TestProtocolQueryRequestRoundTrip(t *testing.T) {
	cases := []request{
		{op: opStartFiltered, session: 3, audience: []graph.Vertex{}},
		{op: opStartFiltered, session: 1<<64 - 1, audience: []graph.Vertex{0, 7, 1<<32 - 1}},
		{op: opSpread, seeds: []graph.Vertex{5}, audience: []graph.Vertex{}},
		{op: opSpread, seeds: []graph.Vertex{1, 2, 3}, audience: []graph.Vertex{9, 8}},
	}
	for _, want := range cases {
		got, err := decodeRequest(encodeRequest(want))
		if err != nil {
			t.Fatalf("op %d: %v", want.op, err)
		}
		if got.op != want.op || got.session != want.session ||
			!slices.Equal(got.seeds, want.seeds) || !slices.Equal(got.audience, want.audience) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestProtocolRejectsMalformedRequests(t *testing.T) {
	bad := [][]byte{
		nil,
		{},
		{99},                     // unknown op
		{opStart, 1, 2, 3},       // short session
		{opPurge, 1, 2, 3, 4, 5}, // short purge
		append(encodeRequest(request{op: opInfo}), 0xff),      // trailing bytes
		{opStartFiltered, 1, 2, 3},                            // short session
		{opStartFiltered, 1, 2, 3, 4, 5, 6, 7, 8},             // missing audience list
		{opStartFiltered, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 0, 0}, // audience claims 9 entries, carries none
		{opSpread},             // missing both lists
		{opSpread, 1, 0, 0, 0}, // seed list claims 1 entry, carries none
		{opSpread, 0, 0, 0, 0}, // missing audience list
		append(encodeRequest(request{op: opSpread, seeds: []graph.Vertex{1}, audience: []graph.Vertex{2}}), 0xff), // trailing bytes
	}
	for i, b := range bad {
		if _, err := decodeRequest(b); err == nil {
			t.Fatalf("case %d: malformed request %v decoded without error", i, b)
		}
	}
}

func TestProtocolResponseRoundTrips(t *testing.T) {
	info := ShardInfo{
		ShardIdx: 2, ShardCount: 5, Epoch: 9, Samples: 1234, NumVertices: 999,
		GraphDigest: 0xdeadbeefcafef00d, Model: 1, Epsilon: 0.25, KMax: 50,
		Seed: 77, Theta: 123456789,
	}
	got, err := decodeInfoResp(encodeInfoResp(info))
	if err != nil {
		t.Fatal(err)
	}
	if got != info {
		t.Fatalf("info round trip: got %+v, want %+v", got, info)
	}

	counts := []int64{0, 5, -1, 1 << 40, 3}
	gotCounts, err := decodeCountsResp(encodeCountsResp(counts))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(gotCounts, counts) {
		t.Fatalf("counts round trip: got %v, want %v", gotCounts, counts)
	}

	pairs := []DecPair{{V: 0, Dec: 1}, {V: 4096, Dec: 2}, {V: 1<<32 - 1, Dec: 1 << 31}}
	gotPairs, err := decodeDecsResp(encodeDecsResp(pairs))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(gotPairs, pairs) {
		t.Fatalf("decs round trip: got %v, want %v", gotPairs, pairs)
	}

	fCounts, fEligible, err := decodeFilteredCountsResp(encodeFilteredCountsResp(counts, 321))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(fCounts, counts) || fEligible != 321 {
		t.Fatalf("filtered counts round trip: got (%v, %d), want (%v, 321)", fCounts, fEligible, counts)
	}

	cov, elig, err := decodeSpreadResp(encodeSpreadResp(77, 99))
	if err != nil {
		t.Fatal(err)
	}
	if cov != 77 || elig != 99 {
		t.Fatalf("spread round trip: got (%d, %d), want (77, 99)", cov, elig)
	}

	if err := decodeAckResp(encodeAckResp()); err != nil {
		t.Fatal(err)
	}
	if err := decodeAckResp(encodeErrorResp("boom")); err == nil {
		t.Fatal("error response decoded as ack")
	}
}

func TestProtocolRejectsTruncatedResponses(t *testing.T) {
	if _, err := decodeCountsResp(encodeCountsResp([]int64{1, 2, 3})[:10]); err == nil {
		t.Fatal("truncated counts accepted")
	}
	if _, err := decodeDecsResp(encodeDecsResp([]DecPair{{V: 1, Dec: 1}})[:6]); err == nil {
		t.Fatal("truncated decs accepted")
	}
	if _, err := decodeInfoResp([]byte{statusOK, 1, 2}); err == nil {
		t.Fatal("short info accepted")
	}
	if _, err := checkResp([]byte{statusFail, 200, 0}); err == nil {
		t.Fatal("error envelope with over-claimed length accepted")
	}
	if _, _, err := decodeFilteredCountsResp(encodeFilteredCountsResp([]int64{1, 2}, 2)[:12]); err == nil {
		t.Fatal("truncated filtered counts accepted")
	}
	if _, _, err := decodeSpreadResp(encodeSpreadResp(1, 2)[:9]); err == nil {
		t.Fatal("truncated spread response accepted")
	}
}
