package cluster

import (
	"slices"
	"testing"
)

func TestProtocolRequestRoundTrip(t *testing.T) {
	cases := []request{
		{op: opInfo},
		{op: opStart, session: 0},
		{op: opStart, session: 1<<64 - 1},
		{op: opEnd, session: 42},
		{op: opPurge, session: 7, vertex: 0},
		{op: opPurge, session: 9, vertex: 1<<32 - 1},
	}
	for _, want := range cases {
		got, err := decodeRequest(encodeRequest(want))
		if err != nil {
			t.Fatalf("op %d: %v", want.op, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestProtocolRejectsMalformedRequests(t *testing.T) {
	bad := [][]byte{
		nil,
		{},
		{99},                     // unknown op
		{opStart, 1, 2, 3},       // short session
		{opPurge, 1, 2, 3, 4, 5}, // short purge
		append(encodeRequest(request{op: opInfo}), 0xff), // trailing bytes
	}
	for i, b := range bad {
		if _, err := decodeRequest(b); err == nil {
			t.Fatalf("case %d: malformed request %v decoded without error", i, b)
		}
	}
}

func TestProtocolResponseRoundTrips(t *testing.T) {
	info := ShardInfo{
		ShardIdx: 2, ShardCount: 5, Epoch: 9, Samples: 1234, NumVertices: 999,
		GraphDigest: 0xdeadbeefcafef00d, Model: 1, Epsilon: 0.25, KMax: 50,
		Seed: 77, Theta: 123456789,
	}
	got, err := decodeInfoResp(encodeInfoResp(info))
	if err != nil {
		t.Fatal(err)
	}
	if got != info {
		t.Fatalf("info round trip: got %+v, want %+v", got, info)
	}

	counts := []int64{0, 5, -1, 1 << 40, 3}
	gotCounts, err := decodeCountsResp(encodeCountsResp(counts))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(gotCounts, counts) {
		t.Fatalf("counts round trip: got %v, want %v", gotCounts, counts)
	}

	pairs := []DecPair{{V: 0, Dec: 1}, {V: 4096, Dec: 2}, {V: 1<<32 - 1, Dec: 1 << 31}}
	gotPairs, err := decodeDecsResp(encodeDecsResp(pairs))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(gotPairs, pairs) {
		t.Fatalf("decs round trip: got %v, want %v", gotPairs, pairs)
	}

	if err := decodeAckResp(encodeAckResp()); err != nil {
		t.Fatal(err)
	}
	if err := decodeAckResp(encodeErrorResp("boom")); err == nil {
		t.Fatal("error response decoded as ack")
	}
}

func TestProtocolRejectsTruncatedResponses(t *testing.T) {
	if _, err := decodeCountsResp(encodeCountsResp([]int64{1, 2, 3})[:10]); err == nil {
		t.Fatal("truncated counts accepted")
	}
	if _, err := decodeDecsResp(encodeDecsResp([]DecPair{{V: 1, Dec: 1}})[:6]); err == nil {
		t.Fatal("truncated decs accepted")
	}
	if _, err := decodeInfoResp([]byte{statusOK, 1, 2}); err == nil {
		t.Fatal("short info accepted")
	}
	if _, err := checkResp([]byte{statusFail, 200, 0}); err == nil {
		t.Fatal("error envelope with over-claimed length accepted")
	}
}
