package cluster_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"
	"time"

	"influmax/internal/cluster"
	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/mpi"
)

// refQuery answers q over the single-process sketch at the fleet
// configuration — the byte-identity oracle for every routed query mode.
func refQuery(t *testing.T, g *graph.Graph, opt cluster.BuildOptions, q imm.Query) *imm.QueryResult {
	t.Helper()
	_, coded, idx, err := imm.RunSketch(g, imm.Options{
		K: opt.K, Epsilon: opt.Epsilon, Model: opt.Model, Seed: opt.Seed, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	roots := imm.RootsRange(opt.Seed, coded.Count(), g.NumVertices(), 2)
	qr, err := imm.SelectQuerySketch(coded, idx, roots, q, 2)
	if err != nil {
		t.Fatal(err)
	}
	return qr
}

func queryTestInputs(n int, refSeeds []graph.Vertex) (costs []float64, audience, blocked []graph.Vertex) {
	costs = make([]float64, n)
	for v := range costs {
		costs[v] = float64(1 + (v*2654435761)%4)
	}
	for v := 0; v < n; v += 4 {
		audience = append(audience, graph.Vertex(v))
	}
	blocked = refSeeds[:2]
	return
}

// TestRouterQueryModesMatchSingleProcess pins every routed query mode
// byte-identically against the single-process selection over the union of
// the shards' samples, for 1 and 3 shards, and the routed spread estimate
// against the exposed CoverageOf estimator.
func TestRouterQueryModesMatchSingleProcess(t *testing.T) {
	g := testGraph(13, 100, 700)
	opt := cluster.BuildOptions{K: 8, Epsilon: 0.5, Model: diffuse.IC, Seed: 31, Workers: 2}
	const k = 6
	plainRef := refQuery(t, g, opt, imm.Query{K: k})
	costs, audience, blocked := queryTestInputs(g.NumVertices(), plainRef.Seeds)

	queries := map[string]imm.Query{
		"plain":    {K: k},
		"budgeted": {K: k, Costs: costs, Budget: 7},
		"implicit": {K: k, Budget: 4}, // unit costs
		"targeted": {K: k, Audience: audience},
		"blocked":  {K: k, Blocked: blocked},
		"combined": {K: k, Budget: 5, Audience: audience, Blocked: blocked},
	}
	refs := map[string]*imm.QueryResult{"plain": plainRef}
	for name, q := range queries {
		if name != "plain" {
			refs[name] = refQuery(t, g, opt, q)
		}
	}

	for _, s := range []int{1, 3} {
		opt.Shards = s
		shards, err := cluster.BuildShards(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		fleet := startCommFleet(t, shards, nil, 2*time.Second)
		rt, err := cluster.NewRouter(fleet.conns, nil)
		if err != nil {
			t.Fatal(err)
		}
		for name, q := range queries {
			want := refs[name]
			res, err := rt.SelectQuery(cluster.RouterQuery{
				K: q.K, Costs: q.Costs, Budget: q.Budget, Audience: q.Audience, Blocked: q.Blocked,
			}, nil)
			if err != nil {
				t.Fatalf("s=%d %s: %v", s, name, err)
			}
			if !slices.Equal(res.Seeds, want.Seeds) || !slices.Equal(res.Gains, want.Gains) {
				t.Fatalf("s=%d %s: routed (%v, %v) != single-process (%v, %v)",
					s, name, res.Seeds, res.Gains, want.Seeds, want.Gains)
			}
			if res.Eligible != want.Eligible || res.SpentBudget != want.SpentBudget {
				t.Fatalf("s=%d %s: eligible/spent (%d, %v) != (%d, %v)",
					s, name, res.Eligible, res.SpentBudget, want.Eligible, want.SpentBudget)
			}
			wantCov := float64(want.Covered) / float64(res.TotalSamples)
			if res.CoverageFraction != wantCov {
				t.Fatalf("s=%d %s: coverage %v != %v", s, name, res.CoverageFraction, wantCov)
			}
			if res.Degraded {
				t.Fatalf("s=%d %s: clean fleet degraded", s, name)
			}
			for i, sh := range shards {
				if open := sh.Sessions(); open != 0 {
					t.Fatalf("s=%d %s: shard %d holds %d sessions after the query", s, name, i, open)
				}
			}
		}

		// Routed spread, with and without an audience, against CoverageOf
		// over the single-process store.
		_, coded, idx, err := imm.RunSketch(g, imm.Options{
			K: opt.K, Epsilon: opt.Epsilon, Model: opt.Model, Seed: opt.Seed, Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		roots := imm.RootsRange(opt.Seed, coded.Count(), g.NumVertices(), 2)
		for _, aud := range [][]graph.Vertex{nil, audience} {
			wantCovered, wantEligible, err := imm.CoverageOf(coded.Count(), idx, roots, plainRef.Seeds, aud)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := rt.Spread(plainRef.Seeds, aud)
			if err != nil {
				t.Fatalf("s=%d spread: %v", s, err)
			}
			if sp.Covered != wantCovered || sp.Eligible != wantEligible {
				t.Fatalf("s=%d spread aud=%v: (%d, %d) != (%d, %d)",
					s, aud != nil, sp.Covered, sp.Eligible, wantCovered, wantEligible)
			}
			wantEst := float64(wantCovered) / float64(sp.TotalSamples) * float64(g.NumVertices())
			if sp.EstimatedSpread != wantEst {
				t.Fatalf("s=%d spread aud=%v: estimate %v != %v", s, aud != nil, sp.EstimatedSpread, wantEst)
			}
		}
	}
}

// TestRouterQueryFailover runs a filtered budgeted query under a
// deterministic kill plan: the query must finish degraded on the
// survivors, and the whole scenario must reproduce exactly.
func TestRouterQueryFailover(t *testing.T) {
	g := testGraph(17, 90, 600)
	opt := cluster.BuildOptions{K: 8, Epsilon: 0.5, Model: diffuse.IC, Seed: 41, Workers: 2, Shards: 4}
	const netTimeout = 500 * time.Millisecond
	var audience []graph.Vertex
	for v := 0; v < g.NumVertices(); v += 2 {
		audience = append(audience, graph.Vertex(v))
	}
	q := cluster.RouterQuery{K: 5, Budget: 5, Audience: audience}

	run := func(t *testing.T) *cluster.SelectResult {
		t.Helper()
		shards, err := cluster.BuildShards(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		plans := make([]mpi.FaultPlan, 4)
		plans[2] = mpi.FaultPlan{Seed: 1, Crashes: []mpi.RankCrash{{Rank: 3, AfterSends: 3}}}
		fleet := startCommFleet(t, shards, plans, netTimeout)
		rt, err := cluster.NewRouter(fleet.conns, nil)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		res, err := rt.SelectQuery(q, nil)
		if err != nil {
			t.Fatalf("degraded query must still answer: %v", err)
		}
		if elapsed := time.Since(start); elapsed > 10*netTimeout {
			t.Fatalf("query took %v with a %v net timeout", elapsed, netTimeout)
		}
		return res
	}

	res := run(t)
	if !res.Degraded || !slices.Equal(res.FailedShards, []int{2}) {
		t.Fatalf("want degraded with failedShards [2], got degraded=%v failed=%v", res.Degraded, res.FailedShards)
	}
	if len(res.Seeds) == 0 || res.SpentBudget > q.Budget {
		t.Fatalf("degraded result malformed: seeds %v spent %v", res.Seeds, res.SpentBudget)
	}
	res2 := run(t)
	if !slices.Equal(res2.Seeds, res.Seeds) || res2.Eligible != res.Eligible || res2.SpentBudget != res.SpentBudget {
		t.Fatalf("failover not deterministic: %+v vs %+v", res, res2)
	}
}

// TestRouterFilteredNeedsRoots: a shard without a root column (a v1
// snapshot) refuses audience-filtered work with an in-band error — the
// router aborts that query without marking the shard failed, and plain
// queries keep serving the full fleet.
func TestRouterFilteredNeedsRoots(t *testing.T) {
	g := testGraph(19, 60, 400)
	opt := cluster.BuildOptions{K: 5, Epsilon: 0.5, Model: diffuse.IC, Seed: 7, Workers: 2, Shards: 3}
	shards, err := cluster.BuildShards(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	shards[1].Roots = nil // simulate a warm restart from a v1 snapshot
	fleet := startCommFleet(t, shards, nil, 2*time.Second)
	rt, err := cluster.NewRouter(fleet.conns, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SelectQuery(cluster.RouterQuery{K: 3, Audience: []graph.Vertex{1, 2, 3}}, nil); err == nil {
		t.Fatal("audience query served without sample roots")
	}
	if _, err := rt.Spread([]graph.Vertex{1}, []graph.Vertex{2}); err == nil {
		t.Fatal("audience spread served without sample roots")
	}
	// The rootless shard is healthy, not failed: plain selection and
	// unrestricted spread still run over the whole fleet.
	res, err := rt.Select(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.TotalSamples != res.Theta {
		t.Fatalf("in-band refusal degraded the fleet: %+v", res)
	}
	if _, err := rt.Spread([]graph.Vertex{1}, nil); err != nil {
		t.Fatalf("unrestricted spread: %v", err)
	}
}

// TestRouterServerQueryEndpoints drives the extended /v1/seeds fields and
// the /v1/spread endpoint over HTTP, including the error paths.
func TestRouterServerQueryEndpoints(t *testing.T) {
	g := testGraph(23, 70, 450)
	opt := cluster.BuildOptions{K: 6, Epsilon: 0.5, Model: diffuse.IC, Seed: 29, Workers: 2, Shards: 2}
	const k = 4
	want := refQuery(t, g, opt, imm.Query{K: k, Budget: 3})
	shards, err := cluster.BuildShards(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	fleet := startCommFleet(t, shards, nil, 2*time.Second)
	rt, err := cluster.NewRouter(fleet.conns, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs := cluster.NewRouterServer(rt, cluster.RouterServerConfig{})
	srv := httptest.NewServer(rs.Handler())
	defer srv.Close()

	// Budgeted seeds: eligible/spentBudget extras present and correct.
	resp, err := http.Post(srv.URL+"/v1/seeds", "application/json", strings.NewReader(`{"k":4,"budget":3}`))
	if err != nil {
		t.Fatal(err)
	}
	var seedsResp struct {
		Seeds       []graph.Vertex `json:"seeds"`
		Gains       []int64        `json:"gains"`
		Eligible    int64          `json:"eligible"`
		SpentBudget float64        `json:"spentBudget"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&seedsResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !slices.Equal(seedsResp.Seeds, want.Seeds) {
		t.Fatalf("budgeted seeds: status %d, %v (want %v)", resp.StatusCode, seedsResp.Seeds, want.Seeds)
	}
	if !slices.Equal(seedsResp.Gains, want.Gains) || seedsResp.SpentBudget != want.SpentBudget || seedsResp.Eligible != want.Eligible {
		t.Fatalf("budgeted extras: %+v vs %+v", seedsResp, want)
	}

	// Spread endpoint against the routed Spread.
	wantSp, err := rt.Spread(want.Seeds, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(struct {
		Seeds []graph.Vertex `json:"seeds"`
	}{want.Seeds})
	resp, err = http.Post(srv.URL+"/v1/spread", "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	var spreadResp struct {
		Covered         int64   `json:"covered"`
		Eligible        int64   `json:"eligible"`
		EstimatedSpread float64 `json:"estimatedSpread"`
		Shards          int     `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&spreadResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || spreadResp.Covered != wantSp.Covered ||
		spreadResp.Eligible != wantSp.Eligible || spreadResp.EstimatedSpread != wantSp.EstimatedSpread ||
		spreadResp.Shards != 2 {
		t.Fatalf("spread response: status %d, %+v (want %+v)", resp.StatusCode, spreadResp, wantSp)
	}

	// Error paths: malformed JSON, empty seeds, out-of-range vertices and
	// invalid query parameterizations must all answer 400.
	for _, tc := range []struct{ path, body string }{
		{"/v1/spread", `{"seeds":`},
		{"/v1/spread", `{"seeds":[]}`},
		{"/v1/spread", `{"seeds":[99999]}`},
		{"/v1/spread", `{"seeds":[1],"audience":[99999]}`},
		{"/v1/seeds", `{"k":4,"costs":[1,2]}`},
		{"/v1/seeds", `{"k":4,"budget":-1}`},
		{"/v1/seeds", `{"k":4,"audience":[99999]}`},
	} {
		resp, err := http.Post(srv.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s %s: status %d, want 400", tc.path, tc.body, resp.StatusCode)
		}
	}
}
