package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/metrics"
	"influmax/internal/mpi"
)

// probeInterval rate-limits rejoin probing of failed shards: at most one
// probe sweep per interval, so a down replica costs queries one timeout
// per interval, not one per query.
const probeInterval = time.Second

// ErrNoShards reports a query that found no live shard to serve from.
var ErrNoShards = errors.New("cluster: no shards alive")

// Router fans a seed query out over a shard fleet and runs the
// sample-partitioned greedy protocol (internal/dist Algorithm 4, re-hosted
// behind the shard API): one merged coverage counter at session start,
// then per-seed rounds of identical sequential argmax and merged purge
// decrements. Because the merge is integer addition and the argmax scans
// ascending with strict >, the selected seeds are byte-identical to a
// single process holding the union of the shards' samples.
//
// A shard that fails mid-query (typed *mpi.RankFailedError from its Conn,
// within the transport's net timeout) is dropped: the router starts fresh
// sessions on the survivors, replays the seeds already chosen to rebuild
// counter state, and finishes the query degraded — the pre-failure seed
// prefix stands, the response names the failed shards. Failed shards are
// re-probed (at most once per second) and rejoin automatically once they
// answer with a matching identity again.
type Router struct {
	conns []Conn
	canon ShardInfo // fleet-wide configuration (ShardIdx/Samples not meaningful)

	mu        sync.Mutex
	failed    []bool
	info      []ShardInfo
	lastProbe time.Time

	nextSession atomic.Uint64

	reg                                      *metrics.Registry
	mQueries, mDegraded, mFailovers, mRounds *metrics.Counter
	mShardsAlive                             *metrics.Gauge
	mLatency                                 *metrics.Histogram
}

// NewRouter probes every shard connection and validates that the fleet is
// coherent: conn i must be shard i of len(conns), and all shards must
// agree on the sketch configuration (graph digest, model, epsilon, kMax,
// seed, theta, vertex count, epoch). Shards that do not answer the probe
// start out failed (the fleet serves degraded until they rejoin); at
// least one shard must answer. reg may be nil.
func NewRouter(conns []Conn, reg *metrics.Registry) (*Router, error) {
	if len(conns) == 0 {
		return nil, errors.New("cluster: router needs at least one shard connection")
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	rt := &Router{
		conns:        conns,
		failed:       make([]bool, len(conns)),
		info:         make([]ShardInfo, len(conns)),
		reg:          reg,
		mQueries:     reg.Counter("router/queries"),
		mDegraded:    reg.Counter("router/degraded"),
		mFailovers:   reg.Counter("router/failovers"),
		mRounds:      reg.Counter("router/rounds"),
		mShardsAlive: reg.Gauge("router/shards-alive"),
		mLatency:     reg.Histogram("router/query-us"),
	}
	infos := make([]ShardInfo, len(conns))
	errs := make([]error, len(conns))
	var wg sync.WaitGroup
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c Conn) {
			defer wg.Done()
			infos[i], errs[i] = c.Info()
		}(i, c)
	}
	wg.Wait()
	first := -1
	for i := range conns {
		if errs[i] == nil {
			first = i
			break
		}
	}
	if first < 0 {
		return nil, fmt.Errorf("cluster: no shard answered the startup probe (first error: %w)", errs[0])
	}
	rt.canon = infos[first]
	for i := range conns {
		if errs[i] != nil {
			rt.failed[i] = true
			continue
		}
		if err := rt.admit(i, infos[i]); err != nil {
			return nil, err
		}
	}
	rt.mShardsAlive.Set(int64(len(rt.aliveLocked())))
	return rt, nil
}

// admit validates one shard's identity against the fleet and records its
// info. Caller holds mu (or is still inside NewRouter).
func (rt *Router) admit(slot int, info ShardInfo) error {
	c := rt.canon
	switch {
	case info.ShardCount != len(rt.conns):
		return fmt.Errorf("cluster: shard %d says the fleet has %d shards, router has %d connections", slot, info.ShardCount, len(rt.conns))
	case info.ShardIdx != slot:
		return fmt.Errorf("cluster: connection %d reached shard %d; order the -shards list by shard index", slot, info.ShardIdx)
	case info.GraphDigest != c.GraphDigest, info.Model != c.Model, info.Epsilon != c.Epsilon,
		info.KMax != c.KMax, info.Seed != c.Seed, info.Theta != c.Theta,
		info.NumVertices != c.NumVertices, info.Epoch != c.Epoch:
		return fmt.Errorf("cluster: shard %d was sampled under a different configuration than shard %d (graph %016x vs %016x, model %d vs %d, eps %g vs %g, kMax %d vs %d, seed %d vs %d, theta %d vs %d, epoch %d vs %d)",
			slot, c.ShardIdx, info.GraphDigest, c.GraphDigest, info.Model, c.Model,
			info.Epsilon, c.Epsilon, info.KMax, c.KMax, info.Seed, c.Seed,
			info.Theta, c.Theta, info.Epoch, c.Epoch)
	}
	rt.info[slot] = info
	return nil
}

// Fleet reports the fleet-wide sketch configuration the router validated
// at startup.
func (rt *Router) Fleet() ShardInfo { return rt.canon }

// Shards returns the fleet width.
func (rt *Router) Shards() int { return len(rt.conns) }

// FailedShards returns the slots currently considered failed, sorted.
func (rt *Router) FailedShards() []int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.failedLocked()
}

func (rt *Router) failedLocked() []int {
	var out []int
	for i, f := range rt.failed {
		if f {
			out = append(out, i)
		}
	}
	return out
}

func (rt *Router) aliveLocked() []int {
	out := make([]int, 0, len(rt.conns))
	for i, f := range rt.failed {
		if !f {
			out = append(out, i)
		}
	}
	return out
}

// markFailed records slots as failed.
func (rt *Router) markFailed(slots []int) {
	rt.mu.Lock()
	for _, s := range slots {
		rt.failed[s] = true
	}
	alive := len(rt.aliveLocked())
	rt.mu.Unlock()
	rt.mShardsAlive.Set(int64(alive))
}

// alive returns the live slots, first re-probing failed shards (rate
// limited) so a restarted replica rejoins without a router restart. A
// rejoining shard must present the exact fleet identity it had before.
func (rt *Router) alive() []int {
	rt.mu.Lock()
	var toProbe []int
	if time.Since(rt.lastProbe) >= probeInterval {
		toProbe = rt.failedLocked()
		rt.lastProbe = time.Now()
	}
	rt.mu.Unlock()
	if len(toProbe) > 0 {
		infos := make([]ShardInfo, len(toProbe))
		errs := make([]error, len(toProbe))
		var wg sync.WaitGroup
		for i, slot := range toProbe {
			wg.Add(1)
			go func(i, slot int) {
				defer wg.Done()
				infos[i], errs[i] = rt.conns[slot].Info()
			}(i, slot)
		}
		wg.Wait()
		rt.mu.Lock()
		for i, slot := range toProbe {
			if errs[i] == nil && rt.admit(slot, infos[i]) == nil {
				rt.failed[slot] = false
			}
		}
		rt.mu.Unlock()
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := rt.aliveLocked()
	rt.mShardsAlive.Set(int64(len(out)))
	return out
}

// RouterQuery is one routed selection request — the cluster face of
// imm.Query (DESIGN.md §17). Audience filtering and blocked purging are
// per-shard ops; the budgeted argmax runs router-side over the merged
// counter, exactly like the plain one.
type RouterQuery struct {
	// K bounds the seed count (budgeted queries may stop earlier).
	K int
	// Costs/Budget select cost-aware greedy (see imm.Query).
	Costs  []float64
	Budget float64
	// Audience restricts coverage to samples rooted in it (requires shard
	// roots — header-v2 snapshots or fresh builds).
	Audience []graph.Vertex
	// Blocked is the rival seed set to exclude and pre-purge.
	Blocked []graph.Vertex
}

// Plain reports whether q is the classic top-k selection.
func (q RouterQuery) Plain() bool {
	return q.Budget == 0 && len(q.Costs) == 0 && len(q.Audience) == 0 && len(q.Blocked) == 0
}

// asImm converts to the imm validation/semantics carrier.
func (q RouterQuery) asImm() imm.Query {
	return imm.Query{K: q.K, Costs: q.Costs, Budget: q.Budget, Audience: q.Audience, Blocked: q.Blocked}
}

// SelectResult is one routed query's outcome.
type SelectResult struct {
	// Seeds is the selected set in greedy order; Gains[i] is the marginal
	// covered-sample count of Seeds[i] under the shards that contributed
	// to the final counter state (after a failover, gains are recomputed
	// over the survivors so the summary is self-consistent).
	Seeds []graph.Vertex
	Gains []int64
	// CoverageFraction is covered/total over the participating shards'
	// samples; EstimatedSpread is n * CoverageFraction.
	CoverageFraction float64
	EstimatedSpread  float64
	// Theta is the fleet's sample count; TotalSamples the samples actually
	// participating (smaller than Theta when shards are down).
	Theta        int64
	TotalSamples int64
	// Shards is the fleet width; FailedShards lists the slots that did not
	// participate (failed before or during this query), sorted; Degraded
	// mirrors len(FailedShards) > 0.
	Shards       int
	FailedShards []int
	Degraded     bool
	// ShardEpochs is each slot's last-known mutation epoch.
	ShardEpochs []uint64
	// Rounds counts greedy purge rounds, including failover replays.
	Rounds int
	// Eligible is the participating samples passing the audience filter
	// (equals TotalSamples without one); SpentBudget the summed cost of
	// Seeds under a budgeted query (0 otherwise).
	Eligible    int64
	SpentBudget float64
	// Duration is the query wall time.
	Duration time.Duration
}

// Select runs the distributed greedy loop for k seeds — the plain top-k
// query. onSeed, when non-nil, is called after each seed is committed (the
// streaming hook); gains reported there are as-of selection time and may
// be restated in the final result if a failover intervened.
func (rt *Router) Select(k int, onSeed func(i int, v graph.Vertex, gain int64)) (*SelectResult, error) {
	return rt.SelectQuery(RouterQuery{K: k}, onSeed)
}

// SelectQuery runs any routed query shape: plain, budgeted, targeted
// (audience), blocked, or combinations. The merged-counter greedy is
// byte-identical to imm.SelectQuerySketch over the union of the shards'
// samples — audience filtering and blocked purging happen shard-side,
// while the budgeted ratio argmax runs router-side over the merged counts
// exactly as the single-process loop runs it over its counters. Failover
// replays restart the audience-filtered sessions and re-purge the blocked
// set before replaying committed seeds, so the degraded result is the
// survivors' exact answer.
func (rt *Router) SelectQuery(q RouterQuery, onSeed func(i int, v graph.Vertex, gain int64)) (*SelectResult, error) {
	start := time.Now()
	n := rt.canon.NumVertices
	if q.K < 1 || q.K > rt.canon.KMax {
		return nil, fmt.Errorf("cluster: k = %d, want 1 <= k <= kMax = %d", q.K, rt.canon.KMax)
	}
	iq := q.asImm()
	if err := iq.Validate(n); err != nil {
		return nil, err
	}
	alive := rt.alive()
	if len(alive) == 0 {
		return nil, ErrNoShards
	}
	rt.mQueries.Inc()

	var costs []float64
	if iq.Budgeted() {
		costs = q.Costs
		if costs == nil {
			costs = make([]float64, n)
			for i := range costs {
				costs[i] = 1
			}
		}
	}

	chosen := make([]bool, n)
	seeds := make([]graph.Vertex, 0, q.K)
	gains := make([]int64, 0, q.K)
	var coveredCount, eligible int64
	var spent float64
	rounds := 0
	var counter []int64
	var session uint64

	// establish opens fresh sessions on the slots and rebuilds the
	// committed query state: the audience-filtered (or plain) merged
	// counter, the blocked purges, then the chosen seeds in order with
	// gains and coverage restated. Used for the initial setup and after
	// every failover; loops internally until a whole replay survives.
	establish := func(slots []int) ([]int, error) {
		for {
			if len(slots) == 0 {
				return nil, ErrNoShards
			}
			session = rt.nextSession.Add(1)
			var err error
			counter, eligible, slots, err = rt.startQueryRound(session, slots, q.Audience)
			if err != nil {
				return nil, err
			}
			coveredCount = 0
			ok := true
			replay := func(v graph.Vertex) bool {
				rounds++
				rt.mRounds.Inc()
				decs, failedNow := rt.purgeRound(session, slots, v)
				if len(failedNow) > 0 {
					rt.mFailovers.Inc()
					rt.markFailed(failedNow)
					slots = subtract(slots, failedNow)
					return false
				}
				applyDecs(counter, decs)
				return true
			}
			for _, b := range q.Blocked {
				chosen[b] = true
				if counter[b] == 0 {
					continue
				}
				if ok = replay(b); !ok {
					break
				}
			}
			if ok {
				for i, s := range seeds {
					gains[i] = counter[s]
					coveredCount += counter[s]
					if ok = replay(s); !ok {
						break
					}
				}
			}
			if ok {
				return slots, nil
			}
		}
	}
	var err error
	if alive, err = establish(alive); err != nil {
		return nil, err
	}

	for len(seeds) < q.K {
		// Identical argmax as the single-process loop: ascending scan with
		// strictly-better replacement, so ties break to the lowest vertex;
		// budgeted queries rank by (gain/cost, gain, vertex) over the
		// affordable candidates (imm's ratioBetter order).
		best, arg := int64(-1), -1
		if costs == nil {
			for v := 0; v < n; v++ {
				if !chosen[v] && counter[v] > best {
					best, arg = counter[v], v
				}
			}
		} else {
			bestR := 0.0
			for v := 0; v < n; v++ {
				if chosen[v] || spent+costs[v] > q.Budget {
					continue
				}
				g := counter[v]
				r := float64(g) / costs[v]
				if arg < 0 || r > bestR || (r == bestR && g > best) {
					bestR, best, arg = r, g, v
				}
			}
		}
		if arg < 0 {
			break
		}
		v := graph.Vertex(arg)
		seeds = append(seeds, v)
		gains = append(gains, counter[arg])
		chosen[arg] = true
		coveredCount += counter[arg]
		if costs != nil {
			spent += costs[arg]
		}
		if onSeed != nil {
			onSeed(len(seeds)-1, v, counter[arg])
		}

		rounds++
		rt.mRounds.Inc()
		decs, failedNow := rt.purgeRound(session, alive, v)
		if len(failedNow) == 0 {
			applyDecs(counter, decs)
			continue
		}

		// Failover: drop the failed shards and rebuild the full query
		// state on the survivors (fresh filtered sessions, blocked
		// re-purged, committed seeds replayed), then continue greedily.
		rt.mFailovers.Inc()
		rt.markFailed(failedNow)
		alive = subtract(alive, failedNow)
		if alive, err = establish(alive); err != nil {
			if err == ErrNoShards {
				return nil, fmt.Errorf("cluster: every shard failed mid-query (last: shard %d)", failedNow[len(failedNow)-1])
			}
			return nil, err
		}
	}
	rt.endRound(session, alive)

	var totalSamples int64
	rt.mu.Lock()
	for _, slot := range alive {
		totalSamples += int64(rt.info[slot].Samples)
	}
	epochs := make([]uint64, len(rt.conns))
	for i := range rt.conns {
		epochs[i] = rt.info[i].Epoch
	}
	rt.mu.Unlock()
	failedSlots := rt.FailedShards()
	sort.Ints(failedSlots)
	if len(failedSlots) > 0 {
		rt.mDegraded.Inc()
	}
	if len(q.Audience) == 0 {
		eligible = totalSamples
	}

	res := &SelectResult{
		Seeds:        seeds,
		Gains:        gains,
		Theta:        rt.canon.Theta,
		TotalSamples: totalSamples,
		Shards:       len(rt.conns),
		FailedShards: failedSlots,
		Degraded:     len(failedSlots) > 0,
		ShardEpochs:  epochs,
		Rounds:       rounds,
		Eligible:     eligible,
		SpentBudget:  spent,
		Duration:     time.Since(start),
	}
	if totalSamples > 0 {
		res.CoverageFraction = float64(coveredCount) / float64(totalSamples)
	}
	res.EstimatedSpread = res.CoverageFraction * float64(n)
	rt.mLatency.Observe(res.Duration.Microseconds())
	return res, nil
}

// startQueryRound opens session on every slot in parallel — plain or
// audience-filtered — and merges the shards' coverage counts plus the
// fleet-wide eligible sample total (0 when unfiltered; the caller
// substitutes the participating sample count). Transport failures mark
// and drop the slot like startRound; an in-band shard error (say, a
// header-v1 snapshot without the root column refusing a filtered start)
// aborts the query instead — the shard is healthy and its replicas would
// all refuse alike, so failover would only erase the fleet.
func (rt *Router) startQueryRound(session uint64, slots []int, audience []graph.Vertex) ([]int64, int64, []int, error) {
	if len(audience) == 0 {
		counter, live, err := rt.startRound(session, slots)
		return counter, 0, live, err
	}
	counts := make([][]int64, len(slots))
	eligs := make([]int64, len(slots))
	errs := make([]error, len(slots))
	var wg sync.WaitGroup
	for i, slot := range slots {
		wg.Add(1)
		go func(i, slot int) {
			defer wg.Done()
			var err error
			counts[i], eligs[i], err = rt.conns[slot].StartFiltered(session, audience)
			if err == nil && len(counts[i]) != rt.canon.NumVertices {
				err = failedErr(slot, fmt.Errorf("cluster: shard %d returned %d counts, want %d", slot, len(counts[i]), rt.canon.NumVertices))
			}
			errs[i] = err
		}(i, slot)
	}
	wg.Wait()
	var failedNow []int
	for i, err := range errs {
		if err == nil {
			continue
		}
		var rf *mpi.RankFailedError
		if !errors.As(err, &rf) {
			return nil, 0, nil, err
		}
		failedNow = append(failedNow, slots[i])
		counts[i] = nil
	}
	if len(failedNow) > 0 {
		rt.markFailed(failedNow)
		slots = subtract(slots, failedNow)
	}
	if len(slots) == 0 {
		return nil, 0, nil, ErrNoShards
	}
	merged := make([]int64, rt.canon.NumVertices)
	var eligible int64
	for i, c := range counts {
		if c == nil {
			continue
		}
		eligible += eligs[i]
		for v, x := range c {
			merged[v] += x
		}
	}
	return merged, eligible, slots, nil
}

// SpreadResult is one routed spread estimate's outcome.
type SpreadResult struct {
	// Covered is how many participating samples the seed set covers;
	// Eligible how many pass the audience filter (all participating
	// samples without one).
	Covered  int64
	Eligible int64
	// Theta is the fleet's sample count; TotalSamples the samples actually
	// participating (smaller when shards are down).
	Theta        int64
	TotalSamples int64
	// CoverageFraction is Covered/TotalSamples; EstimatedSpread is
	// n * CoverageFraction — with an audience, the expected number of
	// audience members influenced.
	CoverageFraction float64
	EstimatedSpread  float64
	// Shards/FailedShards/Degraded mirror SelectResult.
	Shards       int
	FailedShards []int
	Degraded     bool
	// Duration is the query wall time.
	Duration time.Duration
}

// Spread estimates the influence of a caller-supplied seed set over the
// fleet's samples — the routed face of imm.CoverageOf. It is stateless
// (no session): each shard counts its covered and eligible samples and
// the router sums, so the estimate is byte-identical to a single process
// holding the union of the shards' samples. audience may be empty
// (unrestricted).
func (rt *Router) Spread(seeds, audience []graph.Vertex) (*SpreadResult, error) {
	start := time.Now()
	n := rt.canon.NumVertices
	if len(seeds) == 0 {
		return nil, errors.New("cluster: spread needs at least one seed")
	}
	for _, v := range seeds {
		if int(v) >= n {
			return nil, fmt.Errorf("cluster: seed vertex %d out of range (n = %d)", v, n)
		}
	}
	for _, v := range audience {
		if int(v) >= n {
			return nil, fmt.Errorf("cluster: audience vertex %d out of range (n = %d)", v, n)
		}
	}
	alive := rt.alive()
	if len(alive) == 0 {
		return nil, ErrNoShards
	}
	rt.mQueries.Inc()
	covs := make([]int64, len(alive))
	eligs := make([]int64, len(alive))
	errs := make([]error, len(alive))
	var wg sync.WaitGroup
	for i, slot := range alive {
		wg.Add(1)
		go func(i, slot int) {
			defer wg.Done()
			covs[i], eligs[i], errs[i] = rt.conns[slot].Spread(seeds, audience)
		}(i, slot)
	}
	wg.Wait()
	var failedNow []int
	var covered, eligible int64
	for i, err := range errs {
		if err == nil {
			covered += covs[i]
			eligible += eligs[i]
			continue
		}
		var rf *mpi.RankFailedError
		if !errors.As(err, &rf) {
			return nil, err
		}
		failedNow = append(failedNow, alive[i])
	}
	if len(failedNow) > 0 {
		rt.markFailed(failedNow)
		alive = subtract(alive, failedNow)
	}
	if len(alive) == 0 {
		return nil, ErrNoShards
	}

	var totalSamples int64
	rt.mu.Lock()
	for _, slot := range alive {
		totalSamples += int64(rt.info[slot].Samples)
	}
	rt.mu.Unlock()
	failedSlots := rt.FailedShards()
	sort.Ints(failedSlots)
	if len(failedSlots) > 0 {
		rt.mDegraded.Inc()
	}

	res := &SpreadResult{
		Covered:      covered,
		Eligible:     eligible,
		Theta:        rt.canon.Theta,
		TotalSamples: totalSamples,
		Shards:       len(rt.conns),
		FailedShards: failedSlots,
		Degraded:     len(failedSlots) > 0,
		Duration:     time.Since(start),
	}
	if totalSamples > 0 {
		res.CoverageFraction = float64(covered) / float64(totalSamples)
	}
	res.EstimatedSpread = res.CoverageFraction * float64(n)
	rt.mLatency.Observe(res.Duration.Microseconds())
	return res, nil
}

// startRound opens session on every slot in parallel and merges the
// shards' coverage counts. Slots that fail are marked and dropped; an
// error comes back only when nobody survives.
func (rt *Router) startRound(session uint64, slots []int) ([]int64, []int, error) {
	counts := make([][]int64, len(slots))
	failedNow := rt.fanout(slots, func(i, slot int) error {
		var err error
		counts[i], err = rt.conns[slot].Start(session)
		if err == nil && len(counts[i]) != rt.canon.NumVertices {
			err = fmt.Errorf("cluster: shard %d returned %d counts, want %d", slot, len(counts[i]), rt.canon.NumVertices)
		}
		return err
	})
	if len(failedNow) > 0 {
		rt.markFailed(failedNow)
		slots = subtract(slots, failedNow)
	}
	if len(slots) == 0 {
		return nil, nil, ErrNoShards
	}
	merged := make([]int64, rt.canon.NumVertices)
	for _, c := range counts {
		if c == nil {
			continue
		}
		for v, x := range c {
			merged[v] += x
		}
	}
	return merged, slots, nil
}

// purgeRound purges v on every slot in parallel, returning the per-slot
// sparse decrements and the slots that failed this round.
func (rt *Router) purgeRound(session uint64, slots []int, v graph.Vertex) ([][]DecPair, []int) {
	decs := make([][]DecPair, len(slots))
	failedNow := rt.fanout(slots, func(i, slot int) error {
		var err error
		decs[i], err = rt.conns[slot].Purge(session, v)
		return err
	})
	return decs, failedNow
}

// endRound closes the sessions, best-effort.
func (rt *Router) endRound(session uint64, slots []int) {
	rt.fanout(slots, func(i, slot int) error {
		rt.conns[slot].End(session)
		return nil
	})
}

// fanout runs f(i, slot) concurrently over slots and returns the slots
// whose call failed, in slots order (deterministic for a given failure
// set).
func (rt *Router) fanout(slots []int, f func(i, slot int) error) []int {
	errs := make([]error, len(slots))
	var wg sync.WaitGroup
	for i, slot := range slots {
		wg.Add(1)
		go func(i, slot int) {
			defer wg.Done()
			errs[i] = f(i, slot)
		}(i, slot)
	}
	wg.Wait()
	var failed []int
	for i, err := range errs {
		if err != nil {
			failed = append(failed, slots[i])
		}
	}
	return failed
}

// applyDecs subtracts every shard's sparse decrements from the merged
// counter — addition, so arrival order is irrelevant.
func applyDecs(counter []int64, decs [][]DecPair) {
	for _, ds := range decs {
		for _, p := range ds {
			counter[p.V] -= int64(p.Dec)
		}
	}
}

// subtract returns slots minus drop, preserving order.
func subtract(slots, drop []int) []int {
	out := slots[:0:len(slots)]
	for _, s := range slots {
		dead := false
		for _, d := range drop {
			if s == d {
				dead = true
				break
			}
		}
		if !dead {
			out = append(out, s)
		}
	}
	return out
}
