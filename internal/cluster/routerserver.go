package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"influmax/internal/graph"
	"influmax/internal/metrics"
	"influmax/internal/trace"
)

// RouterServerConfig configures the router's HTTP front.
type RouterServerConfig struct {
	// MaxConcurrent bounds queries executing at once (<= 0: 4); MaxQueue
	// bounds queries waiting past that before 429s (<= 0: 16).
	MaxConcurrent int
	MaxQueue      int
	// RetryAfter is the hint stamped on 429/503 responses (<= 0: 1s).
	RetryAfter time.Duration
}

// RouterServer is the HTTP front of a Router: POST /v1/seeds (JSON, with
// an NDJSON streaming mode for partial results), GET /healthz, GET
// /v1/metrics — the same surface shape as a single immserve, so clients
// move from one replica to a fleet by changing the address.
type RouterServer struct {
	rt  *Router
	cfg RouterServerConfig
	reg *metrics.Registry

	admitLimit int64
	admitted   atomic.Int64
	running    chan struct{}
	draining   atomic.Bool

	mux     *http.ServeMux
	httpSrv *http.Server

	mRejected *metrics.Counter
}

// NewRouterServer wraps rt; the router's metrics registry doubles as the
// server's.
func NewRouterServer(rt *Router, cfg RouterServerConfig) *RouterServer {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 16
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &RouterServer{
		rt:         rt,
		cfg:        cfg,
		reg:        rt.reg,
		admitLimit: int64(cfg.MaxConcurrent + cfg.MaxQueue),
		running:    make(chan struct{}, cfg.MaxConcurrent),
		mRejected:  rt.reg.Counter("router/rejected"),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/seeds", s.handleSeeds)
	s.mux.HandleFunc("POST /v1/spread", s.handleSpread)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return s
}

// Handler returns the router's HTTP handler.
func (s *RouterServer) Handler() http.Handler { return s.mux }

// Start listens on addr and serves until Shutdown.
func (s *RouterServer) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.httpSrv = &http.Server{Handler: s.mux}
	go s.httpSrv.Serve(ln)
	return ln.Addr(), nil
}

// Shutdown drains: health flips to 503, in-flight queries finish bounded
// by ctx.
func (s *RouterServer) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.httpSrv != nil {
		return s.httpSrv.Shutdown(ctx)
	}
	for s.admitted.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// Report assembles the router's RunReport: fleet shape, per-shard
// sub-reports (the PerRank slots), and the metrics snapshot. Flushed by
// cmd/immrouter on shutdown — the CI cluster-smoke artifact.
func (s *RouterServer) Report() *metrics.RunReport {
	rep := metrics.NewRunReport("IMMrouter", trace.Times{})
	canon := s.rt.Fleet()
	rep.K = canon.KMax
	rep.Epsilon = canon.Epsilon
	rep.Seed = canon.Seed
	rep.Theta = canon.Theta
	rep.Ranks = s.rt.Shards()
	s.rt.mu.Lock()
	var total int64
	for i := range s.rt.conns {
		rr := metrics.RankReport{Rank: i, LocalSamples: int64(s.rt.info[i].Samples)}
		if s.rt.failed[i] {
			rr.Comm = map[string]int64{"cluster/failed": 1}
		}
		total += rr.LocalSamples
		rep.PerRank = append(rep.PerRank, rr)
	}
	s.rt.mu.Unlock()
	rep.SamplesGenerated = total
	rep.Metrics = s.reg.Snapshot()
	return rep
}

// routerSeedsRequest is the POST /v1/seeds body; Stream selects NDJSON
// partial-result streaming. The query-diversity fields (DESIGN.md §17)
// are all optional — absent, the request is the classic top-k and the
// response is unchanged from earlier releases.
type routerSeedsRequest struct {
	K      int  `json:"k"`
	Stream bool `json:"stream,omitempty"`
	// Costs (per-vertex, length n) and Budget select cost-aware greedy;
	// Budget alone implies unit costs.
	Costs  []float64 `json:"costs,omitempty"`
	Budget float64   `json:"budget,omitempty"`
	// Audience restricts coverage to samples rooted in it (targeted
	// influence); Blocked excludes a rival's seeds and their coverage.
	Audience []graph.Vertex `json:"audience,omitempty"`
	Blocked  []graph.Vertex `json:"blocked,omitempty"`
}

// routerSeedsResponse is the non-streaming reply, and the final line of a
// streaming one.
type routerSeedsResponse struct {
	K                int            `json:"k"`
	KMax             int            `json:"kMax"`
	Seeds            []graph.Vertex `json:"seeds"`
	Gains            []int64        `json:"gains,omitempty"`
	CoverageFraction float64        `json:"coverageFraction"`
	EstimatedSpread  float64        `json:"estimatedSpread"`
	Theta            int64          `json:"theta"`
	TotalSamples     int64          `json:"totalSamples"`
	Shards           int            `json:"shards"`
	Degraded         bool           `json:"degraded"`
	FailedShards     []int          `json:"failedShards"`
	ShardEpochs      []uint64       `json:"shardEpochs"`
	Rounds           int            `json:"rounds"`
	// Query-diversity extras, present only on non-plain queries so classic
	// top-k responses keep their exact historical shape.
	Eligible    int64   `json:"eligible,omitempty"`
	SpentBudget float64 `json:"spentBudget,omitempty"`
}

// routerSpreadRequest is the POST /v1/spread body: estimate the influence
// of a caller-supplied seed set, optionally restricted to an audience.
type routerSpreadRequest struct {
	Seeds    []graph.Vertex `json:"seeds"`
	Audience []graph.Vertex `json:"audience,omitempty"`
}

// routerSpreadResponse is the POST /v1/spread reply.
type routerSpreadResponse struct {
	Covered          int64   `json:"covered"`
	Eligible         int64   `json:"eligible"`
	CoverageFraction float64 `json:"coverageFraction"`
	EstimatedSpread  float64 `json:"estimatedSpread"`
	Theta            int64   `json:"theta"`
	TotalSamples     int64   `json:"totalSamples"`
	Shards           int     `json:"shards"`
	Degraded         bool    `json:"degraded"`
	FailedShards     []int   `json:"failedShards"`
}

// streamedSeed is one NDJSON partial-result line: a seed the greedy loop
// just committed.
type streamedSeed struct {
	Index int          `json:"index"`
	Seed  graph.Vertex `json:"seed"`
	Gain  int64        `json:"gain"`
}

type routerError struct {
	Error string `json:"error"`
}

func (s *RouterServer) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *RouterServer) writeBackoff(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	s.writeJSON(w, status, routerError{Error: fmt.Sprintf(format, args...)})
}

func (s *RouterServer) handleSeeds(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeBackoff(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if s.admitted.Add(1) > s.admitLimit {
		s.admitted.Add(-1)
		s.mRejected.Inc()
		s.writeBackoff(w, http.StatusTooManyRequests,
			"saturated: %d queries admitted (limit %d running + %d queued)",
			s.admitLimit, s.cfg.MaxConcurrent, s.cfg.MaxQueue)
		return
	}
	defer s.admitted.Add(-1)

	var req routerSeedsRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, routerError{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if req.K < 1 || req.K > s.rt.Fleet().KMax {
		s.writeJSON(w, http.StatusBadRequest, routerError{
			Error: fmt.Sprintf("k = %d, want 1 <= k <= kMax = %d", req.K, s.rt.Fleet().KMax)})
		return
	}
	q := RouterQuery{K: req.K, Costs: req.Costs, Budget: req.Budget,
		Audience: req.Audience, Blocked: req.Blocked}
	if !q.Plain() {
		if err := q.asImm().Validate(s.rt.Fleet().NumVertices); err != nil {
			s.writeJSON(w, http.StatusBadRequest, routerError{Error: err.Error()})
			return
		}
	}
	select {
	case s.running <- struct{}{}:
		defer func() { <-s.running }()
	case <-r.Context().Done():
		s.writeBackoff(w, http.StatusServiceUnavailable, "queue wait exceeded: %v", r.Context().Err())
		return
	}

	var onSeed func(i int, v graph.Vertex, gain int64)
	var enc *json.Encoder
	if req.Stream {
		// NDJSON: one line per committed seed as the greedy loop runs,
		// then the full summary as the final line. Lines are flushed so a
		// client sees seeds as they are chosen; gains on seed lines are
		// as-of selection and may be restated by the summary after a
		// failover.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc = json.NewEncoder(w)
		flusher, _ := w.(http.Flusher)
		onSeed = func(i int, v graph.Vertex, gain int64) {
			enc.Encode(streamedSeed{Index: i, Seed: v, Gain: gain})
			if flusher != nil {
				flusher.Flush()
			}
		}
	}

	res, err := s.rt.SelectQuery(q, onSeed)
	if err != nil {
		if req.Stream {
			enc.Encode(routerError{Error: err.Error()})
			return
		}
		status := http.StatusInternalServerError
		if err == ErrNoShards {
			status = http.StatusServiceUnavailable
		}
		s.writeJSON(w, status, routerError{Error: err.Error()})
		return
	}
	resp := routerSeedsResponse{
		K:                req.K,
		KMax:             s.rt.Fleet().KMax,
		Seeds:            res.Seeds,
		Gains:            res.Gains,
		CoverageFraction: res.CoverageFraction,
		EstimatedSpread:  res.EstimatedSpread,
		Theta:            res.Theta,
		TotalSamples:     res.TotalSamples,
		Shards:           res.Shards,
		Degraded:         res.Degraded,
		FailedShards:     append([]int{}, res.FailedShards...),
		ShardEpochs:      res.ShardEpochs,
		Rounds:           res.Rounds,
	}
	if !q.Plain() {
		resp.Eligible = res.Eligible
		resp.SpentBudget = res.SpentBudget
	}
	if req.Stream {
		enc.Encode(resp)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleSpread serves POST /v1/spread: the routed seed-set spread
// estimate, under the same admission control as /v1/seeds.
func (s *RouterServer) handleSpread(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeBackoff(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if s.admitted.Add(1) > s.admitLimit {
		s.admitted.Add(-1)
		s.mRejected.Inc()
		s.writeBackoff(w, http.StatusTooManyRequests,
			"saturated: %d queries admitted (limit %d running + %d queued)",
			s.admitLimit, s.cfg.MaxConcurrent, s.cfg.MaxQueue)
		return
	}
	defer s.admitted.Add(-1)

	var req routerSpreadRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, routerError{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	n := s.rt.Fleet().NumVertices
	if len(req.Seeds) == 0 {
		s.writeJSON(w, http.StatusBadRequest, routerError{Error: "spread needs at least one seed"})
		return
	}
	for _, v := range append(append([]graph.Vertex{}, req.Seeds...), req.Audience...) {
		if int(v) >= n {
			s.writeJSON(w, http.StatusBadRequest, routerError{
				Error: fmt.Sprintf("vertex %d out of range (n = %d)", v, n)})
			return
		}
	}
	select {
	case s.running <- struct{}{}:
		defer func() { <-s.running }()
	case <-r.Context().Done():
		s.writeBackoff(w, http.StatusServiceUnavailable, "queue wait exceeded: %v", r.Context().Err())
		return
	}

	res, err := s.rt.Spread(req.Seeds, req.Audience)
	if err != nil {
		status := http.StatusInternalServerError
		if err == ErrNoShards {
			status = http.StatusServiceUnavailable
		}
		s.writeJSON(w, status, routerError{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, routerSpreadResponse{
		Covered:          res.Covered,
		Eligible:         res.Eligible,
		CoverageFraction: res.CoverageFraction,
		EstimatedSpread:  res.EstimatedSpread,
		Theta:            res.Theta,
		TotalSamples:     res.TotalSamples,
		Shards:           res.Shards,
		Degraded:         res.Degraded,
		FailedShards:     append([]int{}, res.FailedShards...),
	})
}

// handleHealthz: 200 while at least one shard is alive and not draining;
// 503 otherwise. The body carries the alive/fleet split either way.
func (s *RouterServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	failed := s.rt.FailedShards()
	alive := s.rt.Shards() - len(failed)
	status := http.StatusOK
	state := "ok"
	switch {
	case s.draining.Load():
		status, state = http.StatusServiceUnavailable, "draining"
	case alive == 0:
		status, state = http.StatusServiceUnavailable, "no shards"
	case len(failed) > 0:
		state = "degraded"
	}
	s.writeJSON(w, status, map[string]any{
		"status": state, "shards": s.rt.Shards(), "alive": alive, "failedShards": failed,
	})
}

func (s *RouterServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	if snap == nil {
		snap = &metrics.Snapshot{}
	}
	s.writeJSON(w, http.StatusOK, snap)
}
