package cluster

import (
	"fmt"
	"sync"

	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/rrr"
)

// maxSessions bounds concurrently open greedy sessions per shard; past it
// the oldest session is evicted (its router sees an unknown-session error
// and treats the shard as failed for that query, never a hang).
const maxSessions = 64

// Shard is one replica's slice of the theta RRR samples, query-ready: the
// byte-coded collection, its inverted incidence index, and the sketch
// configuration it was sampled under. The sample slice is exactly what
// rank ShardIdx of an internal/dist run over ShardCount ranks holds, so
// the union over a full fleet is the single-process sample set (PerSample
// RNG mode makes sample i a pure function of (seed, i)).
//
// A Shard serves any number of concurrent greedy sessions; each session
// carries only a covered bitset over the local samples. All mutating
// calls are serialized on an internal mutex — the per-operation work is
// proportional to the purge, not the store.
type Shard struct {
	// Meta is the sketch configuration (graph digest, model, epsilon,
	// kMax, seed, theta) shared by every shard of the fleet.
	Meta rrr.SnapshotMeta
	// Col holds this shard's samples; Idx is its inverted incidence.
	Col *rrr.CodedCollection
	Idx *rrr.Index
	// ShardIdx/ShardCount place this shard in the fleet's partition.
	ShardIdx   int
	ShardCount int
	// Epoch counts the mutation batches folded into this shard (zero for
	// static sketches). The router refuses to merge counts across shards
	// at different epochs.
	Epoch uint64
	// Roots maps each local sample to its root vertex (re-derived from
	// the global sample ids via imm.RootAt at build time, persisted in
	// shard-snapshot header v2). Required only by the audience-filtered
	// ops; nil — e.g. a v1 snapshot — makes those ops answer an in-band
	// error while everything else keeps serving.
	Roots []graph.Vertex

	mu       sync.Mutex
	sessions map[uint64]*session
	seq      uint64
	// Purge scratch, guarded by mu: dense decrement accumulator plus the
	// touched-vertex list that sparsifies it, and a member decode buffer.
	dec     []uint32
	touched []graph.Vertex
	members []graph.Vertex
}

// session is one greedy selection in flight: which local samples the
// chosen seeds have covered so far.
type session struct {
	seq     uint64
	covered rrr.Bitset
}

// NewShard assembles a query-ready shard. idx may be nil, in which case
// the incidence index is rebuilt with p workers.
func NewShard(meta rrr.SnapshotMeta, col *rrr.CodedCollection, idx *rrr.Index, shardIdx, shardCount int, epoch uint64, p int) (*Shard, error) {
	if col == nil {
		return nil, fmt.Errorf("cluster: shard needs a sample collection")
	}
	if shardCount < 1 || shardIdx < 0 || shardIdx >= shardCount {
		return nil, fmt.Errorf("cluster: shard index %d out of [0, %d)", shardIdx, shardCount)
	}
	if idx == nil {
		idx = rrr.BuildIndexCoded(col, p)
	}
	return &Shard{
		Meta: meta, Col: col, Idx: idx,
		ShardIdx: shardIdx, ShardCount: shardCount, Epoch: epoch,
		sessions: make(map[uint64]*session),
		dec:      make([]uint32, col.NumVertices()),
	}, nil
}

// Info reports the shard's identity and configuration.
func (sh *Shard) Info() ShardInfo {
	return ShardInfo{
		ShardIdx:    sh.ShardIdx,
		ShardCount:  sh.ShardCount,
		Epoch:       sh.Epoch,
		Samples:     sh.Col.Count(),
		NumVertices: sh.Col.NumVertices(),
		GraphDigest: sh.Meta.GraphDigest,
		Model:       sh.Meta.Model,
		Epsilon:     sh.Meta.Epsilon,
		KMax:        sh.Meta.KMax,
		Seed:        sh.Meta.Seed,
		Theta:       sh.Meta.Theta,
	}
}

// Start opens greedy session id (replacing any session already under that
// id) and returns this shard's per-vertex sample membership counts — the
// local summand of the fleet-merged coverage counter, read straight off
// the index degree column as in dist.selectSeedsIndexed.
func (sh *Shard) Start(id uint64) []int64 {
	n := sh.Col.NumVertices()
	counts := make([]int64, n)
	for v := 0; v < n; v++ {
		counts[v] = sh.Idx.Degree(graph.Vertex(v))
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.seq++
	sh.sessions[id] = &session{seq: sh.seq, covered: rrr.NewBitset(sh.Col.Count())}
	if len(sh.sessions) > maxSessions {
		var oldID uint64
		oldSeq := sh.seq + 1
		for sid, s := range sh.sessions {
			if s.seq < oldSeq {
				oldSeq, oldID = s.seq, sid
			}
		}
		delete(sh.sessions, oldID)
	}
	return counts
}

// Purge marks seed v's still-uncovered local samples covered and returns
// the sparse per-vertex decrements those samples contribute — the local
// summand of the round's merged decrement vector. Decrements are emitted
// in first-touch order; the merge is a sum, so order never matters.
func (sh *Shard) Purge(id uint64, v graph.Vertex) ([]DecPair, error) {
	if int(v) >= sh.Col.NumVertices() {
		return nil, fmt.Errorf("cluster: purge vertex %d out of range (n = %d)", v, sh.Col.NumVertices())
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ses := sh.sessions[id]
	if ses == nil {
		return nil, fmt.Errorf("cluster: unknown session %d (evicted or never started)", id)
	}
	sh.touched = sh.touched[:0]
	for _, j := range sh.Idx.SamplesOf(v) {
		if ses.covered.Get(int(j)) {
			continue
		}
		ses.covered.Set(int(j))
		sh.members = sh.Col.AppendMembers(int(j), sh.members[:0])
		for _, u := range sh.members {
			if sh.dec[u] == 0 {
				sh.touched = append(sh.touched, u)
			}
			sh.dec[u]++
		}
	}
	pairs := make([]DecPair, len(sh.touched))
	for i, u := range sh.touched {
		pairs[i] = DecPair{V: u, Dec: sh.dec[u]}
		sh.dec[u] = 0
	}
	return pairs, nil
}

// StartFiltered opens greedy session id restricted to samples rooted in
// the audience: samples rooted elsewhere are pre-marked covered (so later
// Purge calls skip them) and the returned dense counts run over the
// eligible remainder only, whose size is returned alongside. Requires
// sample roots.
func (sh *Shard) StartFiltered(id uint64, audience []graph.Vertex) ([]int64, int64, error) {
	n := sh.Col.NumVertices()
	if len(sh.Roots) != sh.Col.Count() {
		return nil, 0, fmt.Errorf("cluster: shard %d has no sample roots (snapshot predates header v2); rebuild or re-snapshot it", sh.ShardIdx)
	}
	if len(audience) == 0 {
		return nil, 0, fmt.Errorf("cluster: filtered start with an empty audience")
	}
	inAud := make([]bool, n)
	for _, v := range audience {
		if int(v) >= n {
			return nil, 0, fmt.Errorf("cluster: audience vertex %d out of range (n = %d)", v, n)
		}
		inAud[v] = true
	}
	covered := rrr.NewBitset(sh.Col.Count())
	var eligible int64
	acc := make([]int32, n)
	for j, r := range sh.Roots {
		if !inAud[r] {
			covered.Set(j)
			continue
		}
		eligible++
		sh.Col.AccumMembers(j, acc)
	}
	counts := make([]int64, n)
	for v, c := range acc {
		counts[v] = int64(c)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.seq++
	sh.sessions[id] = &session{seq: sh.seq, covered: covered}
	if len(sh.sessions) > maxSessions {
		var oldID uint64
		oldSeq := sh.seq + 1
		for sid, s := range sh.sessions {
			if s.seq < oldSeq {
				oldSeq, oldID = s.seq, sid
			}
		}
		delete(sh.sessions, oldID)
	}
	return counts, eligible, nil
}

// Spread is the stateless spread estimate over this shard's samples: how
// many of them (optionally restricted to audience-rooted ones) the seed
// set covers. Read entirely off the incidence index; never touches a
// session.
func (sh *Shard) Spread(seeds, audience []graph.Vertex) (covered, eligible int64, err error) {
	var roots []graph.Vertex
	if len(audience) > 0 {
		if len(sh.Roots) != sh.Col.Count() {
			return 0, 0, fmt.Errorf("cluster: shard %d has no sample roots (snapshot predates header v2); rebuild or re-snapshot it", sh.ShardIdx)
		}
		roots = sh.Roots
	}
	return imm.CoverageOf(sh.Col.Count(), sh.Idx, roots, seeds, audience)
}

// End closes session id; unknown ids are a no-op (End is best-effort
// cleanup on the router side).
func (sh *Shard) End(id uint64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.sessions, id)
}

// Sessions reports the open session count (observability and tests).
func (sh *Shard) Sessions() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.sessions)
}

// handle executes one decoded wire request and encodes the reply; it is
// the single dispatch point both transports (ServeComm and the HTTP
// handler) call into.
func (sh *Shard) handle(req request) []byte {
	switch req.op {
	case opInfo:
		return encodeInfoResp(sh.Info())
	case opStart:
		return encodeCountsResp(sh.Start(req.session))
	case opPurge:
		pairs, err := sh.Purge(req.session, req.vertex)
		if err != nil {
			return encodeErrorResp(err.Error())
		}
		return encodeDecsResp(pairs)
	case opStartFiltered:
		counts, eligible, err := sh.StartFiltered(req.session, req.audience)
		if err != nil {
			return encodeErrorResp(err.Error())
		}
		return encodeFilteredCountsResp(counts, eligible)
	case opSpread:
		covered, eligible, err := sh.Spread(req.seeds, req.audience)
		if err != nil {
			return encodeErrorResp(err.Error())
		}
		return encodeSpreadResp(covered, eligible)
	case opEnd:
		sh.End(req.session)
		return encodeAckResp()
	default:
		return encodeErrorResp(fmt.Sprintf("cluster: unknown op %d", req.op))
	}
}
