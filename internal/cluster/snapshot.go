package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"

	"influmax/internal/graph"
	"influmax/internal/rrr"
)

// Shard snapshots wrap the standard v3 sketch snapshot (rrr.WriteSnapshot:
// CRC-guarded, bounded-alloc reader) in a 24-byte shard header carrying
// what SnapshotMeta cannot: the shard's place in the fleet partition and
// its mutation epoch. The payload after the header is byte-for-byte a
// normal snapshot, so all the format's guarantees (and its reader
// hardening) carry over. The same bytes travel over GET /v1/snapshot for
// peer bootstrap — net/http chunks the stream.

// shardMagic opens a shard snapshot; the trailing byte is the header
// version. v1 is the original header; v2 appends the per-sample root
// column (uint32 count + count little-endian uint32 roots) between the
// header and the sketch snapshot, powering the audience-filtered query
// ops after a warm restart. v1 snapshots still load — with Roots nil,
// those ops answer an in-band error until the shard is re-snapshotted.
var shardMagic = [8]byte{'I', 'M', 'X', 'S', 'H', 'R', 'D', 2}

// shardMagicV1 is the pre-roots header accepted on read.
var shardMagicV1 = [8]byte{'I', 'M', 'X', 'S', 'H', 'R', 'D', 1}

// WriteShardSnapshot writes sh (header v2 + root column + v3 snapshot) to
// w.
func WriteShardSnapshot(w io.Writer, sh *Shard) error {
	var hdr [24]byte
	copy(hdr[:8], shardMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], uint32(sh.ShardIdx))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(sh.ShardCount))
	binary.LittleEndian.PutUint64(hdr[16:], sh.Epoch)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	roots := make([]byte, 4+4*len(sh.Roots))
	binary.LittleEndian.PutUint32(roots, uint32(len(sh.Roots)))
	for i, r := range sh.Roots {
		binary.LittleEndian.PutUint32(roots[4+4*i:], uint32(r))
	}
	if _, err := w.Write(roots); err != nil {
		return err
	}
	return rrr.WriteSnapshot(w, sh.Meta, sh.Col, sh.Idx, nil)
}

// ReadShardSnapshot reads a shard snapshot from r. maxBytes bounds the
// inner snapshot's payload claims (<= 0 uses rrr.DefaultMaxSnapshotBytes);
// p is the worker count for an index rebuild if the snapshot carries none.
func ReadShardSnapshot(r io.Reader, maxBytes int64, p int) (*Shard, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("cluster: reading shard header: %w", err)
	}
	magic := [8]byte(hdr[:8])
	if magic != shardMagic && magic != shardMagicV1 {
		return nil, fmt.Errorf("cluster: not a shard snapshot (bad magic)")
	}
	shardIdx := int(binary.LittleEndian.Uint32(hdr[8:]))
	shardCount := int(binary.LittleEndian.Uint32(hdr[12:]))
	epoch := binary.LittleEndian.Uint64(hdr[16:])
	var roots []graph.Vertex
	if magic == shardMagic {
		budget := maxBytes
		if budget <= 0 {
			budget = rrr.DefaultMaxSnapshotBytes
		}
		var cntBuf [4]byte
		if _, err := io.ReadFull(r, cntBuf[:]); err != nil {
			return nil, fmt.Errorf("cluster: reading shard root column: %w", err)
		}
		cnt := int64(binary.LittleEndian.Uint32(cntBuf[:]))
		if 4*cnt > budget {
			return nil, fmt.Errorf("cluster: shard root column claims %d samples, past the %d-byte budget", cnt, budget)
		}
		raw := make([]byte, 4*cnt)
		if _, err := io.ReadFull(r, raw); err != nil {
			return nil, fmt.Errorf("cluster: reading shard root column: %w", err)
		}
		roots = make([]graph.Vertex, cnt)
		for i := range roots {
			roots[i] = graph.Vertex(binary.LittleEndian.Uint32(raw[4*i:]))
		}
	}
	meta, col, idx, deltas, err := rrr.ReadSnapshot(r, maxBytes)
	if err != nil {
		return nil, err
	}
	if len(deltas) > 0 {
		return nil, fmt.Errorf("cluster: shard snapshot carries a delta log; shards serve static sketches")
	}
	if roots != nil && len(roots) != col.Count() {
		return nil, fmt.Errorf("cluster: shard root column has %d entries for %d samples", len(roots), col.Count())
	}
	n := col.NumVertices()
	for _, rt := range roots {
		if int(rt) >= n {
			return nil, fmt.Errorf("cluster: shard root %d out of range (n = %d)", rt, n)
		}
	}
	sh, err := NewShard(meta, col, idx, shardIdx, shardCount, epoch, p)
	if err != nil {
		return nil, err
	}
	sh.Roots = roots
	return sh, nil
}

// SaveShardSnapshotFile persists sh at path atomically (temp + rename),
// mirroring rrr.SaveSnapshotFile.
func SaveShardSnapshotFile(path string, sh *Shard) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	bw := bufio.NewWriterSize(f, 64<<10)
	err = WriteShardSnapshot(bw, sh)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
	}
	return err
}

// LoadShardSnapshotFile reads a shard snapshot from path.
func LoadShardSnapshotFile(path string, maxBytes int64, p int) (*Shard, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadShardSnapshot(bufio.NewReaderSize(f, 64<<10), maxBytes, p)
}

// FetchShardSnapshot bootstraps a shard from a peer replica: it streams
// GET <base>/v1/snapshot (chunked by net/http) through the bounded-alloc
// snapshot reader. client may be nil for http.DefaultClient; set a
// Timeout on it to bound the transfer.
func FetchShardSnapshot(base string, client *http.Client, maxBytes int64, p int) (*Shard, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(base + "/v1/snapshot")
	if err != nil {
		return nil, fmt.Errorf("cluster: fetching shard snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("cluster: peer %s answered %s: %s", base, resp.Status, body)
	}
	return ReadShardSnapshot(bufio.NewReaderSize(resp.Body, 64<<10), maxBytes, p)
}
