// Package community implements the community-structure line of attack on
// influence maximization that the paper's related work surveys and its
// future work proposes to combine with IMM: label-propagation community
// detection, directed modularity, and the community-based seed selection
// of Halappanavar et al. (CF'16) — detect communities, allocate the seed
// budget proportionally to community size, and mine each community's seeds
// independently. Its known shortcoming, which the paper calls out ("the
// inability to include the effects of inter-community edges since the
// subgraphs are disjoint"), is measurable here against exact IMM.
package community

import (
	"fmt"
	"sort"

	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/rng"
)

// LabelPropagation detects communities on the undirected view of g (an
// edge in either direction makes two vertices neighbors) by iterative
// majority label adoption. Vertices are visited in a seeded random order
// each round; ties adopt the smallest label, so the outcome is
// deterministic for a fixed seed. Labels are normalized to the dense range
// [0, communities). maxIter bounds the rounds (10-20 suffices in
// practice).
func LabelPropagation(g *graph.Graph, maxIter int, seed uint64) []int {
	n := g.NumVertices()
	labels := make([]int, n)
	for v := range labels {
		labels[v] = v
	}
	if n == 0 {
		return labels
	}
	r := rng.New(rng.NewLCG(seed))
	counts := make(map[int]int, 16)
	for iter := 0; iter < maxIter; iter++ {
		order := r.Perm(n)
		changed := 0
		for _, vi := range order {
			v := graph.Vertex(vi)
			clear(counts)
			dsts, _ := g.OutNeighbors(v)
			for _, u := range dsts {
				counts[labels[u]]++
			}
			srcs, _ := g.InNeighbors(v)
			for _, u := range srcs {
				counts[labels[u]]++
			}
			if len(counts) == 0 {
				continue
			}
			best, bestLabel := 0, labels[vi]
			for label, c := range counts {
				if c > best || (c == best && label < bestLabel) {
					best, bestLabel = c, label
				}
			}
			if bestLabel != labels[vi] {
				labels[vi] = bestLabel
				changed++
			}
		}
		if changed == 0 {
			break
		}
	}
	return normalize(labels)
}

// normalize renames labels to 0..c-1 in order of first appearance.
func normalize(labels []int) []int {
	next := 0
	remap := make(map[int]int, 16)
	out := make([]int, len(labels))
	for i, l := range labels {
		nl, ok := remap[l]
		if !ok {
			nl = next
			remap[l] = nl
			next++
		}
		out[i] = nl
	}
	return out
}

// Count returns the number of distinct communities in a normalized
// labeling.
func Count(labels []int) int {
	maxL := -1
	for _, l := range labels {
		if l > maxL {
			maxL = l
		}
	}
	return maxL + 1
}

// Members groups vertices by community.
func Members(labels []int) [][]graph.Vertex {
	out := make([][]graph.Vertex, Count(labels))
	for v, l := range labels {
		out[l] = append(out[l], graph.Vertex(v))
	}
	return out
}

// Modularity returns the directed modularity of the labeling:
// Q = (1/m) sum_ij [A_ij - kout_i*kin_j/m] * [c_i == c_j], computed per
// community. Edge weights are ignored (topological modularity).
func Modularity(g *graph.Graph, labels []int) float64 {
	m := float64(g.NumEdges())
	if m == 0 {
		return 0
	}
	c := Count(labels)
	internal := make([]float64, c)
	outDeg := make([]float64, c)
	inDeg := make([]float64, c)
	for v := 0; v < g.NumVertices(); v++ {
		lv := labels[v]
		dsts, _ := g.OutNeighbors(graph.Vertex(v))
		outDeg[lv] += float64(len(dsts))
		inDeg[lv] += float64(g.InDegree(graph.Vertex(v)))
		for _, u := range dsts {
			if labels[u] == lv {
				internal[lv]++
			}
		}
	}
	q := 0.0
	for i := 0; i < c; i++ {
		q += internal[i]/m - (outDeg[i]/m)*(inDeg[i]/m)
	}
	return q
}

// Options configures community-based seed selection.
type Options struct {
	// K is the total seed budget.
	K int
	// IMM configures the per-community solver (K is overridden per
	// community; Workers applies within each community run).
	IMM imm.Options
	// MaxIter bounds label propagation (0 means 20).
	MaxIter int
	// MinCommunity merges communities smaller than this into a residual
	// pool solved together (0 means 2).
	MinCommunity int
}

// Result reports a community-based selection.
type Result struct {
	// Seeds is the combined seed set (original vertex ids).
	Seeds []graph.Vertex
	// Labels is the detected community labeling.
	Labels []int
	// Communities is the number of detected communities.
	Communities int
	// Allocation[i] is the number of seeds assigned to community i.
	Allocation []int
	// Modularity of the labeling.
	Modularity float64
}

// SelectSeeds runs the community-based pipeline: label propagation,
// proportional budget allocation (largest-remainder rounding), and one IMM
// run per community on its induced subgraph.
func SelectSeeds(g *graph.Graph, opt Options) (*Result, error) {
	n := g.NumVertices()
	if opt.K < 1 || opt.K > n {
		return nil, fmt.Errorf("community: k = %d out of [1, %d]", opt.K, n)
	}
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 20
	}
	minC := opt.MinCommunity
	if minC == 0 {
		minC = 2
	}
	labels := LabelPropagation(g, maxIter, opt.IMM.Seed)
	res := &Result{Labels: labels, Communities: Count(labels), Modularity: Modularity(g, labels)}

	// Group, folding tiny communities into one residual pool.
	groups := Members(labels)
	var pools [][]graph.Vertex
	var residual []graph.Vertex
	for _, members := range groups {
		if len(members) < minC {
			residual = append(residual, members...)
		} else {
			pools = append(pools, members)
		}
	}
	if len(residual) > 0 {
		pools = append(pools, residual)
	}
	// Largest pools first so allocation rounding favors them.
	sort.Slice(pools, func(i, j int) bool {
		if len(pools[i]) != len(pools[j]) {
			return len(pools[i]) > len(pools[j])
		}
		return pools[i][0] < pools[j][0]
	})

	// Proportional allocation with largest-remainder rounding, capped by
	// pool size.
	alloc := allocate(pools, opt.K, n)
	res.Allocation = alloc

	for i, members := range pools {
		k := alloc[i]
		if k == 0 {
			continue
		}
		sub, back := g.InducedSubgraph(members)
		iopt := opt.IMM
		iopt.K = k
		var seeds []graph.Vertex
		if sub.NumVertices() < 2 || k >= sub.NumVertices() {
			// Degenerate community: take the first k members directly.
			for j := 0; j < k && j < len(back); j++ {
				seeds = append(seeds, graph.Vertex(j))
			}
		} else {
			r, err := imm.Run(sub, iopt)
			if err != nil {
				return nil, fmt.Errorf("community %d: %w", i, err)
			}
			seeds = r.Seeds
		}
		for _, s := range seeds {
			res.Seeds = append(res.Seeds, back[s])
		}
	}
	return res, nil
}

// allocate distributes k seeds across pools proportionally to size with
// largest-remainder rounding, capping each pool at its cardinality and
// redistributing overflow.
func allocate(pools [][]graph.Vertex, k, n int) []int {
	c := len(pools)
	alloc := make([]int, c)
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, 0, c)
	used := 0
	for i, members := range pools {
		share := float64(k) * float64(len(members)) / float64(n)
		alloc[i] = int(share)
		if alloc[i] > len(members) {
			alloc[i] = len(members)
		}
		used += alloc[i]
		fracs = append(fracs, frac{i, share - float64(alloc[i])})
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].rem != fracs[b].rem {
			return fracs[a].rem > fracs[b].rem
		}
		return fracs[a].idx < fracs[b].idx
	})
	for used < k {
		progress := false
		for _, f := range fracs {
			if used == k {
				break
			}
			if alloc[f.idx] < len(pools[f.idx]) {
				alloc[f.idx]++
				used++
				progress = true
			}
		}
		if !progress {
			break // every pool saturated: k == n handled upstream
		}
	}
	return alloc
}
