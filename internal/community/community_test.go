package community

import (
	"slices"
	"testing"

	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/rng"
)

// twoCliques builds two directed cliques of size s bridged by one edge.
func twoCliques(s int, w float32) *graph.Graph {
	b := graph.NewBuilder(2 * s)
	for off := 0; off < 2; off++ {
		for u := 0; u < s; u++ {
			for v := 0; v < s; v++ {
				if u != v {
					b.Add(graph.Vertex(off*s+u), graph.Vertex(off*s+v), w)
				}
			}
		}
	}
	b.Add(0, graph.Vertex(s), w) // bridge
	return b.Build()
}

func TestLabelPropagationTwoCliques(t *testing.T) {
	g := twoCliques(10, 0.5)
	labels := LabelPropagation(g, 20, 1)
	if Count(labels) != 2 {
		t.Fatalf("found %d communities, want 2 (labels %v)", Count(labels), labels)
	}
	for v := 1; v < 10; v++ {
		if labels[v] != labels[0] {
			t.Fatalf("clique 1 split: %v", labels)
		}
	}
	for v := 11; v < 20; v++ {
		if labels[v] != labels[10] {
			t.Fatalf("clique 2 split: %v", labels)
		}
	}
	if labels[0] == labels[10] {
		t.Fatalf("cliques merged: %v", labels)
	}
}

func TestLabelPropagationDeterministic(t *testing.T) {
	r := rng.New(rng.NewLCG(3))
	b := graph.NewBuilder(60)
	for i := 0; i < 400; i++ {
		u, v := r.Intn(60), r.Intn(60)
		if u != v {
			b.Add(graph.Vertex(u), graph.Vertex(v), 0.5)
		}
	}
	g := b.Build()
	a := LabelPropagation(g, 15, 7)
	c := LabelPropagation(g, 15, 7)
	if !slices.Equal(a, c) {
		t.Fatal("label propagation not deterministic for a fixed seed")
	}
}

func TestNormalizeDense(t *testing.T) {
	labels := normalize([]int{7, 7, 3, 9, 3})
	want := []int{0, 0, 1, 2, 1}
	if !slices.Equal(labels, want) {
		t.Fatalf("normalize = %v, want %v", labels, want)
	}
}

func TestMembersPartition(t *testing.T) {
	labels := []int{0, 1, 0, 2, 1}
	ms := Members(labels)
	if len(ms) != 3 {
		t.Fatalf("groups = %d", len(ms))
	}
	total := 0
	for _, m := range ms {
		total += len(m)
	}
	if total != 5 {
		t.Fatalf("members lost: %d", total)
	}
	if !slices.Equal(ms[0], []graph.Vertex{0, 2}) {
		t.Fatalf("group 0 = %v", ms[0])
	}
}

func TestModularityCliquesBeatsRandomLabels(t *testing.T) {
	g := twoCliques(8, 1)
	good := LabelPropagation(g, 20, 1)
	qGood := Modularity(g, good)
	bad := make([]int, 16)
	for i := range bad {
		bad[i] = i % 2 // interleaved: cuts both cliques in half
	}
	qBad := Modularity(g, bad)
	if qGood <= qBad {
		t.Fatalf("modularity good %.3f <= bad %.3f", qGood, qBad)
	}
	if qGood < 0.3 {
		t.Fatalf("two-clique modularity %.3f implausibly low", qGood)
	}
}

func TestModularityEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(3).Build()
	if q := Modularity(g, []int{0, 0, 0}); q != 0 {
		t.Fatalf("modularity of empty graph = %v", q)
	}
}

func TestSelectSeedsCoversCommunities(t *testing.T) {
	g := twoCliques(12, 0.3)
	res, err := SelectSeeds(g, Options{
		K:   4,
		IMM: imm.Options{Epsilon: 0.5, Model: diffuse.IC, Workers: 1, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 4 {
		t.Fatalf("got %d seeds", len(res.Seeds))
	}
	// Both cliques are the same size: each must receive half the budget.
	firstHalf, secondHalf := 0, 0
	for _, s := range res.Seeds {
		if s < 12 {
			firstHalf++
		} else {
			secondHalf++
		}
	}
	if firstHalf != 2 || secondHalf != 2 {
		t.Fatalf("allocation %d/%d, want 2/2 (seeds %v)", firstHalf, secondHalf, res.Seeds)
	}
	if res.Communities != 2 || res.Modularity <= 0 {
		t.Fatalf("communities=%d modularity=%v", res.Communities, res.Modularity)
	}
	// Seeds are distinct.
	sorted := append([]graph.Vertex(nil), res.Seeds...)
	slices.Sort(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			t.Fatal("duplicate seed")
		}
	}
}

func TestSelectSeedsValidation(t *testing.T) {
	g := twoCliques(4, 0.5)
	if _, err := SelectSeeds(g, Options{K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := SelectSeeds(g, Options{K: 9}); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestSelectSeedsResidualPool(t *testing.T) {
	// A graph of isolated vertices: every community is a singleton, all
	// fold into the residual pool; selection must still return k seeds.
	g := graph.NewBuilder(10).Build()
	res, err := SelectSeeds(g, Options{
		K:   3,
		IMM: imm.Options{Epsilon: 0.5, Model: diffuse.IC, Workers: 1, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 3 {
		t.Fatalf("got %d seeds from residual pool", len(res.Seeds))
	}
}

// The paper's stated shortcoming of community-based methods: ignoring
// inter-community edges costs solution quality relative to exact IMM.
// On a graph whose influence flows across communities, community-based
// selection must not beat IMM (and typically trails it).
func TestCommunityVersusGlobalIMM(t *testing.T) {
	r := rng.New(rng.NewLCG(11))
	// Two clusters with many cross edges.
	b := graph.NewBuilder(60)
	for i := 0; i < 500; i++ {
		u, v := r.Intn(60), r.Intn(60)
		if u != v {
			b.Add(graph.Vertex(u), graph.Vertex(v), 0.08)
		}
	}
	g := b.Build()
	global, err := imm.Run(g, imm.Options{K: 5, Epsilon: 0.3, Model: diffuse.IC, Workers: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	comm, err := SelectSeeds(g, Options{
		K:   5,
		IMM: imm.Options{Epsilon: 0.3, Model: diffuse.IC, Workers: 1, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	gs, _ := diffuse.EstimateSpread(g, diffuse.IC, global.Seeds, 20000, 0, 9)
	cs, _ := diffuse.EstimateSpread(g, diffuse.IC, comm.Seeds, 20000, 0, 9)
	if cs > gs*1.02 {
		t.Fatalf("community selection (%.2f) beat exact IMM (%.2f)", cs, gs)
	}
	if cs < gs*0.5 {
		t.Fatalf("community selection (%.2f) catastrophically below IMM (%.2f)", cs, gs)
	}
}
