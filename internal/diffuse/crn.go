package diffuse

import (
	"math"

	"influmax/internal/graph"
	"influmax/internal/par"
	"influmax/internal/rng"
)

// Common-random-numbers (CRN) cascades: instead of flipping edge coins in
// traversal order, each trial fixes a live-edge subgraph as a pure function
// of (trial id, edge identity), and the spread of a seed set is its
// reachability in that fixed subgraph.
//
// This makes the per-trial spread an exact coverage function — monotone
// and submodular in the seed set — which is what the CELF lazy-greedy's
// correctness argument requires of its oracle. It is also the live-edge
// ("triggering set") view under which Kempe et al. prove submodularity of
// the expectation. Distributionally, CRN and traversal-order cascades are
// identical for a single seed set.

// crnU01 returns the uniform coin of the given identity under trial.
func crnU01(trialSeed, id uint64) float64 {
	return float64(rng.Mix64(trialSeed^(id*0x9e3779b97f4a7c15+0x632be59bd9b4e019))>>11) * (1.0 / (1 << 53))
}

// CascadeCRN runs one live-edge trial from seeds and returns the number of
// reachable (activated) vertices. Trials with the same id and simulator
// are identical regardless of the seed set, so marginal gains computed
// against a common trial set are exactly submodular.
//
// Under IC, out-edge e is live iff coin(e) < p(e). Under LT, every vertex
// selects at most one incoming edge (proportionally to its in-weights,
// using one coin per vertex); an edge is live iff its destination selected
// it.
func (s *Simulator) CascadeCRN(trial uint64, trialSeed uint64, seeds []graph.Vertex) int {
	switch s.model {
	case IC:
		return s.crnIC(mixTrial(trialSeed, trial), seeds)
	case LT:
		return s.crnLT(mixTrial(trialSeed, trial), seeds)
	}
	panic("diffuse: unknown model")
}

// mixTrial collapses (seed, trial) into one 64-bit trial key.
func mixTrial(seed, trial uint64) uint64 {
	return rng.Mix64(seed + trial*0xd1342543de82ef95)
}

func (s *Simulator) crnIC(key uint64, seeds []graph.Vertex) int {
	s.nextEpoch()
	s.queue = s.queue[:0]
	count := 0
	for _, v := range seeds {
		if s.active[v] == s.epoch {
			continue
		}
		s.active[v] = s.epoch
		s.queue = append(s.queue, v)
		count++
	}
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		dsts, ws := s.g.OutNeighbors(u)
		base := uint64(s.g.OutEdgeBase(u))
		for i, v := range dsts {
			if s.active[v] == s.epoch {
				continue
			}
			if crnU01(key, base+uint64(i)) < float64(ws[i]) {
				s.active[v] = s.epoch
				s.queue = append(s.queue, v)
				count++
			}
		}
	}
	return count
}

// crnLT computes reachability in the one-in-edge-per-vertex live graph.
// The selected in-slot of a vertex is derived lazily from its single
// per-vertex coin; an out-edge (u->v) is live iff its in-slot equals v's
// selection.
func (s *Simulator) crnLT(key uint64, seeds []graph.Vertex) int {
	s.nextEpoch()
	s.queue = s.queue[:0]
	count := 0
	for _, v := range seeds {
		if s.active[v] == s.epoch {
			continue
		}
		s.active[v] = s.epoch
		s.queue = append(s.queue, v)
		count++
	}
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		dsts, _ := s.g.OutNeighbors(u)
		inSlots := s.g.OutEdgeInSlots(u)
		for i, v := range dsts {
			if s.active[v] == s.epoch {
				continue
			}
			if s.selectedInSlot(key, v) == inSlots[i] {
				s.active[v] = s.epoch
				s.queue = append(s.queue, v)
				count++
			}
		}
	}
	return count
}

// selectedInSlot returns the global in-CSR slot of the single incoming
// edge vertex v selects under this trial, or -1 if v selects none. The
// per-vertex coin identity is offset past the edge space so IC edge coins
// and LT vertex coins never collide.
func (s *Simulator) selectedInSlot(key uint64, v graph.Vertex) int64 {
	t := crnU01(key, uint64(s.g.NumEdges())+uint64(v))
	_, ws := s.g.InNeighbors(v)
	cum := 0.0
	base := s.g.InEdgeBase(v)
	for i, w := range ws {
		cum += float64(w)
		if t < cum {
			return base + int64(i)
		}
	}
	return -1
}

// EstimateSpreadCRN estimates E[|I(S)|] with trials common-random-numbers
// cascades across workers goroutines. For a fixed (seed, trials) the
// result is a deterministic, monotone and submodular function of the seed
// set — the oracle the greedy/CELF baselines require. Returns the sample
// mean and standard error.
func EstimateSpreadCRN(g *graph.Graph, model Model, seeds []graph.Vertex, trials int, workers int, seed uint64) (mean, stderr float64) {
	if trials <= 0 {
		return 0, 0
	}
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	sums := make([]float64, workers)
	sqs := make([]float64, workers)
	par.ForEach(trials, workers, func(rank, lo, hi int) {
		sim := NewSimulator(g, model)
		for t := lo; t < hi; t++ {
			c := float64(sim.CascadeCRN(uint64(t), seed, seeds))
			sums[rank] += c
			sqs[rank] += c * c
		}
	})
	var sum, sq float64
	for i := range sums {
		sum += sums[i]
		sq += sqs[i]
	}
	mean = sum / float64(trials)
	if trials > 1 {
		variance := (sq - sum*sum/float64(trials)) / float64(trials-1)
		if variance > 0 {
			stderr = math.Sqrt(variance / float64(trials))
		}
	}
	return mean, stderr
}
