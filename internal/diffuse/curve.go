package diffuse

import (
	"influmax/internal/graph"
	"influmax/internal/par"
)

// SpreadCurve estimates E[|I(seeds[:i])|] for every prefix i = 1..len
// (the "return on investment" curve of Figure 1) in a single pass per
// Monte Carlo trial: within one common-random-numbers trial the live-edge
// subgraph is fixed, so extending the seed prefix only requires a forward
// traversal from the newly added seed over not-yet-active vertices. Total
// cost is O(trials * (n + m)) for the whole curve instead of
// O(trials * k * (n + m)) for k independent evaluations.
//
// The i-th entry of the result is the estimated spread of seeds[:i+1].
func SpreadCurve(g *graph.Graph, model Model, seeds []graph.Vertex, trials, workers int, seed uint64) []float64 {
	k := len(seeds)
	if k == 0 || trials <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	partial := make([][]float64, workers)
	par.ForEach(trials, workers, func(rank, lo, hi int) {
		sums := make([]float64, k)
		sim := NewSimulator(g, model)
		for t := lo; t < hi; t++ {
			key := mixTrial(seed, uint64(t))
			sim.nextEpoch()
			sim.queue = sim.queue[:0]
			active := 0
			for i, s := range seeds {
				// Grow the active set from the new seed only.
				if sim.active[s] != sim.epoch {
					sim.active[s] = sim.epoch
					active++
					start := len(sim.queue)
					sim.queue = append(sim.queue, s)
					active += sim.expandCRN(key, start)
				}
				sums[i] += float64(active)
			}
		}
		partial[rank] = sums
	})
	out := make([]float64, k)
	for _, sums := range partial {
		if sums == nil {
			continue
		}
		for i, s := range sums {
			out[i] += s
		}
	}
	for i := range out {
		out[i] /= float64(trials)
	}
	return out
}

// expandCRN runs the live-edge forward BFS from queue position start,
// returning the number of newly activated vertices (excluding those
// already counted when enqueued by the caller).
func (s *Simulator) expandCRN(key uint64, start int) int {
	count := 0
	for head := start; head < len(s.queue); head++ {
		u := s.queue[head]
		dsts, ws := s.g.OutNeighbors(u)
		switch s.model {
		case IC:
			base := uint64(s.g.OutEdgeBase(u))
			for i, v := range dsts {
				if s.active[v] == s.epoch {
					continue
				}
				if crnU01(key, base+uint64(i)) < float64(ws[i]) {
					s.active[v] = s.epoch
					s.queue = append(s.queue, v)
					count++
				}
			}
		case LT:
			inSlots := s.g.OutEdgeInSlots(u)
			for i, v := range dsts {
				if s.active[v] == s.epoch {
					continue
				}
				if s.selectedInSlot(key, v) == inSlots[i] {
					s.active[v] = s.epoch
					s.queue = append(s.queue, v)
					count++
				}
			}
		default:
			panic("diffuse: unknown model")
		}
	}
	return count
}
