package diffuse

import (
	"math"
	"slices"
	"testing"
	"testing/quick"

	"influmax/internal/graph"
	"influmax/internal/rng"
)

func line(n int, w float32) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.Add(graph.Vertex(i), graph.Vertex(i+1), w)
	}
	return b.Build()
}

func randomGraph(seed uint64, n, m int) *graph.Graph {
	r := rng.New(rng.NewLCG(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		b.Add(graph.Vertex(u), graph.Vertex(v), r.Float32())
	}
	return b.Build()
}

func TestModelString(t *testing.T) {
	if IC.String() != "IC" || LT.String() != "LT" {
		t.Fatal("model names wrong")
	}
	if Model(9).String() == "" {
		t.Fatal("unknown model has empty name")
	}
}

func TestParseModel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Model
		ok   bool
	}{{"IC", IC, true}, {"ic", IC, true}, {" lt ", LT, true}, {"LT", LT, true}, {"bogus", IC, false}} {
		got, err := ParseModel(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseModel(%q) = (%v, %v)", tc.in, got, err)
		}
	}
}

func TestGenerateRRContainsRootSortedUnique(t *testing.T) {
	g := randomGraph(1, 50, 400)
	g.NormalizeLT()
	for _, model := range []Model{IC, LT} {
		s := NewSampler(g, model)
		r := rng.New(rng.NewLCG(99))
		for trial := 0; trial < 200; trial++ {
			root := graph.Vertex(r.Intn(50))
			set := s.GenerateRR(r, root, nil)
			if !slices.Contains(set, root) {
				t.Fatalf("%v: RRR set misses its root", model)
			}
			if !slices.IsSorted(set) {
				t.Fatalf("%v: RRR set not sorted: %v", model, set)
			}
			for i := 1; i < len(set); i++ {
				if set[i] == set[i-1] {
					t.Fatalf("%v: duplicate vertex %d in RRR set", model, set[i])
				}
			}
		}
	}
}

func TestGenerateRRDeterministicWeightOne(t *testing.T) {
	// IC with all weights 1: the RRR set of v is exactly the set of
	// vertices with a directed path to v.
	g := line(6, 1.0)
	s := NewSampler(g, IC)
	r := rng.New(rng.NewLCG(1))
	set := s.GenerateRR(r, 4, nil)
	want := []graph.Vertex{0, 1, 2, 3, 4}
	if !slices.Equal(set, want) {
		t.Fatalf("RRR(4) = %v, want %v", set, want)
	}
}

func TestGenerateRRWeightZero(t *testing.T) {
	g := line(6, 0.0)
	for _, model := range []Model{IC, LT} {
		s := NewSampler(g, model)
		r := rng.New(rng.NewLCG(1))
		set := s.GenerateRR(r, 3, nil)
		if len(set) != 1 || set[0] != 3 {
			t.Fatalf("%v: RRR with zero weights = %v, want [3]", model, set)
		}
	}
}

func TestGenerateRRAppendsToOut(t *testing.T) {
	g := line(4, 1.0)
	s := NewSampler(g, IC)
	r := rng.New(rng.NewLCG(1))
	buf := make([]graph.Vertex, 0, 16)
	set := s.GenerateRR(r, 2, buf)
	if len(set) != 3 {
		t.Fatalf("unexpected set %v", set)
	}
}

func TestLTWalkIsPathLike(t *testing.T) {
	// In LT, each step picks at most one in-edge, so the RRR set size is
	// bounded by the walk length and the walk stops at a revisit: the set
	// can never exceed the vertex count and is typically tiny.
	g := randomGraph(3, 30, 300)
	g.NormalizeLT()
	s := NewSampler(g, LT)
	r := rng.New(rng.NewLCG(7))
	for trial := 0; trial < 500; trial++ {
		set := s.GenerateRR(r, graph.Vertex(r.Intn(30)), nil)
		if len(set) > 30 {
			t.Fatalf("LT RRR set larger than n: %d", len(set))
		}
	}
}

func TestLTSmallerThanICOnAverage(t *testing.T) {
	// The paper: "The LT model tends to produce very small RRR sets (when
	// compared to the IC model)".
	// As in the paper's setup, IC runs on the raw uniform weights while LT
	// runs on the renormalized ones.
	gic := randomGraph(4, 200, 3000)
	gic.AssignUniform(11)
	glt := randomGraph(4, 200, 3000)
	glt.AssignUniform(11)
	glt.NormalizeLT()
	r := rng.New(rng.NewLCG(5))
	sic, slt := NewSampler(gic, IC), NewSampler(glt, LT)
	var icTotal, ltTotal int
	for trial := 0; trial < 400; trial++ {
		root := graph.Vertex(r.Intn(200))
		icTotal += len(sic.GenerateRR(r, root, nil))
		ltTotal += len(slt.GenerateRR(r, root, nil))
	}
	if ltTotal >= icTotal {
		t.Fatalf("LT sets (total %d) not smaller than IC sets (total %d)", ltTotal, icTotal)
	}
}

func TestCascadeSeedsCounted(t *testing.T) {
	g := line(5, 0.0)
	for _, model := range []Model{IC, LT} {
		sim := NewSimulator(g, model)
		r := rng.New(rng.NewLCG(1))
		if got := sim.Cascade(r, []graph.Vertex{0, 2, 4}); got != 3 {
			t.Fatalf("%v: spread with zero weights = %d, want 3", model, got)
		}
	}
}

func TestCascadeDuplicateSeeds(t *testing.T) {
	g := line(5, 0.0)
	sim := NewSimulator(g, IC)
	r := rng.New(rng.NewLCG(1))
	if got := sim.Cascade(r, []graph.Vertex{1, 1, 1}); got != 1 {
		t.Fatalf("duplicate seeds counted: %d", got)
	}
}

func TestCascadeICWeightOneReachesAll(t *testing.T) {
	g := line(10, 1.0)
	sim := NewSimulator(g, IC)
	r := rng.New(rng.NewLCG(1))
	if got := sim.Cascade(r, []graph.Vertex{0}); got != 10 {
		t.Fatalf("full-weight IC cascade = %d, want 10", got)
	}
	if got := sim.Cascade(r, []graph.Vertex{5}); got != 5 {
		t.Fatalf("full-weight IC cascade from middle = %d, want 5", got)
	}
}

func TestCascadeLTWeightOneChainActivates(t *testing.T) {
	// With a single in-edge of weight 1.0 and thresholds drawn from [0,1),
	// every touched vertex activates (1.0 >= threshold always).
	g := line(10, 1.0)
	sim := NewSimulator(g, LT)
	r := rng.New(rng.NewLCG(1))
	if got := sim.Cascade(r, []graph.Vertex{0}); got != 10 {
		t.Fatalf("full-weight LT cascade = %d, want 10", got)
	}
}

func TestCascadeEpochReuse(t *testing.T) {
	// Back-to-back trials must not leak activation state.
	g := line(8, 1.0)
	sim := NewSimulator(g, IC)
	r := rng.New(rng.NewLCG(1))
	for i := 0; i < 100; i++ {
		if got := sim.Cascade(r, []graph.Vertex{4}); got != 4 {
			t.Fatalf("trial %d: spread = %d, want 4", i, got)
		}
	}
}

func TestEstimateSpreadDeterministicAcrossWorkers(t *testing.T) {
	g := randomGraph(6, 100, 800)
	seeds := []graph.Vertex{0, 7, 42}
	m1, _ := EstimateSpread(g, IC, seeds, 500, 1, 123)
	m4, _ := EstimateSpread(g, IC, seeds, 500, 4, 123)
	if m1 != m4 {
		t.Fatalf("spread estimate depends on worker count: %v vs %v", m1, m4)
	}
}

func TestEstimateSpreadZeroTrials(t *testing.T) {
	g := line(3, 1)
	mean, se := EstimateSpread(g, IC, []graph.Vertex{0}, 0, 2, 1)
	if mean != 0 || se != 0 {
		t.Fatal("zero trials should return zeros")
	}
}

func TestEstimateSpreadExactChain(t *testing.T) {
	// On the weight-1 chain, spread from vertex 0 is exactly n.
	g := line(7, 1.0)
	mean, se := EstimateSpread(g, IC, []graph.Vertex{0}, 50, 3, 9)
	if mean != 7 || se != 0 {
		t.Fatalf("deterministic spread = (%v, %v), want (7, 0)", mean, se)
	}
}

func TestEstimateSpreadProbabilityHalf(t *testing.T) {
	// Two vertices, one edge with p = 0.5: E[|I({0})|] = 1.5.
	g := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1, W: 0.5}})
	mean, _ := EstimateSpread(g, IC, []graph.Vertex{0}, 20000, 4, 77)
	if math.Abs(mean-1.5) > 0.03 {
		t.Fatalf("spread = %v, want ~1.5", mean)
	}
}

// The RIS identity (Borgs et al.): E[|I({u})|] = n * Pr[u in RR(V)], where
// the RRR root V is uniform. This ties the reverse kernels to the forward
// kernels and is the correctness foundation of the whole method; verify it
// statistically for both models.
func TestReverseForwardIdentity(t *testing.T) {
	g := randomGraph(8, 40, 200)
	g.AssignUniform(21)
	g.NormalizeLT()
	n := g.NumVertices()
	for _, model := range []Model{IC, LT} {
		const samples = 60000
		s := NewSampler(g, model)
		r := rng.New(rng.NewLCG(1234))
		contains := make([]int, n)
		for i := 0; i < samples; i++ {
			root := graph.Vertex(r.Intn(n))
			for _, u := range s.GenerateRR(r, root, nil) {
				contains[u]++
			}
		}
		// Check a handful of vertices including high-degree ones.
		for _, u := range []graph.Vertex{0, 5, 13, 27, 39} {
			risEst := float64(n) * float64(contains[u]) / samples
			fwd, se := EstimateSpread(g, model, []graph.Vertex{u}, 60000, 0, 4321)
			tol := 4*se + 0.12 // martingale noise on both sides
			if math.Abs(risEst-fwd) > tol {
				t.Errorf("%v: vertex %d: RIS estimate %.3f vs forward %.3f (tol %.3f)",
					model, u, risEst, fwd, tol)
			}
		}
	}
}

func TestCRNMatchesOrdinarySpread(t *testing.T) {
	// CRN and traversal-order cascades are distributionally identical for
	// a fixed seed set: their Monte Carlo means must agree statistically.
	g := randomGraph(20, 80, 600)
	g.NormalizeLT()
	for _, model := range []Model{IC, LT} {
		seeds := []graph.Vertex{3, 17, 42}
		crn, se1 := EstimateSpreadCRN(g, model, seeds, 30000, 0, 5)
		ord, se2 := EstimateSpread(g, model, seeds, 30000, 0, 6)
		if math.Abs(crn-ord) > 4*(se1+se2)+0.1 {
			t.Errorf("%v: CRN %.3f vs ordinary %.3f (se %.3f/%.3f)", model, crn, ord, se1, se2)
		}
	}
}

func TestCRNSubmodularAndMonotone(t *testing.T) {
	// Per fixed trial set, spread must be monotone (adding a seed never
	// hurts) and submodular (gains shrink with context) — exactly, not
	// statistically.
	g := randomGraph(21, 50, 350)
	g.NormalizeLT()
	for _, model := range []Model{IC, LT} {
		const trials = 40
		spread := func(s []graph.Vertex) float64 {
			m, _ := EstimateSpreadCRN(g, model, s, trials, 1, 9)
			return m
		}
		base := []graph.Vertex{5, 12}
		bigger := []graph.Vertex{5, 12, 30}
		for v := graph.Vertex(0); v < 50; v += 7 {
			sA := spread(append([]graph.Vertex{v}, base...))
			sB := spread(append([]graph.Vertex{v}, bigger...))
			gA := sA - spread(base)
			gB := sB - spread(bigger)
			if gA < -1e-9 {
				t.Fatalf("%v: monotonicity violated at %d: gain %v", model, v, gA)
			}
			if gB > gA+1e-9 {
				t.Fatalf("%v: submodularity violated at %d: %v > %v", model, v, gB, gA)
			}
		}
	}
}

func TestCRNDeterministic(t *testing.T) {
	g := randomGraph(22, 40, 200)
	seeds := []graph.Vertex{1, 2}
	a, _ := EstimateSpreadCRN(g, IC, seeds, 100, 1, 3)
	b, _ := EstimateSpreadCRN(g, IC, seeds, 100, 4, 3)
	if a != b {
		t.Fatalf("CRN estimate depends on workers: %v vs %v", a, b)
	}
}

func TestSpreadCurveMatchesPointEstimates(t *testing.T) {
	// Each prefix of the curve must equal an independent CRN evaluation of
	// that prefix with the same trial keys — exactly, not statistically.
	g := randomGraph(30, 60, 400)
	g.NormalizeLT()
	seeds := []graph.Vertex{3, 41, 7, 19, 55}
	for _, model := range []Model{IC, LT} {
		curve := SpreadCurve(g, model, seeds, 300, 2, 17)
		if len(curve) != len(seeds) {
			t.Fatalf("%v: curve length %d", model, len(curve))
		}
		for i := range seeds {
			point, _ := EstimateSpreadCRN(g, model, seeds[:i+1], 300, 1, 17)
			if math.Abs(curve[i]-point) > 1e-9 {
				t.Fatalf("%v: prefix %d: curve %.6f != point %.6f", model, i+1, curve[i], point)
			}
		}
	}
}

func TestSpreadCurveMonotoneAndDiminishing(t *testing.T) {
	g := randomGraph(31, 80, 500)
	seeds := []graph.Vertex{1, 2, 3, 4, 5, 6, 7, 8}
	curve := SpreadCurve(g, IC, seeds, 500, 0, 3)
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1]-1e-9 {
			t.Fatalf("curve not monotone at %d: %v", i, curve)
		}
	}
}

func TestSpreadCurveDuplicateSeeds(t *testing.T) {
	g := randomGraph(32, 30, 150)
	curve := SpreadCurve(g, IC, []graph.Vertex{5, 5, 5}, 200, 1, 9)
	if curve[0] != curve[1] || curve[1] != curve[2] {
		t.Fatalf("duplicate seeds changed the curve: %v", curve)
	}
}

func TestSpreadCurveEmpty(t *testing.T) {
	g := randomGraph(33, 10, 30)
	if got := SpreadCurve(g, IC, nil, 100, 1, 1); got != nil {
		t.Fatalf("empty seeds gave %v", got)
	}
	if got := SpreadCurve(g, IC, []graph.Vertex{1}, 0, 1, 1); got != nil {
		t.Fatalf("zero trials gave %v", got)
	}
}

func TestGenerateRRArenaAccumulation(t *testing.T) {
	// Regression test: generating into a shared arena must sort only the
	// newly appended region, leaving earlier samples intact.
	g := randomGraph(12, 30, 200)
	s := NewSampler(g, IC)
	r := rng.New(rng.NewLCG(3))
	var arena []graph.Vertex
	var bounds []int
	bounds = append(bounds, 0)
	for i := 0; i < 20; i++ {
		arena = s.GenerateRR(r, graph.Vertex(r.Intn(30)), arena)
		bounds = append(bounds, len(arena))
	}
	for i := 0; i < 20; i++ {
		sample := arena[bounds[i]:bounds[i+1]]
		if !slices.IsSorted(sample) {
			t.Fatalf("sample %d corrupted: %v", i, sample)
		}
		for j := 1; j < len(sample); j++ {
			if sample[j] == sample[j-1] {
				t.Fatalf("sample %d has duplicates after arena reuse", i)
			}
		}
	}
}

func TestSamplerEpochWraparound(t *testing.T) {
	// Force the epoch counter over the uint32 wrap to confirm the visited
	// array resets correctly.
	g := line(4, 1.0)
	s := NewSampler(g, IC)
	s.epoch = ^uint32(0) - 2
	r := rng.New(rng.NewLCG(1))
	for i := 0; i < 6; i++ {
		set := s.GenerateRR(r, 3, nil)
		if len(set) != 4 {
			t.Fatalf("after wrap, RRR = %v", set)
		}
	}
}

func TestGenerateRRQuickInvariants(t *testing.T) {
	check := func(seed uint64, modelBit bool) bool {
		g := randomGraph(seed, 20, 60)
		g.NormalizeLT()
		model := IC
		if modelBit {
			model = LT
		}
		s := NewSampler(g, model)
		r := rng.New(rng.NewLCG(seed ^ 0xabcdef))
		root := graph.Vertex(r.Intn(20))
		set := s.GenerateRR(r, root, nil)
		return len(set) >= 1 && len(set) <= 20 && slices.IsSorted(set) && slices.Contains(set, root)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
