package diffuse

import (
	"math"

	"influmax/internal/graph"
	"influmax/internal/par"
	"influmax/internal/rng"
)

// Simulator runs forward diffusion cascades from a seed set. Like Sampler
// it owns reusable scratch and is not safe for concurrent use.
type Simulator struct {
	g     *graph.Graph
	model Model

	active []uint32 // epoch-stamped activation marks
	epoch  uint32
	queue  []graph.Vertex

	// LT state: random thresholds and accumulated active in-weight,
	// epoch-stamped alongside active.
	threshold []float32
	acc       []float32
	touched   []uint32
}

// NewSimulator returns a forward simulator over g for the given model.
func NewSimulator(g *graph.Graph, model Model) *Simulator {
	n := g.NumVertices()
	s := &Simulator{g: g, model: model, active: make([]uint32, n)}
	if model == LT {
		s.threshold = make([]float32, n)
		s.acc = make([]float32, n)
		s.touched = make([]uint32, n)
	}
	return s
}

func (s *Simulator) nextEpoch() {
	s.epoch++
	if s.epoch == 0 {
		clear(s.active)
		if s.touched != nil {
			clear(s.touched)
		}
		s.epoch = 1
	}
}

// Cascade runs one Monte Carlo diffusion trial from seeds and returns the
// number of activated vertices |I(S)| (the seeds count as activated).
// Duplicate seeds are counted once.
func (s *Simulator) Cascade(r *rng.Rand, seeds []graph.Vertex) int {
	switch s.model {
	case IC:
		return s.cascadeIC(r, seeds)
	case LT:
		return s.cascadeLT(r, seeds)
	}
	panic("diffuse: unknown model")
}

// cascadeIC is the probabilistic BFS of the Problem Statement: every newly
// activated vertex gets a one-shot chance per outgoing edge.
func (s *Simulator) cascadeIC(r *rng.Rand, seeds []graph.Vertex) int {
	s.nextEpoch()
	s.queue = s.queue[:0]
	count := 0
	for _, v := range seeds {
		if s.active[v] == s.epoch {
			continue
		}
		s.active[v] = s.epoch
		s.queue = append(s.queue, v)
		count++
	}
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		dsts, ws := s.g.OutNeighbors(u)
		for i, v := range dsts {
			if s.active[v] == s.epoch {
				continue
			}
			if r.Float32() < ws[i] {
				s.active[v] = s.epoch
				s.queue = append(s.queue, v)
				count++
			}
		}
	}
	return count
}

// cascadeLT activates a vertex when the summed weight of its active
// in-neighbors crosses the vertex's uniform random threshold (drawn lazily
// the first time the vertex is touched in a trial).
func (s *Simulator) cascadeLT(r *rng.Rand, seeds []graph.Vertex) int {
	s.nextEpoch()
	s.queue = s.queue[:0]
	count := 0
	for _, v := range seeds {
		if s.active[v] == s.epoch {
			continue
		}
		s.active[v] = s.epoch
		s.queue = append(s.queue, v)
		count++
	}
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		dsts, ws := s.g.OutNeighbors(u)
		for i, v := range dsts {
			if s.active[v] == s.epoch {
				continue
			}
			if s.touched[v] != s.epoch {
				s.touched[v] = s.epoch
				s.threshold[v] = r.Float32()
				s.acc[v] = 0
			}
			// Parallel u->v edges each contribute their own weight.
			s.acc[v] += ws[i]
			if s.acc[v] >= s.threshold[v] {
				s.active[v] = s.epoch
				s.queue = append(s.queue, v)
				count++
			}
		}
	}
	return count
}

// EstimateSpread estimates E[|I(S)|] for the seed set by running trials
// Monte Carlo cascades across workers goroutines (workers <= 0 uses
// GOMAXPROCS). Each trial draws its randomness from a stream derived from
// (seed, trial), so the result is independent of scheduling. It returns
// the sample mean and the standard error of the mean.
func EstimateSpread(g *graph.Graph, model Model, seeds []graph.Vertex, trials int, workers int, seed uint64) (mean, stderr float64) {
	if trials <= 0 {
		return 0, 0
	}
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	sums := make([]float64, workers)
	sqs := make([]float64, workers)
	par.ForEach(trials, workers, func(rank, lo, hi int) {
		sim := NewSimulator(g, model)
		for t := lo; t < hi; t++ {
			r := rng.New(rng.Derive(seed, uint64(t)))
			c := float64(sim.Cascade(r, seeds))
			sums[rank] += c
			sqs[rank] += c * c
		}
	})
	var sum, sq float64
	for i := range sums {
		sum += sums[i]
		sq += sqs[i]
	}
	mean = sum / float64(trials)
	if trials > 1 {
		variance := (sq - sum*sum/float64(trials)) / float64(trials-1)
		if variance > 0 {
			stderr = math.Sqrt(variance / float64(trials))
		}
	}
	return mean, stderr
}
