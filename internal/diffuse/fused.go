package diffuse

import (
	"math"
	"math/bits"
	"slices"

	"influmax/internal/graph"
	"influmax/internal/rng"
	"influmax/internal/rrr"
)

// MaxLanes is the fused kernel's batch width: the number of samples one
// batch expands together. 64 lanes pack one visited bit per lane into a
// single rrr.Bitset word per vertex, so the whole batch drains — sorted,
// deduplicated per lane — in one ascending walk over the touched words.
const MaxLanes = 64

// coinBlock is the fixed size of an LT lane's coin buffer (the IC kernel
// sizes its blocks to each adjacency scan instead; see scanGeneral).
// Refills run as a tight loop over independent Mix64 finalizations (the
// state chain is plain adds), so the per-coin cost is a fraction of an
// interface-dispatched Uint64 call; at most coinBlock-1 coins per sample
// are generated and never consumed.
const coinBlock = 64

// FusedSampler generates random reverse reachable sets with the fused CSR
// frontier kernel. A batch of up to MaxLanes samples shares one packed
// visited bitset (word v = the lane mask of vertex v), one L1-resident
// byte visited map reused lane after lane, and one sorted drain pass over
// the touched words; each lane's edge coins come in blocks of independent
// Mix64 finalizations off a pure counter state instead of one dispatched
// generator call per edge. See DESIGN.md §14 for the full cost model.
//
// The kernel is byte-identical to the scalar Sampler in per-sample RNG
// mode: lane b of a batch rooted at global index base consumes the exact
// stream rng.Derive(seed, base+b), in the exact order the scalar kernel
// would. Lanes are mutually independent (no coin crosses lanes), which
// frees the scheduler to expand them in any interleaving; the IC kernel
// drains each lane's BFS queue to exhaustion before the next so the byte
// map stays hot. It therefore only supports per-sample stream
// derivation — worker-pinned (leap-frog) streams interleave all samples
// of a worker on one sequence, which a batched expansion cannot
// reproduce; callers fall back to the scalar kernel there.
//
// A FusedSampler owns per-batch scratch and is NOT safe for concurrent
// use — create one per worker goroutine.
type FusedSampler struct {
	g     *graph.Graph
	model Model

	// visited holds MaxLanes visited bits per vertex: word v is the lane
	// mask of vertex v (bit b set = lane b has added v to its sample).
	// The packed words turn the batch drain into one ascending walk that
	// emits every lane already sorted — where the scalar kernel pays a
	// sort per sample — and make clearing O(touched words).
	visited rrr.Bitset

	// vbyte is the expanding lane's visited map, one byte per vertex (IC
	// only). At one byte instead of one 64-lane word per vertex it stays
	// L1-resident at working scales, so the per-edge visited test — the
	// kernel's most frequent random access — hits L1 instead of L2. Fires
	// update both views; vbyte is cleared by walking the lane's queue when
	// the lane finishes.
	vbyte []uint8

	// dirty summarizes the packed bitset for the drain: bit v&63 of word
	// v/64 is set iff visited[v] != 0. Fires are rare next to visited
	// tests, so maintaining the summary costs one OR on the fire path and
	// saves the drain from reading n words per batch (it reads n/64 plus
	// the touched ones). IC only.
	dirty []uint64

	// shared holds the read-only per-edge tables all workers' samplers can
	// reuse (the IC coin thresholds).
	shared *FusedShared

	// Per-lane SplitMix64 states and coin buffers. The IC kernel draws
	// each scan's coins inline in the decide loop (uniform thresholds) or
	// as one exact-size block into coinBits (general path, after the
	// gather phase has packed vertex+threshold words into gather). coins64
	// serves the LT kernel (fixed blocks of one float64 per step). Only
	// the active model's buffers are allocated.
	state    [MaxLanes]uint64
	gather   []uint64
	gatherU  []graph.Vertex
	coinBits []uint32
	coins64  [][]float64
	coinPos  [MaxLanes]int

	// queue[b] is lane b's BFS FIFO for the IC kernel: the root plus every
	// fired vertex in discovery order. Consuming it in order reproduces
	// the scalar reverseBFS coin order exactly.
	queue [MaxLanes][]graph.Vertex

	// outs collects each lane's sample members for the drain (IC) or in
	// discovery order (LT, where short walks make a per-lane sort cheaper
	// than a bitset walk).
	outs [MaxLanes][]graph.Vertex

	// frontier/next are the LT walk lists: one entry per lane still
	// walking.
	frontier, next []laneVertex

	stats FusedStats
}

// laneVertex is one LT walk slot: the vertex lane's reverse walk sits on.
type laneVertex struct {
	v    graph.Vertex
	lane uint32
}

// FusedStats counts the kernel's work since the last TakeStats call. The
// counters are aggregates over finished batches; under a work-stealing
// schedule the batch boundaries may vary run to run, like steal counts —
// telemetry, not part of the deterministic output.
type FusedStats struct {
	// Batches is the number of fused batches executed.
	Batches int64
	// Passes is the total number of frontier expansions (head scans for
	// IC, walk rounds for LT) across all batches.
	Passes int64
	// Coins is the number of pseudorandom coins generated (edge draws
	// plus one root draw per sample; LT counts whole block refills).
	Coins int64
	// LaneSlots is Batches times the full batch width MaxLanes, and
	// ActiveLanes the slots that carried a sample; ActiveLanes/LaneSlots
	// is the batch occupancy — how full the fused batches actually ran
	// (partial tail batches and B > theta drag it down).
	LaneSlots   int64
	ActiveLanes int64
}

// Occupancy returns the mean fraction of lane slots that carried a sample
// per batch (0 when no batches ran).
func (s FusedStats) Occupancy() float64 {
	if s.LaneSlots == 0 {
		return 0
	}
	return float64(s.ActiveLanes) / float64(s.LaneSlots)
}

// Add accumulates other into s.
func (s *FusedStats) Add(other FusedStats) {
	s.Batches += other.Batches
	s.Passes += other.Passes
	s.Coins += other.Coins
	s.LaneSlots += other.LaneSlots
	s.ActiveLanes += other.ActiveLanes
}

// FusedShared holds the read-only tables fused samplers over the same
// graph share: build it once and hand it to one NewFusedSamplerShared per
// worker so the per-edge thresholds exist once per run, not once per
// worker.
type FusedShared struct {
	// thresh maps each in-CSR edge slot to its integer coin threshold: the
	// edge fires iff the coin's top-24-bit integer k satisfies
	// k < thresh[slot], which decides exactly like the scalar kernel's
	// float32(k)*2^-24 < w (see icThreshold). Empty for LT.
	thresh []uint32
	// uniform[v] classifies v's in-edge scan. When all in-edges share one
	// threshold t (both of the paper's standard IC weightings are uniform
	// per list: constant p trivially, weighted cascade because every
	// in-edge of v carries 1/indeg(v)) the whole scan compares against one
	// register: uniform[v] = t if the list is also free of parallel
	// duplicate sources (every unvisited neighbor then consumes a coin
	// unconditionally), or t|dupMark if duplicates are present (the scan
	// re-tests visited before each draw, which handles duplicates exactly
	// as the scalar kernel does). nonUniform marks distinct per-edge
	// thresholds, routed to the general path.
	uniform []uint32
}

// dupMark flags a uniform-threshold vertex whose in-list contains parallel
// duplicate sources; real thresholds are at most 2^24, leaving the bit
// free. nonUniform (all ones, dupMark included) marks per-edge thresholds.
const (
	dupMark    = uint32(1) << 30
	nonUniform = ^uint32(0)
)

// pow2AtLeast returns the smallest power of two >= max(n, 1).
func pow2AtLeast(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// icThreshold converts an IC edge weight into the integer coin threshold
// equivalent to the scalar comparison. The scalar kernel keeps an edge of
// weight w when Float32() < w with Float32() = float32(k) * 2^-24 for the
// coin's top 24 bits k — both sides exact, so c < w iff k < w*2^24 iff
// k < ceil(w*2^24) over integers. float64(w)*2^24 is exact for any
// float32 w, making the ceiling exact too; clamping to [0, 2^24] covers
// w <= 0 (never fires, as c >= 0) and w >= 1 (always fires, as c < 1).
func icThreshold(w float32) uint32 {
	t := math.Ceil(float64(w) * (1 << 24))
	if !(t > 0) { // also catches NaN: scalar c < NaN is false
		return 0
	}
	if t > 1<<24 {
		return 1 << 24
	}
	return uint32(t)
}

// NewFusedShared precomputes the shared tables for fused sampling over g.
func NewFusedShared(g *graph.Graph, model Model) *FusedShared {
	s := &FusedShared{}
	if model != IC {
		return s
	}
	n := g.NumVertices()
	s.thresh = make([]uint32, g.NumEdges())
	s.uniform = make([]uint32, n)
	seen := make([]int32, n)
	for i := range seen {
		seen[i] = -1
	}
	for v := 0; v < n; v++ {
		base := g.InEdgeBase(graph.Vertex(v))
		srcs, ws := g.InNeighbors(graph.Vertex(v))
		uni := uint32(0)
		sameT := true
		dupFree := true
		for i, w := range ws {
			t := icThreshold(w)
			s.thresh[base+int64(i)] = t
			if i == 0 {
				uni = t
			} else if t != uni {
				sameT = false
			}
			if seen[srcs[i]] == int32(v) {
				dupFree = false // parallel duplicate source
			}
			seen[srcs[i]] = int32(v)
		}
		switch {
		case sameT && dupFree:
			s.uniform[v] = uni
		case sameT:
			s.uniform[v] = uni | dupMark
		default:
			s.uniform[v] = nonUniform
		}
	}
	return s
}

// NewFusedSampler returns a fused sampler over g for the given model,
// building its own shared tables. For LT the graph's in-weights must form
// a valid configuration, as for NewSampler. Workers sampling the same
// graph should build one FusedShared and use NewFusedSamplerShared.
func NewFusedSampler(g *graph.Graph, model Model) *FusedSampler {
	return NewFusedSamplerShared(g, model, NewFusedShared(g, model))
}

// NewFusedSamplerShared returns a fused sampler over g reusing previously
// built shared tables (which must come from NewFusedShared over the same
// graph and model).
func NewFusedSamplerShared(g *graph.Graph, model Model, shared *FusedShared) *FusedSampler {
	f := &FusedSampler{
		g:       g,
		model:   model,
		shared:  shared,
		visited: rrr.NewBitset(g.NumVertices() * MaxLanes),
	}
	switch model {
	case IC:
		// Scan blocks are sized to each adjacency list; start small and
		// grow to the maximum in-degree on demand.
		f.gather = make([]uint64, coinBlock)
		f.gatherU = make([]graph.Vertex, coinBlock)
		f.coinBits = make([]uint32, coinBlock)
		f.vbyte = make([]uint8, g.NumVertices())
		f.dirty = make([]uint64, (g.NumVertices()+63)/64)
	case LT:
		f.coins64 = make([][]float64, MaxLanes)
		for i := range f.coins64 {
			f.coins64[i] = make([]float64, coinBlock)
		}
	default:
		panic("diffuse: unknown model")
	}
	return f
}

// Model returns the diffusion model the sampler was built for.
func (f *FusedSampler) Model() Model { return f.model }

// TakeStats returns the work counters accumulated since the previous call
// and resets them.
func (f *FusedSampler) TakeStats() FusedStats {
	s := f.stats
	f.stats = FusedStats{}
	return s
}

// Generate appends count samples to verts, the i-th drawn from the stream
// rng.Derive(seed, base+uint64(i)) with a uniform random root — exactly
// the per-sample discipline of the scalar path. Each sample's vertex list
// is appended sorted ascending, and its cardinality is appended to sizes.
// Samples appear in index order, so the appended layout is byte-identical
// to count sequential scalar GenerateRR calls over the same streams.
func (f *FusedSampler) Generate(seed, base uint64, count int, verts []graph.Vertex, sizes []int32) ([]graph.Vertex, []int32) {
	for done := 0; done < count; {
		lanes := count - done
		if lanes > MaxLanes {
			lanes = MaxLanes
		}
		verts, sizes = f.batch(seed, base+uint64(done), lanes, verts, sizes)
		done += lanes
	}
	return verts, sizes
}

// batch runs one fused expansion of `lanes` samples (lanes <= MaxLanes).
func (f *FusedSampler) batch(seed, base uint64, lanes int, verts []graph.Vertex, sizes []int32) ([]graph.Vertex, []int32) {
	n := uint64(f.g.NumVertices())
	f.frontier = f.frontier[:0]
	f.next = f.next[:0]

	// Roots: each lane's first draw is Intn(n) off its own fresh stream
	// (Lemire multiply-shift, exactly as rng.Rand.Intn computes it).
	for b := 0; b < lanes; b++ {
		st := rng.SplitMixState(seed, base+uint64(b)) + rng.SplitMixGamma
		f.state[b] = st
		f.coinPos[b] = coinBlock // buffer empty; first use refills
		root, _ := bits.Mul64(rng.Mix64(st), n)
		if f.model == LT {
			f.outs[b] = append(f.outs[b][:0], graph.Vertex(root))
			f.frontier = append(f.frontier, laneVertex{graph.Vertex(root), uint32(b)})
			f.visited[root] |= 1 << uint(b)
		} else {
			// The packed bit and dirty mark follow at the end of the
			// lane's expansion (see expandIC); queue slot 0 is the root.
			f.queue[b] = append(f.queue[b][:0], graph.Vertex(root))
		}
	}
	f.stats.Coins += int64(lanes)
	f.stats.Batches++
	f.stats.LaneSlots += MaxLanes
	f.stats.ActiveLanes += int64(lanes)

	switch f.model {
	case IC:
		f.expandIC(lanes)
		return f.drainByExtraction(lanes, verts, sizes)
	case LT:
		f.walkLT()
	}

	// LT drain: RRR sets under LT are short reverse walks, so per-lane
	// sorting beats a full bitset walk. Drain lanes in index order, sort
	// each sample and append it to the caller's arena, clearing its
	// visited bits as we go (clearing by output walk costs O(entries),
	// not O(n), per batch).
	for b := 0; b < lanes; b++ {
		out := f.outs[b]
		mask := ^(uint64(1) << uint(b))
		for _, v := range out {
			f.visited[v] &= mask
		}
		slices.Sort(out)
		verts = append(verts, out...)
		sizes = append(sizes, int32(len(out)))
	}
	return verts, sizes
}

// drainByExtraction reconstructs every lane's sample from the visited
// lane masks in one ascending walk: vertex v with bit b set belongs to
// lane b's sample, so scattering v in walk order emits every lane already
// sorted — the fused IC drain needs no sort at all, where the scalar
// kernel pays a pdqsort per sample. The dirty summary narrows the walk to
// n/64 summary words plus the words actually touched, and the walk clears
// everything it reads for the next batch.
func (f *FusedSampler) drainByExtraction(lanes int, verts []graph.Vertex, sizes []int32) ([]graph.Vertex, []int32) {
	for b := 0; b < lanes; b++ {
		f.outs[b] = f.outs[b][:0]
	}
	for di, dw := range f.dirty {
		if dw == 0 {
			continue
		}
		f.dirty[di] = 0
		base := di << 6
		for dw != 0 {
			v := base + bits.TrailingZeros64(dw)
			dw &= dw - 1
			w := f.visited[v]
			f.visited[v] = 0
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &= w - 1
				f.outs[b] = append(f.outs[b], graph.Vertex(v))
			}
		}
	}
	for b := 0; b < lanes; b++ {
		verts = append(verts, f.outs[b]...)
		sizes = append(sizes, int32(len(f.outs[b])))
	}
	return verts, sizes
}

// expandIC is the fused IC kernel. Lanes are mutually independent (coins
// come from per-lane streams), so any schedule that consumes each lane's
// queue in order is byte-identical to the scalar kernel; this one drains
// each lane to exhaustion before starting the next, against the one-byte
// visited map vbyte. The byte map is the point: at one byte per vertex it
// stays L1-resident across the entire batch where the packed 64-lane
// words (or the scalar kernel's per-sample epoch ints) overflow L1, and
// the per-edge visited test is the kernel's most frequent random access.
// Fires also set the lane's bit in the packed bitset, which the batch
// drain turns into sorted per-lane samples in one walk; the lane's byte
// map entries are undone by walking its queue — exactly its sample —
// when it finishes.
func (f *FusedSampler) expandIC(lanes int) {
	allThresh := f.shared.thresh
	uniform := f.shared.uniform
	vb := f.vbyte
	var scans, coins int64
	for b := 0; b < lanes; b++ {
		vb[f.queue[b][0]] = 1
		coins += f.expandLane(uint32(b), uniform, allThresh)
		scans += int64(len(f.queue[b]))
		// Lane done: its queue IS its sample. One short walk resets the
		// byte map and publishes the lane's bits to the packed bitset and
		// the drain's dirty summary — moving both random stores off the
		// fire path keeps the decide loops lean.
		bit := uint64(1) << uint(b)
		for _, v := range f.queue[b] {
			vb[v] = 0
			f.visited[v] |= bit
			f.dirty[v>>6] |= 1 << (v & 63)
		}
	}
	f.stats.Passes += scans
	f.stats.Coins += coins
}

// expandLane drains lane b's BFS queue to exhaustion and returns the
// coins consumed. The lane's stream state and queue stay in registers
// across all its scans — per-scan spills to the sampler struct would
// cost as much as the scans themselves on low-degree graphs. The scan
// over a uniform duplicate-free in-list (both standard IC weightings)
// is inlined here in two branch-disciplined phases:
//
//  1. gather — a branch-free pass that compacts the unvisited neighbors,
//     hand unrolled to keep several visited-byte loads in flight. A
//     per-edge visited branch would mispredict constantly (cascades are
//     locally clustered, so scans mix visited and unvisited neighbors
//     with no pattern); the unconditional store + counter bump never
//     mispredicts.
//  2. decide — the lane's next coin generated and compared per gathered
//     neighbor in one loop. The state chain is plain adds and the Mix64
//     chains are independent across iterations, so the compare overlaps
//     the next coin's finalization; every gathered neighbor consumes a
//     coin unconditionally (no duplicates), keeping the stream aligned
//     with the scalar kernel by construction.
//
// Lists with duplicate sources or per-edge thresholds take the out-of-
// line scanDup/scanGeneral paths (the lane state is written back around
// the call).
func (f *FusedSampler) expandLane(b uint32, uniform, allThresh []uint32) int64 {
	g := f.g
	vb := f.vbyte
	st := f.state[b]
	q := f.queue[b]
	var coins int64
	for qi := 0; qi < len(q); qi++ {
		srcs := g.InSources(q[qi])
		if len(srcs) == 0 {
			continue
		}
		uni := uniform[q[qi]]
		if uni&dupMark != 0 {
			// Outcome-dependent coin consumption: spill the lane state,
			// run the ordered out-of-line scan, reload.
			f.state[b] = st
			f.queue[b] = q
			if uni != nonUniform {
				coins += f.scanDup(srcs, uni&^dupMark, b)
			} else {
				coins += f.scanGeneral(q[qi], srcs, allThresh, b)
			}
			st = f.state[b]
			q = f.queue[b]
			continue
		}

		gu := f.gatherU
		if len(gu) < len(srcs) {
			gu = make([]graph.Vertex, pow2AtLeast(len(srcs)))
			f.gatherU = gu
		}
		cnt := 0
		i := 0
		for ; i+4 <= len(srcs); i += 4 {
			u0, u1, u2, u3 := srcs[i], srcs[i+1], srcs[i+2], srcs[i+3]
			h0, h1, h2, h3 := vb[u0], vb[u1], vb[u2], vb[u3]
			gu[cnt] = u0
			cnt += 1 - int(h0)
			gu[cnt] = u1
			cnt += 1 - int(h1)
			gu[cnt] = u2
			cnt += 1 - int(h2)
			gu[cnt] = u3
			cnt += 1 - int(h3)
		}
		for ; i < len(srcs); i++ {
			u := srcs[i]
			gu[cnt] = u
			cnt += 1 - int(vb[u])
		}
		coins += int64(cnt)

		for _, u := range gu[:cnt] {
			st += rng.SplitMixGamma
			if rng.Mix64Hi24(st) < uni {
				vb[u] = 1
				q = append(q, u)
			}
		}
	}
	f.state[b] = st
	f.queue[b] = q
	return coins
}

// scanDup is the scan for a uniform in-list that carries parallel
// duplicate sources: whether a later occurrence of a duplicate draws a
// coin depends on whether an earlier one fired, so the scan must
// interleave the visited test and the draw exactly as the scalar kernel
// does — one fused pass: test, draw inline, decide.
func (f *FusedSampler) scanDup(srcs []graph.Vertex, t uint32, lane uint32) int64 {
	vb := f.vbyte
	st := f.state[lane]
	q := f.queue[lane]
	drawn := 0
	for _, u := range srcs {
		if vb[u] != 0 {
			continue
		}
		drawn++
		st += rng.SplitMixGamma
		if rng.Mix64Hi24(st) < t {
			vb[u] = 1
			q = append(q, u)
		}
	}
	f.queue[lane] = q
	f.state[lane] = st
	return int64(drawn)
}

// scanGeneral is the scan for distinct per-edge thresholds (parallel
// duplicates possible). Three phases:
//
//  1. gather — branch-free compaction of the unvisited neighbors, packed
//     as threshold<<32 | vertex so the decide loop reads one sequential
//     stream and never touches the CSR again.
//  2. coin block — the lane's next cnt coins in one exact-size block.
//  3. decide — threshold compare and append. A re-check of the visited
//     byte catches parallel edges to a vertex won earlier in this same
//     scan, which must not consume a coin (the scalar kernel's visited
//     test precedes its draw); the lane's stream state advances by
//     exactly the coins consumed, so the block's over-generated tail is
//     discarded without desynchronizing the stream.
func (f *FusedSampler) scanGeneral(v graph.Vertex, srcs []graph.Vertex, allThresh []uint32, lane uint32) int64 {
	vb := f.vbyte
	base := f.g.InEdgeBase(v)
	thresh := allThresh[base : base+int64(len(srcs))]
	if cap(f.gather) < len(srcs) {
		f.gather = make([]uint64, len(srcs))
		f.coinBits = make([]uint32, len(srcs))
	}

	gather := f.gather[:len(srcs)]
	cnt := 0
	for i := 0; i < len(srcs); i++ {
		u := srcs[i]
		gather[cnt] = uint64(thresh[i])<<32 | uint64(u)
		cnt += 1 - int(vb[u])
	}
	if cnt == 0 {
		return 0
	}

	st := f.state[lane]
	cblock := f.coinBits[:cnt]
	for j := range cblock {
		st += rng.SplitMixGamma
		cblock[j] = rng.Mix64Hi24(st)
	}

	q := f.queue[lane]
	used := 0
	for _, packed := range gather[:cnt] {
		u := graph.Vertex(packed)
		if vb[u] != 0 {
			continue // parallel edge to a vertex won this scan: no coin
		}
		k := cblock[used]
		used++
		if uint64(k) < packed>>32 {
			vb[u] = 1
			q = append(q, u)
		}
	}
	f.queue[lane] = q
	f.state[lane] += rng.SplitMixGamma * uint64(used)
	return int64(cnt)
}

// walkLT is the fused LT kernel: all lanes advance their reverse walk one
// step per pass. Each step draws one Float64 coin off the lane's block to
// select at most one in-edge of the lane's current vertex, exactly as the
// scalar reverseWalk does.
func (f *FusedSampler) walkLT() {
	g := f.g
	visited := f.visited
	for len(f.frontier) > 0 {
		f.stats.Passes++
		f.next = f.next[:0]
		for _, fe := range f.frontier {
			srcs, ws := g.InNeighbors(fe.v)
			if len(srcs) == 0 {
				continue
			}
			lane := fe.lane
			if f.coinPos[lane] == coinBlock {
				f.refill64(lane)
			}
			t := f.coins64[lane][f.coinPos[lane]]
			f.coinPos[lane]++
			cum := 0.0
			next := -1
			for i, w := range ws {
				cum += float64(w)
				if t < cum {
					next = int(srcs[i])
					break
				}
			}
			if next < 0 {
				continue // no edge selected: the walk dies here
			}
			u := graph.Vertex(next)
			bit := uint64(1) << uint(lane)
			if visited[u]&bit != 0 {
				continue // reached an already-selected vertex: stop
			}
			visited[u] |= bit
			f.outs[lane] = append(f.outs[lane], u)
			f.next = append(f.next, laneVertex{u, lane})
		}
		f.frontier, f.next = f.next, f.frontier
	}
}

// refill64 regenerates lane's float64 coin block (rng.Rand.Float64
// conversion: top 53 bits).
func (f *FusedSampler) refill64(lane uint32) {
	st := f.state[lane]
	coins := f.coins64[lane]
	for j := range coins {
		st += rng.SplitMixGamma
		coins[j] = float64(rng.Mix64(st)>>11) * (1.0 / (1 << 53))
	}
	f.state[lane] = st
	f.coinPos[lane] = 0
	f.stats.Coins += coinBlock
}
