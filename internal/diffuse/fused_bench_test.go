package diffuse

import (
	"testing"

	"influmax/internal/graph"
	"influmax/internal/rng"
)

// benchFusedGraph is a heavy-tailed RMAT-like random graph stand-in sized
// so the kernels' working sets resemble the imm-level benchmark without
// importing internal/gen (which would cycle).
func benchFusedGraph(seed uint64, n, m int) *graph.Graph {
	r := rng.New(rng.NewLCG(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		// Square the draws toward low ids for a skewed degree profile.
		u := r.Intn(n) * r.Intn(n) / n
		v := r.Intn(n) * r.Intn(n) / n
		if u != v {
			b.Add(graph.Vertex(u), graph.Vertex(v), 0)
		}
	}
	return b.Build()
}

// BenchmarkGenerate compares the scalar and fused kernels head to head at
// the diffuse level (no scheduler, no merge): pure kernel cost.
func BenchmarkGenerate(b *testing.B) {
	g := benchFusedGraph(1, 10000, 140000)
	g.AssignConstant(0.06)
	const count = 2000
	b.Run("scalar", func(b *testing.B) {
		var verts []graph.Vertex
		var sizes []int32
		s := NewSampler(g, IC)
		gen := rng.NewSplitMix64(0)
		r := rng.New(gen)
		n := g.NumVertices()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			verts, sizes = verts[:0], sizes[:0]
			for j := 0; j < count; j++ {
				gen.Reseed(7, uint64(j))
				root := graph.Vertex(r.Intn(n))
				before := len(verts)
				verts = s.GenerateRR(r, root, verts)
				sizes = append(sizes, int32(len(verts)-before))
			}
		}
	})
	b.Run("fused", func(b *testing.B) {
		var verts []graph.Vertex
		var sizes []int32
		f := NewFusedSampler(g, IC)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			verts, sizes = f.Generate(7, 0, count, verts[:0], sizes[:0])
		}
	})
}
