package diffuse

import (
	"slices"
	"testing"

	"influmax/internal/graph"
	"influmax/internal/rng"
)

// scalarGenerate reproduces the per-sample scalar discipline the fused
// kernel must match byte for byte: sample i draws its root and all its
// coins from the stream rng.Derive(seed, base+i).
func scalarGenerate(g *graph.Graph, model Model, seed, base uint64, count int) ([]graph.Vertex, []int32) {
	s := NewSampler(g, model)
	gen := rng.NewSplitMix64(0)
	r := rng.New(gen)
	n := g.NumVertices()
	var verts []graph.Vertex
	var sizes []int32
	for i := 0; i < count; i++ {
		gen.Reseed(seed, base+uint64(i))
		root := graph.Vertex(r.Intn(n))
		before := len(verts)
		verts = s.GenerateRR(r, root, verts)
		sizes = append(sizes, int32(len(verts)-before))
	}
	return verts, sizes
}

// TestFusedGenerateMatchesScalar is the kernel-level byte-identity gate:
// for random graphs under IC, LT, and WC weights, Generate must emit the
// exact vertex arena and size vector of sequential scalar GenerateRR calls
// over the same per-sample streams — at full batches, partial batches, and
// counts spanning several batches.
func TestFusedGenerateMatchesScalar(t *testing.T) {
	graphs := []struct {
		seed uint64
		n, m int
	}{
		{3, 40, 300},
		{5, 120, 1000},
		{9, 250, 2600},
	}
	models := []struct {
		name  string
		model Model
		prep  func(g *graph.Graph, seed uint64)
	}{
		{"IC", IC, func(g *graph.Graph, seed uint64) { g.AssignUniform(seed) }},
		{"LT", LT, func(g *graph.Graph, seed uint64) { g.AssignUniform(seed); g.NormalizeLT() }},
		{"WC", IC, func(g *graph.Graph, seed uint64) { g.AssignWeightedCascade() }},
	}
	counts := []int{1, 8, MaxLanes - 1, MaxLanes, MaxLanes + 1, 3*MaxLanes + 17}
	for _, gc := range graphs {
		for _, mc := range models {
			g := randomGraph(gc.seed, gc.n, gc.m)
			mc.prep(g, gc.seed)
			f := NewFusedSampler(g, mc.model)
			for _, count := range counts {
				base := uint64(1000) * gc.seed
				wantV, wantS := scalarGenerate(g, mc.model, gc.seed, base, count)
				gotV, gotS := f.Generate(gc.seed, base, count, nil, nil)
				if !slices.Equal(gotV, wantV) || !slices.Equal(gotS, wantS) {
					t.Fatalf("graph=%d model=%s count=%d: fused output != scalar",
						gc.seed, mc.name, count)
				}
			}
		}
	}
}

// TestFusedVisitedClearedBetweenBatches: the lane-mask visited bitset is
// cleared by output walk, so a stale bit would corrupt a later batch that
// reuses the lane. Running many consecutive batches through one sampler
// against fresh-sampler references catches any leak.
func TestFusedVisitedClearedBetweenBatches(t *testing.T) {
	g := randomGraph(17, 60, 700)
	g.AssignUniform(17)
	f := NewFusedSampler(g, IC)
	for round := 0; round < 5; round++ {
		base := uint64(round * 200)
		wantV, wantS := scalarGenerate(g, IC, 17, base, 150)
		gotV, gotS := f.Generate(17, base, 150, nil, nil)
		if !slices.Equal(gotV, wantV) || !slices.Equal(gotS, wantS) {
			t.Fatalf("round %d: reused fused sampler diverged from scalar", round)
		}
	}
}

// TestFusedDegenerateGraphs sweeps the shapes that stress the kernel's
// edge handling: no edges at all, self-loops (present in the CSR but never
// re-added to a sample), isolated vertices mixed with a connected core,
// and batch widths larger than the sample count (B > theta).
func TestFusedDegenerateGraphs(t *testing.T) {
	build := func(n int, edges [][2]int, w float32) *graph.Graph {
		b := graph.NewBuilder(n)
		for _, e := range edges {
			b.Add(graph.Vertex(e[0]), graph.Vertex(e[1]), w)
		}
		return b.Build()
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"empty", build(8, nil, 0)},
		{"self-loops", build(6, [][2]int{{0, 0}, {1, 1}, {0, 1}, {1, 2}, {2, 0}, {5, 5}}, 0.9)},
		{"isolated", build(10, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 0.8)},
		{"single-edge", build(2, [][2]int{{0, 1}}, 1.0)},
	}
	for _, tc := range cases {
		for _, model := range []Model{IC, LT} {
			g := tc.g
			if model == LT {
				g.NormalizeLT()
			}
			f := NewFusedSampler(g, model)
			// count=3 < MaxLanes exercises the B > theta partial batch.
			for _, count := range []int{3, 100} {
				wantV, wantS := scalarGenerate(g, model, 7, 0, count)
				gotV, gotS := f.Generate(7, 0, count, nil, nil)
				if !slices.Equal(gotV, wantV) || !slices.Equal(gotS, wantS) {
					t.Fatalf("%s/%v count=%d: fused != scalar", tc.name, model, count)
				}
			}
		}
	}
}

// TestFusedStats pins the telemetry contract: batches and root coins are
// exact, occupancy is a valid fraction, and TakeStats drains.
func TestFusedStats(t *testing.T) {
	g := randomGraph(21, 80, 800)
	g.AssignUniform(21)
	f := NewFusedSampler(g, IC)
	const count = 200
	f.Generate(21, 0, count, nil, nil)
	st := f.TakeStats()
	wantBatches := int64((count + MaxLanes - 1) / MaxLanes)
	if st.Batches != wantBatches {
		t.Fatalf("Batches = %d, want %d", st.Batches, wantBatches)
	}
	if st.Passes < wantBatches {
		t.Fatalf("Passes = %d, want >= %d (one per non-empty batch)", st.Passes, wantBatches)
	}
	// Every sample costs one root draw, and a connected graph draws edge
	// coins on top.
	if st.Coins <= count {
		t.Fatalf("Coins = %d: want > one root draw per sample (%d)", st.Coins, count)
	}
	if occ := st.Occupancy(); occ <= 0 || occ > 1 {
		t.Fatalf("Occupancy = %v, want in (0, 1]", occ)
	}
	if st.ActiveLanes > st.LaneSlots {
		t.Fatalf("ActiveLanes %d > LaneSlots %d", st.ActiveLanes, st.LaneSlots)
	}
	if again := f.TakeStats(); again != (FusedStats{}) {
		t.Fatalf("TakeStats did not reset: %+v", again)
	}
	var sum FusedStats
	sum.Add(st)
	sum.Add(st)
	if sum.Passes != 2*st.Passes || sum.Coins != 2*st.Coins {
		t.Fatalf("Add did not accumulate: %+v", sum)
	}
	if (FusedStats{}).Occupancy() != 0 {
		t.Fatal("zero-pass occupancy must be 0")
	}
}
