// Package diffuse implements the two network-diffusion models of the paper
// (Independent Cascade and Linear Threshold) in both directions:
//
//   - forward: the probabilistic BFS from a seed set that defines the
//     influence set I(S) (Section 3, Problem Statement), used to evaluate
//     solution quality by Monte Carlo;
//   - reverse: the probabilistic traversal of incoming edges that generates
//     a random reverse reachable (RRR) set (Definitions 2-3, Algorithm 3's
//     GenerateRR), the workhorse of IMM sampling.
//
// As in the paper's implementation, sampled subgraphs g ~ G are never
// materialized: each edge's removal coin is flipped lazily as the traversal
// reaches it, which yields the same distribution for a single traversal.
package diffuse

import (
	"fmt"
	"strings"
)

// Model selects the diffusion process.
type Model uint8

const (
	// IC is the Independent Cascade model: an activated vertex u has one
	// chance to activate each inactive out-neighbor v, succeeding with
	// probability p(u,v) independent of history.
	IC Model = iota
	// LT is the Linear Threshold model: vertex v activates when the weight
	// of its active in-neighbors exceeds a uniform random threshold; its
	// reverse-sampling equivalent selects at most one incoming edge per
	// vertex (the triggering-set view of Kempe et al.).
	LT
)

// String returns the conventional short name of the model.
func (m Model) String() string {
	switch m {
	case IC:
		return "IC"
	case LT:
		return "LT"
	}
	return fmt.Sprintf("Model(%d)", uint8(m))
}

// ParseModel parses "IC" or "LT" (case-insensitive).
func ParseModel(s string) (Model, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "IC":
		return IC, nil
	case "LT":
		return LT, nil
	}
	return IC, fmt.Errorf("diffuse: unknown model %q (want IC or LT)", s)
}
