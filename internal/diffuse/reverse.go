package diffuse

import (
	"slices"

	"influmax/internal/graph"
	"influmax/internal/rng"
)

// Sampler generates random reverse reachable sets. It owns per-worker
// scratch (an epoch-stamped visited array and a BFS queue) so repeated
// calls allocate nothing beyond the result; it is NOT safe for concurrent
// use — create one Sampler per worker goroutine.
type Sampler struct {
	g     *graph.Graph
	model Model

	visited []uint32
	epoch   uint32
	queue   []graph.Vertex
}

// NewSampler returns a sampler over g for the given model. For LT the
// graph's in-weights must form a valid configuration (per-vertex sums at
// most 1; see graph.NormalizeLT).
func NewSampler(g *graph.Graph, model Model) *Sampler {
	return &Sampler{
		g:       g,
		model:   model,
		visited: make([]uint32, g.NumVertices()),
		epoch:   0,
	}
}

// Model returns the diffusion model the sampler was built for.
func (s *Sampler) Model() Model { return s.model }

// nextEpoch advances the visited stamp, clearing the array on wraparound.
func (s *Sampler) nextEpoch() {
	s.epoch++
	if s.epoch == 0 {
		clear(s.visited)
		s.epoch = 1
	}
}

// GenerateRR appends the random reverse reachable set of root to out and
// returns it, sorted ascending by vertex id (the compact representation of
// Section 3.1: sorted lists enable the binary-search partition navigation
// of Algorithm 4). The root itself is always a member.
func (s *Sampler) GenerateRR(r *rng.Rand, root graph.Vertex, out []graph.Vertex) []graph.Vertex {
	base := len(out) // out may already hold earlier samples (arena use)
	switch s.model {
	case IC:
		out = s.reverseBFS(r, root, out)
	case LT:
		out = s.reverseWalk(r, root, out)
	default:
		panic("diffuse: unknown model")
	}
	slices.Sort(out[base:])
	return out
}

// reverseBFS is the IC kernel: a breadth-first traversal of incoming edges
// where each edge is kept with its activation probability.
func (s *Sampler) reverseBFS(r *rng.Rand, root graph.Vertex, out []graph.Vertex) []graph.Vertex {
	s.nextEpoch()
	s.visited[root] = s.epoch
	s.queue = append(s.queue[:0], root)
	out = append(out, root)
	// Pop via a head index rather than re-slicing the front: re-slicing
	// surrenders the popped prefix's capacity, so every BFS would grow a
	// fresh backing array. The head index keeps the array stable across
	// samples — the pooled steady state allocates nothing here.
	for head := 0; head < len(s.queue); head++ {
		x := s.queue[head]
		srcs, ws := s.g.InNeighbors(x)
		for i, u := range srcs {
			if s.visited[u] == s.epoch {
				continue
			}
			if r.Float32() < ws[i] {
				s.visited[u] = s.epoch
				s.queue = append(s.queue, u)
				out = append(out, u)
			}
		}
	}
	return out
}

// reverseWalk is the LT kernel: from the root, each step selects at most
// one incoming edge of the current vertex — edge i with probability w_i,
// no edge with probability 1 - sum(w) — and stops on a revisit. This is
// the triggering-set view of LT and the reason the paper observes LT RRR
// sets to be far smaller than IC ones.
func (s *Sampler) reverseWalk(r *rng.Rand, root graph.Vertex, out []graph.Vertex) []graph.Vertex {
	s.nextEpoch()
	s.visited[root] = s.epoch
	out = append(out, root)
	cur := root
	for {
		srcs, ws := s.g.InNeighbors(cur)
		if len(srcs) == 0 {
			return out
		}
		t := r.Float64()
		cum := 0.0
		next := -1
		for i, w := range ws {
			cum += float64(w)
			if t < cum {
				next = int(srcs[i])
				break
			}
		}
		if next < 0 {
			return out // no edge selected: the walk dies here
		}
		u := graph.Vertex(next)
		if s.visited[u] == s.epoch {
			return out // reached an already-selected vertex: stop
		}
		s.visited[u] = s.epoch
		out = append(out, u)
		cur = u
	}
}
