package dist

import (
	"errors"
	"fmt"
	"time"

	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/mpi"
	"influmax/internal/par"
	"influmax/internal/rng"
	"influmax/internal/rrr"
	"influmax/internal/trace"
)

// Options configures a distributed IMM run. All ranks must pass identical
// options.
type Options struct {
	// K is the seed-set cardinality.
	K int
	// Epsilon is the accuracy parameter in (0, 1).
	Epsilon float64
	// Model is the diffusion model.
	Model diffuse.Model
	// ThreadsPerRank is the intra-rank thread count (<= 0: GOMAXPROCS/size,
	// at least 1) — the OpenMP half of the hybrid model.
	ThreadsPerRank int
	// Seed feeds the pseudorandom streams; must agree across ranks.
	Seed uint64
	// RNG selects the stream discipline (imm.PerSample reproduces the
	// exact same result for any rank count; imm.LeapFrog mirrors the
	// paper).
	RNG imm.RNGMode
	// Schedule selects the intra-rank sampling-loop schedule (dynamic
	// work-stealing by default; LeapFrog forces static). Must agree across
	// ranks, though in PerSample mode the result does not depend on it.
	Schedule imm.Schedule
	// Kernel selects the intra-rank sampling kernel (imm.KernelFused by
	// default; leap-frog runs fall back to the scalar kernel, which is the
	// only one that can consume worker-pinned streams). Must agree across
	// ranks, though in PerSample mode the result does not depend on it.
	Kernel imm.Kernel
	// Store selects each rank's resident store for the final selection:
	// imm.StoreCoded transcodes the rank's shard into the byte-coded store
	// after sampling, under a rank-local frequency relabeling (each shard
	// gets its own table — the labeling never crosses the wire, only
	// original-id counters do, so the seeds are unchanged). Must agree
	// across ranks.
	Store imm.StoreKind
	// L is the confidence exponent (0 means 1).
	L float64
	// KeepStore retains this rank's sample shard on the Result after the
	// run: Coded holds the rank's slice of the theta samples (transcoded
	// into the byte-coded representation if the run was flat) and Index its
	// inverted incidence. This is how shard-serving tooling
	// (internal/cluster.BuildShards) extracts a per-rank shard instead of
	// letting the stores die with the run.
	KeepStore bool
}

// Result reports a distributed run; all ranks return identical seed sets.
type Result struct {
	// Seeds is the selected seed set in greedy order.
	Seeds []graph.Vertex
	// CoverageFraction is the global F_R(S).
	CoverageFraction float64
	// EstimatedSpread is n * F_R(S).
	EstimatedSpread float64
	// Theta is the sample count the estimation deemed sufficient.
	Theta int64
	// SamplesGenerated is the global number of samples generated.
	SamplesGenerated int64
	// LocalSamples is the number held by this rank.
	LocalSamples int
	// LowerBound is the martingale lower bound on OPT.
	LowerBound float64
	// Store is the representation this rank's final selection ran over.
	Store imm.StoreKind
	// StoreBytes is this rank's RRR store footprint.
	StoreBytes int64
	// FlatStoreBytes is what this rank's shard costs in the flat layout
	// (equal to StoreBytes for flat runs).
	FlatStoreBytes int64
	// IndexBytes is this rank's inverted-incidence index footprint (the
	// transient lookup structure of the final seed selection).
	IndexBytes int64
	// LocalWork is this rank's sampling work (total stored RRR entries),
	// the quantity whose balance across ranks determines strong-scaling
	// efficiency on real hardware.
	LocalWork int64
	// Phases is this rank's wall-clock phase breakdown.
	Phases trace.Times
	// Ranks is the communicator size and Rank this endpoint's rank.
	Ranks int
	Rank  int
	// ThreadsPerRank is the resolved intra-rank thread count.
	ThreadsPerRank int
	// CommStats is this rank's transport/fault-injection counter snapshot.
	CommStats mpi.CommStats
	// FailedRank is the peer this rank blames for a degraded run (-1 when
	// the run completed cleanly). When >= 0 the Result is partial: Run
	// returned it together with a RankFailedError, and Seeds holds only
	// the seeds selected before the failure.
	FailedRank int
	// Coded and Index are this rank's retained sample shard (byte-coded)
	// and its inverted incidence, populated only under Options.KeepStore on
	// a clean run.
	Coded *rrr.CodedCollection
	Index *rrr.Index
	// SampleIDs maps the retained shard's local sample ids to the global
	// sample indices of the single-process run (KeepStore only). The local
	// slice is a union of per-batch contiguous intervals, not one
	// contiguous range, so the mapping cannot be recomputed from
	// (rank, size) alone; with it, per-sample state that is a pure
	// function of the global index — like PerSample roots, see
	// imm.RootAt — can be re-derived for any shard.
	SampleIDs []int64
}

// state carries the per-rank machinery across phases.
type state struct {
	c       mpi.Comm
	g       *graph.Graph
	opt     Options
	col     *rrr.Collection
	coded   *rrr.CodedCollection // non-nil once the shard is transcoded (Store == imm.StoreCoded)
	global  int64                // samples generated across all ranks so far
	spans   [][2]int64           // global [lo, hi) of each local sample batch, in append order
	threads int

	sampler *imm.BatchSampler // intra-rank multithreaded sampling machinery
}

// Run executes IMMdist over the communicator. Every rank must call Run
// with the same graph and options; the identical seed set is returned on
// every rank.
func Run(c mpi.Comm, g *graph.Graph, opt Options) (*Result, error) {
	if opt.L == 0 {
		opt.L = 1
	}
	if opt.ThreadsPerRank <= 0 {
		opt.ThreadsPerRank = par.DefaultWorkers() / c.Size()
		if opt.ThreadsPerRank < 1 {
			opt.ThreadsPerRank = 1
		}
	}
	iopt := imm.Options{K: opt.K, Epsilon: opt.Epsilon, Model: opt.Model, Seed: opt.Seed, L: opt.L, Workers: 1, Store: opt.Store, Kernel: opt.Kernel}
	if err := validate(iopt, g.NumVertices()); err != nil {
		return nil, err
	}

	res := &Result{Ranks: c.Size(), Rank: c.Rank(), ThreadsPerRank: opt.ThreadsPerRank, Store: opt.Store, FailedRank: -1}
	startOther := time.Now()
	st := &state{
		c: c, g: g, opt: opt,
		col:     rrr.NewCollection(g.NumVertices()),
		threads: opt.ThreadsPerRank,
	}
	st.sampler = imm.NewBatchSampler(g, imm.Options{
		Model: opt.Model, Workers: st.threads, Seed: opt.Seed,
		RNG: opt.RNG, Schedule: opt.Schedule, Kernel: opt.Kernel,
	})
	if opt.RNG == imm.LeapFrog {
		// One global sequence split across size*threads consumers: the
		// leap-frog stride is the total thread count of the job, so the
		// intra-process substreams NewBatchSampler built are replaced by
		// this rank's slice of the job-wide split (rank-major,
		// thread-minor). Pinned streams force the static schedule.
		base := rng.NewLCG(opt.Seed)
		total := c.Size() * st.threads
		streams := make([]*rng.Rand, st.threads)
		for tid := range streams {
			streams[tid] = rng.New(base.LeapFrog(c.Rank()*st.threads+tid, total))
		}
		st.sampler.SetStreams(streams)
	}
	tm := imm.NewAnalysis(g.NumVertices(), opt.K, opt.Epsilon, opt.L)
	res.Phases.Add(trace.Other, time.Since(startOther))

	// finish stamps the rank-local bookkeeping; it runs on the clean path
	// and on degraded exits alike, so a partial Result still reports the
	// shard this rank holds.
	finish := func() {
		res.SamplesGenerated = st.global
		if st.coded != nil {
			res.LocalSamples = st.coded.Count()
			res.StoreBytes = st.coded.Bytes()
			res.FlatStoreBytes = st.coded.FlatBytes()
			res.LocalWork = st.coded.TotalSize()
		} else {
			res.LocalSamples = st.col.Count()
			res.StoreBytes = st.col.Bytes()
			res.FlatStoreBytes = st.col.Bytes()
			res.LocalWork = st.col.TotalSize()
		}
		res.CommStats = mpi.StatsOf(c)
	}
	// degraded converts a rank failure into a partial-result-with-error
	// report: the surviving rank's RRR shard, counters, and any seeds
	// already selected stay available to the caller (and to shard-merging
	// tooling) alongside the typed error. Non-rank failures stay fatal.
	degraded := func(err error) (*Result, error) {
		var rf *mpi.RankFailedError
		if !errors.As(err, &rf) {
			return nil, err
		}
		res.FailedRank = rf.Rank
		finish()
		return res, err
	}

	// Phase 1: distributed EstimateTheta.
	var phaseErr error
	res.Phases.Measure(trace.Estimation, func() {
		lb := 1.0
		for x := 1; x <= tm.MaxX(); x++ {
			if err := st.sampleGlobal(tm.ThetaAt(x) - st.global); err != nil {
				phaseErr = err
				return
			}
			_, cov, err := st.selectSeeds()
			if err != nil {
				phaseErr = err
				return
			}
			nF := tm.N() * float64(cov) / float64(st.global)
			if nF >= tm.ThresholdAt(x) {
				lb = tm.LowerBound(nF)
				break
			}
		}
		res.LowerBound = lb
		res.Theta = tm.FinalTheta(lb)
	})
	if phaseErr != nil {
		return degraded(phaseErr)
	}

	// Phase 2: distributed Sample.
	res.Phases.Measure(trace.Sampling, func() {
		phaseErr = st.sampleGlobal(res.Theta - st.global)
	})
	if phaseErr != nil {
		return degraded(phaseErr)
	}

	// Transcode: once the final theta samples exist, a coded run
	// re-expresses this rank's shard under its own frequency relabeling
	// and drops the flat arena. Local-only — the tables never cross the
	// wire; collectives exchange original-id counters either way.
	// Accounted to Other, like the imm pipeline's transcode.
	if opt.Store == imm.StoreCoded {
		startT := time.Now()
		relab := rrr.NewRelabeling(rrr.IncidenceOf(st.col, st.threads))
		st.coded = rrr.FromCollection(st.col, relab)
		st.col = nil
		res.Phases.Add(trace.Other, time.Since(startT))
	}

	// Phase 2.5: each rank inverts its local shard of R into the
	// vertex->samples index the purge step looks up (index builds inside
	// the estimation loop are accounted to Estimation, as in imm.Run).
	var idx *rrr.Index
	res.Phases.Measure(trace.IndexBuild, func() {
		if st.coded != nil {
			idx = rrr.BuildIndexCoded(st.coded, st.threads)
		} else {
			idx = rrr.BuildIndex(st.col, st.threads)
		}
	})
	res.IndexBytes = idx.Bytes()

	// Phase 3: distributed SelectSeeds. On a rank failure the seeds
	// selected before the collective broke are kept — the partial result.
	res.Phases.Measure(trace.SelectSeeds, func() {
		seeds, cov, err := st.selectSeedsIndexed(idx)
		res.Seeds = seeds
		res.CoverageFraction = float64(cov) / float64(st.global)
		res.EstimatedSpread = res.CoverageFraction * tm.N()
		phaseErr = err
	})
	if phaseErr != nil {
		return degraded(phaseErr)
	}

	// KeepStore: hand the rank's shard to the caller instead of letting it
	// die with the run. A flat run is transcoded into the byte-coded store
	// under the identity labeling first — the representation shard
	// snapshots and transfers speak (the index is labeling-invariant, so
	// it carries over untouched).
	if opt.KeepStore {
		if st.coded == nil {
			startK := time.Now()
			st.coded = rrr.FromCollection(st.col, nil)
			st.col = nil
			res.Phases.Add(trace.Other, time.Since(startK))
		}
		res.Coded = st.coded
		res.Index = idx
		res.SampleIDs = make([]int64, 0, st.coded.Count())
		for _, sp := range st.spans {
			for g := sp[0]; g < sp[1]; g++ {
				res.SampleIDs = append(res.SampleIDs, g)
			}
		}
	}

	finish()
	return res, nil
}

func validate(o imm.Options, n int) error {
	if n < 2 {
		return fmt.Errorf("dist: graph must have at least 2 vertices")
	}
	if o.K < 1 || o.K > n {
		return fmt.Errorf("dist: k = %d out of [1, %d]", o.K, n)
	}
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		return fmt.Errorf("dist: epsilon = %v out of (0, 1)", o.Epsilon)
	}
	if o.Store > imm.StoreCoded {
		return fmt.Errorf("dist: unknown store kind %d", uint8(o.Store))
	}
	return nil
}

// sampleGlobal generates `count` samples globally: rank r generates the
// contiguous sub-batch Interval(count, p, r), multithreaded within the
// rank by the shared batch sampler. Sample identities are the global
// indices st.global + i, so in PerSample mode the union of all ranks'
// samples is independent of p — and of the intra-rank schedule.
func (st *state) sampleGlobal(count int64) error {
	if count <= 0 {
		return nil
	}
	lo, hi := par.Interval(int(count), st.c.Size(), st.c.Rank())
	if local := hi - lo; local > 0 {
		st.sampler.SampleAt(st.col, uint64(st.global+int64(lo)), local)
		st.spans = append(st.spans, [2]int64{st.global + int64(lo), st.global + int64(hi)})
	}
	st.global += count
	return nil
}

// selectSeeds builds the local shard's inverted index and runs the indexed
// distributed selection (the estimation-loop entry point; the final
// selection times the build separately via trace.IndexBuild).
func (st *state) selectSeeds() ([]graph.Vertex, int64, error) {
	return st.selectSeedsIndexed(rrr.BuildIndex(st.col, st.threads))
}

// selectSeedsIndexed is the distributed Algorithm 4: global counters via
// AllReduce, identical local argmax on every rank, local purge by index
// lookup over the rank's shard of R, AllReduce of the decrements. Returns
// the seeds and the global covered count; on a collective failure the
// seeds chosen so far come back alongside the error.
func (st *state) selectSeedsIndexed(idx *rrr.Index) ([]graph.Vertex, int64, error) {
	n := st.g.NumVertices()
	k := st.opt.K
	counter := make([]int64, n)
	if st.coded != nil {
		// The shard index's degree column is exactly the population count
		// CountRange would produce, with no store decode at all.
		for v := 0; v < n; v++ {
			counter[v] = idx.Degree(graph.Vertex(v))
		}
	} else {
		st.countLocal(counter, nil)
	}
	if err := mpi.AllReduce(st.c, counter, mpi.Sum); err != nil {
		return nil, 0, err
	}

	covered := rrr.NewBitset(st.localCount())
	chosen := make([]bool, n)
	seeds := make([]graph.Vertex, 0, k)
	var coveredCount int64
	dec := make([]int64, n)
	var matched []int32
	// Coded shards decode purged samples once, sequentially, into a flat
	// scratch arena; the parallel decrement pass then filter-scans each
	// decoded sample (members arrive in code order — the decrements
	// commute, so the counters match the flat path exactly).
	var arenaVerts []graph.Vertex
	arenaOffs := []int64{0}
	for len(seeds) < k {
		// Identical argmax on every rank: deterministic tie-breaking.
		best, arg := int64(-1), -1
		for v := 0; v < n; v++ {
			if !chosen[v] && counter[v] > best {
				best, arg = counter[v], v
			}
		}
		if arg < 0 {
			break
		}
		v := graph.Vertex(arg)
		seeds = append(seeds, v)
		chosen[arg] = true
		coveredCount += counter[v]
		// Local purge: the seed's uncovered local samples come straight
		// off its incidence list (marked covered before the parallel
		// region); decrement accumulation stays multithreaded over vertex
		// intervals, synchronization-free as in Algorithm 4.
		clear(dec)
		matched = matched[:0]
		for _, j := range idx.SamplesOf(v) {
			if covered.Get(int(j)) {
				continue
			}
			covered.Set(int(j))
			matched = append(matched, j)
		}
		p := st.threads
		if p > n {
			p = n
		}
		if st.coded != nil {
			arenaVerts = arenaVerts[:0]
			arenaOffs = arenaOffs[:1]
			for _, j := range matched {
				arenaVerts = st.coded.AppendMembers(int(j), arenaVerts)
				arenaOffs = append(arenaOffs, int64(len(arenaVerts)))
			}
			par.Run(p, func(rank int) {
				vl, vh := par.Interval(n, p, rank)
				for s := 0; s < len(arenaOffs)-1; s++ {
					for _, u := range arenaVerts[arenaOffs[s]:arenaOffs[s+1]] {
						if u >= graph.Vertex(vl) && u < graph.Vertex(vh) {
							dec[u]++
						}
					}
				}
			})
		} else {
			par.Run(p, func(rank int) {
				vl, vh := par.Interval(n, p, rank)
				for _, j := range matched {
					for _, u := range st.col.RangeOf(int(j), graph.Vertex(vl), graph.Vertex(vh)) {
						dec[u]++
					}
				}
			})
		}
		if err := mpi.AllReduce(st.c, dec, mpi.Sum); err != nil {
			return seeds, coveredCount, err
		}
		for u := range counter {
			counter[u] -= dec[u]
		}
	}
	return seeds, coveredCount, nil
}

// localCount returns the number of samples this rank's resident shard
// holds, whichever store it lives in.
func (st *state) localCount() int {
	if st.coded != nil {
		return st.coded.Count()
	}
	return st.col.Count()
}

// countLocal fills counter with this rank's per-vertex sample membership
// counts, multithreaded over vertex intervals.
func (st *state) countLocal(counter []int64, covered []bool) {
	n := st.g.NumVertices()
	p := st.threads
	if p > n {
		p = n
	}
	cnt32 := make([]int32, n)
	par.Run(p, func(rank int) {
		vl, vh := par.Interval(n, p, rank)
		st.col.CountRange(cnt32, covered, graph.Vertex(vl), graph.Vertex(vh))
	})
	for i, c := range cnt32 {
		counter[i] = int64(c)
	}
}
