package dist

import (
	"math"
	"net"
	"slices"
	"sync"
	"testing"

	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/mpi"
	"influmax/internal/rng"
)

func testGraph(seed uint64, n, m int) *graph.Graph {
	r := rng.New(rng.NewLCG(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			b.Add(graph.Vertex(u), graph.Vertex(v), 0)
		}
	}
	g := b.Build()
	g.AssignUniform(seed ^ 0xbeef)
	return g
}

// runDist executes a distributed run on a local cluster of p ranks and
// returns every rank's result.
func runDist(t *testing.T, p int, g *graph.Graph, opt Options) []*Result {
	t.Helper()
	comms := mpi.NewLocalCluster(p)
	results := make([]*Result, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			results[rank], errs[rank] = Run(comms[rank], g, opt)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return results
}

func TestDistMatchesSharedMemoryIMM(t *testing.T) {
	// In PerSample mode the distributed run must select the exact seed set
	// of the shared-memory implementation, for any rank count.
	g := testGraph(1, 100, 700)
	ref, err := imm.Run(g, imm.Options{K: 6, Epsilon: 0.5, Model: diffuse.IC, Workers: 2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 5} {
		results := runDist(t, p, g, Options{K: 6, Epsilon: 0.5, Model: diffuse.IC, ThreadsPerRank: 2, Seed: 17})
		for rank, res := range results {
			if !slices.Equal(res.Seeds, ref.Seeds) {
				t.Fatalf("p=%d rank %d: seeds %v != shared-memory %v", p, rank, res.Seeds, ref.Seeds)
			}
			if res.Theta != ref.Theta {
				t.Fatalf("p=%d rank %d: theta %d != %d", p, rank, res.Theta, ref.Theta)
			}
		}
	}
}

func TestDistAllRanksAgree(t *testing.T) {
	g := testGraph(2, 80, 600)
	results := runDist(t, 4, g, Options{K: 5, Epsilon: 0.5, Model: diffuse.IC, Seed: 3, ThreadsPerRank: 1})
	for rank := 1; rank < 4; rank++ {
		if !slices.Equal(results[rank].Seeds, results[0].Seeds) {
			t.Fatalf("rank %d seeds differ: %v vs %v", rank, results[rank].Seeds, results[0].Seeds)
		}
		if results[rank].CoverageFraction != results[0].CoverageFraction {
			t.Fatalf("rank %d coverage differs", rank)
		}
	}
}

func TestDistSamplePartitioning(t *testing.T) {
	g := testGraph(3, 60, 400)
	p := 3
	results := runDist(t, p, g, Options{K: 4, Epsilon: 0.5, Model: diffuse.IC, Seed: 5, ThreadsPerRank: 1})
	var local int64
	for _, res := range results {
		local += int64(res.LocalSamples)
	}
	if local != results[0].SamplesGenerated {
		t.Fatalf("local samples sum %d != global %d", local, results[0].SamplesGenerated)
	}
	if results[0].SamplesGenerated < results[0].Theta {
		t.Fatalf("generated %d < theta %d", results[0].SamplesGenerated, results[0].Theta)
	}
}

func TestDistLeapFrogMode(t *testing.T) {
	g := testGraph(4, 80, 500)
	results := runDist(t, 2, g, Options{K: 4, Epsilon: 0.5, Model: diffuse.IC, Seed: 9, RNG: imm.LeapFrog, ThreadsPerRank: 2})
	if len(results[0].Seeds) != 4 {
		t.Fatalf("leap-frog dist returned %d seeds", len(results[0].Seeds))
	}
	if !slices.Equal(results[0].Seeds, results[1].Seeds) {
		t.Fatal("leap-frog ranks disagree on seeds")
	}
}

func TestDistLTModel(t *testing.T) {
	g := testGraph(5, 100, 800)
	g.NormalizeLT()
	results := runDist(t, 2, g, Options{K: 5, Epsilon: 0.5, Model: diffuse.LT, Seed: 6, ThreadsPerRank: 1})
	if len(results[0].Seeds) != 5 {
		t.Fatalf("LT dist returned %d seeds", len(results[0].Seeds))
	}
}

func TestDistSpreadQuality(t *testing.T) {
	// The distributed coverage-based spread estimate must agree with a
	// forward Monte Carlo evaluation of the same seed set.
	g := testGraph(6, 70, 450)
	results := runDist(t, 3, g, Options{K: 4, Epsilon: 0.3, Model: diffuse.IC, Seed: 8, ThreadsPerRank: 1})
	res := results[0]
	fwd, se := diffuse.EstimateSpread(g, diffuse.IC, res.Seeds, 20000, 0, 11)
	if diff := math.Abs(res.EstimatedSpread - fwd); diff > 5*se+0.05*fwd+1 {
		t.Fatalf("dist spread %.2f vs forward %.2f", res.EstimatedSpread, fwd)
	}
}

func TestDistValidation(t *testing.T) {
	g := testGraph(7, 30, 100)
	comms := mpi.NewLocalCluster(1)
	for _, opt := range []Options{
		{K: 0, Epsilon: 0.5, Model: diffuse.IC},
		{K: 31, Epsilon: 0.5, Model: diffuse.IC},
		{K: 3, Epsilon: 1.5, Model: diffuse.IC},
	} {
		if _, err := Run(comms[0], g, opt); err == nil {
			t.Errorf("invalid options accepted: %+v", opt)
		}
	}
}

func TestDistPhaseTimings(t *testing.T) {
	g := testGraph(8, 60, 300)
	results := runDist(t, 2, g, Options{K: 3, Epsilon: 0.5, Model: diffuse.IC, Seed: 2, ThreadsPerRank: 1})
	if results[0].Phases.Total() <= 0 {
		t.Fatal("phase timings empty")
	}
}

func TestDistOverTCP(t *testing.T) {
	// End-to-end over real sockets: the same run as the local transport.
	g := testGraph(9, 60, 400)
	opt := Options{K: 3, Epsilon: 0.5, Model: diffuse.IC, Seed: 31, ThreadsPerRank: 1}
	refResults := runDist(t, 2, g, opt)

	addrs := make([]string, 2)
	lns := make([]net.Listener, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	results := make([]*Result, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := mpi.DialTCP(mpi.TCPConfig{Rank: rank, Addrs: addrs})
			if err != nil {
				errs[rank] = err
				return
			}
			defer c.Close()
			results[rank], errs[rank] = Run(c, g, opt)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("tcp rank %d: %v", r, err)
		}
	}
	if !slices.Equal(results[0].Seeds, refResults[0].Seeds) {
		t.Fatalf("tcp seeds %v != local-transport seeds %v", results[0].Seeds, refResults[0].Seeds)
	}
}
