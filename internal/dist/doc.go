// Package dist implements IMMdist, the paper's distributed-memory IMM
// (Section 3.2), on top of the internal/mpi substrate.
//
// Design, following the paper exactly:
//
//   - every rank stores the entire input graph and generates a distinct
//     contiguous batch of theta/p samples (sampling dominates and
//     parallelizes embarrassingly; memory for R is what actually needs to
//     scale out);
//   - pseudorandom numbers come either from Leap Frog substreams of one
//     global LCG sequence (the paper's TRNG discipline) or from per-sample
//     derived streams (reproducible irrespective of p);
//   - seed selection keeps an n-entry counter array per rank: local counts
//     are AllReduce-summed into global counts, each rank then picks the
//     same argmax locally, purges its local samples, and the decrements
//     are AllReduce-summed again — k rounds, O(k n log p) communication;
//   - within a rank, sampling and counting are additionally multithreaded
//     (the hybrid MPI+OpenMP model), via goroutines here.
//
// Observability: each rank's Result carries its own phase breakdown,
// sample counts and store footprint (the per-rank quantities behind
// Figures 7-8). Report is the collective that turns them into one
// metrics.RunReport — every rank contributes a RankReport, gathered to
// rank 0 over mpi.GatherBytes and merged there, so a distributed run
// emits exactly one machine-readable JSON document. RunPartitioned (the
// graph-partitioned future-work extension) reports through the same
// RunReport type, minus the per-rank gather.
package dist
