package dist

import (
	"errors"
	"fmt"
	"net"
	"slices"
	"sync"
	"testing"
	"time"

	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/metrics"
	"influmax/internal/mpi"
)

// This file is the distributed correctness suite under injected faults:
// IMMdist must select byte-identical seed sets through a delaying,
// duplicating, dropping, reordering transport (the injector restores the
// Comm contract), the same fault plan must reproduce the same schedule,
// and a killed rank must degrade every survivor to a typed partial
// result instead of a hang.

// equivalencePlans are fault plans without kills: correctness must be
// unaffected by them.
var equivalencePlans = []struct {
	name string
	plan mpi.FaultPlan
}{
	{"delay", mpi.FaultPlan{Seed: 1, DelayProb: 0.2, MaxDelay: 300 * time.Microsecond}},
	{"dup-reorder", mpi.FaultPlan{Seed: 2, DupProb: 0.2, ReorderProb: 0.2}},
	{"drop-dup-reorder", mpi.FaultPlan{Seed: 3, DropProb: 0.2, MaxRedeliver: 2, DupProb: 0.1, ReorderProb: 0.15}},
}

// runDistPlan executes a distributed run on p ranks with every endpoint
// wrapped in the fault plan, over the in-process transport or TCP.
// Unlike runDist it surfaces per-rank errors instead of failing, so kill
// plans can be asserted on.
func runDistPlan(t *testing.T, p int, tcp bool, plan mpi.FaultPlan, g *graph.Graph, opt Options) ([]*Result, []error) {
	t.Helper()
	var inner []mpi.Comm
	if tcp {
		inner = dialTestTCP(t, p)
	} else {
		inner = mpi.NewLocalCluster(p)
	}
	results := make([]*Result, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := mpi.WithFaults(inner[rank], plan)
			defer c.Close()
			results[rank], errs[rank] = Run(c, g, opt)
		}(r)
	}
	wg.Wait()
	return results, errs
}

// freeTestAddrs reserves p distinct loopback ports.
func freeTestAddrs(t *testing.T, p int) []string {
	t.Helper()
	addrs := make([]string, p)
	lns := make([]net.Listener, p)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// dialTestTCP brings up a full TCP mesh on loopback.
func dialTestTCP(t *testing.T, p int) []mpi.Comm {
	t.Helper()
	addrs := freeTestAddrs(t, p)
	comms := make([]mpi.Comm, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comms[rank], errs[rank] = mpi.DialTCP(mpi.TCPConfig{Rank: rank, Addrs: addrs})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("dial rank %d: %v", r, err)
		}
	}
	return comms
}

func TestDistEquivalentUnderFaultPlans(t *testing.T) {
	// Fixed-seed graph, PerSample mode: for every plan x transport x rank
	// count, IMMdist's seeds must be byte-identical to sequential IMM's.
	g := testGraph(11, 90, 600)
	opt := Options{K: 5, Epsilon: 0.5, Model: diffuse.IC, Seed: 17, ThreadsPerRank: 1}
	ref, err := imm.Run(g, imm.Options{K: 5, Epsilon: 0.5, Model: diffuse.IC, Workers: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range equivalencePlans {
		for _, transport := range []string{"local", "tcp"} {
			for _, p := range []int{2, 4} {
				t.Run(fmt.Sprintf("%s/%s/p%d", tp.name, transport, p), func(t *testing.T) {
					results, errs := runDistPlan(t, p, transport == "tcp", tp.plan, g, opt)
					var injected int64
					for r := 0; r < p; r++ {
						if errs[r] != nil {
							t.Fatalf("rank %d: %v", r, errs[r])
						}
						if !slices.Equal(results[r].Seeds, ref.Seeds) {
							t.Fatalf("rank %d seeds %v != sequential %v", r, results[r].Seeds, ref.Seeds)
						}
						if results[r].Theta != ref.Theta {
							t.Fatalf("rank %d theta %d != %d", r, results[r].Theta, ref.Theta)
						}
						if results[r].FailedRank != -1 {
							t.Fatalf("rank %d reports failed rank %d on a kill-free plan", r, results[r].FailedRank)
						}
						st := results[r].CommStats
						injected += st.DelaysInjected + st.DropsInjected + st.DupsInjected + st.ReordersInjected
					}
					if injected == 0 {
						t.Fatal("plan injected no faults: the equivalence run proved nothing")
					}
				})
			}
		}
	}
}

func TestDistFaultScheduleDeterminism(t *testing.T) {
	// The same plan seed must reproduce the same fault schedule and the
	// same outcome: identical seeds and identical per-rank injected
	// counters across two runs. (Retries are excluded: they depend on I/O
	// timing, not the plan.)
	g := testGraph(12, 80, 500)
	opt := Options{K: 4, Epsilon: 0.5, Model: diffuse.IC, Seed: 23, ThreadsPerRank: 1}
	plan := mpi.FaultPlan{Seed: 77, DelayProb: 0.1, MaxDelay: 200 * time.Microsecond,
		DropProb: 0.25, DupProb: 0.25, ReorderProb: 0.25}
	const p = 3
	run := func() ([]*Result, []mpi.CommStats) {
		results, errs := runDistPlan(t, p, false, plan, g, opt)
		stats := make([]mpi.CommStats, p)
		for r := 0; r < p; r++ {
			if errs[r] != nil {
				t.Fatalf("rank %d: %v", r, errs[r])
			}
			stats[r] = results[r].CommStats
			stats[r].Retries = 0
		}
		return results, stats
	}
	res1, st1 := run()
	res2, st2 := run()
	for r := 0; r < p; r++ {
		if !slices.Equal(res1[r].Seeds, res2[r].Seeds) {
			t.Fatalf("rank %d: seeds differ across identical plans: %v vs %v", r, res1[r].Seeds, res2[r].Seeds)
		}
		if st1[r] != st2[r] {
			t.Fatalf("rank %d: fault schedules differ across identical plans:\n  first  %+v\n  second %+v", r, st1[r], st2[r])
		}
	}
	var injected bool
	for r := 0; r < p; r++ {
		injected = injected || st1[r].Injected()
	}
	if !injected {
		t.Fatal("no faults injected; determinism not exercised")
	}
}

func TestDistRankKillDegradesGracefully(t *testing.T) {
	// Kill one rank mid-run: every rank (victim included) must come back
	// with a RankFailedError and a partial Result — not a hang, not a nil.
	g := testGraph(13, 70, 450)
	opt := Options{K: 4, Epsilon: 0.5, Model: diffuse.IC, Seed: 31, ThreadsPerRank: 1}
	const p, victim = 4, 1
	plan := mpi.FaultPlan{
		Seed:        9,
		RecvTimeout: 300 * time.Millisecond,
		Crashes:     []mpi.RankCrash{{Rank: victim, AfterSends: 6}},
	}
	start := time.Now()
	results, errs := runDistPlan(t, p, false, plan, g, opt)
	if el := time.Since(start); el > 60*time.Second {
		t.Fatalf("degraded run took %v; failure detection is not bounding waits", el)
	}
	for r := 0; r < p; r++ {
		var rf *mpi.RankFailedError
		if !errors.As(errs[r], &rf) {
			t.Fatalf("rank %d: %v, want RankFailedError", r, errs[r])
		}
		if results[r] == nil {
			t.Fatalf("rank %d: nil result alongside rank failure; want partial result", r)
		}
		if results[r].FailedRank < 0 || results[r].FailedRank >= p {
			t.Fatalf("rank %d: FailedRank = %d", r, results[r].FailedRank)
		}
	}
	if !errors.Is(errs[victim], mpi.ErrInjectedCrash) {
		t.Errorf("victim's error %v does not carry ErrInjectedCrash", errs[victim])
	}
}

func TestDistReportCarriesCommStats(t *testing.T) {
	// Fault counters must land in the merged RunReport's metrics snapshot
	// under their "mpi/..." names.
	g := testGraph(14, 60, 350)
	opt := Options{K: 3, Epsilon: 0.5, Model: diffuse.IC, Seed: 41, ThreadsPerRank: 1}
	plan := mpi.FaultPlan{Seed: 5, DupProb: 0.5, ReorderProb: 0.3}
	const p = 2
	inner := mpi.NewLocalCluster(p)
	reports := make([]*metrics.RunReport, p)
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := mpi.WithFaults(inner[rank], plan)
			defer c.Close()
			res, err := Run(c, g, opt)
			if err != nil {
				errs[rank] = err
				return
			}
			rep, err := Report(c, opt, res)
			if err != nil {
				errs[rank] = err
				return
			}
			reports[rank] = rep
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	rep := reports[0]
	if rep == nil || rep.Metrics == nil {
		t.Fatal("rank 0 report missing metrics snapshot")
	}
	if rep.Metrics.Counters["mpi/dups-injected"] == 0 {
		t.Fatalf("merged counters %v missing mpi/dups-injected", rep.Metrics.Counters)
	}
	var perRank int64
	for _, sub := range rep.PerRank {
		perRank += sub.Comm["mpi/dups-injected"]
	}
	if perRank != rep.Metrics.Counters["mpi/dups-injected"] {
		t.Fatalf("merged dups %d != per-rank sum %d", rep.Metrics.Counters["mpi/dups-injected"], perRank)
	}
}
