package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"slices"
	"time"

	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/mpi"
	"influmax/internal/par"
	"influmax/internal/rng"
	"influmax/internal/rrr"
	"influmax/internal/trace"
)

// This file implements the paper's first future-work item: "extension to
// settings where the input graph is also partitioned (in addition to R)".
//
// Decomposition. The vertex set is split into p contiguous intervals; rank
// r materializes only the incoming edges of its owned vertices (the data a
// reverse traversal expands). Reverse-reachability sampling becomes a
// bulk-synchronous computation: each superstep expands the local frontier
// of every in-flight sample, and frontier vertices owned by other ranks
// are exchanged point-to-point. Edge coins are common-random-numbers —
// edge e is live in sample s iff hash(seed, s, e) < p(e) — so the sampled
// live-edge subgraph, and therefore every RRR set, is a pure function of
// (seed, sample id), independent of p. The resulting store is
// vertex-partitioned: rank r holds, for every sample, the members inside
// its interval.
//
// Seed selection exploits that layout: the per-vertex counters of
// Algorithm 4 are already local (each rank owns its interval), the
// per-round argmax is a tiny AllGather, and purging broadcasts only the
// matched sample ids from the owner of the chosen seed — O(k (p + |R_v|))
// communication instead of the sample-partitioned version's O(k n log p).

// PartOptions configures a graph-partitioned run. All ranks must pass
// identical options.
type PartOptions struct {
	// K is the seed-set cardinality.
	K int
	// Epsilon is the accuracy parameter in (0, 1).
	Epsilon float64
	// Model is the diffusion model.
	Model diffuse.Model
	// Seed feeds the common-random-numbers coins; must agree across ranks.
	Seed uint64
	// L is the confidence exponent (0 means 1).
	L float64
	// Batch is the number of samples in flight per superstep wave
	// (0 means 1024).
	Batch int
	// Threads is the intra-rank thread count for the CPU-bound pieces of a
	// wave (member-list sorting, shard index builds); <= 0 means 1. The
	// result does not depend on it.
	Threads int
	// Schedule selects how those intra-rank loops are scheduled (dynamic
	// work-stealing by default; the per-wave sorting work is as skewed as
	// the RRR set sizes themselves).
	Schedule imm.Schedule
	// Kernel is accepted for symmetry with dist.Options and validated;
	// the graph-partitioned wave expansion batches every in-flight sample
	// over each rank's shard by construction (each superstep is one fused
	// pass over the local CSR), so there is no separate scalar path to
	// select and the result does not depend on it.
	Kernel imm.Kernel
	// Store selects each rank's resident store for the final selection,
	// exactly as dist.Options.Store: imm.StoreCoded transcodes the rank's
	// vertex-partitioned shard after sampling under a rank-local frequency
	// relabeling. Must agree across ranks; the seeds do not depend on it.
	Store imm.StoreKind
}

// PartResult reports a graph-partitioned run.
type PartResult struct {
	// Seeds is the seed set, identical on every rank.
	Seeds []graph.Vertex
	// CoverageFraction and EstimatedSpread mirror dist.Result.
	CoverageFraction float64
	EstimatedSpread  float64
	// Theta and SamplesGenerated mirror dist.Result (samples are global;
	// every rank stores its vertex-interval slice of each).
	Theta            int64
	SamplesGenerated int64
	// OwnedLo, OwnedHi is this rank's vertex interval.
	OwnedLo, OwnedHi graph.Vertex
	// Store is the representation this rank's final selection ran over.
	Store imm.StoreKind
	// StoreBytes is this rank's partition of the RRR store.
	StoreBytes int64
	// FlatStoreBytes is what this rank's partition costs in the flat
	// layout (equal to StoreBytes for flat runs).
	FlatStoreBytes int64
	// IndexBytes is this rank's inverted-incidence index footprint over
	// its local shard (owned-interval members only).
	IndexBytes int64
	// Phases is the wall-clock breakdown.
	Phases trace.Times
	// Ranks is the communicator size.
	Ranks int
	// CommStats is this rank's transport/fault-injection counter snapshot.
	CommStats mpi.CommStats
	// FailedRank mirrors dist.Result: -1 on a clean run, otherwise the
	// peer blamed for the degraded (partial) result returned with a
	// RankFailedError.
	FailedRank int
}

// partition is the slice of the graph a rank owns: the in-edges of its
// vertex interval, with global in-CSR slot ids preserved for the CRN
// coins.
type partition struct {
	n      int // global vertex count
	lo, hi graph.Vertex
	// off is indexed by (v - lo); srcs/ws/slot hold the in-edges.
	off  []int64
	srcs []graph.Vertex
	ws   []float32
	slot []int64
	m    int64 // global edge count (coin-space layout)
}

// carvePartition copies rank's owned in-edges out of g. In a production
// deployment each rank would load only this data from storage; carving
// makes the algorithm's data access honest — nothing below touches g.
func carvePartition(g *graph.Graph, rank, size int) *partition {
	n := g.NumVertices()
	lo, hi := par.Interval(n, size, rank)
	p := &partition{n: n, lo: graph.Vertex(lo), hi: graph.Vertex(hi), m: g.NumEdges()}
	p.off = make([]int64, hi-lo+1)
	for v := lo; v < hi; v++ {
		srcs, ws := g.InNeighbors(graph.Vertex(v))
		base := g.InEdgeBase(graph.Vertex(v))
		p.off[v-lo+1] = p.off[v-lo] + int64(len(srcs))
		p.srcs = append(p.srcs, srcs...)
		p.ws = append(p.ws, ws...)
		for i := range srcs {
			p.slot = append(p.slot, base+int64(i))
		}
	}
	return p
}

// inEdges returns the owned in-edges of v.
func (p *partition) inEdges(v graph.Vertex) (srcs []graph.Vertex, ws []float32, slots []int64) {
	i := v - p.lo
	a, b := p.off[i], p.off[i+1]
	return p.srcs[a:b], p.ws[a:b], p.slot[a:b]
}

// owner returns the rank owning vertex v under the standard interval
// split.
func owner(n, size int, v graph.Vertex) int {
	// Invert Interval: the owner is the largest r with n*r/p <= v.
	r := (int(v)*size + size - 1) / n
	for r < size-1 && int(v) >= n*(r+1)/size {
		r++
	}
	for r > 0 && int(v) < n*r/size {
		r--
	}
	return r
}

// sampleKey derives the CRN key of a global sample id.
func sampleKey(seed uint64, id int64) uint64 {
	return rng.Mix64(seed ^ 0x9e3779b97f4a7c15 ^ uint64(id)*0xd1342543de82ef95)
}

// coin returns the uniform coin of (key, identity).
func coin(key, id uint64) float64 {
	return float64(rng.Mix64(key^(id*0x9e3779b97f4a7c15+0x632be59bd9b4e019))>>11) * (1.0 / (1 << 53))
}

// pair is one frontier item crossing ranks: sample index within the batch
// plus the vertex entering it.
type pair struct {
	s uint32
	v graph.Vertex
}

func encodePairs(ps []pair) []byte {
	buf := make([]byte, 8*len(ps))
	for i, p := range ps {
		binary.LittleEndian.PutUint32(buf[8*i:], p.s)
		binary.LittleEndian.PutUint32(buf[8*i+4:], uint32(p.v))
	}
	return buf
}

func decodePairs(buf []byte) []pair {
	ps := make([]pair, len(buf)/8)
	for i := range ps {
		ps[i].s = binary.LittleEndian.Uint32(buf[8*i:])
		ps[i].v = graph.Vertex(binary.LittleEndian.Uint32(buf[8*i+4:]))
	}
	return ps
}

const tagFrontier = 100

// partState carries the run state.
type partState struct {
	c      mpi.Comm
	part   *partition
	opt    PartOptions
	col    *rrr.Collection      // vertex-partitioned: sample -> owned members
	coded  *rrr.CodedCollection // non-nil once the shard is transcoded (Store == imm.StoreCoded)
	global int64                // samples generated so far

	// batch scratch
	visited []bool // [batch * ownedWidth] bitfield, rebuilt per wave
}

// RunPartitioned executes graph-partitioned IMM over the communicator.
// Every rank must call it with the same graph and options; the seed set it
// returns is identical on every rank and — because the live-edge coins
// are per-sample — identical for every rank count.
func RunPartitioned(c mpi.Comm, g *graph.Graph, opt PartOptions) (*PartResult, error) {
	if opt.L == 0 {
		opt.L = 1
	}
	if opt.Batch <= 0 {
		opt.Batch = 1024
	}
	if opt.Threads <= 0 {
		opt.Threads = 1
	}
	iopt := imm.Options{K: opt.K, Epsilon: opt.Epsilon, Model: opt.Model, Seed: opt.Seed, L: opt.L, Workers: 1, Store: opt.Store, Kernel: opt.Kernel}
	if err := validate(iopt, g.NumVertices()); err != nil {
		return nil, err
	}
	res := &PartResult{Ranks: c.Size(), Store: opt.Store, FailedRank: -1}
	startOther := time.Now()
	st := &partState{
		c:    c,
		part: carvePartition(g, c.Rank(), c.Size()),
		opt:  opt,
		col:  rrr.NewCollection(g.NumVertices()),
	}
	res.OwnedLo, res.OwnedHi = st.part.lo, st.part.hi
	tm := imm.NewAnalysis(g.NumVertices(), opt.K, opt.Epsilon, opt.L)
	res.Phases.Add(trace.Other, time.Since(startOther))

	// finish / degraded mirror dist.Run: rank-local bookkeeping is stamped
	// on clean and degraded exits alike, and a rank failure yields the
	// partial result together with the typed error.
	finish := func() {
		res.SamplesGenerated = st.global
		if st.coded != nil {
			res.StoreBytes = st.coded.Bytes()
			res.FlatStoreBytes = st.coded.FlatBytes()
		} else {
			res.StoreBytes = st.col.Bytes()
			res.FlatStoreBytes = st.col.Bytes()
		}
		res.CommStats = mpi.StatsOf(c)
	}
	degraded := func(err error) (*PartResult, error) {
		var rf *mpi.RankFailedError
		if !errors.As(err, &rf) {
			return nil, err
		}
		res.FailedRank = rf.Rank
		finish()
		return res, err
	}

	var phaseErr error
	res.Phases.Measure(trace.Estimation, func() {
		lb := 1.0
		for x := 1; x <= tm.MaxX(); x++ {
			if err := st.sample(tm.ThetaAt(x) - st.global); err != nil {
				phaseErr = err
				return
			}
			_, cov, err := st.selectSeeds()
			if err != nil {
				phaseErr = err
				return
			}
			nF := tm.N() * float64(cov) / float64(st.global)
			if nF >= tm.ThresholdAt(x) {
				lb = tm.LowerBound(nF)
				break
			}
		}
		res.Theta = tm.FinalTheta(lb)
	})
	if phaseErr != nil {
		return degraded(phaseErr)
	}

	res.Phases.Measure(trace.Sampling, func() {
		phaseErr = st.sample(res.Theta - st.global)
	})
	if phaseErr != nil {
		return degraded(phaseErr)
	}

	// Transcode: a coded run re-expresses this rank's vertex-partitioned
	// shard under its own frequency relabeling and drops the flat arena
	// (rank-local, accounted to Other — see dist.Run).
	if opt.Store == imm.StoreCoded {
		startT := time.Now()
		relab := rrr.NewRelabeling(rrr.IncidenceOf(st.col, opt.Threads))
		st.coded = rrr.FromCollection(st.col, relab)
		st.col = nil
		res.Phases.Add(trace.Other, time.Since(startT))
	}

	// Each rank inverts its local shard (samples restricted to the owned
	// vertex interval) so the seed owner's purge enumeration is a lookup.
	var idx *rrr.Index
	res.Phases.Measure(trace.IndexBuild, func() {
		if st.coded != nil {
			idx = rrr.BuildIndexCoded(st.coded, opt.Threads)
		} else {
			idx = rrr.BuildIndex(st.col, opt.Threads)
		}
	})
	res.IndexBytes = idx.Bytes()

	res.Phases.Measure(trace.SelectSeeds, func() {
		seeds, cov, err := st.selectSeedsIndexed(idx)
		res.Seeds = seeds
		res.CoverageFraction = float64(cov) / float64(st.global)
		res.EstimatedSpread = res.CoverageFraction * tm.N()
		phaseErr = err
	})
	if phaseErr != nil {
		return degraded(phaseErr)
	}
	finish()
	return res, nil
}

// sample generates `count` global samples in waves of Batch supersteps.
func (st *partState) sample(count int64) error {
	for count > 0 {
		b := int64(st.opt.Batch)
		if b > count {
			b = count
		}
		if err := st.sampleWave(int(b)); err != nil {
			return err
		}
		count -= b
	}
	return nil
}

// sampleWave runs one BSP wave of `batch` concurrent samples with global
// ids [st.global, st.global+batch).
func (st *partState) sampleWave(batch int) error {
	p := st.part
	size, rank := st.c.Size(), st.c.Rank()
	width := int(p.hi - p.lo)
	if len(st.visited) < batch*width {
		st.visited = make([]bool, batch*width)
	} else {
		clear(st.visited[:batch*width])
	}
	visited := func(s int, v graph.Vertex) *bool {
		return &st.visited[s*width+int(v-p.lo)]
	}
	keys := make([]uint64, batch)
	members := make([][]graph.Vertex, batch)
	var frontier []pair

	// Roots: uniform from the sample's own stream; the owner seeds its
	// frontier.
	for s := 0; s < batch; s++ {
		id := st.global + int64(s)
		keys[s] = sampleKey(st.opt.Seed, id)
		r := rng.New(rng.Derive(st.opt.Seed, uint64(id)))
		root := graph.Vertex(r.Intn(p.n))
		if root >= p.lo && root < p.hi {
			*visited(s, root) = true
			members[s] = append(members[s], root)
			frontier = append(frontier, pair{uint32(s), root})
		}
	}

	outgoing := make([][]pair, size)
	for {
		var next []pair
		for i := range outgoing {
			outgoing[i] = outgoing[i][:0]
		}
		// Expand owned frontier vertices.
		for _, f := range frontier {
			s := int(f.s)
			srcs, ws, slots := p.inEdges(f.v)
			switch st.opt.Model {
			case diffuse.IC:
				for i, u := range srcs {
					if coin(keys[s], uint64(slots[i])) >= float64(ws[i]) {
						continue
					}
					st.route(&next, outgoing, visited, members, f.s, u, rank, size)
				}
			case diffuse.LT:
				// One coin per (sample, vertex) selects at most one
				// in-edge, proportionally to the weights.
				t := coin(keys[s], uint64(p.m)+uint64(f.v))
				cum := 0.0
				for i, u := range srcs {
					cum += float64(ws[i])
					if t < cum {
						st.route(&next, outgoing, visited, members, f.s, u, rank, size)
						break
					}
				}
			}
		}
		// Exchange cross-partition frontier items.
		for dst := 0; dst < size; dst++ {
			if dst == rank {
				continue
			}
			if err := st.c.Send(dst, tagFrontier, encodePairs(outgoing[dst])); err != nil {
				return err
			}
		}
		for src := 0; src < size; src++ {
			if src == rank {
				continue
			}
			buf, err := st.c.Recv(src, tagFrontier)
			if err != nil {
				return err
			}
			for _, f := range decodePairs(buf) {
				if vf := visited(int(f.s), f.v); !*vf {
					*vf = true
					members[int(f.s)] = append(members[int(f.s)], f.v)
					next = append(next, f)
				}
			}
		}
		// Global termination: any rank still active?
		active := []int64{int64(len(next))}
		if err := mpi.AllReduce(st.c, active, mpi.Sum); err != nil {
			return err
		}
		if active[0] == 0 {
			break
		}
		frontier = next
	}
	// Commit the wave: every rank appends the batch in sample order. The
	// member-list sorts are the wave's residual CPU-bound work and are as
	// skewed as the sample sizes, so they run under the configured
	// schedule; the appends stay sequential in sample order (the layout
	// contract that keeps shards identical across rank counts).
	sortRange := func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			slices.Sort(members[s])
		}
	}
	if st.opt.Schedule == imm.ScheduleDynamic {
		par.Dynamic(batch, st.opt.Threads, 16, sortRange)
	} else {
		par.ForEach(batch, st.opt.Threads, sortRange)
	}
	for s := 0; s < batch; s++ {
		st.col.Append(members[s])
	}
	st.global += int64(batch)
	return nil
}

// route delivers a newly live vertex either into the local structures or
// into the outbox of its owner.
func (st *partState) route(next *[]pair, outgoing [][]pair, visited func(int, graph.Vertex) *bool,
	members [][]graph.Vertex, s uint32, u graph.Vertex, rank, size int) {
	if u >= st.part.lo && u < st.part.hi {
		if vf := visited(int(s), u); !*vf {
			*vf = true
			members[s] = append(members[s], u)
			*next = append(*next, pair{s, u})
		}
		return
	}
	outgoing[owner(st.part.n, size, u)] = append(outgoing[owner(st.part.n, size, u)], pair{s, u})
}

// selectSeeds builds the local-shard index and runs the indexed selection
// (the estimation-loop entry point; RunPartitioned times the final build
// separately via trace.IndexBuild).
func (st *partState) selectSeeds() ([]graph.Vertex, int64, error) {
	return st.selectSeedsIndexed(rrr.BuildIndex(st.col, st.opt.Threads))
}

// localCount returns the number of samples this rank's resident shard
// holds, whichever store it lives in.
func (st *partState) localCount() int {
	if st.coded != nil {
		return st.coded.Count()
	}
	return st.col.Count()
}

// selectSeedsIndexed is the vertex-partitioned Algorithm 4: counters are
// local to each interval, the argmax is a small AllGather, and only the
// owner of the chosen seed knows (and broadcasts) which samples it covers
// — read directly off the owner's shard index instead of a scan over every
// local sample.
func (st *partState) selectSeedsIndexed(idx *rrr.Index) ([]graph.Vertex, int64, error) {
	p := st.part
	width := int(p.hi - p.lo)
	counter := make([]int32, p.n) // only [lo, hi) is used
	if st.coded != nil {
		// The shard index's degree column equals the CountRange population
		// count over the owned interval (members outside it were never
		// stored in this rank's shard).
		for v := p.lo; v < p.hi; v++ {
			counter[v] = int32(idx.Degree(v))
		}
	} else {
		st.col.CountRange(counter, nil, p.lo, p.hi)
	}
	covered := rrr.NewBitset(st.localCount())
	chosen := make([]bool, width)

	seeds := make([]graph.Vertex, 0, st.opt.K)
	var coveredCount int64
	var decodeBuf []graph.Vertex
	for len(seeds) < st.opt.K {
		// Local best.
		best, arg := int64(-1), int64(-1)
		for v := p.lo; v < p.hi; v++ {
			if chosen[v-p.lo] {
				continue
			}
			if c := int64(counter[v]); c > best {
				best, arg = c, int64(v)
			}
		}
		// Global argmax: gather all (best, arg) pairs.
		pairs, err := mpi.AllGather(st.c, []int64{best, arg})
		if err != nil {
			return seeds, coveredCount, err
		}
		gBest, gArg := int64(-1), int64(-1)
		for _, pr := range pairs {
			if pr[1] < 0 {
				continue
			}
			if pr[0] > gBest || (pr[0] == gBest && pr[1] < gArg) {
				gBest, gArg = pr[0], pr[1]
			}
		}
		if gArg < 0 {
			break
		}
		v := graph.Vertex(gArg)
		seeds = append(seeds, v)
		coveredCount += gBest
		ownerRank := owner(p.n, st.c.Size(), v)
		if ownerRank == st.c.Rank() {
			chosen[v-p.lo] = true
		}
		// The owner reads the uncovered samples containing v off its shard
		// index (v lies in the owner's interval, so its incidence is fully
		// local there).
		var matched []int64
		if ownerRank == st.c.Rank() {
			for _, j := range idx.SamplesOf(v) {
				if !covered.Get(int(j)) {
					matched = append(matched, int64(j))
				}
			}
		}
		matched, err = mpi.Broadcast(st.c, ownerRank, matched)
		if err != nil {
			return seeds, coveredCount, err
		}
		// Everyone purges those samples from their interval's counters. A
		// coded shard decodes each matched sample and filter-scans the
		// owned interval; decrements commute, so the counters match the
		// flat path exactly.
		for _, j := range matched {
			covered.Set(int(j))
			if st.coded != nil {
				decodeBuf = st.coded.AppendMembers(int(j), decodeBuf[:0])
				for _, u := range decodeBuf {
					if u >= p.lo && u < p.hi {
						counter[u]--
					}
				}
				continue
			}
			for _, u := range st.col.RangeOf(int(j), p.lo, p.hi) {
				counter[u]--
			}
		}
	}
	return seeds, coveredCount, nil
}

// String identifies the decomposition for logs.
func (r *PartResult) String() string {
	return fmt.Sprintf("partitioned IMM: %d ranks, own [%d,%d), theta %d, spread %.1f",
		r.Ranks, r.OwnedLo, r.OwnedHi, r.Theta, r.EstimatedSpread)
}
