package dist

import (
	"math"
	"slices"
	"sync"
	"testing"
	"testing/quick"

	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/mpi"
	"influmax/internal/par"
)

// runPart executes a graph-partitioned run on a local cluster.
func runPart(t *testing.T, p int, g *graph.Graph, opt PartOptions) []*PartResult {
	t.Helper()
	comms := mpi.NewLocalCluster(p)
	results := make([]*PartResult, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			results[rank], errs[rank] = RunPartitioned(comms[rank], g, opt)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return results
}

func TestOwnerInvertsInterval(t *testing.T) {
	check := func(nRaw uint16, pRaw uint8) bool {
		n := int(nRaw%1000) + 1
		p := int(pRaw%16) + 1
		for r := 0; r < p; r++ {
			lo, hi := par.Interval(n, p, r)
			for v := lo; v < hi; v++ {
				if owner(n, p, graph.Vertex(v)) != r {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionedIndependentOfRankCount(t *testing.T) {
	// The CRN coins make every sample a pure function of (seed, id):
	// the seed set must be identical for every rank count.
	g := testGraph(21, 90, 600)
	opt := PartOptions{K: 6, Epsilon: 0.5, Model: diffuse.IC, Seed: 13, Batch: 64}
	ref := runPart(t, 1, g, opt)[0]
	if len(ref.Seeds) != 6 {
		t.Fatalf("p=1 returned %d seeds", len(ref.Seeds))
	}
	for _, p := range []int{2, 3, 5} {
		results := runPart(t, p, g, opt)
		for rank, res := range results {
			if !slices.Equal(res.Seeds, ref.Seeds) {
				t.Fatalf("p=%d rank %d: seeds %v != p=1 seeds %v", p, rank, res.Seeds, ref.Seeds)
			}
			if res.Theta != ref.Theta {
				t.Fatalf("p=%d: theta %d != %d", p, res.Theta, ref.Theta)
			}
		}
	}
}

func TestPartitionedBatchSizeInvariance(t *testing.T) {
	g := testGraph(22, 70, 400)
	a := runPart(t, 2, g, PartOptions{K: 4, Epsilon: 0.5, Model: diffuse.IC, Seed: 5, Batch: 16})[0]
	b := runPart(t, 2, g, PartOptions{K: 4, Epsilon: 0.5, Model: diffuse.IC, Seed: 5, Batch: 501})[0]
	if !slices.Equal(a.Seeds, b.Seeds) {
		t.Fatalf("batch size changed the result: %v vs %v", a.Seeds, b.Seeds)
	}
}

func TestPartitionedLTModel(t *testing.T) {
	g := testGraph(23, 80, 500)
	g.NormalizeLT()
	opt := PartOptions{K: 5, Epsilon: 0.5, Model: diffuse.LT, Seed: 3, Batch: 128}
	ref := runPart(t, 1, g, opt)[0]
	results := runPart(t, 3, g, opt)
	if !slices.Equal(results[0].Seeds, ref.Seeds) {
		t.Fatalf("LT partitioned mismatch: %v vs %v", results[0].Seeds, ref.Seeds)
	}
}

func TestPartitionedQualityMatchesSharedMemory(t *testing.T) {
	// Different PRNG scheme than imm.Run, so seeds differ; the spread
	// quality must nevertheless agree.
	g := testGraph(24, 80, 600)
	shared, err := imm.Run(g, imm.Options{K: 5, Epsilon: 0.3, Model: diffuse.IC, Workers: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	part := runPart(t, 4, g, PartOptions{K: 5, Epsilon: 0.3, Model: diffuse.IC, Seed: 7})[0]
	s1, _ := diffuse.EstimateSpread(g, diffuse.IC, shared.Seeds, 20000, 0, 31)
	s2, _ := diffuse.EstimateSpread(g, diffuse.IC, part.Seeds, 20000, 0, 31)
	if math.Abs(s1-s2) > 0.1*s1+2 {
		t.Fatalf("partitioned quality %.2f far from shared-memory %.2f", s2, s1)
	}
	// The RIS spread estimate must also be consistent with simulation.
	if math.Abs(part.EstimatedSpread-s2) > 0.1*s2+2 {
		t.Fatalf("partitioned internal estimate %.2f vs simulated %.2f", part.EstimatedSpread, s2)
	}
}

func TestPartitionedStoreIsVertexPartitioned(t *testing.T) {
	g := testGraph(25, 60, 350)
	results := runPart(t, 3, g, PartOptions{K: 3, Epsilon: 0.5, Model: diffuse.IC, Seed: 9})
	// Intervals tile the vertex space.
	if results[0].OwnedLo != 0 || results[2].OwnedHi != graph.Vertex(g.NumVertices()) {
		t.Fatalf("intervals wrong: %v-%v, %v-%v", results[0].OwnedLo, results[0].OwnedHi, results[2].OwnedLo, results[2].OwnedHi)
	}
	for r := 1; r < 3; r++ {
		if results[r].OwnedLo != results[r-1].OwnedHi {
			t.Fatalf("interval gap between ranks %d and %d", r-1, r)
		}
	}
	// All ranks agree on global bookkeeping.
	for r := 1; r < 3; r++ {
		if results[r].SamplesGenerated != results[0].SamplesGenerated {
			t.Fatal("ranks disagree on sample count")
		}
	}
}

func TestPartitionedValidation(t *testing.T) {
	g := testGraph(26, 30, 100)
	comms := mpi.NewLocalCluster(1)
	for _, opt := range []PartOptions{
		{K: 0, Epsilon: 0.5, Model: diffuse.IC},
		{K: 31, Epsilon: 0.5, Model: diffuse.IC},
		{K: 3, Epsilon: 0, Model: diffuse.IC},
	} {
		if _, err := RunPartitioned(comms[0], g, opt); err == nil {
			t.Errorf("invalid options accepted: %+v", opt)
		}
	}
}

func TestCarvePartitionCoversAllInEdges(t *testing.T) {
	g := testGraph(27, 50, 300)
	size := 4
	var total int64
	for r := 0; r < size; r++ {
		p := carvePartition(g, r, size)
		for v := p.lo; v < p.hi; v++ {
			srcs, ws, slots := p.inEdges(v)
			gSrcs, gWs := g.InNeighbors(v)
			if !slices.Equal(srcs, gSrcs) {
				t.Fatalf("rank %d vertex %d: srcs differ", r, v)
			}
			for i := range ws {
				if ws[i] != gWs[i] {
					t.Fatalf("rank %d vertex %d: weights differ", r, v)
				}
				if slots[i] != g.InEdgeBase(v)+int64(i) {
					t.Fatalf("rank %d vertex %d: slot ids differ", r, v)
				}
			}
			total += int64(len(srcs))
		}
	}
	if total != g.NumEdges() {
		t.Fatalf("partitions hold %d edges, graph has %d", total, g.NumEdges())
	}
}
