package dist

import (
	"influmax/internal/metrics"
	"influmax/internal/mpi"
	"influmax/internal/trace"
)

// RankReport converts this rank's result into its metrics sub-report.
func (r *Result) RankReport() metrics.RankReport {
	return metrics.RankReport{
		Rank:           r.Rank,
		LocalSamples:   int64(r.LocalSamples),
		LocalWork:      r.LocalWork,
		StoreBytes:     r.StoreBytes,
		FlatStoreBytes: r.FlatStoreBytes,
		IndexBytes:     r.IndexBytes,
		PhaseSeconds:   r.Phases.Seconds(),
		TotalSeconds:   r.Phases.Total().Seconds(),
		Comm:           r.CommStats.Map(),
	}
}

// Report assembles the distributed run's metrics.RunReport. It is a
// collective: every rank must call it with its own Result (all ranks pass
// identical opt, as with Run). Rank 0 returns the merged report carrying
// one RankReport per rank; every other rank returns (nil, nil).
func Report(c mpi.Comm, opt Options, res *Result) (*metrics.RunReport, error) {
	perRank, err := metrics.GatherRankReports(c, 0, res.RankReport())
	if err != nil {
		return nil, err
	}
	if c.Rank() != 0 {
		return nil, nil
	}
	return buildReport(opt, res, perRank), nil
}

// ReportLocal assembles the merged report from all ranks' results already
// present in one address space (the in-process cluster path used by the
// harness), without collectives. results must be indexed by rank.
func ReportLocal(opt Options, results []*Result) *metrics.RunReport {
	perRank := make([]metrics.RankReport, len(results))
	for r, res := range results {
		perRank[r] = res.RankReport()
	}
	return buildReport(opt, results[0], perRank)
}

// buildReport merges rank 0's result with the gathered per-rank
// sub-reports: global bookkeeping comes from rank 0 (identical on all
// ranks by construction), store bytes and sampling work are summed across
// ranks, and the work balance is avg/max of per-rank work — the quantity
// that bounds the strong scaling of Figures 7-8.
func buildReport(opt Options, root *Result, perRank []metrics.RankReport) *metrics.RunReport {
	rep := metrics.NewRunReport("IMMdist", root.Phases)
	rep.Model = opt.Model.String()
	rep.K = opt.K
	rep.Epsilon = opt.Epsilon
	rep.Seed = opt.Seed
	rep.Ranks = root.Ranks
	rep.ThreadsPerRank = root.ThreadsPerRank
	rep.Theta = root.Theta
	rep.SamplesGenerated = root.SamplesGenerated
	rep.LowerBound = root.LowerBound
	rep.Seeds = root.Seeds
	rep.CoverageFraction = root.CoverageFraction
	rep.EstimatedSpread = root.EstimatedSpread
	rep.HeapBytes = trace.HeapAlloc()
	rep.PerRank = perRank
	rep.Store = root.Store.String()

	work := make([]int64, len(perRank))
	h := metrics.NewHistogram()
	comm := make(map[string]int64)
	for r, sub := range perRank {
		rep.StoreBytes += sub.StoreBytes
		rep.FlatStoreBytes += sub.FlatStoreBytes
		rep.IndexBytes += sub.IndexBytes
		work[r] = sub.LocalWork
		h.Observe(sub.LocalWork)
		for name, v := range sub.Comm {
			comm[name] += v
		}
	}
	rep.WorkerWork = work
	rep.WorkBalance = metrics.WorkBalanceOf(work)
	rep.WorkHistogram = h.Snapshot()
	// Transport and fault-injection counters, summed across ranks, land
	// under their "mpi/..." names in the metrics snapshot.
	if len(comm) > 0 {
		if rep.Metrics == nil {
			rep.Metrics = &metrics.Snapshot{}
		}
		if rep.Metrics.Counters == nil {
			rep.Metrics.Counters = make(map[string]int64)
		}
		for name, v := range comm {
			rep.Metrics.Counters[name] += v
		}
	}
	return rep
}

// ReportPartitioned assembles the report of a graph-partitioned run
// (RunPartitioned). The partitioned path keeps no per-rank gather —
// every rank can call this locally; rank 0's report is the one to write.
func ReportPartitioned(opt PartOptions, res *PartResult) *metrics.RunReport {
	rep := metrics.NewRunReport("IMMpart", res.Phases)
	rep.Model = opt.Model.String()
	rep.K = opt.K
	rep.Epsilon = opt.Epsilon
	rep.Seed = opt.Seed
	rep.Ranks = res.Ranks
	rep.Theta = res.Theta
	rep.SamplesGenerated = res.SamplesGenerated
	rep.Seeds = res.Seeds
	rep.CoverageFraction = res.CoverageFraction
	rep.EstimatedSpread = res.EstimatedSpread
	rep.Store = res.Store.String()
	rep.StoreBytes = res.StoreBytes
	rep.FlatStoreBytes = res.FlatStoreBytes
	rep.IndexBytes = res.IndexBytes
	rep.HeapBytes = trace.HeapAlloc()
	if comm := res.CommStats.Map(); comm != nil {
		rep.Metrics = &metrics.Snapshot{Counters: comm}
	}
	return rep
}
