package dist

import (
	"encoding/json"
	"sync"
	"testing"

	"influmax/internal/diffuse"
	"influmax/internal/metrics"
	"influmax/internal/mpi"
	"influmax/internal/trace"
)

// TestReportGathersPerRank runs IMMdist on an in-process cluster and
// checks the Report collective: rank 0 merges one sub-report per rank,
// everyone else gets nil.
func TestReportGathersPerRank(t *testing.T) {
	const p = 4
	g := testGraph(3, 300, 1800)
	opt := Options{K: 5, Epsilon: 0.5, Model: diffuse.IC, Seed: 11, ThreadsPerRank: 1}

	comms := mpi.NewLocalCluster(p)
	reps := make([]*metrics.RunReport, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			res, err := Run(comms[rank], g, opt)
			if err != nil {
				errs[rank] = err
				return
			}
			reps[rank], errs[rank] = Report(comms[rank], opt, res)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 1; r < p; r++ {
		if reps[r] != nil {
			t.Fatalf("rank %d returned a report", r)
		}
	}
	rep := reps[0]
	if rep == nil {
		t.Fatal("rank 0 returned no report")
	}
	if rep.Schema != metrics.SchemaVersion || rep.Algorithm != "IMMdist" || rep.Ranks != p {
		t.Fatalf("header = %+v", rep)
	}
	if len(rep.PerRank) != p {
		t.Fatalf("perRank has %d entries, want %d", len(rep.PerRank), p)
	}
	var samples, store int64
	for r, sub := range rep.PerRank {
		if sub.Rank != r {
			t.Fatalf("perRank[%d].Rank = %d", r, sub.Rank)
		}
		if sub.TotalSeconds <= 0 {
			t.Fatalf("perRank[%d] has no timings: %+v", r, sub)
		}
		samples += sub.LocalSamples
		store += sub.StoreBytes
	}
	if samples != rep.SamplesGenerated {
		t.Fatalf("rank samples sum to %d, report says %d", samples, rep.SamplesGenerated)
	}
	if store != rep.StoreBytes {
		t.Fatalf("rank bytes sum to %d, report says %d", store, rep.StoreBytes)
	}
	if rep.Theta <= 0 || len(rep.Seeds) != opt.K {
		t.Fatalf("theta=%d seeds=%v", rep.Theta, rep.Seeds)
	}
	if rep.WorkBalance <= 0 || rep.WorkBalance > 1 {
		t.Fatalf("work balance = %v", rep.WorkBalance)
	}
	if rep.PhaseSeconds[trace.Sampling.String()] < 0 {
		t.Fatalf("phase map = %v", rep.PhaseSeconds)
	}

	// The report must serialize (the acceptance-criterion artifact).
	buf, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded metrics.RunReport
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.PerRank) != p {
		t.Fatalf("decoded perRank = %d", len(decoded.PerRank))
	}
}

// TestReportLocalMatchesCollective checks the harness's gather-free path
// produces the same merged numbers as the collective one.
func TestReportLocalMatchesCollective(t *testing.T) {
	const p = 2
	g := testGraph(5, 200, 1000)
	opt := Options{K: 3, Epsilon: 0.5, Model: diffuse.IC, Seed: 7, ThreadsPerRank: 1}
	results := runDist(t, p, g, opt)
	rep := ReportLocal(opt, results)
	if rep.Ranks != p || len(rep.PerRank) != p {
		t.Fatalf("report = %+v", rep)
	}
	var store int64
	for _, res := range results {
		store += res.StoreBytes
	}
	if rep.StoreBytes != store {
		t.Fatalf("store = %d, want %d", rep.StoreBytes, store)
	}
	if rep.SamplesGenerated != results[0].SamplesGenerated {
		t.Fatalf("samples = %d, want %d", rep.SamplesGenerated, results[0].SamplesGenerated)
	}
}
