package dist

import (
	"slices"
	"testing"

	"influmax/internal/diffuse"
	"influmax/internal/imm"
)

// TestDistStoreEquivalence pins the coded store on the sample-partitioned
// path: a StoreCoded run selects the exact seeds of the StoreFlat run, at
// every rank count, while each rank's local store shrinks below the flat
// layout it reports as the compression denominator.
func TestDistStoreEquivalence(t *testing.T) {
	g := testGraph(4, 120, 900)
	base := Options{K: 6, Epsilon: 0.5, Model: diffuse.IC, ThreadsPerRank: 2, Seed: 17}
	for _, p := range []int{1, 2, 4} {
		optFlat, optCoded := base, base
		optFlat.Store = imm.StoreFlat
		optCoded.Store = imm.StoreCoded
		flat := runDist(t, p, g, optFlat)
		coded := runDist(t, p, g, optCoded)
		for rank := range coded {
			if !slices.Equal(coded[rank].Seeds, flat[rank].Seeds) {
				t.Fatalf("p=%d rank %d: coded seeds %v != flat %v",
					p, rank, coded[rank].Seeds, flat[rank].Seeds)
			}
			if coded[rank].Theta != flat[rank].Theta ||
				coded[rank].CoverageFraction != flat[rank].CoverageFraction {
				t.Fatalf("p=%d rank %d: bookkeeping diverged", p, rank)
			}
			if coded[rank].Store != imm.StoreCoded || flat[rank].Store != imm.StoreFlat {
				t.Fatalf("p=%d rank %d: store kinds not stamped", p, rank)
			}
			if coded[rank].StoreBytes >= coded[rank].FlatStoreBytes {
				t.Fatalf("p=%d rank %d: coded store %d B not below flat layout %d B",
					p, rank, coded[rank].StoreBytes, coded[rank].FlatStoreBytes)
			}
			if coded[rank].FlatStoreBytes != flat[rank].StoreBytes {
				t.Fatalf("p=%d rank %d: FlatStoreBytes %d != flat run's %d",
					p, rank, coded[rank].FlatStoreBytes, flat[rank].StoreBytes)
			}
		}
	}
}

// TestPartitionedStoreEquivalence is the same gate for the
// vertex-partitioned path: rank-local relabelings never cross the wire
// (only original-id counters do), so the seeds cannot move.
func TestPartitionedStoreEquivalence(t *testing.T) {
	g := testGraph(6, 100, 800)
	base := PartOptions{K: 5, Epsilon: 0.5, Model: diffuse.IC, Seed: 13, Threads: 2, Batch: 64}
	for _, p := range []int{1, 2, 3} {
		optFlat, optCoded := base, base
		optFlat.Store = imm.StoreFlat
		optCoded.Store = imm.StoreCoded
		flat := runPart(t, p, g, optFlat)
		coded := runPart(t, p, g, optCoded)
		for rank := range coded {
			if !slices.Equal(coded[rank].Seeds, flat[rank].Seeds) {
				t.Fatalf("p=%d rank %d: coded seeds %v != flat %v",
					p, rank, coded[rank].Seeds, flat[rank].Seeds)
			}
			if coded[rank].Theta != flat[rank].Theta {
				t.Fatalf("p=%d rank %d: theta diverged", p, rank)
			}
			if coded[rank].Store != imm.StoreCoded {
				t.Fatalf("p=%d rank %d: store kind not stamped", p, rank)
			}
			if coded[rank].StoreBytes >= coded[rank].FlatStoreBytes {
				t.Fatalf("p=%d rank %d: coded store %d B not below flat layout %d B",
					p, rank, coded[rank].StoreBytes, coded[rank].FlatStoreBytes)
			}
		}
	}
}

// TestDistStoreEquivalenceLT repeats the sample-partitioned gate under the
// LT model (the purge path is model-independent, but the samples differ).
func TestDistStoreEquivalenceLT(t *testing.T) {
	g := testGraph(8, 90, 600)
	g.NormalizeLT()
	base := Options{K: 4, Epsilon: 0.5, Model: diffuse.LT, ThreadsPerRank: 1, Seed: 6}
	optFlat, optCoded := base, base
	optFlat.Store = imm.StoreFlat
	optCoded.Store = imm.StoreCoded
	flat := runDist(t, 2, g, optFlat)
	coded := runDist(t, 2, g, optCoded)
	for rank := range coded {
		if !slices.Equal(coded[rank].Seeds, flat[rank].Seeds) {
			t.Fatalf("rank %d: coded seeds %v != flat %v", rank, coded[rank].Seeds, flat[rank].Seeds)
		}
	}
}
