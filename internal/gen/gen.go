// Package gen provides synthetic graph generators and scaled analogs of
// the eight SNAP datasets of the paper's Table 2. The real SNAP files are
// not redistributable inside this repository, so each dataset is replaced
// by a generator whose size, density and degree skew match the original at
// a configurable scale — the properties that drive every evaluation shape
// in the paper (theta growth, phase mix, LT vs IC workload, scaling knees).
package gen

import (
	"fmt"

	"influmax/internal/graph"
	"influmax/internal/rng"
)

// ErdosRenyi returns a directed G(n, m) graph: m edges drawn uniformly
// without self-loops (parallel edges possible, as in the multigraph
// variant). Weights are zero; assign a scheme afterwards.
func ErdosRenyi(n, m int, seed uint64) *graph.Graph {
	if n < 2 {
		panic("gen: ErdosRenyi needs n >= 2")
	}
	r := rng.New(rng.NewLCG(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u := r.Intn(n)
		v := r.Intn(n - 1)
		if v >= u {
			v++
		}
		b.Add(graph.Vertex(u), graph.Vertex(v), 0)
	}
	return b.Build()
}

// BarabasiAlbert returns a directed preferential-attachment graph: each
// new vertex adds mPer edges toward existing vertices chosen
// proportionally to their current degree (citation-network style, like
// cit-HepTh). n must exceed mPer.
func BarabasiAlbert(n, mPer int, seed uint64) *graph.Graph {
	if n <= mPer || mPer < 1 {
		panic("gen: BarabasiAlbert needs n > mPer >= 1")
	}
	r := rng.New(rng.NewLCG(seed))
	b := graph.NewBuilder(n)
	// endpoints holds one entry per edge endpoint; uniform sampling from
	// it is degree-proportional sampling.
	endpoints := make([]graph.Vertex, 0, 2*n*mPer)
	// Seed clique over the first mPer+1 vertices.
	for u := 0; u <= mPer; u++ {
		v := (u + 1) % (mPer + 1)
		b.Add(graph.Vertex(u), graph.Vertex(v), 0)
		endpoints = append(endpoints, graph.Vertex(u), graph.Vertex(v))
	}
	for u := mPer + 1; u < n; u++ {
		for e := 0; e < mPer; e++ {
			t := endpoints[r.Intn(len(endpoints))]
			if int(t) == u {
				t = graph.Vertex(r.Intn(u)) // fall back to uniform
			}
			b.Add(graph.Vertex(u), t, 0)
			endpoints = append(endpoints, graph.Vertex(u), t)
		}
	}
	return b.Build()
}

// WattsStrogatz returns a directed small-world graph: a ring lattice where
// each vertex points to its k nearest clockwise neighbors, with each edge
// rewired to a uniform random target with probability beta.
func WattsStrogatz(n, k int, beta float64, seed uint64) *graph.Graph {
	if n < k+2 || k < 1 {
		panic("gen: WattsStrogatz needs n >= k+2, k >= 1")
	}
	if beta < 0 || beta > 1 {
		panic("gen: beta out of [0,1]")
	}
	r := rng.New(rng.NewLCG(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			if r.Float64() < beta {
				v = r.Intn(n - 1)
				if v >= u {
					v++
				}
			}
			b.Add(graph.Vertex(u), graph.Vertex(v), 0)
		}
	}
	return b.Build()
}

// RMAT returns a recursive-matrix (Kronecker-like) graph over n vertices
// with m edges and quadrant probabilities (a, b, c, 1-a-b-c). Endpoints
// falling outside [0, n) (when n is not a power of two), self-loops, and
// previously drawn pairs are all rejected and redrawn, so the result is a
// simple graph with exactly m distinct edges — like the SNAP social
// networks these analogs stand in for, which record each follower
// relation once. Higher a produces heavier degree skew — the signature of
// social networks like com-YouTube and com-Orkut.
func RMAT(n, m int, a, b, c float64, seed uint64) *graph.Graph {
	if n < 2 {
		panic("gen: RMAT needs n >= 2")
	}
	if a <= 0 || b < 0 || c < 0 || a+b+c >= 1 {
		panic("gen: RMAT quadrant probabilities invalid")
	}
	levels := 0
	for (1 << levels) < n {
		levels++
	}
	r := rng.New(rng.NewLCG(seed))
	bld := graph.NewBuilder(n)
	seen := make(map[uint64]struct{}, m)
	for i := 0; i < m; i++ {
		for {
			u, v := 0, 0
			for l := 0; l < levels; l++ {
				t := r.Float64()
				switch {
				case t < a:
					// upper-left: no bits set
				case t < a+b:
					v |= 1 << l
				case t < a+b+c:
					u |= 1 << l
				default:
					u |= 1 << l
					v |= 1 << l
				}
			}
			if u >= n || v >= n || u == v {
				continue
			}
			key := uint64(u)<<32 | uint64(v)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			bld.Add(graph.Vertex(u), graph.Vertex(v), 0)
			break
		}
	}
	return bld.Build()
}

// Kind selects a generator family for a dataset analog.
type Kind uint8

// Generator families.
const (
	KindRMAT Kind = iota
	KindBA
	KindWS
)

// Dataset describes one of the paper's Table 2 inputs and how its analog
// is synthesized.
type Dataset struct {
	// Name is the SNAP dataset name.
	Name string
	// Vertices and Edges are the full-scale sizes from Table 2.
	Vertices int
	Edges    int64
	// Kind selects the generator family that matches the graph's
	// character (citation / community / social).
	Kind Kind
	// A, B, C are the R-MAT quadrant probabilities (KindRMAT only);
	// heavier A means heavier degree skew.
	A, B, C float64
}

// Datasets returns the eight Table 2 inputs in the paper's order.
func Datasets() []Dataset {
	return []Dataset{
		{Name: "cit-HepTh", Vertices: 27770, Edges: 352807, Kind: KindBA},
		{Name: "soc-Epinions1", Vertices: 75879, Edges: 508837, Kind: KindRMAT, A: 0.55, B: 0.2, C: 0.2},
		{Name: "com-Amazon", Vertices: 334863, Edges: 925872, Kind: KindWS},
		{Name: "com-DBLP", Vertices: 317080, Edges: 1049866, Kind: KindRMAT, A: 0.45, B: 0.25, C: 0.2},
		{Name: "com-YouTube", Vertices: 1134890, Edges: 2987624, Kind: KindRMAT, A: 0.62, B: 0.19, C: 0.15},
		{Name: "soc-Pokec", Vertices: 1632803, Edges: 30622564, Kind: KindRMAT, A: 0.55, B: 0.2, C: 0.2},
		{Name: "soc-LiveJournal1", Vertices: 4847571, Edges: 68993773, Kind: KindRMAT, A: 0.57, B: 0.19, C: 0.19},
		{Name: "com-Orkut", Vertices: 3072441, Edges: 117185083, Kind: KindRMAT, A: 0.57, B: 0.19, C: 0.19},
	}
}

// ByName returns the dataset descriptor with the given name.
func ByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q", name)
}

// Generate synthesizes the analog at the given linear scale in (0, 1]:
// vertex and edge counts are both multiplied by scale, preserving the
// original's average degree (and therefore its workload character). The
// result has at least 64 vertices. Weights are zero; assign a scheme
// afterwards.
func (d Dataset) Generate(scale float64, seed uint64) *graph.Graph {
	if scale <= 0 || scale > 1 {
		panic("gen: scale out of (0, 1]")
	}
	n := int(float64(d.Vertices) * scale)
	if n < 64 {
		n = 64
	}
	avgDeg := float64(d.Edges) / float64(d.Vertices)
	m := int(float64(n) * avgDeg)
	switch d.Kind {
	case KindBA:
		mPer := int(avgDeg + 0.5)
		if mPer < 1 {
			mPer = 1
		}
		return BarabasiAlbert(n, mPer, seed)
	case KindWS:
		k := int(avgDeg + 0.5)
		if k < 1 {
			k = 1
		}
		return WattsStrogatz(n, k, 0.1, seed)
	default:
		return RMAT(n, m, d.A, d.B, d.C, seed)
	}
}
