package gen

import (
	"testing"

	"influmax/internal/graph"
)

func noSelfLoops(t *testing.T, g *graph.Graph) {
	t.Helper()
	for u := 0; u < g.NumVertices(); u++ {
		dsts, _ := g.OutNeighbors(graph.Vertex(u))
		for _, v := range dsts {
			if int(v) == u {
				t.Fatalf("self loop at %d", u)
			}
		}
	}
}

func TestErdosRenyiSize(t *testing.T) {
	g := ErdosRenyi(100, 500, 1)
	if g.NumVertices() != 100 || g.NumEdges() != 500 {
		t.Fatalf("ER size = (%d, %d)", g.NumVertices(), g.NumEdges())
	}
	noSelfLoops(t, g)
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a, b := ErdosRenyi(50, 200, 7), ErdosRenyi(50, 200, 7)
	for v := 0; v < 50; v++ {
		d1, _ := a.OutNeighbors(graph.Vertex(v))
		d2, _ := b.OutNeighbors(graph.Vertex(v))
		if len(d1) != len(d2) {
			t.Fatal("ER not deterministic")
		}
		for i := range d1 {
			if d1[i] != d2[i] {
				t.Fatal("ER not deterministic")
			}
		}
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	g := BarabasiAlbert(2000, 5, 2)
	if g.NumVertices() != 2000 {
		t.Fatalf("BA n = %d", g.NumVertices())
	}
	noSelfLoops(t, g)
	s := g.ComputeStats()
	// Preferential attachment must produce a hub far above the average
	// total degree.
	maxTotal := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(graph.Vertex(v)) + g.InDegree(graph.Vertex(v)); d > maxTotal {
			maxTotal = d
		}
	}
	if float64(maxTotal) < 6*s.AvgDegree {
		t.Fatalf("BA lacks hubs: max total degree %d vs avg %f", maxTotal, s.AvgDegree)
	}
}

func TestWattsStrogatzNoRewire(t *testing.T) {
	g := WattsStrogatz(30, 3, 0, 3)
	// Pure ring lattice: every vertex has out-degree exactly k and points
	// to its 3 clockwise neighbors.
	for u := 0; u < 30; u++ {
		if g.OutDegree(graph.Vertex(u)) != 3 {
			t.Fatalf("WS degree at %d = %d", u, g.OutDegree(graph.Vertex(u)))
		}
		dsts, _ := g.OutNeighbors(graph.Vertex(u))
		for j, v := range dsts {
			if int(v) != (u+j+1)%30 {
				t.Fatalf("WS lattice broken at %d: %v", u, dsts)
			}
		}
	}
}

func TestWattsStrogatzRewired(t *testing.T) {
	g := WattsStrogatz(200, 4, 0.3, 5)
	noSelfLoops(t, g)
	if g.NumEdges() != 800 {
		t.Fatalf("WS edges = %d, want 800", g.NumEdges())
	}
	// With beta > 0 some edge must leave the lattice.
	rewired := false
	for u := 0; u < 200 && !rewired; u++ {
		dsts, _ := g.OutNeighbors(graph.Vertex(u))
		for _, v := range dsts {
			d := (int(v) - u + 200) % 200
			if d < 1 || d > 4 {
				rewired = true
			}
		}
	}
	if !rewired {
		t.Fatal("beta=0.3 produced a pure lattice")
	}
}

func TestRMATSizeAndSkew(t *testing.T) {
	g := RMAT(1000, 8000, 0.57, 0.19, 0.19, 4)
	if g.NumVertices() != 1000 || g.NumEdges() != 8000 {
		t.Fatalf("RMAT size = (%d, %d)", g.NumVertices(), g.NumEdges())
	}
	noSelfLoops(t, g)
	er := ErdosRenyi(1000, 8000, 4)
	if RMATMax := g.ComputeStats().MaxDegree; RMATMax <= 2*er.ComputeStats().MaxDegree {
		t.Fatalf("RMAT skew (%d) not clearly above ER (%d)", RMATMax, er.ComputeStats().MaxDegree)
	}
}

func TestRMATNonPowerOfTwo(t *testing.T) {
	g := RMAT(777, 3000, 0.5, 0.2, 0.2, 9)
	if g.NumVertices() != 777 || g.NumEdges() != 3000 {
		t.Fatalf("RMAT non-pow2 size = (%d, %d)", g.NumVertices(), g.NumEdges())
	}
	noSelfLoops(t, g)
}

func TestGeneratorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"ER n<2":        func() { ErdosRenyi(1, 5, 1) },
		"BA n<=mPer":    func() { BarabasiAlbert(5, 5, 1) },
		"WS bad beta":   func() { WattsStrogatz(10, 2, 1.5, 1) },
		"RMAT bad prob": func() { RMAT(10, 5, 0.8, 0.2, 0.2, 1) },
		"scale>1":       func() { Datasets()[0].Generate(2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDatasetsTableMatchesPaper(t *testing.T) {
	ds := Datasets()
	if len(ds) != 8 {
		t.Fatalf("want 8 datasets, got %d", len(ds))
	}
	// Spot-check the Table 2 rows.
	if ds[0].Name != "cit-HepTh" || ds[0].Vertices != 27770 || ds[0].Edges != 352807 {
		t.Fatalf("cit-HepTh row wrong: %+v", ds[0])
	}
	if ds[7].Name != "com-Orkut" || ds[7].Vertices != 3072441 || ds[7].Edges != 117185083 {
		t.Fatalf("com-Orkut row wrong: %+v", ds[7])
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("soc-Pokec")
	if err != nil || d.Vertices != 1632803 {
		t.Fatalf("ByName: %v %+v", err, d)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestGeneratePreservesAvgDegree(t *testing.T) {
	for _, d := range Datasets() {
		g := d.Generate(0.01, 11)
		if g.NumVertices() < 64 {
			t.Fatalf("%s: analog too small (%d)", d.Name, g.NumVertices())
		}
		wantAvg := float64(d.Edges) / float64(d.Vertices)
		gotAvg := g.ComputeStats().AvgDegree
		if gotAvg < wantAvg*0.7 || gotAvg > wantAvg*1.4 {
			t.Errorf("%s: analog avg degree %.2f, original %.2f", d.Name, gotAvg, wantAvg)
		}
	}
}

func TestGenerateMinimumSize(t *testing.T) {
	d := Datasets()[0]
	g := d.Generate(0.0001, 1)
	if g.NumVertices() < 64 {
		t.Fatalf("minimum size not enforced: %d", g.NumVertices())
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(500, 2000, 0.55, 0.2, 0.2, 42)
	b := RMAT(500, 2000, 0.55, 0.2, 0.2, 42)
	for v := 0; v < 500; v++ {
		d1, _ := a.OutNeighbors(graph.Vertex(v))
		d2, _ := b.OutNeighbors(graph.Vertex(v))
		if len(d1) != len(d2) {
			t.Fatal("RMAT not deterministic")
		}
		for i := range d1 {
			if d1[i] != d2[i] {
				t.Fatal("RMAT not deterministic")
			}
		}
	}
	c := RMAT(500, 2000, 0.55, 0.2, 0.2, 43)
	same := true
	for v := 0; v < 500 && same; v++ {
		d1, _ := a.OutNeighbors(graph.Vertex(v))
		d3, _ := c.OutNeighbors(graph.Vertex(v))
		if len(d1) != len(d3) {
			same = false
			break
		}
		for i := range d1 {
			if d1[i] != d3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical RMAT graphs")
	}
}

func TestBarabasiAlbertEdgeCount(t *testing.T) {
	g := BarabasiAlbert(100, 4, 7)
	// Seed clique contributes mPer+1 edges; each later vertex adds mPer.
	want := int64(5 + (100-5)*4)
	if g.NumEdges() != want {
		t.Fatalf("BA edges = %d, want %d", g.NumEdges(), want)
	}
}
