package graph

import "fmt"

// Dynamic-graph deltas: an ordered batch of edge insertions and deletions
// applied to an immutable CSR Graph through an Overlay, then compacted
// on demand into a fresh CSR. The overlay never mutates its base — queries
// keep reading the old graph while a batch is being prepared — and
// compaction produces a canonical edge order that incremental RRR
// maintenance (internal/imm) and the snapshot replay path both depend on:
//
//	per vertex, surviving base edges in base CSR order,
//	then inserted edges in batch op order.
//
// That order puts every inserted edge at the tail of its endpoint's
// adjacency lists, which is what lets the per-sample RNG streams of a
// regenerated RRR sample consume coins in exactly the order a cold build
// over the compacted graph would (DESIGN.md §15).

// DeltaOpKind discriminates the two edge mutations.
type DeltaOpKind uint8

const (
	// DeltaInsert adds a directed edge Src->Dst with probability W. The
	// edge must not already exist (parallel edges cannot be created
	// through deltas, though a base graph may contain them).
	DeltaInsert DeltaOpKind = iota
	// DeltaDelete removes the directed edge Src->Dst (W is ignored). The
	// edge must exist; with base-graph parallel edges, the first live
	// occurrence in canonical order is removed.
	DeltaDelete
)

// String names the kind, matching the /v1/graph/delta wire values.
func (k DeltaOpKind) String() string {
	switch k {
	case DeltaInsert:
		return "insert"
	case DeltaDelete:
		return "delete"
	}
	return fmt.Sprintf("DeltaOpKind(%d)", uint8(k))
}

// DeltaOp is one edge mutation.
type DeltaOp struct {
	Kind     DeltaOpKind
	Src, Dst Vertex
	W        float32
}

// Delta is one ordered batch of edge mutations. Order matters: a batch may
// insert an edge and delete it again, and incremental RRR maintenance
// processes the ops in sequence.
type Delta []DeltaOp

// DeltaError reports the first op of a batch that failed validation. It is
// the typed rejection surfaced as HTTP 400 by the /v1/graph/delta
// endpoint.
type DeltaError struct {
	// Index is the offending op's position within the batch.
	Index int
	// Op is the offending op.
	Op DeltaOp
	// Reason describes the violation.
	Reason string
}

func (e *DeltaError) Error() string {
	return fmt.Sprintf("graph: delta op %d (%s %d->%d): %s",
		e.Index, e.Op.Kind, e.Op.Src, e.Op.Dst, e.Reason)
}

// insRec is one inserted edge held by an Overlay until compaction.
type insRec struct {
	src, dst Vertex
	w        float32
	op       int32 // op index within the applied batch
	dead     bool  // deleted again later in the same batch
	inSlot   int64 // in-CSR slot in the compacted graph (set by Compact)
}

// Overlay stages one Delta batch over an immutable base Graph: deletions
// are marks on base in-CSR slots, insertions are held in op order, and
// Compact materializes the mutated graph as a fresh CSR in canonical edge
// order. The base graph is never modified.
//
// An Overlay is single-use: Apply it once, then Compact. If Apply returns
// an error the overlay holds a partially applied batch and must be
// discarded (callers build overlays per batch, so atomicity is "discard on
// error").
type Overlay struct {
	base *Graph

	deadIn    []uint64 // bitset over base in-CSR slots, allocated lazily
	deadCount int64

	ins      []insRec
	insByDst map[Vertex][]int32 // dst -> indices into ins, op order
	insBySrc map[Vertex][]int32 // src -> indices into ins, op order
	liveIns  int64

	applied bool
}

// NewOverlay returns an empty overlay over base.
func NewOverlay(base *Graph) *Overlay {
	return &Overlay{
		base:     base,
		insByDst: make(map[Vertex][]int32),
		insBySrc: make(map[Vertex][]int32),
	}
}

// Base returns the immutable graph the overlay stages mutations over.
func (ov *Overlay) Base() *Graph { return ov.base }

// deadSlot reports whether base in-CSR slot j is marked deleted.
func (ov *Overlay) deadSlot(j int64) bool {
	return ov.deadIn != nil && ov.deadIn[j>>6]&(1<<(uint64(j)&63)) != 0
}

// markDead marks base in-CSR slot j deleted.
func (ov *Overlay) markDead(j int64) {
	if ov.deadIn == nil {
		ov.deadIn = make([]uint64, (len(ov.base.inSrc)+63)/64)
	}
	ov.deadIn[j>>6] |= 1 << (uint64(j) & 63)
	ov.deadCount++
}

// findBase returns the in-CSR slot of the first live base edge src->dst,
// or -1. Base in-lists hold edges in original construction order, so "first
// live" matches the first surviving occurrence in canonical order.
func (ov *Overlay) findBase(src, dst Vertex) int64 {
	lo, hi := ov.base.inOff[dst], ov.base.inOff[dst+1]
	for j := lo; j < hi; j++ {
		if ov.base.inSrc[j] == src && !ov.deadSlot(j) {
			return j
		}
	}
	return -1
}

// findIns returns the index into ov.ins of the live inserted edge
// src->dst, or -1. At most one can be live: Apply rejects duplicate
// insertions.
func (ov *Overlay) findIns(src, dst Vertex) int32 {
	for _, ri := range ov.insByDst[dst] {
		if r := &ov.ins[ri]; r.src == src && !r.dead {
			return ri
		}
	}
	return -1
}

// Apply stages the batch d onto the overlay, validating each op in order:
// endpoints must be in range, an inserted edge must not already exist
// (live in the base or inserted earlier in the batch) and a deleted edge
// must. The first violation returns a *DeltaError identifying the op; the
// overlay is then partially applied and must be discarded.
func (ov *Overlay) Apply(d Delta) error {
	if ov.applied {
		return &DeltaError{Reason: "overlay already holds a batch"}
	}
	ov.applied = true
	n := Vertex(ov.base.n)
	for t, op := range d {
		if op.Src >= n || op.Dst >= n {
			return &DeltaError{Index: t, Op: op, Reason: fmt.Sprintf("endpoint out of range [0,%d)", n)}
		}
		switch op.Kind {
		case DeltaInsert:
			if !(op.W >= 0 && op.W <= 1) { // also rejects NaN
				return &DeltaError{Index: t, Op: op, Reason: fmt.Sprintf("weight %v outside [0,1]", op.W)}
			}
			if ov.findBase(op.Src, op.Dst) >= 0 || ov.findIns(op.Src, op.Dst) >= 0 {
				return &DeltaError{Index: t, Op: op, Reason: "edge already exists"}
			}
			ri := int32(len(ov.ins))
			ov.ins = append(ov.ins, insRec{src: op.Src, dst: op.Dst, w: op.W, op: int32(t)})
			ov.insByDst[op.Dst] = append(ov.insByDst[op.Dst], ri)
			ov.insBySrc[op.Src] = append(ov.insBySrc[op.Src], ri)
			ov.liveIns++
		case DeltaDelete:
			if j := ov.findBase(op.Src, op.Dst); j >= 0 {
				ov.markDead(j)
			} else if ri := ov.findIns(op.Src, op.Dst); ri >= 0 {
				ov.ins[ri].dead = true
				ov.liveIns--
			} else {
				return &DeltaError{Index: t, Op: op, Reason: "edge does not exist"}
			}
		default:
			return &DeltaError{Index: t, Op: op, Reason: fmt.Sprintf("unknown op kind %d", uint8(op.Kind))}
		}
	}
	return nil
}

// Mutated reports whether the applied batch changed the edge set at all.
func (ov *Overlay) Mutated() bool { return ov.deadCount > 0 || ov.liveIns > 0 }

// AppendedInOps returns, for vertex v in the compacted graph, the batch op
// indices of the inserted edges occupying the tail of v's in-adjacency
// list, aligned with those tail positions (the last len(result) in-slots
// of v, in order). Valid after Compact; incremental RRR maintenance uses
// it to mark batch edges whose coins an extension BFS already flipped.
func (ov *Overlay) AppendedInOps(v Vertex) []int32 {
	var ops []int32
	for _, ri := range ov.insByDst[v] {
		if r := &ov.ins[ri]; !r.dead {
			ops = append(ops, r.op)
		}
	}
	return ops
}

// Compact materializes the mutated graph as a fresh CSR in canonical edge
// order: per vertex, surviving base edges keep their base relative order
// (in BOTH adjacency directions) and inserted edges follow in batch op
// order. The base graph is untouched; the two graphs share no storage.
// Weights are carried over verbatim — callers re-derive scheme-dependent
// weights (weighted cascade, LT normalization) on the result.
func (ov *Overlay) Compact() *Graph {
	g := ov.base
	n := g.n
	m := int64(len(g.inSrc)) - ov.deadCount + ov.liveIns
	ng := &Graph{
		n:       n,
		outOff:  make([]int64, n+1),
		outDst:  make([]Vertex, m),
		outW:    make([]float32, m),
		inOff:   make([]int64, n+1),
		inSrc:   make([]Vertex, m),
		inW:     make([]float32, m),
		outToIn: make([]int64, m),
	}

	// In side: offsets, then fill; record each surviving base slot's new
	// position (for the outToIn remap) and each live insert's new slot.
	newInPos := make([]int64, len(g.inSrc))
	var pos int64
	for v := 0; v < n; v++ {
		ng.inOff[v] = pos
		for j := g.inOff[v]; j < g.inOff[v+1]; j++ {
			if ov.deadSlot(j) {
				newInPos[j] = -1
				continue
			}
			ng.inSrc[pos] = g.inSrc[j]
			ng.inW[pos] = g.inW[j]
			newInPos[j] = pos
			pos++
		}
		for _, ri := range ov.insByDst[Vertex(v)] {
			if r := &ov.ins[ri]; !r.dead {
				ng.inSrc[pos] = r.src
				ng.inW[pos] = r.w
				r.inSlot = pos
				pos++
			}
		}
	}
	ng.inOff[n] = pos

	// Out side, mapping each edge to its in-slot as it lands.
	pos = 0
	for u := 0; u < n; u++ {
		ng.outOff[u] = pos
		for k := g.outOff[u]; k < g.outOff[u+1]; k++ {
			ip := newInPos[g.outToIn[k]]
			if ip < 0 {
				continue
			}
			ng.outDst[pos] = g.outDst[k]
			ng.outW[pos] = g.outW[k]
			ng.outToIn[pos] = ip
			pos++
		}
		for _, ri := range ov.insBySrc[Vertex(u)] {
			if r := &ov.ins[ri]; !r.dead {
				ng.outDst[pos] = r.dst
				ng.outW[pos] = r.w
				ng.outToIn[pos] = r.inSlot
				pos++
			}
		}
	}
	ng.outOff[n] = pos
	return ng
}
