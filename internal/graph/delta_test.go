package graph

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"influmax/internal/rng"
)

// deltaFixture is a small multigraph with a parallel edge (2->0 twice) and
// a self-loop so deletion order against base in-lists is exercised.
func deltaFixture() (*Graph, []Edge) {
	es := []Edge{
		{0, 1, 0.5},
		{1, 2, 0.25},
		{2, 0, 0.125},
		{2, 0, 0.0625}, // parallel to the previous edge
		{3, 3, 0.75},   // self-loop
		{0, 2, 0.3},
	}
	return FromEdges(4, es), es
}

// requireSameGraph fails unless a and b are structurally identical: same
// vertex count, same per-vertex adjacency in the same order with
// bit-identical weights in both CSR directions, and consistent outToIn
// cross-links.
func requireSameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d vertices, %d/%d edges",
			a.NumVertices(), b.NumVertices(), a.NumEdges(), b.NumEdges())
	}
	for v := 0; v < a.NumVertices(); v++ {
		ad, aw := a.OutNeighbors(Vertex(v))
		bd, bw := b.OutNeighbors(Vertex(v))
		if len(ad) != len(bd) {
			t.Fatalf("vertex %d: out-degree %d != %d", v, len(ad), len(bd))
		}
		for i := range ad {
			if ad[i] != bd[i] || math.Float32bits(aw[i]) != math.Float32bits(bw[i]) {
				t.Fatalf("vertex %d out-slot %d: (%d,%v) != (%d,%v)",
					v, i, ad[i], aw[i], bd[i], bw[i])
			}
		}
		as, aiw := a.InNeighbors(Vertex(v))
		bs, biw := b.InNeighbors(Vertex(v))
		if len(as) != len(bs) {
			t.Fatalf("vertex %d: in-degree %d != %d", v, len(as), len(bs))
		}
		for i := range as {
			if as[i] != bs[i] || math.Float32bits(aiw[i]) != math.Float32bits(biw[i]) {
				t.Fatalf("vertex %d in-slot %d: (%d,%v) != (%d,%v)",
					v, i, as[i], aiw[i], bs[i], biw[i])
			}
		}
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digests differ despite identical adjacency")
	}
}

// requireValidCrossLinks fails unless g's outToIn mapping is a bijection
// onto in-slots that agrees with both CSR views.
func requireValidCrossLinks(t *testing.T, g *Graph) {
	t.Helper()
	seen := make([]bool, len(g.inSrc))
	for u := 0; u < g.n; u++ {
		for k := g.outOff[u]; k < g.outOff[u+1]; k++ {
			ip := g.outToIn[k]
			if ip < 0 || ip >= int64(len(g.inSrc)) {
				t.Fatalf("out-slot %d: outToIn %d out of range", k, ip)
			}
			if seen[ip] {
				t.Fatalf("in-slot %d mapped twice", ip)
			}
			seen[ip] = true
			dst := g.outDst[k]
			if ip < g.inOff[dst] || ip >= g.inOff[dst+1] {
				t.Fatalf("out-slot %d: in-slot %d outside dst %d's range", k, ip, dst)
			}
			if g.inSrc[ip] != Vertex(u) {
				t.Fatalf("out-slot %d: in-slot %d has src %d, want %d", k, ip, g.inSrc[ip], u)
			}
			if math.Float32bits(g.inW[ip]) != math.Float32bits(g.outW[k]) {
				t.Fatalf("out-slot %d: weight views disagree (%v vs %v)", k, g.inW[ip], g.outW[k])
			}
		}
	}
}

func TestOverlayInsertDelete(t *testing.T) {
	g, es := deltaFixture()
	ov := NewOverlay(g)
	if err := ov.Apply(Delta{
		{Kind: DeltaInsert, Src: 3, Dst: 1, W: 0.9},
		{Kind: DeltaDelete, Src: 1, Dst: 2},
		{Kind: DeltaDelete, Src: 2, Dst: 0}, // removes the first parallel occurrence
	}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !ov.Mutated() {
		t.Fatalf("Mutated() = false after a mutating batch")
	}
	got := ov.Compact()
	requireValidCrossLinks(t, got)

	// Mirror the batch on the edge list: delete first occurrences, append
	// inserts — that is exactly the canonical compaction order.
	want := FromEdges(4, []Edge{
		{0, 1, 0.5},
		{2, 0, 0.0625},
		{3, 3, 0.75},
		{0, 2, 0.3},
		{3, 1, 0.9},
	})
	requireSameGraph(t, got, want)

	// The base graph is untouched.
	requireSameGraph(t, g, FromEdges(4, es))
}

func TestOverlayInsertThenDeleteIsNoop(t *testing.T) {
	g, es := deltaFixture()
	ov := NewOverlay(g)
	if err := ov.Apply(Delta{
		{Kind: DeltaInsert, Src: 3, Dst: 0, W: 0.4},
		{Kind: DeltaDelete, Src: 3, Dst: 0},
	}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if ov.Mutated() {
		t.Fatalf("Mutated() = true for a net no-op batch")
	}
	requireSameGraph(t, ov.Compact(), FromEdges(4, es))
}

func TestOverlayDeleteThenReinsertMovesToTail(t *testing.T) {
	g, _ := deltaFixture()
	ov := NewOverlay(g)
	if err := ov.Apply(Delta{
		{Kind: DeltaDelete, Src: 0, Dst: 1},
		{Kind: DeltaInsert, Src: 0, Dst: 1, W: 0.99},
	}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	got := ov.Compact()
	requireValidCrossLinks(t, got)
	want := FromEdges(4, []Edge{
		{1, 2, 0.25},
		{2, 0, 0.125},
		{2, 0, 0.0625},
		{3, 3, 0.75},
		{0, 2, 0.3},
		{0, 1, 0.99},
	})
	requireSameGraph(t, got, want)
}

func TestOverlayValidation(t *testing.T) {
	cases := []struct {
		name  string
		d     Delta
		index int
	}{
		{"src out of range", Delta{{Kind: DeltaInsert, Src: 9, Dst: 0, W: 0.1}}, 0},
		{"dst out of range", Delta{{Kind: DeltaDelete, Src: 0, Dst: 9}}, 0},
		{"weight above one", Delta{{Kind: DeltaInsert, Src: 3, Dst: 0, W: 1.5}}, 0},
		{"weight NaN", Delta{{Kind: DeltaInsert, Src: 3, Dst: 0, W: float32(math.NaN())}}, 0},
		{"duplicate of base edge", Delta{{Kind: DeltaInsert, Src: 0, Dst: 1, W: 0.2}}, 0},
		{"duplicate of batch insert", Delta{
			{Kind: DeltaInsert, Src: 3, Dst: 0, W: 0.2},
			{Kind: DeltaInsert, Src: 3, Dst: 0, W: 0.3},
		}, 1},
		{"delete missing edge", Delta{{Kind: DeltaDelete, Src: 1, Dst: 0}}, 0},
		{"delete twice", Delta{
			{Kind: DeltaDelete, Src: 0, Dst: 1},
			{Kind: DeltaDelete, Src: 0, Dst: 1},
		}, 1},
		{"unknown kind", Delta{{Kind: DeltaOpKind(7), Src: 0, Dst: 1}}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, _ := deltaFixture()
			err := NewOverlay(g).Apply(tc.d)
			var de *DeltaError
			if !errors.As(err, &de) {
				t.Fatalf("Apply = %v, want *DeltaError", err)
			}
			if de.Index != tc.index {
				t.Fatalf("DeltaError.Index = %d, want %d (%v)", de.Index, tc.index, de)
			}
		})
	}
}

func TestOverlaySingleUse(t *testing.T) {
	g, _ := deltaFixture()
	ov := NewOverlay(g)
	if err := ov.Apply(nil); err != nil {
		t.Fatalf("first Apply: %v", err)
	}
	if err := ov.Apply(nil); err == nil {
		t.Fatalf("second Apply succeeded; overlays are single-use")
	}
}

func TestAppendedInOpsAlignsWithInListTail(t *testing.T) {
	g, _ := deltaFixture()
	ov := NewOverlay(g)
	d := Delta{
		{Kind: DeltaInsert, Src: 3, Dst: 0, W: 0.11},
		{Kind: DeltaInsert, Src: 1, Dst: 0, W: 0.22},
		{Kind: DeltaInsert, Src: 0, Dst: 3, W: 0.33},
		{Kind: DeltaDelete, Src: 1, Dst: 0}, // kills op 1
	}
	if err := ov.Apply(d); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	ng := ov.Compact()
	for v := Vertex(0); v < 4; v++ {
		ops := ov.AppendedInOps(v)
		srcs, ws := ng.InNeighbors(v)
		base := len(srcs) - len(ops)
		if base < 0 {
			t.Fatalf("vertex %d: %d appended ops but in-degree %d", v, len(ops), len(srcs))
		}
		for i, op := range ops {
			want := d[op]
			if srcs[base+i] != want.Src || ws[base+i] != want.W {
				t.Fatalf("vertex %d tail slot %d: (%d,%v) != op %d (%d,%v)",
					v, base+i, srcs[base+i], ws[base+i], op, want.Src, want.W)
			}
		}
	}
	if got := ov.AppendedInOps(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("AppendedInOps(0) = %v, want [0]", got)
	}
	if got := ov.AppendedInOps(3); len(got) != 1 || got[0] != 2 {
		t.Fatalf("AppendedInOps(3) = %v, want [2]", got)
	}
}

// mutateMirror applies op to the canonical edge-list mirror: deletions
// remove the first matching occurrence, insertions append. This is the
// reference semantics the overlay must reproduce.
func mutateMirror(list []Edge, op DeltaOp) []Edge {
	if op.Kind == DeltaInsert {
		return append(list, Edge{op.Src, op.Dst, op.W})
	}
	for i, e := range list {
		if e.Src == op.Src && e.Dst == op.Dst {
			return append(list[:i:i], list[i+1:]...)
		}
	}
	return list
}

// TestOverlayCompactionQuick is the property pin: for randomized base
// graphs and randomized valid delta scripts applied over several
// sequential overlay+compact rounds, the result is identical — degrees,
// neighbor order, weights, cross-links — to building the CSR from the
// mutated edge list directly, before and after re-deriving
// weighted-cascade weights.
func TestOverlayCompactionQuick(t *testing.T) {
	property := func(seed uint64) bool {
		r := rng.New(rng.NewLCG(rng.Mix64(seed)))
		n := 2 + r.Intn(30)
		m := r.Intn(4 * n)
		list := make([]Edge, 0, m)
		for i := 0; i < m; i++ {
			e := Edge{Vertex(r.Intn(n)), Vertex(r.Intn(n)), r.Float32()}
			if r.Intn(8) > 0 {
				// Mostly unique edges, occasionally parallel duplicates.
				dup := false
				for _, x := range list {
					if x.Src == e.Src && x.Dst == e.Dst {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
			}
			list = append(list, e)
		}
		g := FromEdges(n, list)

		batches := 1 + r.Intn(4)
		for b := 0; b < batches; b++ {
			var d Delta
			ops := r.Intn(10)
			for o := 0; o < ops; o++ {
				if len(list) > 0 && r.Intn(2) == 0 {
					e := list[r.Intn(len(list))]
					d = append(d, DeltaOp{Kind: DeltaDelete, Src: e.Src, Dst: e.Dst})
				} else {
					u, v := Vertex(r.Intn(n)), Vertex(r.Intn(n))
					exists := false
					for _, x := range list {
						if x.Src == u && x.Dst == v {
							exists = true
							break
						}
					}
					if exists {
						continue
					}
					d = append(d, DeltaOp{Kind: DeltaInsert, Src: u, Dst: v, W: r.Float32()})
				}
				list = mutateMirror(list, d[len(d)-1])
			}
			ov := NewOverlay(g)
			if err := ov.Apply(d); err != nil {
				t.Logf("seed %d: unexpected Apply error: %v", seed, err)
				return false
			}
			g = ov.Compact()
			requireValidCrossLinks(t, g)
		}

		want := FromEdges(n, list)
		if g.Digest() != want.Digest() {
			t.Logf("seed %d: digest mismatch vs direct CSR build", seed)
			return false
		}
		// Weighted-cascade weights derived on the compacted graph must
		// equal those derived on the direct build (same in-degrees, same
		// slot order).
		g.AssignWeightedCascade()
		want.AssignWeightedCascade()
		if g.Digest() != want.Digest() {
			t.Logf("seed %d: digest mismatch after AssignWeightedCascade", seed)
			return false
		}
		requireSameGraph(t, g, want)
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
