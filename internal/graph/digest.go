package graph

import "math"

// Digest returns a stable 64-bit FNV-1a digest of the graph: vertex count,
// out-CSR structure and edge weights. Two graphs digest equal iff they
// have identical CSR layout and bit-identical weights, so the digest keys
// sketch caches and validates that a persisted sketch snapshot belongs to
// the graph a server actually loaded. It is content-addressing, not
// cryptography: collisions are astronomically unlikely by accident but
// constructible on purpose.
func (g *Graph) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(g.n))
	mix(uint64(len(g.outDst)))
	for _, o := range g.outOff {
		mix(uint64(o))
	}
	for _, d := range g.outDst {
		mix(uint64(d))
	}
	for _, w := range g.outW {
		mix(uint64(math.Float32bits(w)))
	}
	return h
}
