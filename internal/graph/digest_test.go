package graph

import "testing"

func digestFixture() *Graph {
	b := NewBuilder(6)
	b.Add(0, 1, 0.5)
	b.Add(0, 2, 0.25)
	b.Add(2, 3, 0.125)
	b.Add(4, 5, 1)
	return b.Build()
}

func TestDigestStable(t *testing.T) {
	a, b := digestFixture(), digestFixture()
	if a.Digest() != b.Digest() {
		t.Fatal("identical construction produced different digests")
	}
}

func TestDigestSensitive(t *testing.T) {
	base := digestFixture().Digest()

	b := NewBuilder(6)
	b.Add(0, 1, 0.5)
	b.Add(0, 2, 0.25)
	b.Add(2, 3, 0.125)
	b.Add(4, 5, 0.75) // one weight changed
	if b.Build().Digest() == base {
		t.Fatal("weight change not reflected in digest")
	}

	c := NewBuilder(6)
	c.Add(0, 1, 0.5)
	c.Add(0, 2, 0.25)
	c.Add(2, 3, 0.125) // one edge dropped
	if c.Build().Digest() == base {
		t.Fatal("edge change not reflected in digest")
	}

	d := NewBuilder(7) // extra isolated vertex
	d.Add(0, 1, 0.5)
	d.Add(0, 2, 0.25)
	d.Add(2, 3, 0.125)
	d.Add(4, 5, 1)
	if d.Build().Digest() == base {
		t.Fatal("vertex-count change not reflected in digest")
	}
}
