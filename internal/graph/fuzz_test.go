package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseEdgeList exercises the text parser against arbitrary input: it
// must never panic, and any graph it accepts must satisfy the structural
// invariants and survive a write/parse round trip.
func FuzzParseEdgeList(f *testing.F) {
	f.Add("1 2\n2 3 0.5\n# comment\n")
	f.Add("")
	f.Add("0 0\n")
	f.Add("% percent comment\n10 20 1e-3\n")
	f.Add("9999999999999999999999 1\n")
	f.Add("1 2 NaN\n")
	f.Add("a b c\n")
	f.Add("1\t2\t0.25\n3 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, orig, err := ParseEdgeList(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if g.NumVertices() != len(orig) {
			t.Fatalf("vertex count %d != id map %d", g.NumVertices(), len(orig))
		}
		if err := g.validate(); err != nil {
			t.Fatalf("accepted graph violates invariants: %v", err)
		}
		// Round trip: re-serialize and re-parse; sizes must be preserved.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write: %v", err)
		}
		g2, _, err := ParseEdgeList(&buf)
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed edge count: %d -> %d", g.NumEdges(), g2.NumEdges())
		}
	})
}

// FuzzBinaryRoundTrip checks the binary decoder rejects corrupt input
// without panicking and round-trips valid graphs.
func FuzzBinaryRoundTrip(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteBinary(&buf, FromEdges(3, []Edge{{0, 1, 0.5}, {1, 2, 0.25}}))
	f.Add(buf.Bytes())
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.validate(); err != nil {
			t.Fatalf("decoded graph violates invariants: %v", err)
		}
	})
}
