// Package graph provides the directed-graph substrate for influence
// maximization: a compressed sparse row (CSR) representation with both
// out-adjacency (forward diffusion) and in-adjacency (reverse reachability
// sampling), per-edge activation probabilities, the weighting schemes used
// in the paper's evaluation, text and binary I/O, and degree statistics.
package graph

// Vertex identifies a vertex; graphs are laid out over the dense range
// [0, NumVertices).
type Vertex = uint32

// Edge is a weighted directed edge used during construction.
type Edge struct {
	Src, Dst Vertex
	W        float32
}

// Graph is an immutable directed graph in CSR form. Both adjacency
// directions are materialized: outgoing edges drive forward diffusion
// (Section 3, probabilistic BFS from the seed set) and incoming edges drive
// the reverse reachability sampling of Algorithm 3.
//
// Edge weights are the activation probabilities p(e); the in- and out-CSR
// views always agree (outToIn maps every out-slot to its in-slot).
type Graph struct {
	n int

	outOff []int64
	outDst []Vertex
	outW   []float32

	inOff []int64
	inSrc []Vertex
	inW   []float32

	// outToIn[k] is the in-CSR slot of the edge stored at out-CSR slot k,
	// used to keep the two weight views consistent.
	outToIn []int64
}

// NumVertices returns the number of vertices n.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of directed edges m.
func (g *Graph) NumEdges() int64 { return int64(len(g.outDst)) }

// OutDegree returns the number of outgoing edges of v.
func (g *Graph) OutDegree(v Vertex) int {
	return int(g.outOff[v+1] - g.outOff[v])
}

// InDegree returns the number of incoming edges of v.
func (g *Graph) InDegree(v Vertex) int {
	return int(g.inOff[v+1] - g.inOff[v])
}

// OutNeighbors returns the destinations and activation probabilities of v's
// outgoing edges. The returned slices alias internal storage and must not
// be modified.
func (g *Graph) OutNeighbors(v Vertex) ([]Vertex, []float32) {
	lo, hi := g.outOff[v], g.outOff[v+1]
	return g.outDst[lo:hi], g.outW[lo:hi]
}

// InNeighbors returns the sources and activation probabilities of v's
// incoming edges. The returned slices alias internal storage and must not
// be modified.
func (g *Graph) InNeighbors(v Vertex) ([]Vertex, []float32) {
	lo, hi := g.inOff[v], g.inOff[v+1]
	return g.inSrc[lo:hi], g.inW[lo:hi]
}

// InSources returns just the sources of v's incoming edges — the hot-loop
// variant of InNeighbors for kernels that carry edge weights separately
// (e.g. precomputed integer coin thresholds). The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) InSources(v Vertex) []Vertex {
	return g.inSrc[g.inOff[v]:g.inOff[v+1]]
}

// OutEdgeBase returns the global out-CSR slot of v's first outgoing edge;
// slot OutEdgeBase(v)+i identifies the i-th edge of OutNeighbors(v) stably,
// which the common-random-numbers cascade uses as the edge's coin identity.
func (g *Graph) OutEdgeBase(v Vertex) int64 { return g.outOff[v] }

// OutEdgeInSlots returns, for each of v's outgoing edges, the in-CSR slot
// of the same edge (its position within the destination's incoming list).
// The returned slice aliases internal storage.
func (g *Graph) OutEdgeInSlots(v Vertex) []int64 {
	lo, hi := g.outOff[v], g.outOff[v+1]
	return g.outToIn[lo:hi]
}

// InEdgeBase returns the global in-CSR slot of v's first incoming edge.
func (g *Graph) InEdgeBase(v Vertex) int64 { return g.inOff[v] }

// InWeightSum returns the sum of the activation probabilities of v's
// incoming edges (used by the Linear Threshold kernels).
func (g *Graph) InWeightSum(v Vertex) float64 {
	_, ws := g.InNeighbors(v)
	s := 0.0
	for _, w := range ws {
		s += float64(w)
	}
	return s
}

// Transpose returns a view of g with edge directions reversed. The view
// shares storage with g; weight mutations on either affect both.
func (g *Graph) Transpose() *Graph {
	t := &Graph{
		n:      g.n,
		outOff: g.inOff, outDst: g.inSrc, outW: g.inW,
		inOff: g.outOff, inSrc: g.outDst, inW: g.outW,
	}
	// outToIn is not preserved across transposition; weight-assignment
	// methods require it and should be applied to the original.
	return t
}

// Stats summarizes the degree structure of a graph (the columns of the
// paper's Table 2).
type Stats struct {
	Vertices  int
	Edges     int64
	AvgDegree float64
	MaxDegree int // max out-degree, as SNAP tables report
	MaxInDeg  int
}

// ComputeStats returns the degree statistics of g.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Vertices: g.n, Edges: g.NumEdges()}
	if g.n > 0 {
		s.AvgDegree = float64(s.Edges) / float64(g.n)
	}
	for v := 0; v < g.n; v++ {
		if d := g.OutDegree(Vertex(v)); d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d := g.InDegree(Vertex(v)); d > s.MaxInDeg {
			s.MaxInDeg = d
		}
	}
	return s
}

// MemoryBytes returns the number of bytes of adjacency storage, for the
// memory-footprint accounting of Table 2.
func (g *Graph) MemoryBytes() int64 {
	return int64(len(g.outOff)+len(g.inOff))*8 +
		int64(len(g.outDst)+len(g.inSrc))*4 +
		int64(len(g.outW)+len(g.inW))*4 +
		int64(len(g.outToIn))*8
}

// Builder accumulates edges and produces a CSR Graph.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// Add appends a directed edge u->v with activation probability w.
func (b *Builder) Add(u, v Vertex, w float32) {
	if int(u) >= b.n || int(v) >= b.n {
		panic("graph: edge endpoint out of range")
	}
	b.edges = append(b.edges, Edge{u, v, w})
}

// AddEdges appends a batch of edges.
func (b *Builder) AddEdges(es []Edge) {
	for _, e := range es {
		b.Add(e.Src, e.Dst, e.W)
	}
}

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build constructs the CSR graph. The builder can be reused afterwards.
// Edges are kept as given (parallel edges and self-loops are preserved);
// within each vertex's adjacency list, edges appear in insertion order.
func (b *Builder) Build() *Graph {
	n, m := b.n, len(b.edges)
	g := &Graph{
		n:       n,
		outOff:  make([]int64, n+1),
		outDst:  make([]Vertex, m),
		outW:    make([]float32, m),
		inOff:   make([]int64, n+1),
		inSrc:   make([]Vertex, m),
		inW:     make([]float32, m),
		outToIn: make([]int64, m),
	}
	for _, e := range b.edges {
		g.outOff[e.Src+1]++
		g.inOff[e.Dst+1]++
	}
	for v := 0; v < n; v++ {
		g.outOff[v+1] += g.outOff[v]
		g.inOff[v+1] += g.inOff[v]
	}
	outNext := make([]int64, n)
	inNext := make([]int64, n)
	copy(outNext, g.outOff[:n])
	copy(inNext, g.inOff[:n])
	for _, e := range b.edges {
		op := outNext[e.Src]
		ip := inNext[e.Dst]
		outNext[e.Src]++
		inNext[e.Dst]++
		g.outDst[op] = e.Dst
		g.outW[op] = e.W
		g.inSrc[ip] = e.Src
		g.inW[ip] = e.W
		g.outToIn[op] = ip
	}
	return g
}

// FromEdges builds a graph directly from an edge slice.
func FromEdges(n int, es []Edge) *Graph {
	b := NewBuilder(n)
	b.AddEdges(es)
	return b.Build()
}

// syncOutWeights re-derives the out-CSR weight view from the in-CSR view
// after an in-weight mutation.
func (g *Graph) syncOutWeights() {
	if g.outToIn == nil {
		panic("graph: weight assignment on a transposed view")
	}
	for k, ip := range g.outToIn {
		g.outW[k] = g.inW[ip]
	}
}
