package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"influmax/internal/rng"
)

// diamond builds the 4-vertex graph 0->1, 0->2, 1->3, 2->3 with the given
// weight everywhere.
func diamond(w float32) *Graph {
	return FromEdges(4, []Edge{{0, 1, w}, {0, 2, w}, {1, 3, w}, {2, 3, w}})
}

func TestBuildDegrees(t *testing.T) {
	g := diamond(0.5)
	wantOut := []int{2, 1, 1, 0}
	wantIn := []int{0, 1, 1, 2}
	for v := 0; v < 4; v++ {
		if d := g.OutDegree(Vertex(v)); d != wantOut[v] {
			t.Errorf("OutDegree(%d) = %d, want %d", v, d, wantOut[v])
		}
		if d := g.InDegree(Vertex(v)); d != wantIn[v] {
			t.Errorf("InDegree(%d) = %d, want %d", v, d, wantIn[v])
		}
	}
	if g.NumEdges() != 4 || g.NumVertices() != 4 {
		t.Errorf("size = (%d, %d), want (4, 4)", g.NumVertices(), g.NumEdges())
	}
}

func TestOutInConsistency(t *testing.T) {
	// Every out-edge must appear exactly once as an in-edge with the same
	// weight, on random graphs.
	check := func(seed uint64) bool {
		r := rng.New(rng.NewLCG(seed))
		n := 2 + r.Intn(30)
		m := r.Intn(100)
		b := NewBuilder(n)
		for i := 0; i < m; i++ {
			b.Add(Vertex(r.Intn(n)), Vertex(r.Intn(n)), r.Float32())
		}
		g := b.Build()
		type ew struct {
			u, v Vertex
			w    float32
		}
		counts := make(map[ew]int)
		for u := 0; u < n; u++ {
			dsts, ws := g.OutNeighbors(Vertex(u))
			for i := range dsts {
				counts[ew{Vertex(u), dsts[i], ws[i]}]++
			}
		}
		for v := 0; v < n; v++ {
			srcs, ws := g.InNeighbors(Vertex(v))
			for i := range srcs {
				counts[ew{srcs[i], Vertex(v), ws[i]}]--
			}
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelEdgesPreserved(t *testing.T) {
	g := FromEdges(2, []Edge{{0, 1, 0.1}, {0, 1, 0.2}, {0, 1, 0.3}})
	if g.OutDegree(0) != 3 || g.InDegree(1) != 3 {
		t.Fatalf("parallel edges collapsed: out=%d in=%d", g.OutDegree(0), g.InDegree(1))
	}
}

func TestSelfLoopPreserved(t *testing.T) {
	g := FromEdges(1, []Edge{{0, 0, 0.5}})
	if g.OutDegree(0) != 1 || g.InDegree(0) != 1 {
		t.Fatal("self loop lost")
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add out-of-range endpoint did not panic")
		}
	}()
	NewBuilder(2).Add(0, 2, 0.5)
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph not empty")
	}
	s := g.ComputeStats()
	if s.AvgDegree != 0 {
		t.Fatal("empty graph avg degree != 0")
	}
}

func TestIsolatedVertices(t *testing.T) {
	g := FromEdges(5, []Edge{{1, 3, 1}})
	for _, v := range []Vertex{0, 2, 4} {
		if g.OutDegree(v) != 0 || g.InDegree(v) != 0 {
			t.Errorf("vertex %d should be isolated", v)
		}
	}
}

func TestTranspose(t *testing.T) {
	g := diamond(0.25)
	tr := g.Transpose()
	if tr.OutDegree(3) != 2 || tr.InDegree(0) != 2 {
		t.Fatal("transpose degrees wrong")
	}
	srcs, _ := tr.OutNeighbors(3)
	if len(srcs) != 2 {
		t.Fatal("transpose adjacency wrong")
	}
	if tr.NumEdges() != g.NumEdges() {
		t.Fatal("transpose changed edge count")
	}
}

func TestComputeStats(t *testing.T) {
	g := diamond(1)
	s := g.ComputeStats()
	if s.MaxDegree != 2 || s.MaxInDeg != 2 {
		t.Errorf("max degrees = (%d, %d), want (2, 2)", s.MaxDegree, s.MaxInDeg)
	}
	if s.AvgDegree != 1.0 {
		t.Errorf("avg degree = %v, want 1.0", s.AvgDegree)
	}
}

func TestAssignConstant(t *testing.T) {
	g := diamond(0)
	g.AssignConstant(0.1)
	for v := 0; v < 4; v++ {
		_, ws := g.OutNeighbors(Vertex(v))
		for _, w := range ws {
			if w != 0.1 {
				t.Fatalf("out weight = %v, want 0.1", w)
			}
		}
		_, ws = g.InNeighbors(Vertex(v))
		for _, w := range ws {
			if w != 0.1 {
				t.Fatalf("in weight = %v, want 0.1", w)
			}
		}
	}
}

func TestAssignConstantPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AssignConstant(1.5) did not panic")
		}
	}()
	diamond(0).AssignConstant(1.5)
}

func TestAssignUniformDeterministicAndConsistent(t *testing.T) {
	g1, g2 := diamond(0), diamond(0)
	g1.AssignUniform(7)
	g2.AssignUniform(7)
	for v := 0; v < 4; v++ {
		_, w1 := g1.InNeighbors(Vertex(v))
		_, w2 := g2.InNeighbors(Vertex(v))
		for i := range w1 {
			if w1[i] != w2[i] {
				t.Fatal("AssignUniform not deterministic")
			}
			if w1[i] < 0 || w1[i] >= 1 {
				t.Fatalf("weight %v out of [0,1)", w1[i])
			}
		}
	}
	// Out view must mirror in view.
	for u := 0; u < 4; u++ {
		dsts, ws := g1.OutNeighbors(Vertex(u))
		for i, v := range dsts {
			srcs, iws := g1.InNeighbors(v)
			found := false
			for j, s := range srcs {
				if s == Vertex(u) && iws[j] == ws[i] {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d weight %v missing from in view", u, v, ws[i])
			}
		}
	}
}

func TestAssignWeightedCascade(t *testing.T) {
	g := diamond(0)
	g.AssignWeightedCascade()
	_, ws := g.InNeighbors(3) // indegree 2 -> 0.5 each
	for _, w := range ws {
		if w != 0.5 {
			t.Fatalf("WC weight = %v, want 0.5", w)
		}
	}
	_, ws = g.InNeighbors(1) // indegree 1 -> 1.0
	if ws[0] != 1.0 {
		t.Fatalf("WC weight = %v, want 1.0", ws[0])
	}
}

func TestNormalizeLT(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(rng.NewLCG(seed))
		n := 2 + r.Intn(20)
		b := NewBuilder(n)
		for i := 0; i < 5*n; i++ {
			b.Add(Vertex(r.Intn(n)), Vertex(r.Intn(n)), r.Float32())
		}
		g := b.Build()
		g.NormalizeLT()
		return g.MaxInWeightSum() <= 1.0+1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeLTPreservesRatios(t *testing.T) {
	g := FromEdges(2, []Edge{{0, 1, 0.9}, {0, 1, 2.7}})
	g.NormalizeLT()
	_, ws := g.InNeighbors(1)
	if math.Abs(float64(ws[1]/ws[0])-3.0) > 1e-5 {
		t.Fatalf("ratio not preserved: %v vs %v", ws[0], ws[1])
	}
	if s := g.InWeightSum(1); math.Abs(s-1.0) > 1e-6 {
		t.Fatalf("sum = %v, want 1", s)
	}
}

func TestNormalizeLTLeavesSmallSums(t *testing.T) {
	g := FromEdges(2, []Edge{{0, 1, 0.3}})
	g.NormalizeLT()
	_, ws := g.InNeighbors(1)
	if ws[0] != 0.3 {
		t.Fatalf("sub-unit sum was rescaled: %v", ws[0])
	}
}

func TestParseEdgeList(t *testing.T) {
	in := `# A comment
% another comment
10 20
20 30 0.5

30 10 1.0
`
	g, orig, err := ParseEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("parsed (%d, %d), want (3, 3)", g.NumVertices(), g.NumEdges())
	}
	want := []int64{10, 20, 30}
	for i, id := range orig {
		if id != want[i] {
			t.Fatalf("orig ids = %v, want %v", orig, want)
		}
	}
	// Edge 20->30 carries weight 0.5; relabeled 1->2.
	dsts, ws := g.OutNeighbors(1)
	if len(dsts) != 1 || dsts[0] != 2 || ws[0] != 0.5 {
		t.Fatalf("edge 1->2 = (%v, %v)", dsts, ws)
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	cases := []string{"abc def", "1", "1 xyz", "-1 2", "1 2 notanumber"}
	for _, in := range cases {
		if _, _, err := ParseEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("ParseEdgeList(%q) succeeded, want error", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := diamond(0.25)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ParseEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch: (%d, %d)", g2.NumVertices(), g2.NumEdges())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := diamond(0.75)
	g.AssignUniform(3)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 4 || g2.NumEdges() != 4 {
		t.Fatal("binary round trip lost structure")
	}
	for v := 0; v < 4; v++ {
		_, w1 := g.InNeighbors(Vertex(v))
		_, w2 := g2.InNeighbors(Vertex(v))
		for i := range w1 {
			if w1[i] != w2[i] {
				t.Fatal("binary round trip lost weights")
			}
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("ReadBinary accepted garbage")
	}
}

func TestInWeightSum(t *testing.T) {
	g := diamond(0.25)
	if s := g.InWeightSum(3); math.Abs(s-0.5) > 1e-9 {
		t.Fatalf("InWeightSum(3) = %v, want 0.5", s)
	}
	if s := g.InWeightSum(0); s != 0 {
		t.Fatalf("InWeightSum(0) = %v, want 0", s)
	}
}

func TestMemoryBytesPositive(t *testing.T) {
	if diamond(1).MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes <= 0 for non-empty graph")
	}
}
