package graph

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseEdgeList reads a whitespace-separated edge list ("u v" or "u v w"
// per line; lines starting with '#' or '%' are comments) in the format of
// the SNAP collection. Vertex identifiers may be arbitrary non-negative
// integers; they are relabeled to the dense range [0, n). The returned
// slice maps each new id back to the original id (sorted ascending). Edges
// without an explicit weight get weight 0 and should be assigned one of the
// weighting schemes afterwards.
func ParseEdgeList(r io.Reader) (*Graph, []int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	type rawEdge struct {
		u, v int64
		w    float32
	}
	var raw []rawEdge
	ids := make(map[int64]struct{})
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad source %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad destination %q: %v", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		var w float64
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, nil, fmt.Errorf("graph: line %d: bad weight %q: %v", lineNo, fields[2], err)
			}
		}
		raw = append(raw, rawEdge{u, v, float32(w)})
		ids[u] = struct{}{}
		ids[v] = struct{}{}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: read: %v", err)
	}
	orig := make([]int64, 0, len(ids))
	for id := range ids {
		orig = append(orig, id)
	}
	sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
	remap := make(map[int64]Vertex, len(orig))
	for i, id := range orig {
		remap[id] = Vertex(i)
	}
	b := NewBuilder(len(orig))
	for _, e := range raw {
		b.Add(remap[e.u], remap[e.v], e.w)
	}
	return b.Build(), orig, nil
}

// WriteEdgeList writes g as "u v w" lines.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# influmax edge list: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for u := 0; u < g.NumVertices(); u++ {
		dsts, ws := g.OutNeighbors(Vertex(u))
		for i, v := range dsts {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", u, v, ws[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// binaryGraph is the gob wire form of a Graph.
type binaryGraph struct {
	N       int
	OutOff  []int64
	OutDst  []Vertex
	OutW    []float32
	InOff   []int64
	InSrc   []Vertex
	InW     []float32
	OutToIn []int64
}

// WriteBinary serializes g in the package's binary format (gob).
func WriteBinary(w io.Writer, g *Graph) error {
	return gob.NewEncoder(w).Encode(binaryGraph{
		N:      g.n,
		OutOff: g.outOff, OutDst: g.outDst, OutW: g.outW,
		InOff: g.inOff, InSrc: g.inSrc, InW: g.inW,
		OutToIn: g.outToIn,
	})
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	var bg binaryGraph
	if err := gob.NewDecoder(r).Decode(&bg); err != nil {
		return nil, fmt.Errorf("graph: decode: %v", err)
	}
	g := &Graph{
		n:      bg.N,
		outOff: bg.OutOff, outDst: bg.OutDst, outW: bg.OutW,
		inOff: bg.InOff, inSrc: bg.InSrc, inW: bg.InW,
		outToIn: bg.OutToIn,
	}
	if err := g.validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// validate checks structural invariants of a deserialized graph.
func (g *Graph) validate() error {
	if g.n < 0 || len(g.outOff) != g.n+1 || len(g.inOff) != g.n+1 {
		return fmt.Errorf("graph: corrupt offsets (n=%d)", g.n)
	}
	m := int64(len(g.outDst))
	if int64(len(g.inSrc)) != m || int64(len(g.outW)) != m || int64(len(g.inW)) != m {
		return fmt.Errorf("graph: inconsistent edge array lengths")
	}
	if g.outOff[g.n] != m || g.inOff[g.n] != m {
		return fmt.Errorf("graph: offset totals disagree with edge count")
	}
	prev := int64(0)
	for v := 0; v <= g.n; v++ {
		if g.outOff[v] < prev || g.inOff[v] < 0 || g.inOff[v] > m {
			return fmt.Errorf("graph: non-monotone offsets at vertex %d", v)
		}
		prev = g.outOff[v]
	}
	for _, d := range g.outDst {
		if int(d) >= g.n {
			return fmt.Errorf("graph: out-edge endpoint %d out of range", d)
		}
	}
	for _, s := range g.inSrc {
		if int(s) >= g.n {
			return fmt.Errorf("graph: in-edge endpoint %d out of range", s)
		}
	}
	return nil
}
