package graph

import "sort"

// InducedSubgraph returns the subgraph induced by the given vertex set:
// its vertices are relabeled to [0, len(set)) in ascending original-id
// order, and every edge of g with both endpoints in the set is kept with
// its weight. The returned slice maps each new id to its original vertex.
// Duplicate vertices in the input are ignored.
func (g *Graph) InducedSubgraph(set []Vertex) (*Graph, []Vertex) {
	keep := make([]Vertex, 0, len(set))
	seen := make(map[Vertex]bool, len(set))
	for _, v := range set {
		if int(v) < g.n && !seen[v] {
			seen[v] = true
			keep = append(keep, v)
		}
	}
	sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
	remap := make(map[Vertex]Vertex, len(keep))
	for i, v := range keep {
		remap[v] = Vertex(i)
	}
	b := NewBuilder(len(keep))
	for _, u := range keep {
		dsts, ws := g.OutNeighbors(u)
		for i, v := range dsts {
			if nv, ok := remap[v]; ok {
				b.Add(remap[u], nv, ws[i])
			}
		}
	}
	return b.Build(), keep
}
