package graph

import (
	"slices"
	"testing"
	"testing/quick"

	"influmax/internal/rng"
)

func TestInducedSubgraphBasic(t *testing.T) {
	g := FromEdges(5, []Edge{
		{0, 1, 0.1}, {1, 2, 0.2}, {2, 3, 0.3}, {3, 4, 0.4}, {4, 0, 0.5},
	})
	sub, back := g.InducedSubgraph([]Vertex{1, 2, 3})
	if sub.NumVertices() != 3 {
		t.Fatalf("sub n = %d", sub.NumVertices())
	}
	if !slices.Equal(back, []Vertex{1, 2, 3}) {
		t.Fatalf("back map = %v", back)
	}
	// Kept edges: 1->2 and 2->3, relabeled 0->1, 1->2.
	if sub.NumEdges() != 2 {
		t.Fatalf("sub m = %d", sub.NumEdges())
	}
	dsts, ws := sub.OutNeighbors(0)
	if len(dsts) != 1 || dsts[0] != 1 || ws[0] != 0.2 {
		t.Fatalf("edge 0: %v %v", dsts, ws)
	}
}

func TestInducedSubgraphDedupAndOutOfRange(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1, 1}})
	sub, back := g.InducedSubgraph([]Vertex{1, 1, 0, 99})
	if sub.NumVertices() != 2 || len(back) != 2 {
		t.Fatalf("dedup failed: n=%d back=%v", sub.NumVertices(), back)
	}
}

func TestInducedSubgraphWholeGraphIsIsomorphic(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(rng.NewLCG(seed))
		n := 2 + r.Intn(20)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			b.Add(Vertex(u), Vertex(v), r.Float32())
		}
		g := b.Build()
		all := make([]Vertex, n)
		for i := range all {
			all[i] = Vertex(i)
		}
		sub, back := g.InducedSubgraph(all)
		if sub.NumVertices() != n || sub.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < n; v++ {
			if back[v] != Vertex(v) {
				return false
			}
			if sub.OutDegree(Vertex(v)) != g.OutDegree(Vertex(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraphNoForeignEdges(t *testing.T) {
	// Edges with exactly one endpoint in the set must be dropped.
	g := FromEdges(4, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}, {3, 0, 1}})
	sub, _ := g.InducedSubgraph([]Vertex{0, 3})
	if sub.NumEdges() != 1 { // only 3->0 survives
		t.Fatalf("sub m = %d, want 1", sub.NumEdges())
	}
}

func TestScaleWeights(t *testing.T) {
	g := FromEdges(2, []Edge{{0, 1, 0.4}, {1, 0, 0.9}})
	g.ScaleWeights(0.5)
	_, ws := g.InNeighbors(1)
	if ws[0] != 0.2 {
		t.Fatalf("scaled weight = %v", ws[0])
	}
	// Clamp at 1.
	g.ScaleWeights(100)
	_, ws = g.InNeighbors(1)
	if ws[0] != 1 {
		t.Fatalf("clamped weight = %v", ws[0])
	}
	// Out view synchronized.
	_, ows := g.OutNeighbors(0)
	if ows[0] != 1 {
		t.Fatalf("out view not synced: %v", ows[0])
	}
}

func TestScaleWeightsPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative scale accepted")
		}
	}()
	FromEdges(2, []Edge{{0, 1, 0.5}}).ScaleWeights(-1)
}
