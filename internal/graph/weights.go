package graph

import "influmax/internal/rng"

// The paper's experimental setup: "the edge weights for probabilistic BFS
// are generated uniformly at random in the range [0,1]" for the IC model,
// and for the LT model "the weights are readjusted such that the sum of the
// probabilities of traversing one of the neighboring edges and of not
// traversing any of them, is one". Tang et al. instead fixed 0.10 on every
// edge; both schemes are provided, plus the weighted-cascade scheme
// (w = 1/indeg) common in the literature.

// AssignUniform sets every edge's activation probability to an independent
// uniform draw from [0, 1), deterministically from seed.
func (g *Graph) AssignUniform(seed uint64) {
	r := rng.New(rng.NewLCG(seed))
	for i := range g.inW {
		g.inW[i] = r.Float32()
	}
	g.syncOutWeights()
}

// AssignConstant sets every edge's activation probability to p (Tang et
// al.'s setup with p = 0.10).
func (g *Graph) AssignConstant(p float32) {
	if p < 0 || p > 1 {
		panic("graph: probability out of [0,1]")
	}
	for i := range g.inW {
		g.inW[i] = p
	}
	g.syncOutWeights()
}

// AssignWeightedCascade sets w(u,v) = 1/indeg(v), the weighted-cascade
// scheme of Kempe et al.
func (g *Graph) AssignWeightedCascade() {
	for v := 0; v < g.n; v++ {
		lo, hi := g.inOff[v], g.inOff[v+1]
		if hi == lo {
			continue
		}
		w := float32(1.0 / float64(hi-lo))
		for i := lo; i < hi; i++ {
			g.inW[i] = w
		}
	}
	g.syncOutWeights()
}

// ScaleWeights multiplies every edge's activation probability by f,
// clamping to [0, 1]. Used to damp inference scores (e.g. co-expression
// correlations) into a sub-saturating diffusion regime.
func (g *Graph) ScaleWeights(f float32) {
	if f < 0 {
		panic("graph: negative weight scale")
	}
	for i := range g.inW {
		w := g.inW[i] * f
		if w > 1 {
			w = 1
		}
		g.inW[i] = w
	}
	g.syncOutWeights()
}

// NormalizeLT rescales the incoming weights of every vertex so that they
// sum to at most 1, making the weights a valid Linear Threshold
// configuration: with probability sum(w) a reverse step follows one of the
// in-edges (chosen proportionally), and with probability 1-sum(w) no edge
// is traversed.
func (g *Graph) NormalizeLT() {
	for v := 0; v < g.n; v++ {
		lo, hi := g.inOff[v], g.inOff[v+1]
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += float64(g.inW[i])
		}
		if sum > 1 {
			inv := float32(1 / sum)
			for i := lo; i < hi; i++ {
				g.inW[i] *= inv
			}
		}
	}
	g.syncOutWeights()
}

// MaxInWeightSum returns the largest per-vertex sum of incoming weights
// (1.0 or less after NormalizeLT; used to validate LT configurations).
func (g *Graph) MaxInWeightSum() float64 {
	maxSum := 0.0
	for v := 0; v < g.n; v++ {
		if s := g.InWeightSum(Vertex(v)); s > maxSum {
			maxSum = s
		}
	}
	return maxSum
}
