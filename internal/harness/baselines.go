package harness

import (
	"fmt"
	"time"

	"influmax/internal/baseline"
	"influmax/internal/centrality"
	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/imm"
)

// Baselines produces the classic cross-algorithm comparison every IM paper
// (and the paper's related-work section) rests on: solution quality
// (Monte Carlo spread) and wall-clock for IMM at two accuracies, TIM+,
// CELF/CELF++ with a Monte Carlo oracle, and the degree / degree-discount
// / k-shell heuristics, all at the same budget k.
func Baselines(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	g, err := loadAnalog("soc-Epinions1", cfg)
	if err != nil {
		return nil, err
	}
	k := cfg.BaseK / 4
	if k < 1 {
		k = 1
	}
	if k >= g.NumVertices() {
		k = g.NumVertices() / 8
	}
	const oracleTrials = 200
	t := &Table{
		ID:    "Baselines",
		Title: fmt.Sprintf("Algorithm comparison (soc-Epinions1 analog, IC, k=%d)", k),
		Note: fmt.Sprintf("Scale %g; spread via %d Monte Carlo cascades; CELF variants use a %d-trial CRN oracle.",
			cfg.Scale, cfg.Trials, oracleTrials),
		Header: []string{"Algorithm", "Spread", "Time (s)", "Notes"},
	}
	type method struct {
		name string
		run  func() ([]graph.Vertex, string, error)
	}
	methods := []method{
		{"IMM (eps=0.13)", func() ([]graph.Vertex, string, error) {
			r, err := imm.Run(g, imm.Options{K: k, Epsilon: 0.13, Model: diffuse.IC, Workers: cfg.Workers, Seed: cfg.Seed})
			if err != nil {
				return nil, "", err
			}
			return r.Seeds, fmt.Sprintf("theta=%d", r.Theta), nil
		}},
		{"IMM (eps=0.5)", func() ([]graph.Vertex, string, error) {
			r, err := imm.Run(g, imm.Options{K: k, Epsilon: 0.5, Model: diffuse.IC, Workers: cfg.Workers, Seed: cfg.Seed})
			if err != nil {
				return nil, "", err
			}
			return r.Seeds, fmt.Sprintf("theta=%d", r.Theta), nil
		}},
		{"TIM+ (eps=0.5)", func() ([]graph.Vertex, string, error) {
			r, err := imm.RunTIMPlus(g, imm.Options{K: k, Epsilon: 0.5, Model: diffuse.IC, Workers: cfg.Workers, Seed: cfg.Seed})
			if err != nil {
				return nil, "", err
			}
			return r.Seeds, fmt.Sprintf("theta=%d", r.Theta), nil
		}},
		{"CELF", func() ([]graph.Vertex, string, error) {
			s, _, err := baseline.CELF(g, diffuse.IC, k, oracleTrials, cfg.Workers, cfg.Seed)
			return s, "", err
		}},
		{"CELF++", func() ([]graph.Vertex, string, error) {
			s, _, evals, err := baseline.CELFPlusPlus(g, diffuse.IC, k, oracleTrials, cfg.Workers, cfg.Seed)
			return s, fmt.Sprintf("evals=%d", evals), err
		}},
		{"degree discount", func() ([]graph.Vertex, string, error) {
			return baseline.DegreeDiscount(g, k, 0.1), "", nil
		}},
		{"single discount", func() ([]graph.Vertex, string, error) {
			return baseline.SingleDiscount(g, k), "", nil
		}},
		{"top degree", func() ([]graph.Vertex, string, error) {
			return baseline.TopDegree(g, k), "", nil
		}},
		{"k-shell", func() ([]graph.Vertex, string, error) {
			return centrality.KShellSeeds(g, k), "", nil
		}},
	}
	for _, m := range methods {
		start := time.Now()
		seeds, note, err := m.run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.name, err)
		}
		elapsed := time.Since(start).Seconds()
		spread, _ := diffuse.EstimateSpread(g, diffuse.IC, seeds, cfg.Trials, cfg.Workers, cfg.Seed^0xBA5E)
		t.Add(m.name, fmtF(spread), fmtDur(elapsed), note)
	}
	return t, nil
}
