package harness

import (
	"fmt"
	"io"

	"influmax/internal/bio"
	"influmax/internal/centrality"
	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/imm"
)

// bioNetwork bundles one synthetic case-study network.
type bioNetwork struct {
	name string
	expr *bio.Expression
	g    *graph.Graph
	ps   []bio.Pathway
}

// buildBioNetworks synthesizes the two Section 5 networks: "cancer"
// (proteomic/transcriptomic tumor analog: more features, stronger modules)
// and "soil" (metabolomic/metatranscriptomic analog: fewer, noisier
// modules).
func buildBioNetworks(cfg Config) []bioNetwork {
	specs := []struct {
		name string
		ec   bio.ExprConfig
	}{
		{"cancer", bio.ExprConfig{Features: 2000, Samples: 80, Modules: 8, ModuleSize: 45, Signal: 0.8, Seed: cfg.Seed ^ 0xCA}},
		{"soil", bio.ExprConfig{Features: 1200, Samples: 50, Modules: 6, ModuleSize: 40, Signal: 0.7, Seed: cfg.Seed ^ 0x50}},
	}
	var out []bioNetwork
	for _, s := range specs {
		expr := bio.SyntheticExpression(s.ec)
		// Global-threshold inference: keep ~5 undirected edges per feature
		// on average, so degree tracks co-regulation strength.
		g := bio.InferNetworkTop(expr, 5*s.ec.Features)
		// Damp correlation scores into a near-critical diffusion regime:
		// raw within-module correlations (~0.7) would let a single seed
		// saturate a whole module, pushing IMM's remaining picks into the
		// background and flattening the comparison.
		g.ScaleWeights(0.035)
		ps := bio.SyntheticPathways(expr, s.ec.Modules, 0.15, cfg.Seed^0xDB)
		out = append(out, bioNetwork{name: s.name, expr: expr, g: g, ps: ps})
	}
	return out
}

// Bio regenerates the Section 5 case study: the top-k feature sets of IMM,
// degree centrality and betweenness centrality are compared by pathway
// enrichment (significant pathways at adjusted p < 0.05, and how many of
// them are planted ground-truth modules).
func Bio(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "Section 5",
		Title: "Case study: IMM vs centrality on co-expression networks",
		Note: "Synthetic module-structured omics (GENIE3 substituted by correlation inference); " +
			"enrichment by Fisher's exact test with BH adjustment at alpha = 0.05.",
		Header: []string{"Network", "Method", "Enriched pathways (adj p<0.05)", "Ground-truth modules recovered"},
	}
	for _, nw := range buildBioNetworks(cfg) {
		n := nw.g.NumVertices()
		// Scaled stand-in for the paper's k = 200 out of >10k features:
		// select 3% of the universe.
		kk := 3 * n / 100
		res, err := imm.Run(nw.g, imm.Options{K: kk, Epsilon: 0.13, Model: diffuse.IC, Workers: cfg.Workers, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		methods := []struct {
			name  string
			picks []graph.Vertex
		}{
			{"IMM", res.Seeds},
			{"degree", centrality.TopK(centrality.TotalDegree(nw.g), kk)},
			{"betweenness", centrality.TopK(centrality.Betweenness(nw.g, cfg.Workers), kk)},
		}
		for _, m := range methods {
			enr := bio.Enrich(m.picks, nw.ps, n)
			t.Add(nw.name, m.name,
				fmt.Sprintf("%d", bio.CountSignificant(enr, 0.05)),
				fmt.Sprintf("%d/%d", bio.TruePositives(enr, 0.05), nw.expr.Modules))
		}
	}
	return t, nil
}

// Driver is a named experiment generator.
type Driver struct {
	Name string
	Run  func(Config) (*Table, error)
}

// Drivers lists every experiment in paper order.
func Drivers() []Driver {
	return []Driver{
		{"fig1", Fig1},
		{"table2", Table2},
		{"fig2", Fig2},
		{"fig3", Fig3},
		{"fig4", Fig4},
		{"fig5", Fig5},
		{"fig6", Fig6},
		{"fig7", Fig7},
		{"fig8", Fig8},
		{"table3", Table3},
		{"bio", Bio},
		{"validate", Validate},
		{"partitioned", Partitioned},
		{"baselines", Baselines},
	}
}

// RunAll executes every driver and streams markdown to w.
func RunAll(cfg Config, w io.Writer) error {
	for _, d := range Drivers() {
		t, err := d.Run(cfg)
		if err != nil {
			return fmt.Errorf("harness: %s: %w", d.Name, err)
		}
		if _, err := io.WriteString(w, t.Markdown()+"\n"); err != nil {
			return err
		}
	}
	return nil
}
