package harness

import (
	"fmt"
	"sync"

	"influmax/internal/diffuse"
	"influmax/internal/dist"
	"influmax/internal/gen"
	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/metrics"
	"influmax/internal/mpi"
	"influmax/internal/trace"
)

// loadAnalog generates the analog of the named dataset with IC weights
// assigned; callers normalize for LT when needed.
func loadAnalog(name string, cfg Config) (*graph.Graph, error) {
	d, err := gen.ByName(name)
	if err != nil {
		return nil, err
	}
	g := d.Generate(cfg.Scale, cfg.Seed)
	g.AssignUniform(cfg.Seed ^ 0x5eed)
	return g, nil
}

// prepModel returns the graph ready for the given model (LT needs
// normalized in-weights).
func prepModel(g *graph.Graph, model diffuse.Model) *graph.Graph {
	if model == diffuse.LT {
		g.NormalizeLT()
	}
	return g
}

// runIMM and runIMMBaseline execute one shared-memory run and log its
// RunReport into the config's report sink (a no-op without one), so every
// figure and table regeneration leaves a machine-readable trajectory.
func runIMM(cfg Config, g *graph.Graph, opt imm.Options) (*imm.Result, error) {
	res, err := imm.Run(g, opt)
	if err == nil {
		cfg.record(res.Report(opt))
	}
	return res, err
}

func runIMMBaseline(cfg Config, g *graph.Graph, opt imm.Options) (*imm.Result, error) {
	res, err := imm.RunBaseline(g, opt)
	if err == nil {
		cfg.record(res.Report(opt))
	}
	return res, err
}

// defaultSmall is the dataset subset used by the sweep figures when the
// config does not filter (kept to the four smaller graphs so a full run is
// tractable on one machine; pass -datasets to widen).
var defaultSmall = []string{"cit-HepTh", "soc-Epinions1", "com-Amazon", "com-DBLP"}

// defaultBig is the four biggest graphs, used by the distributed figures
// as in the paper ("Smaller graphs do not produce sufficient work").
var defaultBig = []string{"com-YouTube", "soc-Pokec", "soc-LiveJournal1", "com-Orkut"}

// Fig1 regenerates Figure 1: activated vertices as a function of the seed
// set size k at the state-of-the-art accuracy (eps = 0.5) and this paper's
// accuracy (eps = 0.13), evaluated by forward Monte Carlo.
func Fig1(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	g, err := loadAnalog("cit-HepTh", cfg)
	if err != nil {
		return nil, err
	}
	ks := cfg.KValues
	if ks == nil {
		ks = []int{25, 50, 75, 100, 125, 150, 175, 200}
	}
	t := &Table{
		ID:     "Figure 1",
		Title:  "Activated vertices vs seed set size and approximation quality",
		Note:   fmt.Sprintf("cit-HepTh analog (scale %g), IC model; spread via %d Monte Carlo cascades.", cfg.Scale, cfg.Trials),
		Header: []string{"k", "eps=0.50 activated", "eps=0.13 activated"},
	}
	for _, k := range ks {
		if k >= g.NumVertices() {
			continue
		}
		row := []string{fmt.Sprintf("%d", k)}
		for _, eps := range []float64{0.5, 0.13} {
			res, err := runIMM(cfg, g, imm.Options{K: k, Epsilon: eps, Model: diffuse.IC, Workers: cfg.Workers, Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			spread, _ := diffuse.EstimateSpread(g, diffuse.IC, res.Seeds, cfg.Trials, cfg.Workers, cfg.Seed^0xf19)
			row = append(row, fmtF(spread))
		}
		t.Add(row...)
	}
	return t, nil
}

// Table2 regenerates Table 2: serial IMM (Tang-style bidirectional store)
// vs IMMopt (compact store) — time, RRR-store memory, speedup and savings,
// per dataset, at eps = 0.5, k = 50.
func Table2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "Table 2",
		Title:  "Serial execution time and memory usage of IMM vs IMMopt (eps=0.5, k=50)",
		Note:   fmt.Sprintf("Synthetic analogs at scale %g; memory is the RRR-store footprint.", cfg.Scale),
		Header: []string{"Graph", "Nodes", "Edges", "AvgDeg", "MaxDeg", "IMM (s)", "IMMopt (s)", "Speedup", "IMM (MB)", "IMMopt (MB)", "% savings"},
	}
	for _, d := range gen.Datasets() {
		if !cfg.wantDataset(d.Name) {
			continue
		}
		g, err := loadAnalog(d.Name, cfg)
		if err != nil {
			return nil, err
		}
		st := g.ComputeStats()
		k := 50
		if k >= st.Vertices {
			k = st.Vertices / 2
		}
		opt := imm.Options{K: k, Epsilon: 0.5, Model: diffuse.IC, Workers: 1, Seed: cfg.Seed}
		base, err := runIMMBaseline(cfg, g, opt)
		if err != nil {
			return nil, err
		}
		fast, err := runIMM(cfg, g, opt)
		if err != nil {
			return nil, err
		}
		bs, fs := base.Phases.Total().Seconds(), fast.Phases.Total().Seconds()
		bm, fm := float64(base.StoreBytes)/(1<<20), float64(fast.StoreBytes)/(1<<20)
		t.Add(d.Name,
			fmt.Sprintf("%d", st.Vertices), fmt.Sprintf("%d", st.Edges),
			fmtF(st.AvgDegree), fmt.Sprintf("%d", st.MaxDegree),
			fmtDur(bs), fmtDur(fs), fmtF(bs/fs)+"x",
			fmtF(bm), fmtF(fm), fmtF(100*(1-fm/bm))+"%")
	}
	return t, nil
}

// Fig2 regenerates Figure 2: theta as a function of eps and k on the
// cit-HepTh analog (log-scale growth as eps shrinks).
func Fig2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	g, err := loadAnalog("cit-HepTh", cfg)
	if err != nil {
		return nil, err
	}
	epss := cfg.EpsValues
	if epss == nil {
		epss = []float64{0.2, 0.3, 0.4, 0.5, 0.6}
	}
	ks := cfg.KValues
	if ks == nil {
		ks = []int{10, 30, 50, 70, 90}
	}
	// Keep only budgets the analog can satisfy.
	valid := ks[:0:0]
	for _, k := range ks {
		if k < g.NumVertices() {
			valid = append(valid, k)
		}
	}
	ks = valid
	header := []string{"eps \\ k"}
	for _, k := range ks {
		header = append(header, fmt.Sprintf("k=%d", k))
	}
	t := &Table{
		ID:     "Figure 2",
		Title:  "Number of RRR sets (theta) vs eps and k",
		Note:   fmt.Sprintf("cit-HepTh analog (n=%d); each cell is the estimated theta.", g.NumVertices()),
		Header: header,
	}
	for _, eps := range epss {
		row := []string{fmt.Sprintf("%.2f", eps)}
		for _, k := range ks {
			res, err := runIMM(cfg, g, imm.Options{K: k, Epsilon: eps, Model: diffuse.IC, Workers: cfg.Workers, Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", res.Theta))
		}
		t.Add(row...)
	}
	return t, nil
}

// phaseRow renders an IMM result's phase breakdown.
func phaseRow(prefix []string, ph trace.Times) []string {
	return append(prefix,
		fmtDur(ph.Get(trace.Estimation).Seconds()),
		fmtDur(ph.Get(trace.Sampling).Seconds()),
		fmtDur(ph.Get(trace.IndexBuild).Seconds()),
		fmtDur(ph.Get(trace.SelectSeeds).Seconds()),
		fmtDur(ph.Get(trace.Other).Seconds()),
		fmtDur(ph.Total().Seconds()))
}

var phaseHeader = []string{"EstimateTheta (s)", "Sample (s)", "BuildIndex (s)", "SelectSeeds (s)", "Other (s)", "Total (s)"}

// Fig3 regenerates Figure 3: runtime vs eps at k = 50, IC model, with the
// per-phase breakdown, for each dataset.
func Fig3(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	epss := cfg.EpsValues
	if epss == nil {
		epss = []float64{0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50}
	}
	t := &Table{
		ID:     "Figure 3",
		Title:  "Impact of eps on runtime (k=50, IC), phase breakdown",
		Note:   fmt.Sprintf("Scale %g, %d threads.", cfg.Scale, cfg.Workers),
		Header: append([]string{"Graph", "eps"}, phaseHeader...),
	}
	for _, name := range defaultSmall {
		if !cfg.wantDataset(name) {
			continue
		}
		g, err := loadAnalog(name, cfg)
		if err != nil {
			return nil, err
		}
		for _, eps := range epss {
			res, err := runIMM(cfg, g, imm.Options{K: 50, Epsilon: eps, Model: diffuse.IC, Workers: cfg.Workers, Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, phaseRow([]string{name, fmt.Sprintf("%.2f", eps)}, res.Phases))
		}
	}
	return t, nil
}

// Fig4 regenerates Figure 4: runtime vs k at eps = 0.5, IC model, phase
// breakdown.
func Fig4(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ks := cfg.KValues
	if ks == nil {
		ks = []int{10, 25, 40, 55, 70, 85, 100}
	}
	t := &Table{
		ID:     "Figure 4",
		Title:  "Impact of k on runtime (eps=0.5, IC), phase breakdown",
		Note:   fmt.Sprintf("Scale %g, %d threads.", cfg.Scale, cfg.Workers),
		Header: append([]string{"Graph", "k"}, phaseHeader...),
	}
	for _, name := range defaultSmall {
		if !cfg.wantDataset(name) {
			continue
		}
		g, err := loadAnalog(name, cfg)
		if err != nil {
			return nil, err
		}
		for _, k := range ks {
			if k >= g.NumVertices() {
				continue
			}
			res, err := runIMM(cfg, g, imm.Options{K: k, Epsilon: 0.5, Model: diffuse.IC, Workers: cfg.Workers, Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, phaseRow([]string{name, fmt.Sprintf("%d", k)}, res.Phases))
		}
	}
	return t, nil
}

// scaling runs the thread sweep behind Figures 5 (LT) and 6 (IC).
func scaling(cfg Config, model diffuse.Model, id string) (*Table, error) {
	cfg = cfg.withDefaults()
	threads := cfg.Threads
	if threads == nil {
		for p := 1; p <= cfg.Workers; p *= 2 {
			threads = append(threads, p)
		}
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Multithreaded strong scaling (%s model, eps=0.5, k=%d)", model, cfg.BaseK),
		Note:   fmt.Sprintf("Scale %g; speedup relative to 1 thread.", cfg.Scale),
		Header: append([]string{"Graph", "Threads"}, append(phaseHeader, "Speedup", "WorkBalance")...),
	}
	for _, name := range defaultSmall {
		if !cfg.wantDataset(name) {
			continue
		}
		g, err := loadAnalog(name, cfg)
		if err != nil {
			return nil, err
		}
		prepModel(g, model)
		k := cfg.BaseK
		if k >= g.NumVertices() {
			k = g.NumVertices() / 2
		}
		base := 0.0
		for _, p := range threads {
			res, err := runIMM(cfg, g, imm.Options{K: k, Epsilon: 0.5, Model: model, Workers: p, Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			total := res.Phases.Total().Seconds()
			if base == 0 {
				base = total
			}
			row := phaseRow([]string{name, fmt.Sprintf("%d", p)}, res.Phases)
			row = append(row, fmtF(base/total)+"x", fmtF(res.WorkBalance))
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Fig5 regenerates Figure 5 (LT multithreaded scaling).
func Fig5(cfg Config) (*Table, error) { return scaling(cfg, diffuse.LT, "Figure 5") }

// Fig6 regenerates Figure 6 (IC multithreaded scaling).
func Fig6(cfg Config) (*Table, error) { return scaling(cfg, diffuse.IC, "Figure 6") }

// distScaling runs the rank sweep behind Figures 7 and 8 on an in-process
// cluster (each rank is a goroutine over the local transport).
func distScaling(cfg Config, id string, ranks []int, models []diffuse.Model) (*Table, error) {
	cfg = cfg.withDefaults()
	if cfg.Ranks != nil {
		ranks = cfg.Ranks
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Distributed strong scaling (eps=%.2f, k=%d)", cfg.DistEps, cfg.DistK),
		Note:   fmt.Sprintf("Scale %g; in-process ranks over the local transport, 1 thread per rank.", cfg.Scale),
		Header: append([]string{"Graph", "Model", "Ranks"}, append(phaseHeader, "Speedup", "WorkBalance")...),
	}
	for _, name := range defaultBig {
		if !cfg.wantDataset(name) {
			continue
		}
		gIC, err := loadAnalog(name, cfg)
		if err != nil {
			return nil, err
		}
		for _, model := range models {
			g := gIC
			if model == diffuse.LT {
				g, err = loadAnalog(name, cfg)
				if err != nil {
					return nil, err
				}
				prepModel(g, diffuse.LT)
			}
			k := cfg.DistK
			if k >= g.NumVertices() {
				k = g.NumVertices() / 4
			}
			base := 0.0
			for _, p := range ranks {
				res, balance, err := runDistributed(cfg, g, p, dist.Options{
					K: k, Epsilon: cfg.DistEps, Model: model, Seed: cfg.Seed, ThreadsPerRank: 1,
				})
				if err != nil {
					return nil, err
				}
				total := res.Phases.Total().Seconds()
				if base == 0 {
					base = total // speedup relative to the first configuration
				}
				row := phaseRow([]string{name, model.String(), fmt.Sprintf("%d", p)}, res.Phases)
				row = append(row, fmtF(base/total)+"x", fmtF(balance))
				t.Rows = append(t.Rows, row)
			}
		}
	}
	return t, nil
}

// Fig7 regenerates Figure 7: distributed scaling at Puma-like rank counts.
func Fig7(cfg Config) (*Table, error) {
	return distScaling(cfg, "Figure 7", []int{2, 4, 8, 16}, []diffuse.Model{diffuse.IC, diffuse.LT})
}

// Fig8 regenerates Figure 8: distributed scaling at Edison-like rank
// counts (scaled down: the shape, not the node count, is the target).
func Fig8(cfg Config) (*Table, error) {
	return distScaling(cfg, "Figure 8", []int{4, 8, 16, 32}, []diffuse.Model{diffuse.IC, diffuse.LT})
}

// runDistributed spins an in-process cluster of p ranks and returns rank
// 0's result plus the sampling-work balance across ranks (avg/max local
// work: 1.0 is a perfect partition; it bounds strong-scaling efficiency
// on real hardware). With a report sink configured, the merged RunReport
// — including the per-rank sub-reports — is logged as well.
func runDistributed(cfg Config, g *graph.Graph, p int, opt dist.Options) (*dist.Result, float64, error) {
	comms := mpi.NewLocalCluster(p)
	results := make([]*dist.Result, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			results[rank], errs[rank] = dist.Run(comms[rank], g, opt)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	if cfg.Reports != nil {
		cfg.record(dist.ReportLocal(opt, results))
	}
	work := make([]int64, p)
	for r, res := range results {
		work[r] = res.LocalWork
	}
	balance := metrics.WorkBalanceOf(work)
	if balance == 0 {
		balance = 1.0 // no recorded work: trivially balanced
	}
	return results[0], balance, nil
}

// Table3 regenerates Table 3: end-to-end runtime of the four
// implementations on the two largest graphs, with speedups relative to the
// serial Tang-style baseline. IMM/IMMopt/IMMmt run at eps=0.5, k=100;
// IMMdist runs at the higher accuracy eps=0.13 with k=200, as in the
// paper's headline comparison.
func Table3(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	names := []string{"com-Orkut", "soc-LiveJournal1"}
	t := &Table{
		ID:     "Table 3",
		Title:  "Improvement in runtime relative to IMM",
		Note:   fmt.Sprintf("Scale %g; IMMdist uses %d in-process ranks.", cfg.Scale, distRanksFor(cfg)),
		Header: []string{"Graph", "Implementation", "eps", "k", "Time (s)", "Speedup"},
	}
	for _, name := range names {
		if !cfg.wantDataset(name) {
			continue
		}
		g, err := loadAnalog(name, cfg)
		if err != nil {
			return nil, err
		}
		k := cfg.BaseK
		if k >= g.NumVertices() {
			k = g.NumVertices() / 4
		}
		k2 := cfg.DistK
		if k2 >= g.NumVertices() {
			k2 = g.NumVertices() / 2
		}
		opt := imm.Options{K: k, Epsilon: 0.5, Model: diffuse.IC, Workers: 1, Seed: cfg.Seed}
		base, err := runIMMBaseline(cfg, g, opt)
		if err != nil {
			return nil, err
		}
		baseT := base.Phases.Total().Seconds()
		t.Add(name, "IMM", "0.50", fmt.Sprintf("%d", k), fmtDur(baseT), "1.00x")

		fast, err := runIMM(cfg, g, opt)
		if err != nil {
			return nil, err
		}
		t.Add(name, "IMMopt", "0.50", fmt.Sprintf("%d", k), fmtDur(fast.Phases.Total().Seconds()), fmtF(baseT/fast.Phases.Total().Seconds())+"x")

		opt.Workers = cfg.Workers
		mt, err := runIMM(cfg, g, opt)
		if err != nil {
			return nil, err
		}
		t.Add(name, "IMMmt", "0.50", fmt.Sprintf("%d", k), fmtDur(mt.Phases.Total().Seconds()), fmtF(baseT/mt.Phases.Total().Seconds())+"x")

		dres, _, err := runDistributed(cfg, g, distRanksFor(cfg), dist.Options{
			K: k2, Epsilon: cfg.DistEps, Model: diffuse.IC, Seed: cfg.Seed, ThreadsPerRank: 1,
		})
		if err != nil {
			return nil, err
		}
		t.Add(name, "IMMdist", fmt.Sprintf("%.2f", cfg.DistEps), fmt.Sprintf("%d", k2), fmtDur(dres.Phases.Total().Seconds()), fmtF(baseT/dres.Phases.Total().Seconds())+"x")
	}
	return t, nil
}

// distRanksFor picks the rank count for Table 3's IMMdist row.
func distRanksFor(cfg Config) int {
	p := cfg.Workers
	if p < 2 {
		p = 2
	}
	if p > 8 {
		p = 8
	}
	return p
}
