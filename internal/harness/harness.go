// Package harness regenerates every table and figure of the paper's
// evaluation section on the synthetic SNAP analogs: Table 2 (serial IMM vs
// IMMopt), Table 3 (end-to-end speedups), Figure 1 (quality vs k at two
// accuracies), Figure 2 (theta growth), Figures 3-4 (parameter sweeps with
// phase breakdown), Figures 5-6 (multithreaded strong scaling), Figures
// 7-8 (distributed strong scaling) and the Section 5 biology case study.
//
// Each driver returns a Table that renders to Markdown or CSV; cmd/
// experiments wires them to the command line and EXPERIMENTS.md records
// the measured outputs next to the paper's.
package harness

import (
	"fmt"
	"strings"

	"influmax/internal/metrics"
	"influmax/internal/par"
)

// Config controls the scale of the regenerated experiments.
type Config struct {
	// Scale is the linear dataset scale in (0, 1]; 1 reproduces the full
	// SNAP sizes (hours of compute), the default testing scale is much
	// smaller.
	Scale float64
	// Seed drives all randomness.
	Seed uint64
	// Workers caps thread counts (<= 0: GOMAXPROCS).
	Workers int
	// Datasets filters by name; empty means the driver's default set.
	Datasets []string
	// EpsValues, KValues, Threads and Ranks override the sweep points of
	// the corresponding figures; empty means the paper's values.
	EpsValues []float64
	KValues   []int
	Threads   []int
	Ranks     []int
	// Trials is the Monte Carlo budget for spread evaluation (Figure 1 and
	// the case study).
	Trials int
	// BaseK overrides the k = 100 of Figures 5-6 and Table 3's
	// shared-memory rows (zero keeps the paper's value).
	BaseK int
	// DistEps and DistK override the eps = 0.13 / k = 200 of the
	// distributed experiments, Figures 7-8 and Table 3's IMMdist row
	// (zero keeps the paper's values). Useful to keep scaled-down runs
	// tractable: theta grows ~1/eps^2.
	DistEps float64
	DistK   int
	// Reports, when non-nil, collects one metrics.RunReport per IMM and
	// IMMdist invocation the drivers make, so one experiments run can
	// emit a machine-readable trajectory alongside its tables
	// (cmd/experiments -metrics-json).
	Reports *metrics.ReportLog
}

// record logs a run report when the config carries a sink.
func (c Config) record(rep *metrics.RunReport) {
	if c.Reports != nil {
		c.Reports.Add(rep)
	}
}

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.01
	}
	if c.Workers <= 0 {
		c.Workers = par.DefaultWorkers()
	}
	if c.Trials == 0 {
		c.Trials = 2000
	}
	if c.BaseK == 0 {
		c.BaseK = 100
	}
	if c.DistEps == 0 {
		c.DistEps = 0.13
	}
	if c.DistK == 0 {
		c.DistK = 200
	}
	return c
}

// wantDataset reports whether name passes the config's filter.
func (c Config) wantDataset(name string) bool {
	if len(c.Datasets) == 0 {
		return true
	}
	for _, d := range c.Datasets {
		if d == name {
			return true
		}
	}
	return false
}

// Table is a rendered experiment result.
type Table struct {
	// ID is the paper artifact this regenerates (e.g. "Table 2").
	ID string
	// Title describes the experiment.
	Title string
	// Note records parameters and caveats.
	Note   string
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n\n", t.Note)
	}
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values (naive quoting: cells
// are produced by the harness and contain no commas).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ",") + "\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ",") + "\n")
	}
	return b.String()
}

// fmtDur formats seconds with ms resolution.
func fmtDur(seconds float64) string { return fmt.Sprintf("%.3f", seconds) }

// fmtF formats a float compactly.
func fmtF(x float64) string { return fmt.Sprintf("%.2f", x) }
