package harness

import (
	"strings"
	"testing"
)

// tiny is a configuration small enough for unit tests: minuscule analogs
// and trimmed sweeps.
func tiny() Config {
	return Config{
		Scale:     0.001,
		Seed:      1,
		Workers:   2,
		EpsValues: []float64{0.5},
		KValues:   []int{5, 10},
		Threads:   []int{1, 2},
		Ranks:     []int{1, 2},
		Trials:    200,
		BaseK:     10,
		DistEps:   0.5,
		DistK:     12,
	}
}

func checkTable(t *testing.T, tab *Table, minRows int) {
	t.Helper()
	if tab.ID == "" || tab.Title == "" {
		t.Fatal("table missing identification")
	}
	if len(tab.Rows) < minRows {
		t.Fatalf("%s: only %d rows", tab.ID, len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("%s row %d: %d cells vs %d headers", tab.ID, i, len(row), len(tab.Header))
		}
	}
	md := tab.Markdown()
	if !strings.Contains(md, tab.ID) || !strings.Contains(md, "|") {
		t.Fatalf("%s: markdown malformed", tab.ID)
	}
	csv := tab.CSV()
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != len(tab.Rows)+1 {
		t.Fatalf("%s: csv row count wrong", tab.ID)
	}
}

func TestFig1(t *testing.T) {
	cfg := tiny()
	tab, err := Fig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 2)
}

func TestTable2(t *testing.T) {
	cfg := tiny()
	cfg.Datasets = []string{"cit-HepTh", "soc-Epinions1"}
	tab, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 2)
	// The memory column must show savings (compact < hypergraph).
	for _, row := range tab.Rows {
		savings := row[len(row)-1]
		if strings.HasPrefix(savings, "-") {
			t.Fatalf("negative memory savings: %v", row)
		}
	}
}

func TestFig2(t *testing.T) {
	cfg := tiny()
	tab, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 1)
}

func TestFig3AndFig4(t *testing.T) {
	cfg := tiny()
	cfg.Datasets = []string{"cit-HepTh"}
	tab3, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab3, 1)
	tab4, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab4, 2)
}

func TestFig5AndFig6(t *testing.T) {
	cfg := tiny()
	cfg.Datasets = []string{"cit-HepTh"}
	for _, f := range []func(Config) (*Table, error){Fig5, Fig6} {
		tab, err := f(cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkTable(t, tab, 2)
	}
}

func TestFig7AndFig8(t *testing.T) {
	cfg := tiny()
	cfg.Datasets = []string{"com-YouTube"}
	for _, f := range []func(Config) (*Table, error){Fig7, Fig8} {
		tab, err := f(cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkTable(t, tab, 2)
	}
}

func TestTable3(t *testing.T) {
	cfg := tiny()
	cfg.Datasets = []string{"com-Orkut"}
	tab, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 4)
	// Four implementations per graph, baseline speedup exactly 1.00x.
	if tab.Rows[0][5] != "1.00x" {
		t.Fatalf("baseline speedup = %s", tab.Rows[0][5])
	}
}

func TestBio(t *testing.T) {
	cfg := tiny()
	tab, err := Bio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 6) // 2 networks x 3 methods
	// IMM should recover at least one ground-truth module per network.
	for _, row := range tab.Rows {
		if row[1] == "IMM" && strings.HasPrefix(row[3], "0/") {
			t.Fatalf("IMM recovered no planted modules: %v", row)
		}
	}
}

func TestValidate(t *testing.T) {
	cfg := tiny()
	cfg.Datasets = []string{"cit-HepTh"}
	tab, err := Validate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 5)
	// The per-sample variants must agree with the baseline exactly.
	for _, row := range tab.Rows {
		if strings.Contains(row[1], "per-sample") && row[2] != "1.00" {
			t.Fatalf("per-sample RBO = %s, want 1.00: %v", row[2], row)
		}
	}
}

func TestPartitionedDriver(t *testing.T) {
	cfg := tiny()
	tab, err := Partitioned(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 4) // 2 decompositions x 2 rank counts
}

func TestRunAllStreamsMarkdown(t *testing.T) {
	if testing.Short() {
		t.Skip("full driver sweep in short mode")
	}
	cfg := tiny()
	cfg.Datasets = []string{"cit-HepTh", "com-YouTube", "com-Orkut", "soc-LiveJournal1"}
	var b strings.Builder
	if err := RunAll(cfg, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, id := range []string{"Figure 1", "Table 2", "Figure 8", "Table 3", "Section 5"} {
		if !strings.Contains(out, id) {
			t.Fatalf("RunAll output missing %q", id)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale <= 0 || c.Workers < 1 || c.Trials < 1 {
		t.Fatalf("defaults unresolved: %+v", c)
	}
	if !c.wantDataset("anything") {
		t.Fatal("empty filter must accept all")
	}
	c.Datasets = []string{"a"}
	if c.wantDataset("b") || !c.wantDataset("a") {
		t.Fatal("filter wrong")
	}
}

func TestBaselinesDriver(t *testing.T) {
	cfg := tiny()
	tab, err := Baselines(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 9)
}
