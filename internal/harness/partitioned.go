package harness

import (
	"fmt"
	"sync"

	"influmax/internal/diffuse"
	"influmax/internal/dist"
	"influmax/internal/graph"
	"influmax/internal/mpi"
)

// Partitioned compares the paper's sample-partitioned IMMdist against the
// future-work graph-partitioned variant implemented in this repository:
// per-rank store bytes (the resource the decomposition is about) and
// wall-clock, across rank counts. The sample-partitioned store shrinks as
// theta/p but every rank holds the whole graph; the graph-partitioned
// store shrinks as n/p per sample with only an interval of the graph per
// rank — the regime that matters when neither R nor G fits one node.
func Partitioned(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ranks := cfg.Ranks
	if ranks == nil {
		ranks = []int{1, 2, 4, 8}
	}
	t := &Table{
		ID:    "Extension",
		Title: "Sample-partitioned IMMdist vs graph-partitioned IMM (future work i)",
		Note: fmt.Sprintf("com-YouTube analog at scale %g, IC, eps=%.2f, k=%d; store bytes are per rank (rank 0 shown).",
			cfg.Scale, cfg.DistEps, cfg.DistK/4),
		Header: []string{"Decomposition", "Ranks", "Total (s)", "Rank-0 store (MB)", "Spread"},
	}
	g, err := loadAnalog("com-YouTube", cfg)
	if err != nil {
		return nil, err
	}
	k := cfg.DistK / 4
	if k < 1 {
		k = 1
	}
	if k >= g.NumVertices() {
		k = g.NumVertices() / 4
	}
	for _, p := range ranks {
		res, _, err := runDistributed(cfg, g, p, dist.Options{
			K: k, Epsilon: cfg.DistEps, Model: diffuse.IC, Seed: cfg.Seed, ThreadsPerRank: 1,
		})
		if err != nil {
			return nil, err
		}
		t.Add("sample-partitioned", fmt.Sprintf("%d", p),
			fmtDur(res.Phases.Total().Seconds()),
			fmtF(float64(res.StoreBytes)/(1<<20)),
			fmtF(res.EstimatedSpread))
	}
	for _, p := range ranks {
		res, err := runPartitionedCluster(g, p, dist.PartOptions{
			K: k, Epsilon: cfg.DistEps, Model: diffuse.IC, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		t.Add("graph-partitioned", fmt.Sprintf("%d", p),
			fmtDur(res.Phases.Total().Seconds()),
			fmtF(float64(res.StoreBytes)/(1<<20)),
			fmtF(res.EstimatedSpread))
	}
	return t, nil
}

// runPartitionedCluster spins an in-process cluster for the
// graph-partitioned algorithm and returns rank 0's result.
func runPartitionedCluster(g *graph.Graph, p int, opt dist.PartOptions) (*dist.PartResult, error) {
	comms := mpi.NewLocalCluster(p)
	results := make([]*dist.PartResult, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			results[rank], errs[rank] = dist.RunPartitioned(comms[rank], g, opt)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results[0], nil
}
