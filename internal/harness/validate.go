package harness

import (
	"fmt"

	"influmax/internal/diffuse"
	"influmax/internal/imm"
	"influmax/internal/stats"
)

// Validate reproduces the paper's implementation-validation methodology
// (Section 4, "Sequential Baseline Construction"): the seed rankings of
// the baseline IMM and the optimized/parallel implementations are compared
// by rank-biased overlap, and their spread estimates by forward Monte
// Carlo. The paper "observed high rank-biased overlaps of the two outputs"
// with "minor differences due to different pseudorandom number generation
// schemes"; here the per-sample RNG mode makes baseline vs IMMopt vs IMMmt
// identical (RBO = 1), while the leap-frog mode reproduces the paper's
// near-but-not-exactly-one behaviour.
func Validate(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "Validation",
		Title: "Rank-biased overlap and spread agreement across implementations",
		Note: "RBO (p=0.9) of seed rankings vs the sequential baseline; spreads by " +
			fmt.Sprintf("%d Monte Carlo cascades. Paper: high RBO with minor PRNG-induced differences.", cfg.Trials),
		Header: []string{"Graph", "Variant", "RBO vs baseline", "Spread", "Spread ratio"},
	}
	names := []string{"cit-HepTh", "soc-Epinions1"}
	k := cfg.BaseK / 2
	if k < 1 {
		k = 10
	}
	for _, name := range names {
		if !cfg.wantDataset(name) {
			continue
		}
		g, err := loadAnalog(name, cfg)
		if err != nil {
			return nil, err
		}
		kk := k
		if kk >= g.NumVertices() {
			kk = g.NumVertices() / 4
		}
		opt := imm.Options{K: kk, Epsilon: 0.5, Model: diffuse.IC, Workers: 1, Seed: cfg.Seed}
		base, err := imm.RunBaseline(g, opt)
		if err != nil {
			return nil, err
		}
		baseSpread, _ := diffuse.EstimateSpread(g, diffuse.IC, base.Seeds, cfg.Trials, cfg.Workers, cfg.Seed^0x11)

		variants := []struct {
			name string
			opt  imm.Options
		}{
			{"IMMopt (per-sample)", imm.Options{K: kk, Epsilon: 0.5, Model: diffuse.IC, Workers: 1, Seed: cfg.Seed}},
			{"IMMmt (per-sample)", imm.Options{K: kk, Epsilon: 0.5, Model: diffuse.IC, Workers: cfg.Workers, Seed: cfg.Seed}},
			{"IMMmt (leap-frog)", imm.Options{K: kk, Epsilon: 0.5, Model: diffuse.IC, Workers: cfg.Workers, Seed: cfg.Seed, RNG: imm.LeapFrog}},
			{"IMMopt (other seed)", imm.Options{K: kk, Epsilon: 0.5, Model: diffuse.IC, Workers: 1, Seed: cfg.Seed ^ 0xdead}},
		}
		t.Add(name, "IMM baseline", "1.00", fmtF(baseSpread), "1.00")
		for _, v := range variants {
			res, err := imm.Run(g, v.opt)
			if err != nil {
				return nil, err
			}
			rbo := stats.RBO(base.Seeds, res.Seeds, 0.9)
			spread, _ := diffuse.EstimateSpread(g, diffuse.IC, res.Seeds, cfg.Trials, cfg.Workers, cfg.Seed^0x11)
			t.Add(name, v.name, fmtF(rbo), fmtF(spread), fmtF(spread/baseSpread))
		}
	}
	return t, nil
}
