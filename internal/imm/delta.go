package imm

import (
	"errors"
	"fmt"
	"slices"

	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/metrics"
	"influmax/internal/par"
	"influmax/internal/rng"
	"influmax/internal/rrr"
)

// Incremental RRR maintenance over dynamic graphs (DESIGN.md §15).
//
// The invariant that makes cheap maintenance possible is a property of the
// reverse sampling kernels: a reverse traversal examines the in-edges of a
// vertex v only while visiting v, so a sample that does not contain v
// never drew a coin on any edge into v. A delta op targeting v therefore
// affects exactly the samples whose membership includes v — located in
// O(degree) through the inverted incidence index — and every other sample
// remains a valid draw from the mutated graph's distribution untouched.
//
// Affected samples are repaired two ways:
//
//   - Invalidation. If the op deletes an edge, or changes the coin
//     distribution of v's whole in-list (weighted-cascade policy, where
//     1/indeg(v) moves for every in-edge, or the LT model, where the
//     single-edge selection at v is a function of all in-weights), the
//     sample is regenerated from scratch on the mutated graph with its
//     original per-sample stream: Reseed(seed, id) reproduces the root
//     draw, so the result is byte-identical to what a cold build at the
//     same theta would produce for that id.
//
//   - Extension. An IC-model insertion under explicit weights leaves every
//     existing coin's distribution intact — the new edge only adds one
//     more coin. The sample is extended in place: flip the new edge's coin
//     from a fresh per-(sample, epoch) stream and, on success, continue
//     the reverse BFS from the inserted source over vertices not yet in
//     the sample.
//
// Both repairs are pure functions of (sample id, epoch), so maintenance is
// deterministic across worker counts and schedules, exactly like PerSample
// cold sampling.

// WeightPolicy declares how edge weights behave under deltas, which
// decides whether insertions can extend samples or must invalidate them.
type WeightPolicy uint8

const (
	// WeightsExplicit: every delta op carries its own weight and existing
	// weights never move. IC insertions extend affected samples in place.
	WeightsExplicit WeightPolicy = iota
	// WeightsWC: weights are re-derived as w(u,v) = 1/indeg(v) after every
	// batch (the weighted-cascade scheme), so any op at v reshapes all of
	// v's in-coins and every affected sample is invalidated.
	WeightsWC
)

// String names the policy, matching the immserve -weight-policy values.
func (p WeightPolicy) String() string {
	switch p {
	case WeightsExplicit:
		return "explicit"
	case WeightsWC:
		return "wc"
	}
	return fmt.Sprintf("WeightPolicy(%d)", uint8(p))
}

// ParseWeightPolicy parses the -weight-policy flag values.
func ParseWeightPolicy(s string) (WeightPolicy, error) {
	switch s {
	case "explicit":
		return WeightsExplicit, nil
	case "wc":
		return WeightsWC, nil
	}
	return 0, fmt.Errorf("imm: unknown weight policy %q (want explicit or wc)", s)
}

// DeltaStats accumulates maintenance telemetry across a sketch's lifetime;
// the three rrr/ counters mirror it into the metrics registry.
type DeltaStats struct {
	// DeltasApplied is the total number of edge ops applied.
	DeltasApplied int64
	// Batches is the number of ApplyDelta calls that mutated the sketch.
	Batches int64
	// SamplesInvalidated is the number of samples regenerated from scratch.
	SamplesInvalidated int64
	// SamplesExtended is the number of samples extended in place.
	SamplesExtended int64
}

// BatchResult reports one ApplyDelta call.
type BatchResult struct {
	// Epoch is the sketch epoch after the batch (one per applied batch).
	Epoch uint64
	// Ops is the number of edge ops in the batch.
	Ops int
	// Candidates is the number of samples whose membership included an op
	// target (the repair working set).
	Candidates int
	// SamplesInvalidated and SamplesExtended are this batch's repairs.
	SamplesInvalidated int64
	// SamplesExtended is the number of samples extended in place.
	SamplesExtended int64
}

// DynamicSketch is a resident RRR sketch that tracks a mutating graph:
// ApplyDelta folds a batch of edge ops into the graph and repairs exactly
// the affected samples, keeping theta pinned at its build-time value (the
// bounded-staleness contract — see DESIGN.md §15 for when to rebuild).
// Methods are not concurrency-safe; the serving layer serializes
// ApplyDelta and snapshots immutable views for queries.
type DynamicSketch struct {
	g      *graph.Graph
	opt    Options
	policy WeightPolicy

	col   *rrr.Collection
	idx   *rrr.Index
	theta int64
	lower float64

	epoch uint64
	log   []graph.Delta
	stats DeltaStats

	mApplied, mInvalidated, mExtended *metrics.Counter
}

// NewDynamicSketch builds the initial sketch over g with a full IMM run
// (flat store; maintenance needs the mutable arena). opt.RNG must be
// PerSample — the per-sample stream discipline is what regeneration
// replays — and LeapFrog mode is rejected.
func NewDynamicSketch(g *graph.Graph, opt Options, policy WeightPolicy) (*DynamicSketch, *Result, error) {
	opt = opt.withDefaults()
	if opt.RNG != PerSample {
		return nil, nil, errors.New("imm: dynamic sketches require the per-sample RNG mode")
	}
	if policy > WeightsWC {
		return nil, nil, fmt.Errorf("imm: unknown weight policy %d", uint8(policy))
	}
	res, col, idx, err := RunCollect(g, opt)
	if err != nil {
		return nil, nil, err
	}
	s := &DynamicSketch{
		g: g, opt: opt, policy: policy,
		col: col, idx: idx,
		theta: res.Theta, lower: res.LowerBound,
	}
	s.bindMetrics()
	return s, res, nil
}

// RestoreDynamicSketch rebuilds a dynamic sketch from persisted state: the
// base graph (weights as originally assigned), the post-delta sample
// collection, the pinned theta and the delta log. The log is replayed
// batch-by-batch — weight re-derivation (weighted cascade, LT
// normalization) is per-batch, so replaying one concatenated batch would
// not reproduce the live weights. Repair counters restart at zero; epoch
// resumes at the batch count so extension streams keep advancing.
func RestoreDynamicSketch(base *graph.Graph, opt Options, policy WeightPolicy,
	col *rrr.Collection, theta int64, log []graph.Delta) (*DynamicSketch, error) {
	opt = opt.withDefaults()
	if opt.RNG != PerSample {
		return nil, errors.New("imm: dynamic sketches require the per-sample RNG mode")
	}
	if col.NumVertices() != base.NumVertices() {
		return nil, fmt.Errorf("imm: collection over %d vertices, graph has %d",
			col.NumVertices(), base.NumVertices())
	}
	g := base
	for i, d := range log {
		ov := graph.NewOverlay(g)
		if err := ov.Apply(d); err != nil {
			return nil, fmt.Errorf("imm: delta log batch %d: %w", i, err)
		}
		g = ov.Compact()
		reweight(g, opt, policy)
	}
	s := &DynamicSketch{
		g: g, opt: opt, policy: policy,
		col: col, idx: rrr.BuildIndex(col, opt.Workers),
		theta: theta,
		epoch: uint64(len(log)),
		log:   append([]graph.Delta(nil), log...),
	}
	s.stats.Batches = int64(len(log))
	for _, d := range log {
		s.stats.DeltasApplied += int64(len(d))
	}
	s.bindMetrics()
	return s, nil
}

func (s *DynamicSketch) bindMetrics() {
	if s.opt.Metrics == nil {
		return
	}
	s.mApplied = s.opt.Metrics.Counter("rrr/deltas-applied")
	s.mInvalidated = s.opt.Metrics.Counter("rrr/samples-invalidated")
	s.mExtended = s.opt.Metrics.Counter("rrr/samples-extended")
}

// reweight re-derives scheme-dependent weights on a freshly compacted
// graph: the weighted-cascade policy recomputes 1/indeg, and the LT model
// re-normalizes any vertex whose in-weights now sum past 1.
func reweight(g *graph.Graph, opt Options, policy WeightPolicy) {
	if policy == WeightsWC {
		g.AssignWeightedCascade()
	}
	if opt.Model == diffuse.LT {
		g.NormalizeLT()
	}
}

// Graph returns the current (post-delta) graph. Immutable by convention.
func (s *DynamicSketch) Graph() *graph.Graph { return s.g }

// Collection returns the maintained sample collection. Immutable by
// convention: ApplyDelta replaces it rather than mutating in place, so a
// caller holding the old pointer keeps a consistent pre-batch view.
func (s *DynamicSketch) Collection() *rrr.Collection { return s.col }

// Index returns the incidence index over Collection. Same immutability
// convention.
func (s *DynamicSketch) Index() *rrr.Index { return s.idx }

// Theta returns the pinned sample count from the initial build.
func (s *DynamicSketch) Theta() int64 { return s.theta }

// LowerBound returns the initial build's martingale lower bound (zero for
// restored sketches).
func (s *DynamicSketch) LowerBound() float64 { return s.lower }

// Epoch returns the number of delta batches folded in so far.
func (s *DynamicSketch) Epoch() uint64 { return s.epoch }

// Stats returns cumulative maintenance telemetry.
func (s *DynamicSketch) Stats() DeltaStats { return s.stats }

// Options returns the resolved build options.
func (s *DynamicSketch) Options() Options { return s.opt }

// Policy returns the weight policy.
func (s *DynamicSketch) Policy() WeightPolicy { return s.policy }

// Log returns the applied delta batches in order (aliases internal
// storage; treat as read-only). Persisted into the v3 snapshot so warm
// restarts replay it.
func (s *DynamicSketch) Log() []graph.Delta { return s.log }

// Query runs the indexed greedy over the maintained sketch, returning the
// seed set and the number of samples it covers.
func (s *DynamicSketch) Query(k, workers int) ([]graph.Vertex, int64) {
	if workers <= 0 {
		workers = s.opt.Workers
	}
	return SelectSeedsIndexed(s.col, s.idx, k, workers)
}

// extensionSeed derives the seed of the per-sample extension streams for
// one epoch: independent of the build streams (which Reseed(opt.Seed, id)
// replays) and of every other epoch's extensions.
func extensionSeed(seed, epoch uint64) uint64 {
	return rng.Mix64(seed ^ rng.Mix64(epoch+0x9E3779B97F4A7C15))
}

// deltaWorker is one repair worker's scratch, rebuilt per batch (the
// sampler binds the new graph).
type deltaWorker struct {
	g       *graph.Graph // the post-batch compacted graph
	sampler *diffuse.Sampler
	gen     *rng.SplitMix64
	stream  *rng.Rand

	member []uint32 // epoch-stamped membership of the sample being repaired
	stamp  uint32
	queue  []graph.Vertex
	buf    []graph.Vertex
	exam   []bool // per batch-op: coin already drawn during an extension BFS
}

func (w *deltaWorker) nextStamp() {
	w.stamp++
	if w.stamp == 0 {
		clear(w.member)
		w.stamp = 1
	}
}

// ApplyDelta folds one batch of edge ops into the sketch: mutate the graph
// (overlay + compact + reweight), repair exactly the samples whose
// membership includes an op target, rebuild the incidence index, and
// append the batch to the replay log. On a validation error the sketch is
// unchanged and the error is a *graph.DeltaError identifying the op.
// An empty batch is a no-op.
func (s *DynamicSketch) ApplyDelta(d graph.Delta) (BatchResult, error) {
	if len(d) == 0 {
		return BatchResult{Epoch: s.epoch}, nil
	}
	ov := graph.NewOverlay(s.g)
	if err := ov.Apply(d); err != nil {
		return BatchResult{}, err
	}
	ng := ov.Compact()
	reweight(ng, s.opt, s.policy)

	// An op invalidates affected samples unless it is an IC insertion
	// under explicit weights (the only case where existing coins keep
	// their distribution and the sample can be extended instead).
	invalidateAll := s.policy == WeightsWC || s.opt.Model == diffuse.LT
	invalidates := func(op graph.DeltaOp) bool {
		return invalidateAll || op.Kind == graph.DeltaDelete
	}

	// The repair working set: samples whose pre-batch membership includes
	// any op target. Mid-batch extensions can only add an op target to a
	// sample that already contained an earlier op's target, so the
	// pre-batch union is complete.
	var cands []int32
	for _, op := range d {
		cands = append(cands, s.idx.SamplesOf(op.Dst)...)
	}
	slices.Sort(cands)
	cands = slices.Compact(cands)

	res := BatchResult{Ops: len(d), Candidates: len(cands)}
	if len(cands) > 0 {
		res.SamplesInvalidated, res.SamplesExtended = s.repair(ng, ov, d, cands, invalidates)
	}

	s.g = ng
	s.epoch++
	s.log = append(s.log, append(graph.Delta(nil), d...))
	res.Epoch = s.epoch
	s.stats.DeltasApplied += int64(len(d))
	s.stats.Batches++
	s.stats.SamplesInvalidated += res.SamplesInvalidated
	s.stats.SamplesExtended += res.SamplesExtended
	if s.mApplied != nil {
		s.mApplied.Add(int64(len(d)))
		s.mInvalidated.Add(res.SamplesInvalidated)
		s.mExtended.Add(res.SamplesExtended)
	}
	return res, nil
}

// repair re-derives every candidate sample against the mutated graph ng
// and swaps the repaired collection + index in. Each candidate is an
// independent pure function of its id, so the loop parallelizes over
// contiguous candidate ranges with no cross-worker state; the stitched
// collection is identical at any worker count.
func (s *DynamicSketch) repair(ng *graph.Graph, ov *graph.Overlay, d graph.Delta,
	cands []int32, invalidates func(graph.DeltaOp) bool) (invalidated, extended int64) {
	n := s.g.NumVertices()
	extSeed := extensionSeed(s.opt.Seed, s.epoch)

	// Tail in-slots of the compacted graph hold the batch's inserted
	// edges; slot -> op index lets an extension BFS mark coins it already
	// drew so the sequential op loop does not draw them again.
	appendedOps := make(map[graph.Vertex][]int32)
	for _, op := range d {
		if _, ok := appendedOps[op.Dst]; !ok {
			appendedOps[op.Dst] = ov.AppendedInOps(op.Dst)
		}
	}

	p := s.opt.Workers
	if p > len(cands) {
		p = len(cands)
	}
	// replaced[ci] == nil keeps the old sample; workers own disjoint ci
	// ranges, so the slice needs no synchronization. A regenerated or
	// extended empty sample cannot occur (the root is always a member).
	replaced := make([][]graph.Vertex, len(cands))
	invPer := make([]int64, p)
	extPer := make([]int64, p)

	par.ForEach(len(cands), p, func(rank, lo, hi int) {
		w := &deltaWorker{
			g:       ng,
			sampler: diffuse.NewSampler(ng, s.opt.Model),
			gen:     rng.NewSplitMix64(0),
			member:  make([]uint32, n),
			exam:    make([]bool, len(d)),
		}
		w.stream = rng.New(w.gen)
		for ci := lo; ci < hi; ci++ {
			id := int(cands[ci])
			out, inv, ext := s.repairOne(w, ng, d, appendedOps, extSeed, id, invalidates)
			if out != nil {
				replaced[ci] = out
			}
			if inv {
				invPer[rank]++
			}
			if ext {
				extPer[rank]++
			}
		}
	})
	for rank := 0; rank < p; rank++ {
		invalidated += invPer[rank]
		extended += extPer[rank]
	}

	ncol := rrr.NewCollection(n)
	ncol.Reserve(s.col.Count(), s.col.TotalSize())
	changed := make([]int32, 0, len(cands))
	ci := 0
	for id := 0; id < s.col.Count(); id++ {
		if ci < len(cands) && int(cands[ci]) == id {
			if r := replaced[ci]; r != nil {
				ncol.Append(r)
				changed = append(changed, cands[ci])
			} else {
				ncol.Append(s.col.Sample(id))
			}
			ci++
			continue
		}
		ncol.Append(s.col.Sample(id))
	}
	// Patch the incidence index instead of rebuilding: only the changed
	// samples' memberships moved, and a full rebuild's fixed navigation
	// cost (every worker walks all theta samples twice) would dwarf the
	// actual repair work of a small batch.
	s.idx = rrr.PatchIndex(s.idx, s.col, ncol, changed, s.opt.Workers)
	s.col = ncol
	return invalidated, extended
}

// repairOne walks the batch ops in order against one sample's evolving
// membership and returns the repaired vertex list (nil if untouched).
// Invalidation wins immediately: the sample is regenerated with its
// original stream on the mutated graph, byte-identical to a cold build's
// sample id. Extensions accumulate: each unexamined IC insertion whose
// target is a current member draws one coin from the sample's epoch
// stream and, on success, reverse-BFSes from the inserted source across
// vertices not yet in the sample.
func (s *DynamicSketch) repairOne(w *deltaWorker, ng *graph.Graph, d graph.Delta,
	appendedOps map[graph.Vertex][]int32, extSeed uint64, id int,
	invalidates func(graph.DeltaOp) bool) (out []graph.Vertex, invalidated, extended bool) {
	members := s.col.Sample(id)
	w.nextStamp()
	for _, v := range members {
		w.member[v] = w.stamp
	}
	w.buf = w.buf[:0]
	clear(w.exam) // the invalidation path below returns before any reset
	streamReady := false

	for t, op := range d {
		if w.member[op.Dst] != w.stamp {
			continue
		}
		if invalidates(op) {
			w.gen.Reseed(s.opt.Seed, uint64(id))
			root := graph.Vertex(w.stream.Intn(ng.NumVertices()))
			w.buf = w.sampler.GenerateRR(w.stream, root, w.buf[:0])
			return append([]graph.Vertex(nil), w.buf...), true, false
		}
		if w.exam[t] {
			continue
		}
		w.exam[t] = true
		if w.member[op.Src] == w.stamp {
			// The edge connects two members: a cold traversal would have
			// skipped it via the visited check before drawing a coin.
			continue
		}
		if !streamReady {
			w.gen.Reseed(extSeed, uint64(id))
			streamReady = true
		}
		if w.stream.Float32() < op.W {
			w.extend(appendedOps, op.Src)
			extended = true
		}
	}
	if !extended {
		return nil, false, false
	}
	out = make([]graph.Vertex, 0, len(members)+len(w.buf))
	out = append(out, members...)
	out = append(out, w.buf...)
	slices.Sort(out)
	return out, false, true
}

// extend grows the current sample by reverse BFS from src (which just
// joined through an activated insertion): newly added vertices have never
// been visited by this sample, so every one of their in-edges draws a
// fresh coin — except edges from existing members, which a cold traversal
// skips before the coin, and other batch insertions, whose coins are
// marked examined so the op loop does not draw them twice.
func (w *deltaWorker) extend(appendedOps map[graph.Vertex][]int32, src graph.Vertex) {
	w.member[src] = w.stamp
	w.buf = append(w.buf, src)
	w.queue = append(w.queue[:0], src)
	for head := 0; head < len(w.queue); head++ {
		x := w.queue[head]
		srcs, ws := w.g.InNeighbors(x)
		ops := appendedOps[x]
		base := len(srcs) - len(ops)
		for i, u := range srcs {
			if i >= base {
				// A batch-inserted edge: this BFS is its one coin draw.
				w.exam[ops[i-base]] = true
			}
			if w.member[u] == w.stamp {
				continue
			}
			if w.stream.Float32() < ws[i] {
				w.member[u] = w.stamp
				w.queue = append(w.queue, u)
				w.buf = append(w.buf, u)
			}
		}
	}
}
