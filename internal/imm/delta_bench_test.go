package imm

import (
	"slices"
	"testing"

	"influmax/internal/diffuse"
	"influmax/internal/gen"
	"influmax/internal/graph"
)

// deltaBenchOptions is the shared configuration of the delta benchmarks:
// the same soc-LiveJournal1 analog and sketch sizing the serving
// benchmarks use, so "one delta batch" and "one cold rebuild" are costed
// against the same resident sketch.
func deltaBenchOptions() Options {
	return Options{K: 50, Epsilon: 0.5, Model: diffuse.IC, Workers: 8, Seed: 7}
}

// freshEdges returns k directed edges absent from g, scanning vertex
// pairs deterministically from the middle of the id range — in the RMAT
// analogs low ids are the hubs, so this yields TYPICAL edges (endpoints
// of around-median degree), which is what the per-delta price should
// reflect; the hub-targeting adversarial case is costed by the harness,
// not the benchmark. The edges never trip the overlay's
// edge-already-exists validation. The carried weight is irrelevant under
// the weighted-cascade policy (reweighting overrides it) but must still
// pass op validation.
func freshEdges(tb testing.TB, g *graph.Graph, k int) []graph.DeltaOp {
	tb.Helper()
	var ops []graph.DeltaOp
	n := graph.Vertex(g.NumVertices())
	for u := n / 2; u < n && len(ops) < k; u++ {
		dsts, _ := g.OutNeighbors(u)
		for v := n / 2; v < n && len(ops) < k; v++ {
			if u != v && !slices.Contains(dsts, v) {
				ops = append(ops, graph.DeltaOp{Kind: graph.DeltaInsert, Src: u, Dst: v, W: 0.06})
			}
		}
	}
	if len(ops) < k {
		tb.Fatalf("found %d absent edges, want %d", len(ops), k)
	}
	return ops
}

// BenchmarkApplyDelta prices incremental maintenance against the
// alternative it replaces: "delta" is one single-op batch folded into a
// resident dynamic sketch (insert on even iterations, delete of the same
// edge on odd — the graph stays bounded), "cold-rebuild" is the full IMM
// estimation + sampling + index run a static server would need after any
// mutation. Both use the weighted-cascade weighting the paper's IC
// experiments run under, with the matching WeightsWC policy — the
// worst-case repair regime, where every affected sample is invalidated
// and regenerated rather than extended. The ratio is the amortization
// argument of DESIGN.md §15 and is pinned by TestDeltaAmortizationGate;
// both numbers ride the CI bench-gate baselines.
func BenchmarkApplyDelta(b *testing.B) {
	opt := deltaBenchOptions()
	b.Run("delta", func(b *testing.B) {
		g := benchGraph(b, func(g *graph.Graph) { g.AssignWeightedCascade() })
		dyn, _, err := NewDynamicSketch(g, opt, WeightsWC)
		if err != nil {
			b.Fatal(err)
		}
		edges := freshEdges(b, g, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op := edges[0]
			if i%2 == 1 {
				op = graph.DeltaOp{Kind: graph.DeltaDelete, Src: op.Src, Dst: op.Dst}
			}
			if _, err := dyn.ApplyDelta(graph.Delta{op}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := dyn.Stats()
		if st.Batches > 0 {
			b.ReportMetric(float64(st.SamplesInvalidated+st.SamplesExtended)/float64(st.Batches), "repairs/batch")
		}
	})
	b.Run("cold-rebuild", func(b *testing.B) {
		g := benchGraph(b, func(g *graph.Graph) { g.AssignWeightedCascade() })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := RunCollect(g, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestDeltaAmortizationGate is the issue's acceptance bar: on the
// soc-LiveJournal1 analog under weighted-cascade weights, folding one
// delta batch into a resident sketch must cost at most 1/20 of the cold
// rebuild it replaces. On the reference machine the measured ratio is
// well above the floor (a single-op batch regenerates a handful of
// samples and patches the index, while the cold path re-runs estimation
// and samples every RRR set from scratch); the 20x floor just catches
// maintenance degenerating into rebuild-per-batch. Best-of-N wall clock,
// skipped in -short mode like the fused-kernel gate; the CI bench-gate
// job is the fine-grained tripwire.
func TestDeltaAmortizationGate(t *testing.T) {
	if testing.Short() {
		t.Skip("amortization gate needs full-size sampling runs")
	}
	d, err := gen.ByName("soc-LiveJournal1")
	if err != nil {
		t.Fatal(err)
	}
	g := d.Generate(0.002, 1)
	g.AssignWeightedCascade()
	opt := deltaBenchOptions()

	dyn, _, err := NewDynamicSketch(g, opt, WeightsWC)
	if err != nil {
		t.Fatal(err)
	}
	edges := freshEdges(t, g, 1)
	const batches = 6
	const trials = 3

	// Per-delta cost: best average over trials of an insert/delete cycle.
	deltaSec := 0.0
	for tr := 0; tr < trials; tr++ {
		sec := stopwatch(func() {
			for i := 0; i < batches; i++ {
				op := edges[0]
				if i%2 == 1 {
					op = graph.DeltaOp{Kind: graph.DeltaDelete, Src: op.Src, Dst: op.Dst}
				}
				if _, err := dyn.ApplyDelta(graph.Delta{op}); err != nil {
					t.Fatal(err)
				}
			}
		}) / batches
		if deltaSec == 0 || sec < deltaSec {
			deltaSec = sec
		}
	}

	coldSec := 0.0
	for tr := 0; tr < trials; tr++ {
		sec := stopwatch(func() {
			if _, _, _, err := RunCollect(dyn.Graph(), opt); err != nil {
				t.Fatal(err)
			}
		})
		if coldSec == 0 || sec < coldSec {
			coldSec = sec
		}
	}

	ratio := coldSec / deltaSec
	t.Logf("per-delta %.4fs, cold rebuild %.4fs, ratio %.1fx", deltaSec, coldSec, ratio)
	if ratio < 20 {
		t.Fatalf("per-delta cost %.4fs is not <= 1/20 of the %.4fs cold rebuild (ratio %.1fx)",
			deltaSec, coldSec, ratio)
	}
}
