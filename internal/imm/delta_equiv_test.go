package imm

import (
	"testing"

	"influmax/internal/diffuse"
	"influmax/internal/gen"
	"influmax/internal/graph"
	"influmax/internal/rng"
	"influmax/internal/rrr"
)

// The differential consistency harness: after any delta sequence, the
// maintained sketch must agree with a cold rebuild on the mutated graph —
// byte-identically where the theory promises identity (invalidation-only
// repairs), within the approximation guarantee where it promises
// distribution (insertion extensions) — across models, weight policies,
// stores and worker counts.

// deltaConfig is one (model, weight scheme, policy) point of the harness
// matrix.
type deltaConfig struct {
	name   string
	model  diffuse.Model
	policy WeightPolicy
	weight func(*graph.Graph)
}

func deltaConfigs() []deltaConfig {
	return []deltaConfig{
		{"IC-explicit", diffuse.IC, WeightsExplicit, func(g *graph.Graph) { g.AssignConstant(0.25) }},
		{"IC-wc", diffuse.IC, WeightsWC, func(g *graph.Graph) { g.AssignWeightedCascade() }},
		{"LT-wc", diffuse.LT, WeightsWC, func(g *graph.Graph) {
			g.AssignWeightedCascade()
			g.NormalizeLT()
		}},
	}
}

// deltaGraph is one fixed-seed harness graph.
type deltaGraph struct {
	name  string
	build func() *graph.Graph
}

func deltaGraphs() []deltaGraph {
	return []deltaGraph{
		{"erdos-renyi", func() *graph.Graph { return gen.ErdosRenyi(300, 1500, 1) }},
		{"barabasi-albert", func() *graph.Graph { return gen.BarabasiAlbert(400, 3, 2) }},
		{"watts-strogatz", func() *graph.Graph { return gen.WattsStrogatz(200, 6, 0.1, 3) }},
	}
}

// edgeSet tracks the live edge multiset of a mutating graph so the script
// generator only emits valid ops.
type edgeSet struct {
	count map[[2]graph.Vertex]int
	live  [][2]graph.Vertex
}

func newEdgeSet(g *graph.Graph) *edgeSet {
	es := &edgeSet{count: make(map[[2]graph.Vertex]int)}
	for v := 0; v < g.NumVertices(); v++ {
		dsts, _ := g.OutNeighbors(graph.Vertex(v))
		for _, d := range dsts {
			es.add(graph.Vertex(v), d)
		}
	}
	return es
}

func (es *edgeSet) add(u, v graph.Vertex) {
	es.count[[2]graph.Vertex{u, v}]++
	es.live = append(es.live, [2]graph.Vertex{u, v})
}

func (es *edgeSet) remove(i int) {
	e := es.live[i]
	es.count[e]--
	es.live[i] = es.live[len(es.live)-1]
	es.live = es.live[:len(es.live)-1]
}

func (es *edgeSet) has(u, v graph.Vertex) bool {
	return es.count[[2]graph.Vertex{u, v}] > 0
}

// randomScript generates batches of valid delta ops against g. kind is
// "insert", "delete" or "mixed"; every script also aims a couple of
// adversarial ops at the maximum-in-degree hub, whose incidence list is
// the worst case for the invalidation rule.
func randomScript(g *graph.Graph, kind string, seed uint64, batches, opsPer int) []graph.Delta {
	r := rng.New(rng.NewLCG(rng.Mix64(seed)))
	es := newEdgeSet(g)
	n := g.NumVertices()
	hub := graph.Vertex(0)
	for v := 1; v < n; v++ {
		if g.InDegree(graph.Vertex(v)) > g.InDegree(hub) {
			hub = graph.Vertex(v)
		}
	}
	insert := func(u, v graph.Vertex) (graph.DeltaOp, bool) {
		if es.has(u, v) {
			return graph.DeltaOp{}, false
		}
		es.add(u, v)
		return graph.DeltaOp{Kind: graph.DeltaInsert, Src: u, Dst: v, W: 0.05 + 0.5*r.Float32()}, true
	}
	var script []graph.Delta
	for b := 0; b < batches; b++ {
		var d graph.Delta
		for o := 0; o < opsPer; o++ {
			del := kind == "delete" || (kind == "mixed" && r.Intn(2) == 0)
			if del && len(es.live) > 0 {
				i := r.Intn(len(es.live))
				e := es.live[i]
				es.remove(i)
				d = append(d, graph.DeltaOp{Kind: graph.DeltaDelete, Src: e[0], Dst: e[1]})
			} else if kind != "delete" {
				u, v := graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n))
				if o == 0 { // adversarial hub edge each batch
					v = hub
				}
				if op, ok := insert(u, v); ok {
					d = append(d, op)
				}
			}
		}
		if len(d) > 0 {
			script = append(script, d)
		}
	}
	return script
}

func buildDynamic(t testing.TB, g *graph.Graph, cfg deltaConfig, workers int) *DynamicSketch {
	t.Helper()
	cfg.weight(g)
	opt := Options{K: 5, Epsilon: 0.4, Model: cfg.model, Workers: workers, Seed: 11}
	dyn, _, err := NewDynamicSketch(g, opt, cfg.policy)
	if err != nil {
		t.Fatalf("NewDynamicSketch: %v", err)
	}
	return dyn
}

func applyScript(t testing.TB, dyn *DynamicSketch, script []graph.Delta) {
	t.Helper()
	for i, d := range script {
		if _, err := dyn.ApplyDelta(d); err != nil {
			t.Fatalf("ApplyDelta batch %d: %v", i, err)
		}
	}
}

func sameCollections(t *testing.T, ctx string, a, b *rrr.Collection) {
	t.Helper()
	if a.Count() != b.Count() {
		t.Fatalf("%s: %d vs %d samples", ctx, a.Count(), b.Count())
	}
	for i := 0; i < a.Count(); i++ {
		sa, sb := a.Sample(i), b.Sample(i)
		if len(sa) != len(sb) {
			t.Fatalf("%s: sample %d has %d vs %d members", ctx, i, len(sa), len(sb))
		}
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("%s: sample %d differs at slot %d: %d vs %d", ctx, i, j, sa[j], sb[j])
			}
		}
	}
}

// coldResample regenerates every sample id of the maintained collection
// directly on g with the scalar kernel and the original per-sample
// streams — the reference a correct maintenance pass must reproduce
// byte-for-byte whenever every repair was an invalidation.
func coldResample(g *graph.Graph, model diffuse.Model, seed uint64, count int) *rrr.Collection {
	col := rrr.NewCollection(g.NumVertices())
	sampler := diffuse.NewSampler(g, model)
	genr := rng.NewSplitMix64(0)
	stream := rng.New(genr)
	var buf []graph.Vertex
	for id := 0; id < count; id++ {
		genr.Reseed(seed, uint64(id))
		root := graph.Vertex(stream.Intn(g.NumVertices()))
		buf = sampler.GenerateRR(stream, root, buf[:0])
		col.Append(buf)
	}
	return col
}

// TestDeltaByteIdentityOracle pins the invalidation rule itself: when
// every op invalidates (WC policy, LT model, or delete-only scripts under
// explicit weights), the maintained collection after a delta script must
// be byte-identical to regenerating all of its sample ids cold on the
// mutated graph — including the samples maintenance never touched, which
// is exactly the claim that a sample not containing the op target never
// drew a coin on the mutated in-list.
func TestDeltaByteIdentityOracle(t *testing.T) {
	for _, gd := range deltaGraphs() {
		for _, cfg := range deltaConfigs() {
			kinds := []string{"insert", "delete", "mixed"}
			if cfg.policy == WeightsExplicit && cfg.model == diffuse.IC {
				// Insertions extend rather than invalidate: byte identity
				// only holds for pure deletion scripts here.
				kinds = []string{"delete"}
			}
			for _, kind := range kinds {
				t.Run(gd.name+"/"+cfg.name+"/"+kind, func(t *testing.T) {
					g := gd.build()
					dyn := buildDynamic(t, g, cfg, 4)
					applyScript(t, dyn, randomScript(dyn.Graph(), kind, 42, 4, 8))
					if dyn.Stats().SamplesInvalidated == 0 {
						t.Fatalf("script repaired nothing; the oracle would pass vacuously")
					}
					want := coldResample(dyn.Graph(), cfg.model, dyn.Options().Seed, dyn.Collection().Count())
					sameCollections(t, "maintained vs cold resample", dyn.Collection(), want)
					if res := dyn.Collection().CheckInvariants(); res != -1 {
						t.Fatalf("maintained collection invariant broken at sample %d", res)
					}
				})
			}
		}
	}
}

// coverageOn counts how many samples of col contain at least one seed.
func coverageOn(col *rrr.Collection, seeds []graph.Vertex) int64 {
	var covered int64
	for i := 0; i < col.Count(); i++ {
		for _, s := range seeds {
			if col.Contains(i, s) {
				covered++
				break
			}
		}
	}
	return covered
}

// TestDeltaDifferentialConsistency is the epsilon layer: for mixed and
// insertion-heavy scripts (where IC-explicit extensions make incremental
// and cold sampling distributionally — not byte — equivalent), the seeds
// served from the maintained sketch must cover, on a cold rebuild's own
// samples, at least the cold seeds' coverage minus epsilon. This is the
// bounded-staleness contract: maintained answers stay inside the same
// approximation band a fresh build would promise.
func TestDeltaDifferentialConsistency(t *testing.T) {
	for _, gd := range deltaGraphs() {
		for _, cfg := range deltaConfigs() {
			for _, kind := range []string{"insert", "mixed"} {
				t.Run(gd.name+"/"+cfg.name+"/"+kind, func(t *testing.T) {
					g := gd.build()
					dyn := buildDynamic(t, g, cfg, 4)
					applyScript(t, dyn, randomScript(dyn.Graph(), kind, 97, 4, 8))
					if cfg.policy == WeightsExplicit && cfg.model == diffuse.IC &&
						dyn.Stats().SamplesExtended == 0 {
						t.Fatalf("insertion script extended nothing; the extension path went untested")
					}

					incSeeds, _ := dyn.Query(dyn.Options().K, 4)

					cold, coldCol, _, err := RunCollect(dyn.Graph(), dyn.Options())
					if err != nil {
						t.Fatalf("cold rebuild: %v", err)
					}
					incCov := float64(coverageOn(coldCol, incSeeds)) / float64(coldCol.Count())
					if incCov < cold.CoverageFraction-dyn.Options().Epsilon {
						t.Fatalf("incremental seeds %v cover %.4f of the cold samples; cold seeds %v cover %.4f (eps %.2f)",
							incSeeds, incCov, cold.Seeds, cold.CoverageFraction, dyn.Options().Epsilon)
					}
				})
			}
		}
	}
}

// TestDeltaWorkerDeterminism pins that maintenance is a pure function of
// the delta script: the collection, the served seeds and the repair
// telemetry are identical at 1 and 4 workers.
func TestDeltaWorkerDeterminism(t *testing.T) {
	for _, gd := range deltaGraphs() {
		for _, cfg := range deltaConfigs() {
			t.Run(gd.name+"/"+cfg.name, func(t *testing.T) {
				run := func(workers int) *DynamicSketch {
					g := gd.build()
					dyn := buildDynamic(t, g, cfg, workers)
					applyScript(t, dyn, randomScript(dyn.Graph(), "mixed", 7, 3, 10))
					return dyn
				}
				a, b := run(1), run(4)
				sameCollections(t, "workers=1 vs workers=4", a.Collection(), b.Collection())
				if a.Graph().Digest() != b.Graph().Digest() {
					t.Fatalf("graph digests diverge across worker counts")
				}
				if a.Stats() != b.Stats() {
					t.Fatalf("repair telemetry diverges: %+v vs %+v", a.Stats(), b.Stats())
				}
				sa, ca := a.Query(5, 1)
				sb, cb := b.Query(5, 4)
				if ca != cb || len(sa) != len(sb) {
					t.Fatalf("query results diverge: %v (%d) vs %v (%d)", sa, ca, sb, cb)
				}
				for i := range sa {
					if sa[i] != sb[i] {
						t.Fatalf("seed %d diverges: %d vs %d", i, sa[i], sb[i])
					}
				}
			})
		}
	}
}

// TestDeltaGreedyPrefixConsistency rides the harness: over the maintained
// sketch, the k/2-seed answer must be a prefix of the k-seed answer, the
// same property the static serving layer pins.
func TestDeltaGreedyPrefixConsistency(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 2)
	cfg := deltaConfigs()[0]
	dyn := buildDynamic(t, g, cfg, 4)
	applyScript(t, dyn, randomScript(dyn.Graph(), "mixed", 13, 4, 8))
	full, _ := dyn.Query(4, 4)
	half, _ := dyn.Query(2, 4)
	if len(full) < len(half) {
		t.Fatalf("k=4 returned %d seeds, k=2 returned %d", len(full), len(half))
	}
	for i := range half {
		if half[i] != full[i] {
			t.Fatalf("greedy prefix broken at %d: %v vs %v", i, half, full)
		}
	}
}

// TestDeltaBothStores pins store equivalence over a maintained sketch:
// transcoding the post-delta collection into the byte-coded store (with
// and without frequency relabeling) must serve byte-identical seeds to
// the flat indexed path.
func TestDeltaBothStores(t *testing.T) {
	for _, cfg := range deltaConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			g := gen.ErdosRenyi(300, 1500, 1)
			dyn := buildDynamic(t, g, cfg, 4)
			applyScript(t, dyn, randomScript(dyn.Graph(), "mixed", 29, 3, 8))

			flatSeeds, flatCov := dyn.Query(5, 4)
			for _, relabeled := range []bool{false, true} {
				var relab *rrr.Relabeling
				if relabeled {
					relab = rrr.NewRelabeling(rrr.IncidenceOf(dyn.Collection(), 4))
				}
				coded := rrr.FromCollection(dyn.Collection(), relab)
				idx := rrr.BuildIndexCoded(coded, 4)
				codedSeeds, codedCov := SelectSeedsSketch(coded, idx, 5, 4)
				if codedCov != flatCov || len(codedSeeds) != len(flatSeeds) {
					t.Fatalf("relabeled=%v: coded store diverges: %v (%d) vs %v (%d)",
						relabeled, codedSeeds, codedCov, flatSeeds, flatCov)
				}
				for i := range flatSeeds {
					if codedSeeds[i] != flatSeeds[i] {
						t.Fatalf("relabeled=%v: seed %d diverges", relabeled, i)
					}
				}
			}
		})
	}
}

// TestDeltaRestoreReplay pins the warm-restart path: a sketch restored
// from (base graph, post-delta collection, delta log) must reproduce the
// live sketch's graph and answers, and must stay in lockstep with it on
// further deltas — which requires the replay to land on the same epoch so
// extension streams keep matching.
func TestDeltaRestoreReplay(t *testing.T) {
	for _, cfg := range deltaConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			g := gen.WattsStrogatz(200, 6, 0.1, 3)
			dyn := buildDynamic(t, g, cfg, 4)
			applyScript(t, dyn, randomScript(dyn.Graph(), "mixed", 53, 3, 8))

			base := gen.WattsStrogatz(200, 6, 0.1, 3)
			cfg.weight(base)
			restored, err := RestoreDynamicSketch(base, dyn.Options(), cfg.policy,
				dyn.Collection(), dyn.Theta(), dyn.Log())
			if err != nil {
				t.Fatalf("RestoreDynamicSketch: %v", err)
			}
			if restored.Graph().Digest() != dyn.Graph().Digest() {
				t.Fatalf("replayed graph digest %x != live %x",
					restored.Graph().Digest(), dyn.Graph().Digest())
			}
			if restored.Epoch() != dyn.Epoch() {
				t.Fatalf("replayed epoch %d != live %d", restored.Epoch(), dyn.Epoch())
			}
			ra, _ := restored.Query(5, 4)
			la, _ := dyn.Query(5, 4)
			for i := range la {
				if ra[i] != la[i] {
					t.Fatalf("restored seeds %v != live %v", ra, la)
				}
			}

			// Further deltas must keep both in lockstep.
			next := randomScript(dyn.Graph(), "mixed", 59, 2, 6)
			applyScript(t, dyn, next)
			applyScript(t, restored, next)
			sameCollections(t, "restored vs live after further deltas",
				restored.Collection(), dyn.Collection())
		})
	}
}

// TestDeltaValidationLeavesSketchUntouched pins atomicity: a rejected
// batch (typed *graph.DeltaError) must leave graph, collection, epoch and
// telemetry exactly as they were.
func TestDeltaValidationLeavesSketchUntouched(t *testing.T) {
	g := gen.ErdosRenyi(300, 1500, 1)
	dyn := buildDynamic(t, g, deltaConfigs()[0], 2)
	digest := dyn.Graph().Digest()
	count := dyn.Collection().Count()
	stats := dyn.Stats()

	_, err := dyn.ApplyDelta(graph.Delta{
		{Kind: graph.DeltaInsert, Src: 0, Dst: 1, W: 0.5},
		{Kind: graph.DeltaDelete, Src: 0, Dst: 0}, // likely invalid; if not, the insert below is
		{Kind: graph.DeltaInsert, Src: 0, Dst: 1, W: 0.5},
	})
	if err == nil {
		t.Fatalf("ApplyDelta accepted a batch with a duplicate insert")
	}
	if _, ok := err.(*graph.DeltaError); !ok {
		t.Fatalf("ApplyDelta error is %T, want *graph.DeltaError", err)
	}
	if dyn.Graph().Digest() != digest || dyn.Collection().Count() != count || dyn.Stats() != stats {
		t.Fatalf("rejected batch mutated the sketch")
	}
	if dyn.Epoch() != 0 {
		t.Fatalf("rejected batch advanced the epoch to %d", dyn.Epoch())
	}
}
