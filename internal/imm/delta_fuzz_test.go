package imm

import (
	"testing"

	"influmax/internal/diffuse"
	"influmax/internal/gen"
	"influmax/internal/graph"
)

// decodeDeltaScript turns fuzz bytes into delta batches over an n-vertex
// graph: 6 bytes per op (kind, src, dst, weight, batch break), at most 32
// ops. Invalid ops are generated on purpose — ApplyDelta must reject them
// atomically, never corrupt the sketch.
func decodeDeltaScript(data []byte, n int) []graph.Delta {
	var script []graph.Delta
	var cur graph.Delta
	for len(data) >= 6 && len(script)*4+len(cur) < 32 {
		op := graph.DeltaOp{
			Kind: graph.DeltaOpKind(data[0] % 3), // includes an invalid kind
			Src:  graph.Vertex(data[1]) % graph.Vertex(n+1),
			Dst:  graph.Vertex(data[2]) % graph.Vertex(n+1),
			W:    float32(data[3]) / 250, // occasionally > 1
		}
		cur = append(cur, op)
		if data[4]%4 == 0 {
			script = append(script, cur)
			cur = nil
		}
		data = data[6:]
	}
	if len(cur) > 0 {
		script = append(script, cur)
	}
	return script
}

// FuzzApplyDelta drives a dynamic sketch with arbitrary (including
// invalid) delta scripts and checks the structural invariants that must
// hold no matter what: rejected batches leave the sketch untouched,
// accepted batches keep the collection well-formed at its pinned size,
// and the whole run is a pure function of the script (a second identical
// run produces an identical sketch).
func FuzzApplyDelta(f *testing.F) {
	f.Add([]byte{0, 1, 2, 100, 0, 0, 1, 1, 2, 0, 1, 0})
	f.Add([]byte{0, 3, 7, 200, 3, 0, 0, 7, 3, 120, 0, 0, 1, 3, 7, 0, 2, 0})
	f.Add([]byte{2, 0, 0, 255, 0, 0})

	base := func() *graph.Graph {
		g := gen.WattsStrogatz(64, 4, 0.2, 1)
		g.AssignConstant(0.2)
		return g
	}
	opt := Options{K: 3, Epsilon: 0.5, Model: diffuse.IC, Workers: 2, Seed: 5}

	f.Fuzz(func(t *testing.T, data []byte) {
		script := decodeDeltaScript(data, 64)
		run := func() *DynamicSketch {
			dyn, _, err := NewDynamicSketch(base(), opt, WeightsExplicit)
			if err != nil {
				t.Fatalf("NewDynamicSketch: %v", err)
			}
			count := dyn.Collection().Count()
			for _, d := range script {
				digest := dyn.Graph().Digest()
				epoch := dyn.Epoch()
				if _, err := dyn.ApplyDelta(d); err != nil {
					if _, ok := err.(*graph.DeltaError); !ok {
						t.Fatalf("ApplyDelta error is %T (%v), want *graph.DeltaError", err, err)
					}
					if dyn.Graph().Digest() != digest || dyn.Epoch() != epoch {
						t.Fatalf("rejected batch mutated the sketch")
					}
				}
				col := dyn.Collection()
				if col.Count() != count {
					t.Fatalf("sample count moved from %d to %d; theta is pinned", count, col.Count())
				}
				if bad := col.CheckInvariants(); bad != -1 {
					t.Fatalf("collection invariant broken at sample %d", bad)
				}
			}
			return dyn
		}
		a, b := run(), run()
		if a.Graph().Digest() != b.Graph().Digest() {
			t.Fatalf("graph digest not deterministic across identical runs")
		}
		if a.Collection().Count() != b.Collection().Count() ||
			a.Collection().TotalSize() != b.Collection().TotalSize() {
			t.Fatalf("collection shape not deterministic across identical runs")
		}
		if a.Stats() != b.Stats() {
			t.Fatalf("telemetry not deterministic: %+v vs %+v", a.Stats(), b.Stats())
		}
		for i := 0; i < a.Collection().Count(); i++ {
			sa, sb := a.Collection().Sample(i), b.Collection().Sample(i)
			for j := range sa {
				if sa[j] != sb[j] {
					t.Fatalf("sample %d differs between identical runs", i)
				}
			}
		}
	})
}
