package imm

import (
	"slices"
	"testing"

	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/metrics"
	"influmax/internal/rrr"
)

// TestFusedMatchesScalar is the tentpole's equivalence gate: in PerSample
// RNG mode the fused CSR frontier kernel must produce a Collection
// byte-identical to the scalar kernel — for every graph, model, worker
// count, and batch size (samples per Sample call, so small batches
// exercise partial fused batches and B > count tails) — and the downstream
// SelectSeedsIndexed output must therefore match too.
func TestFusedMatchesScalar(t *testing.T) {
	graphs := []struct {
		seed uint64
		n, m int
	}{
		{11, 80, 600},
		{22, 150, 1300},
		{33, 300, 2500},
	}
	const count = 384 // divisible by every batch size below
	const k = 10
	for _, gc := range graphs {
		for _, mc := range scheduleModels {
			g := scheduleGraph(gc.seed, gc.n, gc.m, mc.prep)

			ref := rrr.NewCollection(gc.n)
			NewBatchSampler(g, Options{
				Model: mc.model, Workers: 1, Seed: gc.seed, Kernel: KernelScalar,
			}).Sample(ref, count)
			refSeeds, refCov := SelectSeedsIndexed(ref, rrr.BuildIndex(ref, 1), k, 1)

			for _, w := range []int{1, 4} {
				for _, batch := range []int{1, 8, 64} {
					col := rrr.NewCollection(gc.n)
					bs := NewBatchSampler(g, Options{
						Model: mc.model, Workers: w, Seed: gc.seed, Kernel: KernelFused,
					})
					for done := 0; done < count; done += batch {
						bs.Sample(col, batch)
					}
					if !sameCollection(ref, col) {
						t.Fatalf("graph=%d model=%s workers=%d batch=%d: fused collection != scalar",
							gc.seed, mc.name, w, batch)
					}
					if bad := col.CheckInvariants(); bad != -1 {
						t.Fatalf("graph=%d model=%s workers=%d batch=%d: invariants broken at sample %d",
							gc.seed, mc.name, w, batch, bad)
					}
					seeds, cov := SelectSeedsIndexed(col, rrr.BuildIndex(col, w), k, w)
					if !slices.Equal(seeds, refSeeds) || cov != refCov {
						t.Fatalf("graph=%d model=%s workers=%d batch=%d: seeds (%v, %d) != scalar (%v, %d)",
							gc.seed, mc.name, w, batch, seeds, cov, refSeeds, refCov)
					}
				}
			}
		}
	}
}

// TestFusedDegenerateInputs sweeps the kernel through the shapes that break
// naive batch bookkeeping — an edgeless graph, self-loops, isolated
// vertices — and through counts far below the 64-lane batch width
// (B > theta), asserting byte-identity with the scalar kernel throughout.
func TestFusedDegenerateInputs(t *testing.T) {
	build := func(n int, edges [][2]int, w float32) *graph.Graph {
		b := graph.NewBuilder(n)
		for _, e := range edges {
			b.Add(graph.Vertex(e[0]), graph.Vertex(e[1]), w)
		}
		return b.Build()
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"empty", build(8, nil, 0)},
		{"self-loops", build(6, [][2]int{{0, 0}, {1, 1}, {0, 1}, {1, 2}, {2, 0}, {5, 5}}, 0.9)},
		{"isolated", build(12, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 0.8)},
	}
	for _, tc := range cases {
		for _, model := range []diffuse.Model{diffuse.IC, diffuse.LT} {
			g := tc.g
			if model == diffuse.LT {
				g.NormalizeLT()
			}
			// count=3 stays far below the 64-lane width: a single partial batch.
			for _, count := range []int{3, 200} {
				ref := rrr.NewCollection(g.NumVertices())
				NewBatchSampler(g, Options{
					Model: model, Workers: 2, Seed: 5, Kernel: KernelScalar,
				}).Sample(ref, count)
				col := rrr.NewCollection(g.NumVertices())
				NewBatchSampler(g, Options{
					Model: model, Workers: 2, Seed: 5, Kernel: KernelFused,
				}).Sample(col, count)
				if !sameCollection(ref, col) {
					t.Fatalf("%s/%v count=%d: fused collection != scalar", tc.name, model, count)
				}
			}
		}
	}
}

// TestFusedRunPipelineIdentical runs full Algorithm 1 under both kernels:
// Theta, the seed set, and the coverage must be identical, so flipping
// -kernel can never change a result. The fused run must also surface its
// telemetry in the Result and the registry.
func TestFusedRunPipelineIdentical(t *testing.T) {
	g := testGraph(44, 140, 1100)
	ref, err := Run(g, Options{K: 8, Epsilon: 0.5, Model: diffuse.IC, Workers: 2, Seed: 3, Kernel: KernelScalar})
	if err != nil {
		t.Fatal(err)
	}
	if ref.FrontierPasses != 0 || ref.CoinsGenerated != 0 || ref.BatchOccupancy != 0 {
		t.Fatalf("scalar run reported fused telemetry: %+v", ref)
	}
	reg := metrics.NewRegistry()
	res, err := Run(g, Options{K: 8, Epsilon: 0.5, Model: diffuse.IC, Workers: 2, Seed: 3, Kernel: KernelFused, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(res.Seeds, ref.Seeds) || res.Theta != ref.Theta ||
		res.CoverageFraction != ref.CoverageFraction {
		t.Fatalf("fused run (%v, theta=%d) != scalar (%v, theta=%d)",
			res.Seeds, res.Theta, ref.Seeds, ref.Theta)
	}
	if res.FrontierPasses <= 0 || res.CoinsGenerated < int64(res.SamplesGenerated) {
		t.Fatalf("fused telemetry missing: passes=%d coins=%d", res.FrontierPasses, res.CoinsGenerated)
	}
	if res.BatchOccupancy <= 0 || res.BatchOccupancy > 1 {
		t.Fatalf("BatchOccupancy = %v, want in (0, 1]", res.BatchOccupancy)
	}
	if got := reg.Counter("rrr/frontier-passes").Value(); got != res.FrontierPasses {
		t.Fatalf("rrr/frontier-passes counter %d != Result %d", got, res.FrontierPasses)
	}
	if got := reg.Counter("rrr/coins-generated").Value(); got != res.CoinsGenerated {
		t.Fatalf("rrr/coins-generated counter %d != Result %d", got, res.CoinsGenerated)
	}
	if got := reg.Gauge("rrr/batch-occupancy").Value(); got != int64(res.BatchOccupancy*1000) {
		t.Fatalf("rrr/batch-occupancy gauge %d != permille of %v", got, res.BatchOccupancy)
	}

	rep := res.Report(Options{K: 8, Epsilon: 0.5, Model: diffuse.IC, Workers: 2, Seed: 3, Kernel: KernelFused})
	if rep.Kernel != "fused" || rep.FrontierPasses != res.FrontierPasses ||
		rep.CoinsGenerated != res.CoinsGenerated || rep.BatchOccupancy != res.BatchOccupancy {
		t.Fatalf("report kernel fields not copied: %+v", rep)
	}
}

// TestFusedLeapFrogFallsBack: LeapFrog's worker-pinned streams cannot be
// lane-batched, so a fused-requested LeapFrog run must silently take the
// scalar path — reproducing the scalar LeapFrog layout exactly, with no
// fused telemetry.
func TestFusedLeapFrogFallsBack(t *testing.T) {
	g := testGraph(88, 100, 800)
	const count, w = 400, 4
	ref := rrr.NewCollection(100)
	NewBatchSampler(g, Options{
		Model: diffuse.IC, Workers: w, Seed: 6, RNG: LeapFrog, Kernel: KernelScalar,
	}).Sample(ref, count)

	col := rrr.NewCollection(100)
	bs := NewBatchSampler(g, Options{
		Model: diffuse.IC, Workers: w, Seed: 6, RNG: LeapFrog, Kernel: KernelFused,
	})
	bs.Sample(col, count)
	if !sameCollection(ref, col) {
		t.Fatal("fused-requested LeapFrog collection != scalar LeapFrog collection")
	}
	if st := bs.FusedStats(); st != (diffuse.FusedStats{}) {
		t.Fatalf("LeapFrog run recorded fused work: %+v", st)
	}
}

// TestKernelOptionValidation pins the flag surface: names round-trip and
// out-of-range values are rejected.
func TestKernelOptionValidation(t *testing.T) {
	if KernelFused.String() != "fused" || KernelScalar.String() != "scalar" {
		t.Fatal("kernel names wrong")
	}
	if Kernel(9).String() == "" {
		t.Fatal("unknown kernel has empty name")
	}
	g := testGraph(1, 50, 300)
	if _, err := Run(g, Options{K: 2, Epsilon: 0.5, Model: diffuse.IC, Kernel: Kernel(7)}); err == nil {
		t.Fatal("Run accepted an unknown kernel")
	}
}
