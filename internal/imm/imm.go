package imm

import (
	"time"

	"influmax/internal/graph"
	"influmax/internal/rrr"
	"influmax/internal/trace"
)

// Result reports an IMM run: the seed set (in greedy selection order), the
// quality estimate, the sample-count bookkeeping and the per-phase timings
// that the paper's figures break runtimes into.
type Result struct {
	// Algorithm names the implementation that produced the result, as in
	// Table 3: "IMM" (RunBaseline), "IMMopt" (Run, one worker) or "IMMmt"
	// (Run, several workers).
	Algorithm string
	// Seeds is the selected seed set in the order the greedy chose it.
	Seeds []graph.Vertex
	// CoverageFraction is F_R(S), the fraction of samples covered by Seeds.
	CoverageFraction float64
	// EstimatedSpread is the unbiased spread estimate n * F_R(S).
	EstimatedSpread float64
	// Theta is the number of samples the estimation deemed sufficient.
	Theta int64
	// SamplesGenerated is the total number of samples actually generated
	// (estimation iterations may overshoot Theta; all are kept, as in
	// Algorithm 1).
	SamplesGenerated int
	// LowerBound is the martingale lower bound on OPT found by Algorithm 2.
	LowerBound float64
	// Store is the representation the final seed selection ran over.
	Store StoreKind
	// StoreBytes is the RRR store footprint (the Table 2 memory column).
	StoreBytes int64
	// FlatStoreBytes is what the same samples cost in the flat arena layout
	// (4 bytes per entry + 8 per sample offset) — equal to StoreBytes for
	// flat runs, the compression-ratio denominator for coded ones.
	FlatStoreBytes int64
	// IndexBytes is the footprint of the inverted incidence index built for
	// the final seed selection (zero for the baseline, whose NaiveStore
	// carries the incidence permanently inside StoreBytes).
	IndexBytes int64
	// Phases is the wall-clock breakdown of the figures' stacked bars.
	Phases trace.Times
	// Workers is the resolved thread count.
	Workers int
	// Kernel is the sampling kernel the run was configured with (the
	// effective kernel can differ: LeapFrog RNG falls back to scalar).
	Kernel Kernel
	// FrontierPasses is the number of fused frontier passes executed
	// (zero under the scalar kernel).
	FrontierPasses int64
	// CoinsGenerated is the number of pseudorandom coins the fused kernel
	// generated in blocks (zero under the scalar kernel, which draws
	// per-edge instead).
	CoinsGenerated int64
	// BatchOccupancy is the mean fraction of fused lane slots holding a
	// live frontier per pass (0 under the scalar kernel; 1.0 = every lane
	// of every pass was live).
	BatchOccupancy float64
	// WorkBalance is avg/max of per-worker sampling work (1.0 = perfect):
	// the load balance that bounds sampling-phase scaling efficiency.
	WorkBalance float64
	// WorkerWork is the raw per-worker sampling work (RRR entries each
	// worker generated) underlying WorkBalance; index = worker rank.
	WorkerWork []int64
}

// Run executes parallel IMM (Algorithm 1) over g: IMMopt when
// opt.Workers == 1, IMMmt when opt.Workers > 1. opt.Store picks the
// representation the final seed selection runs over; the seeds are
// identical either way.
func Run(g *graph.Graph, opt Options) (*Result, error) {
	if opt.Store == StoreCoded {
		res, _, _, err := RunSketch(g, opt)
		return res, err
	}
	res, _, _, err := RunCollect(g, opt)
	return res, err
}

// samplePipeline runs phases 1-2 — theta estimation (Algorithm 2) and
// sampling to theta (Algorithm 3) — into a flat arena, filling res's
// theta bookkeeping. Both store kinds share this front half: estimation
// appends and re-selects incrementally, which only the flat arena
// supports, so a coded run transcodes once after the final samples exist.
func samplePipeline(g *graph.Graph, opt Options, res *Result) (*rrr.Collection, *BatchSampler, Analysis) {
	startOther := time.Now()
	n := g.NumVertices()
	col := rrr.NewCollection(n)
	st := NewBatchSampler(g, opt)
	tm := NewAnalysis(n, opt.K, opt.Epsilon, opt.L)
	res.Phases.Add(trace.Other, time.Since(startOther))

	// Phase 1: EstimateTheta (Algorithm 2). The Sample calls made here are
	// accounted to the Estimation phase, as in the paper's figures.
	res.Phases.Measure(trace.Estimation, func() {
		lb := 1.0
		for x := 1; x <= tm.maxX; x++ {
			need := tm.ThetaAt(x) - int64(col.Count())
			st.Sample(col, int(need))
			_, cov := SelectSeeds(col, opt.K, opt.Workers)
			nF := tm.N() * float64(cov) / float64(col.Count())
			if nF >= tm.ThresholdAt(x) {
				lb = tm.LowerBound(nF)
				break
			}
		}
		res.LowerBound = lb
		res.Theta = tm.FinalTheta(lb)
	})

	// Phase 2: Sample (Algorithm 3), the direct skeleton invocation.
	res.Phases.Measure(trace.Sampling, func() {
		st.Sample(col, int(res.Theta)-col.Count())
	})
	return col, st, tm
}

// finishRun records the bookkeeping every pipeline tail shares: sampling
// balance and the store/balance gauges.
func finishRun(res *Result, st *BatchSampler, opt Options) {
	res.WorkBalance = st.WorkBalance()
	res.WorkerWork = append([]int64(nil), st.Work...)
	fs := st.FusedStats()
	res.FrontierPasses = fs.Passes
	res.CoinsGenerated = fs.Coins
	res.BatchOccupancy = fs.Occupancy()
	if opt.Metrics != nil {
		// Permille, because gauges are integers: 1000 = perfectly balanced.
		opt.Metrics.Gauge("rrr/balance").Set(int64(res.WorkBalance * 1000))
		opt.Metrics.Gauge("rrr/store-bytes").Set(res.StoreBytes)
	}
}

func newResult(opt Options) *Result {
	res := &Result{Algorithm: "IMMopt", Workers: opt.Workers, Store: opt.Store, Kernel: opt.Kernel}
	if opt.Workers > 1 {
		res.Algorithm = "IMMmt"
	}
	return res
}

// RunCollect executes the same pipeline as Run but additionally returns
// the finished sample collection and the inverted incidence index the
// final selection used — the resident sketch a serving process keeps so
// later queries for any k <= opt.K skip sampling entirely. The returned
// collection and index must be treated as immutable if they are shared.
// RunCollect always works on the flat arena (opt.Store is ignored);
// callers that want the byte-coded store use RunSketch.
func RunCollect(g *graph.Graph, opt Options) (*Result, *rrr.Collection, *rrr.Index, error) {
	opt = opt.withDefaults()
	opt.Store = StoreFlat
	if err := opt.validate(g.NumVertices()); err != nil {
		return nil, nil, nil, err
	}
	res := newResult(opt)
	col, st, tm := samplePipeline(g, opt, res)

	// Phase 2.5: invert the finished collection into the vertex->samples
	// index the purge step looks up. Builds inside the estimation loop are
	// accounted to Estimation, like the Sample calls made there; this final
	// build over the full theta samples gets its own bar.
	var idx *rrr.Index
	res.Phases.Measure(trace.IndexBuild, func() {
		idx = rrr.BuildIndex(col, opt.Workers)
	})
	res.IndexBytes = idx.Bytes()
	if opt.Metrics != nil {
		opt.Metrics.Gauge("rrr/index-bytes").Set(idx.Bytes())
	}

	// Phase 3: SelectSeeds (Algorithm 4, index-driven purge).
	res.Phases.Measure(trace.SelectSeeds, func() {
		seeds, cov := SelectSeedsIndexed(col, idx, opt.K, opt.Workers)
		res.Seeds = seeds
		if c := col.Count(); c > 0 {
			res.CoverageFraction = float64(cov) / float64(c)
		}
		res.EstimatedSpread = res.CoverageFraction * tm.N()
	})

	res.SamplesGenerated = col.Count()
	res.StoreBytes = col.Bytes()
	res.FlatStoreBytes = col.Bytes()
	finishRun(res, st, opt)
	return res, col, idx, nil
}

// RunSketch executes the pipeline with the finished samples transcoded
// into a byte-coded store before index build and selection, returning the
// coded collection and its index — the resident sketch a serving process
// keeps. opt.Store picks the labeling: StoreCoded transcodes under the
// frequency-ordered relabeling (DESIGN.md §13); StoreFlat keeps the
// identity labeling, which preserves per-member delta coding but no
// reordering. Either way the flat arena is dropped after transcoding and
// the seeds are byte-identical to RunCollect over the same options. The
// transcode (incidence count, relabel-table build, re-encode) is
// accounted to the Other phase.
func RunSketch(g *graph.Graph, opt Options) (*Result, *rrr.CodedCollection, *rrr.Index, error) {
	opt = opt.withDefaults()
	if err := opt.validate(g.NumVertices()); err != nil {
		return nil, nil, nil, err
	}
	res := newResult(opt)
	col, st, tm := samplePipeline(g, opt, res)

	var coded *rrr.CodedCollection
	startT := time.Now()
	if opt.Store == StoreCoded {
		relab := rrr.NewRelabeling(rrr.IncidenceOf(col, opt.Workers))
		coded = rrr.FromCollection(col, relab)
	} else {
		coded = rrr.FromCollection(col, nil)
	}
	res.FlatStoreBytes = col.Bytes()
	col = nil // drop the flat arena; the coded store is what is kept
	res.Phases.Add(trace.Other, time.Since(startT))

	var idx *rrr.Index
	res.Phases.Measure(trace.IndexBuild, func() {
		idx = rrr.BuildIndexCoded(coded, opt.Workers)
	})
	res.IndexBytes = idx.Bytes()
	if opt.Metrics != nil {
		opt.Metrics.Gauge("rrr/index-bytes").Set(idx.Bytes())
	}

	res.Phases.Measure(trace.SelectSeeds, func() {
		seeds, cov := SelectSeedsSketch(coded, idx, opt.K, opt.Workers)
		res.Seeds = seeds
		if c := coded.Count(); c > 0 {
			res.CoverageFraction = float64(cov) / float64(c)
		}
		res.EstimatedSpread = res.CoverageFraction * tm.N()
	})

	res.SamplesGenerated = coded.Count()
	res.StoreBytes = coded.Bytes()
	finishRun(res, st, opt)
	return res, coded, idx, nil
}

// RunBaseline executes the sequential Tang-style baseline ("IMM" in
// Tables 2 and 3): single-threaded sampling into the bidirectional
// pointer-heavy hypergraph store, and incidence-driven seed selection.
// Options.Workers is ignored (forced to 1).
func RunBaseline(g *graph.Graph, opt Options) (*Result, error) {
	opt.Workers = 1
	opt = opt.withDefaults()
	if err := opt.validate(g.NumVertices()); err != nil {
		return nil, err
	}
	res := &Result{Algorithm: "IMM", Workers: 1}
	startOther := time.Now()
	n := g.NumVertices()
	store := rrr.NewNaiveStore(n)
	st := NewBatchSampler(g, opt)
	tm := NewAnalysis(n, opt.K, opt.Epsilon, opt.L)
	res.Phases.Add(trace.Other, time.Since(startOther))

	res.Phases.Measure(trace.Estimation, func() {
		lb := 1.0
		for x := 1; x <= tm.maxX; x++ {
			need := tm.ThetaAt(x) - int64(store.Count())
			st.sampleNaive(store, int(need))
			_, cov := SelectSeedsNaive(store, opt.K)
			nF := tm.N() * float64(cov) / float64(store.Count())
			if nF >= tm.ThresholdAt(x) {
				lb = tm.LowerBound(nF)
				break
			}
		}
		res.LowerBound = lb
		res.Theta = tm.FinalTheta(lb)
	})

	res.Phases.Measure(trace.Sampling, func() {
		st.sampleNaive(store, int(res.Theta)-store.Count())
	})

	res.Phases.Measure(trace.SelectSeeds, func() {
		seeds, cov := SelectSeedsNaive(store, opt.K)
		res.Seeds = seeds
		if c := store.Count(); c > 0 {
			res.CoverageFraction = float64(cov) / float64(c)
		}
		res.EstimatedSpread = res.CoverageFraction * tm.N()
	})

	res.SamplesGenerated = store.Count()
	res.StoreBytes = store.Bytes()
	return res, nil
}
