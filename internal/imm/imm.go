package imm

import (
	"time"

	"influmax/internal/graph"
	"influmax/internal/rrr"
	"influmax/internal/trace"
)

// Result reports an IMM run: the seed set (in greedy selection order), the
// quality estimate, the sample-count bookkeeping and the per-phase timings
// that the paper's figures break runtimes into.
type Result struct {
	// Algorithm names the implementation that produced the result, as in
	// Table 3: "IMM" (RunBaseline), "IMMopt" (Run, one worker) or "IMMmt"
	// (Run, several workers).
	Algorithm string
	// Seeds is the selected seed set in the order the greedy chose it.
	Seeds []graph.Vertex
	// CoverageFraction is F_R(S), the fraction of samples covered by Seeds.
	CoverageFraction float64
	// EstimatedSpread is the unbiased spread estimate n * F_R(S).
	EstimatedSpread float64
	// Theta is the number of samples the estimation deemed sufficient.
	Theta int64
	// SamplesGenerated is the total number of samples actually generated
	// (estimation iterations may overshoot Theta; all are kept, as in
	// Algorithm 1).
	SamplesGenerated int
	// LowerBound is the martingale lower bound on OPT found by Algorithm 2.
	LowerBound float64
	// StoreBytes is the RRR store footprint (the Table 2 memory column).
	StoreBytes int64
	// IndexBytes is the footprint of the inverted incidence index built for
	// the final seed selection (zero for the baseline, whose NaiveStore
	// carries the incidence permanently inside StoreBytes).
	IndexBytes int64
	// Phases is the wall-clock breakdown of the figures' stacked bars.
	Phases trace.Times
	// Workers is the resolved thread count.
	Workers int
	// WorkBalance is avg/max of per-worker sampling work (1.0 = perfect):
	// the load balance that bounds sampling-phase scaling efficiency.
	WorkBalance float64
	// WorkerWork is the raw per-worker sampling work (RRR entries each
	// worker generated) underlying WorkBalance; index = worker rank.
	WorkerWork []int64
}

// Run executes parallel IMM (Algorithm 1) over g: IMMopt when
// opt.Workers == 1, IMMmt when opt.Workers > 1.
func Run(g *graph.Graph, opt Options) (*Result, error) {
	res, _, _, err := RunCollect(g, opt)
	return res, err
}

// RunCollect executes the same pipeline as Run but additionally returns
// the finished sample collection and the inverted incidence index the
// final selection used — the resident sketch a serving process keeps so
// later queries for any k <= opt.K skip sampling entirely. The returned
// collection and index must be treated as immutable if they are shared.
func RunCollect(g *graph.Graph, opt Options) (*Result, *rrr.Collection, *rrr.Index, error) {
	opt = opt.withDefaults()
	if err := opt.validate(g.NumVertices()); err != nil {
		return nil, nil, nil, err
	}
	res := &Result{Algorithm: "IMMopt", Workers: opt.Workers}
	if opt.Workers > 1 {
		res.Algorithm = "IMMmt"
	}
	startOther := time.Now()
	n := g.NumVertices()
	col := rrr.NewCollection(n)
	st := NewBatchSampler(g, opt)
	tm := NewAnalysis(n, opt.K, opt.Epsilon, opt.L)
	res.Phases.Add(trace.Other, time.Since(startOther))

	// Phase 1: EstimateTheta (Algorithm 2). The Sample calls made here are
	// accounted to the Estimation phase, as in the paper's figures.
	res.Phases.Measure(trace.Estimation, func() {
		lb := 1.0
		for x := 1; x <= tm.maxX; x++ {
			need := tm.ThetaAt(x) - int64(col.Count())
			st.Sample(col, int(need))
			_, cov := SelectSeeds(col, opt.K, opt.Workers)
			nF := tm.N() * float64(cov) / float64(col.Count())
			if nF >= tm.ThresholdAt(x) {
				lb = tm.LowerBound(nF)
				break
			}
		}
		res.LowerBound = lb
		res.Theta = tm.FinalTheta(lb)
	})

	// Phase 2: Sample (Algorithm 3), the direct skeleton invocation.
	res.Phases.Measure(trace.Sampling, func() {
		st.Sample(col, int(res.Theta)-col.Count())
	})

	// Phase 2.5: invert the finished collection into the vertex->samples
	// index the purge step looks up. Builds inside the estimation loop are
	// accounted to Estimation, like the Sample calls made there; this final
	// build over the full theta samples gets its own bar.
	var idx *rrr.Index
	res.Phases.Measure(trace.IndexBuild, func() {
		idx = rrr.BuildIndex(col, opt.Workers)
	})
	res.IndexBytes = idx.Bytes()
	if opt.Metrics != nil {
		opt.Metrics.Gauge("rrr/index-bytes").Set(idx.Bytes())
	}

	// Phase 3: SelectSeeds (Algorithm 4, index-driven purge).
	res.Phases.Measure(trace.SelectSeeds, func() {
		seeds, cov := SelectSeedsIndexed(col, idx, opt.K, opt.Workers)
		res.Seeds = seeds
		if c := col.Count(); c > 0 {
			res.CoverageFraction = float64(cov) / float64(c)
		}
		res.EstimatedSpread = res.CoverageFraction * tm.N()
	})

	res.SamplesGenerated = col.Count()
	res.StoreBytes = col.Bytes()
	res.WorkBalance = st.WorkBalance()
	res.WorkerWork = append([]int64(nil), st.Work...)
	if opt.Metrics != nil {
		// Permille, because gauges are integers: 1000 = perfectly balanced.
		opt.Metrics.Gauge("rrr/balance").Set(int64(res.WorkBalance * 1000))
	}
	return res, col, idx, nil
}

// RunBaseline executes the sequential Tang-style baseline ("IMM" in
// Tables 2 and 3): single-threaded sampling into the bidirectional
// pointer-heavy hypergraph store, and incidence-driven seed selection.
// Options.Workers is ignored (forced to 1).
func RunBaseline(g *graph.Graph, opt Options) (*Result, error) {
	opt.Workers = 1
	opt = opt.withDefaults()
	if err := opt.validate(g.NumVertices()); err != nil {
		return nil, err
	}
	res := &Result{Algorithm: "IMM", Workers: 1}
	startOther := time.Now()
	n := g.NumVertices()
	store := rrr.NewNaiveStore(n)
	st := NewBatchSampler(g, opt)
	tm := NewAnalysis(n, opt.K, opt.Epsilon, opt.L)
	res.Phases.Add(trace.Other, time.Since(startOther))

	res.Phases.Measure(trace.Estimation, func() {
		lb := 1.0
		for x := 1; x <= tm.maxX; x++ {
			need := tm.ThetaAt(x) - int64(store.Count())
			st.sampleNaive(store, int(need))
			_, cov := SelectSeedsNaive(store, opt.K)
			nF := tm.N() * float64(cov) / float64(store.Count())
			if nF >= tm.ThresholdAt(x) {
				lb = tm.LowerBound(nF)
				break
			}
		}
		res.LowerBound = lb
		res.Theta = tm.FinalTheta(lb)
	})

	res.Phases.Measure(trace.Sampling, func() {
		st.sampleNaive(store, int(res.Theta)-store.Count())
	})

	res.Phases.Measure(trace.SelectSeeds, func() {
		seeds, cov := SelectSeedsNaive(store, opt.K)
		res.Seeds = seeds
		if c := store.Count(); c > 0 {
			res.CoverageFraction = float64(cov) / float64(c)
		}
		res.EstimatedSpread = res.CoverageFraction * tm.N()
	})

	res.SamplesGenerated = store.Count()
	res.StoreBytes = store.Bytes()
	return res, nil
}
