package imm

import (
	"math"
	"slices"
	"testing"
	"testing/quick"

	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/rng"
	"influmax/internal/rrr"
)

// refGreedy is a trivially correct sequential greedy max-coverage used as
// the oracle for SelectSeeds.
func refGreedy(sets [][]graph.Vertex, n, k int) ([]graph.Vertex, int64) {
	covered := make([]bool, len(sets))
	chosen := make([]bool, n)
	var seeds []graph.Vertex
	var total int64
	for len(seeds) < k {
		gain := make([]int64, n)
		for j, s := range sets {
			if covered[j] {
				continue
			}
			for _, u := range s {
				gain[u]++
			}
		}
		best, arg := int64(-1), -1
		for v := 0; v < n; v++ {
			if !chosen[v] && gain[v] > best {
				best, arg = gain[v], v
			}
		}
		if arg < 0 {
			break
		}
		chosen[arg] = true
		seeds = append(seeds, graph.Vertex(arg))
		total += best
		for j, s := range sets {
			if !covered[j] && slices.Contains(s, graph.Vertex(arg)) {
				covered[j] = true
			}
		}
	}
	return seeds, total
}

func randomSets(seed uint64, n, count int, density float64) [][]graph.Vertex {
	r := rng.New(rng.NewLCG(seed))
	sets := make([][]graph.Vertex, count)
	for j := range sets {
		for v := 0; v < n; v++ {
			if r.Float64() < density {
				sets[j] = append(sets[j], graph.Vertex(v))
			}
		}
	}
	return sets
}

func collectionOf(n int, sets [][]graph.Vertex) *rrr.Collection {
	c := rrr.NewCollection(n)
	for _, s := range sets {
		c.Append(s)
	}
	return c
}

func TestSelectSeedsMatchesReferenceGreedy(t *testing.T) {
	check := func(seed uint64, pRaw uint8) bool {
		p := int(pRaw%8) + 1
		n, count := 24, 40
		sets := randomSets(seed, n, count, 0.15)
		col := collectionOf(n, sets)
		wantSeeds, wantCov := refGreedy(sets, n, 5)
		gotSeeds, gotCov := SelectSeeds(col, 5, p)
		return slices.Equal(gotSeeds, wantSeeds) && gotCov == wantCov
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectSeedsDeterministicAcrossWorkers(t *testing.T) {
	sets := randomSets(99, 50, 200, 0.1)
	col := collectionOf(50, sets)
	ref, refCov := SelectSeeds(col, 10, 1)
	for _, p := range []int{2, 3, 7, 16, 100} {
		got, cov := SelectSeeds(col, 10, p)
		if !slices.Equal(got, ref) || cov != refCov {
			t.Fatalf("p=%d: seeds differ from p=1: %v vs %v", p, got, ref)
		}
	}
}

func TestSelectSeedsHandlesEmptyCollection(t *testing.T) {
	col := rrr.NewCollection(10)
	seeds, cov := SelectSeeds(col, 3, 2)
	if len(seeds) != 3 || cov != 0 {
		t.Fatalf("empty collection: seeds=%v cov=%d", seeds, cov)
	}
}

func TestSelectSeedsKEqualsN(t *testing.T) {
	sets := randomSets(5, 6, 10, 0.3)
	col := collectionOf(6, sets)
	seeds, _ := SelectSeeds(col, 6, 2)
	if len(seeds) != 6 {
		t.Fatalf("k=n: got %d seeds", len(seeds))
	}
	sorted := append([]graph.Vertex(nil), seeds...)
	slices.Sort(sorted)
	if sorted[0] != 0 || sorted[5] != 5 {
		t.Fatalf("k=n seeds not a permutation: %v", seeds)
	}
}

func TestSelectSeedsCoverageMonotoneInK(t *testing.T) {
	sets := randomSets(7, 30, 60, 0.12)
	col := collectionOf(30, sets)
	prev := int64(-1)
	for k := 1; k <= 10; k++ {
		_, cov := SelectSeeds(col, k, 4)
		if cov < prev {
			t.Fatalf("coverage decreased at k=%d: %d < %d", k, cov, prev)
		}
		prev = cov
	}
}

func TestSelectSeedsNaiveMatchesParallel(t *testing.T) {
	check := func(seed uint64) bool {
		n, count := 20, 30
		sets := randomSets(seed, n, count, 0.2)
		col := collectionOf(n, sets)
		store := rrr.NewNaiveStore(n)
		for _, s := range sets {
			store.Append(s)
		}
		s1, c1 := SelectSeeds(col, 4, 3)
		s2, c2 := SelectSeedsNaive(store, 4)
		return slices.Equal(s1, s2) && c1 == c2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestThetaMathShapes(t *testing.T) {
	// Figure 2: theta grows when eps shrinks and when k grows.
	n := 30000
	thetaOf := func(k int, eps float64) int64 {
		tm := NewAnalysis(n, k, eps, 1)
		return tm.FinalTheta(float64(n) / 50) // fixed plausible LB
	}
	if !(thetaOf(50, 0.2) > thetaOf(50, 0.3) && thetaOf(50, 0.3) > thetaOf(50, 0.5)) {
		t.Fatal("theta not decreasing in eps")
	}
	if !(thetaOf(100, 0.5) > thetaOf(50, 0.5) && thetaOf(50, 0.5) > thetaOf(10, 0.5)) {
		t.Fatal("theta not increasing in k")
	}
	// The paper notes theta quickly exceeds n at high precision.
	if thetaOf(50, 0.13) < int64(n) {
		t.Fatal("theta at eps=0.13 should exceed n")
	}
}

func TestThetaMathEpsPrime(t *testing.T) {
	tm := NewAnalysis(1000, 10, 0.5, 1)
	if math.Abs(tm.epsPrime-math.Sqrt2*0.5) > 1e-12 {
		t.Fatalf("epsPrime = %v", tm.epsPrime)
	}
	if tm.lambdaP <= 0 || tm.lambdaS <= 0 {
		t.Fatal("lambda constants must be positive")
	}
	if tm.ThetaAt(2) <= tm.ThetaAt(1) {
		t.Fatal("thetaAt must grow with x")
	}
	if tm.FinalTheta(0.5) != tm.FinalTheta(1) {
		t.Fatal("LB below 1 must clamp")
	}
}

func testGraph(seed uint64, n, m int) *graph.Graph {
	r := rng.New(rng.NewLCG(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			b.Add(graph.Vertex(u), graph.Vertex(v), 0)
		}
	}
	g := b.Build()
	g.AssignUniform(seed ^ 0xbeef)
	return g
}

func TestRunBasicInvariants(t *testing.T) {
	g := testGraph(1, 120, 900)
	res, err := Run(g, Options{K: 8, Epsilon: 0.5, Model: diffuse.IC, Workers: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 8 {
		t.Fatalf("got %d seeds, want 8", len(res.Seeds))
	}
	sorted := append([]graph.Vertex(nil), res.Seeds...)
	slices.Sort(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			t.Fatal("duplicate seed")
		}
	}
	if res.CoverageFraction <= 0 || res.CoverageFraction > 1 {
		t.Fatalf("coverage fraction %v out of (0,1]", res.CoverageFraction)
	}
	if res.Theta < 1 || res.SamplesGenerated < int(res.Theta) {
		t.Fatalf("bookkeeping: theta=%d generated=%d", res.Theta, res.SamplesGenerated)
	}
	if res.StoreBytes <= 0 {
		t.Fatal("store bytes not recorded")
	}
	if res.Phases.Total() <= 0 {
		t.Fatal("phase timings not recorded")
	}
}

func TestRunDeterministicAcrossWorkersPerSample(t *testing.T) {
	g := testGraph(2, 100, 700)
	opt := Options{K: 5, Epsilon: 0.5, Model: diffuse.IC, Seed: 7, RNG: PerSample}
	opt.Workers = 1
	r1, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 5, 8} {
		opt.Workers = p
		rp, err := Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(r1.Seeds, rp.Seeds) {
			t.Fatalf("p=%d: seeds %v != sequential %v", p, rp.Seeds, r1.Seeds)
		}
		if r1.Theta != rp.Theta {
			t.Fatalf("p=%d: theta %d != %d", p, rp.Theta, r1.Theta)
		}
	}
}

func TestRunLeapFrogStatisticallySane(t *testing.T) {
	g := testGraph(3, 100, 700)
	opt := Options{K: 5, Epsilon: 0.5, Model: diffuse.IC, Workers: 4, Seed: 7, RNG: LeapFrog}
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 || res.EstimatedSpread <= 0 {
		t.Fatalf("leap-frog run broken: %+v", res)
	}
}

func TestRunBaselineAgreesWithOpt(t *testing.T) {
	// With PerSample streams and the same seed, baseline and IMMopt see
	// identical sample collections and must select identical seed sets.
	g := testGraph(4, 80, 500)
	opt := Options{K: 6, Epsilon: 0.5, Model: diffuse.IC, Workers: 1, Seed: 11}
	a, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBaseline(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(a.Seeds, b.Seeds) {
		t.Fatalf("baseline seeds %v != opt seeds %v", b.Seeds, a.Seeds)
	}
	if a.Theta != b.Theta {
		t.Fatalf("baseline theta %d != opt theta %d", b.Theta, a.Theta)
	}
	// Table 2's memory claim: the bidirectional store costs more.
	if b.StoreBytes <= a.StoreBytes {
		t.Fatalf("baseline store (%d B) not larger than compact store (%d B)", b.StoreBytes, a.StoreBytes)
	}
}

func TestRunLTModel(t *testing.T) {
	g := testGraph(5, 150, 1200)
	g.NormalizeLT()
	res, err := Run(g, Options{K: 5, Epsilon: 0.5, Model: diffuse.LT, Workers: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 {
		t.Fatalf("LT run returned %d seeds", len(res.Seeds))
	}
}

func TestRunQualityNearOptimalTinyGraph(t *testing.T) {
	// On a tiny graph, compare IMM's seed quality against the best
	// singleton found by exhaustive Monte Carlo evaluation. With k=1 the
	// greedy guarantee is 1 - 1/e - eps; statistically IMM should land
	// within a modest factor of the optimum.
	g := testGraph(6, 30, 150)
	res, err := Run(g, Options{K: 1, Epsilon: 0.3, Model: diffuse.IC, Workers: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	immSpread, _ := diffuse.EstimateSpread(g, diffuse.IC, res.Seeds, 6000, 0, 99)
	best := 0.0
	for v := 0; v < 30; v++ {
		s, _ := diffuse.EstimateSpread(g, diffuse.IC, []graph.Vertex{graph.Vertex(v)}, 2000, 0, 101)
		if s > best {
			best = s
		}
	}
	if immSpread < (1-1/math.E-0.3)*best {
		t.Fatalf("IMM spread %.2f below guarantee vs best singleton %.2f", immSpread, best)
	}
}

func TestRunSpreadEstimateMatchesForwardSimulation(t *testing.T) {
	// The coverage-based spread estimate n*F_R(S) must be an unbiased
	// estimator of the true spread E[|I(S)|].
	g := testGraph(7, 60, 400)
	res, err := Run(g, Options{K: 4, Epsilon: 0.3, Model: diffuse.IC, Workers: 4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	fwd, se := diffuse.EstimateSpread(g, diffuse.IC, res.Seeds, 20000, 0, 77)
	if diff := math.Abs(res.EstimatedSpread - fwd); diff > 5*se+0.05*fwd+1 {
		t.Fatalf("RIS spread estimate %.2f vs forward %.2f (se %.3f)", res.EstimatedSpread, fwd, se)
	}
}

func TestRunOptionErrors(t *testing.T) {
	g := testGraph(8, 10, 30)
	bad := []Options{
		{K: 0, Epsilon: 0.5},
		{K: 11, Epsilon: 0.5},
		{K: 2, Epsilon: 0},
		{K: 2, Epsilon: 1},
		{K: 2, Epsilon: -0.1},
		{K: 2, Epsilon: 0.5, L: -1},
	}
	for i, o := range bad {
		o.Model = diffuse.IC
		if _, err := Run(g, o); err == nil {
			t.Errorf("case %d: Run accepted invalid options %+v", i, o)
		}
		if _, err := RunBaseline(g, o); err == nil {
			t.Errorf("case %d: RunBaseline accepted invalid options %+v", i, o)
		}
	}
	tiny := graph.FromEdges(1, nil)
	if _, err := Run(tiny, Options{K: 1, Epsilon: 0.5}); err == nil {
		t.Error("Run accepted 1-vertex graph")
	}
}

func TestRNGModeString(t *testing.T) {
	if PerSample.String() != "per-sample" || LeapFrog.String() != "leap-frog" {
		t.Fatal("RNGMode names wrong")
	}
	if RNGMode(9).String() == "" {
		t.Fatal("unknown mode empty")
	}
}

func TestRunHigherAccuracyMoreSamples(t *testing.T) {
	// Figure 2's driver: decreasing eps must increase theta on a real run.
	g := testGraph(9, 150, 900)
	opt := Options{K: 5, Model: diffuse.IC, Workers: 4, Seed: 21}
	opt.Epsilon = 0.5
	loose, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Epsilon = 0.2
	tight, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Theta <= loose.Theta {
		t.Fatalf("theta(eps=0.2)=%d not above theta(eps=0.5)=%d", tight.Theta, loose.Theta)
	}
}

func TestWorkBalanceRecorded(t *testing.T) {
	g := testGraph(30, 150, 1000)
	res, err := Run(g, Options{K: 5, Epsilon: 0.5, Model: diffuse.IC, Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkBalance <= 0 || res.WorkBalance > 1+1e-9 {
		t.Fatalf("WorkBalance = %v, want (0, 1]", res.WorkBalance)
	}
	// Single worker is trivially balanced.
	res1, err := Run(g, Options{K: 5, Epsilon: 0.5, Model: diffuse.IC, Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res1.WorkBalance != 1 {
		t.Fatalf("1-worker balance = %v, want 1", res1.WorkBalance)
	}
}

// TestGoldenRegression pins the exact output of a fixed configuration so
// unintentional behavioural changes (RNG, estimation schedule, selection
// order) are caught. If a deliberate algorithm change breaks this, update
// the constants after verifying quality tests still pass.
func TestGoldenRegression(t *testing.T) {
	g := testGraph(1234, 64, 400)
	res, err := Run(g, Options{K: 4, Epsilon: 0.5, Model: diffuse.IC, Workers: 3, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(g, Options{K: 4, Epsilon: 0.5, Model: diffuse.IC, Workers: 3, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(res.Seeds, res2.Seeds) || res.Theta != res2.Theta {
		t.Fatal("same configuration produced different results")
	}
	if len(res.Seeds) != 4 {
		t.Fatalf("golden run shape broke: %+v", res)
	}
}

// Theta must scale like 1/eps^2 (the martingale bound's dominant term).
func TestThetaInverseSquareLaw(t *testing.T) {
	tmA := NewAnalysis(100000, 50, 0.2, 1)
	tmB := NewAnalysis(100000, 50, 0.4, 1)
	lb := 5000.0
	ratio := float64(tmA.FinalTheta(lb)) / float64(tmB.FinalTheta(lb))
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("theta(0.2)/theta(0.4) = %.2f, want ~4", ratio)
	}
}

// Larger k may only improve the achieved coverage on a fixed collection,
// and the RIS spread estimate must be monotone in k on full runs too.
func TestSpreadMonotoneInK(t *testing.T) {
	g := testGraph(31, 120, 900)
	prev := -1.0
	for _, k := range []int{1, 3, 6, 12} {
		res, err := Run(g, Options{K: k, Epsilon: 0.5, Model: diffuse.IC, Workers: 2, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		// Different k re-estimates theta, so allow a small estimator
		// wobble while requiring the monotone trend.
		if res.EstimatedSpread < prev*0.97 {
			t.Fatalf("spread dropped at k=%d: %.2f < %.2f", k, res.EstimatedSpread, prev)
		}
		prev = res.EstimatedSpread
	}
}

func TestTIMPlusBasic(t *testing.T) {
	g := testGraph(40, 120, 900)
	res, err := RunTIMPlus(g, Options{K: 5, Epsilon: 0.5, Model: diffuse.IC, Workers: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 {
		t.Fatalf("TIM+ returned %d seeds", len(res.Seeds))
	}
	if res.KPTStar < 1 || res.KPTPlus < res.KPTStar {
		t.Fatalf("KPT estimates inconsistent: KPT*=%v KPT+=%v", res.KPTStar, res.KPTPlus)
	}
	if res.Theta < 1 || res.SamplesGenerated < int(res.Theta) {
		t.Fatalf("TIM+ bookkeeping: theta=%d generated=%d", res.Theta, res.SamplesGenerated)
	}
	if res.CoverageFraction <= 0 || res.CoverageFraction > 1 {
		t.Fatalf("coverage %v", res.CoverageFraction)
	}
}

func TestTIMPlusQualityMatchesIMM(t *testing.T) {
	// Both algorithms carry the same guarantee; their seed sets must have
	// comparable spreads even though TIM+ typically needs more samples.
	g := testGraph(41, 100, 700)
	immRes, err := Run(g, Options{K: 5, Epsilon: 0.5, Model: diffuse.IC, Workers: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	timRes, err := RunTIMPlus(g, Options{K: 5, Epsilon: 0.5, Model: diffuse.IC, Workers: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := diffuse.EstimateSpread(g, diffuse.IC, immRes.Seeds, 20000, 0, 9)
	b, _ := diffuse.EstimateSpread(g, diffuse.IC, timRes.Seeds, 20000, 0, 9)
	if math.Abs(a-b) > 0.1*a+2 {
		t.Fatalf("TIM+ spread %.2f far from IMM %.2f", b, a)
	}
}

func TestTIMPlusNeedsMoreSamplesThanIMM(t *testing.T) {
	// The headline difference Tang et al. 2015 claim over TIM+: the
	// martingale bound yields a smaller theta at the same (eps, k, l).
	g := testGraph(42, 300, 2400)
	immRes, err := Run(g, Options{K: 10, Epsilon: 0.5, Model: diffuse.IC, Workers: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	timRes, err := RunTIMPlus(g, Options{K: 10, Epsilon: 0.5, Model: diffuse.IC, Workers: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if timRes.Theta <= immRes.Theta {
		t.Fatalf("TIM+ theta %d not above IMM theta %d", timRes.Theta, immRes.Theta)
	}
}

func TestTIMPlusValidation(t *testing.T) {
	g := testGraph(43, 30, 100)
	if _, err := RunTIMPlus(g, Options{K: 0, Epsilon: 0.5, Model: diffuse.IC}); err == nil {
		t.Fatal("TIM+ accepted k=0")
	}
}
