package imm

import (
	"math"

	"influmax/internal/stats"
)

// Analysis bundles the closed-form quantities of Tang et al.'s analysis
// (the f and f' referred to by Algorithm 2's comments in the paper). It is
// exported so the distributed implementation shares exactly the same
// estimation schedule.
type Analysis struct {
	n        float64
	k        int
	eps      float64
	epsPrime float64 // eps' = sqrt(2) * eps, used in the lower-bound search
	l        float64
	logNK    float64 // ln(n choose k)
	lnN      float64
	lambdaP  float64 // lambda' of Tang et al. eq. (9)
	lambdaS  float64 // lambda* of Tang et al. eq. (6)
	maxX     int     // number of lower-bound search iterations
}

// NewAnalysis precomputes the estimation constants for a graph of n
// vertices, seed count k, accuracy eps and confidence exponent l.
func NewAnalysis(n int, k int, eps, l float64) Analysis {
	m := Analysis{
		n:        float64(n),
		k:        k,
		eps:      eps,
		epsPrime: math.Sqrt2 * eps,
		l:        l,
	}
	// Tang et al. inflate the confidence so the union bound also covers
	// the log2(n) estimation iterations; the equivalent formulation adds
	// ln(log2 n) inside lambda', which is what the paper's Algorithm 2
	// references.
	m.lnN = math.Log(m.n)
	m.logNK = stats.LogBinomial(int64(n), int64(k))
	m.maxX = int(math.Max(1, math.Floor(math.Log2(m.n))-1))

	e := m.epsPrime
	m.lambdaP = (2 + 2.0/3.0*e) * (m.logNK + m.l*m.lnN + math.Log(math.Log2(m.n))) * m.n / (e * e)

	alpha := math.Sqrt(m.l*m.lnN + math.Ln2)
	oneMinusInvE := 1 - 1/math.E
	beta := math.Sqrt(oneMinusInvE * (m.logNK + m.l*m.lnN + math.Ln2))
	m.lambdaS = 2 * m.n * (oneMinusInvE*alpha + beta) * (oneMinusInvE*alpha + beta) / (eps * eps)
	return m
}

// N returns the vertex count as a float.
func (m Analysis) N() float64 { return m.n }

// MaxX returns the number of lower-bound search iterations (Algorithm 2's
// loop bound, log2(n)-1).
func (m Analysis) MaxX() int { return m.maxX }

// ThetaAt returns the number of samples required by lower-bound search
// iteration x (Algorithm 2's f(x, k, eps, |V|)): lambda' / (n / 2^x).
func (m Analysis) ThetaAt(x int) int64 {
	y := m.n / math.Pow(2, float64(x))
	return int64(math.Ceil(m.lambdaP / y))
}

// ThresholdAt returns the acceptance threshold on n*F for iteration x: the
// lower-bound search stops when n*F(S) >= (1 + eps') * n / 2^x.
func (m Analysis) ThresholdAt(x int) float64 {
	return (1 + m.epsPrime) * m.n / math.Pow(2, float64(x))
}

// LowerBound converts an accepted coverage estimate n*F into the
// martingale lower bound on OPT: LB = n*F / (1 + eps').
func (m Analysis) LowerBound(nF float64) float64 {
	return nF / (1 + m.epsPrime)
}

// FinalTheta returns theta = lambda* / LB (Algorithm 2's
// f'(k, eps, |V|, LB)).
func (m Analysis) FinalTheta(lb float64) int64 {
	if lb < 1 {
		lb = 1
	}
	return int64(math.Ceil(m.lambdaS / lb))
}
