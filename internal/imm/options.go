// Package imm implements the paper's primary contribution: parallel IMM.
//
// IMM (Tang et al., SIGMOD 2015) solves influence maximization with a
// (1 - 1/e - eps) approximation guarantee by (i) estimating the number
// theta of random reverse reachable sets needed via a martingale lower
// bound on OPT (Algorithm 2), (ii) generating theta samples (Algorithm 3),
// and (iii) greedily selecting k seeds that cover the maximum number of
// samples (Algorithm 4).
//
// This package provides three of the paper's four implementations:
//
//   - Run with Options.Workers == 1 is IMMopt, the optimized sequential
//     baseline with the compact one-directional sample store;
//   - Run with Options.Workers > 1 is IMMmt, the multithreaded
//     implementation with parallel sampling and the synchronization-free
//     vertex-interval seed selection of Algorithm 4;
//   - RunBaseline is "IMM", a faithful re-creation of the reference
//     implementation's bidirectional hypergraph strategy, used as the
//     Table 2/3 baseline.
//
// The fourth implementation, IMMdist, lives in internal/dist on top of the
// internal/mpi substrate.
package imm

import (
	"errors"
	"fmt"

	"influmax/internal/diffuse"
	"influmax/internal/metrics"
	"influmax/internal/par"
)

// RNGMode selects how sampling randomness is assigned to workers.
type RNGMode uint8

const (
	// PerSample derives an independent stream for every sample index, so
	// the generated collection is identical regardless of worker count.
	// This is the default because it makes parallel runs reproducible.
	PerSample RNGMode = iota
	// LeapFrog splits one global LCG sequence across workers with the Leap
	// Frog method, exactly as the paper's distributed implementation does
	// with TRNG. Statistically equivalent; the collection then depends on
	// the worker count, as in the original.
	LeapFrog
)

// String names the mode.
func (m RNGMode) String() string {
	switch m {
	case PerSample:
		return "per-sample"
	case LeapFrog:
		return "leap-frog"
	}
	return fmt.Sprintf("RNGMode(%d)", uint8(m))
}

// Schedule selects how sample indexes are partitioned onto workers during
// the sampling phase.
type Schedule uint8

const (
	// ScheduleDynamic uses chunked work-stealing with guided chunk sizing
	// (par.Dynamic): workers that finish their share early steal from the
	// stragglers, which matters when RRR set sizes are heavy-tailed. In
	// PerSample RNG mode the generated collection is byte-identical to the
	// static schedule (every sample's stream is derived from its global
	// index and output is merged in index order), so dynamic is the
	// default. LeapFrog mode silently falls back to static, because its
	// streams are worker-pinned.
	ScheduleDynamic Schedule = iota
	// ScheduleStatic uses the paper's static contiguous split
	// (par.Interval): worker rank of p gets samples [n*rank/p, n*(rank+1)/p).
	ScheduleStatic
)

// String names the schedule.
func (s Schedule) String() string {
	switch s {
	case ScheduleDynamic:
		return "dynamic"
	case ScheduleStatic:
		return "static"
	}
	return fmt.Sprintf("Schedule(%d)", uint8(s))
}

// Kernel selects the reverse-reachability sampling kernel.
type Kernel uint8

const (
	// KernelFused is the fused CSR frontier kernel (diffuse.FusedSampler):
	// batches of up to 64 samples expand level-synchronously in one pass
	// over the shared in-CSR, with visited sets packed one bit per lane
	// into a single word per vertex and edge coins pre-generated in blocks
	// from each sample's own SplitMix64 stream. In PerSample RNG mode the
	// generated collection is byte-identical to the scalar kernel (each
	// lane consumes its stream in scalar order — DESIGN.md §14), so fused
	// is the default. LeapFrog mode silently falls back to scalar, because
	// its worker-pinned streams interleave all of a worker's samples on
	// one sequence, which a batched expansion cannot reproduce.
	KernelFused Kernel = iota
	// KernelScalar is the per-sample reverse-BFS/walk kernel
	// (diffuse.Sampler) — the original paper kernel, kept as the
	// byte-identical equivalence oracle.
	KernelScalar
)

// String names the kernel, matching the CLI -kernel flag values.
func (k Kernel) String() string {
	switch k {
	case KernelFused:
		return "fused"
	case KernelScalar:
		return "scalar"
	}
	return fmt.Sprintf("Kernel(%d)", uint8(k))
}

// StoreKind selects the in-memory representation of the finished RRR
// sample collection — the store the final seed selection runs over.
type StoreKind uint8

const (
	// StoreFlat keeps the compact one-directional uint32 arena
	// (rrr.Collection): 4 bytes per entry plus 8 bytes per sample, binary-
	// searchable, the paper's Section 3.1 layout. This is the default.
	StoreFlat StoreKind = iota
	// StoreCoded transcodes the finished samples into the byte-coded store
	// (rrr.CodedCollection): frequency-ordered relabeling plus delta+varint
	// payloads, >= 3x smaller on clustered graphs at a bounded selection
	// slowdown (DESIGN.md §13). Selection output is byte-identical to
	// StoreFlat; only the memory/time trade-off changes. Estimation and
	// sampling always run on the flat arena — the transcode happens once,
	// after the final theta samples exist.
	StoreCoded
)

// String names the store kind, matching the CLI -store flag values.
func (s StoreKind) String() string {
	switch s {
	case StoreFlat:
		return "flat"
	case StoreCoded:
		return "coded"
	}
	return fmt.Sprintf("StoreKind(%d)", uint8(s))
}

// Options configures an IMM run.
type Options struct {
	// K is the seed-set cardinality.
	K int
	// Epsilon is the accuracy parameter in (0, 1); the approximation
	// guarantee is 1 - 1/e - Epsilon. Smaller is more accurate and more
	// expensive (Figure 2).
	Epsilon float64
	// Model is the diffusion model (IC or LT).
	Model diffuse.Model
	// Workers is the number of threads; <= 0 uses GOMAXPROCS.
	Workers int
	// Seed feeds the pseudorandom streams.
	Seed uint64
	// RNG selects the stream-splitting discipline.
	RNG RNGMode
	// Schedule selects the sampling-loop schedule (dynamic work-stealing by
	// default; see ScheduleDynamic for when the two produce identical
	// collections).
	Schedule Schedule
	// Kernel selects the sampling kernel (fused CSR frontier batches by
	// default; see KernelFused for when the two produce identical
	// collections — always, in PerSample RNG mode).
	Kernel Kernel
	// Store selects the representation of the finished sample collection
	// (flat arena by default; StoreCoded trades decode time during seed
	// selection for a >= 3x smaller store). Seeds are identical either way.
	Store StoreKind
	// L is the confidence exponent: the guarantee holds with probability
	// at least 1 - 1/n^L. Zero means the customary 1.
	L float64
	// Metrics, when non-nil, receives engine-internal instrumentation
	// during the run: the "rrr/samples" and "rrr/entries" counters and the
	// "rrr/size" histogram of RRR-set cardinalities (the sampling-work
	// distribution behind the paper's load-balance discussion). Recording
	// is atomic and allocation-free; nil disables it entirely.
	Metrics *metrics.Registry
}

// withDefaults returns a copy of o with zero values resolved.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = par.DefaultWorkers()
	}
	if o.L == 0 {
		o.L = 1
	}
	return o
}

// validate reports the first configuration error for a graph of n vertices.
func (o Options) validate(n int) error {
	if n < 2 {
		return errors.New("imm: graph must have at least 2 vertices")
	}
	if o.K < 1 {
		return fmt.Errorf("imm: k = %d, want k >= 1", o.K)
	}
	if o.K > n {
		return fmt.Errorf("imm: k = %d exceeds vertex count %d", o.K, n)
	}
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		return fmt.Errorf("imm: epsilon = %v, want 0 < eps < 1", o.Epsilon)
	}
	if o.L < 0 {
		return fmt.Errorf("imm: l = %v, want l > 0", o.L)
	}
	if o.Schedule > ScheduleStatic {
		return fmt.Errorf("imm: unknown schedule %d", uint8(o.Schedule))
	}
	if o.Kernel > KernelScalar {
		return fmt.Errorf("imm: unknown kernel %d", uint8(o.Kernel))
	}
	if o.Store > StoreCoded {
		return fmt.Errorf("imm: unknown store kind %d", uint8(o.Store))
	}
	return nil
}
