package imm

import (
	"fmt"
	"math"

	"influmax/internal/graph"
	"influmax/internal/par"
	"influmax/internal/rng"
	"influmax/internal/rrr"
)

// Sketch-space query diversity (ROADMAP item 4, DESIGN.md §17): the theta
// RRR samples behind SelectSeeds answer more questions than plain top-k.
// Query captures the four shapes immserve exposes — budgeted/cost-aware
// selection, targeted (audience-rooted) influence, competitive selection
// against a rival's blocked seeds, and direct spread estimation of a given
// set — and SelectQueryIndexed / SelectQuerySketch run any combination of
// them over the flat and byte-coded stores with the exact loop discipline
// of SelectSeedsIndexed / SelectSeedsSketch. A zero-value Query (only K
// set) is byte-identical to the plain selection at any worker count.

// Query is one sketch-space selection request.
type Query struct {
	// K bounds the seed count (budgeted selections may stop earlier when
	// no remaining vertex is affordable).
	K int
	// Costs is the per-vertex selection cost (len == NumVertices; every
	// entry positive and finite). nil with Budget > 0 means unit costs.
	// Setting Costs requires Budget > 0.
	Costs []float64
	// Budget caps the total cost of the selected set; 0 disables
	// cost-aware selection. Under a budget the greedy argmax ranks
	// vertices by marginal-gain-per-cost (ties: larger gain, then lower
	// vertex id) — the CELF cost-benefit rule, exact here because sketch
	// counters are exact marginal coverage gains.
	Budget float64
	// Audience, when non-empty, restricts the objective to influence ON
	// these vertices: only samples rooted in the audience count (targeted
	// influence — a sample's root is the vertex whose activation the
	// sample witnesses). Requires sample roots (PerSample RNG builds).
	Audience []graph.Vertex
	// Blocked lists a rival's seeds: they are excluded from candidacy and
	// the samples they already cover are purged before greedy starts
	// (competitive selection — gains count only incremental coverage).
	Blocked []graph.Vertex
}

// Plain reports whether q is exactly the classic top-k selection.
func (q Query) Plain() bool {
	return q.Budget == 0 && len(q.Costs) == 0 && len(q.Audience) == 0 && len(q.Blocked) == 0
}

// Budgeted reports whether cost-aware selection is active.
func (q Query) Budgeted() bool { return q.Budget > 0 || len(q.Costs) > 0 }

// Validate checks q against a store of n vertices.
func (q Query) Validate(n int) error {
	if q.K < 1 || q.K > n {
		return fmt.Errorf("imm: query k = %d out of [1, %d]", q.K, n)
	}
	if len(q.Costs) > 0 {
		if q.Budget <= 0 {
			return fmt.Errorf("imm: query costs need a positive budget")
		}
		if len(q.Costs) != n {
			return fmt.Errorf("imm: query has %d costs, store has %d vertices", len(q.Costs), n)
		}
		for v, c := range q.Costs {
			if !(c > 0) || math.IsInf(c, 1) {
				return fmt.Errorf("imm: cost of vertex %d is %v, want positive and finite", v, c)
			}
		}
	}
	if q.Budget < 0 || math.IsInf(q.Budget, 0) || math.IsNaN(q.Budget) {
		return fmt.Errorf("imm: query budget %v, want finite and >= 0", q.Budget)
	}
	for _, v := range q.Audience {
		if int(v) >= n {
			return fmt.Errorf("imm: audience vertex %d out of range (n = %d)", v, n)
		}
	}
	for _, v := range q.Blocked {
		if int(v) >= n {
			return fmt.Errorf("imm: blocked vertex %d out of range (n = %d)", v, n)
		}
	}
	return nil
}

// QueryResult is one query's outcome.
type QueryResult struct {
	// Seeds is the selected set in greedy order; Gains[i] is Seeds[i]'s
	// marginal covered-sample count (over the eligible samples).
	Seeds []graph.Vertex
	Gains []int64
	// Covered is the eligible samples the seeds cover (excluding anything
	// a blocked rival had already covered); Eligible is the samples that
	// pass the audience filter (the whole store without one). The spread
	// estimate over the audience is n * Covered / TotalSamples.
	Covered  int64
	Eligible int64
	// SpentBudget is the summed cost of Seeds (len(Seeds) when unit
	// costs; 0 for non-budgeted queries).
	SpentBudget float64
}

// RootAt re-derives the root vertex of global sample `index` for a
// PerSample-mode build over n vertices and stream seed `seed`: the root is
// the sample stream's first draw, so it is a pure function of (seed,
// index, n) and never needs storing. Valid across dynamic-sketch epochs —
// incremental maintenance regenerates samples with their original streams.
func RootAt(seed, index uint64, n int) graph.Vertex {
	return graph.Vertex(rng.New(rng.Derive(seed, index)).Intn(n))
}

// RootsRange derives the roots of global samples [0, count) with p
// workers — the root column of a single-process sketch.
func RootsRange(seed uint64, count, n, p int) []graph.Vertex {
	roots := make([]graph.Vertex, count)
	par.ForEach(count, p, func(_, lo, hi int) {
		gen := new(rng.SplitMix64)
		r := rng.New(gen)
		for i := lo; i < hi; i++ {
			gen.Reseed(seed, uint64(i))
			roots[i] = graph.Vertex(r.Intn(n))
		}
	})
	return roots
}

// RootsAt derives the roots of the given global sample ids (a shard's
// local-to-global id column) with p workers.
func RootsAt(seed uint64, ids []int64, n, p int) []graph.Vertex {
	roots := make([]graph.Vertex, len(ids))
	par.ForEach(len(ids), p, func(_, lo, hi int) {
		gen := new(rng.SplitMix64)
		r := rng.New(gen)
		for i := lo; i < hi; i++ {
			gen.Reseed(seed, uint64(ids[i]))
			roots[i] = graph.Vertex(r.Intn(n))
		}
	})
	return roots
}

// ratioBetter is the budgeted argmax's total order: gain-per-cost
// descending, then exact gain descending, then vertex ascending. The order
// is total and scanned ascending by vertex within each worker interval, so
// the winner is independent of the worker count; and because float64
// division by a positive constant is monotone (non-strict) in the integer
// gain, uniform costs reduce the order to the plain (gain, vertex) one —
// the plain/budgeted equivalence the property tests pin.
func ratioBetter(r1 float64, g1 int64, v1 int, r2 float64, g2 int64, v2 int) bool {
	if r1 != r2 {
		return r1 > r2
	}
	if g1 != g2 {
		return g1 > g2
	}
	return v1 < v2
}

// queryState is the store-independent part of a query run: eligibility,
// counters, the argmax, and the greedy bookkeeping. The store-specific
// purge is injected by the two entry points.
type queryState struct {
	n, p    int
	q       Query
	counter []int32
	covered rrr.Bitset
	chosen  []bool

	eligible int64
	seeds    []graph.Vertex
	gains    []int64
	coverCnt int64
	spent    float64

	bests []int64
	args  []int
}

// markAudience pre-covers every sample whose root is outside the audience
// so neither the counters nor the purges ever see it, and counts the
// eligible remainder. Returns the excluded mask for flat-store counting
// (nil when no audience filter is active).
func (st *queryState) markAudience(roots []graph.Vertex, count int) ([]bool, error) {
	if len(st.q.Audience) == 0 {
		st.eligible = int64(count)
		return nil, nil
	}
	if len(roots) != count {
		return nil, fmt.Errorf("imm: audience query needs %d sample roots, have %d", count, len(roots))
	}
	inAud := make([]bool, st.n)
	for _, v := range st.q.Audience {
		inAud[v] = true
	}
	excluded := make([]bool, count)
	for j, r := range roots {
		if inAud[r] {
			st.eligible++
			continue
		}
		excluded[j] = true
		st.covered.Set(j)
	}
	return excluded, nil
}

// argmax picks the next seed: the plain integer argmax of
// SelectSeedsIndexed, or the budgeted ratio argmax when a budget is
// active. Returns -1 when no candidate remains (all chosen, or none
// affordable).
func (st *queryState) argmax(costs []float64) int {
	if costs == nil {
		par.Run(st.p, func(rank int) {
			vl, vh := par.Interval(st.n, st.p, rank)
			best, arg := int64(-1), -1
			for v := vl; v < vh; v++ {
				if st.chosen[v] {
					continue
				}
				if c := int64(st.counter[v]); c > best {
					best, arg = c, v
				}
			}
			st.bests[rank], st.args[rank] = best, arg
		})
		_, arg := par.ReduceMax(st.bests, st.args)
		return arg
	}
	type cand struct {
		ratio float64
		gain  int64
		arg   int
	}
	cands := make([]cand, st.p)
	par.Run(st.p, func(rank int) {
		vl, vh := par.Interval(st.n, st.p, rank)
		best := cand{arg: -1}
		for v := vl; v < vh; v++ {
			if st.chosen[v] || st.spent+costs[v] > st.q.Budget {
				continue
			}
			g := int64(st.counter[v])
			r := float64(g) / costs[v]
			if best.arg < 0 || ratioBetter(r, g, v, best.ratio, best.gain, best.arg) {
				best = cand{ratio: r, gain: g, arg: v}
			}
		}
		cands[rank] = best
	})
	win := cand{arg: -1}
	for _, c := range cands {
		if c.arg < 0 {
			continue
		}
		if win.arg < 0 || ratioBetter(c.ratio, c.gain, c.arg, win.ratio, win.gain, win.arg) {
			win = c
		}
	}
	return win.arg
}

// resolveCosts returns the effective cost vector (nil when the query is
// not budgeted; unit costs when budgeted without an explicit vector).
func (st *queryState) resolveCosts() []float64 {
	if !st.q.Budgeted() {
		return nil
	}
	if st.q.Costs != nil {
		return st.q.Costs
	}
	unit := make([]float64, st.n)
	for v := range unit {
		unit[v] = 1
	}
	return unit
}

// run drives the greedy loop; purge(v) must mark v's still-uncovered
// samples covered and decrement the counters (the store-specific part).
func (st *queryState) run(purge func(v graph.Vertex)) {
	costs := st.resolveCosts()
	// Competitive selection: the rival's seeds are off the table and the
	// samples they cover yield no gain to anyone.
	for _, b := range st.q.Blocked {
		if st.chosen[b] {
			continue
		}
		st.chosen[b] = true
		if st.counter[b] > 0 {
			purge(b)
		}
	}
	for len(st.seeds) < st.q.K {
		arg := st.argmax(costs)
		if arg < 0 {
			break
		}
		v := graph.Vertex(arg)
		gain := int64(st.counter[v])
		st.seeds = append(st.seeds, v)
		st.gains = append(st.gains, gain)
		st.chosen[arg] = true
		st.coverCnt += gain
		if costs != nil {
			st.spent += costs[arg]
		}
		if gain == 0 {
			continue // padding seed: nothing to purge
		}
		purge(v)
	}
}

func (st *queryState) result() *QueryResult {
	return &QueryResult{
		Seeds: st.seeds, Gains: st.gains,
		Covered: st.coverCnt, Eligible: st.eligible, SpentBudget: st.spent,
	}
}

func newQueryState(n, count, p int, q Query) *queryState {
	if p <= 0 {
		p = par.DefaultWorkers()
	}
	if p > n {
		p = n
	}
	return &queryState{
		n: n, p: p, q: q,
		counter: make([]int32, n),
		covered: rrr.NewBitset(count),
		chosen:  make([]bool, n),
		seeds:   make([]graph.Vertex, 0, q.K),
		gains:   make([]int64, 0, q.K),
		bests:   make([]int64, p),
		args:    make([]int, p),
	}
}

// SelectQueryIndexed answers q over a flat collection and its incidence
// index. roots is the per-sample root column (see RootAt); it is required
// only for audience-filtered queries and may be nil otherwise. A plain q
// returns exactly SelectSeedsIndexed's seeds, byte-identically, at any
// worker count.
func SelectQueryIndexed(col *rrr.Collection, idx *rrr.Index, roots []graph.Vertex, q Query, p int) (*QueryResult, error) {
	n := col.NumVertices()
	if err := q.Validate(n); err != nil {
		return nil, err
	}
	st := newQueryState(n, col.Count(), p, q)
	excluded, err := st.markAudience(roots, col.Count())
	if err != nil {
		return nil, err
	}
	par.Run(st.p, func(rank int) {
		vl, vh := par.Interval(n, st.p, rank)
		col.CountRange(st.counter, excluded, graph.Vertex(vl), graph.Vertex(vh))
	})
	var matched []int32
	st.run(func(v graph.Vertex) {
		matched = matched[:0]
		for _, j := range idx.SamplesOf(v) {
			if st.covered.Get(int(j)) {
				continue
			}
			st.covered.Set(int(j))
			matched = append(matched, j)
		}
		par.Run(st.p, func(rank int) {
			vl, vh := par.Interval(n, st.p, rank)
			for _, j := range matched {
				for _, u := range col.RangeOf(int(j), graph.Vertex(vl), graph.Vertex(vh)) {
					st.counter[u]--
				}
			}
		})
	})
	return st.result(), nil
}

// SelectQuerySketch answers q over a resident byte-coded sketch,
// copy-on-read like SelectSeedsSketch: col, idx and roots are shared
// immutable state; all mutable state is query-private, so any number of
// concurrent queries never disturb the sketch or each other. A plain q
// returns exactly SelectSeedsSketch's seeds, byte-identically.
func SelectQuerySketch(col *rrr.CodedCollection, idx *rrr.Index, roots []graph.Vertex, q Query, p int) (*QueryResult, error) {
	n := col.NumVertices()
	if err := q.Validate(n); err != nil {
		return nil, err
	}
	st := newQueryState(n, col.Count(), p, q)
	excluded, err := st.markAudience(roots, col.Count())
	if err != nil {
		return nil, err
	}
	decs := make([][]int32, st.p)
	fold := func() {
		par.Run(st.p, func(rank int) {
			vl, vh := par.Interval(n, st.p, rank)
			for _, d := range decs {
				if d == nil {
					continue
				}
				for v := vl; v < vh; v++ {
					if d[v] != 0 {
						st.counter[v] += d[v]
						d[v] = 0
					}
				}
			}
		})
	}
	if excluded == nil {
		// No audience filter: the degree column is exactly the population
		// count, as in SelectSeedsSketch.
		par.Run(st.p, func(rank int) {
			vl, vh := par.Interval(n, st.p, rank)
			for v := vl; v < vh; v++ {
				st.counter[v] = int32(idx.Degree(graph.Vertex(v)))
			}
		})
	} else {
		// Audience filter: recount over the eligible samples only — a
		// parallel decode into per-worker columns, folded without atomics
		// (sums commute, the §13 determinism argument).
		par.ForEach(col.Count(), st.p, func(rank, lo, hi int) {
			d := decs[rank]
			if d == nil {
				d = make([]int32, n)
				decs[rank] = d
			}
			for j := lo; j < hi; j++ {
				if !excluded[j] {
					col.AccumMembers(j, d)
				}
			}
		})
		fold()
	}
	var matched []int32
	st.run(func(v graph.Vertex) {
		matched = matched[:0]
		for _, j := range idx.SamplesOf(v) {
			if st.covered.Get(int(j)) {
				continue
			}
			st.covered.Set(int(j))
			matched = append(matched, j)
		}
		par.ForEach(len(matched), st.p, func(rank, lo, hi int) {
			d := decs[rank]
			if d == nil {
				d = make([]int32, n)
				decs[rank] = d
			}
			for _, j := range matched[lo:hi] {
				col.AccumMembers(int(j), d)
			}
		})
		// Purge folds subtract; negate the columns in place first.
		par.Run(st.p, func(rank int) {
			vl, vh := par.Interval(n, st.p, rank)
			for _, d := range decs {
				if d == nil {
					continue
				}
				for v := vl; v < vh; v++ {
					if d[v] != 0 {
						st.counter[v] -= d[v]
						d[v] = 0
					}
				}
			}
		})
	})
	return st.result(), nil
}

// CoverageOf is the exposed CountAll estimator: the number of samples a
// given seed set covers, read off the incidence index without decoding a
// single sample. sampleCount is the store's sample count; roots and
// audience optionally restrict the estimate to audience-rooted samples
// (eligible reports how many pass the filter; it equals sampleCount
// without one). The unbiased spread estimate is n * covered / sampleCount
// — and n * covered/sampleCount restricted-to-audience for targeted
// queries, since roots are uniform over all n vertices.
func CoverageOf(sampleCount int, idx *rrr.Index, roots []graph.Vertex, seeds, audience []graph.Vertex) (covered, eligible int64, err error) {
	n := idx.NumVertices()
	for _, v := range seeds {
		if int(v) >= n {
			return 0, 0, fmt.Errorf("imm: seed vertex %d out of range (n = %d)", v, n)
		}
	}
	for _, v := range audience {
		if int(v) >= n {
			return 0, 0, fmt.Errorf("imm: audience vertex %d out of range (n = %d)", v, n)
		}
	}
	seen := rrr.NewBitset(sampleCount)
	if len(audience) > 0 {
		if len(roots) != sampleCount {
			return 0, 0, fmt.Errorf("imm: audience estimate needs %d sample roots, have %d", sampleCount, len(roots))
		}
		inAud := make([]bool, n)
		for _, v := range audience {
			inAud[v] = true
		}
		for j, r := range roots {
			if inAud[r] {
				eligible++
			} else {
				seen.Set(j)
			}
		}
	} else {
		eligible = int64(sampleCount)
	}
	for _, s := range seeds {
		for _, j := range idx.SamplesOf(s) {
			if seen.Get(int(j)) {
				continue
			}
			seen.Set(int(j))
			covered++
		}
	}
	return covered, eligible, nil
}
