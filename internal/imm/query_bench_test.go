package imm

import (
	"testing"

	"influmax/internal/graph"
	"influmax/internal/rrr"
)

// BenchmarkSelectBudgeted prices the budgeted (cost-aware CELF) selection
// loop against the plain top-k loop it extends, on the soc-LiveJournal1
// analog with the same sketch sizing the other gate benchmarks use. Both
// sub-benchmarks run over a prebuilt index so the numbers isolate the
// selection loops themselves: "plain" is the k-argmax purge loop,
// "budgeted" adds the lazy ratio heap, per-vertex costs and the budget
// admission check. The pair rides the CI bench-gate baseline — a
// regression in "budgeted" that leaves "plain" flat points at the heap,
// not the shared purge machinery.
func BenchmarkSelectBudgeted(b *testing.B) {
	g := benchGraph(b, func(g *graph.Graph) { g.AssignWeightedCascade() })
	n := g.NumVertices()
	const samples = 200000
	const benchSeed = 3
	col := rrrCollection(g, benchSeed, samples)
	const workers = 8
	idx := rrr.BuildIndex(col, workers)
	k := 100
	if k > n {
		k = n
	}
	costs := make([]float64, n)
	for v := range costs {
		costs[v] = float64(1 + v%7)
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SelectQueryIndexed(col, idx, nil, Query{K: k}, workers); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("budgeted", func(b *testing.B) {
		q := Query{K: k, Costs: costs, Budget: float64(k)}
		for i := 0; i < b.N; i++ {
			res, err := SelectQueryIndexed(col, idx, nil, q, workers)
			if err != nil {
				b.Fatal(err)
			}
			if res.SpentBudget > q.Budget {
				b.Fatalf("spent %.1f over budget %.1f", res.SpentBudget, q.Budget)
			}
		}
	})
}
