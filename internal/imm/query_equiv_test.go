package imm

import (
	"fmt"
	"math"
	"slices"
	"testing"

	"influmax/internal/baseline"
	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/rrr"
)

// The query-diversity differential suite (DESIGN.md §17): over the three
// fixed-seed graphs and the IC/LT/WC configurations of the store
// equivalence gate, every query mode is pinned two ways. First, the flat
// single-worker run is compared against the oracle-generic references in
// internal/baseline, instantiated with the exact CoverageOf estimator — an
// exact coverage oracle makes the exhaustive greedy, CELF and the sketch
// loop answers identical, not merely close. Second, the coded store and
// the four-worker runs are required byte-identical to that pinned flat
// run, which transfers the baseline pinning across the whole
// store × worker matrix.

type queryConfig struct {
	name  string
	model diffuse.Model
	prep  func(*graph.Graph)
}

var queryConfigs = []queryConfig{
	{"IC", diffuse.IC, func(*graph.Graph) {}},
	{"LT", diffuse.LT, func(g *graph.Graph) { g.NormalizeLT() }},
	{"WC", diffuse.IC, func(g *graph.Graph) { g.AssignWeightedCascade() }},
}

var queryGraphs = []struct {
	seed uint64
	n, m int
}{
	{101, 150, 1200},
	{202, 80, 250},
	{303, 300, 3000},
}

// queryStores builds the flat and coded stores of one IMM run plus the
// derived root column. Both runs use PerSample RNG, so they hold the same
// samples under different representations.
func queryStores(t *testing.T, gc struct {
	seed uint64
	n, m int
}, cfg queryConfig) (*graph.Graph, *rrr.Collection, *rrr.Index, *rrr.CodedCollection, *rrr.Index, []graph.Vertex) {
	t.Helper()
	g := testGraph(gc.seed, gc.n, gc.m)
	cfg.prep(g)
	opt := Options{K: 6, Epsilon: 0.5, Model: cfg.model, Workers: 4, Seed: gc.seed, Store: StoreFlat}
	_, col, idx, err := RunCollect(g, opt)
	if err != nil {
		t.Fatalf("flat build: %v", err)
	}
	opt.Store = StoreCoded
	_, ccol, cidx, err := RunSketch(g, opt)
	if err != nil {
		t.Fatalf("coded build: %v", err)
	}
	if ccol.Count() != col.Count() {
		t.Fatalf("stores disagree on sample count: %d vs %d", ccol.Count(), col.Count())
	}
	roots := RootsRange(gc.seed, col.Count(), g.NumVertices(), 4)
	return g, col, idx, ccol, cidx, roots
}

// queryCosts is the deterministic integral cost vector of the suite.
func queryCosts(n int) []float64 {
	costs := make([]float64, n)
	for v := range costs {
		costs[v] = float64(1 + (v*2654435761)%4)
	}
	return costs
}

func sameResult(a, b *QueryResult) bool {
	return slices.Equal(a.Seeds, b.Seeds) && slices.Equal(a.Gains, b.Gains) &&
		a.Covered == b.Covered && a.Eligible == b.Eligible && a.SpentBudget == b.SpentBudget
}

func TestQueryDifferential(t *testing.T) {
	for _, gc := range queryGraphs {
		for _, cfg := range queryConfigs {
			t.Run(fmt.Sprintf("g%d-%s", gc.seed, cfg.name), func(t *testing.T) {
				g, col, idx, ccol, cidx, roots := queryStores(t, gc, cfg)
				n := g.NumVertices()
				count := col.Count()
				const k = 6

				costs := queryCosts(n)
				audience := make([]graph.Vertex, 0, n/3+1)
				for v := 0; v < n; v += 3 {
					audience = append(audience, graph.Vertex(v))
				}
				plainSeeds, plainCov := SelectSeedsIndexed(col, idx, k, 1)
				blocked := plainSeeds[:2]

				queries := map[string]Query{
					"plain":    {K: k},
					"budgeted": {K: k, Costs: costs, Budget: 6},
					"targeted": {K: k, Audience: audience},
					"blocked":  {K: k, Blocked: blocked},
				}

				// Reference: flat store, one worker.
				ref := map[string]*QueryResult{}
				for name, q := range queries {
					qr, err := SelectQueryIndexed(col, idx, roots, q, 1)
					if err != nil {
						t.Fatalf("%s flat w=1: %v", name, err)
					}
					ref[name] = qr
				}

				// Byte-identity across the store × worker matrix.
				for name, q := range queries {
					for _, p := range []int{1, 4} {
						fq, err := SelectQueryIndexed(col, idx, roots, q, p)
						if err != nil {
							t.Fatalf("%s flat w=%d: %v", name, p, err)
						}
						sq, err := SelectQuerySketch(ccol, cidx, roots, q, p)
						if err != nil {
							t.Fatalf("%s coded w=%d: %v", name, p, err)
						}
						if !sameResult(fq, ref[name]) {
							t.Fatalf("%s flat w=%d diverges from w=1: %+v vs %+v", name, p, fq, ref[name])
						}
						if !sameResult(sq, ref[name]) {
							t.Fatalf("%s coded w=%d diverges from flat: %+v vs %+v", name, p, sq, ref[name])
						}
					}
				}

				// Plain query == plain selection, on both stores.
				qr := ref["plain"]
				if !slices.Equal(qr.Seeds, plainSeeds) || qr.Covered != plainCov {
					t.Fatalf("plain query (%v, %d) != SelectSeedsIndexed (%v, %d)",
						qr.Seeds, qr.Covered, plainSeeds, plainCov)
				}
				if qr.Eligible != int64(count) || qr.SpentBudget != 0 {
					t.Fatalf("plain query bookkeeping: eligible %d (want %d), spent %v (want 0)",
						qr.Eligible, count, qr.SpentBudget)
				}
				skSeeds, skCov := SelectSeedsSketch(ccol, cidx, k, 4)
				if !slices.Equal(skSeeds, plainSeeds) || skCov != plainCov {
					t.Fatalf("SelectSeedsSketch (%v, %d) != flat (%v, %d)", skSeeds, skCov, plainSeeds, plainCov)
				}

				// Exact coverage oracle over the incidence index — the sketch
				// loop's own objective, so the references must match exactly.
				oracle := func(seeds []graph.Vertex) float64 {
					covered, _, err := CoverageOf(count, idx, nil, seeds, nil)
					if err != nil {
						t.Fatalf("oracle: %v", err)
					}
					return float64(covered)
				}

				// Budgeted vs both cost-benefit references.
				qb := ref["budgeted"]
				for refName, fn := range map[string]func(int, []float64, float64, int, baseline.SpreadOracle) ([]graph.Vertex, []float64, error){
					"BudgetedGreedy": baseline.BudgetedGreedy,
					"CELFBudgeted":   baseline.CELFBudgeted,
				} {
					wantSeeds, wantGains, err := fn(n, costs, 6, k, oracle)
					if err != nil {
						t.Fatalf("%s: %v", refName, err)
					}
					if !slices.Equal(qb.Seeds, wantSeeds) {
						t.Fatalf("budgeted seeds %v != %s %v", qb.Seeds, refName, wantSeeds)
					}
					for i, gain := range qb.Gains {
						if float64(gain) != wantGains[i] {
							t.Fatalf("budgeted gain[%d] = %d != %s %v", i, gain, refName, wantGains[i])
						}
					}
				}
				spent := 0.0
				for _, s := range qb.Seeds {
					spent += costs[s]
				}
				if qb.SpentBudget != spent || spent > 6 {
					t.Fatalf("budgeted spent %v (recomputed %v, budget 6)", qb.SpentBudget, spent)
				}

				// Targeted vs the exhaustive greedy over the audience-filtered
				// estimator; Eligible must equal the direct root census.
				targetOracle := func(seeds []graph.Vertex) float64 {
					covered, _, err := CoverageOf(count, idx, roots, seeds, audience)
					if err != nil {
						t.Fatalf("target oracle: %v", err)
					}
					return float64(covered)
				}
				qt := ref["targeted"]
				wantSeeds, wantGains := baseline.GreedyOracle(n, k, nil, targetOracle)
				if !slices.Equal(qt.Seeds, wantSeeds) {
					t.Fatalf("targeted seeds %v != greedy reference %v", qt.Seeds, wantSeeds)
				}
				for i, gain := range qt.Gains {
					if float64(gain) != wantGains[i] {
						t.Fatalf("targeted gain[%d] = %d != reference %v", i, gain, wantGains[i])
					}
				}
				eligible := int64(0)
				inAud := make([]bool, n)
				for _, v := range audience {
					inAud[v] = true
				}
				for _, r := range roots {
					if inAud[r] {
						eligible++
					}
				}
				if qt.Eligible != eligible {
					t.Fatalf("targeted eligible %d != root census %d", qt.Eligible, eligible)
				}

				// Blocked vs the banned greedy with the rival's coverage folded
				// into (and subtracted back out of) the oracle.
				blockedCov := oracle(blocked)
				blockedOracle := func(seeds []graph.Vertex) float64 {
					all := append(append(make([]graph.Vertex, 0, len(seeds)+len(blocked)), blocked...), seeds...)
					return oracle(all) - blockedCov
				}
				qc := ref["blocked"]
				wantSeeds, wantGains = baseline.GreedyOracle(n, k, blocked, blockedOracle)
				if !slices.Equal(qc.Seeds, wantSeeds) {
					t.Fatalf("blocked seeds %v != greedy reference %v", qc.Seeds, wantSeeds)
				}
				for i, gain := range qc.Gains {
					if float64(gain) != wantGains[i] {
						t.Fatalf("blocked gain[%d] = %d != reference %v", i, gain, wantGains[i])
					}
				}
				for _, s := range qc.Seeds {
					if slices.Contains(blocked, s) {
						t.Fatalf("blocked vertex %d selected: %v", s, qc.Seeds)
					}
				}

				// Covered always telescopes from the gains.
				for name, r := range ref {
					sum := int64(0)
					for _, gain := range r.Gains {
						sum += gain
					}
					if sum != r.Covered {
						t.Fatalf("%s: gains sum %d != covered %d", name, sum, r.Covered)
					}
				}
			})
		}
	}
}

// TestQueryRootsIdentity checks the PerSample root derivation against the
// store itself: RootAt is consistent with RootsRange, and every derived
// root is a member of its own sample (the RR construction starts at the
// root), verified through the incidence index of both stores.
func TestQueryRootsIdentity(t *testing.T) {
	gc := queryGraphs[1]
	_, col, idx, _, cidx, roots := queryStores(t, gc, queryConfigs[0])
	n := col.NumVertices()
	for j := range roots {
		if want := RootAt(gc.seed, uint64(j), n); roots[j] != want {
			t.Fatalf("roots[%d] = %d, RootAt says %d", j, roots[j], want)
		}
	}
	for _, index := range []*rrr.Index{idx, cidx} {
		for j, r := range roots {
			if !slices.Contains(index.SamplesOf(r), int32(j)) {
				t.Fatalf("sample %d does not contain its root %d", j, r)
			}
		}
		// The coded index speaks relabeled ids internally but SamplesOf takes
		// original vertex ids, so one loop body serves both stores.
	}
}

// TestCoverageOfMatchesMonteCarlo pins the exposed estimator against the
// forward-simulation oracle: n * covered / count must land within a few
// combined standard errors of the Monte Carlo spread for the selected
// seeds, under every model configuration.
func TestCoverageOfMatchesMonteCarlo(t *testing.T) {
	gc := queryGraphs[0]
	for _, cfg := range queryConfigs {
		g, col, idx, _, _, _ := queryStores(t, gc, cfg)
		n := g.NumVertices()
		seeds, _ := SelectSeedsIndexed(col, idx, 5, 4)
		covered, eligible, err := CoverageOf(col.Count(), idx, nil, seeds, nil)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if eligible != int64(col.Count()) {
			t.Fatalf("%s: eligible %d != count %d", cfg.name, eligible, col.Count())
		}
		est := float64(n) * float64(covered) / float64(col.Count())
		mc, se := diffuse.EstimateSpread(g, cfg.model, seeds, 4000, 4, gc.seed^0xe7a1)
		// RIS-side standard error: n * sqrt(p(1-p)/count) <= n/(2 sqrt(count)).
		risSE := float64(n) / (2 * math.Sqrt(float64(col.Count())))
		if tol := 5 * (se + risSE); math.Abs(est-mc) > tol {
			t.Fatalf("%s: RIS estimate %.2f vs Monte Carlo %.2f ± %.2f (tolerance %.2f)",
				cfg.name, est, mc, se, tol)
		}
	}
}
