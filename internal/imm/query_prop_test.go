package imm

import (
	"testing"
	"testing/quick"

	"influmax/internal/graph"
	"influmax/internal/rrr"
)

// Property tests for the query-mode reductions (DESIGN.md §17): each
// degenerate query parameterization must collapse byte-identically to the
// plain top-k selection, on randomly drawn stores, for both
// representations. testing/quick drives the store shape; every derived
// quantity (costs, roots, k) is a pure function of the drawn seed.

// propStore builds a small random store pair (flat + coded with
// frequency relabeling) and a synthetic root column from one drawn seed.
func propStore(seed uint64) (*rrr.Collection, *rrr.Index, *rrr.CodedCollection, *rrr.Index, []graph.Vertex, int) {
	n := 20 + int(seed%5)*17
	m := 4 * n
	g := testGraph(seed, n, m)
	col := rrrCollection(g, seed^0xbeef, 120+int(seed%7)*40)
	idx := rrr.BuildIndex(col, 2)
	coded := rrr.FromCollection(col, rrr.NewRelabeling(rrr.IncidenceOf(col, 2)))
	cidx := rrr.BuildIndexCoded(coded, 2)
	roots := make([]graph.Vertex, col.Count())
	for j := range roots {
		// Synthetic but valid roots; only their membership in the audience
		// matters to the properties below.
		roots[j] = graph.Vertex((int(seed%100003) + j*7) % n)
	}
	return col, idx, coded, cidx, roots, n
}

func propK(seed uint64, n int) int { return 1 + int(seed>>8)%(n/2) }

// runBoth answers q over the two stores and requires them identical.
func runBoth(t *testing.T, col *rrr.Collection, idx *rrr.Index, coded *rrr.CodedCollection, cidx *rrr.Index, roots []graph.Vertex, q Query) (*QueryResult, bool) {
	t.Helper()
	fq, err := SelectQueryIndexed(col, idx, roots, q, 2)
	if err != nil {
		t.Logf("flat: %v", err)
		return nil, false
	}
	sq, err := SelectQuerySketch(coded, cidx, roots, q, 2)
	if err != nil {
		t.Logf("coded: %v", err)
		return nil, false
	}
	if !sameResult(fq, sq) {
		t.Logf("stores diverge: %+v vs %+v", fq, sq)
		return nil, false
	}
	return fq, true
}

func quickCfg() *quick.Config { return &quick.Config{MaxCount: 25} }

// TestQueryPropUniformBudgetIsPlain: uniform costs with budget >= k * cost
// never bind, so the cost-benefit order reduces to the plain (gain,
// vertex) order and the budgeted selection is byte-identical to top-k —
// with the spend recorded.
func TestQueryPropUniformBudgetIsPlain(t *testing.T) {
	prop := func(seed uint64) bool {
		col, idx, coded, cidx, roots, n := propStore(seed)
		k := propK(seed, n)
		plain, ok := runBoth(t, col, idx, coded, cidx, roots, Query{K: k})
		if !ok {
			return false
		}
		cost := 0.5 + float64(seed%5)
		costs := make([]float64, n)
		for v := range costs {
			costs[v] = cost
		}
		qb, ok := runBoth(t, col, idx, coded, cidx, roots, Query{K: k, Costs: costs, Budget: float64(k) * cost})
		if !ok {
			return false
		}
		if !slicesEq(qb.Seeds, plain.Seeds) || !gainsEq(qb.Gains, plain.Gains) || qb.Covered != plain.Covered {
			t.Logf("budgeted %+v != plain %+v", qb, plain)
			return false
		}
		if qb.SpentBudget != float64(len(qb.Seeds))*cost {
			t.Logf("spent %v, want %v", qb.SpentBudget, float64(len(qb.Seeds))*cost)
			return false
		}
		// Implicit unit costs must reduce the same way.
		qu, ok := runBoth(t, col, idx, coded, cidx, roots, Query{K: k, Budget: float64(k)})
		if !ok {
			return false
		}
		return slicesEq(qu.Seeds, plain.Seeds) && qu.SpentBudget == float64(len(qu.Seeds))
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestQueryPropFullAudienceIsPlain: an audience containing every vertex
// filters nothing — the targeted selection equals top-k and every sample
// stays eligible.
func TestQueryPropFullAudienceIsPlain(t *testing.T) {
	prop := func(seed uint64) bool {
		col, idx, coded, cidx, roots, n := propStore(seed)
		k := propK(seed, n)
		plain, ok := runBoth(t, col, idx, coded, cidx, roots, Query{K: k})
		if !ok {
			return false
		}
		audience := make([]graph.Vertex, n)
		for v := range audience {
			audience[v] = graph.Vertex(v)
		}
		qt, ok := runBoth(t, col, idx, coded, cidx, roots, Query{K: k, Audience: audience})
		if !ok {
			return false
		}
		return slicesEq(qt.Seeds, plain.Seeds) && gainsEq(qt.Gains, plain.Gains) &&
			qt.Covered == plain.Covered && qt.Eligible == int64(col.Count())
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestQueryPropEmptyBlockedIsPlain: with no rival seeds the competitive
// selection purges nothing and equals top-k (nil and empty-but-non-nil
// blocked lists alike).
func TestQueryPropEmptyBlockedIsPlain(t *testing.T) {
	prop := func(seed uint64) bool {
		col, idx, coded, cidx, roots, n := propStore(seed)
		k := propK(seed, n)
		plain, ok := runBoth(t, col, idx, coded, cidx, roots, Query{K: k})
		if !ok {
			return false
		}
		qc, ok := runBoth(t, col, idx, coded, cidx, roots, Query{K: k, Blocked: []graph.Vertex{}})
		if !ok {
			return false
		}
		return slicesEq(qc.Seeds, plain.Seeds) && gainsEq(qc.Gains, plain.Gains) && qc.Covered == plain.Covered
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestQueryPropCoverageMatchesGains: CoverageOf over a query's selected
// seeds reproduces both the summed reported gains and the Covered field —
// the estimator and the selection loop count the same thing.
func TestQueryPropCoverageMatchesGains(t *testing.T) {
	prop := func(seed uint64) bool {
		col, idx, coded, cidx, roots, n := propStore(seed)
		k := propK(seed, n)
		qr, ok := runBoth(t, col, idx, coded, cidx, roots, Query{K: k})
		if !ok {
			return false
		}
		covered, eligible, err := CoverageOf(col.Count(), idx, nil, qr.Seeds, nil)
		if err != nil {
			t.Logf("CoverageOf: %v", err)
			return false
		}
		sum := int64(0)
		for _, g := range qr.Gains {
			sum += g
		}
		return covered == qr.Covered && covered == sum && eligible == int64(col.Count())
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func slicesEq(a, b []graph.Vertex) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func gainsEq(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
