package imm

import (
	"influmax/internal/metrics"
	"influmax/internal/trace"
)

// Report assembles the structured metrics.RunReport of a finished run.
// opt must be the Options the run was invoked with (it supplies the
// configuration half of the report; the Result supplies the outcome). The
// registry snapshot of opt.Metrics, if any, rides along, so a single call
// captures both the bookkeeping and the engine-internal instruments.
func (r *Result) Report(opt Options) *metrics.RunReport {
	rep := metrics.NewRunReport(r.Algorithm, r.Phases)
	rep.Model = opt.Model.String()
	rep.K = opt.K
	rep.Epsilon = opt.Epsilon
	rep.Seed = opt.Seed
	rep.Workers = r.Workers
	rep.Theta = r.Theta
	rep.SamplesGenerated = int64(r.SamplesGenerated)
	rep.LowerBound = r.LowerBound
	rep.Seeds = r.Seeds
	rep.CoverageFraction = r.CoverageFraction
	rep.EstimatedSpread = r.EstimatedSpread
	rep.Kernel = r.Kernel.String()
	rep.FrontierPasses = r.FrontierPasses
	rep.CoinsGenerated = r.CoinsGenerated
	rep.BatchOccupancy = r.BatchOccupancy
	rep.Store = r.Store.String()
	rep.StoreBytes = r.StoreBytes
	rep.FlatStoreBytes = r.FlatStoreBytes
	rep.IndexBytes = r.IndexBytes
	rep.HeapBytes = trace.HeapAlloc()
	if len(r.WorkerWork) > 0 {
		rep.WorkerWork = r.WorkerWork
		rep.WorkBalance = r.WorkBalance
		h := metrics.NewHistogram()
		h.ObserveAll(r.WorkerWork)
		rep.WorkHistogram = h.Snapshot()
	}
	if opt.Metrics != nil {
		rep.Metrics = opt.Metrics.Snapshot()
	}
	return rep
}
