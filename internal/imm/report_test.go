package imm

import (
	"encoding/json"
	"testing"

	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/metrics"
	"influmax/internal/rng"
)

func reportTestGraph(seed uint64, n, m int) *graph.Graph {
	r := rng.New(rng.NewLCG(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			b.Add(graph.Vertex(u), graph.Vertex(v), 0)
		}
	}
	g := b.Build()
	g.AssignUniform(seed ^ 0xbeef)
	return g
}

func TestResultReport(t *testing.T) {
	g := reportTestGraph(2, 300, 1800)
	reg := metrics.NewRegistry()
	opt := Options{K: 5, Epsilon: 0.5, Model: diffuse.IC, Workers: 4, Seed: 9, Metrics: reg}
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report(opt)
	if rep.Schema != metrics.SchemaVersion || rep.Algorithm != "IMMmt" {
		t.Fatalf("header = %+v", rep)
	}
	if rep.Theta != res.Theta || rep.StoreBytes != res.StoreBytes {
		t.Fatalf("bookkeeping mismatch: %+v vs %+v", rep, res)
	}
	if len(rep.WorkerWork) != 4 {
		t.Fatalf("workerWork = %v", rep.WorkerWork)
	}
	if rep.WorkHistogram == nil || rep.WorkHistogram.Count != 4 {
		t.Fatalf("work histogram = %+v", rep.WorkHistogram)
	}
	if rep.WorkBalance != res.WorkBalance {
		t.Fatalf("balance = %v, want %v", rep.WorkBalance, res.WorkBalance)
	}
	if rep.PhaseSeconds == nil || rep.TotalSeconds <= 0 {
		t.Fatalf("phases = %v total = %v", rep.PhaseSeconds, rep.TotalSeconds)
	}

	// The engine instruments must have recorded through the registry.
	if rep.Metrics == nil {
		t.Fatal("registry snapshot missing")
	}
	if got := rep.Metrics.Counters["rrr/samples"]; got != int64(res.SamplesGenerated) {
		t.Fatalf("rrr/samples = %d, want %d", got, res.SamplesGenerated)
	}
	sizes := rep.Metrics.Histograms["rrr/size"]
	if sizes == nil || sizes.Count != int64(res.SamplesGenerated) {
		t.Fatalf("rrr/size = %+v", sizes)
	}
	if rep.Metrics.Counters["rrr/entries"] != sizes.Sum {
		t.Fatalf("rrr/entries = %d, histogram sum %d", rep.Metrics.Counters["rrr/entries"], sizes.Sum)
	}

	if _, err := json.Marshal(rep); err != nil {
		t.Fatal(err)
	}
}

func TestResultReportAlgorithmNames(t *testing.T) {
	g := reportTestGraph(4, 120, 600)
	opt := Options{K: 3, Epsilon: 0.5, Model: diffuse.IC, Workers: 1, Seed: 1}
	seq, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Algorithm != "IMMopt" || seq.Report(opt).Algorithm != "IMMopt" {
		t.Fatalf("sequential algorithm = %q", seq.Algorithm)
	}
	base, err := RunBaseline(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if base.Algorithm != "IMM" {
		t.Fatalf("baseline algorithm = %q", base.Algorithm)
	}
	opt.Workers = 2
	mt, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Algorithm != "IMMmt" {
		t.Fatalf("multithreaded algorithm = %q", mt.Algorithm)
	}
}
