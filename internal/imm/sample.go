package imm

import (
	"sort"

	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/metrics"
	"influmax/internal/par"
	"influmax/internal/rng"
	"influmax/internal/rrr"
)

// minDynamicChunk is the chunk-size floor handed to par.Dynamic: small
// enough that the tail of a skewed batch can be re-balanced at per-sample
// granularity is unnecessary — a handful of samples amortizes the CAS per
// chunk while still splitting hub-heavy stragglers finely.
const minDynamicChunk = 8

// BatchSampler owns the per-run sampling machinery of Algorithm 3: one
// reverse-traversal sampler, pseudorandom generator and output arena per
// worker, reused across batches so steady-state sampling performs zero
// per-sample allocations. In LeapFrog RNG mode every worker holds a
// persistent substream of one global LCG sequence (the paper's TRNG
// discipline); in PerSample mode each sample's stream is re-derived in
// place from its global index, making the collection independent of both
// the worker count and the schedule.
//
// It is exported for the distributed ranks (internal/dist), which sample
// disjoint global index ranges into rank-local collections via SampleAt.
// A BatchSampler is not safe for concurrent use.
type BatchSampler struct {
	g      *graph.Graph
	opt    Options
	nextID uint64 // global index of the next sample Sample generates

	streams  []*rng.Rand // worker-pinned substreams (nil in PerSample mode)
	samplers []*diffuse.Sampler
	fused    []*diffuse.FusedSampler // per-worker fused kernels (KernelFused, PerSample mode)
	gens     []*rng.SplitMix64       // pooled per-sample generators (PerSample mode)
	rands    []*rng.Rand             // pooled wrappers over gens
	arenas   []batchArena
	merge    []chunkRec // scratch for the deterministic chunk merge

	naiveBuf []graph.Vertex // scratch for the sequential baseline path

	// fusedTotals accumulates the fused kernel's work counters across all
	// Sample calls (all workers); see diffuse.FusedStats.
	fusedTotals diffuse.FusedStats

	// Work accumulates, per worker, the number of RRR-set entries it
	// generated: the sampling-load balance across workers bounds the
	// strong-scaling efficiency of the sampling phase.
	Work []int64

	steals, chunks int64

	// Instrumentation resolved once from Options.Metrics (all nil when
	// metrics are disabled, keeping the hot path branch-and-go).
	mSamples   *metrics.Counter
	mEntries   *metrics.Counter
	mSize      *metrics.Histogram
	mSteals    *metrics.Counter
	mChunks    *metrics.Counter
	mPasses    *metrics.Counter
	mCoins     *metrics.Counter
	mOccupancy *metrics.Gauge
}

// batchArena buffers one worker's freshly generated chunks before the
// deterministic global-index-order merge. Its slices keep their capacity
// across batches (reset to length zero, never reallocated once warm).
type batchArena struct {
	verts   []graph.Vertex
	offsets []int64
	recs    []chunkRec
	sizes   []int32 // fused-kernel scratch: per-sample cardinalities
}

// chunkRec locates one executed chunk's output inside a worker's arena.
// lo, the chunk's first global index within the batch, is the merge key
// that makes the appended collection independent of which worker ran the
// chunk and in what order.
type chunkRec struct {
	lo     int
	worker int
	v0, v1 int // verts span within the worker's arena
	o0, o1 int // offsets span within the worker's arena
}

// NewBatchSampler prepares sampling over g. opt must have its defaults
// resolved (Workers > 0); Run and RunCollect do this, external callers
// like internal/dist resolve their own.
func NewBatchSampler(g *graph.Graph, opt Options) *BatchSampler {
	b := &BatchSampler{
		g:        g,
		opt:      opt,
		samplers: make([]*diffuse.Sampler, opt.Workers),
		gens:     make([]*rng.SplitMix64, opt.Workers),
		rands:    make([]*rng.Rand, opt.Workers),
		arenas:   make([]batchArena, opt.Workers),
		Work:     make([]int64, opt.Workers),
	}
	for w := range b.samplers {
		b.samplers[w] = diffuse.NewSampler(g, opt.Model)
		b.gens[w] = rng.NewSplitMix64(0) // re-pointed per sample via Reseed
		b.rands[w] = rng.New(b.gens[w])
	}
	if opt.Kernel == KernelFused && opt.RNG != LeapFrog {
		// The fused kernel requires per-sample stream derivation; a
		// leap-frog run keeps the scalar kernel (see KernelFused). The
		// read-only coin-threshold tables are built once and shared by
		// every worker's sampler — they scale with the edge count, where
		// the per-worker scratch scales with the vertex count.
		shared := diffuse.NewFusedShared(g, opt.Model)
		b.fused = make([]*diffuse.FusedSampler, opt.Workers)
		for w := range b.fused {
			b.fused[w] = diffuse.NewFusedSamplerShared(g, opt.Model, shared)
		}
	}
	if opt.RNG == LeapFrog {
		base := rng.NewLCG(opt.Seed)
		b.streams = make([]*rng.Rand, opt.Workers)
		for w := range b.streams {
			b.streams[w] = rng.New(base.LeapFrog(w, opt.Workers))
		}
	}
	if opt.Metrics != nil {
		b.mSamples = opt.Metrics.Counter("rrr/samples")
		b.mEntries = opt.Metrics.Counter("rrr/entries")
		b.mSize = opt.Metrics.Histogram("rrr/size")
		b.mSteals = opt.Metrics.Counter("par/steals")
		b.mChunks = opt.Metrics.Counter("par/chunks")
		if b.fused != nil {
			b.mPasses = opt.Metrics.Counter("rrr/frontier-passes")
			b.mCoins = opt.Metrics.Counter("rrr/coins-generated")
			b.mOccupancy = opt.Metrics.Gauge("rrr/batch-occupancy")
		}
	}
	return b
}

// SetStreams replaces the worker-pinned streams (the distributed LeapFrog
// discipline, where worker t of rank r holds substream r*threads+t of
// size*threads). Pinned streams force the static schedule: which worker
// executes a sample then decides its randomness.
func (b *BatchSampler) SetStreams(streams []*rng.Rand) {
	if len(streams) != b.opt.Workers {
		panic("imm: SetStreams length != Workers")
	}
	b.streams = streams
}

// Steals returns the total number of work-stealing operations performed so
// far (zero under the static schedule). Scheduling telemetry — not
// deterministic.
func (b *BatchSampler) Steals() int64 { return b.steals }

// Chunks returns the total number of scheduler chunks executed so far.
func (b *BatchSampler) Chunks() int64 { return b.chunks }

// WorkBalance returns avg/max of per-worker sampling work (1.0 = perfect
// balance), or 0 if no work was recorded.
func (b *BatchSampler) WorkBalance() float64 { return metrics.WorkBalanceOf(b.Work) }

// Sample generates count new RRR sets in parallel (Algorithm 3) and
// appends them to col, assigning the next count global sample indexes.
func (b *BatchSampler) Sample(col *rrr.Collection, count int) {
	if count <= 0 {
		return
	}
	b.SampleAt(col, b.nextID, count)
	b.nextID += uint64(count)
}

// SampleAt generates count RRR sets whose global indexes are
// [base, base+count) and appends them to col in index order. Roots are
// drawn uniformly at random. In PerSample mode the appended layout is a
// pure function of (seed, base, count) — independent of worker count and
// schedule; in LeapFrog mode it depends on the worker count (as in the
// paper) and base is ignored.
func (b *BatchSampler) SampleAt(col *rrr.Collection, base uint64, count int) {
	if count <= 0 {
		return
	}
	n := b.g.NumVertices()
	p := b.opt.Workers
	if p > count {
		p = count
	}
	for w := 0; w < p; w++ {
		a := &b.arenas[w]
		a.verts = a.verts[:0]
		a.offsets = a.offsets[:0]
		a.recs = a.recs[:0]
	}

	pinned := b.streams != nil
	useFused := b.fused != nil && !pinned
	run := func(rank, lo, hi int) {
		a := &b.arenas[rank]
		v0, o0 := len(a.verts), len(a.offsets)
		a.offsets = append(a.offsets, 0)
		if useFused {
			// Fused CSR frontier kernel: the chunk's samples expand in
			// batches of up to diffuse.MaxLanes per pass; the appended
			// layout is byte-identical to the scalar loop below.
			a.sizes = a.sizes[:0]
			a.verts, a.sizes = b.fused[rank].Generate(b.opt.Seed, base+uint64(lo), hi-lo, a.verts, a.sizes)
			off := int64(0)
			for _, sz := range a.sizes {
				off += int64(sz)
				a.offsets = append(a.offsets, off)
			}
		} else {
			sampler := b.samplers[rank]
			stream := b.rands[rank]
			if pinned {
				stream = b.streams[rank]
			}
			gen := b.gens[rank]
			for i := lo; i < hi; i++ {
				if !pinned {
					gen.Reseed(b.opt.Seed, base+uint64(i))
				}
				root := graph.Vertex(stream.Intn(n))
				a.verts = sampler.GenerateRR(stream, root, a.verts)
				a.offsets = append(a.offsets, int64(len(a.verts)-v0))
			}
		}
		a.recs = append(a.recs, chunkRec{lo: lo, worker: rank, v0: v0, v1: len(a.verts), o0: o0, o1: len(a.offsets)})
		b.Work[rank] += int64(len(a.verts) - v0)
	}

	// Pinned streams (LeapFrog) make randomness a function of the executing
	// worker, so only the static split keeps them well-defined; everything
	// else goes through the work-stealing loop unless static was requested.
	if b.opt.Schedule == ScheduleDynamic && !pinned && p > 1 {
		st := par.DynamicSteal(count, p, minDynamicChunk, run)
		b.steals += st.Steals
		b.chunks += st.Chunks
		if b.mChunks != nil {
			b.mSteals.Add(st.Steals)
			b.mChunks.Add(st.Chunks)
		}
	} else {
		par.ForEach(count, p, run)
		var c int64
		for w := 0; w < p; w++ {
			c += int64(len(b.arenas[w].recs))
		}
		b.chunks += c
		if b.mChunks != nil {
			b.mChunks.Add(c)
		}
	}

	// Deterministic merge: append every chunk in global-index order. Chunk
	// boundaries always tile [0, count) contiguously, so sorting records by
	// lo reconstructs the exact layout a sequential pass would have written,
	// regardless of which worker ran which chunk or when.
	first := col.Count()
	b.merge = b.merge[:0]
	var entries int64
	for w := 0; w < p; w++ {
		b.merge = append(b.merge, b.arenas[w].recs...)
		entries += int64(len(b.arenas[w].verts))
	}
	sort.Slice(b.merge, func(i, j int) bool { return b.merge[i].lo < b.merge[j].lo })
	col.Reserve(count, entries)
	for _, r := range b.merge {
		a := &b.arenas[r.worker]
		col.AppendArena(a.verts[r.v0:r.v1], a.offsets[r.o0:r.o1])
	}
	if useFused {
		b.recordFused(p)
	}
	b.recordRange(col, first)
}

// recordFused drains the per-worker fused-kernel counters into the
// cumulative totals and the optional metrics registry. Pass and batch
// counts depend on chunk boundaries (schedule telemetry, like steal
// counts); coin and occupancy aggregates are near-schedule-independent.
func (b *BatchSampler) recordFused(p int) {
	var delta diffuse.FusedStats
	for w := 0; w < p; w++ {
		delta.Add(b.fused[w].TakeStats())
	}
	b.fusedTotals.Add(delta)
	if b.mPasses != nil {
		b.mPasses.Add(delta.Passes)
		b.mCoins.Add(delta.Coins)
		// Permille, because gauges are integers: 1000 = every lane of
		// every pass held a live frontier.
		b.mOccupancy.Set(int64(b.fusedTotals.Occupancy() * 1000))
	}
}

// FusedStats returns the fused kernel's cumulative work counters (zero
// when the scalar kernel ran).
func (b *BatchSampler) FusedStats() diffuse.FusedStats { return b.fusedTotals }

// recordRange feeds the samples col gained since count was first into the
// optional metrics registry: sample and entry counters plus the
// RRR-set-size histogram. Iterating the merged collection (not the
// arenas) keeps the observation order schedule-independent.
func (b *BatchSampler) recordRange(col *rrr.Collection, first int) {
	if b.mSize == nil {
		return
	}
	b.mSamples.Add(int64(col.Count() - first))
	var entries int64
	for i := first; i < col.Count(); i++ {
		sz := int64(len(col.Sample(i)))
		entries += sz
		b.mSize.Observe(sz)
	}
	b.mEntries.Add(entries)
}

// sampleNaive is the sequential sampling path of the Tang-style baseline:
// one thread, one stream, bidirectional store.
func (b *BatchSampler) sampleNaive(store *rrr.NaiveStore, count int) {
	if count <= 0 {
		return
	}
	n := b.g.NumVertices()
	sampler := b.samplers[0]
	for i := 0; i < count; i++ {
		stream := b.rands[0]
		if b.streams != nil {
			stream = b.streams[0]
		} else {
			b.gens[0].Reseed(b.opt.Seed, b.nextID+uint64(i))
		}
		root := graph.Vertex(stream.Intn(n))
		b.naiveBuf = sampler.GenerateRR(stream, root, b.naiveBuf[:0])
		store.Append(b.naiveBuf)
		if b.mSize != nil {
			b.mSamples.Inc()
			b.mEntries.Add(int64(len(b.naiveBuf)))
			b.mSize.Observe(int64(len(b.naiveBuf)))
		}
	}
	b.nextID += uint64(count)
}
