package imm

import (
	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/metrics"
	"influmax/internal/par"
	"influmax/internal/rng"
	"influmax/internal/rrr"
)

// samplerState owns the per-run sampling machinery: one reverse-traversal
// sampler per worker plus the pseudorandom streams. In LeapFrog mode every
// worker holds a persistent substream of one global LCG sequence (the
// paper's TRNG discipline); in PerSample mode each sample derives a fresh
// stream from its global index, making the collection independent of the
// worker count.
type samplerState struct {
	g      *graph.Graph
	opt    Options
	nextID uint64 // global index of the next sample to generate

	workerRands    []*rng.Rand // LeapFrog substreams (nil in PerSample mode)
	workerSamplers []*diffuse.Sampler

	// workerWork accumulates, per worker, the number of RRR-set entries it
	// generated: the sampling-load balance across workers bounds the
	// strong-scaling efficiency of the sampling phase.
	workerWork []int64

	// Instrumentation resolved once from Options.Metrics (all nil when
	// metrics are disabled, keeping the hot path branch-and-go).
	mSamples *metrics.Counter
	mEntries *metrics.Counter
	mSize    *metrics.Histogram
}

// newSamplerState prepares sampling for a run over g.
func newSamplerState(g *graph.Graph, opt Options) *samplerState {
	st := &samplerState{
		g:              g,
		opt:            opt,
		workerSamplers: make([]*diffuse.Sampler, opt.Workers),
		workerWork:     make([]int64, opt.Workers),
	}
	for w := range st.workerSamplers {
		st.workerSamplers[w] = diffuse.NewSampler(g, opt.Model)
	}
	if opt.RNG == LeapFrog {
		base := rng.NewLCG(opt.Seed)
		st.workerRands = make([]*rng.Rand, opt.Workers)
		for w := range st.workerRands {
			st.workerRands[w] = rng.New(base.LeapFrog(w, opt.Workers))
		}
	}
	if opt.Metrics != nil {
		st.mSamples = opt.Metrics.Counter("rrr/samples")
		st.mEntries = opt.Metrics.Counter("rrr/entries")
		st.mSize = opt.Metrics.Histogram("rrr/size")
	}
	return st
}

// recordBatch feeds one merged batch into the optional metrics registry:
// sample and entry counters plus the RRR-set-size histogram (offsets are
// the arena's cumulative layout, so adjacent differences are set sizes).
func (st *samplerState) recordBatch(offsets []int64) {
	if st.mSize == nil {
		return
	}
	st.mSamples.Add(int64(len(offsets) - 1))
	st.mEntries.Add(offsets[len(offsets)-1])
	for i := 1; i < len(offsets); i++ {
		st.mSize.Observe(offsets[i] - offsets[i-1])
	}
}

// workerArena buffers one worker's freshly generated samples before the
// deterministic rank-order merge.
type workerArena struct {
	verts   []graph.Vertex
	offsets []int64
}

// sampleBatch generates count new RRR sets in parallel (Algorithm 3) and
// appends them to col. Roots are drawn uniformly at random; each worker
// buffers its output and the buffers are merged in rank order, so the
// resulting collection layout is deterministic for a fixed worker count
// (and, in PerSample mode, for any worker count).
func (st *samplerState) sampleBatch(col *rrr.Collection, count int) {
	if count <= 0 {
		return
	}
	n := st.g.NumVertices()
	p := st.opt.Workers
	if p > count {
		p = count
	}
	arenas := make([]workerArena, p)
	par.ForEach(count, p, func(rank, lo, hi int) {
		sampler := st.workerSamplers[rank]
		a := workerArena{offsets: []int64{0}}
		r := st.workerRands // nil unless LeapFrog
		var stream *rng.Rand
		if r != nil {
			stream = r[rank]
		}
		for i := lo; i < hi; i++ {
			if r == nil {
				stream = rng.New(rng.Derive(st.opt.Seed, st.nextID+uint64(i)))
			}
			root := graph.Vertex(stream.Intn(n))
			a.verts = sampler.GenerateRR(stream, root, a.verts)
			a.offsets = append(a.offsets, int64(len(a.verts)))
		}
		arenas[rank] = a
		st.workerWork[rank] += int64(len(a.verts))
	})
	for _, a := range arenas {
		col.AppendArena(a.verts, a.offsets)
		st.recordBatch(a.offsets)
	}
	st.nextID += uint64(count)
}

// workBalance returns avg/max of per-worker sampling work (1.0 = perfect
// balance), or 0 if no work was recorded.
func (st *samplerState) workBalance() float64 {
	var total, maxW int64
	for _, w := range st.workerWork {
		total += w
		if w > maxW {
			maxW = w
		}
	}
	if maxW == 0 {
		return 0
	}
	return float64(total) / float64(len(st.workerWork)) / float64(maxW)
}

// sampleBatchNaive is the sequential sampling path of the Tang-style
// baseline: one thread, one stream, bidirectional store.
func (st *samplerState) sampleBatchNaive(store *rrr.NaiveStore, count int) {
	if count <= 0 {
		return
	}
	n := st.g.NumVertices()
	sampler := st.workerSamplers[0]
	var buf []graph.Vertex
	for i := 0; i < count; i++ {
		var stream *rng.Rand
		if st.workerRands != nil {
			stream = st.workerRands[0]
		} else {
			stream = rng.New(rng.Derive(st.opt.Seed, st.nextID+uint64(i)))
		}
		root := graph.Vertex(stream.Intn(n))
		buf = sampler.GenerateRR(stream, root, buf[:0])
		store.Append(buf)
		if st.mSize != nil {
			st.mSamples.Inc()
			st.mEntries.Add(int64(len(buf)))
			st.mSize.Observe(int64(len(buf)))
		}
	}
	st.nextID += uint64(count)
}
