package imm

import (
	"testing"

	"influmax/internal/diffuse"
	"influmax/internal/gen"
	"influmax/internal/rrr"
)

// BenchmarkSampleBatch compares the static contiguous split against the
// work-stealing schedule on a skewed soc-LiveJournal1 analog with a
// near-critical constant edge probability (Tang et al.'s constant-p
// setup): reverse cascades over the power-law graph are heavy-tailed —
// most RRR sets are tiny, a few span thousands of vertices — which is
// exactly the load imbalance the dynamic schedule exists to absorb. The
// balance metric is the mean/max ratio of per-worker entry counts
// (1000 = perfectly even); on single-core CI only balance is meaningful,
// wall-clock speedup needs parallel hardware.
func BenchmarkSampleBatch(b *testing.B) {
	d, err := gen.ByName("soc-LiveJournal1")
	if err != nil {
		b.Fatal(err)
	}
	g := d.Generate(0.002, 1)
	g.AssignConstant(0.06)
	const count = 20000
	const workers = 8
	for _, tc := range []struct {
		name  string
		sched Schedule
	}{
		{"static", ScheduleStatic},
		{"dynamic", ScheduleDynamic},
	} {
		b.Run(tc.name, func(b *testing.B) {
			bs := NewBatchSampler(g, Options{
				Model: diffuse.IC, Workers: workers, Seed: 7, Schedule: tc.sched,
			})
			col := rrr.NewCollection(g.NumVertices())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				col.Truncate(0)
				bs.Sample(col, count)
			}
			b.StopTimer()
			b.ReportMetric(bs.WorkBalance()*1000, "balance‰")
			b.ReportMetric(float64(bs.Steals())/float64(b.N), "steals/op")
			b.ReportMetric(float64(col.TotalSize())/count, "entries/sample")
		})
	}
}
