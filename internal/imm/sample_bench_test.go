package imm

import (
	"testing"
	"time"

	"influmax/internal/diffuse"
	"influmax/internal/gen"
	"influmax/internal/graph"
	"influmax/internal/rrr"
)

// stopwatch returns fn's wall-clock duration in seconds.
func stopwatch(fn func()) float64 {
	start := time.Now()
	fn()
	return time.Since(start).Seconds()
}

// benchGraph builds the soc-LiveJournal1 analog the sampling benchmarks
// share: a skewed power-law graph whose reverse cascades are heavy-tailed —
// most RRR sets are tiny, a few span thousands of vertices.
func benchGraph(b *testing.B, weights func(*graph.Graph)) *graph.Graph {
	b.Helper()
	d, err := gen.ByName("soc-LiveJournal1")
	if err != nil {
		b.Fatal(err)
	}
	g := d.Generate(0.002, 1)
	weights(g)
	return g
}

// BenchmarkSampleBatch compares the scalar per-sample kernel against the
// fused CSR frontier kernel on the soc-LiveJournal1 analog, under both the
// near-critical constant-p IC setup (Tang et al.) and weighted-cascade
// weights. The two kernels produce byte-identical collections (see
// TestFusedMatchesScalar); only the cost per sample differs — the fused
// kernel amortizes RNG and CSR traversal over 64-sample batches, which is
// the speedup the bench-gate CI job pins. Sub-benchmark names are
// <kernel>/<weights>; the CI gate consumes scalar/* and fused/*.
func BenchmarkSampleBatch(b *testing.B) {
	weightings := []struct {
		name    string
		weights func(*graph.Graph)
	}{
		{"IC", func(g *graph.Graph) { g.AssignConstant(0.06) }},
		{"WC", func(g *graph.Graph) { g.AssignWeightedCascade() }},
	}
	const count = 20000
	const workers = 8
	for _, kc := range []struct {
		name   string
		kernel Kernel
	}{
		{"scalar", KernelScalar},
		{"fused", KernelFused},
	} {
		for _, wc := range weightings {
			b.Run(kc.name+"/"+wc.name, func(b *testing.B) {
				g := benchGraph(b, wc.weights)
				bs := NewBatchSampler(g, Options{
					Model: diffuse.IC, Workers: workers, Seed: 7, Kernel: kc.kernel,
				})
				col := rrr.NewCollection(g.NumVertices())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					col.Truncate(0)
					bs.Sample(col, count)
				}
				b.StopTimer()
				b.ReportMetric(bs.WorkBalance()*1000, "balance‰")
				b.ReportMetric(float64(col.TotalSize())/count, "entries/sample")
				if st := bs.FusedStats(); st.Batches > 0 {
					b.ReportMetric(st.Occupancy()*1000, "occupancy‰")
					b.ReportMetric(float64(st.Coins)/float64(b.N), "coins/op")
				}
			})
		}
	}
}

// BenchmarkSampleSchedules keeps the schedule comparison of the
// work-stealing PR: static contiguous split vs guided stealing, scalar
// kernel, constant-p IC. On single-core CI only the balance metric is
// meaningful; wall-clock speedup needs parallel hardware.
func BenchmarkSampleSchedules(b *testing.B) {
	g := benchGraph(b, func(g *graph.Graph) { g.AssignConstant(0.06) })
	const count = 20000
	const workers = 8
	for _, tc := range []struct {
		name  string
		sched Schedule
	}{
		{"static", ScheduleStatic},
		{"dynamic", ScheduleDynamic},
	} {
		b.Run(tc.name, func(b *testing.B) {
			bs := NewBatchSampler(g, Options{
				Model: diffuse.IC, Workers: workers, Seed: 7, Schedule: tc.sched, Kernel: KernelScalar,
			})
			col := rrr.NewCollection(g.NumVertices())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				col.Truncate(0)
				bs.Sample(col, count)
			}
			b.StopTimer()
			b.ReportMetric(bs.WorkBalance()*1000, "balance‰")
			b.ReportMetric(float64(bs.Steals())/float64(b.N), "steals/op")
			b.ReportMetric(float64(col.TotalSize())/count, "entries/sample")
		})
	}
}

// TestFusedSpeedupGate is the tentpole's acceptance gate: on the
// soc-LiveJournal1 analog the fused kernel must beat the scalar kernel by
// a wide margin under both IC (constant-p) and WC weights. On the
// reference machine the fused kernel measures ~2.8x under constant-p IC
// and ~1.7-2.1x under WC (WC draws far fewer coins per visited test, and
// its decide loop is pinned to two 64-bit multiplies per coin by
// byte-identity with the SplitMix64 stream, so less dispatch overhead is
// amortized away). The asserted floors sit well below those typical
// ratios because best-of-N wall clock on a busy CI core still jitters by
// tens of percent; the CI bench-gate job (cmd/benchdiff over committed
// baselines) is the fine-grained regression tripwire, while this test
// catches the kernel losing its advantage outright. Skipped in -short
// mode: it samples tens of thousands of heavy-tailed cascades per timing.
func TestFusedSpeedupGate(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup gate needs full-size sampling runs")
	}
	d, err := gen.ByName("soc-LiveJournal1")
	if err != nil {
		t.Fatal(err)
	}
	for _, wc := range []struct {
		name    string
		weights func(*graph.Graph)
		floor   float64
	}{
		{"IC", func(g *graph.Graph) { g.AssignConstant(0.06) }, 1.6},
		{"WC", func(g *graph.Graph) { g.AssignWeightedCascade() }, 1.25},
	} {
		t.Run(wc.name, func(t *testing.T) {
			g := d.Generate(0.002, 1)
			wc.weights(g)
			const count = 6000
			const trials = 3
			time := func(kernel Kernel) float64 {
				bs := NewBatchSampler(g, Options{
					Model: diffuse.IC, Workers: 1, Seed: 7, Kernel: kernel,
				})
				col := rrr.NewCollection(g.NumVertices())
				best := 0.0
				for i := 0; i < trials; i++ {
					col.Truncate(0)
					sec := stopwatch(func() { bs.Sample(col, count) })
					if best == 0 || sec < best {
						best = sec
					}
				}
				return best
			}
			scalar := time(KernelScalar)
			fused := time(KernelFused)
			speedup := scalar / fused
			t.Logf("%s: scalar %.3fs, fused %.3fs, speedup %.2fx", wc.name, scalar, fused, speedup)
			if speedup < wc.floor {
				t.Fatalf("fused kernel speedup %.2fx < %.2fx floor over scalar (%s weights)", speedup, wc.floor, wc.name)
			}
		})
	}
}
