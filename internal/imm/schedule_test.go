package imm

import (
	"slices"
	"testing"

	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/metrics"
	"influmax/internal/rrr"
)

// scheduleModels are the three weighting/diffusion regimes the equivalence
// suite sweeps: uniform-IC, LT, and the paper's weighted-cascade (WC,
// p(u,v) = 1/indeg(v) under IC).
var scheduleModels = []struct {
	name  string
	model diffuse.Model
	prep  func(g *graph.Graph, seed uint64)
}{
	{"IC", diffuse.IC, func(g *graph.Graph, seed uint64) { g.AssignUniform(seed ^ 0xbeef) }},
	{"LT", diffuse.LT, func(g *graph.Graph, seed uint64) { g.AssignUniform(seed ^ 0xbeef); g.NormalizeLT() }},
	{"WC", diffuse.IC, func(g *graph.Graph, seed uint64) { g.AssignWeightedCascade() }},
}

// scheduleGraph builds one of the suite's fixed-seed graphs with the given
// weighting regime applied.
func scheduleGraph(seed uint64, n, m int, prep func(*graph.Graph, uint64)) *graph.Graph {
	g := testGraph(seed, n, m)
	prep(g, seed)
	return g
}

// sameCollection reports whether two collections are byte-identical:
// equal sample counts and, sample by sample, equal sorted vertex lists
// (offsets are determined by the lengths, so this is layout equality).
func sameCollection(a, b *rrr.Collection) bool {
	if a.Count() != b.Count() || a.TotalSize() != b.TotalSize() {
		return false
	}
	for i := 0; i < a.Count(); i++ {
		if !slices.Equal(a.Sample(i), b.Sample(i)) {
			return false
		}
	}
	return true
}

// TestDynamicMatchesStatic is the tentpole's determinism gate: in
// PerSample RNG mode the work-stealing schedule must produce a Collection
// byte-identical to the static schedule at workers=1 — for every graph,
// model, and worker count — and the downstream SelectSeedsIndexed output
// must therefore match too.
func TestDynamicMatchesStatic(t *testing.T) {
	graphs := []struct {
		seed uint64
		n, m int
	}{
		{11, 80, 600},
		{22, 150, 1300},
		{33, 300, 2500},
	}
	const count = 600
	const k = 10
	for _, gc := range graphs {
		for _, mc := range scheduleModels {
			g := scheduleGraph(gc.seed, gc.n, gc.m, mc.prep)

			ref := rrr.NewCollection(gc.n)
			NewBatchSampler(g, Options{
				Model: mc.model, Workers: 1, Seed: gc.seed, Schedule: ScheduleStatic,
			}).Sample(ref, count)
			refIdx := rrr.BuildIndex(ref, 1)
			refSeeds, refCov := SelectSeedsIndexed(ref, refIdx, k, 1)

			for _, w := range []int{1, 2, 4, 7} {
				col := rrr.NewCollection(gc.n)
				NewBatchSampler(g, Options{
					Model: mc.model, Workers: w, Seed: gc.seed, Schedule: ScheduleDynamic,
				}).Sample(col, count)
				if !sameCollection(ref, col) {
					t.Fatalf("graph=%d model=%s workers=%d: dynamic collection != static workers=1",
						gc.seed, mc.name, w)
				}
				if bad := col.CheckInvariants(); bad != -1 {
					t.Fatalf("graph=%d model=%s workers=%d: invariants broken at sample %d",
						gc.seed, mc.name, w, bad)
				}
				seeds, cov := SelectSeedsIndexed(col, rrr.BuildIndex(col, w), k, w)
				if !slices.Equal(seeds, refSeeds) || cov != refCov {
					t.Fatalf("graph=%d model=%s workers=%d: seeds (%v, %d) != static (%v, %d)",
						gc.seed, mc.name, w, seeds, cov, refSeeds, refCov)
				}
			}
		}
	}
}

// TestRunSeedsScheduleIndependent runs the full Algorithm 1 pipeline under
// both schedules and several worker counts: Theta, the seed set, and the
// coverage must be identical (PerSample mode), so flipping -schedule can
// never change a result.
func TestRunSeedsScheduleIndependent(t *testing.T) {
	g := testGraph(77, 140, 1100)
	ref, err := Run(g, Options{K: 8, Epsilon: 0.5, Model: diffuse.IC, Workers: 1, Seed: 3, Schedule: ScheduleStatic})
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []Schedule{ScheduleStatic, ScheduleDynamic} {
		for _, w := range []int{1, 2, 4, 7} {
			res, err := Run(g, Options{K: 8, Epsilon: 0.5, Model: diffuse.IC, Workers: w, Seed: 3, Schedule: sched})
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(res.Seeds, ref.Seeds) || res.Theta != ref.Theta ||
				res.CoverageFraction != ref.CoverageFraction {
				t.Fatalf("schedule=%s workers=%d: (%v, theta=%d) != reference (%v, theta=%d)",
					sched, w, res.Seeds, res.Theta, ref.Seeds, ref.Theta)
			}
		}
	}
}

// TestScheduleMetricsDeterminism is the determinism audit for the
// instrumentation: rrr/samples, rrr/entries, and the rrr/size histogram
// must be identical across schedules and worker counts — they describe
// the samples, which PerSample mode pins. Per-worker work may differ (the
// whole point of stealing); only its sum is schedule-invariant.
func TestScheduleMetricsDeterminism(t *testing.T) {
	g := testGraph(55, 120, 1000)
	type audit struct {
		samples, entries int64
		sizeCount        int64
		sizeSum          int64
		workSum          int64
		balance          int64
	}
	var ref *audit
	for _, sched := range []Schedule{ScheduleStatic, ScheduleDynamic} {
		for _, w := range []int{1, 2, 4, 7} {
			reg := metrics.NewRegistry()
			res, err := Run(g, Options{K: 6, Epsilon: 0.5, Model: diffuse.IC, Workers: w, Seed: 9, Schedule: sched, Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			var workSum int64
			for _, wk := range res.WorkerWork {
				workSum += wk
			}
			got := &audit{
				samples:   reg.Counter("rrr/samples").Value(),
				entries:   reg.Counter("rrr/entries").Value(),
				sizeCount: reg.Histogram("rrr/size").Count(),
				sizeSum:   reg.Histogram("rrr/size").Sum(),
				workSum:   workSum,
				balance:   reg.Gauge("rrr/balance").Value(),
			}
			if got.samples != int64(res.SamplesGenerated) {
				t.Fatalf("schedule=%s workers=%d: rrr/samples %d != generated %d",
					sched, w, got.samples, res.SamplesGenerated)
			}
			if got.entries != got.sizeSum {
				t.Fatalf("schedule=%s workers=%d: rrr/entries %d != histogram sum %d",
					sched, w, got.entries, got.sizeSum)
			}
			if got.workSum != got.entries {
				t.Fatalf("schedule=%s workers=%d: sum(workerWork) %d != rrr/entries %d",
					sched, w, got.workSum, got.entries)
			}
			if got.balance < 1 || got.balance > 1000 {
				t.Fatalf("schedule=%s workers=%d: rrr/balance gauge %d out of (0, 1000]",
					sched, w, got.balance)
			}
			// The balance gauge is the only schedule/worker-dependent field;
			// blank it before the cross-configuration comparison.
			got.balance = 0
			if ref == nil {
				ref = got
			} else if *got != *ref {
				t.Fatalf("schedule=%s workers=%d: audit %+v != reference %+v", sched, w, got, ref)
			}
		}
	}
}

// TestSchedulerCountersReported pins the scheduler telemetry plumbing: a
// dynamic multi-worker run must report chunks (and, via the registry, the
// par/chunks counter); par/steals must stay zero under static.
func TestSchedulerCountersReported(t *testing.T) {
	g := testGraph(66, 120, 1000)
	reg := metrics.NewRegistry()
	col := rrr.NewCollection(120)
	bs := NewBatchSampler(g, Options{Model: diffuse.IC, Workers: 4, Seed: 4, Schedule: ScheduleDynamic, Metrics: reg})
	bs.Sample(col, 500)
	if bs.Chunks() < 4 {
		t.Fatalf("dynamic run claimed %d chunks, want >= workers", bs.Chunks())
	}
	if got := reg.Counter("par/chunks").Value(); got != bs.Chunks() {
		t.Fatalf("par/chunks counter %d != Chunks() %d", got, bs.Chunks())
	}
	if got := reg.Counter("par/steals").Value(); got != bs.Steals() {
		t.Fatalf("par/steals counter %d != Steals() %d", got, bs.Steals())
	}

	reg2 := metrics.NewRegistry()
	col2 := rrr.NewCollection(120)
	bs2 := NewBatchSampler(g, Options{Model: diffuse.IC, Workers: 4, Seed: 4, Schedule: ScheduleStatic, Metrics: reg2})
	bs2.Sample(col2, 500)
	if got := reg2.Counter("par/steals").Value(); got != 0 || bs2.Steals() != 0 {
		t.Fatalf("static run recorded %d steals, want 0", got)
	}
	if got := reg2.Counter("par/chunks").Value(); got != 4 {
		t.Fatalf("static run recorded %d chunks, want 4 (one per worker)", got)
	}
}

// TestLeapFrogForcesStatic: worker-pinned streams make stealing unsound,
// so a LeapFrog run requesting the dynamic schedule must silently take the
// static path (no steals) and still reproduce the static LeapFrog layout.
func TestLeapFrogForcesStatic(t *testing.T) {
	g := testGraph(88, 100, 800)
	const count, w = 400, 4
	ref := rrr.NewCollection(100)
	NewBatchSampler(g, Options{
		Model: diffuse.IC, Workers: w, Seed: 6, RNG: LeapFrog, Schedule: ScheduleStatic,
	}).Sample(ref, count)

	col := rrr.NewCollection(100)
	bs := NewBatchSampler(g, Options{
		Model: diffuse.IC, Workers: w, Seed: 6, RNG: LeapFrog, Schedule: ScheduleDynamic,
	})
	bs.Sample(col, count)
	if bs.Steals() != 0 {
		t.Fatalf("LeapFrog run stole %d times; pinned streams must force static", bs.Steals())
	}
	if !sameCollection(ref, col) {
		t.Fatal("LeapFrog dynamic-requested collection != static collection")
	}
}

// TestSampleBatchSteadyStateAllocs is the allocation-churn regression: once
// the per-worker arenas, generators, and scratch are warm, a batch must
// allocate O(1) — nothing per sample. The bounds are far below one
// allocation per handful of samples, so any reintroduced per-sample churn
// (a fresh generator, a re-sliced BFS queue, a fresh arena) trips them.
func TestSampleBatchSteadyStateAllocs(t *testing.T) {
	g := testGraph(99, 200, 1600)
	const count = 2048
	for _, tc := range []struct {
		name    string
		workers int
		sched   Schedule
		bound   float64
	}{
		// workers=1 runs inline: only the merge scratch and batch
		// bookkeeping may allocate.
		{"workers=1", 1, ScheduleDynamic, 8},
		// Multi-worker runs add goroutine spawns and the scheduler's range
		// array per batch — still O(workers), never O(samples).
		{"static-4", 4, ScheduleStatic, 64},
		{"dynamic-4", 4, ScheduleDynamic, 64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bs := NewBatchSampler(g, Options{Model: diffuse.IC, Workers: tc.workers, Seed: 12, Schedule: tc.sched})
			col := rrr.NewCollection(200)
			// Warm-up: grow arenas, scratch, and the collection to steady
			// state. Dynamic chunk boundaries vary run to run, so several
			// rounds let every worker's arena reach its high-water mark.
			for i := 0; i < 6; i++ {
				col.Truncate(0)
				bs.Sample(col, count)
			}
			avg := testing.AllocsPerRun(5, func() {
				col.Truncate(0)
				bs.Sample(col, count)
			})
			if avg > tc.bound {
				t.Fatalf("steady-state batch of %d samples allocates %.1f times, want <= %v",
					count, avg, tc.bound)
			}
		})
	}
}
