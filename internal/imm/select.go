package imm

import (
	"influmax/internal/graph"
	"influmax/internal/par"
	"influmax/internal/rrr"
)

// SelectSeeds runs the multithreaded greedy max-coverage of Algorithm 4
// over the collection with p workers and returns the k seeds in selection
// order together with the number of samples they cover.
//
// It builds the inverted incidence index of the collection and runs the
// indexed selection, which purges covered samples by direct lookup instead
// of the paper's per-seed scan over all samples; the output is byte-
// identical to SelectSeedsScan (the scan path is kept for exactly that
// regression check). Callers that already hold an Index — or that want the
// build timed separately, as Run does — use SelectSeedsIndexed directly.
func SelectSeeds(col *rrr.Collection, k, p int) ([]graph.Vertex, int64) {
	return SelectSeedsIndexed(col, rrr.BuildIndex(col, p), k, p)
}

// SelectSeedsIndexed is greedy max-coverage with index-driven purging: the
// interval-owned counters, deterministic parallel argmax and padding-seed
// behaviour of Algorithm 4 are unchanged, but when a seed is chosen its
// uncovered samples come straight from idx.SamplesOf instead of a
// membership test against every sample, cutting the per-iteration cost from
// O(|R|) sample visits to O(degree of the seed). idx must have been built
// from col (or an identical collection).
func SelectSeedsIndexed(col *rrr.Collection, idx *rrr.Index, k, p int) ([]graph.Vertex, int64) {
	n := col.NumVertices()
	if n == 0 {
		return nil, 0
	}
	if p <= 0 {
		p = par.DefaultWorkers()
	}
	if p > n {
		p = n
	}
	counter := make([]int32, n)
	covered := rrr.NewBitset(col.Count())

	// Step 1: population counts, each worker over its own vertex interval.
	par.Run(p, func(rank int) {
		vl, vh := par.Interval(n, p, rank)
		col.CountRange(counter, nil, graph.Vertex(vl), graph.Vertex(vh))
	})

	seeds := make([]graph.Vertex, 0, k)
	chosen := make([]bool, n)
	var coveredCount int64

	bests := make([]int64, p)
	args := make([]int, p)
	var matched []int32
	for len(seeds) < k {
		// Parallel argmax over vertex intervals.
		par.Run(p, func(rank int) {
			vl, vh := par.Interval(n, p, rank)
			best, arg := int64(-1), -1
			for v := vl; v < vh; v++ {
				if chosen[v] {
					continue
				}
				if c := int64(counter[v]); c > best {
					best, arg = c, v
				}
			}
			bests[rank], args[rank] = best, arg
		})
		_, arg := par.ReduceMax(bests, args)
		if arg < 0 {
			break // every vertex chosen (k == n)
		}
		v := graph.Vertex(arg)
		gain := int64(counter[v])
		seeds = append(seeds, v)
		chosen[arg] = true
		coveredCount += gain
		if gain == 0 {
			continue // padding seed: nothing to purge
		}
		// Purge by lookup: the seed's uncovered samples are read off its
		// incidence list and marked covered before the parallel region, so
		// the workers' reads of the bitset are race-free; each worker then
		// decrements the counters of its own vertex interval for exactly
		// those samples.
		matched = matched[:0]
		for _, j := range idx.SamplesOf(v) {
			if covered.Get(int(j)) {
				continue
			}
			covered.Set(int(j))
			matched = append(matched, j)
		}
		par.Run(p, func(rank int) {
			vl, vh := par.Interval(n, p, rank)
			for _, j := range matched {
				for _, u := range col.RangeOf(int(j), graph.Vertex(vl), graph.Vertex(vh)) {
					counter[u]--
				}
			}
		})
	}
	return seeds, coveredCount
}

// SelectSeedsSketch is SelectSeedsIndexed over a resident byte-coded
// sketch: col and idx are shared, immutable state (a serving process keeps
// one copy for all queries), and every call works exclusively on its own
// copy-on-read state — counters seeded from the index's incidence degrees
// (exactly the population counts CountRange would produce, without
// touching the store) and a fresh covered bitset — so any number of
// concurrent calls never mutate the sketch or each other. The selection
// loop, argmax discipline and padding-seed behaviour are identical to
// SelectSeedsIndexed, and so is the output: byte-identical seeds for the
// same samples at any k and worker count, whatever the store's labeling —
// counter decrements commute, so the order members decode in is
// irrelevant (the §13 determinism argument).
func SelectSeedsSketch(col *rrr.CodedCollection, idx *rrr.Index, k, p int) ([]graph.Vertex, int64) {
	n := col.NumVertices()
	if n == 0 {
		return nil, 0
	}
	if p <= 0 {
		p = par.DefaultWorkers()
	}
	if p > n {
		p = n
	}
	// Copy-on-read: the query-private counter vector is the index's degree
	// column, the covered bitset starts empty.
	counter := make([]int32, n)
	par.Run(p, func(rank int) {
		vl, vh := par.Interval(n, p, rank)
		for v := vl; v < vh; v++ {
			counter[v] = int32(idx.Degree(graph.Vertex(v)))
		}
	})
	covered := rrr.NewBitset(col.Count())

	seeds := make([]graph.Vertex, 0, k)
	chosen := make([]bool, n)
	var coveredCount int64

	bests := make([]int64, p)
	args := make([]int, p)
	var matched []int32
	// Purge scratch: each worker decodes its share of the matched samples
	// into a private decrement column (lazily allocated, reused across
	// iterations), so the expensive varint decode parallelizes; a second
	// interval-owned pass folds the columns into the shared counters with
	// no atomics. Integer sums are exact and commutative, so the counters
	// — and therefore the seeds — are identical to any other decode order
	// (the §13 determinism argument).
	decs := make([][]int32, p)
	for len(seeds) < k {
		par.Run(p, func(rank int) {
			vl, vh := par.Interval(n, p, rank)
			best, arg := int64(-1), -1
			for v := vl; v < vh; v++ {
				if chosen[v] {
					continue
				}
				if c := int64(counter[v]); c > best {
					best, arg = c, v
				}
			}
			bests[rank], args[rank] = best, arg
		})
		_, arg := par.ReduceMax(bests, args)
		if arg < 0 {
			break // every vertex chosen (k == n)
		}
		v := graph.Vertex(arg)
		gain := int64(counter[v])
		seeds = append(seeds, v)
		chosen[arg] = true
		coveredCount += gain
		if gain == 0 {
			continue // padding seed: nothing to purge
		}
		matched = matched[:0]
		for _, j := range idx.SamplesOf(v) {
			if covered.Get(int(j)) {
				continue
			}
			covered.Set(int(j))
			matched = append(matched, j)
		}
		par.ForEach(len(matched), p, func(rank, lo, hi int) {
			d := decs[rank]
			if d == nil {
				d = make([]int32, n)
				decs[rank] = d
			}
			for _, j := range matched[lo:hi] {
				col.AccumMembers(int(j), d)
			}
		})
		par.Run(p, func(rank int) {
			vl, vh := par.Interval(n, p, rank)
			for _, d := range decs {
				if d == nil {
					continue
				}
				for v := vl; v < vh; v++ {
					if d[v] != 0 {
						counter[v] -= d[v]
						d[v] = 0
					}
				}
			}
		})
	}
	return seeds, coveredCount
}

// SelectSeedsScan is the paper's Algorithm 4 verbatim: every purge
// re-scans the whole collection for samples containing the chosen seed
// (worker 0 records the matches — "if i=0 then R <- R\{Rj}"). Kept as the
// reference the indexed path must match byte-for-byte, and as the old side
// of BenchmarkSelectSeeds.
func SelectSeedsScan(col *rrr.Collection, k, p int) ([]graph.Vertex, int64) {
	n := col.NumVertices()
	if n == 0 {
		return nil, 0
	}
	if p <= 0 {
		p = par.DefaultWorkers()
	}
	if p > n {
		p = n
	}
	counter := make([]int32, n)
	covered := rrr.NewBitset(col.Count())

	par.Run(p, func(rank int) {
		vl, vh := par.Interval(n, p, rank)
		col.CountRange(counter, nil, graph.Vertex(vl), graph.Vertex(vh))
	})

	seeds := make([]graph.Vertex, 0, k)
	chosen := make([]bool, n)
	var coveredCount int64

	bests := make([]int64, p)
	args := make([]int, p)
	var matched []int32
	for len(seeds) < k {
		par.Run(p, func(rank int) {
			vl, vh := par.Interval(n, p, rank)
			best, arg := int64(-1), -1
			for v := vl; v < vh; v++ {
				if chosen[v] {
					continue
				}
				if c := int64(counter[v]); c > best {
					best, arg = c, v
				}
			}
			bests[rank], args[rank] = best, arg
		})
		_, arg := par.ReduceMax(bests, args)
		if arg < 0 {
			break
		}
		v := graph.Vertex(arg)
		gain := int64(counter[v])
		seeds = append(seeds, v)
		chosen[arg] = true
		coveredCount += gain
		if gain == 0 {
			continue
		}
		// Purge the samples containing v: every worker decrements the
		// counters of its own vertex interval for each matching sample;
		// worker 0 additionally records the matches, which are marked
		// covered after the barrier.
		matched = matched[:0]
		par.Run(p, func(rank int) {
			vl, vh := par.Interval(n, p, rank)
			for j := 0; j < col.Count(); j++ {
				if covered.Get(j) || !col.Contains(j, v) {
					continue
				}
				for _, u := range col.RangeOf(j, graph.Vertex(vl), graph.Vertex(vh)) {
					counter[u]--
				}
				if rank == 0 {
					matched = append(matched, int32(j))
				}
			}
		})
		for _, j := range matched {
			covered.Set(int(j))
		}
	}
	return seeds, coveredCount
}

// SelectSeedsNaive is the baseline's seed selection: it exploits the
// bidirectional hypergraph (vertex -> samples incidence) to purge covered
// samples by direct lookup, the strategy of the reference implementation.
// Sequential, as the baseline is.
func SelectSeedsNaive(store *rrr.NaiveStore, k int) ([]graph.Vertex, int64) {
	n := store.NumVertices()
	deg := make([]int64, n)
	for v := 0; v < n; v++ {
		deg[v] = int64(len(store.SamplesOf(graph.Vertex(v))))
	}
	covered := make([]bool, store.Count())
	chosen := make([]bool, n)
	seeds := make([]graph.Vertex, 0, k)
	var coveredCount int64
	for len(seeds) < k {
		best, arg := int64(-1), -1
		for v := 0; v < n; v++ {
			if !chosen[v] && deg[v] > best {
				best, arg = deg[v], v
			}
		}
		if arg < 0 {
			break
		}
		v := graph.Vertex(arg)
		seeds = append(seeds, v)
		chosen[arg] = true
		coveredCount += deg[v]
		for _, j := range store.SamplesOf(v) {
			if covered[j] {
				continue
			}
			covered[j] = true
			for _, u := range store.Sample(int(j)) {
				deg[u]--
			}
		}
	}
	return seeds, coveredCount
}
