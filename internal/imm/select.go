package imm

import (
	"influmax/internal/graph"
	"influmax/internal/par"
	"influmax/internal/rrr"
)

// SelectSeeds runs the multithreaded greedy max-coverage of Algorithm 4
// over the collection with p workers and returns the k seeds in selection
// order together with the number of samples they cover.
//
// Parallelization follows the paper exactly: the vertex set is split into
// p contiguous intervals, each owned by one worker, so counter updates
// need no atomics; every worker visits all samples but navigates to its
// interval within each sorted sample by binary search. The per-iteration
// argmax is a parallel reduction with deterministic tie-breaking (smaller
// vertex id wins).
func SelectSeeds(col *rrr.Collection, k, p int) ([]graph.Vertex, int64) {
	n := col.NumVertices()
	if p <= 0 {
		p = par.DefaultWorkers()
	}
	if p > n {
		p = n
	}
	counter := make([]int32, n)
	covered := make([]bool, col.Count())

	// Step 1: population counts, each worker over its own vertex interval.
	par.Run(p, func(rank int) {
		vl, vh := par.Interval(n, p, rank)
		col.CountRange(counter, nil, graph.Vertex(vl), graph.Vertex(vh))
	})

	seeds := make([]graph.Vertex, 0, k)
	chosen := make([]bool, n)
	var coveredCount int64

	bests := make([]int64, p)
	args := make([]int, p)
	for len(seeds) < k {
		// Parallel argmax over vertex intervals.
		par.Run(p, func(rank int) {
			vl, vh := par.Interval(n, p, rank)
			best, arg := int64(-1), -1
			for v := vl; v < vh; v++ {
				if chosen[v] {
					continue
				}
				if c := int64(counter[v]); c > best {
					best, arg = c, v
				}
			}
			bests[rank], args[rank] = best, arg
		})
		_, arg := par.ReduceMax(bests, args)
		if arg < 0 {
			break // every vertex chosen (k == n)
		}
		v := graph.Vertex(arg)
		gain := int64(counter[v])
		seeds = append(seeds, v)
		chosen[arg] = true
		coveredCount += gain
		if gain == 0 {
			continue // padding seed: nothing to purge
		}
		// Purge the samples containing v: every worker decrements the
		// counters of its own vertex interval for each matching sample;
		// worker 0 additionally records the matches, which are marked
		// covered after the barrier (the paper's "if i=0 then R <- R\{Rj}").
		var matched []int32
		par.Run(p, func(rank int) {
			vl, vh := par.Interval(n, p, rank)
			for j := 0; j < col.Count(); j++ {
				if covered[j] || !col.Contains(j, v) {
					continue
				}
				for _, u := range col.RangeOf(j, graph.Vertex(vl), graph.Vertex(vh)) {
					counter[u]--
				}
				if rank == 0 {
					matched = append(matched, int32(j))
				}
			}
		})
		for _, j := range matched {
			covered[j] = true
		}
	}
	return seeds, coveredCount
}

// SelectSeedsNaive is the baseline's seed selection: it exploits the
// bidirectional hypergraph (vertex -> samples incidence) to purge covered
// samples by direct lookup, the strategy of the reference implementation.
// Sequential, as the baseline is.
func SelectSeedsNaive(store *rrr.NaiveStore, k int) ([]graph.Vertex, int64) {
	n := store.NumVertices()
	deg := make([]int64, n)
	for v := 0; v < n; v++ {
		deg[v] = int64(len(store.SamplesOf(graph.Vertex(v))))
	}
	covered := make([]bool, store.Count())
	chosen := make([]bool, n)
	seeds := make([]graph.Vertex, 0, k)
	var coveredCount int64
	for len(seeds) < k {
		best, arg := int64(-1), -1
		for v := 0; v < n; v++ {
			if !chosen[v] && deg[v] > best {
				best, arg = deg[v], v
			}
		}
		if arg < 0 {
			break
		}
		v := graph.Vertex(arg)
		seeds = append(seeds, v)
		chosen[arg] = true
		coveredCount += deg[v]
		for _, j := range store.SamplesOf(v) {
			if covered[j] {
				continue
			}
			covered[j] = true
			for _, u := range store.Sample(int(j)) {
				deg[u]--
			}
		}
	}
	return seeds, coveredCount
}
