package imm

import (
	"slices"
	"testing"

	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/metrics"
	"influmax/internal/rng"
	"influmax/internal/rrr"
)

// rrrCollection samples `count` RRR sets from g into a Collection — the
// realistic workload (skewed set sizes, clustered membership) for the
// scan-vs-indexed equivalence checks below.
func rrrCollection(g *graph.Graph, seed uint64, count int) *rrr.Collection {
	col := rrr.NewCollection(g.NumVertices())
	sampler := diffuse.NewSampler(g, diffuse.IC)
	r := rng.New(rng.NewLCG(seed))
	var buf []graph.Vertex
	for i := 0; i < count; i++ {
		buf = sampler.GenerateRR(r, graph.Vertex(r.Intn(g.NumVertices())), buf[:0])
		col.Append(buf)
	}
	return col
}

// TestSelectSeedsIndexedMatchesScan is the tentpole's determinism gate: on
// fixed-seed synthetic graphs, the index-driven selection must return
// byte-identical seed sequences and coverage counts to the paper-faithful
// scan implementation, for one and several workers.
func TestSelectSeedsIndexedMatchesScan(t *testing.T) {
	graphs := []struct {
		seed uint64
		n, m int
	}{
		{101, 80, 500},
		{202, 150, 1200},
		{303, 300, 2600},
	}
	for _, gc := range graphs {
		g := testGraph(gc.seed, gc.n, gc.m)
		col := rrrCollection(g, gc.seed^0xabcd, 400)
		for _, p := range []int{1, 4} {
			wantSeeds, wantCov := SelectSeedsScan(col, 12, p)
			gotSeeds, gotCov := SelectSeeds(col, 12, p)
			if !slices.Equal(gotSeeds, wantSeeds) || gotCov != wantCov {
				t.Fatalf("graph seed=%d p=%d: indexed (%v, %d) != scan (%v, %d)",
					gc.seed, p, gotSeeds, gotCov, wantSeeds, wantCov)
			}
			// The prebuilt-index entry point must agree too.
			idx := rrr.BuildIndex(col, p)
			idxSeeds, idxCov := SelectSeedsIndexed(col, idx, 12, p)
			if !slices.Equal(idxSeeds, wantSeeds) || idxCov != wantCov {
				t.Fatalf("graph seed=%d p=%d: SelectSeedsIndexed diverges", gc.seed, p)
			}
		}
	}
}

// TestSelectSeedsPaddingSeeds exercises k larger than the number of
// vertices with nonzero coverage: both paths must pad with zero-gain seeds
// (deterministically, smallest id first) without over- or under-counting
// coverage.
func TestSelectSeedsPaddingSeeds(t *testing.T) {
	// 12 vertices, but only 0..2 ever appear in a sample.
	col := rrr.NewCollection(12)
	col.Append([]graph.Vertex{0, 1})
	col.Append([]graph.Vertex{1, 2})
	col.Append([]graph.Vertex{1})
	for _, p := range []int{1, 4} {
		seeds, cov := SelectSeeds(col, 7, p)
		scanSeeds, scanCov := SelectSeedsScan(col, 7, p)
		if !slices.Equal(seeds, scanSeeds) || cov != scanCov {
			t.Fatalf("p=%d: padding paths diverge: %v/%d vs %v/%d", p, seeds, cov, scanSeeds, scanCov)
		}
		if len(seeds) != 7 {
			t.Fatalf("p=%d: got %d seeds, want 7 (padded)", p, len(seeds))
		}
		if cov != 3 {
			t.Fatalf("p=%d: covered %d samples, want all 3", p, cov)
		}
		// Vertex 1 covers everything, so every later pick is padding and
		// must proceed in ascending id order.
		if seeds[0] != 1 {
			t.Fatalf("p=%d: first seed %v, want 1", p, seeds[0])
		}
		sorted := append([]graph.Vertex(nil), seeds[1:]...)
		slices.Sort(sorted)
		if !slices.Equal(sorted, seeds[1:]) {
			t.Fatalf("p=%d: padding seeds out of ascending order: %v", p, seeds)
		}
	}
}

// TestSelectSeedsMoreWorkersThanVertices is the par.Interval n < p shape:
// the worker count must clamp without panicking or changing the output.
func TestSelectSeedsMoreWorkersThanVertices(t *testing.T) {
	col := rrr.NewCollection(3)
	col.Append([]graph.Vertex{0, 2})
	col.Append([]graph.Vertex{2})
	ref, refCov := SelectSeeds(col, 2, 1)
	for _, fn := range []func(*rrr.Collection, int, int) ([]graph.Vertex, int64){SelectSeeds, SelectSeedsScan} {
		seeds, cov := fn(col, 2, 64)
		if !slices.Equal(seeds, ref) || cov != refCov {
			t.Fatalf("p=64: (%v, %d) != p=1 (%v, %d)", seeds, cov, ref, refCov)
		}
	}
}

// TestSelectSeedsZeroVertexUniverse is the n == 0 shape: an empty universe
// must yield no seeds on every path rather than a partitioning panic.
func TestSelectSeedsZeroVertexUniverse(t *testing.T) {
	col := rrr.NewCollection(0)
	for _, fn := range []func(*rrr.Collection, int, int) ([]graph.Vertex, int64){SelectSeeds, SelectSeedsScan} {
		seeds, cov := fn(col, 3, 4)
		if len(seeds) != 0 || cov != 0 {
			t.Fatalf("n=0: seeds=%v cov=%d, want none", seeds, cov)
		}
	}
}

// TestRunRecordsIndex checks the Run plumbing: the index footprint must be
// reported in the Result, the BuildIndex phase populated, and the
// rrr/index-bytes gauge set when a registry is attached.
func TestRunRecordsIndex(t *testing.T) {
	g := testGraph(50, 120, 900)
	reg := metrics.NewRegistry()
	res, err := Run(g, Options{K: 5, Epsilon: 0.5, Model: diffuse.IC, Workers: 4, Seed: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.IndexBytes <= 0 {
		t.Fatal("IndexBytes not recorded")
	}
	if got := reg.Gauge("rrr/index-bytes").Value(); got != res.IndexBytes {
		t.Fatalf("rrr/index-bytes gauge %d != IndexBytes %d", got, res.IndexBytes)
	}
	rep := res.Report(Options{K: 5, Epsilon: 0.5, Model: diffuse.IC, Seed: 2, Metrics: reg})
	if rep.IndexBytes != res.IndexBytes {
		t.Fatalf("report IndexBytes %d != %d", rep.IndexBytes, res.IndexBytes)
	}
}

// TestSelectSeedsSketchMatchesIndexed pins the serving path: selection
// over the byte-coded resident sketch (degree-seeded counters, arena
// purge) must return byte-identical seeds and coverage to
// SelectSeedsIndexed over the equivalent plain collection, for every
// queried k, worker count and store labeling.
func TestSelectSeedsSketchMatchesIndexed(t *testing.T) {
	g := testGraph(77, 200, 1600)
	col := rrrCollection(g, 0x5e1f, 500)
	idx := rrr.BuildIndex(col, 4)
	for _, relab := range []*rrr.Relabeling{nil, rrr.NewRelabeling(rrr.IncidenceOf(col, 4))} {
		coded := rrr.FromCollection(col, relab)
		cidx := rrr.BuildIndexCoded(coded, 4)
		for _, k := range []int{1, 10, 50, 200} {
			for _, p := range []int{1, 3, 8} {
				wantSeeds, wantCov := SelectSeedsIndexed(col, idx, k, p)
				gotSeeds, gotCov := SelectSeedsSketch(coded, cidx, k, p)
				if !slices.Equal(gotSeeds, wantSeeds) || gotCov != wantCov {
					t.Fatalf("relabeled=%v k=%d p=%d: sketch (%v, %d) != indexed (%v, %d)",
						relab != nil, k, p, gotSeeds, gotCov, wantSeeds, wantCov)
				}
			}
		}
	}
}

// TestSelectSeedsSketchConcurrentReads runs many queries over one shared
// sketch at once: copy-on-read state must keep them independent (the -race
// build is the real assertion here) and identical to a sequential run.
func TestSelectSeedsSketchConcurrentReads(t *testing.T) {
	g := testGraph(88, 120, 900)
	col := rrrCollection(g, 0xfeed, 300)
	comp := rrr.FromCollection(col, rrr.NewRelabeling(rrr.IncidenceOf(col, 2)))
	idx := rrr.BuildIndexCoded(comp, 2)
	wantSeeds, wantCov := SelectSeedsSketch(comp, idx, 25, 2)

	const queries = 16
	type out struct {
		seeds []graph.Vertex
		cov   int64
	}
	outs := make([]out, queries)
	done := make(chan int, queries)
	for q := 0; q < queries; q++ {
		go func(q int) {
			s, c := SelectSeedsSketch(comp, idx, 25, 2)
			outs[q] = out{s, c}
			done <- q
		}(q)
	}
	for q := 0; q < queries; q++ {
		<-done
	}
	for q, o := range outs {
		if !slices.Equal(o.seeds, wantSeeds) || o.cov != wantCov {
			t.Fatalf("query %d diverged: (%v, %d) != (%v, %d)", q, o.seeds, o.cov, wantSeeds, wantCov)
		}
	}
}

// TestRunCollectMatchesRun checks the sketch-building entry point returns
// the very collection and index the run selected over: same Result, and a
// re-selection over the returned sketch reproduces the seeds.
func TestRunCollectMatchesRun(t *testing.T) {
	g := testGraph(91, 90, 700)
	opt := Options{K: 8, Epsilon: 0.5, Model: diffuse.IC, Workers: 2, Seed: 5}
	want, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, col, idx, err := RunCollect(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got.Seeds, want.Seeds) || got.Theta != want.Theta {
		t.Fatalf("RunCollect result diverged from Run: %v vs %v", got.Seeds, want.Seeds)
	}
	if col.Count() != got.SamplesGenerated {
		t.Fatalf("returned collection has %d samples, result says %d", col.Count(), got.SamplesGenerated)
	}
	reSeeds, _ := SelectSeedsIndexed(col, idx, opt.K, 2)
	if !slices.Equal(reSeeds, want.Seeds) {
		t.Fatalf("re-selection over returned sketch gave %v, want %v", reSeeds, want.Seeds)
	}
}
