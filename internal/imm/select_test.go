package imm

import (
	"slices"
	"testing"

	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/metrics"
	"influmax/internal/rng"
	"influmax/internal/rrr"
)

// rrrCollection samples `count` RRR sets from g into a Collection — the
// realistic workload (skewed set sizes, clustered membership) for the
// scan-vs-indexed equivalence checks below.
func rrrCollection(g *graph.Graph, seed uint64, count int) *rrr.Collection {
	col := rrr.NewCollection(g.NumVertices())
	sampler := diffuse.NewSampler(g, diffuse.IC)
	r := rng.New(rng.NewLCG(seed))
	var buf []graph.Vertex
	for i := 0; i < count; i++ {
		buf = sampler.GenerateRR(r, graph.Vertex(r.Intn(g.NumVertices())), buf[:0])
		col.Append(buf)
	}
	return col
}

// TestSelectSeedsIndexedMatchesScan is the tentpole's determinism gate: on
// fixed-seed synthetic graphs, the index-driven selection must return
// byte-identical seed sequences and coverage counts to the paper-faithful
// scan implementation, for one and several workers.
func TestSelectSeedsIndexedMatchesScan(t *testing.T) {
	graphs := []struct {
		seed uint64
		n, m int
	}{
		{101, 80, 500},
		{202, 150, 1200},
		{303, 300, 2600},
	}
	for _, gc := range graphs {
		g := testGraph(gc.seed, gc.n, gc.m)
		col := rrrCollection(g, gc.seed^0xabcd, 400)
		for _, p := range []int{1, 4} {
			wantSeeds, wantCov := SelectSeedsScan(col, 12, p)
			gotSeeds, gotCov := SelectSeeds(col, 12, p)
			if !slices.Equal(gotSeeds, wantSeeds) || gotCov != wantCov {
				t.Fatalf("graph seed=%d p=%d: indexed (%v, %d) != scan (%v, %d)",
					gc.seed, p, gotSeeds, gotCov, wantSeeds, wantCov)
			}
			// The prebuilt-index entry point must agree too.
			idx := rrr.BuildIndex(col, p)
			idxSeeds, idxCov := SelectSeedsIndexed(col, idx, 12, p)
			if !slices.Equal(idxSeeds, wantSeeds) || idxCov != wantCov {
				t.Fatalf("graph seed=%d p=%d: SelectSeedsIndexed diverges", gc.seed, p)
			}
		}
	}
}

// TestSelectSeedsPaddingSeeds exercises k larger than the number of
// vertices with nonzero coverage: both paths must pad with zero-gain seeds
// (deterministically, smallest id first) without over- or under-counting
// coverage.
func TestSelectSeedsPaddingSeeds(t *testing.T) {
	// 12 vertices, but only 0..2 ever appear in a sample.
	col := rrr.NewCollection(12)
	col.Append([]graph.Vertex{0, 1})
	col.Append([]graph.Vertex{1, 2})
	col.Append([]graph.Vertex{1})
	for _, p := range []int{1, 4} {
		seeds, cov := SelectSeeds(col, 7, p)
		scanSeeds, scanCov := SelectSeedsScan(col, 7, p)
		if !slices.Equal(seeds, scanSeeds) || cov != scanCov {
			t.Fatalf("p=%d: padding paths diverge: %v/%d vs %v/%d", p, seeds, cov, scanSeeds, scanCov)
		}
		if len(seeds) != 7 {
			t.Fatalf("p=%d: got %d seeds, want 7 (padded)", p, len(seeds))
		}
		if cov != 3 {
			t.Fatalf("p=%d: covered %d samples, want all 3", p, cov)
		}
		// Vertex 1 covers everything, so every later pick is padding and
		// must proceed in ascending id order.
		if seeds[0] != 1 {
			t.Fatalf("p=%d: first seed %v, want 1", p, seeds[0])
		}
		sorted := append([]graph.Vertex(nil), seeds[1:]...)
		slices.Sort(sorted)
		if !slices.Equal(sorted, seeds[1:]) {
			t.Fatalf("p=%d: padding seeds out of ascending order: %v", p, seeds)
		}
	}
}

// TestSelectSeedsMoreWorkersThanVertices is the par.Interval n < p shape:
// the worker count must clamp without panicking or changing the output.
func TestSelectSeedsMoreWorkersThanVertices(t *testing.T) {
	col := rrr.NewCollection(3)
	col.Append([]graph.Vertex{0, 2})
	col.Append([]graph.Vertex{2})
	ref, refCov := SelectSeeds(col, 2, 1)
	for _, fn := range []func(*rrr.Collection, int, int) ([]graph.Vertex, int64){SelectSeeds, SelectSeedsScan} {
		seeds, cov := fn(col, 2, 64)
		if !slices.Equal(seeds, ref) || cov != refCov {
			t.Fatalf("p=64: (%v, %d) != p=1 (%v, %d)", seeds, cov, ref, refCov)
		}
	}
}

// TestSelectSeedsZeroVertexUniverse is the n == 0 shape: an empty universe
// must yield no seeds on every path rather than a partitioning panic.
func TestSelectSeedsZeroVertexUniverse(t *testing.T) {
	col := rrr.NewCollection(0)
	for _, fn := range []func(*rrr.Collection, int, int) ([]graph.Vertex, int64){SelectSeeds, SelectSeedsScan} {
		seeds, cov := fn(col, 3, 4)
		if len(seeds) != 0 || cov != 0 {
			t.Fatalf("n=0: seeds=%v cov=%d, want none", seeds, cov)
		}
	}
}

// TestRunRecordsIndex checks the Run plumbing: the index footprint must be
// reported in the Result, the BuildIndex phase populated, and the
// rrr/index-bytes gauge set when a registry is attached.
func TestRunRecordsIndex(t *testing.T) {
	g := testGraph(50, 120, 900)
	reg := metrics.NewRegistry()
	res, err := Run(g, Options{K: 5, Epsilon: 0.5, Model: diffuse.IC, Workers: 4, Seed: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.IndexBytes <= 0 {
		t.Fatal("IndexBytes not recorded")
	}
	if got := reg.Gauge("rrr/index-bytes").Value(); got != res.IndexBytes {
		t.Fatalf("rrr/index-bytes gauge %d != IndexBytes %d", got, res.IndexBytes)
	}
	rep := res.Report(Options{K: 5, Epsilon: 0.5, Model: diffuse.IC, Seed: 2, Metrics: reg})
	if rep.IndexBytes != res.IndexBytes {
		t.Fatalf("report IndexBytes %d != %d", rep.IndexBytes, res.IndexBytes)
	}
}
