package imm

import (
	"slices"
	"testing"

	"influmax/internal/diffuse"
	"influmax/internal/graph"
)

// TestStoreEquivalence is the acceptance gate of the byte-coded store: over
// three fixed-seed graphs, the IC, LT and weighted-cascade configurations,
// and one and four workers, a StoreCoded run must return byte-identical
// seeds, coverage and theta bookkeeping to the StoreFlat run with the same
// options. The coded path differs only in the representation the selection
// reads — the DESIGN.md §13 determinism argument says that cannot move a
// single seed, and this test is that argument made executable.
func TestStoreEquivalence(t *testing.T) {
	type config struct {
		name  string
		model diffuse.Model
		prep  func(*graph.Graph)
	}
	configs := []config{
		{"IC", diffuse.IC, func(*graph.Graph) {}},
		{"LT", diffuse.LT, func(g *graph.Graph) { g.NormalizeLT() }},
		{"WC", diffuse.IC, func(g *graph.Graph) { g.AssignWeightedCascade() }},
	}
	graphs := []struct {
		seed uint64
		n, m int
	}{
		{101, 150, 1200},
		{202, 80, 250},
		{303, 300, 3000},
	}
	for _, gc := range graphs {
		for _, cfg := range configs {
			for _, workers := range []int{1, 4} {
				g := testGraph(gc.seed, gc.n, gc.m)
				cfg.prep(g)
				opt := Options{K: 10, Epsilon: 0.5, Model: cfg.model, Workers: workers, Seed: gc.seed}

				opt.Store = StoreFlat
				flat, err := Run(g, opt)
				if err != nil {
					t.Fatalf("graph %d %s w=%d flat: %v", gc.seed, cfg.name, workers, err)
				}
				opt.Store = StoreCoded
				coded, err := Run(g, opt)
				if err != nil {
					t.Fatalf("graph %d %s w=%d coded: %v", gc.seed, cfg.name, workers, err)
				}

				if !slices.Equal(coded.Seeds, flat.Seeds) {
					t.Fatalf("graph %d %s w=%d: coded seeds %v != flat %v",
						gc.seed, cfg.name, workers, coded.Seeds, flat.Seeds)
				}
				if coded.CoverageFraction != flat.CoverageFraction ||
					coded.Theta != flat.Theta ||
					coded.SamplesGenerated != flat.SamplesGenerated {
					t.Fatalf("graph %d %s w=%d: bookkeeping diverged: coverage %v/%v theta %d/%d samples %d/%d",
						gc.seed, cfg.name, workers,
						coded.CoverageFraction, flat.CoverageFraction,
						coded.Theta, flat.Theta,
						coded.SamplesGenerated, flat.SamplesGenerated)
				}
				// The coded run must actually have compressed: its store is
				// smaller than the flat layout it reports as denominator, and
				// that denominator matches the flat run's actual footprint.
				if coded.Store != StoreCoded || flat.Store != StoreFlat {
					t.Fatalf("store kinds not stamped: %v / %v", coded.Store, flat.Store)
				}
				if coded.FlatStoreBytes != flat.StoreBytes {
					t.Fatalf("graph %d %s w=%d: coded FlatStoreBytes %d != flat StoreBytes %d",
						gc.seed, cfg.name, workers, coded.FlatStoreBytes, flat.StoreBytes)
				}
				if coded.StoreBytes >= flat.StoreBytes {
					t.Fatalf("graph %d %s w=%d: coded store %d B not below flat %d B",
						gc.seed, cfg.name, workers, coded.StoreBytes, flat.StoreBytes)
				}
				if coded.IndexBytes != flat.IndexBytes {
					t.Fatalf("graph %d %s w=%d: index bytes diverged %d != %d (index is label-invariant)",
						gc.seed, cfg.name, workers, coded.IndexBytes, flat.IndexBytes)
				}
			}
		}
	}
}

// TestRunSketchStoreFlatKeepsIdentity checks the StoreFlat sketch path: the
// resident store is byte-coded but identity-labeled, and still selects the
// exact flat seeds.
func TestRunSketchStoreFlatKeepsIdentity(t *testing.T) {
	g := testGraph(7, 100, 700)
	opt := Options{K: 6, Epsilon: 0.5, Model: diffuse.IC, Workers: 2, Seed: 7}
	res, col, idx, err := RunSketch(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if col.Relabeled() {
		t.Fatal("StoreFlat sketch came back relabeled")
	}
	if idx == nil || res.Store != StoreFlat {
		t.Fatalf("sketch run malformed: idx=%v store=%v", idx, res.Store)
	}
	want, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(res.Seeds, want.Seeds) {
		t.Fatalf("sketch seeds %v != run seeds %v", res.Seeds, want.Seeds)
	}
}
