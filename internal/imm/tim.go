package imm

import (
	"math"
	"time"

	"influmax/internal/graph"
	"influmax/internal/rrr"
	"influmax/internal/stats"
	"influmax/internal/trace"
)

// TIM+ (Tang, Xiao, Shi, SIGMOD 2014 — reference [4] of the paper) is
// IMM's predecessor: the same RIS skeleton, but theta is derived from a
// coarser lower bound KPT on OPT, estimated by measuring the expected
// width-based coverage kappa(R) = 1 - (1 - w(R)/m)^k of small sample
// batches (w(R) is the number of edges entering R's members), optionally
// refined by an intermediate greedy (the "+" in TIM+). IMM's martingale
// bound dominates it — TIM+ typically needs several times more samples
// for the same guarantee, which RunTIMPlus lets the benchmarks quantify.

// TIMResult extends Result with TIM+'s intermediate estimates.
type TIMResult struct {
	Result
	// KPTStar is the first-phase estimate of OPT's lower bound.
	KPTStar float64
	// KPTPlus is the refined bound actually used for theta.
	KPTPlus float64
}

// RunTIMPlus executes TIM+ over g. Options are interpreted as for Run
// (Workers parallelizes sampling and selection identically).
func RunTIMPlus(g *graph.Graph, opt Options) (*TIMResult, error) {
	opt = opt.withDefaults()
	if err := opt.validate(g.NumVertices()); err != nil {
		return nil, err
	}
	res := &TIMResult{}
	res.Workers = opt.Workers
	startOther := time.Now()
	n := g.NumVertices()
	nf := float64(n)
	m := float64(g.NumEdges())
	if m == 0 {
		m = 1
	}
	l := opt.L
	k := opt.K
	col := rrr.NewCollection(n)
	st := NewBatchSampler(g, opt)
	res.Phases.Add(trace.Other, time.Since(startOther))

	// Phase 1: KPT* estimation (Algorithm 2 of Tang et al. 2014).
	res.Phases.Measure(trace.Estimation, func() {
		kpt := 1.0
		maxI := int(math.Max(1, math.Floor(math.Log2(nf))-1))
		for i := 1; i <= maxI; i++ {
			ci := int64((6*l*math.Log(nf) + 6*math.Log(math.Log2(nf))) * math.Pow(2, float64(i)))
			// Grow the collection to ci total samples.
			if int64(col.Count()) < ci {
				st.Sample(col, int(ci)-col.Count())
			}
			sum := 0.0
			for j := 0; j < int(ci) && j < col.Count(); j++ {
				w := 0.0
				for _, v := range col.Sample(j) {
					w += float64(g.InDegree(v))
				}
				kappa := 1 - math.Pow(1-w/m, float64(k))
				sum += kappa
			}
			avg := sum / float64(ci)
			if avg > 1/math.Pow(2, float64(i)) {
				kpt = nf * avg / 2
				break
			}
		}
		res.KPTStar = kpt

		// Phase 2 ("+"): refine KPT with an intermediate greedy. Select
		// seeds on the current collection, then estimate their coverage on
		// a fresh batch; KPT+ = max(KPT*, F*n/(1+eps')).
		epsPrime := 5 * math.Cbrt(l*opt.Epsilon*opt.Epsilon/(l+float64(k)))
		seeds, _ := SelectSeeds(col, k, opt.Workers)
		lambdaPrime := (2 + epsPrime) * l * nf * math.Log(nf) / (epsPrime * epsPrime)
		need := int64(math.Ceil(lambdaPrime / kpt))
		fresh := rrr.NewCollection(n)
		// Cap the refinement batch to keep the phase bounded, as Tang's
		// implementation does.
		if need > 4*int64(col.Count())+1024 {
			need = 4*int64(col.Count()) + 1024
		}
		st.Sample(fresh, int(need))
		covered := 0
		for j := 0; j < fresh.Count(); j++ {
			for _, s := range seeds {
				if fresh.Contains(j, s) {
					covered++
					break
				}
			}
		}
		f := float64(covered) / float64(fresh.Count())
		kptPlus := f * nf / (1 + epsPrime)
		if kptPlus < kpt {
			kptPlus = kpt
		}
		res.KPTPlus = kptPlus
	})

	// Phase 3: sampling with TIM's lambda.
	res.Phases.Measure(trace.Sampling, func() {
		lambda := (8 + 2*opt.Epsilon) * nf *
			(l*math.Log(nf) + stats.LogBinomial(int64(n), int64(k)) + math.Ln2) /
			(opt.Epsilon * opt.Epsilon)
		res.Theta = int64(math.Ceil(lambda / res.KPTPlus))
		st.Sample(col, int(res.Theta)-col.Count())
	})

	// Phase 4: final selection, over the inverted incidence index.
	var idx *rrr.Index
	res.Phases.Measure(trace.IndexBuild, func() {
		idx = rrr.BuildIndex(col, opt.Workers)
	})
	res.IndexBytes = idx.Bytes()
	res.Phases.Measure(trace.SelectSeeds, func() {
		seeds, cov := SelectSeedsIndexed(col, idx, k, opt.Workers)
		res.Seeds = seeds
		if c := col.Count(); c > 0 {
			res.CoverageFraction = float64(cov) / float64(c)
		}
		res.EstimatedSpread = res.CoverageFraction * nf
	})
	res.SamplesGenerated = col.Count()
	res.StoreBytes = col.Bytes()
	res.LowerBound = res.KPTPlus
	return res, nil
}
