// Package metrics is the observability layer of the repository: a
// lightweight, allocation-conscious metrics registry (counters, gauges,
// and histograms with fixed power-of-two buckets) plus the structured
// RunReport that unifies what used to be scattered across imm.Result,
// trace.Times and ad-hoc harness prints.
//
// Mapping to the paper's Section 3 machinery and its evaluation:
//
//   - RunReport.PhaseSeconds is the stacked-bar decomposition of Figures
//     3-8 (EstimateTheta / Sample / SelectSeeds / Other, keyed by
//     trace.Phase.String()).
//   - RunReport.StoreBytes and HeapBytes are the Table 2 memory columns:
//     the exact RRR-store accounting and the coarse live-heap probe.
//   - RunReport.WorkerWork and WorkHistogram record per-worker sampling
//     work (RRR entries generated); their avg/max ratio (WorkBalance) is
//     the load balance that bounds the strong-scaling efficiency of
//     Figures 5-8.
//   - RunReport.PerRank holds one RankReport per MPI-style rank for
//     IMMdist runs (Section 3.2), gathered to rank 0 over the
//     internal/mpi GatherBytes collective — the per-rank breakdowns behind
//     Figures 7-8 without any stdout parsing.
//
// The hot-path types (Counter, Gauge, Histogram) are single allocations of
// atomics: Observe/Add/Inc never allocate and are safe for concurrent use
// by sampling workers. A Registry is a name-keyed collection of them;
// Snapshot freezes everything into plain maps for JSON serialization
// inside a RunReport.
//
// Every CLI takes -metrics-json <path> to write one RunReport (schema
// version SchemaVersion) per run, and -pprof <addr> /-cpuprofile
// /-memprofile to expose the pprof hooks in this package, so
// BENCH_*.json-style performance trajectories can be produced without
// parsing human-oriented output.
package metrics
