package metrics

import (
	"encoding/json"
	"fmt"

	"influmax/internal/mpi"
)

// GatherRankReports gathers every rank's sub-report at root over the mpi
// substrate. It is a collective: all ranks must call it with their own
// local report; root receives the reports indexed by rank, other ranks
// receive nil. Wire format is JSON, carried by the GatherBytes collective,
// so the struct can grow fields without touching the transport.
func GatherRankReports(c mpi.Comm, root int, local RankReport) ([]RankReport, error) {
	payload, err := json.Marshal(local)
	if err != nil {
		return nil, fmt.Errorf("metrics: encode rank report: %w", err)
	}
	parts, err := mpi.GatherBytes(c, root, payload)
	if err != nil {
		return nil, err
	}
	if c.Rank() != root {
		return nil, nil
	}
	out := make([]RankReport, len(parts))
	for r, p := range parts {
		if err := json.Unmarshal(p, &out[r]); err != nil {
			return nil, fmt.Errorf("metrics: decode rank %d report: %w", r, err)
		}
		if out[r].Rank != r {
			return nil, fmt.Errorf("metrics: rank %d sent report labeled rank %d", r, out[r].Rank)
		}
	}
	return out, nil
}
