package metrics

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. The zero value is ready to
// use; all methods are safe for concurrent use and never allocate.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to stay monotone; this is the
// caller's contract, not checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 level (bytes held, ranks active, ...). The
// zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the level by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// numBuckets is the fixed histogram resolution: bucket 0 holds values
// <= 0 and bucket i >= 1 holds values v with bits.Len64(v) == i, i.e. the
// log-scale range [2^(i-1), 2^i - 1]. 65 buckets cover the full int64
// range, so Observe never needs a range check or a resize.
const numBuckets = 65

// Histogram accumulates int64 observations into fixed power-of-two
// buckets. Observe is allocation-free and safe for concurrent use; use
// NewHistogram (or a Registry) to create one, since min/max tracking needs
// sentinel initialization.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	h.buckets[b].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bucket is one non-empty histogram bucket in a snapshot: Count values
// were observed in (Prev(Le), Le], where Le is the inclusive upper bound
// 2^i - 1 (Le = 0 collects all non-positive observations).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the serializable freeze of a Histogram. Under
// concurrent Observe calls the fields are each atomically read but not
// mutually consistent; snapshot quiescent histograms for exact numbers.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot freezes the histogram. Empty histograms report zero min/max.
func (h *Histogram) Snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.Mean = float64(s.Sum) / float64(s.Count)
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := int64(0)
		if i > 0 {
			if i >= 64 {
				le = math.MaxInt64
			} else {
				le = int64(1)<<i - 1
			}
		}
		s.Buckets = append(s.Buckets, Bucket{Le: le, Count: n})
	}
	return s
}

// ObserveAll is a convenience for bulk post-hoc observation (e.g. turning
// a per-worker work vector into a histogram snapshot).
func (h *Histogram) ObserveAll(vs []int64) {
	for _, v := range vs {
		h.Observe(v)
	}
}

// Registry is a name-keyed collection of metrics. Lookup takes a mutex
// (do it once, outside loops); the returned instruments are lock-free.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot is a Registry frozen into plain maps, as serialized inside a
// RunReport.
type Snapshot struct {
	Counters   map[string]int64              `json:"counters,omitempty"`
	Gauges     map[string]int64              `json:"gauges,omitempty"`
	Histograms map[string]*HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes every registered metric. Returns nil for an empty
// registry so RunReport serialization can omit the field entirely.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters)+len(r.gauges)+len(r.hists) == 0 {
		return nil
	}
	s := &Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]*HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// Names returns every registered metric name, sorted (for stable listings
// in tests and debug output).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
