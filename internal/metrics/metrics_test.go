package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("samples")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	if r.Counter("samples") != c {
		t.Fatal("Counter not idempotent per name")
	}
	g := r.Gauge("bytes")
	g.Set(100)
	g.Add(-40)
	if g.Value() != 60 {
		t.Fatalf("gauge = %d, want 60", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 7, 8, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 9 || s.Sum != 1026 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	if s.Min != 0 || s.Max != 1000 {
		t.Fatalf("min=%d max=%d", s.Min, s.Max)
	}
	// Bucket upper bounds are 2^i - 1: 0 | 1 | 3 | 7 | 15 | ... | 1023.
	want := map[int64]int64{0: 1, 1: 2, 3: 2, 7: 2, 15: 1, 1023: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want bounds %v", s.Buckets, want)
	}
	var total int64
	for _, b := range s.Buckets {
		if want[b.Le] != b.Count {
			t.Fatalf("bucket le=%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, s.Count)
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Observe(math.MaxInt64)
	h.Observe(-5)
	s := h.Snapshot()
	if s.Min != -5 || s.Max != math.MaxInt64 {
		t.Fatalf("min=%d max=%d", s.Min, s.Max)
	}
	if len(s.Buckets) != 2 || s.Buckets[0].Le != 0 || s.Buckets[1].Le != math.MaxInt64 {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	s := NewHistogram().Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

// TestConcurrentObserve exercises the atomic paths under the race
// detector (the acceptance gate runs this package with -race).
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("work")
	c := r.Counter("n")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
				c.Inc()
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per || c.Value() != workers*per {
		t.Fatalf("count=%d counter=%d", h.Count(), c.Value())
	}
	s := h.Snapshot()
	if s.Min != 0 || s.Max != workers*per-1 {
		t.Fatalf("min=%d max=%d", s.Min, s.Max)
	}
}

func TestRegistrySnapshotAndNames(t *testing.T) {
	r := NewRegistry()
	if r.Snapshot() != nil {
		t.Fatal("empty registry should snapshot to nil")
	}
	r.Counter("a").Add(2)
	r.Gauge("b").Set(3)
	r.Histogram("c").Observe(4)
	s := r.Snapshot()
	if s.Counters["a"] != 2 || s.Gauges["b"] != 3 || s.Histograms["c"].Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("names = %v", names)
	}
}

func TestWorkBalanceOf(t *testing.T) {
	if got := WorkBalanceOf([]int64{10, 10, 10, 10}); got != 1.0 {
		t.Fatalf("perfect balance = %v", got)
	}
	if got := WorkBalanceOf([]int64{40, 0, 0, 0}); got != 0.25 {
		t.Fatalf("worst balance = %v", got)
	}
	if got := WorkBalanceOf(nil); got != 0 {
		t.Fatalf("empty work = %v", got)
	}
}
