package metrics

import (
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	runpprof "runtime/pprof"
)

// StartPprofServer exposes net/http/pprof on addr (e.g. "localhost:6060")
// and returns the bound server; callers may Close it or just let it die
// with the process. The listener is bound synchronously so a bad address
// fails here, not in a background goroutine.
func StartPprofServer(addr string) (*http.Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: pprof listen %s: %w", addr, err)
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // dies with the process
	return srv, nil
}

// StartCPUProfile begins a runtime CPU profile into path and returns the
// function that stops it and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("metrics: cpu profile: %w", err)
	}
	if err := runpprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("metrics: cpu profile: %w", err)
	}
	return func() error {
		runpprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile captures a heap profile into path, running a GC first
// so the profile reflects live objects (the Table 2 memory question).
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := runpprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("metrics: heap profile: %w", err)
	}
	return nil
}
