package metrics

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStartPprofServer(t *testing.T) {
	srv, err := StartPprofServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "heap") {
		t.Fatalf("status %d, body %.200s", resp.StatusCode, body)
	}
}

func TestStartPprofServerBadAddr(t *testing.T) {
	if _, err := StartPprofServer("not-an-address:-1"); err == nil {
		t.Fatal("expected listen error")
	}
}

func TestProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to write.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(cpu); err != nil || st.Size() == 0 {
		t.Fatalf("cpu profile: %v, size %v", err, st)
	}

	heap := filepath.Join(dir, "heap.pprof")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(heap); err != nil || st.Size() == 0 {
		t.Fatalf("heap profile: %v", err)
	}
}
