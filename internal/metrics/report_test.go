package metrics

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"influmax/internal/mpi"
	"influmax/internal/trace"
)

func TestRunReportRoundTrip(t *testing.T) {
	var ph trace.Times
	ph.Add(trace.Sampling, 2*time.Second)
	ph.Add(trace.Other, time.Second)
	rep := NewRunReport("IMMmt", ph)
	rep.K, rep.Epsilon, rep.Theta = 50, 0.5, 12345
	rep.WorkerWork = []int64{100, 90, 110, 100}
	rep.WorkBalance = WorkBalanceOf(rep.WorkerWork)
	h := NewHistogram()
	h.ObserveAll(rep.WorkerWork)
	rep.WorkHistogram = h.Snapshot()

	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got RunReport
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion {
		t.Fatalf("schema = %d, want %d", got.Schema, SchemaVersion)
	}
	if got.Algorithm != "IMMmt" || got.Theta != 12345 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.PhaseSeconds[trace.Sampling.String()] != 2 {
		t.Fatalf("phase map = %v", got.PhaseSeconds)
	}
	if got.TotalSeconds != 3 {
		t.Fatalf("total = %v", got.TotalSeconds)
	}
	if got.WorkHistogram == nil || got.WorkHistogram.Count != 4 {
		t.Fatalf("work histogram = %+v", got.WorkHistogram)
	}
}

// TestRunReportSchemaField pins the wire name "schema": external
// trajectory tooling greps for it, so renaming is a breaking change.
func TestRunReportSchemaField(t *testing.T) {
	buf, err := NewRunReport("IMMopt", trace.Times{}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatal(err)
	}
	if v, ok := m["schema"].(float64); !ok || int(v) != SchemaVersion {
		t.Fatalf(`m["schema"] = %v, want %d`, m["schema"], SchemaVersion)
	}
	for _, key := range []string{"algorithm", "phaseSeconds", "totalSeconds", "theta", "storeBytes"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("JSON missing required key %q: %v", key, m)
		}
	}
}

func TestGatherRankReports(t *testing.T) {
	const p = 4
	comms := mpi.NewLocalCluster(p)
	var wg sync.WaitGroup
	outs := make([][]RankReport, p)
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var ph trace.Times
			ph.Add(trace.Sampling, time.Duration(rank+1)*time.Second)
			local := RankReport{
				Rank:         rank,
				LocalSamples: int64(100 * (rank + 1)),
				LocalWork:    int64(1000 * (rank + 1)),
				StoreBytes:   int64(1 << rank),
				PhaseSeconds: ph.Seconds(),
				TotalSeconds: ph.Total().Seconds(),
			}
			outs[rank], errs[rank] = GatherRankReports(comms[rank], 0, local)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 1; r < p; r++ {
		if outs[r] != nil {
			t.Fatalf("non-root rank %d got %v", r, outs[r])
		}
	}
	got := outs[0]
	if len(got) != p {
		t.Fatalf("root gathered %d reports, want %d", len(got), p)
	}
	for r := 0; r < p; r++ {
		if got[r].Rank != r || got[r].LocalSamples != int64(100*(r+1)) {
			t.Fatalf("report[%d] = %+v", r, got[r])
		}
		if got[r].PhaseSeconds[trace.Sampling.String()] != float64(r+1) {
			t.Fatalf("report[%d] phases = %v", r, got[r].PhaseSeconds)
		}
	}
}

func TestReportLog(t *testing.T) {
	l := NewReportLog()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Add(NewRunReport("IMMopt", trace.Times{}))
		}()
	}
	wg.Wait()
	if l.Len() != 10 {
		t.Fatalf("len = %d", l.Len())
	}
	path := filepath.Join(t.TempDir(), "runs.json")
	if err := l.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var arr []RunReport
	if err := json.Unmarshal(buf, &arr); err != nil {
		t.Fatal(err)
	}
	if len(arr) != 10 || arr[0].Schema != SchemaVersion {
		t.Fatalf("decoded %d reports, first %+v", len(arr), arr[0])
	}
}
