package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Collectives use the high tag space so they never collide with user tags,
// which must be non-negative.
const (
	tagBarrier = -1 - iota
	tagBcast
	tagReduce
	tagGather
	tagAllGather
	tagAllToAll
	tagGatherBytes
)

// Op is a reduction operator.
type Op int

// Reduction operators.
const (
	Sum Op = iota
	Max
	Min
)

// Number covers the element types the typed collectives support.
type Number interface {
	~int32 | ~int64 | ~uint32 | ~uint64 | ~float64
}

// combine applies op elementwise: dst[i] = op(dst[i], src[i]).
func combine[T Number](dst, src []T, op Op) {
	switch op {
	case Sum:
		for i := range dst {
			dst[i] += src[i]
		}
	case Max:
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	case Min:
		for i := range dst {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	default:
		panic("mpi: unknown reduction op")
	}
}

// encode serializes a numeric slice little-endian, 8 bytes per element.
func encode[T Number](xs []T) []byte {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], toBits(x))
	}
	return buf
}

// toBits converts a Number to its uint64 wire pattern. Signed values are
// sign-extended so fromBits truncation round-trips them. Only the five
// base element types are supported (the constraint's ~ forms exist for
// ergonomic call sites, not named-type instantiation).
func toBits[T Number](x T) uint64 {
	switch v := any(x).(type) {
	case int32:
		return uint64(v)
	case int64:
		return uint64(v)
	case uint32:
		return uint64(v)
	case uint64:
		return v
	case float64:
		return math.Float64bits(v)
	}
	panic("mpi: unsupported numeric type")
}

// fromBits is the inverse of toBits for a given instantiation.
func fromBits[T Number](u uint64) T {
	var zero T
	switch any(zero).(type) {
	case int32:
		return T(any(int32(u)).(T))
	case int64:
		return T(any(int64(u)).(T))
	case uint32:
		return T(any(uint32(u)).(T))
	case uint64:
		return T(any(u).(T))
	case float64:
		return T(any(math.Float64frombits(u)).(T))
	}
	panic("mpi: unsupported numeric type")
}

// decode deserializes into a fresh slice of n elements.
func decode[T Number](buf []byte) []T {
	xs := make([]T, len(buf)/8)
	for i := range xs {
		xs[i] = fromBits[T](binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return xs
}

// Barrier blocks until every rank has entered it.
func Barrier(c Comm) error {
	// An empty reduce-then-broadcast through rank 0.
	if err := reduceBytes(c, tagBarrier, nil, nil); err != nil {
		return err
	}
	_, err := broadcastBytes(c, tagBarrier, nil)
	return err
}

// reduceBytes walks the binomial reduction tree toward rank 0. At each
// merge step it calls merge(payload) to fold a child's payload into the
// local state; the caller serializes its state with ser (called lazily
// when this rank must forward). A nil ser/merge performs a pure
// synchronization walk.
func reduceBytes(c Comm, tag int, ser func() []byte, merge func([]byte)) error {
	rank, p := c.Rank(), c.Size()
	for step := 1; step < p; step <<= 1 {
		if rank&(2*step-1) == step {
			var payload []byte
			if ser != nil {
				payload = ser()
			}
			return c.Send(rank-step, tag, payload)
		}
		if rank&(2*step-1) == 0 && rank+step < p {
			payload, err := c.Recv(rank+step, tag)
			if err != nil {
				return err
			}
			if merge != nil {
				merge(payload)
			}
		}
	}
	return nil
}

// broadcastBytes distributes rank 0's payload down the binomial tree and
// returns each rank's copy.
func broadcastBytes(c Comm, tag int, payload []byte) ([]byte, error) {
	rank, p := c.Rank(), c.Size()
	// Largest step used by the tree.
	top := 1
	for top < p {
		top <<= 1
	}
	for step := top >> 1; step >= 1; step >>= 1 {
		switch {
		case rank&(2*step-1) == 0 && rank+step < p:
			if err := c.Send(rank+step, tag, payload); err != nil {
				return nil, err
			}
		case rank&(2*step-1) == step:
			var err error
			payload, err = c.Recv(rank-step, tag)
			if err != nil {
				return nil, err
			}
		}
	}
	return payload, nil
}

// Broadcast distributes root's data to all ranks and returns each rank's
// copy. Only root's data argument is consulted.
func Broadcast[T Number](c Comm, root int, data []T) ([]T, error) {
	if err := checkPeer(c, root); err != nil {
		return nil, err
	}
	// Rotate so the tree is rooted at rank 0 without loss of generality:
	// rank r acts as virtual rank (r - root + p) % p.
	v := &rotatedComm{Comm: c, root: root}
	var payload []byte
	if c.Rank() == root {
		payload = encode(data)
	}
	out, err := broadcastBytes(v, tagBcast, payload)
	if err != nil {
		return nil, err
	}
	return decode[T](out), nil
}

// AllReduce reduces buf elementwise across all ranks with op and leaves
// the identical result in buf on every rank. All ranks must pass slices of
// equal length.
func AllReduce[T Number](c Comm, buf []T, op Op) error {
	acc := buf
	err := reduceBytes(c, tagReduce,
		func() []byte { return encode(acc) },
		func(payload []byte) {
			other := decode[T](payload)
			if len(other) != len(acc) {
				panic(fmt.Sprintf("mpi: AllReduce length mismatch: %d vs %d", len(other), len(acc)))
			}
			combine(acc, other, op)
		})
	if err != nil {
		return err
	}
	var payload []byte
	if c.Rank() == 0 {
		payload = encode(acc)
	}
	out, err := broadcastBytes(c, tagBcast, payload)
	if err != nil {
		return err
	}
	copy(buf, decode[T](out))
	return nil
}

// Reduce folds data from all ranks onto root; non-root ranks receive nil.
func Reduce[T Number](c Comm, root int, data []T, op Op) ([]T, error) {
	if err := checkPeer(c, root); err != nil {
		return nil, err
	}
	v := &rotatedComm{Comm: c, root: root}
	acc := append([]T(nil), data...)
	err := reduceBytes(v, tagReduce,
		func() []byte { return encode(acc) },
		func(payload []byte) { combine(acc, decode[T](payload), op) })
	if err != nil {
		return nil, err
	}
	if c.Rank() == root {
		return acc, nil
	}
	return nil, nil
}

// Gather collects each rank's data at root, indexed by rank; non-root
// ranks receive nil. Lengths may differ across ranks.
func Gather[T Number](c Comm, root int, data []T) ([][]T, error) {
	if err := checkPeer(c, root); err != nil {
		return nil, err
	}
	if c.Rank() != root {
		return nil, c.Send(root, tagGather, encode(data))
	}
	out := make([][]T, c.Size())
	out[root] = append([]T(nil), data...)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		payload, err := c.Recv(r, tagGather)
		if err != nil {
			return nil, err
		}
		out[r] = decode[T](payload)
	}
	return out, nil
}

// GatherBytes collects each rank's opaque payload at root, indexed by
// rank; non-root ranks receive nil. It is the untyped sibling of Gather,
// used where ranks exchange serialized structures (the per-rank RunReport
// sub-reports of internal/metrics) rather than numeric vectors.
func GatherBytes(c Comm, root int, payload []byte) ([][]byte, error) {
	if err := checkPeer(c, root); err != nil {
		return nil, err
	}
	if c.Rank() != root {
		return nil, c.Send(root, tagGatherBytes, payload)
	}
	out := make([][]byte, c.Size())
	out[root] = payload
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		p, err := c.Recv(r, tagGatherBytes)
		if err != nil {
			return nil, err
		}
		out[r] = p
	}
	return out, nil
}

// AllGather collects each rank's data on every rank, indexed by rank.
func AllGather[T Number](c Comm, data []T) ([][]T, error) {
	parts, err := Gather(c, 0, data)
	if err != nil {
		return nil, err
	}
	// Root flattens with a length prefix per rank, then broadcasts.
	var lengths []int64
	var flat []T
	if c.Rank() == 0 {
		lengths = make([]int64, len(parts))
		for r, p := range parts {
			lengths[r] = int64(len(p))
			flat = append(flat, p...)
		}
	}
	lengths, err = Broadcast(c, 0, lengths)
	if err != nil {
		return nil, err
	}
	flat, err = Broadcast(c, 0, flat)
	if err != nil {
		return nil, err
	}
	out := make([][]T, c.Size())
	off := int64(0)
	for r := range out {
		out[r] = flat[off : off+lengths[r]]
		off += lengths[r]
	}
	return out, nil
}

// AllToAll performs a personalized exchange: rank r receives, from every
// rank s, the slice parts[s] that s passed at index r. parts must have
// Size() entries (parts[Rank()] is delivered locally). Used by the
// graph-partitioned sampler's frontier exchange.
func AllToAll[T Number](c Comm, parts [][]T) ([][]T, error) {
	p := c.Size()
	if len(parts) != p {
		return nil, fmt.Errorf("mpi: AllToAll needs %d parts, got %d", p, len(parts))
	}
	out := make([][]T, p)
	out[c.Rank()] = parts[c.Rank()]
	for dst := 0; dst < p; dst++ {
		if dst == c.Rank() {
			continue
		}
		if err := c.Send(dst, tagAllToAll, encode(parts[dst])); err != nil {
			return nil, err
		}
	}
	for src := 0; src < p; src++ {
		if src == c.Rank() {
			continue
		}
		payload, err := c.Recv(src, tagAllToAll)
		if err != nil {
			return nil, err
		}
		out[src] = decode[T](payload)
	}
	return out, nil
}

// AllReduceRing is the bandwidth-optimal ring variant of AllReduce
// (reduce-scatter followed by all-gather, 2(p-1) steps moving ~2|buf|/p
// per step). Latency is O(p) versus the binomial tree's O(log p): better
// for large buffers on few ranks, worse for the small k-round counter
// exchanges that dominate IMMdist — the trade-off quantified by
// BenchmarkAblationAllReduce.
func AllReduceRing[T Number](c Comm, buf []T, op Op) error {
	p := c.Size()
	if p == 1 {
		return nil
	}
	rank := c.Rank()
	next := (rank + 1) % p
	prev := (rank - 1 + p) % p
	// Chunk boundaries.
	bounds := make([]int, p+1)
	for i := 0; i <= p; i++ {
		bounds[i] = len(buf) * i / p
	}
	chunk := func(i int) []T { i = ((i % p) + p) % p; return buf[bounds[i]:bounds[i+1]] }

	// Reduce-scatter: after p-1 steps, rank r holds the fully reduced
	// chunk (r+1).
	for step := 0; step < p-1; step++ {
		sendIdx := rank - step
		recvIdx := rank - step - 1
		if err := c.Send(next, tagReduce, encode(chunk(sendIdx))); err != nil {
			return err
		}
		payload, err := c.Recv(prev, tagReduce)
		if err != nil {
			return err
		}
		combine(chunk(recvIdx), decode[T](payload), op)
	}
	// All-gather: circulate the reduced chunks.
	for step := 0; step < p-1; step++ {
		sendIdx := rank + 1 - step
		recvIdx := rank - step
		if err := c.Send(next, tagAllGather, encode(chunk(sendIdx))); err != nil {
			return err
		}
		payload, err := c.Recv(prev, tagAllGather)
		if err != nil {
			return err
		}
		copy(chunk(recvIdx), decode[T](payload))
	}
	return nil
}

// rotatedComm relabels ranks so collectives can be rooted anywhere while
// the tree code assumes root 0.
type rotatedComm struct {
	Comm
	root int
}

func (r *rotatedComm) Rank() int {
	return (r.Comm.Rank() - r.root + r.Size()) % r.Size()
}

func (r *rotatedComm) Send(dst, tag int, payload []byte) error {
	return r.Comm.Send((dst+r.root)%r.Size(), tag, payload)
}

func (r *rotatedComm) Recv(src, tag int) ([]byte, error) {
	return r.Comm.Recv((src+r.root)%r.Size(), tag)
}
