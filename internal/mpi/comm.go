package mpi

import (
	"errors"
	"fmt"
	"sync"
)

// Comm is one rank's endpoint into a communicator of Size() ranks.
type Comm interface {
	// Rank returns this endpoint's rank in [0, Size()).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Send delivers payload to rank dst with the given tag. The payload is
	// owned by the transport after the call returns.
	Send(dst, tag int, payload []byte) error
	// Recv blocks until a message with the given tag from rank src is
	// available and returns its payload. Messages between a (src, dst,
	// tag) triple are delivered in send order.
	Recv(src, tag int) ([]byte, error)
	// Close releases transport resources. Pending Recvs fail.
	Close() error
}

// ErrClosed is returned by operations on a closed communicator.
var ErrClosed = errors.New("mpi: communicator closed")

// pairKey identifies a receive queue.
type pairKey struct {
	src, tag int
}

// mailbox is the shared delivery structure: per-(source, tag) FIFO queues
// with blocking receive. Both transports deliver into a mailbox.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[pairKey][][]byte
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{queues: make(map[pairKey][][]byte)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put enqueues a message.
func (m *mailbox) put(src, tag int, payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	k := pairKey{src, tag}
	m.queues[k] = append(m.queues[k], payload)
	m.cond.Broadcast()
	return nil
}

// take blocks for the next message from (src, tag).
func (m *mailbox) take(src, tag int) ([]byte, error) {
	k := pairKey{src, tag}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if q := m.queues[k]; len(q) > 0 {
			msg := q[0]
			if len(q) == 1 {
				delete(m.queues, k)
			} else {
				m.queues[k] = q[1:]
			}
			return msg, nil
		}
		if m.closed {
			return nil, ErrClosed
		}
		m.cond.Wait()
	}
}

// close marks the mailbox closed and wakes all waiters.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// checkPeer validates a rank argument.
func checkPeer(c Comm, peer int) error {
	if peer < 0 || peer >= c.Size() {
		return fmt.Errorf("mpi: rank %d out of range [0, %d)", peer, c.Size())
	}
	return nil
}
