package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Comm is one rank's endpoint into a communicator of Size() ranks.
type Comm interface {
	// Rank returns this endpoint's rank in [0, Size()).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Send delivers payload to rank dst with the given tag. The payload is
	// owned by the transport after the call returns.
	Send(dst, tag int, payload []byte) error
	// Recv blocks until a message with the given tag from rank src is
	// available and returns its payload. Messages between a (src, dst,
	// tag) triple are delivered in send order.
	Recv(src, tag int) ([]byte, error)
	// Close releases transport resources. Pending Recvs fail.
	Close() error
}

// DeadlineRecver is implemented by transports whose Recv can be bounded by
// a timeout. RecvDeadline with timeout 0 behaves like Recv; a positive
// timeout that expires before a message arrives reports the peer as failed
// via RankFailedError.
type DeadlineRecver interface {
	RecvDeadline(src, tag int, timeout time.Duration) ([]byte, error)
}

// ErrClosed is returned by operations on a closed communicator.
var ErrClosed = errors.New("mpi: communicator closed")

// ErrRecvTimeout is the cause carried by a RankFailedError when a peer
// produced no message within the configured receive timeout.
var ErrRecvTimeout = errors.New("mpi: receive timed out")

// ErrInjectedCrash is the cause carried by a RankFailedError when the
// fault injector crashed the rank on schedule.
var ErrInjectedCrash = errors.New("mpi: injected crash")

// RankFailedError reports that a peer rank crashed, became unreachable, or
// failed to produce an expected message within the configured timeout. It
// is returned from Send/Recv and propagates out of every collective built
// on them, so a dead peer surfaces as a typed error instead of a hang.
type RankFailedError struct {
	// Rank is the peer this endpoint holds responsible. Different
	// survivors of the same failure may blame different ranks (a rank that
	// errored out of a collective stops forwarding, so its own parents see
	// it as failed) — exactly as in MPI fault reporting.
	Rank int
	// Err is the underlying cause: a connection error, ErrRecvTimeout, or
	// ErrInjectedCrash.
	Err error
}

func (e *RankFailedError) Error() string {
	return fmt.Sprintf("mpi: rank %d failed: %v", e.Rank, e.Err)
}

func (e *RankFailedError) Unwrap() error { return e.Err }

// pairKey identifies a receive queue.
type pairKey struct {
	src, tag int
}

// mailbox is the shared delivery structure: per-(source, tag) FIFO queues
// with blocking receive. Both transports deliver into a mailbox.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[pairKey][][]byte
	dead   map[int]error // src -> failure recorded by the transport
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{queues: make(map[pairKey][][]byte)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put enqueues a message.
func (m *mailbox) put(src, tag int, payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	k := pairKey{src, tag}
	m.queues[k] = append(m.queues[k], payload)
	m.cond.Broadcast()
	return nil
}

// markDead records that no further messages from src will arrive and wakes
// every waiter. Messages already enqueued stay deliverable; a take on an
// empty queue from src then fails instead of blocking forever.
func (m *mailbox) markDead(src int, err error) {
	m.mu.Lock()
	if m.dead == nil {
		m.dead = make(map[int]error)
	}
	if m.dead[src] == nil {
		m.dead[src] = err
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

// take blocks for the next message from (src, tag). A positive timeout
// bounds the wait; expiry reports src as failed.
func (m *mailbox) take(src, tag int, timeout time.Duration) ([]byte, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		timer := time.AfterFunc(timeout, func() {
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
		})
		defer timer.Stop()
	}
	k := pairKey{src, tag}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if q := m.queues[k]; len(q) > 0 {
			msg := q[0]
			if len(q) == 1 {
				delete(m.queues, k)
			} else {
				m.queues[k] = q[1:]
			}
			return msg, nil
		}
		if m.closed {
			return nil, ErrClosed
		}
		if err := m.dead[src]; err != nil {
			return nil, &RankFailedError{Rank: src, Err: err}
		}
		if timeout > 0 && !time.Now().Before(deadline) {
			return nil, &RankFailedError{Rank: src, Err: ErrRecvTimeout}
		}
		m.cond.Wait()
	}
}

// close marks the mailbox closed and wakes all waiters.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// checkPeer validates a rank argument.
func checkPeer(c Comm, peer int) error {
	if peer < 0 || peer >= c.Size() {
		return fmt.Errorf("mpi: rank %d out of range [0, %d)", peer, c.Size())
	}
	return nil
}
