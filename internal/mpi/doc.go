// Package mpi is the message-passing substrate underneath the distributed
// IMM implementation. The paper's algorithm needs only the classic
// single-program-multiple-data discipline: p ranks, point-to-point
// send/receive, and the collectives Barrier, Broadcast, Reduce, AllReduce,
// Gather and AllGather ("the dominant communication of the distributed
// implementation is due to the All-Reduce operations", Section 3.2).
//
// Two transports implement the Comm interface: an in-process transport
// (ranks are goroutines exchanging buffers through mailboxes; the analog of
// running MPI ranks on one node) and a TCP transport (ranks are processes
// in a full mesh of length-framed connections; the analog of a cluster).
// The collectives are transport-agnostic binomial trees, giving the same
// O(log p) step counts the paper's communication analysis assumes.
//
// Mapping to the paper's Section 3.2 machinery:
//
//   - AllReduce over per-vertex int64 counters is the whole of IMMdist's
//     seed selection traffic: one sum to form the global counters, then one
//     sum of decrements per selected seed — k+1 reductions of n elements,
//     the O(k n log p) term of the communication analysis. AllReduceRing is
//     the bandwidth-optimal alternative quantified by the ablation
//     benchmarks.
//   - Barrier and Broadcast implement the SPMD skeleton (all ranks run the
//     same Algorithm 1 control flow and must agree on theta).
//   - Gather, AllGather, AllToAll and GatherBytes support the harness and
//     observability layers: GatherBytes carries the per-rank RunReport
//     sub-reports of internal/metrics to rank 0, and AllToAll carries the
//     graph-partitioned sampler's frontier exchange.
//
// Usage contract (as in MPI): each rank drives its Comm from a single
// goroutine, and all ranks issue the same sequence of collective calls.
package mpi
