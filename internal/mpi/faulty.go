package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"influmax/internal/rng"
)

// This file is the chaos half of the substrate: a Comm decorator that
// injects seeded, deterministic transport faults — per-message latency,
// loss with bounded redelivery, duplication, reordering, and scheduled
// rank crashes — driven by a FaultPlan. Every fault decision is a pure
// function of (plan seed, peer, tag, per-channel sequence number), never
// of the wall clock, so the same plan reproduces the same fault schedule
// on every run.
//
// The decorator plays both ends of an unreliable link. On the send side it
// wraps each payload in an 8-byte sequence envelope and then misbehaves:
// holding a message so the channel's next one overtakes it (reorder),
// sleeping (delay), simulating loss followed by backoff-and-retransmit
// (drop), or sending the envelope twice (duplicate). On the receive side
// it reassembles: duplicates are discarded by sequence number and
// out-of-order arrivals are buffered until their turn, so the Comm
// contract — reliable per-(src, tag) FIFO — still holds above the
// decorator. That is what lets the equivalence suite demand byte-identical
// seed sets from IMMdist under a misbehaving network.
//
// Crashes are the exception: a rank scheduled to die stops cold (its
// transport closes, every later op returns RankFailedError), and the
// survivors detect it — by connection teardown on TCP, or by the plan's
// receive timeout on any transport.

// FaultPlan describes a deterministic schedule of injected faults. The
// zero value injects nothing. All probabilities are in [0, 1] and
// evaluated per message.
type FaultPlan struct {
	// Seed drives every fault decision; same seed, same schedule.
	Seed uint64
	// DelayProb delays a message by a deterministic duration in
	// [0, MaxDelay) before it reaches the transport.
	DelayProb float64
	// MaxDelay bounds injected latency (default 2ms when DelayProb > 0).
	MaxDelay time.Duration
	// DropProb loses a message on the simulated wire. Every loss is
	// followed by a backoff and retransmission, at most MaxRedeliver
	// times, after which delivery is forced — loss is bounded, so the
	// link stays fair-lossy rather than faulty-forever.
	DropProb float64
	// MaxRedeliver bounds consecutive simulated losses of one message
	// (default 3).
	MaxRedeliver int
	// DupProb sends a message twice; the receiving side discards the
	// duplicate by sequence number.
	DupProb float64
	// ReorderProb holds a message back so that the channel's next message
	// overtakes it on the wire; the receiving side restores order.
	ReorderProb float64
	// RecvTimeout bounds every Recv so a crashed peer surfaces as a
	// RankFailedError instead of a hang (0 = block forever; required for
	// crash plans over the in-process transport).
	RecvTimeout time.Duration
	// Crashes schedules rank deaths.
	Crashes []RankCrash
}

// RankCrash kills one rank after it has issued AfterSends sends: the
// send that would exceed the budget fails with ErrInjectedCrash, the
// underlying transport closes, and every subsequent op fails too.
type RankCrash struct {
	Rank       int
	AfterSends int
}

// Active reports whether the plan changes any behavior.
func (p FaultPlan) Active() bool {
	return p.DelayProb > 0 || p.DropProb > 0 || p.DupProb > 0 || p.ReorderProb > 0 ||
		p.RecvTimeout > 0 || len(p.Crashes) > 0
}

func (p FaultPlan) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return 2 * time.Millisecond
	}
	return p.MaxDelay
}

func (p FaultPlan) maxRedeliver() int {
	if p.MaxRedeliver <= 0 {
		return 3
	}
	return p.MaxRedeliver
}

// String renders the plan in the -fault-plan flag syntax; ParseFaultPlan
// inverts it.
func (p FaultPlan) String() string {
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	if p.DelayProb > 0 {
		parts = append(parts, fmt.Sprintf("delay=%g/%s", p.DelayProb, p.maxDelay()))
	}
	if p.DropProb > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g/%d", p.DropProb, p.maxRedeliver()))
	}
	if p.DupProb > 0 {
		parts = append(parts, fmt.Sprintf("dup=%g", p.DupProb))
	}
	if p.ReorderProb > 0 {
		parts = append(parts, fmt.Sprintf("reorder=%g", p.ReorderProb))
	}
	if p.RecvTimeout > 0 {
		parts = append(parts, fmt.Sprintf("timeout=%s", p.RecvTimeout))
	}
	for _, cr := range p.Crashes {
		parts = append(parts, fmt.Sprintf("kill=%d@%d", cr.Rank, cr.AfterSends))
	}
	return strings.Join(parts, ",")
}

// ParseFaultPlan parses the compact comma-separated plan syntax used by
// the -fault-plan flag:
//
//	seed=7              injector RNG seed
//	delay=0.2/5ms       delay probability / max duration
//	drop=0.1/3          loss probability / redelivery bound
//	dup=0.05            duplication probability
//	reorder=0.1         reorder probability
//	timeout=2s          receive timeout (peer-failure detection bound)
//	kill=1@500          crash rank 1 after 500 sends (repeatable)
//
// e.g. "seed=7,delay=0.2/5ms,drop=0.1/3,dup=0.05,reorder=0.1,timeout=2s".
func ParseFaultPlan(s string) (FaultPlan, error) {
	var p FaultPlan
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	prob := func(key, v string) (float64, error) {
		x, err := strconv.ParseFloat(v, 64)
		if err != nil || x < 0 || x > 1 {
			return 0, fmt.Errorf("mpi: fault plan %s=%q: want probability in [0, 1]", key, v)
		}
		return x, nil
	}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return p, fmt.Errorf("mpi: fault plan field %q: want key=value", field)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
			if err != nil {
				return p, fmt.Errorf("mpi: fault plan seed %q: %v", val, err)
			}
		case "delay":
			pr, rest, _ := strings.Cut(val, "/")
			if p.DelayProb, err = prob(key, pr); err != nil {
				return p, err
			}
			if rest != "" {
				if p.MaxDelay, err = time.ParseDuration(rest); err != nil {
					return p, fmt.Errorf("mpi: fault plan delay duration %q: %v", rest, err)
				}
			}
		case "drop":
			pr, rest, _ := strings.Cut(val, "/")
			if p.DropProb, err = prob(key, pr); err != nil {
				return p, err
			}
			if rest != "" {
				if p.MaxRedeliver, err = strconv.Atoi(rest); err != nil || p.MaxRedeliver < 1 {
					return p, fmt.Errorf("mpi: fault plan redelivery bound %q: want positive int", rest)
				}
			}
		case "dup":
			if p.DupProb, err = prob(key, val); err != nil {
				return p, err
			}
		case "reorder":
			if p.ReorderProb, err = prob(key, val); err != nil {
				return p, err
			}
		case "timeout":
			if p.RecvTimeout, err = time.ParseDuration(val); err != nil {
				return p, fmt.Errorf("mpi: fault plan timeout %q: %v", val, err)
			}
		case "kill":
			r, after, ok := strings.Cut(val, "@")
			var cr RankCrash
			if cr.Rank, err = strconv.Atoi(r); !ok || err != nil {
				return p, fmt.Errorf("mpi: fault plan kill %q: want rank@sends", val)
			}
			if cr.AfterSends, err = strconv.Atoi(after); err != nil || cr.AfterSends < 0 {
				return p, fmt.Errorf("mpi: fault plan kill %q: want rank@sends", val)
			}
			p.Crashes = append(p.Crashes, cr)
		default:
			return p, fmt.Errorf("mpi: fault plan: unknown key %q", key)
		}
	}
	return p, nil
}

// Fault-decision salts: one namespace per decision kind so the coins of a
// single message are independent.
const (
	saltDelay uint64 = 0x5ee00000001 + iota
	saltDelayLen
	saltDup
	saltReorder
	saltDrop // consumes maxRedeliver consecutive salts, keep last
)

// coin returns the uniform [0, 1) fault coin of (peer, tag, seq, salt) —
// a pure function of the plan seed, so schedules replay exactly.
func (p FaultPlan) coin(peer, tag int, seq, salt uint64) float64 {
	h := p.Seed ^ 0x6fa17000c0117a05
	h = rng.Mix64(h ^ uint64(int64(peer))*0x9e3779b97f4a7c15)
	h = rng.Mix64(h ^ uint64(int64(tag))*0xd1342543de82ef95)
	h = rng.Mix64(h ^ seq*0x632be59bd9b4e019 ^ salt)
	return float64(h>>11) * (1.0 / (1 << 53))
}

// chanKey identifies one directed (peer, tag) message channel.
type chanKey struct {
	peer, tag int
}

// heldEnv is a send-side deferred envelope (the reorder slot).
type heldEnv struct {
	key chanKey
	seq uint64
	env []byte
}

// recvChan is the receive-side reassembly state of one channel.
type recvChan struct {
	next    uint64            // next sequence number to deliver
	pending map[uint64][]byte // out-of-order arrivals, keyed by seq
}

// faultyComm decorates any transport with the plan's faults. Like every
// Comm, an endpoint is driven by one goroutine (its rank's).
type faultyComm struct {
	inner      Comm
	plan       FaultPlan
	crashAfter int // sends budget before the scheduled crash; -1 = never

	mu      sync.Mutex
	sendSeq map[chanKey]uint64
	held    map[chanKey]heldEnv
	sends   int
	crashed *RankFailedError

	recvMu sync.Mutex
	recv   map[chanKey]*recvChan

	stats statCounters
}

// WithFaults wraps inner in the fault-injecting decorator. An inactive
// plan returns inner unchanged. Close the returned Comm once the rank's
// conversation is over: the reorder fault may still be holding the
// channel's final envelope, and only a later Send, a Recv, or Close
// releases it.
func WithFaults(inner Comm, plan FaultPlan) Comm {
	if !plan.Active() {
		return inner
	}
	f := &faultyComm{
		inner:      inner,
		plan:       plan,
		crashAfter: -1,
		sendSeq:    make(map[chanKey]uint64),
		held:       make(map[chanKey]heldEnv),
		recv:       make(map[chanKey]*recvChan),
	}
	for _, cr := range plan.Crashes {
		if cr.Rank == inner.Rank() {
			f.crashAfter = cr.AfterSends
		}
	}
	return f
}

func (f *faultyComm) Rank() int { return f.inner.Rank() }
func (f *faultyComm) Size() int { return f.inner.Size() }

// CommStats merges the injector's counters with the wrapped transport's.
func (f *faultyComm) CommStats() CommStats {
	return f.stats.snapshot().add(StatsOf(f.inner))
}

func (f *faultyComm) Send(dst, tag int, payload []byte) error {
	f.mu.Lock()
	if f.crashed != nil {
		err := f.crashed
		f.mu.Unlock()
		return err
	}
	f.sends++
	if f.crashAfter >= 0 && f.sends > f.crashAfter {
		f.crashed = &RankFailedError{Rank: f.inner.Rank(), Err: ErrInjectedCrash}
		err := f.crashed
		f.mu.Unlock()
		f.inner.Close()
		return err
	}
	f.stats.sends.Add(1)
	k := chanKey{dst, tag}
	seq := f.sendSeq[k]
	f.sendSeq[k] = seq + 1
	env := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint64(env, seq)
	copy(env[8:], payload)

	release, hadHeld := f.held[k]
	delete(f.held, k)
	if !hadHeld && f.plan.ReorderProb > 0 && f.plan.coin(dst, tag, seq, saltReorder) < f.plan.ReorderProb {
		// Defer this envelope: the channel's next message (or the next
		// Recv/Close, whichever comes first — see flushHeld) overtakes it,
		// so it arrives out of order and exercises the reassembly path.
		f.held[k] = heldEnv{key: k, seq: seq, env: env}
		f.stats.reorders.Add(1)
		f.mu.Unlock()
		return nil
	}
	f.mu.Unlock()
	if err := f.deliver(dst, tag, seq, env); err != nil {
		return err
	}
	if hadHeld {
		return f.deliver(dst, tag, release.seq, release.env)
	}
	return nil
}

// deliver pushes one envelope through the delay/drop/duplicate pipeline
// into the wrapped transport.
func (f *faultyComm) deliver(dst, tag int, seq uint64, env []byte) error {
	p := f.plan
	if p.DelayProb > 0 && p.coin(dst, tag, seq, saltDelay) < p.DelayProb {
		f.stats.delays.Add(1)
		d := time.Duration(p.coin(dst, tag, seq, saltDelayLen) * float64(p.maxDelay()))
		time.Sleep(d)
	}
	for attempt := 0; p.DropProb > 0 && attempt < p.maxRedeliver() &&
		p.coin(dst, tag, seq, saltDrop+uint64(attempt)) < p.DropProb; attempt++ {
		// The message is "lost"; back off as a retransmission would, then
		// offer it again. Past MaxRedeliver losses delivery is forced.
		f.stats.drops.Add(1)
		time.Sleep(time.Duration(100<<min(attempt, 4)) * time.Microsecond)
	}
	if err := f.inner.Send(dst, tag, env); err != nil {
		return wrapSendErr(dst, err)
	}
	if p.DupProb > 0 && p.coin(dst, tag, seq, saltDup) < p.DupProb {
		f.stats.dups.Add(1)
		// The duplicate is wire noise on top of a delivered message: if the
		// peer has moved on (endpoint closed between the two copies), the
		// copy vanishing is exactly what a real network would do.
		f.inner.Send(dst, tag, env)
	}
	return nil
}

// wrapSendErr types a send into a closed endpoint as a rank failure: over
// the in-process transport a crashed peer's mailbox reports ErrClosed, and
// survivors must see the same typed error the TCP transport produces.
func wrapSendErr(dst int, err error) error {
	if errors.Is(err, ErrClosed) {
		return &RankFailedError{Rank: dst, Err: err}
	}
	return err
}

// flushHeld releases every deferred envelope. Called before blocking in
// Recv and on Close, which guarantees liveness: a held message cannot
// outlive the sender's next receive, so request-reply protocols (all the
// collectives) never deadlock on a deferred send.
func (f *faultyComm) flushHeld() error {
	f.mu.Lock()
	if len(f.held) == 0 {
		f.mu.Unlock()
		return nil
	}
	held := make([]heldEnv, 0, len(f.held))
	for _, h := range f.held {
		held = append(held, h)
	}
	clear(f.held)
	f.mu.Unlock()
	sort.Slice(held, func(i, j int) bool {
		a, b := held[i].key, held[j].key
		if a.peer != b.peer {
			return a.peer < b.peer
		}
		return a.tag < b.tag
	})
	for _, h := range held {
		if err := f.deliver(h.key.peer, h.key.tag, h.seq, h.env); err != nil {
			return err
		}
	}
	return nil
}

func (f *faultyComm) Recv(src, tag int) ([]byte, error) {
	return f.RecvDeadline(src, tag, f.plan.RecvTimeout)
}

// RecvDeadline receives with a bounded wait, reassembling the envelope
// stream: duplicates are dropped by sequence number and out-of-order
// arrivals buffered until their turn, restoring the per-channel FIFO
// contract above the injected faults.
func (f *faultyComm) RecvDeadline(src, tag int, timeout time.Duration) ([]byte, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed != nil {
		return nil, crashed
	}
	if err := f.flushHeld(); err != nil {
		return nil, err
	}
	f.recvMu.Lock()
	defer f.recvMu.Unlock()
	k := chanKey{src, tag}
	ch := f.recv[k]
	if ch == nil {
		ch = &recvChan{pending: make(map[uint64][]byte)}
		f.recv[k] = ch
	}
	for {
		if payload, ok := ch.pending[ch.next]; ok {
			delete(ch.pending, ch.next)
			ch.next++
			return payload, nil
		}
		env, err := recvDeadline(f.inner, src, tag, timeout)
		if err != nil {
			return nil, err
		}
		if len(env) < 8 {
			return nil, fmt.Errorf("mpi: fault injector received short envelope (%d bytes)", len(env))
		}
		seq := binary.LittleEndian.Uint64(env)
		if seq < ch.next {
			continue // duplicate of an already delivered message
		}
		ch.pending[seq] = env[8:]
	}
}

func (f *faultyComm) Close() error {
	f.flushHeld()
	return f.inner.Close()
}

// recvDeadline performs a receive honoring timeout when the transport
// supports deadlines, falling back to a blocking Recv otherwise.
func recvDeadline(c Comm, src, tag int, timeout time.Duration) ([]byte, error) {
	if timeout > 0 {
		if dr, ok := c.(DeadlineRecver); ok {
			return dr.RecvDeadline(src, tag, timeout)
		}
	}
	return c.Recv(src, tag)
}
