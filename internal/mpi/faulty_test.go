package mpi

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestParseFaultPlanRoundTrip(t *testing.T) {
	for _, src := range []string{
		"",
		"seed=7",
		"seed=7,delay=0.2/5ms",
		"seed=9,drop=0.1/4,dup=0.05",
		"seed=3,delay=0.25/1ms,drop=0.5/2,dup=0.125,reorder=0.5,timeout=2s",
		"seed=1,kill=1@500,kill=3@0",
	} {
		plan, err := ParseFaultPlan(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		again, err := ParseFaultPlan(plan.String())
		if err != nil {
			t.Fatalf("re-parse %q (of %q): %v", plan.String(), src, err)
		}
		if !reflect.DeepEqual(plan, again) {
			t.Errorf("round trip of %q: %+v != %+v", src, plan, again)
		}
	}
}

func TestParseFaultPlanErrors(t *testing.T) {
	for _, src := range []string{
		"bogus",
		"frequency=0.5",
		"seed=notanumber",
		"delay=1.5",
		"delay=-0.1",
		"delay=0.5/xyz",
		"drop=0.5/0",
		"drop=0.5/-2",
		"dup=2",
		"reorder=nope",
		"timeout=fast",
		"kill=1",
		"kill=a@5",
		"kill=1@-3",
	} {
		if _, err := ParseFaultPlan(src); err == nil {
			t.Errorf("plan %q accepted", src)
		}
	}
}

func TestFaultPlanActive(t *testing.T) {
	if (FaultPlan{}).Active() {
		t.Error("zero plan reported active")
	}
	if WithFaults(NewLocalCluster(1)[0], FaultPlan{}).(*localComm) == nil {
		t.Error("inactive plan did not return the inner transport")
	}
	for _, p := range []FaultPlan{
		{DelayProb: 0.1},
		{DropProb: 0.1},
		{DupProb: 0.1},
		{ReorderProb: 0.1},
		{RecvTimeout: time.Second},
		{Crashes: []RankCrash{{Rank: 0, AfterSends: 5}}},
	} {
		if !p.Active() {
			t.Errorf("plan %+v reported inactive", p)
		}
	}
}

// chaosPlan is the heavy-fault reference plan the FIFO and determinism
// tests share.
func chaosPlan(seed uint64) FaultPlan {
	return FaultPlan{
		Seed:      seed,
		DelayProb: 0.1, MaxDelay: 200 * time.Microsecond,
		DropProb: 0.3, MaxRedeliver: 3,
		DupProb:     0.3,
		ReorderProb: 0.3,
	}
}

func TestFaultyPreservesFIFO(t *testing.T) {
	// The Comm contract — reliable per-(src, tag) FIFO — must survive heavy
	// duplication, loss and reordering, on several tags at once.
	const n = 200
	runSPMDPlan(t, 2, chaosPlan(7), func(c Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				for _, tag := range []int{3, 8} {
					if err := c.Send(1, tag, []byte{byte(i), byte(tag)}); err != nil {
						return err
					}
				}
			}
			// A receive flushes any still-held reordered envelope.
			if _, err := c.Recv(1, 1); err != nil {
				return err
			}
			return nil
		}
		for i := 0; i < n; i++ {
			for _, tag := range []int{3, 8} {
				msg, err := c.Recv(0, tag)
				if err != nil {
					return err
				}
				if len(msg) != 2 || msg[0] != byte(i) || msg[1] != byte(tag) {
					return fmt.Errorf("tag %d message %d: got %v", tag, i, msg)
				}
			}
		}
		return c.Send(0, 1, []byte("done"))
	})
}

func TestFaultyInjectsAndCounts(t *testing.T) {
	// With aggressive probabilities and hundreds of messages, every fault
	// kind must actually fire and be counted.
	comms := NewLocalCluster(2)
	var wg sync.WaitGroup
	var sendStats CommStats
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		c := WithFaults(comms[0], chaosPlan(11))
		defer c.Close()
		for i := 0; i < 300; i++ {
			if err := c.Send(1, 4, []byte{byte(i)}); err != nil {
				errs[0] = err
				return
			}
		}
		if _, err := c.Recv(1, 5); err != nil {
			errs[0] = err
			return
		}
		sendStats = StatsOf(c)
	}()
	go func() {
		defer wg.Done()
		c := WithFaults(comms[1], chaosPlan(11))
		defer c.Close()
		for i := 0; i < 300; i++ {
			msg, err := c.Recv(0, 4)
			if err != nil {
				errs[1] = err
				return
			}
			if msg[0] != byte(i) {
				errs[1] = fmt.Errorf("message %d: got %d", i, msg[0])
				return
			}
		}
		errs[1] = c.Send(0, 5, nil)
	}()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if !sendStats.Injected() {
		t.Fatalf("no faults injected: %+v", sendStats)
	}
	for name, v := range map[string]int64{
		"delays":   sendStats.DelaysInjected,
		"drops":    sendStats.DropsInjected,
		"dups":     sendStats.DupsInjected,
		"reorders": sendStats.ReordersInjected,
	} {
		if v == 0 {
			t.Errorf("%s never injected over 300 sends at p=0.3: %+v", name, sendStats)
		}
	}
	if m := sendStats.Map(); m["mpi/drops-injected"] != sendStats.DropsInjected {
		t.Errorf("Map() = %v does not carry DropsInjected %d", m, sendStats.DropsInjected)
	}
}

func TestFaultyDeterministicSchedule(t *testing.T) {
	// Same plan seed, same workload: the injected-fault schedule (and so
	// every counter) must replay exactly. Retries are excluded — they
	// depend on wall-clock I/O timing, not the plan.
	run := func() CommStats {
		var st CommStats
		runSPMDPlan(t, 3, chaosPlan(21), func(c Comm) error {
			for round := 0; round < 10; round++ {
				buf := []int64{int64(c.Rank() + round)}
				if err := AllReduce(c, buf, Sum); err != nil {
					return err
				}
			}
			if c.Rank() == 0 {
				st = StatsOf(c)
			}
			return nil
		})
		st.Retries = 0
		return st
	}
	a, b := run(), run()
	if !a.Injected() {
		t.Fatalf("no faults injected: %+v", a)
	}
	if a != b {
		t.Fatalf("same plan, different schedules:\n  first  %+v\n  second %+v", a, b)
	}
}

func TestFaultyCrashAllReduceLocal(t *testing.T) {
	// Rank 2 dies mid-collective. Every rank — victim and survivors — must
	// get a RankFailedError within the plan's receive timeout, never hang.
	const p, victim = 4, 2
	plan := FaultPlan{
		Seed:        5,
		RecvTimeout: 250 * time.Millisecond,
		Crashes:     []RankCrash{{Rank: victim, AfterSends: 10}},
	}
	start := time.Now()
	comms := NewLocalCluster(p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := WithFaults(comms[rank], plan)
			for round := 0; round < 1000; round++ {
				buf := []int64{int64(rank)}
				if err := AllReduce(c, buf, Sum); err != nil {
					errs[rank] = err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if el := time.Since(start); el > 30*time.Second {
		t.Fatalf("crash detection took %v", el)
	}
	for r, err := range errs {
		var rf *RankFailedError
		if !errors.As(err, &rf) {
			t.Fatalf("rank %d: %v, want RankFailedError", r, err)
		}
		if rf.Rank < 0 || rf.Rank >= p {
			t.Fatalf("rank %d blames out-of-range rank %d", r, rf.Rank)
		}
	}
	if !errors.Is(errs[victim], ErrInjectedCrash) {
		t.Errorf("victim's error %v does not carry ErrInjectedCrash", errs[victim])
	}
}

func TestFaultyCrashAllReduceTCP(t *testing.T) {
	// Same scenario over real sockets: connection teardown is the primary
	// failure detector, the receive timeout only a backstop.
	const p, victim = 3, 1
	plan := FaultPlan{
		Seed:        6,
		RecvTimeout: 500 * time.Millisecond,
		Crashes:     []RankCrash{{Rank: victim, AfterSends: 8}},
	}
	addrs := freeAddrs(t, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			inner, err := DialTCP(TCPConfig{Rank: rank, Addrs: addrs})
			if err != nil {
				errs[rank] = err
				return
			}
			c := WithFaults(inner, plan)
			defer c.Close()
			for round := 0; round < 1000; round++ {
				buf := []int64{int64(rank)}
				if err := AllReduce(c, buf, Sum); err != nil {
					errs[rank] = err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		var rf *RankFailedError
		if !errors.As(err, &rf) {
			t.Fatalf("rank %d: %v, want RankFailedError", r, err)
		}
	}
	if !errors.Is(errs[victim], ErrInjectedCrash) {
		t.Errorf("victim's error %v does not carry ErrInjectedCrash", errs[victim])
	}
}

func TestFaultyStatsMergeInnerTransport(t *testing.T) {
	// The decorator's CommStats must include the wrapped TCP transport's
	// counters (sends reach both layers).
	runTCPCluster(t, 2, func(inner Comm) error {
		c := WithFaults(inner, FaultPlan{Seed: 1, DupProb: 1})
		if c.Rank() == 0 {
			if err := c.Send(1, 2, []byte("x")); err != nil {
				return err
			}
			if _, err := c.Recv(1, 3); err != nil {
				return err
			}
			st := StatsOf(c)
			if st.DupsInjected == 0 {
				return fmt.Errorf("dup not injected: %+v", st)
			}
			// One logical send, duplicated: the TCP layer saw two frames, the
			// injector one message, so the merged count must exceed either.
			if st.Sends < 3 {
				return fmt.Errorf("merged sends %d, want >= 3 (injector + 2 wire frames)", st.Sends)
			}
			return nil
		}
		if _, err := c.Recv(0, 2); err != nil {
			return err
		}
		return c.Send(0, 3, nil)
	})
}
