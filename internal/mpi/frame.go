package mpi

import (
	"encoding/binary"
	"fmt"
	"io"
)

// The TCP transport's wire unit is a length-framed message:
//
//	tag int64 | length int64 | payload[length]
//
// both header fields little-endian. The reader validates the header before
// trusting it: a negative or over-limit length is a FrameError, and the
// payload buffer grows in bounded chunks as bytes actually arrive, so an
// adversarial header cannot force a max-size allocation up front.

// frameHeaderLen is the fixed header size (tag + length).
const frameHeaderLen = 16

// DefaultMaxFrame is the largest payload a TCP endpoint accepts unless
// TCPConfig.MaxFrame overrides it (1 GiB).
const DefaultMaxFrame int64 = 1 << 30

// frameAllocChunk bounds how much payload buffer is grown ahead of the
// bytes actually read.
const frameAllocChunk = 64 << 10

// FrameError reports a length-framed message whose header failed
// validation. The receiving endpoint treats it as a protocol violation and
// marks the sending peer dead.
type FrameError struct {
	Tag    int64
	Length int64
	Max    int64
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("mpi: invalid frame (tag %d, length %d, max %d)", e.Tag, e.Length, e.Max)
}

// appendFrame appends the wire encoding of one message to buf.
func appendFrame(buf []byte, tag int, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(int64(tag)))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(int64(len(payload))))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// readFrame reads one message from r, accepting payloads up to maxFrame
// bytes. It never panics on adversarial input and allocates at most
// frameAllocChunk bytes beyond what has actually been received.
func readFrame(r io.Reader, maxFrame int64) (tag int, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	t := int64(binary.LittleEndian.Uint64(hdr[:8]))
	length := int64(binary.LittleEndian.Uint64(hdr[8:]))
	if length < 0 || length > maxFrame {
		return 0, nil, &FrameError{Tag: t, Length: length, Max: maxFrame}
	}
	payload = make([]byte, 0, min(length, frameAllocChunk))
	for remaining := length; remaining > 0; {
		n := min(remaining, frameAllocChunk)
		start := len(payload)
		payload = append(payload, make([]byte, n)...)
		if _, err := io.ReadFull(r, payload[start:]); err != nil {
			return 0, nil, err
		}
		remaining -= n
	}
	return int(t), payload, nil
}
