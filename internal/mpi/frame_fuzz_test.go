package mpi

import (
	"bytes"
	"testing"
)

// FuzzReadFrame hammers the TCP transport's length-framed decoder with
// adversarial byte streams: it must never panic and never allocate beyond
// the frame bound, and whatever it accepts must re-encode to exactly the
// bytes it consumed.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendFrame(nil, 3, []byte("hello")))
	f.Add(appendFrame(nil, tagBarrier, nil))
	f.Add(appendFrame(nil, -9, bytes.Repeat([]byte{0xab}, 64))[:20]) // truncated payload
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // max-positive length claim
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxFrame = 1 << 16
		tag, payload, err := readFrame(bytes.NewReader(data), maxFrame)
		if err != nil {
			return
		}
		if int64(len(payload)) > maxFrame {
			t.Fatalf("accepted %d-byte payload past the %d bound", len(payload), maxFrame)
		}
		// Accepted frames must round-trip: re-encoding reproduces the exact
		// bytes the reader consumed.
		enc := appendFrame(nil, tag, payload)
		if len(enc) > len(data) || !bytes.Equal(enc, data[:len(enc)]) {
			t.Fatalf("round trip mismatch: decoded (tag %d, %d bytes) from %x", tag, len(payload), data)
		}
	})
}
