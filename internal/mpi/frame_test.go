package mpi

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		tag int
		n   int
	}{
		{0, 0},
		{5, 1},
		{tagBarrier, 0},  // collectives use negative tags
		{tagGather, 100}, // negative tag with payload
		{7, frameAllocChunk - 1},
		{8, frameAllocChunk},
		{9, frameAllocChunk + 1},
		{10, 3*frameAllocChunk + 17},
	} {
		payload := make([]byte, tc.n)
		for i := range payload {
			payload[i] = byte(i * 13)
		}
		buf := appendFrame(nil, tc.tag, payload)
		if len(buf) != frameHeaderLen+tc.n {
			t.Fatalf("tag %d n %d: frame length %d", tc.tag, tc.n, len(buf))
		}
		tag, got, err := readFrame(bytes.NewReader(buf), DefaultMaxFrame)
		if err != nil {
			t.Fatalf("tag %d n %d: %v", tc.tag, tc.n, err)
		}
		if tag != tc.tag {
			t.Fatalf("tag %d decoded as %d", tc.tag, tag)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("tag %d n %d: payload corrupted", tc.tag, tc.n)
		}
	}
}

func TestFrameRejectsOversizeLength(t *testing.T) {
	buf := appendFrame(nil, 3, make([]byte, 100))
	_, _, err := readFrame(bytes.NewReader(buf), 99)
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("oversize frame: %v, want FrameError", err)
	}
	if fe.Tag != 3 || fe.Length != 100 || fe.Max != 99 {
		t.Fatalf("FrameError fields: %+v", fe)
	}
}

func TestFrameRejectsNegativeLength(t *testing.T) {
	var buf [frameHeaderLen]byte
	binary.LittleEndian.PutUint64(buf[8:], ^uint64(0)) // length -1
	_, _, err := readFrame(bytes.NewReader(buf[:]), DefaultMaxFrame)
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("negative length: %v, want FrameError", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	full := appendFrame(nil, 1, []byte("hello world"))
	for _, cut := range []int{0, 1, frameHeaderLen - 1, frameHeaderLen, frameHeaderLen + 4} {
		_, _, err := readFrame(bytes.NewReader(full[:cut]), DefaultMaxFrame)
		if err == nil {
			t.Fatalf("truncated at %d accepted", cut)
		}
		if cut > 0 && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
			t.Fatalf("truncated at %d: %v", cut, err)
		}
	}
}

func TestFrameBoundedAllocation(t *testing.T) {
	// A header claiming a near-max length backed by almost no bytes must
	// fail after at most one chunk of allocation, not attempt the full
	// claimed size up front. If the reader trusted the header this test
	// would try to allocate a terabyte and die.
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint64(hdr[8:], 1<<40)
	in := append(hdr[:], make([]byte, 100)...)
	if _, _, err := readFrame(bytes.NewReader(in), 1<<41); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated terabyte claim: %v, want ErrUnexpectedEOF", err)
	}
}
