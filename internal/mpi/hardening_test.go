package mpi

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// These tests pin the TCP transport's hardening behaviors: dial backoff
// against a late listener, receive deadlines as a failure detector, fast
// failure on connection teardown, and the max-frame guard.

func TestTCPDialBackoffLateListener(t *testing.T) {
	// Rank 1 starts dialing before rank 0's listener exists; the dial loop
	// must back off and retry until it appears, and count the retries.
	addrs := freeAddrs(t, 2)
	var wg sync.WaitGroup
	comms := make([]Comm, 2)
	errs := make([]error, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		comms[1], errs[1] = DialTCP(TCPConfig{Rank: 1, Addrs: addrs, DialTimeout: 10 * time.Second})
	}()
	time.Sleep(300 * time.Millisecond) // let rank 1 burn through a few dial attempts
	wg.Add(1)
	go func() {
		defer wg.Done()
		comms[0], errs[0] = DialTCP(TCPConfig{Rank: 0, Addrs: addrs})
	}()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		defer comms[r].Close()
	}
	if retries := StatsOf(comms[1]).Retries; retries < 1 {
		t.Fatalf("late-bound listener reached with %d dial retries, want >= 1", retries)
	}
	// The mesh must actually work after the delayed bring-up.
	if err := comms[1].Send(0, 4, []byte("late")); err != nil {
		t.Fatal(err)
	}
	msg, err := comms[0].Recv(1, 4)
	if err != nil || string(msg) != "late" {
		t.Fatalf("post-backoff exchange: %q, %v", msg, err)
	}
}

func TestTCPRecvTimeoutSurfacesRankFailure(t *testing.T) {
	addrs := freeAddrs(t, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	barrier := make(chan struct{})
	for r := 0; r < 2; r++ {
		go func(rank int) {
			defer wg.Done()
			c, err := DialTCP(TCPConfig{Rank: rank, Addrs: addrs, RecvTimeout: 150 * time.Millisecond})
			if err != nil {
				errs[rank] = err
				return
			}
			defer c.Close()
			if rank == 1 {
				<-barrier // stay silent until rank 0 has timed out
				return
			}
			start := time.Now()
			_, err = c.Recv(1, 9) // nothing will ever arrive
			close(barrier)
			elapsed := time.Since(start)
			var rf *RankFailedError
			if !errors.As(err, &rf) || rf.Rank != 1 || !errors.Is(err, ErrRecvTimeout) {
				errs[rank] = fmt.Errorf("silent peer: %v, want RankFailedError{1, ErrRecvTimeout}", err)
				return
			}
			if elapsed > 5*time.Second {
				errs[rank] = fmt.Errorf("timeout after %v, configured 150ms", elapsed)
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestTCPPeerCloseFailsFast(t *testing.T) {
	// No receive timeout configured: connection teardown alone must convert
	// a blocked Recv into a RankFailedError, not a hang.
	addrs := freeAddrs(t, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	for r := 0; r < 2; r++ {
		go func(rank int) {
			defer wg.Done()
			c, err := DialTCP(TCPConfig{Rank: rank, Addrs: addrs})
			if err != nil {
				errs[rank] = err
				return
			}
			if rank == 1 {
				c.Close() // die immediately
				return
			}
			defer c.Close()
			_, err = c.Recv(1, 2)
			var rf *RankFailedError
			if !errors.As(err, &rf) || rf.Rank != 1 {
				errs[rank] = fmt.Errorf("dead peer: %v, want RankFailedError{Rank: 1}", err)
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestTCPMaxFrameGuard(t *testing.T) {
	// The receiver's max-frame bound rejects an oversize frame, counts it,
	// and marks the offending peer dead; the sender's own bound rejects
	// oversize payloads before they reach the wire.
	addrs := freeAddrs(t, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	for r := 0; r < 2; r++ {
		go func(rank int) {
			defer wg.Done()
			cfg := TCPConfig{Rank: rank, Addrs: addrs}
			if rank == 0 {
				cfg.MaxFrame = 1024
			}
			c, err := DialTCP(cfg)
			if err != nil {
				errs[rank] = err
				return
			}
			defer c.Close()
			if rank == 1 {
				// Within the sender's own (default) bound, past the receiver's.
				if err := c.Send(0, 6, make([]byte, 4096)); err != nil {
					errs[rank] = fmt.Errorf("send: %v", err)
				}
				return
			}
			_, err = c.Recv(1, 6)
			var rf *RankFailedError
			if !errors.As(err, &rf) || rf.Rank != 1 {
				errs[rank] = fmt.Errorf("oversize frame: %v, want RankFailedError{Rank: 1}", err)
				return
			}
			var fe *FrameError
			if !errors.As(err, &fe) || fe.Length != 4096 || fe.Max != 1024 {
				errs[rank] = fmt.Errorf("cause %v, want FrameError{Length: 4096, Max: 1024}", err)
				return
			}
			if n := StatsOf(c).FramesRejected; n != 1 {
				errs[rank] = fmt.Errorf("FramesRejected = %d, want 1", n)
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestTCPSendOversizeRejectedLocally(t *testing.T) {
	runTCPClusterCfg(t, 2, TCPConfig{MaxFrame: 512}, func(c Comm) error {
		if c.Rank() == 0 {
			err := c.Send(1, 3, make([]byte, 513))
			var fe *FrameError
			if !errors.As(err, &fe) {
				return fmt.Errorf("oversize send: %v, want FrameError", err)
			}
			if StatsOf(c).FramesRejected != 1 {
				return fmt.Errorf("FramesRejected = %d, want 1", StatsOf(c).FramesRejected)
			}
			// The connection is still healthy for in-bound payloads.
			return c.Send(1, 3, []byte("fits"))
		}
		msg, err := c.Recv(0, 3)
		if err != nil || string(msg) != "fits" {
			return fmt.Errorf("after local rejection: %q, %v", msg, err)
		}
		return nil
	})
}

// runTCPClusterCfg is runTCPCluster with shared extra config fields.
func runTCPClusterCfg(t *testing.T, p int, base TCPConfig, body func(c Comm) error) {
	t.Helper()
	addrs := freeAddrs(t, p)
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := base
			cfg.Rank = rank
			cfg.Addrs = addrs
			c, err := DialTCP(cfg)
			if err != nil {
				errs[rank] = err
				return
			}
			defer c.Close()
			errs[rank] = body(c)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("tcp rank %d: %v", r, err)
		}
	}
}
