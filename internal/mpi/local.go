package mpi

import (
	"fmt"
	"time"
)

// localComm is the in-process transport: all ranks share one slice of
// mailboxes, and Send is a queue append into the destination's mailbox.
// It models running all MPI ranks inside one address space, which is how
// the distributed experiments are scaled down onto a single machine.
type localComm struct {
	rank  int
	boxes []*mailbox
}

// NewLocalCluster creates a communicator of p in-process ranks and returns
// one Comm per rank. Hand each Comm to its own goroutine.
func NewLocalCluster(p int) []Comm {
	if p < 1 {
		panic("mpi: cluster size must be >= 1")
	}
	boxes := make([]*mailbox, p)
	for i := range boxes {
		boxes[i] = newMailbox()
	}
	comms := make([]Comm, p)
	for i := range comms {
		comms[i] = &localComm{rank: i, boxes: boxes}
	}
	return comms
}

func (c *localComm) Rank() int { return c.rank }
func (c *localComm) Size() int { return len(c.boxes) }

func (c *localComm) Send(dst, tag int, payload []byte) error {
	if err := checkPeer(c, dst); err != nil {
		return err
	}
	if dst == c.rank {
		return fmt.Errorf("mpi: rank %d sending to itself", dst)
	}
	return c.boxes[dst].put(c.rank, tag, payload)
}

func (c *localComm) Recv(src, tag int) ([]byte, error) {
	return c.RecvDeadline(src, tag, 0)
}

// RecvDeadline receives with a bounded wait (0 blocks forever); expiry
// reports src as failed, which is how an in-process crash test detects a
// dead rank.
func (c *localComm) RecvDeadline(src, tag int, timeout time.Duration) ([]byte, error) {
	if err := checkPeer(c, src); err != nil {
		return nil, err
	}
	return c.boxes[c.rank].take(src, tag, timeout)
}

func (c *localComm) Close() error {
	c.boxes[c.rank].close()
	return nil
}
