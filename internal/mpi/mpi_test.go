package mpi

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"testing/quick"
)

// runSPMD executes body on every rank of a fresh local cluster.
func runSPMD(t *testing.T, p int, body func(c Comm) error) {
	t.Helper()
	comms := NewLocalCluster(p)
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = body(comms[rank])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestLocalSendRecv(t *testing.T) {
	runSPMD(t, 2, func(c Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []byte("hello"))
		}
		msg, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(msg) != "hello" {
			return fmt.Errorf("got %q", msg)
		}
		return nil
	})
}

func TestLocalFIFOPerChannel(t *testing.T) {
	runSPMD(t, 2, func(c Comm) error {
		const n = 100
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 3, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			msg, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			if msg[0] != byte(i) {
				return fmt.Errorf("out of order: got %d want %d", msg[0], i)
			}
		}
		return nil
	})
}

func TestLocalTagIsolation(t *testing.T) {
	runSPMD(t, 2, func(c Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte("a")); err != nil {
				return err
			}
			return c.Send(1, 2, []byte("b"))
		}
		// Receive in the opposite order of sending: tags must demultiplex.
		b, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		a, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(a) != "a" || string(b) != "b" {
			return fmt.Errorf("tag demux broken: %q %q", a, b)
		}
		return nil
	})
}

func TestSendErrors(t *testing.T) {
	comms := NewLocalCluster(2)
	if err := comms[0].Send(0, 1, nil); err == nil {
		t.Error("self-send not rejected")
	}
	if err := comms[0].Send(5, 1, nil); err == nil {
		t.Error("out-of-range destination not rejected")
	}
	if _, err := comms[0].Recv(-1, 1); err == nil {
		t.Error("out-of-range source not rejected")
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	comms := NewLocalCluster(2)
	done := make(chan error)
	go func() {
		_, err := comms[0].Recv(1, 9)
		done <- err
	}()
	comms[0].Close()
	if err := <-done; err != ErrClosed {
		t.Fatalf("Recv after close: %v, want ErrClosed", err)
	}
}

func TestBarrierAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 13} {
		runSPMD(t, p, Barrier)
	}
}

func TestAllReduceSum(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 16} {
		runSPMD(t, p, func(c Comm) error {
			buf := []int64{int64(c.Rank()), 1, int64(c.Rank() * c.Rank())}
			if err := AllReduce(c, buf, Sum); err != nil {
				return err
			}
			wantRankSum := int64(p * (p - 1) / 2)
			var wantSq int64
			for r := 0; r < p; r++ {
				wantSq += int64(r * r)
			}
			if buf[0] != wantRankSum || buf[1] != int64(p) || buf[2] != wantSq {
				return fmt.Errorf("AllReduce sum = %v", buf)
			}
			return nil
		})
	}
}

func TestAllReduceMaxMin(t *testing.T) {
	runSPMD(t, 5, func(c Comm) error {
		buf := []float64{float64(c.Rank())}
		if err := AllReduce(c, buf, Max); err != nil {
			return err
		}
		if buf[0] != 4 {
			return fmt.Errorf("max = %v", buf[0])
		}
		buf[0] = float64(c.Rank())
		if err := AllReduce(c, buf, Min); err != nil {
			return err
		}
		if buf[0] != 0 {
			return fmt.Errorf("min = %v", buf[0])
		}
		return nil
	})
}

func TestAllReduceSignedValues(t *testing.T) {
	runSPMD(t, 3, func(c Comm) error {
		buf := []int32{int32(-10 * (c.Rank() + 1))}
		if err := AllReduce(c, buf, Sum); err != nil {
			return err
		}
		if buf[0] != -60 {
			return fmt.Errorf("signed sum = %d, want -60", buf[0])
		}
		return nil
	})
}

func TestBroadcastFromEveryRoot(t *testing.T) {
	p := 6
	for root := 0; root < p; root++ {
		root := root
		runSPMD(t, p, func(c Comm) error {
			var data []uint32
			if c.Rank() == root {
				data = []uint32{42, uint32(root), 7}
			}
			out, err := Broadcast(c, root, data)
			if err != nil {
				return err
			}
			if len(out) != 3 || out[0] != 42 || out[1] != uint32(root) || out[2] != 7 {
				return fmt.Errorf("broadcast from %d: got %v", root, out)
			}
			return nil
		})
	}
}

func TestReduceToRoot(t *testing.T) {
	p := 5
	for root := 0; root < p; root++ {
		root := root
		runSPMD(t, p, func(c Comm) error {
			out, err := Reduce(c, root, []int64{int64(c.Rank() + 1)}, Sum)
			if err != nil {
				return err
			}
			if c.Rank() == root {
				if len(out) != 1 || out[0] != int64(p*(p+1)/2) {
					return fmt.Errorf("reduce at root %d: %v", root, out)
				}
			} else if out != nil {
				return fmt.Errorf("non-root got %v", out)
			}
			return nil
		})
	}
}

func TestGather(t *testing.T) {
	runSPMD(t, 4, func(c Comm) error {
		// Variable-length contributions.
		data := make([]uint64, c.Rank()+1)
		for i := range data {
			data[i] = uint64(c.Rank()*100 + i)
		}
		out, err := Gather(c, 2, data)
		if err != nil {
			return err
		}
		if c.Rank() != 2 {
			if out != nil {
				return fmt.Errorf("non-root got %v", out)
			}
			return nil
		}
		for r := 0; r < 4; r++ {
			if len(out[r]) != r+1 || out[r][0] != uint64(r*100) {
				return fmt.Errorf("gathered[%d] = %v", r, out[r])
			}
		}
		return nil
	})
}

func TestGatherBytes(t *testing.T) {
	for _, p := range []int{1, 2, 5} {
		runSPMD(t, p, func(c Comm) error {
			payload := []byte(fmt.Sprintf("rank-%d-report", c.Rank()))
			out, err := GatherBytes(c, 0, payload)
			if err != nil {
				return err
			}
			if c.Rank() != 0 {
				if out != nil {
					return fmt.Errorf("non-root got %v", out)
				}
				return nil
			}
			if len(out) != p {
				return fmt.Errorf("root gathered %d payloads, want %d", len(out), p)
			}
			for r := 0; r < p; r++ {
				want := fmt.Sprintf("rank-%d-report", r)
				if string(out[r]) != want {
					return fmt.Errorf("gathered[%d] = %q, want %q", r, out[r], want)
				}
			}
			return nil
		})
	}
}

func TestAllGather(t *testing.T) {
	for _, p := range []int{1, 3, 6} {
		runSPMD(t, p, func(c Comm) error {
			out, err := AllGather(c, []int32{int32(c.Rank()), int32(c.Rank() * 2)})
			if err != nil {
				return err
			}
			for r := 0; r < p; r++ {
				if len(out[r]) != 2 || out[r][0] != int32(r) || out[r][1] != int32(r*2) {
					return fmt.Errorf("allgather[%d] = %v", r, out[r])
				}
			}
			return nil
		})
	}
}

func TestAllToAll(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5} {
		runSPMD(t, p, func(c Comm) error {
			parts := make([][]int64, p)
			for dst := range parts {
				// rank r sends [r*100+dst, r*100+dst+1] to dst.
				parts[dst] = []int64{int64(c.Rank()*100 + dst), int64(c.Rank()*100 + dst + 1)}
			}
			out, err := AllToAll(c, parts)
			if err != nil {
				return err
			}
			for src := 0; src < p; src++ {
				want0 := int64(src*100 + c.Rank())
				if len(out[src]) != 2 || out[src][0] != want0 || out[src][1] != want0+1 {
					return fmt.Errorf("p=%d: out[%d] = %v", p, src, out[src])
				}
			}
			return nil
		})
	}
}

func TestAllToAllVariableLengths(t *testing.T) {
	runSPMD(t, 3, func(c Comm) error {
		parts := make([][]int64, 3)
		for dst := range parts {
			parts[dst] = make([]int64, (c.Rank()+1)*(dst+1)) // varied sizes
		}
		out, err := AllToAll(c, parts)
		if err != nil {
			return err
		}
		for src := 0; src < 3; src++ {
			if len(out[src]) != (src+1)*(c.Rank()+1) {
				return fmt.Errorf("len(out[%d]) = %d", src, len(out[src]))
			}
		}
		return nil
	})
}

func TestAllToAllWrongPartCount(t *testing.T) {
	comms := NewLocalCluster(2)
	if _, err := AllToAll(comms[0], [][]int64{{1}}); err == nil {
		t.Fatal("wrong part count accepted")
	}
}

func TestAllReduceRingMatchesTree(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		for _, n := range []int{1, 3, 17, 100} {
			p, n := p, n
			runSPMD(t, p, func(c Comm) error {
				ring := make([]int64, n)
				tree := make([]int64, n)
				for i := range ring {
					v := int64((c.Rank()+1)*(i+3)) % 97
					ring[i], tree[i] = v, v
				}
				if err := AllReduceRing(c, ring, Sum); err != nil {
					return err
				}
				if err := AllReduce(c, tree, Sum); err != nil {
					return err
				}
				for i := range ring {
					if ring[i] != tree[i] {
						return fmt.Errorf("p=%d n=%d: ring[%d]=%d tree=%d", p, n, i, ring[i], tree[i])
					}
				}
				return nil
			})
		}
	}
}

func TestAllReduceRingMaxOp(t *testing.T) {
	runSPMD(t, 4, func(c Comm) error {
		buf := []float64{float64(c.Rank() * 10), -float64(c.Rank())}
		if err := AllReduceRing(c, buf, Max); err != nil {
			return err
		}
		if buf[0] != 30 || buf[1] != 0 {
			return fmt.Errorf("ring max = %v", buf)
		}
		return nil
	})
}

func TestAllReduceRingShortBuffer(t *testing.T) {
	// Buffer shorter than the rank count: some chunks are empty.
	runSPMD(t, 6, func(c Comm) error {
		buf := []int64{int64(c.Rank()), 1}
		if err := AllReduceRing(c, buf, Sum); err != nil {
			return err
		}
		if buf[0] != 15 || buf[1] != 6 {
			return fmt.Errorf("short ring = %v", buf)
		}
		return nil
	})
}

func TestSequentialCollectivesDoNotInterfere(t *testing.T) {
	runSPMD(t, 4, func(c Comm) error {
		for round := 0; round < 20; round++ {
			buf := []int64{int64(c.Rank() + round)}
			if err := AllReduce(c, buf, Sum); err != nil {
				return err
			}
			want := int64(6 + 4*round) // sum of ranks + p*round
			if buf[0] != want {
				return fmt.Errorf("round %d: %d != %d", round, buf[0], want)
			}
			if err := Barrier(c); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestAllReduceQuickRandomVectors(t *testing.T) {
	check := func(vals [][4]int32) bool {
		p := len(vals)
		if p == 0 || p > 8 {
			return true
		}
		want := [4]int64{}
		for _, v := range vals {
			for i, x := range v {
				want[i] += int64(x)
			}
		}
		comms := NewLocalCluster(p)
		var wg sync.WaitGroup
		ok := true
		var mu sync.Mutex
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				buf := make([]int64, 4)
				for i, x := range vals[rank] {
					buf[i] = int64(x)
				}
				if err := AllReduce(comms[rank], buf, Sum); err != nil {
					mu.Lock()
					ok = false
					mu.Unlock()
					return
				}
				for i := range buf {
					if buf[i] != want[i] {
						mu.Lock()
						ok = false
						mu.Unlock()
					}
				}
			}(r)
		}
		wg.Wait()
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// freeAddrs reserves p distinct loopback ports.
func freeAddrs(t *testing.T, p int) []string {
	t.Helper()
	addrs := make([]string, p)
	lns := make([]net.Listener, p)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func runTCPCluster(t *testing.T, p int, body func(c Comm) error) {
	t.Helper()
	addrs := freeAddrs(t, p)
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := DialTCP(TCPConfig{Rank: rank, Addrs: addrs})
			if err != nil {
				errs[rank] = err
				return
			}
			defer c.Close()
			errs[rank] = body(c)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("tcp rank %d: %v", r, err)
		}
	}
}

func TestTCPSendRecv(t *testing.T) {
	runTCPCluster(t, 3, func(c Comm) error {
		// Ring: send to (rank+1)%3, receive from (rank+2)%3.
		next, prev := (c.Rank()+1)%3, (c.Rank()+2)%3
		if err := c.Send(next, 5, []byte{byte(c.Rank())}); err != nil {
			return err
		}
		msg, err := c.Recv(prev, 5)
		if err != nil {
			return err
		}
		if msg[0] != byte(prev) {
			return fmt.Errorf("got %d from %d", msg[0], prev)
		}
		return nil
	})
}

func TestTCPAllReduce(t *testing.T) {
	runTCPCluster(t, 4, func(c Comm) error {
		buf := []int64{int64(c.Rank()), 100}
		if err := AllReduce(c, buf, Sum); err != nil {
			return err
		}
		if buf[0] != 6 || buf[1] != 400 {
			return fmt.Errorf("tcp allreduce = %v", buf)
		}
		return nil
	})
}

func TestTCPLargePayload(t *testing.T) {
	runTCPCluster(t, 2, func(c Comm) error {
		const size = 1 << 20
		if c.Rank() == 0 {
			payload := make([]byte, size)
			for i := range payload {
				payload[i] = byte(i * 31)
			}
			return c.Send(1, 8, payload)
		}
		msg, err := c.Recv(0, 8)
		if err != nil {
			return err
		}
		if len(msg) != size {
			return fmt.Errorf("len = %d", len(msg))
		}
		for i := 0; i < size; i += 4099 {
			if msg[i] != byte(i*31) {
				return fmt.Errorf("corruption at %d", i)
			}
		}
		return nil
	})
}

func TestTCPConfigErrors(t *testing.T) {
	if _, err := DialTCP(TCPConfig{Rank: 0, Addrs: nil}); err == nil {
		t.Error("empty addrs accepted")
	}
	if _, err := DialTCP(TCPConfig{Rank: 3, Addrs: []string{"x", "y"}}); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestNewLocalClusterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size 0 accepted")
		}
	}()
	NewLocalCluster(0)
}
