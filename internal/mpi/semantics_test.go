package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// This file checks every collective against a plain-Go model of its
// semantics, table-driven over payload shapes (including zero-length) and
// rank counts (including non-powers-of-two), on the clean in-process
// transport and again under a fault plan that delays, drops, duplicates
// and reorders — the injector must be invisible to the collectives.

// semanticsPlans names the transports the semantics tests run over: the
// bare local transport and the same transport under heavy injected chaos.
var semanticsPlans = []struct {
	name string
	plan FaultPlan
}{
	{"clean", FaultPlan{}},
	{"chaos", FaultPlan{
		Seed:      99,
		DelayProb: 0.05, MaxDelay: 300 * time.Microsecond,
		DropProb: 0.2, MaxRedeliver: 2,
		DupProb:     0.2,
		ReorderProb: 0.2,
	}},
}

// semanticsRanks covers the degenerate single rank, powers of two, and
// non-powers-of-two (the binomial trees' irregular shapes).
var semanticsRanks = []int{1, 2, 3, 5, 6}

// semanticsShapes are element counts per rank, including empty payloads.
var semanticsShapes = []int{0, 1, 7, 33}

// runSPMDPlan executes body on every rank of a fresh local cluster, each
// endpoint decorated with the fault plan. Each endpoint is closed when its
// rank's body returns — Close releases any reorder-held envelope, the same
// obligation real callers have.
func runSPMDPlan(t *testing.T, p int, plan FaultPlan, body func(c Comm) error) {
	t.Helper()
	comms := NewLocalCluster(p)
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := WithFaults(comms[rank], plan)
			errs[rank] = body(c)
			c.Close()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// rankVec is the deterministic model input of one rank: n elements that
// encode (rank, index) so misrouted or reordered data is detectable.
func rankVec(rank, n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(rank*1000 + i + 1)
	}
	return v
}

func TestSemanticsBarrier(t *testing.T) {
	for _, tp := range semanticsPlans {
		for _, p := range semanticsRanks {
			t.Run(fmt.Sprintf("%s/p%d", tp.name, p), func(t *testing.T) {
				// Model: once Barrier returns anywhere, every rank must have
				// entered it.
				var entered atomic.Int64
				runSPMDPlan(t, p, tp.plan, func(c Comm) error {
					entered.Add(1)
					if err := Barrier(c); err != nil {
						return err
					}
					if got := entered.Load(); got != int64(p) {
						return fmt.Errorf("barrier released with %d/%d ranks entered", got, p)
					}
					return nil
				})
			})
		}
	}
}

func TestSemanticsBroadcast(t *testing.T) {
	for _, tp := range semanticsPlans {
		for _, p := range semanticsRanks {
			for _, n := range semanticsShapes {
				root := p - 1 // non-zero root exercises the rank rotation
				t.Run(fmt.Sprintf("%s/p%d/n%d", tp.name, p, n), func(t *testing.T) {
					want := rankVec(root, n)
					runSPMDPlan(t, p, tp.plan, func(c Comm) error {
						var data []int64
						if c.Rank() == root {
							data = rankVec(root, n)
						}
						out, err := Broadcast(c, root, data)
						if err != nil {
							return err
						}
						return expectVec(fmt.Sprintf("broadcast on rank %d", c.Rank()), out, want)
					})
				})
			}
		}
	}
}

func TestSemanticsReduceAndAllReduce(t *testing.T) {
	ops := []struct {
		name string
		op   Op
	}{{"sum", Sum}, {"max", Max}, {"min", Min}}
	for _, tp := range semanticsPlans {
		for _, p := range semanticsRanks {
			for _, n := range semanticsShapes {
				for _, o := range ops {
					// Model: elementwise fold of every rank's vector.
					want := rankVec(0, n)
					for r := 1; r < p; r++ {
						combine(want, rankVec(r, n), o.op)
					}
					root := p / 2
					t.Run(fmt.Sprintf("%s/p%d/n%d/%s", tp.name, p, n, o.name), func(t *testing.T) {
						runSPMDPlan(t, p, tp.plan, func(c Comm) error {
							out, err := Reduce(c, root, rankVec(c.Rank(), n), o.op)
							if err != nil {
								return err
							}
							if c.Rank() == root {
								if err := expectVec("reduce at root", out, want); err != nil {
									return err
								}
							} else if out != nil {
								return fmt.Errorf("reduce gave non-root rank %d data", c.Rank())
							}
							buf := rankVec(c.Rank(), n)
							if err := AllReduce(c, buf, o.op); err != nil {
								return err
							}
							return expectVec(fmt.Sprintf("allreduce on rank %d", c.Rank()), buf, want)
						})
					})
				}
			}
		}
	}
}

func TestSemanticsGatherAndAllGather(t *testing.T) {
	for _, tp := range semanticsPlans {
		for _, p := range semanticsRanks {
			t.Run(fmt.Sprintf("%s/p%d", tp.name, p), func(t *testing.T) {
				// Variable lengths per rank; rank 0 contributes nothing, so
				// the zero-length case rides along at every rank count.
				length := func(rank int) int { return (rank * 5) % 11 }
				root := p - 1
				runSPMDPlan(t, p, tp.plan, func(c Comm) error {
					mine := rankVec(c.Rank(), length(c.Rank()))
					out, err := Gather(c, root, mine)
					if err != nil {
						return err
					}
					if c.Rank() == root {
						for r := 0; r < p; r++ {
							if err := expectVec(fmt.Sprintf("gathered[%d]", r), out[r], rankVec(r, length(r))); err != nil {
								return err
							}
						}
					} else if out != nil {
						return fmt.Errorf("gather gave non-root rank %d data", c.Rank())
					}
					all, err := AllGather(c, mine)
					if err != nil {
						return err
					}
					for r := 0; r < p; r++ {
						if err := expectVec(fmt.Sprintf("allgather[%d] on rank %d", r, c.Rank()), all[r], rankVec(r, length(r))); err != nil {
							return err
						}
					}
					return nil
				})
			})
		}
	}
}

func TestSemanticsGatherBytes(t *testing.T) {
	for _, tp := range semanticsPlans {
		for _, p := range semanticsRanks {
			t.Run(fmt.Sprintf("%s/p%d", tp.name, p), func(t *testing.T) {
				payload := func(rank int) []byte {
					if rank%2 == 0 {
						return nil // zero-length contributions interleave
					}
					return []byte(fmt.Sprintf("payload-from-%d", rank))
				}
				runSPMDPlan(t, p, tp.plan, func(c Comm) error {
					out, err := GatherBytes(c, 0, payload(c.Rank()))
					if err != nil {
						return err
					}
					if c.Rank() != 0 {
						if out != nil {
							return fmt.Errorf("non-root rank %d got data", c.Rank())
						}
						return nil
					}
					for r := 0; r < p; r++ {
						if string(out[r]) != string(payload(r)) {
							return fmt.Errorf("gathered[%d] = %q, want %q", r, out[r], payload(r))
						}
					}
					return nil
				})
			})
		}
	}
}

func TestSemanticsAllToAllUnderChaos(t *testing.T) {
	for _, tp := range semanticsPlans {
		for _, p := range semanticsRanks {
			t.Run(fmt.Sprintf("%s/p%d", tp.name, p), func(t *testing.T) {
				runSPMDPlan(t, p, tp.plan, func(c Comm) error {
					parts := make([][]int64, p)
					for dst := range parts {
						parts[dst] = []int64{int64(c.Rank()*100 + dst)}
					}
					out, err := AllToAll(c, parts)
					if err != nil {
						return err
					}
					for src := 0; src < p; src++ {
						want := int64(src*100 + c.Rank())
						if len(out[src]) != 1 || out[src][0] != want {
							return fmt.Errorf("alltoall out[%d] = %v, want [%d]", src, out[src], want)
						}
					}
					return nil
				})
			})
		}
	}
}

// expectVec compares a collective's output against the model's.
func expectVec(what string, got, want []int64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("%s: [%d] = %d, want %d", what, i, got[i], want[i])
		}
	}
	return nil
}
