package mpi

import "sync/atomic"

// CommStats is a snapshot of one endpoint's transport- and injector-level
// event counters. The distributed runners fold them into the RunReport
// under the "mpi/..." metric names so soak runs under a FaultPlan (or a
// flaky network) leave an audit trail of what the substrate absorbed.
type CommStats struct {
	// Sends is the number of messages offered to the transport.
	Sends int64
	// Retries counts dial attempts and send retries after retriable I/O
	// errors (exponential backoff sits between them).
	Retries int64
	// DelaysInjected, DropsInjected, DupsInjected and ReordersInjected
	// count faults the injector scheduled (a dropped message is counted
	// once per simulated loss; its bounded redelivery always succeeds).
	DelaysInjected   int64
	DropsInjected    int64
	DupsInjected     int64
	ReordersInjected int64
	// FramesRejected counts length-framed messages refused by the
	// max-frame guard (each one marks the offending peer dead).
	FramesRejected int64
}

// Map renders the nonzero counters under their canonical metric names.
func (s CommStats) Map() map[string]int64 {
	m := make(map[string]int64)
	for _, e := range []struct {
		name string
		v    int64
	}{
		{"mpi/sends", s.Sends},
		{"mpi/retries", s.Retries},
		{"mpi/delays-injected", s.DelaysInjected},
		{"mpi/drops-injected", s.DropsInjected},
		{"mpi/dups-injected", s.DupsInjected},
		{"mpi/reorders-injected", s.ReordersInjected},
		{"mpi/frames-rejected", s.FramesRejected},
	} {
		if e.v != 0 {
			m[e.name] = e.v
		}
	}
	if len(m) == 0 {
		return nil
	}
	return m
}

// Injected reports whether any fault was injected.
func (s CommStats) Injected() bool {
	return s.DelaysInjected+s.DropsInjected+s.DupsInjected+s.ReordersInjected > 0
}

func (s CommStats) add(o CommStats) CommStats {
	s.Sends += o.Sends
	s.Retries += o.Retries
	s.DelaysInjected += o.DelaysInjected
	s.DropsInjected += o.DropsInjected
	s.DupsInjected += o.DupsInjected
	s.ReordersInjected += o.ReordersInjected
	s.FramesRejected += o.FramesRejected
	return s
}

// StatsProvider is implemented by transports that count events.
type StatsProvider interface {
	CommStats() CommStats
}

// StatsOf returns c's counters. Decorators include their wrapped
// transport's counts; transports without counters report zero.
func StatsOf(c Comm) CommStats {
	if sp, ok := c.(StatsProvider); ok {
		return sp.CommStats()
	}
	return CommStats{}
}

// statCounters is the shared lock-free accumulator behind CommStats.
type statCounters struct {
	sends, retries, delays, drops, dups, reorders, framesRejected atomic.Int64
}

func (s *statCounters) snapshot() CommStats {
	return CommStats{
		Sends:            s.sends.Load(),
		Retries:          s.retries.Load(),
		DelaysInjected:   s.delays.Load(),
		DropsInjected:    s.drops.Load(),
		DupsInjected:     s.dups.Load(),
		ReordersInjected: s.reorders.Load(),
		FramesRejected:   s.framesRejected.Load(),
	}
}
