package mpi

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPConfig describes one rank's view of a TCP communicator.
type TCPConfig struct {
	// Rank is this process's rank.
	Rank int
	// Addrs lists the listen address of every rank, indexed by rank.
	Addrs []string
	// DialTimeout bounds how long to wait for peers to come up
	// (default 10s).
	DialTimeout time.Duration
}

// tcpComm is the TCP transport: a full mesh of length-framed connections.
// Rank i accepts connections from ranks j > i and dials ranks j < i; a
// 4-byte handshake identifies the dialer. One reader goroutine per peer
// delivers frames into the shared mailbox.
type tcpComm struct {
	rank  int
	size  int
	box   *mailbox
	conns []net.Conn
	wmu   []sync.Mutex // per-connection write locks
	ln    net.Listener

	closeOnce sync.Once
}

// DialTCP brings up this rank's endpoint and blocks until the full mesh is
// connected.
func DialTCP(cfg TCPConfig) (Comm, error) {
	p := len(cfg.Addrs)
	if p < 1 {
		return nil, fmt.Errorf("mpi: empty address list")
	}
	if cfg.Rank < 0 || cfg.Rank >= p {
		return nil, fmt.Errorf("mpi: rank %d out of range [0, %d)", cfg.Rank, p)
	}
	timeout := cfg.DialTimeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
	if err != nil {
		return nil, fmt.Errorf("mpi: rank %d listen: %v", cfg.Rank, err)
	}
	c := &tcpComm{
		rank:  cfg.Rank,
		size:  p,
		box:   newMailbox(),
		conns: make([]net.Conn, p),
		wmu:   make([]sync.Mutex, p),
		ln:    ln,
	}

	errc := make(chan error, 2)
	var wg sync.WaitGroup

	// Accept from higher ranks.
	expect := p - 1 - cfg.Rank
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < expect; i++ {
			conn, err := ln.Accept()
			if err != nil {
				errc <- fmt.Errorf("mpi: rank %d accept: %v", cfg.Rank, err)
				return
			}
			var hdr [4]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				errc <- fmt.Errorf("mpi: rank %d handshake read: %v", cfg.Rank, err)
				return
			}
			peer := int(binary.LittleEndian.Uint32(hdr[:]))
			if peer <= cfg.Rank || peer >= p || c.conns[peer] != nil {
				errc <- fmt.Errorf("mpi: rank %d got bad handshake rank %d", cfg.Rank, peer)
				return
			}
			c.conns[peer] = conn
		}
	}()

	// Dial lower ranks (with retry while their listeners come up).
	wg.Add(1)
	go func() {
		defer wg.Done()
		deadline := time.Now().Add(timeout)
		for peer := 0; peer < cfg.Rank; peer++ {
			var conn net.Conn
			var err error
			for {
				conn, err = net.DialTimeout("tcp", cfg.Addrs[peer], time.Second)
				if err == nil || time.Now().After(deadline) {
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
			if err != nil {
				errc <- fmt.Errorf("mpi: rank %d dial rank %d: %v", cfg.Rank, peer, err)
				return
			}
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(cfg.Rank))
			if _, err := conn.Write(hdr[:]); err != nil {
				errc <- fmt.Errorf("mpi: rank %d handshake write: %v", cfg.Rank, err)
				return
			}
			c.conns[peer] = conn
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case err := <-errc:
		c.Close()
		return nil, err
	case <-done:
	}

	// Start one reader per peer.
	for peer, conn := range c.conns {
		if conn == nil {
			continue
		}
		go c.readLoop(peer, conn)
	}
	return c, nil
}

// frame layout: tag int64 | length int64 | payload.
func (c *tcpComm) readLoop(peer int, conn net.Conn) {
	var hdr [16]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return // connection closed
		}
		tag := int64(binary.LittleEndian.Uint64(hdr[:8]))
		length := int64(binary.LittleEndian.Uint64(hdr[8:]))
		payload := make([]byte, length)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		if err := c.box.put(peer, int(tag), payload); err != nil {
			return
		}
	}
}

func (c *tcpComm) Rank() int { return c.rank }
func (c *tcpComm) Size() int { return c.size }

func (c *tcpComm) Send(dst, tag int, payload []byte) error {
	if err := checkPeer(c, dst); err != nil {
		return err
	}
	if dst == c.rank {
		return fmt.Errorf("mpi: rank %d sending to itself", dst)
	}
	conn := c.conns[dst]
	if conn == nil {
		return ErrClosed
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(int64(tag)))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(int64(len(payload))))
	c.wmu[dst].Lock()
	defer c.wmu[dst].Unlock()
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(payload)
	return err
}

func (c *tcpComm) Recv(src, tag int) ([]byte, error) {
	if err := checkPeer(c, src); err != nil {
		return nil, err
	}
	return c.box.take(src, tag)
}

func (c *tcpComm) Close() error {
	c.closeOnce.Do(func() {
		c.box.close()
		if c.ln != nil {
			c.ln.Close()
		}
		for _, conn := range c.conns {
			if conn != nil {
				conn.Close()
			}
		}
	})
	return nil
}
