package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"influmax/internal/rng"
)

// TCPConfig describes one rank's view of a TCP communicator.
type TCPConfig struct {
	// Rank is this process's rank.
	Rank int
	// Addrs lists the listen address of every rank, indexed by rank.
	Addrs []string
	// DialTimeout bounds how long to wait for peers to come up
	// (default 10s).
	DialTimeout time.Duration
	// SendTimeout is the per-message write deadline (0 = none). A write
	// that times out cleanly (no bytes on the wire) is retried with
	// backoff; a partial write marks the peer failed, since the stream is
	// mid-frame and unrecoverable.
	SendTimeout time.Duration
	// RecvTimeout bounds each Recv's wait for an expected message
	// (0 = block forever). Expiry surfaces as a RankFailedError: past this
	// bound a silent peer is presumed dead.
	RecvTimeout time.Duration
	// MaxFrame is the largest accepted payload in bytes (default
	// DefaultMaxFrame). A frame violating it is rejected and the sending
	// peer marked dead.
	MaxFrame int64
	// SendRetries is how many clean write timeouts are retried before the
	// peer is declared failed (default 3).
	SendRetries int
}

// tcpComm is the TCP transport: a full mesh of length-framed connections.
// Rank i accepts connections from ranks j > i and dials ranks j < i; a
// 4-byte handshake identifies the dialer. One reader goroutine per peer
// delivers frames into the shared mailbox; a reader that sees a connection
// error or an invalid frame marks its peer dead, converting every pending
// and future Recv from that rank into a RankFailedError.
type tcpComm struct {
	rank        int
	size        int
	box         *mailbox
	conns       []net.Conn
	wmu         []sync.Mutex // per-connection write locks
	ln          net.Listener
	sendTimeout time.Duration
	recvTimeout time.Duration
	maxFrame    int64
	sendRetries int
	stats       statCounters

	closeOnce sync.Once
}

// backoff returns the exponential backoff before retry attempt, with
// deterministic jitter derived from (rank, attempt) so a thundering herd
// of ranks re-dialing one listener spreads out.
func backoff(rank, attempt int) time.Duration {
	base := time.Duration(2<<min(attempt, 7)) * time.Millisecond // 4ms doubling, capped at 512ms
	jitter := time.Duration(rng.Mix64(uint64(rank)<<32|uint64(attempt)) % uint64(base))
	return base/2 + jitter/2
}

// retriable reports whether a send error may be retried without corrupting
// the stream (only clean timeouts qualify; the caller also requires that
// zero bytes were written).
func retriable(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// DialTCP brings up this rank's endpoint and blocks until the full mesh is
// connected.
func DialTCP(cfg TCPConfig) (Comm, error) {
	p := len(cfg.Addrs)
	if p < 1 {
		return nil, fmt.Errorf("mpi: empty address list")
	}
	if cfg.Rank < 0 || cfg.Rank >= p {
		return nil, fmt.Errorf("mpi: rank %d out of range [0, %d)", cfg.Rank, p)
	}
	timeout := cfg.DialTimeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	maxFrame := cfg.MaxFrame
	if maxFrame == 0 {
		maxFrame = DefaultMaxFrame
	}
	sendRetries := cfg.SendRetries
	if sendRetries == 0 {
		sendRetries = 3
	}
	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
	if err != nil {
		return nil, fmt.Errorf("mpi: rank %d listen: %v", cfg.Rank, err)
	}
	c := &tcpComm{
		rank:        cfg.Rank,
		size:        p,
		box:         newMailbox(),
		conns:       make([]net.Conn, p),
		wmu:         make([]sync.Mutex, p),
		ln:          ln,
		sendTimeout: cfg.SendTimeout,
		recvTimeout: cfg.RecvTimeout,
		maxFrame:    maxFrame,
		sendRetries: sendRetries,
	}

	errc := make(chan error, 2)
	var wg sync.WaitGroup

	// Accept from higher ranks.
	expect := p - 1 - cfg.Rank
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < expect; i++ {
			conn, err := ln.Accept()
			if err != nil {
				errc <- fmt.Errorf("mpi: rank %d accept: %v", cfg.Rank, err)
				return
			}
			var hdr [4]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				errc <- fmt.Errorf("mpi: rank %d handshake read: %v", cfg.Rank, err)
				return
			}
			peer := int(binary.LittleEndian.Uint32(hdr[:]))
			if peer <= cfg.Rank || peer >= p || c.conns[peer] != nil {
				errc <- fmt.Errorf("mpi: rank %d got bad handshake rank %d", cfg.Rank, peer)
				return
			}
			c.conns[peer] = conn
		}
	}()

	// Dial lower ranks, backing off exponentially while their listeners
	// come up.
	wg.Add(1)
	go func() {
		defer wg.Done()
		deadline := time.Now().Add(timeout)
		for peer := 0; peer < cfg.Rank; peer++ {
			var conn net.Conn
			var err error
			for attempt := 0; ; attempt++ {
				conn, err = net.DialTimeout("tcp", cfg.Addrs[peer], time.Second)
				if err == nil || time.Now().After(deadline) {
					break
				}
				c.stats.retries.Add(1)
				time.Sleep(backoff(cfg.Rank, attempt))
			}
			if err != nil {
				errc <- fmt.Errorf("mpi: rank %d dial rank %d: %v", cfg.Rank, peer, err)
				return
			}
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(cfg.Rank))
			if _, err := conn.Write(hdr[:]); err != nil {
				errc <- fmt.Errorf("mpi: rank %d handshake write: %v", cfg.Rank, err)
				return
			}
			c.conns[peer] = conn
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case err := <-errc:
		c.Close()
		return nil, err
	case <-done:
	}

	// Start one reader per peer.
	for peer, conn := range c.conns {
		if conn == nil {
			continue
		}
		go c.readLoop(peer, conn)
	}
	return c, nil
}

// readLoop delivers frames from one peer into the mailbox until the
// connection dies or a frame fails validation; either way the peer is
// marked dead so receivers fail fast instead of hanging.
func (c *tcpComm) readLoop(peer int, conn net.Conn) {
	for {
		tag, payload, err := readFrame(conn, c.maxFrame)
		if err != nil {
			var fe *FrameError
			if errors.As(err, &fe) {
				c.stats.framesRejected.Add(1)
				conn.Close()
			}
			c.box.markDead(peer, err)
			return
		}
		if err := c.box.put(peer, tag, payload); err != nil {
			return
		}
	}
}

func (c *tcpComm) Rank() int { return c.rank }
func (c *tcpComm) Size() int { return c.size }

func (c *tcpComm) Send(dst, tag int, payload []byte) error {
	if err := checkPeer(c, dst); err != nil {
		return err
	}
	if dst == c.rank {
		return fmt.Errorf("mpi: rank %d sending to itself", dst)
	}
	if int64(len(payload)) > c.maxFrame {
		c.stats.framesRejected.Add(1)
		return &FrameError{Tag: int64(tag), Length: int64(len(payload)), Max: c.maxFrame}
	}
	conn := c.conns[dst]
	if conn == nil {
		return ErrClosed
	}
	c.stats.sends.Add(1)
	buf := appendFrame(make([]byte, 0, frameHeaderLen+len(payload)), tag, payload)
	c.wmu[dst].Lock()
	defer c.wmu[dst].Unlock()
	for attempt := 0; ; attempt++ {
		if c.sendTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(c.sendTimeout))
		}
		n, err := conn.Write(buf)
		if err == nil {
			return nil
		}
		// A partial write leaves the stream mid-frame: retrying would
		// corrupt framing, so only clean zero-byte timeouts retry.
		if n > 0 || attempt >= c.sendRetries || !retriable(err) {
			return &RankFailedError{Rank: dst, Err: err}
		}
		c.stats.retries.Add(1)
		time.Sleep(backoff(c.rank, attempt))
	}
}

func (c *tcpComm) Recv(src, tag int) ([]byte, error) {
	return c.RecvDeadline(src, tag, c.recvTimeout)
}

// RecvDeadline receives with an explicit timeout, overriding the
// configured RecvTimeout (0 blocks forever).
func (c *tcpComm) RecvDeadline(src, tag int, timeout time.Duration) ([]byte, error) {
	if err := checkPeer(c, src); err != nil {
		return nil, err
	}
	return c.box.take(src, tag, timeout)
}

// CommStats returns this endpoint's transport counters.
func (c *tcpComm) CommStats() CommStats { return c.stats.snapshot() }

func (c *tcpComm) Close() error {
	c.closeOnce.Do(func() {
		c.box.close()
		if c.ln != nil {
			c.ln.Close()
		}
		for _, conn := range c.conns {
			if conn != nil {
				conn.Close()
			}
		}
	})
	return nil
}
