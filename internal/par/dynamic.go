package par

import (
	"runtime"
	"sync/atomic"
)

// This file implements the dynamically scheduled parallel loop used where
// per-item work is highly skewed (reverse-BFS sampling, where RRR set
// sizes vary by orders of magnitude). The paper's static OpenMP split
// (Interval) loses strong-scaling efficiency there: whichever thread draws
// the hub-adjacent roots becomes the critical path. The scheduler below is
// a chunked work-stealing loop:
//
//   - every worker starts owning the same contiguous interval the static
//     schedule would give it, held as one CAS-updated (lo, hi) range — a
//     degenerate deque of index chunks;
//   - a worker claims chunks from the head of its own range with guided
//     sizing (a quarter of its remainder, never below the caller's chunk
//     floor), so early chunks are large and the tail is fine-grained;
//   - a worker whose range is empty steals the upper half of the first
//     non-empty range it finds, scanning victims in deterministic
//     rank order, installs the loot as its own range and goes back to
//     guided claiming (so the loot is itself re-stealable);
//   - workers leave only when every index has been claimed for execution,
//     and the barrier returns only after every claimed chunk has run —
//     work-conserving, and a deterministic completion point for callers.
//
// Which worker executes which chunk is timing-dependent; determinism of
// results is the caller's business (the IMM sampler derives each sample's
// randomness from its global index and merges output in index order, so
// its collections are byte-identical under any schedule).

// StealStats reports what one dynamic loop's scheduler did: how many
// chunks were claimed in total and how many steals re-balanced the load.
// Both are scheduling telemetry — timing-dependent, not deterministic.
type StealStats struct {
	// Chunks is the number of fn invocations (claimed chunks).
	Chunks int64
	// Steals is the number of successful steal-half operations.
	Steals int64
}

// guidedDiv is the guided-sizing divisor: an owner claims rem/guidedDiv of
// its remaining range per chunk (floored at the caller's chunk size).
const guidedDiv = 4

// packRange packs a half-open index range into one CAS-able word; indexes
// must fit in uint32 (the scheduler caps n at MaxDynamicN).
func packRange(lo, hi int) uint64 { return uint64(uint32(lo))<<32 | uint64(uint32(hi)) }

func unpackRange(v uint64) (lo, hi int) { return int(v >> 32), int(uint32(v)) }

// MaxDynamicN is the largest n Dynamic accepts (range bounds are packed
// into one 64-bit word for atomic claim/steal).
const MaxDynamicN = 1<<31 - 1

// Dynamic runs a dynamically scheduled parallel loop over [0, n): chunked
// work-stealing with guided chunk sizing (see the file comment). chunk is
// the minimum chunk size (<= 0 means 1); fn(rank, lo, hi) is invoked with
// disjoint ranges that exactly tile [0, n), each on the worker that
// claimed it. It returns only after every index has been executed.
func Dynamic(n, p, chunk int, fn func(rank, lo, hi int)) {
	DynamicSteal(n, p, chunk, fn)
}

// DynamicSteal is Dynamic returning the scheduler's steal/chunk counters.
func DynamicSteal(n, p, chunk int, fn func(rank, lo, hi int)) StealStats {
	if n <= 0 {
		return StealStats{}
	}
	if n > MaxDynamicN {
		panic("par: Dynamic over more than 2^31-1 items")
	}
	if p <= 0 {
		p = DefaultWorkers()
	}
	if p > n {
		p = n
	}
	if chunk <= 0 {
		chunk = 1
	}
	if p == 1 {
		fn(0, 0, n)
		return StealStats{Chunks: 1}
	}

	// Per-worker ranges, initialized to the static split so a run with no
	// steals touches memory exactly like the static schedule.
	ranges := make([]atomic.Uint64, p)
	for r := range ranges {
		lo, hi := Interval(n, p, r)
		ranges[r].Store(packRange(lo, hi))
	}
	// unclaimed counts indexes not yet claimed for execution. It reaches
	// zero exactly when the last chunk has been handed to a worker; a
	// worker finding nothing to steal parks on it rather than exiting, so
	// loot still being installed by a thief cannot be stranded.
	var unclaimed atomic.Int64
	unclaimed.Store(int64(n))
	var steals, chunks atomic.Int64

	// claimOwn takes a guided-size chunk off the head of r's range.
	claimOwn := func(r int) (int, int, bool) {
		for {
			v := ranges[r].Load()
			lo, hi := unpackRange(v)
			rem := hi - lo
			if rem <= 0 {
				return 0, 0, false
			}
			c := rem / guidedDiv
			if c < chunk {
				c = chunk
			}
			if c > rem {
				c = rem
			}
			if ranges[r].CompareAndSwap(v, packRange(lo+c, hi)) {
				unclaimed.Add(int64(-c))
				return lo, lo + c, true
			}
		}
	}
	// stealHalf takes the upper half of v's range (the part farthest from
	// the victim's claiming head).
	stealHalf := func(v int) (int, int, bool) {
		for {
			w := ranges[v].Load()
			lo, hi := unpackRange(w)
			rem := hi - lo
			if rem <= 0 {
				return 0, 0, false
			}
			mid := hi - (rem+1)/2
			if ranges[v].CompareAndSwap(w, packRange(lo, mid)) {
				return mid, hi, true
			}
		}
	}

	Run(p, func(rank int) {
		for {
			if lo, hi, ok := claimOwn(rank); ok {
				chunks.Add(1)
				fn(rank, lo, hi)
				continue
			}
			// Own range empty. Only its owner refills a range, so the CAS
			// traffic below cannot resurrect ours: stealing is safe.
			stolen := false
			for d := 1; d < p; d++ {
				if lo, hi, ok := stealHalf((rank + d) % p); ok {
					ranges[rank].Store(packRange(lo, hi))
					steals.Add(1)
					stolen = true
					break
				}
			}
			if stolen {
				continue
			}
			if unclaimed.Load() <= 0 {
				return // every index is claimed; Run's join is the barrier
			}
			// A thief holds loot it has not installed yet; yield and rescan.
			runtime.Gosched()
		}
	})
	return StealStats{Chunks: chunks.Load(), Steals: steals.Load()}
}
