package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// tortureMix is a SplitMix64 step, duplicated here so the scheduler tests
// stay free of imports from the packages built on top of par.
func tortureMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TestDynamicOnceEachProperty is the scheduler's core safety property:
// for arbitrary (n, p, chunk) shapes, every index in [0, n) is executed
// exactly once, every range is well-formed, and every rank is in [0, p).
func TestDynamicOnceEachProperty(t *testing.T) {
	prop := func(n uint16, p, chunk uint8) bool {
		nn := int(n) % 2048
		pp := int(p)%12 + 1
		cc := int(chunk) % 70
		marks := make([]int32, nn)
		bad := atomic.Bool{}
		Dynamic(nn, pp, cc, func(rank, lo, hi int) {
			if rank < 0 || rank >= pp || lo > hi || lo < 0 || hi > nn {
				bad.Store(true)
				return
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&marks[i], 1)
			}
		})
		if bad.Load() {
			return false
		}
		for _, m := range marks {
			if m != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicEdgeShapes pins the boundary shapes the property test only
// hits probabilistically: empty loops, fewer items than workers, single
// worker, chunk floors larger than n, and n vastly above p.
func TestDynamicEdgeShapes(t *testing.T) {
	t.Run("n=0", func(t *testing.T) {
		calls := 0
		st := DynamicSteal(0, 8, 4, func(_, _, _ int) { calls++ })
		if calls != 0 || st.Chunks != 0 || st.Steals != 0 {
			t.Fatalf("empty loop: calls %d, stats %+v", calls, st)
		}
	})
	t.Run("n<p", func(t *testing.T) {
		marks := make([]int32, 3)
		DynamicSteal(3, 16, 1, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&marks[i], 1)
			}
		})
		for i, m := range marks {
			if m != 1 {
				t.Fatalf("item %d touched %d times", i, m)
			}
		}
	})
	t.Run("p=1", func(t *testing.T) {
		var ranges [][2]int
		st := DynamicSteal(100, 1, 7, func(rank, lo, hi int) {
			if rank != 0 {
				t.Errorf("rank %d on single-worker loop", rank)
			}
			ranges = append(ranges, [2]int{lo, hi})
		})
		if len(ranges) != 1 || ranges[0] != [2]int{0, 100} {
			t.Fatalf("single worker ranges %v, want one [0,100)", ranges)
		}
		if st.Chunks != 1 || st.Steals != 0 {
			t.Fatalf("single worker stats %+v", st)
		}
	})
	t.Run("chunk>n", func(t *testing.T) {
		var count int32
		DynamicSteal(5, 3, 1000, func(_, lo, hi int) { atomic.AddInt32(&count, int32(hi-lo)) })
		if count != 5 {
			t.Fatalf("covered %d items, want 5", count)
		}
	})
	t.Run("n>>p", func(t *testing.T) {
		n := 200_000
		var count atomic.Int64
		st := DynamicSteal(n, 4, 1, func(_, lo, hi int) { count.Add(int64(hi - lo)) })
		if count.Load() != int64(n) {
			t.Fatalf("covered %d items, want %d", count.Load(), n)
		}
		if st.Chunks < 4 {
			t.Fatalf("guided sizing produced only %d chunks for n=%d p=4", st.Chunks, n)
		}
	})
}

// TestDynamicStealTorture forces steals deterministically: worker 0's
// initial interval carries pseudo-random sleeps (seeded, no wall-clock
// randomness) so every other worker drains its own range and must steal
// from worker 0. Run under -race this doubles as the scheduler's
// concurrency soak; the assertions are the once-each invariant and that
// the steal counter actually moved.
func TestDynamicStealTorture(t *testing.T) {
	const (
		n    = 512
		p    = 8
		seed = 42
	)
	slowLo, slowHi := Interval(n, p, 0)
	marks := make([]int32, n)
	st := DynamicSteal(n, p, 1, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&marks[i], 1)
			if i >= slowLo && i < slowHi {
				// 50–250µs per slow item, derived from the item index.
				d := time.Duration(50+tortureMix(uint64(seed)+uint64(i))%200) * time.Microsecond
				time.Sleep(d)
			}
		}
	})
	for i, m := range marks {
		if m != 1 {
			t.Fatalf("item %d touched %d times", i, m)
		}
	}
	if st.Steals == 0 {
		t.Fatal("torture loop completed without a single steal")
	}
	if st.Chunks < 2 {
		t.Fatalf("torture loop used %d chunks, want >= 2", st.Chunks)
	}
	t.Logf("torture: %d chunks, %d steals", st.Chunks, st.Steals)
}

// TestDynamicRangePacking pins the 32-bit packed-range representation the
// CAS loop depends on.
func TestDynamicRangePacking(t *testing.T) {
	cases := [][2]int{{0, 0}, {0, 1}, {7, 513}, {MaxDynamicN - 1, MaxDynamicN}}
	for _, c := range cases {
		lo, hi := unpackRange(packRange(c[0], c[1]))
		if lo != c[0] || hi != c[1] {
			t.Fatalf("pack/unpack [%d,%d) -> [%d,%d)", c[0], c[1], lo, hi)
		}
	}
}
