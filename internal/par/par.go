// Package par provides the static work-partitioning primitives used by the
// shared-memory algorithms. The paper's OpenMP code relies on two idioms:
// parallel-for with a static schedule, and per-thread ownership of a
// contiguous vertex interval so that counter updates need no atomics
// (Algorithm 4). Both idioms are expressed here over goroutines.
package par

import (
	"runtime"
	"sync"
)

// DefaultWorkers is the worker count used when a caller passes p <= 0.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Interval returns the half-open interval [lo, hi) of the items assigned to
// worker rank out of p when n items are split contiguously and as evenly as
// possible: the same split the paper uses for vertex ownership
// (vl = n*t/p, vh = n*(t+1)/p).
func Interval(n, p, rank int) (lo, hi int) {
	if p <= 0 {
		panic("par: Interval with p <= 0")
	}
	if rank < 0 || rank >= p {
		panic("par: Interval rank out of range")
	}
	return n * rank / p, n * (rank + 1) / p
}

// Run executes fn(rank) on p goroutines, ranks 0..p-1, and waits for all of
// them. If p <= 0 it uses DefaultWorkers.
func Run(p int, fn func(rank int)) {
	if p <= 0 {
		p = DefaultWorkers()
	}
	if p == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		go func(rank int) {
			defer wg.Done()
			fn(rank)
		}(r)
	}
	wg.Wait()
}

// ForEach splits [0, n) into p contiguous intervals and executes
// fn(rank, lo, hi) for each on its own goroutine.
func ForEach(n, p int, fn func(rank, lo, hi int)) {
	if p <= 0 {
		p = DefaultWorkers()
	}
	if p > n {
		p = n
	}
	if p <= 1 {
		fn(0, 0, n)
		return
	}
	Run(p, func(rank int) {
		lo, hi := Interval(n, p, rank)
		fn(rank, lo, hi)
	})
}

// ReduceMax combines per-worker (value, argument) pairs into the global
// maximum, breaking ties toward the smaller argument so parallel reductions
// are deterministic. Entries with value < 0 are ignored; it returns
// (-1, -1) if all are.
func ReduceMax(values []int64, args []int) (best int64, arg int) {
	best, arg = -1, -1
	for i, v := range values {
		if v < 0 {
			continue
		}
		if v > best || (v == best && (arg < 0 || args[i] < arg)) {
			best, arg = v, args[i]
		}
	}
	return best, arg
}
