package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestIntervalCoversExactly(t *testing.T) {
	check := func(n uint16, p uint8) bool {
		np, pp := int(n), int(p)
		if pp == 0 {
			pp = 1
		}
		prevHi := 0
		for r := 0; r < pp; r++ {
			lo, hi := Interval(np, pp, r)
			if lo != prevHi || hi < lo {
				return false
			}
			prevHi = hi
		}
		return prevHi == np
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalBalance(t *testing.T) {
	// No interval may be more than one item larger than another.
	n, p := 1001, 17
	minSz, maxSz := n, 0
	for r := 0; r < p; r++ {
		lo, hi := Interval(n, p, r)
		if sz := hi - lo; sz < minSz {
			minSz = sz
		} else if sz > maxSz {
			maxSz = sz
		}
	}
	if maxSz-minSz > 1 {
		t.Fatalf("imbalanced intervals: min %d max %d", minSz, maxSz)
	}
}

// TestIntervalEdgeShapes pins the two boundary shapes seed selection and
// the index build clamp around: fewer items than workers (n < p, most
// intervals empty) and an empty item set (n == 0, every interval empty).
func TestIntervalEdgeShapes(t *testing.T) {
	// n < p: every interval is [x, x) or [x, x+1); they still tile [0, n).
	n, p := 3, 16
	prevHi, nonEmpty := 0, 0
	for r := 0; r < p; r++ {
		lo, hi := Interval(n, p, r)
		if lo != prevHi || hi < lo || hi-lo > 1 {
			t.Fatalf("Interval(%d,%d,%d) = [%d,%d) breaks tiling", n, p, r, lo, hi)
		}
		if hi > lo {
			nonEmpty++
		}
		prevHi = hi
	}
	if prevHi != n || nonEmpty != n {
		t.Fatalf("n<p tiling: end %d, nonempty %d, want %d/%d", prevHi, nonEmpty, n, n)
	}
	// n == 0: every interval is [0, 0).
	for r := 0; r < 4; r++ {
		if lo, hi := Interval(0, 4, r); lo != 0 || hi != 0 {
			t.Fatalf("Interval(0,4,%d) = [%d,%d), want [0,0)", r, lo, hi)
		}
	}
}

func TestIntervalPanics(t *testing.T) {
	for _, tc := range []struct{ n, p, r int }{{10, 0, 0}, {10, 4, -1}, {10, 4, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Interval(%d,%d,%d) did not panic", tc.n, tc.p, tc.r)
				}
			}()
			Interval(tc.n, tc.p, tc.r)
		}()
	}
}

func TestRunAllRanksExecute(t *testing.T) {
	for _, p := range []int{1, 2, 8, 33} {
		seen := make([]int32, p)
		Run(p, func(rank int) { atomic.AddInt32(&seen[rank], 1) })
		for r, c := range seen {
			if c != 1 {
				t.Fatalf("p=%d: rank %d executed %d times", p, r, c)
			}
		}
	}
}

func TestForEachCoversAllItems(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		for _, n := range []int{0, 1, 7, 100} {
			marks := make([]int32, n)
			ForEach(n, p, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&marks[i], 1)
				}
			})
			for i, m := range marks {
				if m != 1 {
					t.Fatalf("p=%d n=%d: item %d touched %d times", p, n, i, m)
				}
			}
		}
	}
}

func TestForEachMoreWorkersThanItems(t *testing.T) {
	var count int32
	ForEach(3, 100, func(_, lo, hi int) { atomic.AddInt32(&count, int32(hi-lo)) })
	if count != 3 {
		t.Fatalf("covered %d items, want 3", count)
	}
}

func TestDynamicCoversAllItems(t *testing.T) {
	for _, chunk := range []int{1, 3, 64, 1000} {
		n := 257
		marks := make([]int32, n)
		Dynamic(n, 4, chunk, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&marks[i], 1)
			}
		})
		for i, m := range marks {
			if m != 1 {
				t.Fatalf("chunk=%d: item %d touched %d times", chunk, i, m)
			}
		}
	}
}

func TestReduceMax(t *testing.T) {
	tests := []struct {
		values []int64
		args   []int
		want   int64
		wantA  int
	}{
		{[]int64{3, 9, 9, 1}, []int{0, 5, 2, 7}, 9, 2}, // tie -> smaller arg
		{[]int64{-1, -1}, []int{0, 1}, -1, -1},         // all invalid
		{[]int64{0}, []int{4}, 0, 4},
		{[]int64{5, -1, 7}, []int{1, 2, 3}, 7, 3},
	}
	for i, tc := range tests {
		got, gotA := ReduceMax(tc.values, tc.args)
		if got != tc.want || gotA != tc.wantA {
			t.Errorf("case %d: ReduceMax = (%d, %d), want (%d, %d)", i, got, gotA, tc.want, tc.wantA)
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}
