// Package rng provides pseudorandom number generation for large-scale
// parallel Monte Carlo sampling.
//
// The package mirrors the random-number discipline of the CLUSTER'19 paper:
// a single global linear congruential sequence is split among p ranks with
// the Leap Frog method (rank i of p consumes elements i, i+p, i+2p, ... of
// the sequence), so that the union of all numbers consumed by all ranks is
// one well-defined stream regardless of p. Jump-ahead is O(log n) by
// exponentiating the affine transition map.
//
// Two alternative generators (SplitMix64 and xoshiro256**) are provided for
// ablation studies, together with a per-sample derivation scheme that makes
// every Monte Carlo sample's randomness independent of how samples are
// scheduled onto workers.
package rng

import (
	"math"
	"math/bits"
)

// Source is a stream of pseudorandom 64-bit values.
type Source interface {
	// Uint64 returns the next pseudorandom value and advances the stream.
	Uint64() uint64
}

// Constants of the 64-bit LCG (Knuth's MMIX multiplier/increment).
const (
	lcgMult uint64 = 6364136223846793005
	lcgInc  uint64 = 1442695040888963407
)

// LCG is a 64-bit linear congruential generator with output scrambling.
// Its transition is the affine map state' = a*state + c (mod 2^64); the raw
// state is passed through a SplitMix64-style finalizer before being
// returned, which removes the weak low bits of a power-of-two-modulus LCG
// while preserving the exact leap-frog algebra on the underlying states.
type LCG struct {
	state uint64
	a, c  uint64 // per-stream transition (composed for leap-frog substreams)
}

// NewLCG returns a generator seeded with seed, using the canonical
// transition constants.
func NewLCG(seed uint64) *LCG {
	return &LCG{state: seed, a: lcgMult, c: lcgInc}
}

// Uint64 advances the generator one step and returns the scrambled state.
func (g *LCG) Uint64() uint64 {
	g.state = g.a*g.state + g.c
	return Mix64(g.state)
}

// affinePow composes the affine map x -> a*x + c with itself n times,
// returning the coefficients (an, cn) such that applying the map n times is
// x -> an*x + cn (mod 2^64). It runs in O(log n) by repeated squaring.
func affinePow(a, c, n uint64) (an, cn uint64) {
	an, cn = 1, 0 // identity map
	for n > 0 {
		if n&1 == 1 {
			// compose current accumulated map with (a, c):
			// x -> a*(an*x + cn) + c
			an, cn = a*an, a*cn+c
		}
		// square (a, c): x -> a*(a*x+c)+c = a^2 x + (a+1)c
		a, c = a*a, (a+1)*c
		n >>= 1
	}
	return an, cn
}

// Jump advances the generator by n steps in O(log n) time.
func (g *LCG) Jump(n uint64) {
	an, cn := affinePow(g.a, g.c, n)
	g.state = an*g.state + cn
}

// LeapFrog returns the rank-th of stride interleaved substreams of g.
// Substream rank produces exactly the elements rank, rank+stride,
// rank+2*stride, ... of g's future output sequence. g itself is not
// advanced. rank must be in [0, stride).
func (g *LCG) LeapFrog(rank, stride int) *LCG {
	if stride <= 0 || rank < 0 || rank >= stride {
		panic("rng: LeapFrog requires 0 <= rank < stride")
	}
	// The substream's transition applies the base map stride times. Uint64
	// advances before returning, so the substream's initial state must be
	// one stride-step *before* its first output, which is base output
	// rank+1 (the state after rank+1 base steps).
	sa, sc := affinePow(g.a, g.c, uint64(stride))
	an, cn := affinePow(g.a, g.c, uint64(rank+1))
	first := an*g.state + cn
	inv := mulInverse(sa)
	return &LCG{state: inv * (first - sc), a: sa, c: sc}
}

// mulInverse returns the multiplicative inverse of odd a modulo 2^64 by
// Newton iteration (each step doubles the number of correct bits).
func mulInverse(a uint64) uint64 {
	x := a // correct to 3 bits for odd a
	for i := 0; i < 5; i++ {
		x *= 2 - a*x
	}
	return x
}

// State returns the raw internal state (for tests and checkpointing).
func (g *LCG) State() uint64 { return g.state }

// Mix64 is the SplitMix64 finalizer: a bijective scrambling of 64-bit
// values with good avalanche behaviour.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64Hi24 returns the top 24 bits of Mix64(z), skipping the finalizer's
// last xor-shift: z ^= z >> 31 only alters bits 0..32, so bits 63..40 of
// the second product stage already equal the finalized output's. Coin
// kernels that compare only these bits against an integer threshold (the
// IC decide loops) save two operations per draw without changing a single
// decision.
func Mix64Hi24(z uint64) uint32 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return uint32(z >> 40)
}

// SplitMixGamma is the SplitMix64 state increment (the Weyl constant).
// Exported so batch kernels can advance a raw SplitMix64 state inline —
// state += SplitMixGamma; value = Mix64(state) — generating coin blocks
// without an interface call per draw. The sequence is bit-identical to
// SplitMix64.Uint64 from the same state.
const SplitMixGamma uint64 = 0x9e3779b97f4a7c15

// SplitMixState returns the raw initial state of the stream
// Derive(seed, index) / Reseed(seed, index): the value such that repeated
// state += SplitMixGamma; Mix64(state) reproduces that stream exactly.
// It is the inline-kernel counterpart of Reseed.
func SplitMixState(seed, index uint64) uint64 {
	// Mirror of Reseed: the index is passed through the finalizer so that
	// adjacent indices do not yield shifted copies of one another.
	return Mix64(Mix64(seed^0x632be59bd9b4e019) ^ (index * 0xd1342543de82ef95))
}

// SplitMix64 is the SplitMix64 generator: a 64-bit counter passed through
// Mix64. It is used for per-sample randomness derivation and as an
// ablation alternative to the leap-frog LCG.
type SplitMix64 struct{ state uint64 }

// NewSplitMix64 returns a SplitMix64 generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Uint64 returns the next value of the stream.
func (g *SplitMix64) Uint64() uint64 {
	g.state += SplitMixGamma
	return Mix64(g.state)
}

// Derive returns a generator whose stream is a deterministic function of
// (seed, index) and statistically independent across indices. It is used to
// give every Monte Carlo sample its own stream so results do not depend on
// which worker or rank executes the sample.
func Derive(seed, index uint64) *SplitMix64 {
	g := new(SplitMix64)
	g.Reseed(seed, index)
	return g
}

// Reseed resets g in place to the exact stream Derive(seed, index) returns,
// so a per-worker generator can be re-pointed at each sample's stream
// without allocating a generator per sample.
func (g *SplitMix64) Reseed(seed, index uint64) {
	g.state = SplitMixState(seed, index)
}

// Xoshiro256 is the xoshiro256** generator of Blackman and Vigna.
type Xoshiro256 struct{ s [4]uint64 }

// NewXoshiro256 returns a xoshiro256** generator seeded from seed via
// SplitMix64, as recommended by its authors.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var g Xoshiro256
	for i := range g.s {
		g.s[i] = sm.Uint64()
	}
	if g.s == [4]uint64{} {
		g.s[0] = 1 // the all-zero state is invalid
	}
	return &g
}

// Uint64 returns the next value of the stream.
func (g *Xoshiro256) Uint64() uint64 {
	s := &g.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Rand wraps a Source with convenience distributions.
type Rand struct{ Src Source }

// New returns a Rand over src.
func New(src Source) *Rand { return &Rand{Src: src} }

// Uint64 returns the next raw value.
func (r *Rand) Uint64() uint64 { return r.Src.Uint64() }

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Src.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float32 returns a uniform value in [0, 1) with 24 bits of precision.
func (r *Rand) Float32() float32 {
	return float32(r.Src.Uint64()>>40) * (1.0 / (1 << 24))
}

// Uint32n returns a uniform value in [0, n) using Lemire's multiply-shift
// method (no modulo bias worth worrying about at 64->32 bits).
func (r *Rand) Uint32n(n uint32) uint32 {
	if n == 0 {
		panic("rng: Uint32n(0)")
	}
	hi, _ := bits.Mul64(r.Src.Uint64(), uint64(n))
	return uint32(hi)
}

// Intn returns a uniform value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	hi, _ := bits.Mul64(r.Src.Uint64(), uint64(n))
	return int(hi)
}

// Perm returns a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NormFloat64 returns a standard normal variate (Box-Muller, polar form).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
