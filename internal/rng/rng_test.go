package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLCGDeterminism(t *testing.T) {
	a, b := NewLCG(42), NewLCG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestLCGSeedSensitivity(t *testing.T) {
	a, b := NewLCG(1), NewLCG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d times in 1000 draws", same)
	}
}

func TestAffinePowIdentity(t *testing.T) {
	an, cn := affinePow(lcgMult, lcgInc, 0)
	if an != 1 || cn != 0 {
		t.Fatalf("affinePow(_, _, 0) = (%d, %d), want identity (1, 0)", an, cn)
	}
}

func TestAffinePowMatchesIteration(t *testing.T) {
	check := func(n uint8, x uint64) bool {
		an, cn := affinePow(lcgMult, lcgInc, uint64(n))
		got := an*x + cn
		want := x
		for i := uint8(0); i < n; i++ {
			want = lcgMult*want + lcgInc
		}
		return got == want
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJumpEqualsSteps(t *testing.T) {
	check := func(seed uint64, n uint16) bool {
		g1, g2 := NewLCG(seed), NewLCG(seed)
		g1.Jump(uint64(n))
		for i := uint16(0); i < n; i++ {
			g2.Uint64()
		}
		return g1.State() == g2.State()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// The defining property of the Leap Frog split: interleaving the outputs of
// the p substreams reconstructs the base sequence exactly.
func TestLeapFrogInterleaving(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 16} {
		base := NewLCG(987654321)
		var want []uint64
		for i := 0; i < 10*p; i++ {
			want = append(want, base.Uint64())
		}
		fresh := NewLCG(987654321)
		subs := make([]*LCG, p)
		for r := 0; r < p; r++ {
			subs[r] = fresh.LeapFrog(r, p)
		}
		for i, w := range want {
			got := subs[i%p].Uint64()
			if got != w {
				t.Fatalf("p=%d: interleaved element %d = %d, want %d", p, i, got, w)
			}
		}
	}
}

func TestLeapFrogDoesNotAdvanceBase(t *testing.T) {
	g := NewLCG(7)
	before := g.State()
	g.LeapFrog(0, 4)
	if g.State() != before {
		t.Fatal("LeapFrog advanced the base generator")
	}
}

func TestLeapFrogPanicsOnBadArgs(t *testing.T) {
	for _, tc := range [][2]int{{-1, 4}, {4, 4}, {0, 0}, {1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LeapFrog(%d, %d) did not panic", tc[0], tc[1])
				}
			}()
			NewLCG(1).LeapFrog(tc[0], tc[1])
		}()
	}
}

func TestMix64Bijective(t *testing.T) {
	// Spot-check injectivity on a dense set of small inputs plus random ones.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		v := Mix64(i)
		if prev, dup := seen[v]; dup {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[v] = i
	}
}

func TestDeriveIndependence(t *testing.T) {
	// Streams derived for adjacent indices must not be shifted copies of
	// each other.
	a, b := Derive(5, 0), Derive(5, 1)
	av, bv := make([]uint64, 64), make([]uint64, 64)
	for i := range av {
		av[i], bv[i] = a.Uint64(), b.Uint64()
	}
	for shift := 0; shift < 32; shift++ {
		matches := 0
		for i := 0; i+shift < 64; i++ {
			if av[i+shift] == bv[i] {
				matches++
			}
		}
		if matches > 1 {
			t.Fatalf("derived streams overlap at shift %d (%d matches)", shift, matches)
		}
	}
}

func TestDeriveDeterminism(t *testing.T) {
	check := func(seed, idx uint64) bool {
		return Derive(seed, idx).Uint64() == Derive(seed, idx).Uint64()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func testUniformity(t *testing.T, name string, src Source) {
	t.Helper()
	const buckets, draws = 64, 64 * 4096
	r := New(src)
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[int(r.Float64()*buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 63 degrees of freedom: mean 63, stddev ~11.2. Beyond 140 is a
	// catastrophic generator failure rather than statistical noise.
	if chi2 > 140 {
		t.Errorf("%s: chi2 = %.1f over %d buckets, generator grossly non-uniform", name, chi2, buckets)
	}
}

func TestUniformityLCG(t *testing.T)      { testUniformity(t, "LCG", NewLCG(1)) }
func TestUniformitySplitMix(t *testing.T) { testUniformity(t, "SplitMix64", NewSplitMix64(1)) }
func TestUniformityXoshiro(t *testing.T)  { testUniformity(t, "xoshiro256**", NewXoshiro256(1)) }

func TestFloat64Range(t *testing.T) {
	check := func(seed uint64) bool {
		v := New(NewLCG(seed)).Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(NewSplitMix64(3))
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(NewXoshiro256(9))
	for _, n := range []int{1, 2, 3, 10, 1000000} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnCoversAllValues(t *testing.T) {
	r := New(NewLCG(11))
	seen := make([]bool, 7)
	for i := 0; i < 10000; i++ {
		seen[r.Intn(7)] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("Intn(7) never produced %d in 10000 draws", v)
		}
	}
}

func TestUint32nBounds(t *testing.T) {
	r := New(NewLCG(13))
	for i := 0; i < 10000; i++ {
		if v := r.Uint32n(17); v >= 17 {
			t.Fatalf("Uint32n(17) = %d", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(NewLCG(seed)).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(NewSplitMix64(17))
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestXoshiroZeroSeedValid(t *testing.T) {
	g := NewXoshiro256(0)
	a, b := g.Uint64(), g.Uint64()
	if a == 0 && b == 0 {
		t.Fatal("xoshiro with zero seed is stuck at zero")
	}
}

func BenchmarkLCG(b *testing.B) {
	g := NewLCG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += g.Uint64()
	}
	_ = sink
}

func BenchmarkSplitMix64(b *testing.B) {
	g := NewSplitMix64(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += g.Uint64()
	}
	_ = sink
}

func BenchmarkXoshiro256(b *testing.B) {
	g := NewXoshiro256(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += g.Uint64()
	}
	_ = sink
}

func BenchmarkLeapFrogSplit(b *testing.B) {
	g := NewLCG(1)
	for i := 0; i < b.N; i++ {
		_ = g.LeapFrog(i%16, 16)
	}
}

func TestReseedMatchesDerive(t *testing.T) {
	g := NewSplitMix64(0)
	for _, tc := range []struct{ seed, index uint64 }{
		{0, 0}, {1, 0}, {0, 1}, {42, 1 << 40}, {^uint64(0), 12345},
	} {
		g.Reseed(tc.seed, tc.index)
		fresh := Derive(tc.seed, tc.index)
		for i := 0; i < 8; i++ {
			if a, b := g.Uint64(), fresh.Uint64(); a != b {
				t.Fatalf("seed=%d index=%d step %d: Reseed stream %x != Derive stream %x",
					tc.seed, tc.index, i, a, b)
			}
		}
	}
}

// TestSplitMixStateMatchesReseed pins the inline-kernel state derivation:
// advancing the raw SplitMixState by the Weyl constant and finalizing must
// reproduce the Derive/Reseed stream value for value.
func TestSplitMixStateMatchesReseed(t *testing.T) {
	for _, tc := range []struct{ seed, index uint64 }{
		{0, 0}, {1, 0}, {0, 1}, {7, 1000}, {42, 1 << 40}, {^uint64(0), 12345},
	} {
		want := Derive(tc.seed, tc.index)
		st := SplitMixState(tc.seed, tc.index)
		for i := 0; i < 16; i++ {
			st += SplitMixGamma
			if got, w := Mix64(st), want.Uint64(); got != w {
				t.Fatalf("seed=%d index=%d step %d: inline state stream %x != Derive stream %x",
					tc.seed, tc.index, i, got, w)
			}
		}
	}
}

// TestMix64Hi24MatchesMix64 pins the compare-only finalizer shortcut: the
// top 24 bits it returns must equal the finalized Mix64 output's for every
// input (the skipped xor-shift only alters bits 0..32, which an exhaustive
// check over structured and pseudorandom inputs confirms).
func TestMix64Hi24MatchesMix64(t *testing.T) {
	check := func(z uint64) {
		if got, want := Mix64Hi24(z), uint32(Mix64(z)>>40); got != want {
			t.Fatalf("Mix64Hi24(%#x) = %#x, want %#x", z, got, want)
		}
	}
	for _, z := range []uint64{0, 1, ^uint64(0), 1 << 31, 1 << 32, 1 << 63, SplitMixGamma} {
		check(z)
	}
	g := NewSplitMix64(99)
	for i := 0; i < 1_000_000; i++ {
		check(g.Uint64())
	}
}
