package rrr

import (
	"encoding/binary"
	"fmt"
	"slices"

	"influmax/internal/graph"
)

// CodedCollection stores RRR sets byte-coded: each sample's member list is
// expressed in code space (an optional frequency-ordered Relabeling, or
// original ids when relab is nil), sorted ascending, and delta+varint
// encoded — the first code verbatim, every following code as (gap - 1),
// since gaps in a strict ascent are >= 1. Samples are grouped into blocks
// of 64: one int64 byte offset is kept per block rather than per sample,
// and each sample's payload is preceded by a uvarint byte length, so
// random access costs one block lookup plus at most 63 length skips.
// Compared to the flat Collection's 4 bytes per entry + 8 bytes per
// sample, the coded layout spends ~1.1-1.4 bytes per entry on clustered
// graphs plus ~1 byte of length prefix and 0.125 bytes of amortized block
// offset per sample — the >= 3x footprint reduction gated by
// BenchmarkStoreFootprintGate. The wire format is specified normatively in
// DESIGN.md §13.
//
// The store is append-only and immutable once shared; decode paths
// (AppendMembers, Contains, visitRange, CountAll) are safe for any number
// of concurrent readers.
type CodedCollection struct {
	n         int
	relab     *Relabeling // nil = identity labeling (codes are original ids)
	count     int
	total     int64   // summed cardinality of all samples
	blockOffs []int64 // byte offset of each block's first sample; len = ceil(count/64)
	data      []byte

	codeBuf []uint32 // Append scratch: one sample's codes
	encBuf  []byte   // Append scratch: one sample's encoded payload
}

// codedBlockShift and codedBlockSamples fix the block size at 64 samples:
// small enough that skipping to a sample inside a block is a handful of
// uvarint length reads, large enough that the per-block int64 offset
// amortizes to 1/8 byte per sample.
const (
	codedBlockShift   = 6
	codedBlockSamples = 1 << codedBlockShift
)

// NewCodedCollection returns an empty coded store over n vertices. relab
// may be nil for the identity labeling; otherwise relab.Len() must equal n.
func NewCodedCollection(n int, relab *Relabeling) *CodedCollection {
	if relab != nil && relab.Len() != n {
		panic(fmt.Sprintf("rrr: relabeling covers %d vertices, store has %d", relab.Len(), n))
	}
	return &CodedCollection{n: n, relab: relab}
}

// FromCollection transcodes every sample of col into a coded store under
// relab (nil for identity). The flat arena is left untouched; callers drop
// it when the transcode is what they keep.
func FromCollection(col *Collection, relab *Relabeling) *CodedCollection {
	c := NewCodedCollection(col.NumVertices(), relab)
	// Size the data buffer for the common case (most gaps fit one byte)
	// to avoid repeated growth; excess capacity is clipped at the end.
	c.data = make([]byte, 0, col.TotalSize()+int64(col.Count())*2)
	for i := 0; i < col.Count(); i++ {
		c.Append(col.Sample(i))
	}
	c.data = slices.Clip(c.data)
	return c
}

// NumVertices returns the vertex-universe size.
func (c *CodedCollection) NumVertices() int { return c.n }

// Count returns the number of stored samples.
func (c *CodedCollection) Count() int { return c.count }

// TotalSize returns the summed cardinality of all samples.
func (c *CodedCollection) TotalSize() int64 { return c.total }

// Relabeled reports whether the store carries a non-identity labeling
// (decoded members then come out in code order, not ascending id order).
func (c *CodedCollection) Relabeled() bool { return c.relab != nil }

// Relabeling returns the store's labeling, nil for identity.
func (c *CodedCollection) Relabeling() *Relabeling { return c.relab }

// Append adds one sample; the vertex list must be sorted ascending and
// duplicate-free (the same contract as Collection.Append).
func (c *CodedCollection) Append(set []graph.Vertex) {
	codes := c.codeBuf[:0]
	if c.relab == nil {
		for _, v := range set {
			codes = append(codes, uint32(v))
		}
	} else {
		for _, v := range set {
			codes = append(codes, c.relab.Code(v))
		}
		slices.Sort(codes)
	}
	c.codeBuf = codes

	buf := c.encBuf[:0]
	prev := uint32(0)
	for i, cd := range codes {
		delta := uint64(cd)
		if i > 0 {
			delta = uint64(cd - prev - 1) // gaps are >= 1 in a strict ascent
		}
		buf = binary.AppendUvarint(buf, delta)
		prev = cd
	}
	c.encBuf = buf

	if c.count&(codedBlockSamples-1) == 0 {
		c.blockOffs = append(c.blockOffs, int64(len(c.data)))
	}
	c.data = binary.AppendUvarint(c.data, uint64(len(buf)))
	c.data = append(c.data, buf...)
	c.count++
	c.total += int64(len(set))
}

// payload locates the delta payload of sample i: jump to its block's
// offset, then skip the length-prefixed samples before it in the block.
func (c *CodedCollection) payload(i int) []byte {
	pos := c.blockOffs[i>>codedBlockShift]
	for s := i & (codedBlockSamples - 1); s > 0; s-- {
		l, k := binary.Uvarint(c.data[pos:])
		pos += int64(k) + int64(l)
	}
	l, k := binary.Uvarint(c.data[pos:])
	start := pos + int64(k)
	return c.data[start : start+int64(l)]
}

// AppendMembers decodes sample i and appends its members, in ascending
// code order, to buf (which is returned). With the identity labeling that
// is ascending original-id order; under a frequency relabeling it is not —
// the selection paths that consume this are order-insensitive (counter
// decrements commute), which is why decode never needs to sort.
func (c *CodedCollection) AppendMembers(i int, buf []graph.Vertex) []graph.Vertex {
	p := c.payload(i)
	prev := uint32(0)
	first := true
	for pos := 0; pos < len(p); {
		delta, k := binary.Uvarint(p[pos:])
		pos += k
		cur := uint32(delta)
		if !first {
			cur = prev + 1 + uint32(delta)
		}
		if c.relab == nil {
			buf = append(buf, graph.Vertex(cur))
		} else {
			buf = append(buf, c.relab.Orig(cur))
		}
		prev = cur
		first = false
	}
	return buf
}

// AccumMembers decodes sample i and increments counts at every member's
// original id — the fused decode+count the purge and counting paths run
// hot. The varint loop is inlined with a single-byte fast path: under the
// frequency relabeling most gaps fit one byte (that is the point of the
// relabeling), so the common case is one branch, one add, one table
// lookup per member.
func (c *CodedCollection) AccumMembers(i int, counts []int32) {
	p := c.payload(i)
	prev := uint32(0)
	first := true
	pos := 0
	if c.relab == nil {
		for pos < len(p) {
			var delta uint32
			if b := p[pos]; b < 0x80 {
				delta = uint32(b)
				pos++
			} else {
				d, k := binary.Uvarint(p[pos:])
				delta = uint32(d)
				pos += k
			}
			cur := prev + 1 + delta
			if first {
				cur = delta
				first = false
			}
			counts[cur]++
			prev = cur
		}
		return
	}
	orig := c.relab.orig
	for pos < len(p) {
		var delta uint32
		if b := p[pos]; b < 0x80 {
			delta = uint32(b)
			pos++
		} else {
			d, k := binary.Uvarint(p[pos:])
			delta = uint32(d)
			pos += k
		}
		cur := prev + 1 + delta
		if first {
			cur = delta
			first = false
		}
		counts[orig[cur]]++
		prev = cur
	}
}

// SampleSorted decodes sample i into buf (reused if capacious) and returns
// its members sorted ascending by original id — the canonical order
// Collection.Sample yields, regardless of the store's labeling. Used by
// transcoding and equivalence tests; hot paths use AppendMembers.
func (c *CodedCollection) SampleSorted(i int, buf []graph.Vertex) []graph.Vertex {
	buf = c.AppendMembers(i, buf[:0])
	if c.relab != nil {
		slices.Sort(buf)
	}
	return buf
}

// Contains reports membership of v in sample i by streaming the deltas in
// code space with early exit once the running code passes v's code.
func (c *CodedCollection) Contains(i int, v graph.Vertex) bool {
	want := uint32(v)
	if c.relab != nil {
		want = c.relab.Code(v)
	}
	p := c.payload(i)
	prev := uint32(0)
	first := true
	for pos := 0; pos < len(p); {
		delta, k := binary.Uvarint(p[pos:])
		pos += k
		cur := uint32(delta)
		if !first {
			cur = prev + 1 + uint32(delta)
		}
		if cur == want {
			return true
		}
		if cur > want {
			return false
		}
		prev = cur
		first = false
	}
	return false
}

// visitRange streams sample i and invokes visit for every member whose
// original id falls in [vl, vh) — the store access the inverted-index
// build needs. With the identity labeling members stream ascending with
// early exit past vh; under a relabeling every member is decoded and
// filtered, in code order. Both are valid for buildIndex: each vertex
// appears at most once per sample, so per-vertex sample lists stay sorted
// by the ascending sample loop alone.
func (c *CodedCollection) visitRange(i int, vl, vh graph.Vertex, visit func(graph.Vertex)) {
	p := c.payload(i)
	prev := uint32(0)
	first := true
	for pos := 0; pos < len(p); {
		delta, k := binary.Uvarint(p[pos:])
		pos += k
		cur := uint32(delta)
		if !first {
			cur = prev + 1 + uint32(delta)
		}
		prev = cur
		first = false
		if c.relab == nil {
			if cur >= uint32(vh) {
				return
			}
			if cur >= uint32(vl) {
				visit(graph.Vertex(cur))
			}
			continue
		}
		if v := c.relab.Orig(cur); v >= vl && v < vh {
			visit(v)
		}
	}
}

// CountAll accumulates every sample's membership into counter, skipping
// samples marked in covered (may be nil to count everything) — the coded
// analog of Collection.CountRange over the full vertex range.
func (c *CodedCollection) CountAll(counter []int32, covered Bitset) {
	for i := 0; i < c.count; i++ {
		if covered != nil && covered.Get(i) {
			continue
		}
		c.AccumMembers(i, counter)
	}
}

// Recode re-expresses every sample under a different labeling (nil for
// identity), returning a new store over the same samples. This is the
// snapshot cross-loading path: a snapshot written with one labeling is
// transcoded once at load time into the store kind the server runs.
func (c *CodedCollection) Recode(relab *Relabeling) *CodedCollection {
	out := NewCodedCollection(c.n, relab)
	out.data = make([]byte, 0, len(c.data))
	var buf []graph.Vertex
	for i := 0; i < c.count; i++ {
		buf = c.SampleSorted(i, buf)
		out.Append(buf)
	}
	out.data = slices.Clip(out.data)
	return out
}

// Bytes returns the coded footprint: payload bytes, block offsets, and the
// relabel table the store cannot be decoded without.
func (c *CodedCollection) Bytes() int64 {
	return int64(len(c.data)) + int64(len(c.blockOffs))*8 + c.relab.Bytes()
}

// FlatBytes returns what the same samples cost in the flat Collection
// layout (4 bytes per entry + 8 bytes per sample offset) — the numerator
// of the compression ratio reported beside rrr/store-bytes.
func (c *CodedCollection) FlatBytes() int64 {
	return c.total*4 + int64(c.count+1)*8
}

// decodePayloadChecked walks one sample payload, validating it: every
// varint must terminate inside the payload, codes must ascend strictly and
// stay below n, and no trailing bytes may remain ambiguous (the payload
// length delimits exactly). Returns the cardinality. This is the
// validation core the snapshot reader runs over untrusted bytes, and the
// FuzzDecodeSample target.
func decodePayloadChecked(p []byte, n int) (int, error) {
	prev := uint32(0)
	first := true
	card := 0
	for pos := 0; pos < len(p); {
		delta, k := binary.Uvarint(p[pos:])
		if k <= 0 {
			return 0, fmt.Errorf("truncated or oversized varint at payload byte %d", pos)
		}
		pos += k
		// Reject the delta before summing so the running code can never
		// overflow uint64 and wrap back under n.
		if delta >= uint64(n) {
			return 0, fmt.Errorf("delta %d out of range [0, %d)", delta, n)
		}
		cur64 := delta
		if !first {
			cur64 = uint64(prev) + 1 + delta
		}
		if cur64 >= uint64(n) {
			return 0, fmt.Errorf("code %d out of range [0, %d)", cur64, n)
		}
		prev = uint32(cur64)
		first = false
		card++
	}
	return card, nil
}

// validateCoded structurally checks a coded store parsed from untrusted
// bytes: block offsets must agree with the walk of length-prefixed
// payloads, every payload must decode cleanly, and the declared count and
// total must match what the walk finds.
func validateCoded(n int, count int, total int64, blockOffs []int64, data []byte) error {
	wantBlocks := (count + codedBlockSamples - 1) >> codedBlockShift
	if len(blockOffs) != wantBlocks {
		return fmt.Errorf("store has %d block offsets, want %d for %d samples", len(blockOffs), wantBlocks, count)
	}
	pos := int64(0)
	var walkedTotal int64
	for i := 0; i < count; i++ {
		if i&(codedBlockSamples-1) == 0 {
			if blockOffs[i>>codedBlockShift] != pos {
				return fmt.Errorf("block %d offset %d disagrees with walk position %d", i>>codedBlockShift, blockOffs[i>>codedBlockShift], pos)
			}
		}
		l, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return fmt.Errorf("store sample %d: truncated length prefix", i)
		}
		pos += int64(k)
		if l > uint64(int64(len(data))-pos) {
			return fmt.Errorf("store sample %d: payload length %d exceeds remaining data", i, l)
		}
		card, err := decodePayloadChecked(data[pos:pos+int64(l)], n)
		if err != nil {
			return fmt.Errorf("store sample %d: %v", i, err)
		}
		walkedTotal += int64(card)
		pos += int64(l)
	}
	if pos != int64(len(data)) {
		return fmt.Errorf("store data has %d trailing bytes past the last sample", int64(len(data))-pos)
	}
	if walkedTotal != total {
		return fmt.Errorf("store declares %d total entries, samples hold %d", total, walkedTotal)
	}
	return nil
}
