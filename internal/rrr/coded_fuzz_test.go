package rrr

import (
	"encoding/binary"
	"slices"
	"testing"

	"influmax/internal/graph"
	"influmax/internal/rng"
)

// FuzzDecodeSample hammers the per-sample payload validator with
// adversarial bytes: it must never panic, and whatever it accepts must
// decode through the real AppendMembers path to exactly the cardinality it
// reported, with strictly ascending codes below n. The seed corpus covers
// honest payloads under both labelings, boundary codes, truncated varints
// and oversized deltas.
func FuzzDecodeSample(f *testing.F) {
	encode := func(set []graph.Vertex) []byte {
		c := NewCodedCollection(1<<31, nil)
		c.Append(set)
		return slices.Clone(c.payload(0))
	}
	f.Add([]byte{}, uint32(100))
	f.Add(encode([]graph.Vertex{0}), uint32(1))
	f.Add(encode([]graph.Vertex{0, 1, 2, 3}), uint32(4))
	f.Add(encode([]graph.Vertex{5, 90, 99}), uint32(100))
	f.Add(encode([]graph.Vertex{5, 1 << 20, 1<<31 - 1}), uint32(1<<31-1))
	r := rng.New(rng.NewLCG(11))
	f.Add(encode(randomSortedSet(r, 300, 0.3)), uint32(300))
	f.Add([]byte{0x80}, uint32(50))                               // truncated varint
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f}, uint32(50))       // delta past n
	f.Add(binary.AppendUvarint(nil, uint64(1)<<63), uint32(1000)) // huge delta

	f.Fuzz(func(t *testing.T, p []byte, n uint32) {
		if n == 0 {
			n = 1
		}
		card, err := decodePayloadChecked(p, int(n))
		if err != nil {
			return
		}
		// Accepted: the real decoder must agree. Wrap the payload in a
		// single-sample store and decode it.
		c := &CodedCollection{
			n:         int(n),
			count:     1,
			total:     int64(card),
			blockOffs: []int64{0},
			data:      append(binary.AppendUvarint(nil, uint64(len(p))), p...),
		}
		got := c.AppendMembers(0, nil)
		if len(got) != card {
			t.Fatalf("validator counted %d members, decoder produced %d", card, len(got))
		}
		for i, v := range got {
			if uint32(v) >= n {
				t.Fatalf("member %d = %d past universe %d", i, v, n)
			}
			if i > 0 && v <= got[i-1] {
				t.Fatalf("members not strictly ascending at %d: %v", i, got)
			}
		}
	})
}
