package rrr

import (
	"slices"
	"testing"
	"testing/quick"

	"influmax/internal/graph"
	"influmax/internal/rng"
)

func randomSortedSet(r *rng.Rand, n int, density float64) []graph.Vertex {
	var set []graph.Vertex
	for v := 0; v < n; v++ {
		if r.Float64() < density {
			set = append(set, graph.Vertex(v))
		}
	}
	return set
}

// codedPair builds a flat Collection and its coded transcode under the
// frequency relabeling (or identity when relabeled is false) from random
// sorted sets.
func codedPair(seed uint64, n, count int, density float64, relabeled bool) (*Collection, *CodedCollection) {
	r := rng.New(rng.NewLCG(seed))
	flat := NewCollection(n)
	for i := 0; i < count; i++ {
		flat.Append(randomSortedSet(r, n, density))
	}
	var relab *Relabeling
	if relabeled {
		relab = NewRelabeling(IncidenceOf(flat, 3))
	}
	return flat, FromCollection(flat, relab)
}

// TestCodedRoundTrip is the property test of the coding: for both
// labelings, SampleSorted must reproduce every appended set exactly.
func TestCodedRoundTrip(t *testing.T) {
	check := func(seed uint64, relabeled bool) bool {
		n := 200
		flat, c := codedPair(seed, n, 20, 0.3, relabeled)
		var buf []graph.Vertex
		for i := 0; i < flat.Count(); i++ {
			buf = c.SampleSorted(i, buf)
			want := flat.Sample(i)
			if len(want) == 0 && len(buf) == 0 {
				continue
			}
			if !slices.Equal(buf, want) {
				return false
			}
		}
		return c.Count() == 20 && c.TotalSize() == flat.TotalSize()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestCodedAppendMembersSetEqual checks the hot decode path: AppendMembers
// yields the same member set as the flat store (in code order, which under
// a relabeling is not id order — the consumers are order-insensitive).
func TestCodedAppendMembersSetEqual(t *testing.T) {
	flat, c := codedPair(21, 120, 30, 0.25, true)
	var buf []graph.Vertex
	for i := 0; i < flat.Count(); i++ {
		buf = c.AppendMembers(i, buf[:0])
		got := slices.Clone(buf)
		slices.Sort(got)
		if !slices.Equal(got, flat.Sample(i)) && !(len(got) == 0 && len(flat.Sample(i)) == 0) {
			t.Fatalf("sample %d decodes to %v, want %v", i, got, flat.Sample(i))
		}
	}
}

func TestCodedContainsMatchesFlat(t *testing.T) {
	for _, relabeled := range []bool{false, true} {
		flat, c := codedPair(5, 150, 30, 0.2, relabeled)
		for i := 0; i < 30; i++ {
			for v := 0; v < 150; v++ {
				if c.Contains(i, graph.Vertex(v)) != flat.Contains(i, graph.Vertex(v)) {
					t.Fatalf("relabeled=%v: Contains(%d, %d) disagrees with flat store", relabeled, i, v)
				}
			}
		}
	}
}

func TestCodedCountAllMatchesFlat(t *testing.T) {
	for _, relabeled := range []bool{false, true} {
		flat, c := codedPair(9, 100, 25, 0.3, relabeled)
		covered := NewBitset(25)
		covered.Set(3)
		covered.Set(17)
		coveredBool := make([]bool, 25)
		coveredBool[3], coveredBool[17] = true, true
		a := make([]int32, 100)
		b := make([]int32, 100)
		c.CountAll(a, covered)
		flat.CountRange(b, coveredBool, 0, graph.Vertex(100))
		if !slices.Equal(a, b) {
			t.Fatalf("relabeled=%v: coded counting disagrees with flat store", relabeled)
		}
	}
}

// TestCodedSmallerOnClusteredSets pins the compression story: dense runs
// of consecutive ids cost ~1 byte per member against 4 in the flat arena,
// and FlatBytes reports exactly what the flat layout would have cost.
func TestCodedSmallerOnClusteredSets(t *testing.T) {
	n := 10000
	flat := NewCollection(n)
	set := make([]graph.Vertex, 2000)
	for i := range set {
		set[i] = graph.Vertex(3000 + i) // consecutive block
	}
	for i := 0; i < 50; i++ {
		flat.Append(set)
	}
	c := FromCollection(flat, NewRelabeling(IncidenceOf(flat, 2)))
	if c.Bytes() >= flat.Bytes()/2 {
		t.Fatalf("coded %d B not well below flat %d B", c.Bytes(), flat.Bytes())
	}
	if c.TotalSize() != flat.TotalSize() {
		t.Fatal("cardinality accounting differs")
	}
	if c.FlatBytes() != flat.Bytes() {
		t.Fatalf("FlatBytes() = %d, flat store reports %d", c.FlatBytes(), flat.Bytes())
	}
}

func TestCodedEmptySample(t *testing.T) {
	c := NewCodedCollection(10, nil)
	c.Append(nil)
	c.Append([]graph.Vertex{0, 9})
	if got := c.SampleSorted(0, nil); len(got) != 0 {
		t.Fatalf("empty sample decoded to %v", got)
	}
	if !slices.Equal(c.SampleSorted(1, nil), []graph.Vertex{0, 9}) {
		t.Fatal("boundary sample wrong")
	}
	if c.Contains(0, 3) {
		t.Fatal("empty sample claims membership")
	}
}

func TestCodedLargeIDs(t *testing.T) {
	// Multi-byte varints: ids near the top of the uint32 range.
	n := 1 << 31
	c := NewCodedCollection(n, nil)
	set := []graph.Vertex{5, 1 << 20, 1 << 28, 1<<31 - 1}
	c.Append(set)
	if !slices.Equal(c.SampleSorted(0, nil), set) {
		t.Fatalf("large ids corrupted: %v", c.SampleSorted(0, nil))
	}
}

// TestCodedBlockBoundaries appends past several block boundaries and
// random-accesses every sample: the per-block offset plus length-skip
// lookup must locate each one (off-by-one block bugs die here).
func TestCodedBlockBoundaries(t *testing.T) {
	n := 500
	count := 3*codedBlockSamples + 7 // spans 4 blocks, last one partial
	flat, c := codedPair(13, n, count, 0.1, true)
	if len(c.blockOffs) != 4 {
		t.Fatalf("%d samples produced %d block offsets, want 4", count, len(c.blockOffs))
	}
	var buf []graph.Vertex
	for _, i := range []int{0, 63, 64, 65, 127, 128, 191, 192, count - 1} {
		buf = c.SampleSorted(i, buf)
		if !slices.Equal(buf, flat.Sample(i)) && !(len(buf) == 0 && len(flat.Sample(i)) == 0) {
			t.Fatalf("sample %d across block boundary decodes wrong", i)
		}
	}
}

// TestCodedRecode checks cross-labeling transcoding: identity -> frequency
// -> identity preserves every sample, and the final store is byte-identical
// to a direct identity transcode (the coding is canonical per labeling).
func TestCodedRecode(t *testing.T) {
	flat, ident := codedPair(31, 80, 40, 0.25, false)
	relab := NewRelabeling(IncidenceOf(flat, 2))
	coded := ident.Recode(relab)
	if !coded.Relabeled() {
		t.Fatal("recode lost the labeling")
	}
	back := coded.Recode(nil)
	if back.Relabeled() {
		t.Fatal("recode to identity kept a labeling")
	}
	if !slices.Equal(back.data, ident.data) || !slices.Equal(back.blockOffs, ident.blockOffs) {
		t.Fatal("identity recode not byte-identical to direct identity transcode")
	}
	var a []graph.Vertex
	for i := 0; i < flat.Count(); i++ {
		a = coded.SampleSorted(i, a)
		if !slices.Equal(a, flat.Sample(i)) && !(len(a) == 0 && len(flat.Sample(i)) == 0) {
			t.Fatalf("sample %d lost in recode", i)
		}
	}
}

// TestRelabelingFrequencyOrder pins the ordering contract: frequency
// descending, ties broken by ascending original id.
func TestRelabelingFrequencyOrder(t *testing.T) {
	freq := []int32{2, 5, 2, 0, 5, 1}
	r := NewRelabeling(freq)
	// freq 5: vertices 1, 4; freq 2: vertices 0, 2; freq 1: vertex 5; freq 0: vertex 3.
	want := []uint32{1, 4, 0, 2, 5, 3}
	if !slices.Equal(r.Table(), want) {
		t.Fatalf("table %v, want %v", r.Table(), want)
	}
	for c, v := range want {
		if r.Code(graph.Vertex(v)) != uint32(c) || r.Orig(uint32(c)) != graph.Vertex(v) {
			t.Fatalf("code/orig not inverse at code %d vertex %d", c, v)
		}
	}
	if r.Bytes() != int64(len(freq))*8 {
		t.Fatalf("Bytes() = %d, want %d (two u32 columns)", r.Bytes(), len(freq)*8)
	}
	var nilRelab *Relabeling
	if nilRelab.Bytes() != 0 {
		t.Fatal("nil relabeling has nonzero footprint")
	}
}

func TestRelabelingFromTable(t *testing.T) {
	r, err := RelabelingFromTable([]uint32{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Code(2) != 0 || r.Orig(2) != 1 {
		t.Fatal("reconstructed mapping wrong")
	}
	if _, err := RelabelingFromTable([]uint32{0, 3, 1}); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
	if _, err := RelabelingFromTable([]uint32{0, 1, 1}); err == nil {
		t.Fatal("duplicate entry accepted")
	}
}

// TestIncidenceOfMatchesIndexDegrees cross-checks the frequency vector
// against the inverted index's degree column for several worker counts.
func TestIncidenceOfMatchesIndexDegrees(t *testing.T) {
	flat, _ := codedPair(17, 60, 100, 0.2, false)
	idx := BuildIndex(flat, 2)
	for _, p := range []int{1, 3, 16} {
		freq := IncidenceOf(flat, p)
		for v := 0; v < 60; v++ {
			if int64(freq[v]) != idx.Degree(graph.Vertex(v)) {
				t.Fatalf("p=%d v=%d: incidence %d != index degree %d", p, v, freq[v], idx.Degree(graph.Vertex(v)))
			}
		}
	}
}

// TestValidateCoded runs the structural validator over honest stores and a
// few corruptions of each.
func TestValidateCoded(t *testing.T) {
	for _, relabeled := range []bool{false, true} {
		_, c := codedPair(7, 90, 70, 0.2, relabeled)
		if err := validateCoded(c.n, c.count, c.total, c.blockOffs, c.data); err != nil {
			t.Fatalf("relabeled=%v: honest store rejected: %v", relabeled, err)
		}
		if err := validateCoded(c.n, c.count, c.total+1, c.blockOffs, c.data); err == nil {
			t.Fatal("wrong total accepted")
		}
		if err := validateCoded(c.n, c.count, c.total, c.blockOffs[:0], c.data); err == nil {
			t.Fatal("missing block offsets accepted")
		}
		if err := validateCoded(c.n, c.count, c.total, c.blockOffs, c.data[:len(c.data)-1]); err == nil {
			t.Fatal("truncated data accepted")
		}
		if err := validateCoded(c.n, c.count, c.total, c.blockOffs, append(slices.Clone(c.data), 0)); err == nil {
			t.Fatal("trailing byte accepted")
		}
		bad := slices.Clone(c.blockOffs)
		if len(bad) > 1 {
			bad[1]++
			if err := validateCoded(c.n, c.count, c.total, bad, c.data); err == nil {
				t.Fatal("skewed block offset accepted")
			}
		}
	}
}
